(** Per-page version numbers (paper §2.1).

    The server tags every page with a version number, bumped each time a
    committed transaction updates the page.  Clients cache the version next
    to the page and present it when validating; a cached page is valid iff
    its version equals the server's current version.  Versions also drive
    certification: a transaction certifies iff every page it read is still
    at the version it read. *)

type t

val create : unit -> t

(** Current version of a page (pages start at version 0). *)
val current : t -> int -> int

(** [bump t page] installs a new version and returns it. *)
val bump : t -> int -> int

(** [is_current t ~page ~version] — is a cached copy at [version] valid? *)
val is_current : t -> page:int -> version:int -> bool

(** Number of pages ever updated. *)
val pages_updated : t -> int

(** Drop every version (server crash: the table is volatile). *)
val clear : t -> unit

(** [set t ~page ~version] installs a version directly — the recovery
    path loading the committed-version map rebuilt from the redo log. *)
val set : t -> page:int -> version:int -> unit

(** Sorted [(page, version)] association list of every updated page. *)
val snapshot : t -> (int * int) list
