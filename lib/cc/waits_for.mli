(** Waits-for graph and cycle (deadlock) detection.

    The simulator rebuilds the graph from the lock table (plus any
    protocol-specific edges, e.g. callback waits) each time a request
    blocks, then searches for a cycle through the new waiter.  Rebuilding
    avoids the incremental-maintenance bugs that plague edge-by-edge
    updates and is cheap at simulation scale. *)

type t

val create : unit -> t

(** [add_edge t a b] records that [a] waits for [b].  Self-edges are
    ignored; duplicates are fine. *)
val add_edge : t -> int -> int -> unit

(** Successors of a node (whom it waits for). *)
val succ : t -> int -> int list

(** [find_cycle_from t start] is a cycle reachable from — and containing —
    [start], as the list of nodes on the cycle ([start] first), or [None].
    Only cycles through [start] matter: older waits were checked when they
    were created. *)
val find_cycle_from : t -> int -> int list option

(** Build the lock-wait edges of [table] into a fresh graph. *)
val of_lock_table : Lock_table.t -> t

(** [add_lock_table g table] adds [table]'s wait edges to [g] — unioning
    several shards' lock tables into one global graph, so cycles that
    span shards are found by the same search. *)
val add_lock_table : t -> Lock_table.t -> unit

(** Youngest victim: of the cycle nodes, the one with the largest
    [start_time] (ties by larger id).  [start_time] maps an owner to when
    its current transaction began. *)
val pick_victim : start_time:(int -> float) -> int list -> int
