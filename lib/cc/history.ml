type commit_record = {
  xid : int;
  reads : (int * int) list;
  writes : (int * int) list;
}

type t = {
  mutable commits : commit_record list; (* newest first *)
  writer_of : (int * int, int) Hashtbl.t; (* (page, version) -> xid *)
  readers_of : (int * int, int list ref) Hashtbl.t;
}

let create () =
  { commits = []; writer_of = Hashtbl.create 1024; readers_of = Hashtbl.create 1024 }

let add_commit t r =
  List.iter
    (fun (page, version) ->
      match Hashtbl.find_opt t.writer_of (page, version) with
      | Some other when other <> r.xid ->
          invalid_arg
            (Printf.sprintf
               "History.add_commit: page %d version %d written by both %d and %d"
               page version other r.xid)
      | Some _ | None -> Hashtbl.replace t.writer_of (page, version) r.xid)
    r.writes;
  List.iter
    (fun key ->
      let l =
        match Hashtbl.find_opt t.readers_of key with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.readers_of key l;
            l
      in
      l := r.xid :: !l)
    r.reads;
  t.commits <- r :: t.commits

let size t = List.length t.commits
let commits t = List.rev t.commits

type verdict = Serializable | Cycle of int list

let build_edges t =
  (* (from, to, reason), self-edges dropped *)
  let out = ref [] in
  let add a b reason = if a <> b then out := (a, b, reason) :: !out in
  List.iter
    (fun r ->
      (* write-read and version-order edges into this transaction *)
      List.iter
        (fun (page, v) ->
          match Hashtbl.find_opt t.writer_of (page, v) with
          | Some w -> add w r.xid "wr"
          | None -> () (* initial version: no writer *))
        r.reads;
      List.iter
        (fun (page, v) ->
          (match Hashtbl.find_opt t.writer_of (page, v - 1) with
          | Some w -> add w r.xid "ww"
          | None -> ());
          (* anti-dependencies: readers of the previous version precede us *)
          match Hashtbl.find_opt t.readers_of (page, v - 1) with
          | Some readers -> List.iter (fun rd -> add rd r.xid "rw") !readers
          | None -> ())
        r.writes)
    t.commits;
  !out

let edges t = build_edges t

let check t =
  let es = build_edges t in
  let succ = Hashtbl.create 1024 in
  let indeg = Hashtbl.create 1024 in
  let nodes = Hashtbl.create 1024 in
  let note_node x = if not (Hashtbl.mem nodes x) then Hashtbl.replace nodes x () in
  List.iter
    (fun r -> note_node r.xid)
    t.commits;
  let edge_set = Hashtbl.create 1024 in
  List.iter
    (fun (a, b, _) ->
      if not (Hashtbl.mem edge_set (a, b)) then begin
        Hashtbl.replace edge_set (a, b) ();
        note_node a;
        note_node b;
        let l =
          match Hashtbl.find_opt succ a with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace succ a l;
              l
        in
        l := b :: !l;
        Hashtbl.replace indeg b
          (1 + Option.value (Hashtbl.find_opt indeg b) ~default:0)
      end)
    es;
  (* Kahn's algorithm *)
  let queue = Queue.create () in
  Hashtbl.iter
    (fun x () ->
      if Option.value (Hashtbl.find_opt indeg x) ~default:0 = 0 then
        Queue.add x queue)
    nodes;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    incr removed;
    match Hashtbl.find_opt succ x with
    | None -> ()
    | Some l ->
        List.iter
          (fun y ->
            let d = Hashtbl.find indeg y - 1 in
            Hashtbl.replace indeg y d;
            if d = 0 then Queue.add y queue)
          !l
  done;
  if !removed = Hashtbl.length nodes then Serializable
  else begin
    (* the residue contains at least one cycle: walk successors with
       positive in-degree until a node repeats *)
    let residue x = Option.value (Hashtbl.find_opt indeg x) ~default:0 > 0 in
    let start =
      Hashtbl.fold (fun x () acc -> if residue x then Some x else acc) nodes None
    in
    match start with
    | None -> Serializable (* unreachable *)
    | Some s ->
        let seen = Hashtbl.create 64 in
        (* [path] is newest-first and never contains the node about to be
           revisited, so the cut below collects the full loop *)
        let rec walk x path =
          Hashtbl.replace seen x ();
          let next =
            match Hashtbl.find_opt succ x with
            | None -> None
            | Some l -> List.find_opt residue !l
          in
          match next with
          | Some y when Hashtbl.mem seen y ->
              let rec take acc = function
                | [] -> acc
                | z :: rest -> if z = y then z :: acc else take (z :: acc) rest
              in
              Cycle (take [] path)
          | Some y -> walk y (y :: path)
          | None -> Serializable (* unreachable in residue *)
        in
        walk s [ s ]
  end
