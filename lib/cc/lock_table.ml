type mode = S | X

let mode_to_string = function S -> "S" | X -> "X"

type owner = int

type waiter = {
  w_owner : owner;
  w_mode : mode;
  w_upgrade : bool;
  w_wake : unit -> unit;
}

type entry = {
  mutable held : (owner * mode) list; (* invariant: all S, or a single X *)
  mutable queue : waiter list; (* FCFS; upgrades are inserted at the front *)
}

type t = {
  pages : (int, entry) Hashtbl.t;
  by_owner : (owner, (int, unit) Hashtbl.t) Hashtbl.t;
}

let create () = { pages = Hashtbl.create 1024; by_owner = Hashtbl.create 64 }

let entry t page =
  match Hashtbl.find_opt t.pages page with
  | Some e -> e
  | None ->
      let e = { held = []; queue = [] } in
      Hashtbl.replace t.pages page e;
      e

let note_held t owner page =
  let set =
    match Hashtbl.find_opt t.by_owner owner with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace t.by_owner owner s;
        s
  in
  Hashtbl.replace set page ()

let note_released t owner page =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> ()
  | Some s ->
      Hashtbl.remove s page;
      if Hashtbl.length s = 0 then Hashtbl.remove t.by_owner owner

let drop_entry_if_empty t page e =
  if e.held = [] && e.queue = [] then Hashtbl.remove t.pages page

let compatible mode holders ~except =
  match mode with
  | S -> List.for_all (fun (o, m) -> o = except || m = S) holders
  | X -> List.for_all (fun (o, _) -> o = except) holders

(* Grant from the queue head while possible.  An upgrade waiter is granted
   when its owner is the sole remaining holder; an S waiter when no X is
   held; an X waiter when nothing is held.  Strict FCFS otherwise. *)
let rec grant_from_queue t page e =
  match e.queue with
  | [] -> ()
  | w :: rest ->
      let can =
        if w.w_upgrade then
          match e.held with [ (o, S) ] when o = w.w_owner -> true | _ -> false
        else compatible w.w_mode e.held ~except:w.w_owner
      in
      if can then begin
        e.queue <- rest;
        (if w.w_upgrade then
           e.held <-
             List.map
               (fun (o, m) -> if o = w.w_owner then (o, X) else (o, m))
               e.held
         else begin
           e.held <- (w.w_owner, w.w_mode) :: e.held;
           note_held t w.w_owner page
         end);
        w.w_wake ();
        grant_from_queue t page e
      end

type outcome = Granted | Blocked of owner list

let blockers_for e ~owner ~mode ~upgrade =
  (* Everyone this request waits for: incompatible holders, plus earlier
     waiters whose requests are incompatible with ours (strict FCFS means
     we sit behind them).  Upgrades skip the queue, so only holders. *)
  let holder_blockers =
    List.filter_map
      (fun (o, m) ->
        if o = owner then None
        else
          match (mode, m) with
          | S, S -> None (* S is only blocked by an X holder *)
          | S, X | X, S | X, X -> Some o)
      e.held
  in
  let queue_blockers =
    if upgrade then []
    else
      List.filter_map
        (fun w ->
          if w.w_owner = owner then None
          else
            match (mode, w.w_mode) with
            | S, S -> None
            | S, X | X, S | X, X -> Some w.w_owner)
        e.queue
  in
  List.sort_uniq Int.compare (holder_blockers @ queue_blockers)

let request t ~page owner mode ~wake =
  let e = entry t page in
  if List.exists (fun w -> w.w_owner = owner) e.queue then
    (* already queued on this page: report current blockers, don't enqueue
       twice (protocol clients block, but be robust anyway) *)
    Blocked
      (match List.find_opt (fun w -> w.w_owner = owner) e.queue with
      | Some w -> blockers_for e ~owner ~mode:w.w_mode ~upgrade:w.w_upgrade
      | None -> [])
  else
  match List.assoc_opt owner e.held with
  | Some X -> Granted (* X covers S and X *)
  | Some S when mode = S -> Granted
  | Some S ->
      (* upgrade S -> X *)
      if List.length e.held = 1 then begin
        e.held <- [ (owner, X) ];
        Granted
      end
      else begin
        let blockers = blockers_for e ~owner ~mode:X ~upgrade:true in
        e.queue <-
          { w_owner = owner; w_mode = X; w_upgrade = true; w_wake = wake }
          :: e.queue;
        Blocked blockers
      end
  | None ->
      let free_now =
        e.queue = [] && compatible mode e.held ~except:owner
      in
      if free_now then begin
        e.held <- (owner, mode) :: e.held;
        note_held t owner page;
        Granted
      end
      else begin
        let blockers = blockers_for e ~owner ~mode ~upgrade:false in
        e.queue <-
          e.queue
          @ [ { w_owner = owner; w_mode = mode; w_upgrade = false; w_wake = wake } ];
        Blocked blockers
      end

let release t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e ->
      if List.mem_assoc owner e.held then begin
        e.held <- List.remove_assoc owner e.held;
        note_released t owner page;
        (* a queued upgrade by this owner just lost its base lock: demote
           it to an ordinary X request or it can never be granted *)
        e.queue <-
          List.map
            (fun w ->
              if w.w_owner = owner && w.w_upgrade then
                { w with w_upgrade = false }
              else w)
            e.queue;
        grant_from_queue t page e;
        drop_entry_if_empty t page e
      end

let release_all t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> []
  | Some s ->
      let pages = Hashtbl.fold (fun p () acc -> p :: acc) s [] in
      List.iter (fun p -> release t ~page:p owner) pages;
      pages

let cancel_wait t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e ->
      e.queue <- List.filter (fun w -> w.w_owner <> owner) e.queue;
      grant_from_queue t page e;
      drop_entry_if_empty t page e

let cancel_all_waits t owner =
  let pages =
    Hashtbl.fold
      (fun page e acc ->
        if List.exists (fun w -> w.w_owner = owner) e.queue then page :: acc
        else acc)
      t.pages []
  in
  List.iter (fun page -> cancel_wait t ~page owner) pages

let downgrade t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e -> (
      match List.assoc_opt owner e.held with
      | Some X ->
          e.held <-
            List.map (fun (o, m) -> if o = owner then (o, S) else (o, m)) e.held;
          grant_from_queue t page e
      | Some S | None -> ())

let held t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> None
  | Some e -> List.assoc_opt owner e.held

let holders t ~page =
  match Hashtbl.find_opt t.pages page with None -> [] | Some e -> e.held

let waiting t ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e -> List.map (fun w -> (w.w_owner, w.w_mode)) e.queue

let pages_held_by t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> []
  | Some s -> Hashtbl.fold (fun p () acc -> p :: acc) s []

let all_waiting t =
  Hashtbl.fold
    (fun page e acc ->
      List.fold_left
        (fun acc w -> (page, w.w_owner, w.w_mode) :: acc)
        acc e.queue)
    t.pages []

let blockers t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e -> (
      match List.find_opt (fun w -> w.w_owner = owner) e.queue with
      | None -> []
      | Some w ->
          (* only waiters queued before us block us *)
          let earlier =
            let rec take acc = function
              | [] -> List.rev acc
              | x :: _ when x.w_owner = owner && x.w_mode = w.w_mode ->
                  List.rev acc
              | x :: rest -> take (x :: acc) rest
            in
            take [] e.queue
          in
          blockers_for
            { e with queue = earlier }
            ~owner ~mode:w.w_mode ~upgrade:w.w_upgrade)

let locks_held t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.held) t.pages 0

let check_invariants t =
  Hashtbl.iter
    (fun page e ->
      let xs = List.filter (fun (_, m) -> m = X) e.held in
      (match (xs, e.held) with
      | [], _ -> ()
      | [ _ ], [ _ ] -> ()
      | _ ->
          failwith
            (Printf.sprintf "Lock_table: page %d has X alongside other locks"
               page));
      List.iter
        (fun w ->
          if (not w.w_upgrade) && List.mem_assoc w.w_owner e.held then
            failwith
              (Printf.sprintf
                 "Lock_table: page %d owner %d both holds and waits" page
                 w.w_owner))
        e.queue;
      let owners = List.map fst e.held in
      if List.length owners <> List.length (List.sort_uniq Int.compare owners)
      then failwith (Printf.sprintf "Lock_table: page %d duplicate holder" page))
    t.pages
