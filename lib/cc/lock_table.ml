type mode = S | X

let mode_to_string = function S -> "S" | X -> "X"

type owner = int

(* Holders and waiters live on intrusive doubly-linked lists, indexed per
   entry by owner in a hashtable, so that membership probes, grants,
   releases, and cancellations are O(1) pointer splices instead of list
   scans.  List order is semantically significant and mirrors the original
   assoc-list implementation exactly: holders are most-recently-granted
   first (cons order), waiters are strict FCFS with upgrades pushed to the
   front.  Wake order, holder enumeration order, and the waits-for edge
   order all depend on it. *)

type hnode = {
  h_owner : owner;
  mutable h_mode : mode;
  mutable h_prev : hnode option;
  mutable h_next : hnode option;
}

type wnode = {
  wn_owner : owner;
  wn_mode : mode;
  mutable wn_upgrade : bool;
  wn_wake : unit -> unit;
  mutable wn_prev : wnode option;
  mutable wn_next : wnode option;
}

type entry = {
  (* invariant: all holders S, or a single X (tracked in x_holder) *)
  mutable h_head : hnode option;
  mutable h_tail : hnode option;
  h_tbl : (owner, hnode) Hashtbl.t;
  mutable x_holder : owner option;
  (* FCFS; upgrades are inserted at the front; one waiter per owner *)
  mutable q_head : wnode option;
  mutable q_tail : wnode option;
  q_tbl : (owner, wnode) Hashtbl.t;
}

type t = {
  pages : (int, entry) Hashtbl.t;
  by_owner : (owner, (int, unit) Hashtbl.t) Hashtbl.t;
  waits_by_owner : (owner, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable n_held : int;
  mutable n_waiting : int;
}

let create () =
  {
    pages = Hashtbl.create 1024;
    by_owner = Hashtbl.create 64;
    waits_by_owner = Hashtbl.create 64;
    n_held = 0;
    n_waiting = 0;
  }

let entry t page =
  match Hashtbl.find_opt t.pages page with
  | Some e -> e
  | None ->
      let e =
        {
          h_head = None;
          h_tail = None;
          h_tbl = Hashtbl.create 8;
          x_holder = None;
          q_head = None;
          q_tail = None;
          q_tbl = Hashtbl.create 8;
        }
      in
      Hashtbl.replace t.pages page e;
      e

(* ---------------- intrusive list plumbing ---------------- *)

let h_push_front e n =
  n.h_prev <- None;
  n.h_next <- e.h_head;
  (match e.h_head with
  | Some f -> f.h_prev <- Some n
  | None -> e.h_tail <- Some n);
  e.h_head <- Some n

let h_unlink e n =
  (match n.h_prev with
  | Some p -> p.h_next <- n.h_next
  | None -> e.h_head <- n.h_next);
  (match n.h_next with
  | Some s -> s.h_prev <- n.h_prev
  | None -> e.h_tail <- n.h_prev);
  n.h_prev <- None;
  n.h_next <- None

let w_push_front e n =
  n.wn_prev <- None;
  n.wn_next <- e.q_head;
  (match e.q_head with
  | Some f -> f.wn_prev <- Some n
  | None -> e.q_tail <- Some n);
  e.q_head <- Some n

let w_push_back e n =
  n.wn_next <- None;
  n.wn_prev <- e.q_tail;
  (match e.q_tail with
  | Some l -> l.wn_next <- Some n
  | None -> e.q_head <- Some n);
  e.q_tail <- Some n

let w_unlink e n =
  (match n.wn_prev with
  | Some p -> p.wn_next <- n.wn_next
  | None -> e.q_head <- n.wn_next);
  (match n.wn_next with
  | Some s -> s.wn_prev <- n.wn_prev
  | None -> e.q_tail <- n.wn_prev);
  n.wn_prev <- None;
  n.wn_next <- None

let fold_holders e f acc =
  let rec go acc = function None -> acc | Some n -> go (f acc n) n.h_next in
  go acc e.h_head

let fold_waiters e f acc =
  let rec go acc = function None -> acc | Some n -> go (f acc n) n.wn_next in
  go acc e.q_head

(* ---------------- owner-side indexes ---------------- *)

let note_held t owner page =
  let set =
    match Hashtbl.find_opt t.by_owner owner with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 16 in
        Hashtbl.replace t.by_owner owner s;
        s
  in
  Hashtbl.replace set page ()

let note_released t owner page =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> ()
  | Some s ->
      Hashtbl.remove s page;
      if Hashtbl.length s = 0 then Hashtbl.remove t.by_owner owner

let note_waiting t owner page =
  let set =
    match Hashtbl.find_opt t.waits_by_owner owner with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace t.waits_by_owner owner s;
        s
  in
  Hashtbl.replace set page ()

let note_wait_done t owner page =
  match Hashtbl.find_opt t.waits_by_owner owner with
  | None -> ()
  | Some s ->
      Hashtbl.remove s page;
      if Hashtbl.length s = 0 then Hashtbl.remove t.waits_by_owner owner

let drop_entry_if_empty t page e =
  if Hashtbl.length e.h_tbl = 0 && Hashtbl.length e.q_tbl = 0 then
    Hashtbl.remove t.pages page

(* O(1) compatibility: an X holder is always sole, so S conflicts only with
   a foreign x_holder, and X needs the holder set to be empty or just us. *)
let compatible e mode ~except =
  match mode with
  | S -> ( match e.x_holder with None -> true | Some o -> o = except)
  | X ->
      let n = Hashtbl.length e.h_tbl in
      n = 0 || (n = 1 && Hashtbl.mem e.h_tbl except)

let add_holder t e page owner mode =
  let n = { h_owner = owner; h_mode = mode; h_prev = None; h_next = None } in
  h_push_front e n;
  Hashtbl.replace e.h_tbl owner n;
  if mode = X then e.x_holder <- Some owner;
  note_held t owner page;
  t.n_held <- t.n_held + 1

let enqueue_waiter t e page ~front w =
  if front then w_push_front e w else w_push_back e w;
  Hashtbl.replace e.q_tbl w.wn_owner w;
  note_waiting t w.wn_owner page;
  t.n_waiting <- t.n_waiting + 1

let remove_waiter t e page w =
  w_unlink e w;
  Hashtbl.remove e.q_tbl w.wn_owner;
  note_wait_done t w.wn_owner page;
  t.n_waiting <- t.n_waiting - 1

(* Grant from the queue head while possible.  An upgrade waiter is granted
   when its owner is the sole remaining holder; an S waiter when no X is
   held; an X waiter when nothing is held.  Strict FCFS otherwise. *)
let rec grant_from_queue t page e =
  match e.q_head with
  | None -> ()
  | Some w ->
      let can =
        if w.wn_upgrade then
          Hashtbl.length e.h_tbl = 1
          &&
          match Hashtbl.find_opt e.h_tbl w.wn_owner with
          | Some h -> h.h_mode = S
          | None -> false
        else compatible e w.wn_mode ~except:w.wn_owner
      in
      if can then begin
        remove_waiter t e page w;
        (if w.wn_upgrade then begin
           let h = Hashtbl.find e.h_tbl w.wn_owner in
           h.h_mode <- X;
           e.x_holder <- Some w.wn_owner
         end
         else add_holder t e page w.wn_owner w.wn_mode);
        w.wn_wake ();
        grant_from_queue t page e
      end

type outcome = Granted | Blocked of owner list

let blockers_for ?stop e ~owner ~mode ~upgrade =
  (* Everyone this request waits for: incompatible holders, plus earlier
     waiters whose requests are incompatible with ours (strict FCFS means
     we sit behind them).  Upgrades skip the queue, so only holders.
     [stop] bounds the queue walk to waiters ahead of that node. *)
  let holder_blockers =
    fold_holders e
      (fun acc h ->
        if h.h_owner = owner then acc
        else
          match (mode, h.h_mode) with
          | S, S -> acc (* S is only blocked by an X holder *)
          | S, X | X, S | X, X -> h.h_owner :: acc)
      []
  in
  let queue_blockers =
    if upgrade then []
    else
      let rec go acc = function
        | None -> acc
        | Some w when (match stop with Some s -> s == w | None -> false) ->
            acc
        | Some w ->
            let acc =
              if w.wn_owner = owner then acc
              else
                match (mode, w.wn_mode) with
                | S, S -> acc
                | S, X | X, S | X, X -> w.wn_owner :: acc
            in
            go acc w.wn_next
      in
      go [] e.q_head
  in
  List.sort_uniq Int.compare (holder_blockers @ queue_blockers)

let request t ~page owner mode ~wake =
  let e = entry t page in
  match Hashtbl.find_opt e.q_tbl owner with
  | Some w ->
      (* already queued on this page: report current blockers, don't enqueue
         twice (protocol clients block, but be robust anyway) *)
      Blocked (blockers_for e ~owner ~mode:w.wn_mode ~upgrade:w.wn_upgrade)
  | None -> (
      match Hashtbl.find_opt e.h_tbl owner with
      | Some { h_mode = X; _ } -> Granted (* X covers S and X *)
      | Some _ when mode = S -> Granted
      | Some h ->
          (* upgrade S -> X *)
          if Hashtbl.length e.h_tbl = 1 then begin
            h.h_mode <- X;
            e.x_holder <- Some owner;
            Granted
          end
          else begin
            let blockers = blockers_for e ~owner ~mode:X ~upgrade:true in
            enqueue_waiter t e page ~front:true
              {
                wn_owner = owner;
                wn_mode = X;
                wn_upgrade = true;
                wn_wake = wake;
                wn_prev = None;
                wn_next = None;
              };
            Blocked blockers
          end
      | None ->
          let free_now = e.q_head = None && compatible e mode ~except:owner in
          if free_now then begin
            add_holder t e page owner mode;
            Granted
          end
          else begin
            let blockers = blockers_for e ~owner ~mode ~upgrade:false in
            enqueue_waiter t e page ~front:false
              {
                wn_owner = owner;
                wn_mode = mode;
                wn_upgrade = false;
                wn_wake = wake;
                wn_prev = None;
                wn_next = None;
              };
            Blocked blockers
          end)

let release t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e -> (
      match Hashtbl.find_opt e.h_tbl owner with
      | None -> ()
      | Some h ->
          h_unlink e h;
          Hashtbl.remove e.h_tbl owner;
          if e.x_holder = Some owner then e.x_holder <- None;
          t.n_held <- t.n_held - 1;
          note_released t owner page;
          (* a queued upgrade by this owner just lost its base lock: demote
             it to an ordinary X request or it can never be granted *)
          (match Hashtbl.find_opt e.q_tbl owner with
          | Some w when w.wn_upgrade -> w.wn_upgrade <- false
          | _ -> ());
          grant_from_queue t page e;
          drop_entry_if_empty t page e)

let release_all t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> []
  | Some s ->
      let pages = Hashtbl.fold (fun p () acc -> p :: acc) s [] in
      List.iter (fun p -> release t ~page:p owner) pages;
      pages

let cancel_wait t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e ->
      (match Hashtbl.find_opt e.q_tbl owner with
      | None -> ()
      | Some w -> remove_waiter t e page w);
      grant_from_queue t page e;
      drop_entry_if_empty t page e

let cancel_all_waits t owner =
  match Hashtbl.find_opt t.waits_by_owner owner with
  | None -> ()
  | Some s ->
      let pages =
        List.sort Int.compare (Hashtbl.fold (fun p () acc -> p :: acc) s [])
      in
      List.iter (fun page -> cancel_wait t ~page owner) pages

let downgrade t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e -> (
      match Hashtbl.find_opt e.h_tbl owner with
      | Some h when h.h_mode = X ->
          h.h_mode <- S;
          e.x_holder <- None;
          grant_from_queue t page e
      | Some _ | None -> ())

let held t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> None
  | Some e -> (
      match Hashtbl.find_opt e.h_tbl owner with
      | None -> None
      | Some h -> Some h.h_mode)

let holders t ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e ->
      List.rev (fold_holders e (fun acc h -> (h.h_owner, h.h_mode) :: acc) [])

let waiting t ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e ->
      List.rev (fold_waiters e (fun acc w -> (w.wn_owner, w.wn_mode) :: acc) [])

let pages_held_by t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> []
  | Some s -> Hashtbl.fold (fun p () acc -> p :: acc) s []

let holds_any t owner = Hashtbl.mem t.by_owner owner

let all_waiting t =
  Hashtbl.fold
    (fun page e acc ->
      fold_waiters e (fun acc w -> (page, w.wn_owner, w.wn_mode) :: acc) acc)
    t.pages []

let blockers t ~page owner =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e -> (
      match Hashtbl.find_opt e.q_tbl owner with
      | None -> []
      | Some w ->
          (* only waiters queued before us block us *)
          blockers_for ~stop:w e ~owner ~mode:w.wn_mode ~upgrade:w.wn_upgrade)

let locks_held t = t.n_held
let waiting_count t = t.n_waiting

let check_invariants t =
  let held_sum = ref 0 and wait_sum = ref 0 in
  Hashtbl.iter
    (fun page e ->
      let held =
        List.rev (fold_holders e (fun acc h -> (h.h_owner, h.h_mode) :: acc) [])
      in
      let queue = List.rev (fold_waiters e (fun acc w -> w :: acc) []) in
      held_sum := !held_sum + List.length held;
      wait_sum := !wait_sum + List.length queue;
      let xs = List.filter (fun (_, m) -> m = X) held in
      (match (xs, held) with
      | [], _ -> ()
      | [ _ ], [ _ ] -> ()
      | _ ->
          failwith
            (Printf.sprintf "Lock_table: page %d has X alongside other locks"
               page));
      (match (xs, e.x_holder) with
      | [], None -> ()
      | [ (o, _) ], Some o' when o = o' -> ()
      | _ ->
          failwith
            (Printf.sprintf "Lock_table: page %d x_holder out of sync" page));
      if Hashtbl.length e.h_tbl <> List.length held then
        failwith
          (Printf.sprintf "Lock_table: page %d holder index out of sync" page);
      if Hashtbl.length e.q_tbl <> List.length queue then
        failwith
          (Printf.sprintf "Lock_table: page %d waiter index out of sync" page);
      List.iter
        (fun w ->
          if (not w.wn_upgrade) && List.mem_assoc w.wn_owner held then
            failwith
              (Printf.sprintf
                 "Lock_table: page %d owner %d both holds and waits" page
                 w.wn_owner);
          match Hashtbl.find_opt t.waits_by_owner w.wn_owner with
          | Some s when Hashtbl.mem s page -> ()
          | _ ->
              failwith
                (Printf.sprintf
                   "Lock_table: page %d owner %d missing from wait index" page
                   w.wn_owner))
        queue;
      let owners = List.map fst held in
      if List.length owners <> List.length (List.sort_uniq Int.compare owners)
      then failwith (Printf.sprintf "Lock_table: page %d duplicate holder" page);
      List.iter
        (fun (o, _) ->
          match Hashtbl.find_opt t.by_owner o with
          | Some s when Hashtbl.mem s page -> ()
          | _ ->
              failwith
                (Printf.sprintf
                   "Lock_table: page %d owner %d missing from owner index" page
                   o))
        held)
    t.pages;
  if !held_sum <> t.n_held then
    failwith
      (Printf.sprintf "Lock_table: n_held %d but %d holders found" t.n_held
         !held_sum);
  if !wait_sum <> t.n_waiting then
    failwith
      (Printf.sprintf "Lock_table: n_waiting %d but %d waiters found"
         t.n_waiting !wait_sum)
