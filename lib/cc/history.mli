(** Committed-transaction history and serializability checking.

    Each page carries a version number that the server bumps on every
    committed update, so a committed transaction can be summarized as the
    versions it read and the versions it installed.  From these summaries
    the {e direct serialization graph} (DSG) is built:

    - write–read: the writer of [p@v] precedes any reader of [p@v];
    - write–write: the writer of [p@v] precedes the writer of [p@v+1];
    - read–write (anti-dependency): a reader of [p@v] precedes the writer
      of [p@v+1].

    The execution is (view) serializable iff the DSG is acyclic.  Every
    consistency algorithm in this repository must produce serializable
    histories; the integration tests audit whole simulation runs through
    this module. *)

type t

type commit_record = {
  xid : int;
  reads : (int * int) list;  (** (page, version read) *)
  writes : (int * int) list;  (** (page, version installed) *)
}

val create : unit -> t

(** Append one committed transaction.  Raises [Invalid_argument] if the
    same (page, version) is installed by two different transactions. *)
val add_commit : t -> commit_record -> unit

val size : t -> int

(** Every committed transaction recorded so far, in commit order.  The
    durability audit walks these against the server's redo log: each
    acknowledged write must be durable, each version read must belong to
    a durably committed writer. *)
val commits : t -> commit_record list

type verdict =
  | Serializable
  | Cycle of int list  (** xids on one cycle of the DSG *)

(** Build the DSG and topologically sort it. *)
val check : t -> verdict

(** Edges of the DSG, for diagnostics: (from xid, to xid, reason). *)
val edges : t -> (int * int * string) list
