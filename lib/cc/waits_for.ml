type t = { edges : (int, int list ref) Hashtbl.t }

let create () = { edges = Hashtbl.create 64 }

let add_edge t a b =
  if a <> b then begin
    let l =
      match Hashtbl.find_opt t.edges a with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.edges a l;
          l
    in
    if not (List.mem b !l) then l := b :: !l
  end

let succ t a =
  match Hashtbl.find_opt t.edges a with Some l -> !l | None -> []

let find_cycle_from t start =
  (* DFS from [start]; report the path when we step back onto [start]. *)
  let visited = Hashtbl.create 32 in
  let rec dfs node path =
    let continue_with next =
      if next = start then Some (List.rev path)
      else if Hashtbl.mem visited next then None
      else begin
        Hashtbl.replace visited next ();
        dfs next (next :: path)
      end
    in
    List.fold_left
      (fun acc next -> match acc with Some _ -> acc | None -> continue_with next)
      None (succ t node)
  in
  Hashtbl.replace visited start ();
  dfs start [ start ]

let add_lock_table g table =
  List.iter
    (fun (page, owner, _mode) ->
      List.iter
        (fun blocker -> add_edge g owner blocker)
        (Lock_table.blockers table ~page owner))
    (Lock_table.all_waiting table)

let of_lock_table table =
  let g = create () in
  add_lock_table g table;
  g

let pick_victim ~start_time = function
  | [] -> invalid_arg "Waits_for.pick_victim: empty cycle"
  | first :: rest ->
      List.fold_left
        (fun best cand ->
          let bt = start_time best and ct = start_time cand in
          if ct > bt || (ct = bt && cand > best) then cand else best)
        first rest
