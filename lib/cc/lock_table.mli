(** Server lock manager (paper §3.3.4).

    Page-granularity locks in shared (S) and exclusive (X) modes with
    strict-FCFS wait queues and priority lock upgrades.  Because each
    client runs at most one transaction at a time (§2), a lock owner is a
    client id; callback locking's retained locks are simply locks whose
    owner currently has no active transaction.

    The table is a pure data structure: a blocked request registers a
    [wake] callback that the table invokes when the lock is granted.  The
    simulator passes a closure that resumes the blocked server process. *)

type mode = S | X

val mode_to_string : mode -> string

(** Lock owners are client ids. *)
type owner = int

type t

val create : unit -> t

type outcome =
  | Granted  (** lock held on return *)
  | Blocked of owner list
      (** queued; the list is everyone the request now waits for (holders
          plus earlier incompatible waiters) — the waits-for edges *)

(** [request t ~page owner mode ~wake] tries to acquire.  Re-requesting a
    mode already held (or requesting S while holding X) is granted
    immediately.  Holding S and requesting X is an {e upgrade}: granted
    immediately if [owner] is the sole holder, otherwise queued ahead of
    ordinary waiters.  When a queued request is eventually granted, [wake]
    is called (once). *)
val request : t -> page:int -> owner -> mode -> wake:(unit -> unit) -> outcome

(** [release t ~page owner] drops the lock and grants whatever the FCFS
    queue now allows.  No-op if not held. *)
val release : t -> page:int -> owner -> unit

(** Release every lock held by [owner]; returns the pages released. *)
val release_all : t -> owner -> int list

(** [cancel_wait t ~page owner] withdraws a queued request (the waiter was
    aborted); grants any requests the departure unblocks. *)
val cancel_wait : t -> page:int -> owner -> unit

(** Withdraw all queued requests by [owner]. *)
val cancel_all_waits : t -> owner -> unit

(** [downgrade t ~page owner] converts a held X lock to S and grants
    newly compatible waiters.  No-op unless X is held. *)
val downgrade : t -> page:int -> owner -> unit

(** Mode currently held by [owner] on [page], if any. *)
val held : t -> page:int -> owner -> mode option

val holders : t -> page:int -> (owner * mode) list

(** Queued requests in FCFS order. *)
val waiting : t -> page:int -> (owner * mode) list

(** Pages on which [owner] holds a lock. *)
val pages_held_by : t -> owner -> int list

(** Does [owner] hold any lock?  O(1) — unlike [pages_held_by <> []],
    which materialises the page list. *)
val holds_any : t -> owner -> bool

(** Every (page, owner, mode) currently queued, across all pages. *)
val all_waiting : t -> (int * owner * mode) list

(** [blockers t ~page owner] recomputes who a queued [owner] waits for
    right now: current holders incompatible with its request plus earlier
    incompatible waiters.  Empty if [owner] is not queued on [page]. *)
val blockers : t -> page:int -> owner -> owner list

(** Total locks currently held.  O(1): maintained incrementally, so the
    observability sampler can probe it every tick at any population. *)
val locks_held : t -> int

(** Total queued requests across all pages.  O(1), same contract as
    {!locks_held}. *)
val waiting_count : t -> int

(** Check internal invariants (S* xor X per page, no granted waiter);
    raises [Failure] on violation.  Used by tests. *)
val check_invariants : t -> unit
