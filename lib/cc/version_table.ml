type t = { versions : (int, int) Hashtbl.t }

let create () = { versions = Hashtbl.create 1024 }

let current t page =
  match Hashtbl.find_opt t.versions page with Some v -> v | None -> 0

let bump t page =
  let v = current t page + 1 in
  Hashtbl.replace t.versions page v;
  v

let is_current t ~page ~version = current t page = version
let pages_updated t = Hashtbl.length t.versions
let clear t = Hashtbl.reset t.versions
let set t ~page ~version = Hashtbl.replace t.versions page version

let snapshot t =
  Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.versions [] |> List.sort compare
