module Plan = struct
  type t = {
    seed : int;
    drop_prob : float;
    delay_prob : float;
    delay_mean : float;
    dup_prob : float;
    crash_mean : float;
    restart_mean : float;
    server_crash_mean : float;
    server_restart_mean : float;
    checkpoint_interval : float;
    req_timeout : float;
    max_backoff : float;
    lease : float;
    callback_retry : float;
    unsafe_skip_validation : bool;
    coord_crash_prob : float;
  }

  let none =
    {
      seed = 0;
      drop_prob = 0.0;
      delay_prob = 0.0;
      delay_mean = 0.0;
      dup_prob = 0.0;
      crash_mean = 0.0;
      restart_mean = 0.0;
      server_crash_mean = 0.0;
      server_restart_mean = 0.0;
      checkpoint_interval = 0.0;
      req_timeout = 0.0;
      max_backoff = 0.0;
      lease = 0.0;
      callback_retry = 0.0;
      unsafe_skip_validation = false;
      coord_crash_prob = 0.0;
    }

  let active t =
    t.drop_prob > 0.0 || t.delay_prob > 0.0 || t.dup_prob > 0.0
    || t.crash_mean > 0.0 || t.server_crash_mean > 0.0
    || t.coord_crash_prob > 0.0

  let default ~seed =
    {
      seed;
      drop_prob = 0.03;
      delay_prob = 0.05;
      delay_mean = 0.05;
      dup_prob = 0.02;
      crash_mean = 150.0;
      restart_mean = 1.0;
      server_crash_mean = 0.0;
      server_restart_mean = 0.0;
      checkpoint_interval = 0.0;
      req_timeout = 1.0;
      max_backoff = 8.0;
      lease = 10.0;
      callback_retry = 1.0;
      unsafe_skip_validation = false;
      coord_crash_prob = 0.0;
    }

  let server_default ~seed =
    {
      (default ~seed) with
      (* quiet network: isolate the server-fault dimension so durability
         failures shrink to the server knobs, not the message gremlins *)
      drop_prob = 0.0;
      delay_prob = 0.0;
      delay_mean = 0.0;
      dup_prob = 0.0;
      crash_mean = 0.0;
      restart_mean = 0.0;
      (* frequent enough that even a short audit run sees several
         crash/replay cycles (a 150-commit chaos run is ~30 simulated
         seconds) *)
      server_crash_mean = 8.0;
      server_restart_mean = 0.5;
      checkpoint_interval = 5.0;
    }

  let shard_default ~seed =
    {
      (server_default ~seed) with
      (* sharded chaos: shard crashes land mid-2PC often enough to
         exercise in-doubt resolution, and the router forgets an
         in-flight decision now and then (coordinator amnesia) *)
      coord_crash_prob = 0.1;
    }

  let validate t =
    let prob name p =
      if p < 0.0 || p > 1.0 then
        invalid_arg (Printf.sprintf "Fault.Plan: %s = %g outside [0,1]" name p)
    in
    let non_neg name x =
      if x < 0.0 then
        invalid_arg (Printf.sprintf "Fault.Plan: %s = %g negative" name x)
    in
    prob "drop_prob" t.drop_prob;
    prob "delay_prob" t.delay_prob;
    prob "dup_prob" t.dup_prob;
    non_neg "delay_mean" t.delay_mean;
    non_neg "crash_mean" t.crash_mean;
    non_neg "restart_mean" t.restart_mean;
    non_neg "server_crash_mean" t.server_crash_mean;
    non_neg "server_restart_mean" t.server_restart_mean;
    non_neg "checkpoint_interval" t.checkpoint_interval;
    non_neg "req_timeout" t.req_timeout;
    non_neg "max_backoff" t.max_backoff;
    non_neg "lease" t.lease;
    non_neg "callback_retry" t.callback_retry;
    prob "coord_crash_prob" t.coord_crash_prob;
    if active t && t.req_timeout <= 0.0 then
      invalid_arg "Fault.Plan: active plan needs req_timeout > 0";
    if active t && t.max_backoff < t.req_timeout then
      invalid_arg "Fault.Plan: max_backoff < req_timeout";
    if t.crash_mean > 0.0 && t.drop_prob > 0.0 && t.lease <= 0.0 then
      invalid_arg
        "Fault.Plan: crashes under message loss need lease > 0 (the \
         recovery notice is droppable; only the lease sweep is reliable)";
    if t.checkpoint_interval > 0.0 && t.server_crash_mean <= 0.0 then
      invalid_arg
        "Fault.Plan: checkpoint_interval without server crashes is dead \
         weight (set server_crash_mean > 0 or checkpoint_interval = 0)"

  let to_string t =
    if not (active t) then "none"
    else
      Printf.sprintf
        "seed=%d drop=%g delay=%g~%gs dup=%g crash~%gs restart~%gs \
         srv-crash~%gs srv-restart~%gs ckpt=%gs timeout=%g..%gs lease=%gs \
         nag=%gs%s"
        t.seed t.drop_prob t.delay_prob t.delay_mean t.dup_prob t.crash_mean
        t.restart_mean t.server_crash_mean t.server_restart_mean
        t.checkpoint_interval t.req_timeout t.max_backoff t.lease
        t.callback_retry
        ((if t.coord_crash_prob > 0.0 then
            Printf.sprintf " coord-crash=%g" t.coord_crash_prob
          else "")
        ^ if t.unsafe_skip_validation then " UNSAFE-NO-VALIDATION" else "")

  let shrink_candidates t =
    let cands =
      [
        (* zero one adversity dimension at a time *)
        { t with drop_prob = 0.0 };
        { t with delay_prob = 0.0; delay_mean = 0.0 };
        { t with dup_prob = 0.0 };
        { t with crash_mean = 0.0; restart_mean = 0.0 };
        {
          t with
          server_crash_mean = 0.0;
          server_restart_mean = 0.0;
          checkpoint_interval = 0.0;
        };
        (* then soften dimensions that must stay *)
        { t with drop_prob = t.drop_prob /. 2.0 };
        { t with delay_prob = t.delay_prob /. 2.0 };
        { t with delay_mean = t.delay_mean /. 2.0 };
        { t with dup_prob = t.dup_prob /. 2.0 };
        { t with crash_mean = t.crash_mean *. 2.0 };
        (* fewer server crashes, cheaper restarts, tighter checkpoints:
           each strictly reduces the adversity of the server dimension *)
        { t with server_crash_mean = t.server_crash_mean *. 2.0 };
        { t with server_restart_mean = t.server_restart_mean /. 2.0 };
        { t with checkpoint_interval = t.checkpoint_interval /. 2.0 };
        (* sharding dimensions last: additive, so candidate order for
           pre-sharding plans is unchanged *)
        { t with coord_crash_prob = 0.0 };
        { t with coord_crash_prob = t.coord_crash_prob /. 2.0 };
      ]
    in
    List.filter (fun c -> c <> t && active c) cands
end

module Injector = struct
  type verdict = { drop : bool; extra_delay : float; copies : int }

  type t = { plan : Plan.t; net_rng : Sim.Rng.t }

  let create (plan : Plan.t) =
    { plan; net_rng = Sim.Rng.split (Sim.Rng.create plan.seed) "fault-net" }

  let plan t = t.plan

  let message t =
    let p = t.plan in
    let r = t.net_rng in
    if p.Plan.drop_prob > 0.0 && Sim.Rng.bernoulli r p.Plan.drop_prob then
      { drop = true; extra_delay = 0.0; copies = 0 }
    else
      let extra_delay =
        if p.Plan.delay_prob > 0.0 && Sim.Rng.bernoulli r p.Plan.delay_prob
        then Sim.Rng.exponential r ~mean:p.Plan.delay_mean
        else 0.0
      in
      let copies =
        if p.Plan.dup_prob > 0.0 && Sim.Rng.bernoulli r p.Plan.dup_prob then 2
        else 1
      in
      { drop = false; extra_delay; copies }

  let client_stream (plan : Plan.t) i =
    Sim.Rng.split
      (Sim.Rng.create plan.Plan.seed)
      (Printf.sprintf "fault-client-%d" i)

  let server_stream (plan : Plan.t) =
    Sim.Rng.split (Sim.Rng.create plan.Plan.seed) "fault-server"

  let shard_stream (plan : Plan.t) s =
    (* shard 0 reuses the single-server stream so one-shard faulty runs
       keep their crash schedule; other shards get independent streams *)
    if s = 0 then server_stream plan
    else
      Sim.Rng.split
        (Sim.Rng.create plan.Plan.seed)
        (Printf.sprintf "fault-server-%d" s)

  let coord_stream (plan : Plan.t) i =
    Sim.Rng.split
      (Sim.Rng.create plan.Plan.seed)
      (Printf.sprintf "fault-coord-%d" i)
end
