(** Deterministic fault injection.

    A {!Plan.t} is a seeded, spec-like description of the adversity applied
    to one simulation run: message drops, delays and duplications on the
    shared network, client crash/restart events, and server crash/recovery
    events.  Plans are plain immutable records of scalars, so they
    [Marshal]-digest stably and compose with the experiment result cache
    exactly like the rest of a simulation spec.

    All stochastic fault decisions flow from split {!Sim.Rng} streams
    derived from [plan.seed] — never from the simulation's own workload
    streams — so (a) a fault plan perturbs the run only through the faults
    themselves, and (b) any failing run reproduces exactly from
    [(spec, plan)] at any [-j].

    {!Plan.none} is the identity: with it, no hook is installed, no timer
    is armed, and no extra random draw is made, leaving every existing
    experiment bit-identical to a build without this subsystem. *)

module Plan : sig
  type t = {
    seed : int;  (** master seed of every fault stream *)
    drop_prob : float;  (** per-message drop probability *)
    delay_prob : float;  (** per-message extra-delay probability *)
    delay_mean : float;  (** mean of the exponential extra delay (s) *)
    dup_prob : float;  (** per-message duplication probability *)
    crash_mean : float;
        (** mean interval between crash events per client (s); 0 = never *)
    restart_mean : float;  (** mean client downtime before restart (s) *)
    server_crash_mean : float;
        (** mean interval between server crash events (s); 0 = never.
            A crash wipes the server's volatile state (lock table,
            callback registrations, buffer pool, in-flight requests);
            recovery replays the redo log from the last checkpoint. *)
    server_restart_mean : float;
        (** mean server outage before recovery begins (s); the log-replay
            disk work is charged on top of this *)
    checkpoint_interval : float;
        (** period of the server's checkpoint process (s); 0 = never
            checkpoint, so recovery replays the whole log *)
    req_timeout : float;  (** initial client request timeout (s) *)
    max_backoff : float;  (** retry timeout cap (s) *)
    lease : float;
        (** server reclaims locks of clients silent for this long (s);
            clients stop trusting retained state at the same horizon.
            0 = no lease protocol *)
    callback_retry : float;
        (** server re-sends pending callback requests at this period (s);
            0 = send once (original protocol) *)
    unsafe_skip_validation : bool;
        (** test-only protocol mutation: the server skips commit-time
            version validation of optimistic reads, re-opening the
            lost-update window that the hardening closes.  Exists so the
            chaos audit has a real violation to catch; never set it in a
            real experiment. *)
    coord_crash_prob : float;
        (** sharded topologies: probability that the client-side 2PC
            coordinator forgets an in-flight cross-shard commit between
            collecting votes and delivering decisions (coordinator
            amnesia).  The prepared participants resolve via the
            termination protocol / the retransmitted commit.  0 with a
            single shard or no faults. *)
  }

  (** The identity plan: no faults, no hardening, bit-identical runs. *)
  val none : t

  (** A plan injects faults iff it can drop, delay, duplicate, crash a
      client, or crash the server.  Protocol hardening (timeouts, leases,
      retries) is armed only for active plans so that [none] changes
      nothing. *)
  val active : t -> bool

  (** A moderate default chaos plan for [seed]: a few percent of messages
      dropped/delayed/duplicated, occasional client crashes, leases on.
      Server faults stay off; see {!server_default}. *)
  val default : seed:int -> t

  (** A server-fault chaos plan for [seed]: quiet network and immortal
      clients (isolating the server dimension), server crashes roughly
      once a simulated minute, sub-second restarts, 5 s checkpoints. *)
  val server_default : seed:int -> t

  (** {!server_default} plus the sharding dimension: each shard crashes
      on its own independent stream, and the 2PC coordinator forgets an
      in-flight decision 10% of the time. *)
  val shard_default : seed:int -> t

  (** Raises [Invalid_argument] on malformed plans (probabilities outside
      [0,1], negative durations, active plan without a positive timeout,
      checkpoints configured without server crashes). *)
  val validate : t -> unit

  (** One-line rendering for logs and failure reports. *)
  val to_string : t -> string

  (** Strictly simpler variants of an active plan, most aggressive
      simplification first: each adversity dimension zeroed (network
      drops, delays, duplicates, client crashes, server crashes), then
      each softened.  The chaos shrinker keeps a candidate iff it still
      reproduces the failure.  Candidates equal to the input (or already
      inactive when the input was active in that dimension only) are
      omitted.  The order is pinned by golden tests so minimal
      reproducers stay stable across refactors. *)
  val shrink_candidates : t -> t list
end

module Injector : sig
  (** Per-message verdict. [copies] is how many transmissions to make
      (= 1 normally, 2 when duplicated, irrelevant when [drop]). *)
  type verdict = { drop : bool; extra_delay : float; copies : int }

  type t

  (** [create plan] derives the injector's private streams from
      [plan.seed]. *)
  val create : Plan.t -> t

  val plan : t -> Plan.t

  (** Verdict for the next network message.  Draws only from the
      injector's network stream. *)
  val message : t -> verdict

  (** Independent stream for client [i]'s crash/restart schedule. *)
  val client_stream : Plan.t -> int -> Sim.Rng.t

  (** Independent stream for the server's crash/recovery schedule. *)
  val server_stream : Plan.t -> Sim.Rng.t

  (** Independent stream for shard [s]'s crash/recovery schedule.
      Shard 0 reuses {!server_stream} so one-shard faulty runs keep the
      single-server crash schedule. *)
  val shard_stream : Plan.t -> int -> Sim.Rng.t

  (** Independent stream for client [i]'s 2PC coordinator-amnesia
      draws. *)
  val coord_stream : Plan.t -> int -> Sim.Rng.t
end
