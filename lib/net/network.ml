type params = { net_delay : float; packet_size : int; msg_inst : int }

let default_params = { net_delay = 0.002; packet_size = 4096; msg_inst = 5000 }

type fault = { drop : bool; extra_delay : float; copies : int }

type kind_stat = {
  ks_msgs : int;
  ks_pkts : int;
  ks_bytes : int;
  ks_retx : int;
  ks_dups : int;
}

(* Internal mutable accumulator behind the immutable {!kind_stat} view. *)
type kind_acc = {
  mutable ka_msgs : int;
  mutable ka_pkts : int;
  mutable ka_bytes : int;
  mutable ka_retx : int;
  mutable ka_dups : int;
}

type t = {
  eng : Sim.Engine.t;
  rng : Sim.Rng.t;
  prm : params;
  wire : Sim.Facility.t;
  mutable msgs : int;
  mutable pkts : int;
  mutable fault_hook : (bytes:int -> fault) option;
  kinds : (string, kind_acc) Hashtbl.t;
}

let create eng ~rng prm =
  if prm.packet_size <= 0 then invalid_arg "Network.create: packet_size <= 0";
  if prm.net_delay < 0.0 then invalid_arg "Network.create: net_delay < 0";
  {
    eng;
    rng;
    prm;
    wire = Sim.Facility.create eng ~name:"network" ();
    msgs = 0;
    pkts = 0;
    fault_hook = None;
    kinds = Hashtbl.create 32;
  }

let set_fault_hook t f = t.fault_hook <- Some f

let params t = t.prm

let packets_for t ~bytes =
  if bytes <= 0 then 1 else (bytes + t.prm.packet_size - 1) / t.prm.packet_size

(* Per-kind accounting mirrors the aggregates: one message per post
   (dropped or not), packets and bytes per transmitted copy.  Counting
   happens at post time with no engine interaction, so it cannot perturb
   the simulation. *)
let kind_account t (tag : Obs.Causal.tag) ~pkts ~bytes ~copies =
  let a =
    match Hashtbl.find_opt t.kinds tag.Obs.Causal.tg_kind with
    | Some a -> a
    | None ->
        let a = { ka_msgs = 0; ka_pkts = 0; ka_bytes = 0; ka_retx = 0; ka_dups = 0 } in
        Hashtbl.add t.kinds tag.Obs.Causal.tg_kind a;
        a
  in
  a.ka_msgs <- a.ka_msgs + 1;
  a.ka_pkts <- a.ka_pkts + (pkts * copies);
  a.ka_bytes <- a.ka_bytes + (bytes * copies);
  if tag.Obs.Causal.tg_retry > 0 then a.ka_retx <- a.ka_retx + 1;
  a.ka_dups <- a.ka_dups + max 0 (copies - 1)

(* Record one copy's Send node; -1 when no causal sink is installed. *)
let causal_send t tag ~pkts ~bytes ~dup =
  match tag with
  | Some tag when Obs.Causal.active () ->
      Obs.Causal.send ~time:(Sim.Engine.now t.eng) ~tag ~bytes ~pkts ~dup
  | _ -> -1

let transmit t n ~extra_delay ~node ~deliver =
  Sim.Engine.spawn t.eng (fun () ->
      if extra_delay > 0.0 then Sim.Engine.hold extra_delay;
      for _ = 1 to n do
        t.pkts <- t.pkts + 1;
        let service = Sim.Rng.exponential t.rng ~mean:t.prm.net_delay in
        Sim.Facility.use t.wire service
      done;
      if node >= 0 then Obs.Causal.recv ~time:(Sim.Engine.now t.eng) node;
      deliver node)

let post ?tag t ~bytes ~deliver =
  let n = packets_for t ~bytes in
  t.msgs <- t.msgs + 1;
  match t.fault_hook with
  | None ->
      (* Keep the fault-free path byte-for-byte identical to the original:
         one transfer process, no extra-delay branch in its event trace. *)
      (match tag with
      | Some tag -> kind_account t tag ~pkts:n ~bytes ~copies:1
      | None -> ());
      let node = causal_send t tag ~pkts:n ~bytes ~dup:0 in
      Sim.Engine.spawn t.eng (fun () ->
          for _ = 1 to n do
            t.pkts <- t.pkts + 1;
            let service = Sim.Rng.exponential t.rng ~mean:t.prm.net_delay in
            Sim.Facility.use t.wire service
          done;
          if node >= 0 then Obs.Causal.recv ~time:(Sim.Engine.now t.eng) node;
          deliver node)
  | Some hook ->
      let f = hook ~bytes in
      if f.drop then begin
        (match tag with
        | Some tag -> kind_account t tag ~pkts:n ~bytes ~copies:0
        | None -> ());
        let node = causal_send t tag ~pkts:n ~bytes ~dup:0 in
        if node >= 0 then Obs.Causal.drop ~time:(Sim.Engine.now t.eng) node
      end
      else begin
        let copies = max 1 f.copies in
        (match tag with
        | Some tag -> kind_account t tag ~pkts:n ~bytes ~copies
        | None -> ());
        for i = 0 to copies - 1 do
          let node = causal_send t tag ~pkts:n ~bytes ~dup:i in
          transmit t n ~extra_delay:f.extra_delay ~node ~deliver
        done
      end

let messages_sent t = t.msgs
let packets_sent t = t.pkts

let kind_stats t =
  Hashtbl.fold
    (fun kind a acc ->
      ( kind,
        {
          ks_msgs = a.ka_msgs;
          ks_pkts = a.ka_pkts;
          ks_bytes = a.ka_bytes;
          ks_retx = a.ka_retx;
          ks_dups = a.ka_dups;
        } )
      :: acc)
    t.kinds []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let utilization t = Sim.Facility.utilization t.wire
let mean_queue_length t = Sim.Facility.mean_queue_length t.wire
let max_queue_length t = Sim.Facility.max_queue_length t.wire
let busy_time t = Sim.Facility.busy_time t.wire

let reset_stats t =
  t.msgs <- 0;
  t.pkts <- 0;
  Hashtbl.reset t.kinds;
  Sim.Facility.reset_stats t.wire
