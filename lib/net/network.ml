type params = { net_delay : float; packet_size : int; msg_inst : int }

let default_params = { net_delay = 0.002; packet_size = 4096; msg_inst = 5000 }

type fault = { drop : bool; extra_delay : float; copies : int }

type t = {
  eng : Sim.Engine.t;
  rng : Sim.Rng.t;
  prm : params;
  wire : Sim.Facility.t;
  mutable msgs : int;
  mutable pkts : int;
  mutable fault_hook : (bytes:int -> fault) option;
}

let create eng ~rng prm =
  if prm.packet_size <= 0 then invalid_arg "Network.create: packet_size <= 0";
  if prm.net_delay < 0.0 then invalid_arg "Network.create: net_delay < 0";
  {
    eng;
    rng;
    prm;
    wire = Sim.Facility.create eng ~name:"network" ();
    msgs = 0;
    pkts = 0;
    fault_hook = None;
  }

let set_fault_hook t f = t.fault_hook <- Some f

let params t = t.prm

let packets_for t ~bytes =
  if bytes <= 0 then 1 else (bytes + t.prm.packet_size - 1) / t.prm.packet_size

let transmit t n ~extra_delay ~deliver =
  Sim.Engine.spawn t.eng (fun () ->
      if extra_delay > 0.0 then Sim.Engine.hold extra_delay;
      for _ = 1 to n do
        t.pkts <- t.pkts + 1;
        let service = Sim.Rng.exponential t.rng ~mean:t.prm.net_delay in
        Sim.Facility.use t.wire service
      done;
      deliver ())

let post t ~bytes ~deliver =
  let n = packets_for t ~bytes in
  t.msgs <- t.msgs + 1;
  match t.fault_hook with
  | None ->
      (* Keep the fault-free path byte-for-byte identical to the original:
         one transfer process, no extra-delay branch in its event trace. *)
      Sim.Engine.spawn t.eng (fun () ->
          for _ = 1 to n do
            t.pkts <- t.pkts + 1;
            let service = Sim.Rng.exponential t.rng ~mean:t.prm.net_delay in
            Sim.Facility.use t.wire service
          done;
          deliver ())
  | Some hook ->
      let f = hook ~bytes in
      if f.drop then ()
      else
        for _ = 1 to max 1 f.copies do
          transmit t n ~extra_delay:f.extra_delay ~deliver
        done

let messages_sent t = t.msgs
let packets_sent t = t.pkts
let utilization t = Sim.Facility.utilization t.wire
let mean_queue_length t = Sim.Facility.mean_queue_length t.wire
let max_queue_length t = Sim.Facility.max_queue_length t.wire
let busy_time t = Sim.Facility.busy_time t.wire

let reset_stats t =
  t.msgs <- 0;
  t.pkts <- 0;
  Sim.Facility.reset_stats t.wire
