type params = { net_delay : float; packet_size : int; msg_inst : int }

let default_params = { net_delay = 0.002; packet_size = 4096; msg_inst = 5000 }

type t = {
  eng : Sim.Engine.t;
  rng : Sim.Rng.t;
  prm : params;
  wire : Sim.Facility.t;
  mutable msgs : int;
  mutable pkts : int;
}

let create eng ~rng prm =
  if prm.packet_size <= 0 then invalid_arg "Network.create: packet_size <= 0";
  if prm.net_delay < 0.0 then invalid_arg "Network.create: net_delay < 0";
  {
    eng;
    rng;
    prm;
    wire = Sim.Facility.create eng ~name:"network" ();
    msgs = 0;
    pkts = 0;
  }

let params t = t.prm

let packets_for t ~bytes =
  if bytes <= 0 then 1 else (bytes + t.prm.packet_size - 1) / t.prm.packet_size

let post t ~bytes ~deliver =
  let n = packets_for t ~bytes in
  t.msgs <- t.msgs + 1;
  Sim.Engine.spawn t.eng (fun () ->
      for _ = 1 to n do
        t.pkts <- t.pkts + 1;
        let service = Sim.Rng.exponential t.rng ~mean:t.prm.net_delay in
        Sim.Facility.use t.wire service
      done;
      deliver ())

let messages_sent t = t.msgs
let packets_sent t = t.pkts
let utilization t = Sim.Facility.utilization t.wire
let mean_queue_length t = Sim.Facility.mean_queue_length t.wire

let reset_stats t =
  t.msgs <- 0;
  t.pkts <- 0;
  Sim.Facility.reset_stats t.wire
