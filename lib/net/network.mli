(** Network manager (paper §3.3.1).

    Clients and server share one FCFS medium (a 1990 Ethernet).  Messages
    are split into packets of at most [packet_size] bytes; every packet
    occupies the wire for an exponentially distributed time with mean
    [net_delay].  Per-packet CPU send/receive costs ([MsgCost]) are charged
    by the caller on the endpoint CPUs — the network only models the wire.

    [net_delay = 0] models the infinitely fast network of §5.4: packets
    still count (for statistics) but take no simulated time. *)

type params = {
  net_delay : float;  (** [NetDelay]: mean per-packet wire time (s) *)
  packet_size : int;  (** [PacketSize]: max bytes per packet *)
  msg_inst : int;  (** [MsgCost]: instructions to send or receive a packet *)
}

val default_params : params

type t

(** [create eng ~rng params] is an idle network. *)
val create : Sim.Engine.t -> rng:Sim.Rng.t -> params -> t

val params : t -> params

(** Packets needed for a message body of [bytes] (at least 1). *)
val packets_for : t -> bytes:int -> int

(** [post t ?tag ~bytes ~deliver] transmits a message asynchronously: the
    caller returns immediately; a transfer process sends each packet over
    the wire in FCFS order, then invokes [deliver] (typically: charge
    receive CPU and enqueue into the destination mailbox).  [deliver]
    runs inside a fresh process and may block.

    [tag] is the message's causal trace context.  When present it feeds
    the per-kind counters ({!kind_stats}) and — only if an
    [Obs.Causal] sink is installed — records one Send/Recv node per
    transmitted copy (fault-injected duplicates get distinct duplicate
    indexes; drops record Send+Drop).  [deliver] receives the copy's
    causal node id, or -1 when causal tracing is off. *)
val post :
  ?tag:Obs.Causal.tag -> t -> bytes:int -> deliver:(int -> unit) -> unit

(** Per-message fault verdict, consulted by {!post} when a hook is
    installed: [drop] discards the message silently; otherwise [copies]
    independent transmissions are made (at least 1), each preceded by
    [extra_delay] seconds of latency before its packets queue for the
    wire. *)
type fault = { drop : bool; extra_delay : float; copies : int }

(** [set_fault_hook t f] routes every subsequent {!post} through [f].
    Without a hook the transmission path is exactly the original —
    installing no hook guarantees bit-identical simulations.  The hook
    runs in the sender's context and must not block. *)
val set_fault_hook : t -> (bytes:int -> fault) -> unit

(** Messages posted. *)
val messages_sent : t -> int

(** Packets transmitted (or begun). *)
val packets_sent : t -> int

(** Per-message-kind wire accounting, keyed by [tag.tg_kind]: one
    message per tagged {!post} (dropped or not), packets and bytes per
    transmitted copy (so duplicates count and drops do not). *)
type kind_stat = {
  ks_msgs : int;
  ks_pkts : int;
  ks_bytes : int;
  ks_retx : int;  (** posts with a retry index > 0 *)
  ks_dups : int;  (** extra fault-injected copies beyond the original *)
}

(** Sorted per-kind counters; empty if no post carried a tag. *)
val kind_stats : t -> (string * kind_stat) list

(** Wire utilization over the measurement window. *)
val utilization : t -> float

(** Time-average number of packets queued for the wire. *)
val mean_queue_length : t -> float

(** Longest wire queue observed in the window. *)
val max_queue_length : t -> int

(** Cumulative wire busy seconds in the window. *)
val busy_time : t -> float

val reset_stats : t -> unit
