(** Network manager (paper §3.3.1).

    Clients and server share one FCFS medium (a 1990 Ethernet).  Messages
    are split into packets of at most [packet_size] bytes; every packet
    occupies the wire for an exponentially distributed time with mean
    [net_delay].  Per-packet CPU send/receive costs ([MsgCost]) are charged
    by the caller on the endpoint CPUs — the network only models the wire.

    [net_delay = 0] models the infinitely fast network of §5.4: packets
    still count (for statistics) but take no simulated time. *)

type params = {
  net_delay : float;  (** [NetDelay]: mean per-packet wire time (s) *)
  packet_size : int;  (** [PacketSize]: max bytes per packet *)
  msg_inst : int;  (** [MsgCost]: instructions to send or receive a packet *)
}

val default_params : params

type t

(** [create eng ~rng params] is an idle network. *)
val create : Sim.Engine.t -> rng:Sim.Rng.t -> params -> t

val params : t -> params

(** Packets needed for a message body of [bytes] (at least 1). *)
val packets_for : t -> bytes:int -> int

(** [post t ~bytes ~deliver] transmits a message asynchronously: the caller
    returns immediately; a transfer process sends each packet over the wire
    in FCFS order, then invokes [deliver] (typically: charge receive CPU and
    enqueue into the destination mailbox).  [deliver] runs inside a fresh
    process and may block. *)
val post : t -> bytes:int -> deliver:(unit -> unit) -> unit

(** Per-message fault verdict, consulted by {!post} when a hook is
    installed: [drop] discards the message silently; otherwise [copies]
    independent transmissions are made (at least 1), each preceded by
    [extra_delay] seconds of latency before its packets queue for the
    wire. *)
type fault = { drop : bool; extra_delay : float; copies : int }

(** [set_fault_hook t f] routes every subsequent {!post} through [f].
    Without a hook the transmission path is exactly the original —
    installing no hook guarantees bit-identical simulations.  The hook
    runs in the sender's context and must not block. *)
val set_fault_hook : t -> (bytes:int -> fault) -> unit

(** Messages posted. *)
val messages_sent : t -> int

(** Packets transmitted (or begun). *)
val packets_sent : t -> int

(** Wire utilization over the measurement window. *)
val utilization : t -> float

(** Time-average number of packets queued for the wire. *)
val mean_queue_length : t -> float

(** Longest wire queue observed in the window. *)
val max_queue_length : t -> int

(** Cumulative wire busy seconds in the window. *)
val busy_time : t -> float

val reset_stats : t -> unit
