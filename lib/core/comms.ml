let use_cpu (port : Proto.port) inst =
  if inst > 0 then
    Sim.Facility.use port.Proto.cpu (Sys_params.cpu_seconds ~mips:port.Proto.mips inst)

let send ?tag net ~msg_inst ~src ~dst ~bytes ~deliver =
  let pkts = Net.Network.packets_for net ~bytes in
  let inst = msg_inst * pkts in
  use_cpu src inst;
  Net.Network.post ?tag net ~bytes ~deliver:(fun ctx ->
      use_cpu dst inst;
      deliver ctx)
