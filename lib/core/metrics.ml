type abort_reason = Deadlock | Stale_read | Cert_fail | Lease_reclaim

type t = {
  eng : Sim.Engine.t;
  mutable start : float;
  response : Sim.Stats.t;
  response_samples : Sim.Stats.Samples.t;
  mutable n_commits : int;
  mutable n_total_commits : int;
  mutable n_deadlock : int;
  mutable n_stale : int;
  mutable n_cert : int;
  mutable n_lookups : int;
  mutable n_hits : int;
  mutable n_callbacks : int;
  mutable n_pushes : int;
  (* fault-injection availability counters (all zero under Fault.none) *)
  mutable n_lease : int;
  mutable n_retries : int;
  mutable n_crashes : int;
  mutable n_recoveries : int;
  mutable n_lost_xacts : int;
  mutable n_reclaimed_locks : int;
  mutable n_lease_lapses : int;
  mutable n_msgs_dropped : int;
  mutable n_msgs_delayed : int;
  mutable n_msgs_duplicated : int;
  recovery : Sim.Stats.t;
  (* server-fault availability counters (all zero unless the plan can
     crash the server) *)
  mutable n_server_crashes : int;
  mutable n_server_recoveries : int;
  mutable n_server_killed : int;
  mutable n_checkpoints : int;
  mutable server_downtime : float;
  server_recovery : Sim.Stats.t;
  (* sharding / two-phase-commit counters (all zero with one shard) *)
  mutable n_prepares : int;
  mutable n_xshard_commits : int;
  mutable n_xshard_aborts : int;
  mutable n_outcome_queries : int;
}

let create eng =
  {
    eng;
    start = Sim.Engine.now eng;
    response = Sim.Stats.create ();
    response_samples = Sim.Stats.Samples.create ();
    n_commits = 0;
    n_total_commits = 0;
    n_deadlock = 0;
    n_stale = 0;
    n_cert = 0;
    n_lookups = 0;
    n_hits = 0;
    n_callbacks = 0;
    n_pushes = 0;
    n_lease = 0;
    n_retries = 0;
    n_crashes = 0;
    n_recoveries = 0;
    n_lost_xacts = 0;
    n_reclaimed_locks = 0;
    n_lease_lapses = 0;
    n_msgs_dropped = 0;
    n_msgs_delayed = 0;
    n_msgs_duplicated = 0;
    recovery = Sim.Stats.create ();
    n_server_crashes = 0;
    n_server_recoveries = 0;
    n_server_killed = 0;
    n_checkpoints = 0;
    server_downtime = 0.0;
    server_recovery = Sim.Stats.create ();
    n_prepares = 0;
    n_xshard_commits = 0;
    n_xshard_aborts = 0;
    n_outcome_queries = 0;
  }

let measure_start t = t.start

let record_commit t ~response =
  t.n_commits <- t.n_commits + 1;
  t.n_total_commits <- t.n_total_commits + 1;
  Sim.Stats.add t.response response;
  Sim.Stats.Samples.add t.response_samples response

let record_abort t = function
  | Deadlock -> t.n_deadlock <- t.n_deadlock + 1
  | Stale_read -> t.n_stale <- t.n_stale + 1
  | Cert_fail -> t.n_cert <- t.n_cert + 1
  | Lease_reclaim -> t.n_lease <- t.n_lease + 1

let record_lookup t ~hit =
  t.n_lookups <- t.n_lookups + 1;
  if hit then t.n_hits <- t.n_hits + 1

let record_callback_sent t = t.n_callbacks <- t.n_callbacks + 1
let record_push_sent t = t.n_pushes <- t.n_pushes + 1
let record_retry t = t.n_retries <- t.n_retries + 1

let record_crash t ~in_xact =
  t.n_crashes <- t.n_crashes + 1;
  if in_xact then t.n_lost_xacts <- t.n_lost_xacts + 1

let record_recovery t ~downtime =
  t.n_recoveries <- t.n_recoveries + 1;
  Sim.Stats.add t.recovery downtime

let record_reclaimed t ~locks = t.n_reclaimed_locks <- t.n_reclaimed_locks + locks
let record_lease_lapse t = t.n_lease_lapses <- t.n_lease_lapses + 1
let record_msg_dropped t = t.n_msgs_dropped <- t.n_msgs_dropped + 1
let record_msg_delayed t = t.n_msgs_delayed <- t.n_msgs_delayed + 1
let record_msg_duplicated t = t.n_msgs_duplicated <- t.n_msgs_duplicated + 1

let record_server_crash t ~killed =
  t.n_server_crashes <- t.n_server_crashes + 1;
  t.n_server_killed <- t.n_server_killed + killed

let record_server_recovery t ~downtime ~recovery =
  t.n_server_recoveries <- t.n_server_recoveries + 1;
  t.server_downtime <- t.server_downtime +. downtime;
  Sim.Stats.add t.server_recovery recovery

let record_checkpoint t = t.n_checkpoints <- t.n_checkpoints + 1
let record_prepare t = t.n_prepares <- t.n_prepares + 1

let record_xshard_commit t = t.n_xshard_commits <- t.n_xshard_commits + 1
let record_xshard_abort t = t.n_xshard_aborts <- t.n_xshard_aborts + 1
let record_outcome_query t = t.n_outcome_queries <- t.n_outcome_queries + 1
let total_commits t = t.n_total_commits
let commits t = t.n_commits
let aborts t = t.n_deadlock + t.n_stale + t.n_cert + t.n_lease

let aborts_by t = function
  | Deadlock -> t.n_deadlock
  | Stale_read -> t.n_stale
  | Cert_fail -> t.n_cert
  | Lease_reclaim -> t.n_lease

let mean_response t = Sim.Stats.mean t.response
let response_quantile t q = Sim.Stats.Samples.quantile t.response_samples q
let response_stats t = t.response
let response_samples t = t.response_samples
let lookups t = t.n_lookups
let hits t = t.n_hits
let callbacks_sent t = t.n_callbacks
let pushes_sent t = t.n_pushes
let retries t = t.n_retries
let crashes t = t.n_crashes
let recoveries t = t.n_recoveries
let lost_xacts t = t.n_lost_xacts
let reclaimed_locks t = t.n_reclaimed_locks
let lease_lapses t = t.n_lease_lapses
let msgs_dropped t = t.n_msgs_dropped
let msgs_delayed t = t.n_msgs_delayed
let msgs_duplicated t = t.n_msgs_duplicated
let mean_recovery t = Sim.Stats.mean t.recovery
let server_crashes t = t.n_server_crashes
let server_recoveries t = t.n_server_recoveries
let server_killed_xacts t = t.n_server_killed
let checkpoints t = t.n_checkpoints
let server_downtime t = t.server_downtime
let mean_server_recovery t = Sim.Stats.mean t.server_recovery
let prepares t = t.n_prepares
let xshard_commits t = t.n_xshard_commits
let xshard_aborts t = t.n_xshard_aborts
let outcome_queries t = t.n_outcome_queries

let throughput t ~now =
  let dt = now -. t.start in
  if dt <= 0.0 then 0.0 else float_of_int t.n_commits /. dt

let reset t =
  t.start <- Sim.Engine.now t.eng;
  Sim.Stats.reset t.response;
  Sim.Stats.Samples.reset t.response_samples;
  t.n_commits <- 0;
  t.n_deadlock <- 0;
  t.n_stale <- 0;
  t.n_cert <- 0;
  t.n_lookups <- 0;
  t.n_hits <- 0;
  t.n_callbacks <- 0;
  t.n_pushes <- 0;
  t.n_lease <- 0;
  t.n_retries <- 0;
  t.n_crashes <- 0;
  t.n_recoveries <- 0;
  t.n_lost_xacts <- 0;
  t.n_reclaimed_locks <- 0;
  t.n_lease_lapses <- 0;
  t.n_msgs_dropped <- 0;
  t.n_msgs_delayed <- 0;
  t.n_msgs_duplicated <- 0;
  Sim.Stats.reset t.recovery;
  t.n_server_crashes <- 0;
  t.n_server_recoveries <- 0;
  t.n_server_killed <- 0;
  t.n_checkpoints <- 0;
  t.server_downtime <- 0.0;
  Sim.Stats.reset t.server_recovery;
  t.n_prepares <- 0;
  t.n_xshard_commits <- 0;
  t.n_xshard_aborts <- 0;
  t.n_outcome_queries <- 0
