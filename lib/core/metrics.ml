type abort_reason = Deadlock | Stale_read | Cert_fail

type t = {
  eng : Sim.Engine.t;
  mutable start : float;
  response : Sim.Stats.t;
  response_samples : Sim.Stats.Samples.t;
  mutable n_commits : int;
  mutable n_total_commits : int;
  mutable n_deadlock : int;
  mutable n_stale : int;
  mutable n_cert : int;
  mutable n_lookups : int;
  mutable n_hits : int;
  mutable n_callbacks : int;
  mutable n_pushes : int;
}

let create eng =
  {
    eng;
    start = Sim.Engine.now eng;
    response = Sim.Stats.create ();
    response_samples = Sim.Stats.Samples.create ();
    n_commits = 0;
    n_total_commits = 0;
    n_deadlock = 0;
    n_stale = 0;
    n_cert = 0;
    n_lookups = 0;
    n_hits = 0;
    n_callbacks = 0;
    n_pushes = 0;
  }

let measure_start t = t.start

let record_commit t ~response =
  t.n_commits <- t.n_commits + 1;
  t.n_total_commits <- t.n_total_commits + 1;
  Sim.Stats.add t.response response;
  Sim.Stats.Samples.add t.response_samples response

let record_abort t = function
  | Deadlock -> t.n_deadlock <- t.n_deadlock + 1
  | Stale_read -> t.n_stale <- t.n_stale + 1
  | Cert_fail -> t.n_cert <- t.n_cert + 1

let record_lookup t ~hit =
  t.n_lookups <- t.n_lookups + 1;
  if hit then t.n_hits <- t.n_hits + 1

let record_callback_sent t = t.n_callbacks <- t.n_callbacks + 1
let record_push_sent t = t.n_pushes <- t.n_pushes + 1
let total_commits t = t.n_total_commits
let commits t = t.n_commits
let aborts t = t.n_deadlock + t.n_stale + t.n_cert

let aborts_by t = function
  | Deadlock -> t.n_deadlock
  | Stale_read -> t.n_stale
  | Cert_fail -> t.n_cert

let mean_response t = Sim.Stats.mean t.response
let response_quantile t q = Sim.Stats.Samples.quantile t.response_samples q
let response_stats t = t.response
let response_samples t = t.response_samples
let lookups t = t.n_lookups
let hits t = t.n_hits
let callbacks_sent t = t.n_callbacks
let pushes_sent t = t.n_pushes

let throughput t ~now =
  let dt = now -. t.start in
  if dt <= 0.0 then 0.0 else float_of_int t.n_commits /. dt

let reset t =
  t.start <- Sim.Engine.now t.eng;
  Sim.Stats.reset t.response;
  Sim.Stats.Samples.reset t.response_samples;
  t.n_commits <- 0;
  t.n_deadlock <- 0;
  t.n_stale <- 0;
  t.n_cert <- 0;
  t.n_lookups <- 0;
  t.n_hits <- 0;
  t.n_callbacks <- 0;
  t.n_pushes <- 0
