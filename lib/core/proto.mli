(** Protocol vocabulary shared by the client and server transaction
    managers: the five algorithms of paper §2, the client/server message
    types, and transaction-id helpers. *)

(** Client caching mode (§2): intra-transaction caching invalidates the
    whole cache on every transaction boundary; inter-transaction caching
    keeps pages and validates them on access. *)
type caching = Intra | Inter

(** How the server propagates committed updates under no-wait locking with
    notification (§2.5): push the new page image, or just invalidate. *)
type notify_mode = Push | Invalidate

(** The five §2 algorithms (plus the intra-caching variants used by the §4
    verification experiments, and the invalidation ablation). *)
type algorithm =
  | Two_phase of caching  (** §2.1 two-phase locking *)
  | Certification of caching  (** §2.2 certification (optimistic) *)
  | Callback  (** §2.3 callback locking (retained read locks) *)
  | No_wait of { notify : notify_mode option }
      (** §2.4 no-wait locking; [Some mode] adds §2.5 notification *)

val algorithm_name : algorithm -> string

(** All algorithms compared in §5 experiments: 2PL(inter), callback,
    no-wait, no-wait+notify. *)
val section5_algorithms : algorithm list

(** Does the algorithm use inter-transaction caching? *)
val inter_caching : algorithm -> bool

(** Lock flavour requested by a client operation. *)
type lock_kind = Read | Write

(** A page reference in a fetch/validate request: [cached_version] is the
    version of the client's cached copy, or [None] on a cache miss. *)
type fetch_page = { page : int; cached_version : int option }

(** Client-to-server messages. *)
type c2s =
  | Fetch of {
      client : int;
      xid : int;
      req : int;
          (** per-client request sequence number, echoed by the reply so
              retried requests and duplicate replies pair up; 0 when fault
              injection is off *)
      mode : lock_kind;
      pages : fetch_page list;
      no_wait : bool;
          (** [true]: the client is not blocked; the server stays silent on
              success and aborts the transaction on failure (§2.4) *)
    }
  | Cert_read of { client : int; xid : int; req : int; pages : fetch_page list }
  | Commit of {
      client : int;
      xid : int;
      req : int;
      read_set : (int * int) list;
          (** certification only: (page, version-read) to validate *)
      update_pages : int list;  (** dirty page images carried along *)
      release_pages : int list;
          (** callback locking: pages whose locks the client gives up
              entirely (deferred callbacks honoured at commit) *)
    }
  | Callback_reply of { client : int; page : int }
      (** client releases the called-back lock *)
  | Release_retained of { client : int; pages : int list }
      (** client evicted clean pages that had retained locks *)
  | Dirty_evict of { client : int; xid : int; page : int }
      (** in-place algorithms: an updated page was swapped out mid-xact *)
  | Recovered of { client : int }
      (** the client rebooted with a cold cache: the server must abort its
          in-flight transaction and free every lock it held *)
  | Prepare of {
      client : int;
      xid : int;
      req : int;
      decider : int;
          (** shard whose durable commit record is the commit point *)
      read_set : (int * int) list;
      update_pages : int list;
      release_pages : int list;
    }
      (** 2PC phase one (sharded topologies): this shard's slice of the
          commit.  The shard validates, force-logs updates plus a prepare
          record, and answers with a [Vote]. *)
  | Decision of { client : int; xid : int; req : int; commit : bool }
      (** 2PC phase two: apply or abort the prepared transaction *)
  | Outcome_query of { shard : int; xid : int }
      (** shard-to-shard termination protocol: participant [shard] holds an
          in-doubt prepared transaction and asks the decider for the
          outcome; the decider answers with a [Decision] (presumed abort
          when it has no durable commit record) *)

(** Server-to-client messages. *)
type s2c =
  | Fetch_reply of { xid : int; req : int; data : (int * int) list }
      (** locks granted; (page, version) images for the stale/missing
          subset — pages whose cached copies were valid carry no data *)
  | Cert_reply of { xid : int; req : int; data : (int * int) list }
  | Commit_reply of {
      xid : int;
      req : int;
      ok : bool;
      new_versions : (int * int) list;  (** versions of our installed updates *)
      stale_pages : int list;  (** failed certification: drop these *)
    }
  | Aborted of { xid : int; stale_pages : int list }
      (** asynchronous abort: deadlock victim or no-wait stale read *)
  | Callback_request of { page : int }
      (** please release your (retained) lock on [page] *)
  | Update_push of { page : int; version : int }
      (** notification carrying the committed page image *)
  | Invalidate_page of { page : int }  (** notification without data *)
  | Server_restart of { epoch : int }
      (** the server crashed and recovered; its lock table, callback
          registrations and buffer pool are gone.  Clients run their
          per-protocol reconstruction on first sight of a new epoch *)
  | Vote of {
      xid : int;
      req : int;
      shard : int;
      ok : bool;
      stale_pages : int list;
    }
      (** 2PC: participant's vote on a [Prepare]; consumed by the
          client-side router, never by the client transaction loop *)
  | Decision_ack of {
      xid : int;
      req : int;
      shard : int;
      committed : bool;
      new_versions : (int * int) list;
    }
      (** 2PC: participant applied a [Decision]; [new_versions] is its
          slice of installed versions on commit *)

(** [make_xid ~client ~seq] packs a client id and a per-client attempt
    counter into a globally unique transaction id. *)
val make_xid : client:int -> seq:int -> int

val xid_client : int -> int

(** Originating client of any client-to-server message, or [-1] for
    shard-to-shard messages ([Outcome_query]). *)
val c2s_client : c2s -> int

(** The transaction a client-to-server message is about; [-1] for
    messages not bound to one (callback replies, retained-lock releases,
    reboots). *)
val c2s_xid : c2s -> int

(** Stable lower-case kind tags ("fetch", "commit_reply", ...) for
    causal trace contexts and per-kind network accounting. *)
val c2s_kind : c2s -> string

val s2c_kind : s2c -> string

(** The transaction a server-to-client message is about; [-1] for
    messages not bound to one (callbacks, notifications, restarts). *)
val s2c_xid : s2c -> int

(** Message sizes, for packetization: a data-free message costs
    [control_msg_bytes]; each carried page adds [page_size]. *)
val c2s_bytes : control:int -> page_size:int -> c2s -> int

val s2c_bytes : control:int -> page_size:int -> s2c -> int

(** {1 Endpoints}

    A CPU endpoint: the facility messages are charged against and its
    speed.  Built by the simulator and shared with both sides. *)

type port = { cpu : Sim.Facility.t; mips : float }
