type client_link = {
  port : Proto.port;
  inbox : (int * Proto.s2c) Sim.Mailbox.t;
      (* (causal node id, message); -1 when causal tracing is off *)
  cache_view : Storage.Lru_pool.t;
}

exception
  Server_invariant of { protocol : string; client : int; kind : string }

let () =
  Printexc.register_printer (function
    | Server_invariant { protocol; client; kind } ->
        Some
          (Printf.sprintf
             "Server_invariant { protocol = %s; client = %d; kind = %s }"
             protocol client kind)
    | _ -> None)

(* Raised inside a handler when the server crashed under it: the request
   dies silently, exactly like in-flight work lost in a real failure.
   Never escapes [handle]. *)
exception Server_down

type grant = Lock_granted | Lock_aborted

type xact = {
  x_xid : int;
  x_client : int;
  x_epoch : int;  (* server epoch at admission; stale after a crash *)
  x_start : float;
  x_chain : Sim.Facility.t;  (* serializes this transaction's operations *)
  mutable x_aborted : bool;
  mutable x_new_locks : int list;
  mutable x_upgraded : int list;
  mutable x_installed : int list;  (* pre-commit updates in buffer/disk *)
  mutable x_waits : (int * grant Sim.Ivar.t) list;
}

module Int_set = Set.Make (Int)

(* One prepared (in-doubt) 2PC participant slice: this shard voted yes
   and holds the transaction's locks/pins and reserved — unpublished —
   page versions until the decision arrives.  [p_xs = None] after a
   server crash: the slice was rebuilt from the durable prepare record,
   so it owns re-acquired locks but no live transaction. *)
type prep = {
  p_xs : xact option;
  p_client : int;
  p_decider : int;  (* shard whose durable commit record is the commit point *)
  p_read_pages : int list;
  p_updates : (int * int) list;  (* reserved (page, version) pairs *)
  p_release_pages : int list;
  p_epoch : int;
}

(* Liveness tracker for the lease sweep.  Arrival times live in a
   doubly-linked list ordered oldest-first: every message moves its
   client's node to the back (arrival times are monotone), so the sweep
   reads the expired prefix and stops at the first live client instead of
   scanning every client it ever heard from. *)
type heard_node = {
  hn_cid : int;
  mutable hn_at : float;
  mutable hn_prev : heard_node option;
  mutable hn_next : heard_node option;
}

type heard = {
  hd_tbl : (int, heard_node) Hashtbl.t;
  mutable hd_head : heard_node option; (* oldest arrival *)
  mutable hd_tail : heard_node option; (* newest arrival *)
}

let heard_create () = { hd_tbl = Hashtbl.create 64; hd_head = None; hd_tail = None }

let heard_unlink h n =
  (match n.hn_prev with
  | Some p -> p.hn_next <- n.hn_next
  | None -> h.hd_head <- n.hn_next);
  (match n.hn_next with
  | Some s -> s.hn_prev <- n.hn_prev
  | None -> h.hd_tail <- n.hn_prev);
  n.hn_prev <- None;
  n.hn_next <- None

let heard_push_back h n =
  n.hn_next <- None;
  n.hn_prev <- h.hd_tail;
  (match h.hd_tail with
  | Some l -> l.hn_next <- Some n
  | None -> h.hd_head <- Some n);
  h.hd_tail <- Some n

let heard_touch h cid ~at =
  match Hashtbl.find_opt h.hd_tbl cid with
  | Some n ->
      n.hn_at <- at;
      heard_unlink h n;
      heard_push_back h n
  | None ->
      let n = { hn_cid = cid; hn_at = at; hn_prev = None; hn_next = None } in
      Hashtbl.replace h.hd_tbl cid n;
      heard_push_back h n

(* Clients silent for longer than [lease], oldest first.  O(expired). *)
let heard_expired h ~now ~lease =
  let rec go acc = function
    | Some n when now -. n.hn_at > lease -> go (n.hn_cid :: acc) n.hn_next
    | Some _ | None -> List.rev acc
  in
  go [] h.hd_head

let heard_reset h =
  Hashtbl.reset h.hd_tbl;
  h.hd_head <- None;
  h.hd_tail <- None

type t = {
  eng : Sim.Engine.t;
  cfg : Sys_params.t;
  db : Db.Database.t;
  algo : Proto.algorithm;
  net : Net.Network.t;
  rng : Sim.Rng.t;
  metrics : Metrics.t;
  sport : Proto.port;
  disks : Storage.Disk.t array;
  log : Storage.Log_manager.t option;
  log_disk_dev : Storage.Disk.t option;
  buf : Storage.Lru_pool.t;
  mutable lock_table : Cc.Lock_table.t;
  version_table : Cc.Version_table.t;
  mutable clients : client_link array;
  active : (int, xact) Hashtbl.t; (* by xid *)
  active_by_client : (int, xact) Hashtbl.t;
  admitting : (int, xact Sim.Ivar.t) Hashtbl.t;
  mutable n_active : int;
  ready : unit Sim.Ivar.t Queue.t;
  tombstones : (int, unit) Hashtbl.t;
  in_flight : (int, Sim.Condition.t) Hashtbl.t;
  wait_since : (int, float) Hashtbl.t; (* client -> when its lock wait began *)
  mutable detector_armed : bool; (* callback-mode periodic deadlock detector *)
  fault : Fault.Plan.t;
  faulty : bool; (* [Fault.Plan.active fault]: gates every recovery path *)
  completed : (int, Proto.s2c) Hashtbl.t; (* xid -> final commit reply *)
  last_heard : heard; (* per-client last message arrival, oldest first *)
  cached_by : (int, Int_set.t ref) Hashtbl.t;
      (* page -> clients caching it, mirrored from the client cache pools
         via residency hooks; an ordered set because the notify loop needs
         "next caching client above cid" evaluated at visit time (sends
         suspend, and caches change under the suspension).  Only maintained
         when the algorithm can send update notifications, so other runs
         pay nothing *)
  (* server crash/recovery (inert unless the plan can crash the server) *)
  srv_faulty : bool; (* [fault.server_crash_mean > 0]: typed logging on *)
  mutable epoch : int; (* bumped at every crash; guards zombie handlers *)
  mutable down : bool; (* down servers hear nothing *)
  mutable down_since : float;
  durable_commits : (int, unit) Hashtbl.t; (* rebuilt from the log *)
  unforced_page : (int, int) Hashtbl.t;
      (* page -> log index of the commit record behind its latest version,
         while that record may still be in the buffered log tail (WAL read
         rule: readers force the log before such a page is shipped) *)
  (* sharded topologies (inert with a single server: [peers = [||]],
     [prepared]/[pinned] stay empty, and every guard below is an O(1)
     pure read, keeping one-shard runs bit-identical) *)
  mutable shard_id : int;
  mutable peers : t array; (* every shard, self included; [||] unsharded *)
  prepared : (int, prep) Hashtbl.t; (* xid -> in-doubt 2PC slice *)
  pinned : (int, int) Hashtbl.t;
      (* page -> xid: prepare pins under certification, standing in for
         the locks the optimistic algorithms never take — any competing
         validation against a pinned page fails while the outcome of the
         pinning transaction is in doubt *)
  mutable local_commits : int; (* commits applied on this shard *)
}

let create ?(fault = Fault.Plan.none) ?(label = "") eng ~cfg ~db ~algo ~net
    ~rng ~metrics =
  Sys_params.validate cfg;
  if
    fault.Fault.Plan.server_crash_mean > 0.0
    && cfg.Sys_params.n_log_disks <= 0
  then
    invalid_arg
      "Server.create: a server-crash plan needs a log disk (n_log_disks > \
       0), or committed state cannot survive the crash";
  let cpu =
    Sim.Facility.create eng ~name:(label ^ "server-cpu")
      ~capacity:cfg.Sys_params.n_server_cpus ()
  in
  let disks =
    Array.init cfg.Sys_params.n_data_disks (fun i ->
        Storage.Disk.create eng
          ~rng:(Sim.Rng.split rng (Printf.sprintf "disk-%d" i))
          ~name:(Printf.sprintf "%sdata-disk-%d" label i)
          cfg.Sys_params.disk)
  in
  let log_disk_dev =
    if cfg.Sys_params.n_log_disks > 0 then
      Some
        (Storage.Disk.create eng ~rng:(Sim.Rng.split rng "log-disk")
           ~name:(label ^ "log-disk") cfg.Sys_params.disk)
    else None
  in
  let log =
    Option.map (fun d -> Storage.Log_manager.create eng ~disk:d ()) log_disk_dev
  in
  {
    eng;
    cfg;
    db;
    algo;
    net;
    rng;
    metrics;
    sport = { Proto.cpu; mips = cfg.Sys_params.server_mips };
    disks;
    log;
    log_disk_dev;
    buf = Storage.Lru_pool.create ~capacity:cfg.Sys_params.buffer_size;
    lock_table = Cc.Lock_table.create ();
    version_table = Cc.Version_table.create ();
    clients = [||];
    active = Hashtbl.create 256;
    active_by_client = Hashtbl.create 256;
    admitting = Hashtbl.create 16;
    n_active = 0;
    ready = Queue.create ();
    tombstones = Hashtbl.create 1024;
    in_flight = Hashtbl.create 64;
    wait_since = Hashtbl.create 64;
    detector_armed = false;
    fault;
    faulty = Fault.Plan.active fault;
    completed = Hashtbl.create 1024;
    last_heard = heard_create ();
    cached_by = Hashtbl.create 1024;
    srv_faulty = fault.Fault.Plan.server_crash_mean > 0.0;
    epoch = 0;
    down = false;
    down_since = 0.0;
    durable_commits = Hashtbl.create 64;
    unforced_page = Hashtbl.create 64;
    shard_id = 0;
    peers = [||];
    prepared = Hashtbl.create 16;
    pinned = Hashtbl.create 64;
    local_commits = 0;
  }

(* Wire this server into a sharded topology.  [peers] lists every shard
   (self included) so the union waits-for graph and shard-to-shard
   messages can reach any of them. *)
let set_peers t ~shard_id peers =
  t.shard_id <- shard_id;
  t.peers <- peers

let sharded t = Array.length t.peers > 0

(* ------------------------------------------------------------------ *)
(* Span instrumentation                                                *)
(* ------------------------------------------------------------------ *)

(* Server-side phase spans (disk I/O, WAL forces, lock waits) are root
   spans on this shard's track: they overlap the clients' wait phases
   in the waterfall rather than adding to them.  Emission only reads
   the engine clock — no hold, no randomness — and the whole wrapper is
   a bare [f ()] when no span sink is installed. *)
let sspan t kind f =
  if not (Obs.Span.active ()) then f ()
  else begin
    let id =
      Obs.Span.open_span ~time:(Sim.Engine.now t.eng)
        ~track:(Obs.Span.Server t.shard_id) ~kind ~parent:(-1) ~xid:(-1)
    in
    Fun.protect
      ~finally:(fun () -> Obs.Span.close_span ~time:(Sim.Engine.now t.eng) id)
      f
  end

(* WAL forces, wrapped in a [Log_force] span. *)
let force_commit_sp t log ~n_updates =
  sspan t Obs.Span.Log_force (fun () ->
      Storage.Log_manager.force_commit log ~n_updates)

let force_abort_sp ?xid t log ~n_updates =
  sspan t Obs.Span.Log_force (fun () ->
      Storage.Log_manager.force_abort ?xid log ~n_updates)

let force_prepare_sp t log ~xid ~decider ~read_pages ~updates =
  sspan t Obs.Span.Log_force (fun () ->
      Storage.Log_manager.force_prepare log ~xid ~decider ~read_pages ~updates)

let force_pending_sp t log =
  sspan t Obs.Span.Log_force (fun () -> Storage.Log_manager.force_pending log)

(* [deliver] is defined at the bottom of the file but shard-to-shard
   sends need it; tied after its definition. *)
let deliver_ref : (t -> ctx:int -> Proto.c2s -> unit) ref =
  ref (fun _ ~ctx:_ _ -> assert false)

(* Only algorithms that can send update notifications ever consult the
   page -> caching-clients index; everyone else skips the bookkeeping. *)
let sends_notifications t =
  match t.algo with
  | Proto.No_wait { notify = Some _ } -> true
  | Proto.No_wait { notify = None } | Proto.Two_phase _ | Proto.Callback ->
      t.cfg.Sys_params.notify_updates <> None
  | Proto.Certification _ -> false

let cached_by_add t cid page =
  match Hashtbl.find_opt t.cached_by page with
  | Some r -> r := Int_set.add cid !r
  | None -> Hashtbl.replace t.cached_by page (ref (Int_set.singleton cid))

let cached_by_drop t cid page =
  match Hashtbl.find_opt t.cached_by page with
  | None -> ()
  | Some r ->
      r := Int_set.remove cid !r;
      if Int_set.is_empty !r then Hashtbl.remove t.cached_by page

let register_clients ?(hooks = true) t links =
  t.clients <- links;
  if hooks && sends_notifications t then begin
    Hashtbl.reset t.cached_by;
    Array.iteri
      (fun cid link ->
        Storage.Lru_pool.set_residency_hook link.cache_view
          ~on_add:(fun page -> cached_by_add t cid page)
          ~on_drop:(fun page -> cached_by_drop t cid page);
        (* seed from anything already resident, so the index mirrors the
           pools from the moment of registration *)
        List.iter
          (fun page -> cached_by_add t cid page)
          (Storage.Lru_pool.pages_mru link.cache_view))
      links
  end

(* Sharded assemblies install one residency-hook dispatcher per client
   pool (a pool has a single hook slot) and route each page to its
   shard's index through these. *)
let residency_add = cached_by_add
let residency_drop = cached_by_drop
let notifies = sends_notifications
let port t = t.sport
let buffer t = t.buf
let locks t = t.lock_table
let versions t = t.version_table
let data_disks t = t.disks
let log_disk t = t.log_disk_dev
let active_count t = t.n_active
let ready_queue_length t = Queue.length t.ready
let cpu_utilization t = Sim.Facility.utilization t.sport.Proto.cpu

let mean_disk_utilization t =
  let total =
    Array.fold_left (fun acc d -> acc +. Storage.Disk.utilization d) 0.0 t.disks
  in
  total /. float_of_int (Array.length t.disks)

let reset_stats t =
  Sim.Facility.reset_stats t.sport.Proto.cpu;
  Array.iter Storage.Disk.reset_stats t.disks;
  Option.iter Storage.Disk.reset_stats t.log_disk_dev;
  Option.iter Storage.Log_manager.reset_stats t.log;
  t.local_commits <- 0

let describe_s2c = function
  | Proto.Fetch_reply { data; _ } ->
      Printf.sprintf "fetch reply (%d data pages)" (List.length data)
  | Proto.Cert_reply { data; _ } ->
      Printf.sprintf "cert reply (%d data pages)" (List.length data)
  | Proto.Commit_reply { ok; _ } ->
      if ok then "commit ok" else "certification failed"
  | Proto.Aborted _ -> "aborted"
  | Proto.Callback_request { page } -> Printf.sprintf "callback request p%d" page
  | Proto.Update_push { page; _ } -> Printf.sprintf "update push p%d" page
  | Proto.Invalidate_page { page } -> Printf.sprintf "invalidate p%d" page
  | Proto.Server_restart { epoch } ->
      Printf.sprintf "server restarted (epoch %d)" epoch
  | Proto.Vote { shard; ok; _ } ->
      Printf.sprintf "vote %s (shard %d)" (if ok then "yes" else "no") shard
  | Proto.Decision_ack { shard; committed; _ } ->
      Printf.sprintf "decision ack %s (shard %d)"
        (if committed then "committed" else "aborted")
        shard

(* [ctx] is the causal node id of the message whose receipt caused this
   send (-1 when none), [xid] overrides the transaction attribution for
   messages whose payload carries no xid (callback requests and update
   notifications belong to the transaction that triggered them), and
   [retry] is the retransmission index of server-side re-sends (callback
   nags).  The tag is always built: per-kind network accounting runs
   even without a causal sink, like the aggregate message counters. *)
let send_to_client ?(ctx = -1) ?xid ?(retry = 0) t cid msg =
  if Trace.active () then begin
    let time = Sim.Engine.now t.eng in
    match msg with
    | Proto.Callback_request { page } ->
        Trace.emit time (Trace.Callback { holder = cid; page })
    | Proto.Update_push { page; _ } ->
        Trace.emit time (Trace.Notify { client = cid; page; push = true })
    | Proto.Invalidate_page { page } ->
        Trace.emit time (Trace.Notify { client = cid; page; push = false })
    | m ->
        Trace.emit time
          (Trace.Server_reply
             { client = cid; xid = (match m with
                 | Proto.Fetch_reply { xid; _ } | Proto.Cert_reply { xid; _ }
                 | Proto.Commit_reply { xid; _ } | Proto.Aborted { xid; _ } -> xid
                 | _ -> -1);
               what = describe_s2c m })
  end;
  let link = t.clients.(cid) in
  let bytes =
    Proto.s2c_bytes ~control:t.cfg.Sys_params.control_msg_bytes
      ~page_size:t.cfg.Sys_params.page_size msg
  in
  let xid = match xid with Some x -> x | None -> Proto.s2c_xid msg in
  let tag =
    {
      Obs.Causal.tg_parent = ctx;
      tg_xid = xid;
      tg_owner = (if xid >= 0 then Proto.xid_client xid else -1);
      tg_kind = Proto.s2c_kind msg;
      tg_src = Obs.Causal.Shard t.shard_id;
      tg_dst = Obs.Causal.Client cid;
      tg_retry = retry;
    }
  in
  Comms.send ~tag t.net ~msg_inst:t.cfg.Sys_params.net.Net.Network.msg_inst
    ~src:t.sport ~dst:link.port ~bytes ~deliver:(fun node ->
      Sim.Mailbox.send link.inbox (node, msg))

(* Shard-to-shard transport (the 2PC termination protocol): same network
   and cost model as any other message, delivered into the peer's normal
   dispatch. *)
let send_to_shard ?(ctx = -1) ?(retry = 0) t dst msg =
  let peer = t.peers.(dst) in
  let bytes =
    Proto.c2s_bytes ~control:t.cfg.Sys_params.control_msg_bytes
      ~page_size:t.cfg.Sys_params.page_size msg
  in
  let xid = Proto.c2s_xid msg in
  let tag =
    {
      Obs.Causal.tg_parent = ctx;
      tg_xid = xid;
      tg_owner = (if xid >= 0 then Proto.xid_client xid else -1);
      tg_kind = Proto.c2s_kind msg;
      tg_src = Obs.Causal.Shard t.shard_id;
      tg_dst = Obs.Causal.Shard dst;
      tg_retry = retry;
    }
  in
  Comms.send ~tag t.net ~msg_inst:t.cfg.Sys_params.net.Net.Network.msg_inst
    ~src:t.sport ~dst:peer.sport ~bytes ~deliver:(fun node ->
      !deliver_ref peer ~ctx:node msg)

let tombstoned t xid = Hashtbl.mem t.tombstones xid

(* 2PC pins (certification only): pages whose fate rides on an in-doubt
   prepared transaction.  Empty in every unsharded run. *)
let pin_pages t xid pages = List.iter (fun p -> Hashtbl.replace t.pinned p xid) pages

let unpin_xact t xid =
  if Hashtbl.length t.pinned > 0 then
    let mine =
      Hashtbl.fold
        (fun p owner acc -> if owner = xid then p :: acc else acc)
        t.pinned []
    in
    List.iter (Hashtbl.remove t.pinned) mine

let pin_conflicts t ~xid pages =
  if Hashtbl.length t.pinned = 0 then []
  else
    List.filter
      (fun page ->
        match Hashtbl.find_opt t.pinned page with
        | Some owner -> owner <> xid
        | None -> false)
      pages

let client_has_prepared t ~client =
  Hashtbl.length t.prepared > 0
  && Hashtbl.fold
       (fun _ pr acc -> acc || pr.p_client = client)
       t.prepared false

(* Epoch barrier for handler code resuming from a suspension point (a
   disk access, a CPU charge, a facility queue): if the server crashed
   meanwhile, this process is a zombie of a dead incarnation and must not
   touch the rebuilt state. *)
let barrier t (xs : xact) = if t.epoch <> xs.x_epoch then raise Server_down

(* ------------------------------------------------------------------ *)
(* MPL admission (ready queue of Figure 4)                             *)
(* ------------------------------------------------------------------ *)

let admit t ~client ~xid =
  match Hashtbl.find_opt t.active xid with
  | Some xs -> xs
  | None -> (
      match Hashtbl.find_opt t.admitting xid with
      | Some iv -> Sim.Ivar.read iv
      | None ->
          let iv = Sim.Ivar.create t.eng in
          Hashtbl.replace t.admitting xid iv;
          if t.n_active >= t.cfg.Sys_params.mpl then begin
            let slot = Sim.Ivar.create t.eng in
            Queue.add slot t.ready;
            Sim.Ivar.read slot
            (* the slot was transferred by the closer: n_active unchanged *)
          end
          else t.n_active <- t.n_active + 1;
          (match t.log with
          | Some log when t.srv_faulty -> Storage.Log_manager.log_begin log ~xid
          | Some _ | None -> ());
          let xs =
            {
              x_xid = xid;
              x_client = client;
              x_epoch = t.epoch;
              x_start = Sim.Engine.now t.eng;
              x_chain =
                Sim.Facility.create t.eng
                  ~name:(Printf.sprintf "chain-%d" xid)
                  ();
              x_aborted = false;
              x_new_locks = [];
              x_upgraded = [];
              x_installed = [];
              x_waits = [];
            }
          in
          Hashtbl.replace t.active xid xs;
          Hashtbl.replace t.active_by_client client xs;
          Hashtbl.remove t.admitting xid;
          Sim.Ivar.fill iv xs;
          xs)

let close_xact t xs =
  if Hashtbl.mem t.active xs.x_xid then begin
    Hashtbl.remove t.active xs.x_xid;
    Hashtbl.remove t.active_by_client xs.x_client;
    match Queue.take_opt t.ready with
    | Some slot -> Sim.Ivar.fill slot () (* hand the MPL slot over *)
    | None -> t.n_active <- t.n_active - 1
  end

(* ------------------------------------------------------------------ *)
(* Buffer manager                                                      *)
(* ------------------------------------------------------------------ *)

let disk_for t page = t.disks.(Db.Database.disk_of_page t.db ~n_disks:(Array.length t.disks) page)

(* Write an evicted dirty frame back to its data disk. *)
let write_back t page =
  Comms.use_cpu t.sport t.cfg.Sys_params.init_disk_inst;
  sspan t Obs.Span.Disk_io (fun () ->
      Storage.Disk.access (disk_for t page) ~seeks:1 ~pages:1)

let install_page t page ~dirty =
  match Storage.Lru_pool.insert t.buf page ~dirty with
  | None -> ()
  | Some v -> if v.Storage.Lru_pool.dirty then write_back t v.Storage.Lru_pool.page

(* Make [page] buffer-resident, joining any in-flight read for it (the
   paper's hot-spot argument: one I/O serves all concurrent readers). *)
let rec ensure_resident t page =
  let epoch0 = t.epoch in
  if Storage.Lru_pool.touch t.buf page then ()
  else
    match Hashtbl.find_opt t.in_flight page with
    | Some cond ->
        Sim.Condition.await cond;
        if t.epoch <> epoch0 then raise Server_down;
        ensure_resident t page
    | None ->
        let cond = Sim.Condition.create t.eng in
        Hashtbl.replace t.in_flight page cond;
        Comms.use_cpu t.sport t.cfg.Sys_params.init_disk_inst;
        if Trace.active () then
          Trace.emit (Sim.Engine.now t.eng) (Trace.Disk_read { page });
        sspan t Obs.Span.Disk_io (fun () ->
            Storage.Disk.access (disk_for t page) ~seeks:1 ~pages:1);
        (* a crash while the I/O was in flight wiped [in_flight] and the
           pool: the result must not pollute the new incarnation, and the
           parked co-waiters of [cond] are zombies too — leave them *)
        if t.epoch <> epoch0 then raise Server_down;
        install_page t page ~dirty:false;
        if t.epoch <> epoch0 then raise Server_down;
        Hashtbl.remove t.in_flight page;
        ignore (Sim.Condition.broadcast cond)

(* Read several pages (one object's worth), exploiting clustering: the
   missing pages of each disk are fetched in one access whose seek count
   follows the ClusterFactor model. *)
let read_pages t pages =
  match pages with
  | [] -> ()
  | [ page ] -> ensure_resident t page
  | _ ->
      let epoch0 = t.epoch in
      let misses =
        List.filter
          (fun p ->
            (not (Storage.Lru_pool.touch t.buf p))
            && not (Hashtbl.mem t.in_flight p))
          pages
      in
      let by_disk = Hashtbl.create 4 in
      List.iter
        (fun p ->
          let d = Db.Database.disk_of_page t.db ~n_disks:(Array.length t.disks) p in
          let l = try Hashtbl.find by_disk d with Not_found -> [] in
          Hashtbl.replace by_disk d (p :: l))
        misses;
      let conds =
        List.map
          (fun p ->
            let c = Sim.Condition.create t.eng in
            Hashtbl.replace t.in_flight p c;
            (p, c))
          misses
      in
      Hashtbl.iter
        (fun d group ->
          let seeks = Db.Database.seeks_for_pages t.db t.rng group in
          Comms.use_cpu t.sport t.cfg.Sys_params.init_disk_inst;
          sspan t Obs.Span.Disk_io (fun () ->
              Storage.Disk.access t.disks.(d) ~seeks ~pages:(List.length group));
          if t.epoch <> epoch0 then raise Server_down;
          List.iter (fun p -> install_page t p ~dirty:false) group)
        by_disk;
      if t.epoch <> epoch0 then raise Server_down;
      List.iter
        (fun (p, c) ->
          Hashtbl.remove t.in_flight p;
          ignore (Sim.Condition.broadcast c))
        conds;
      (* anything that was in flight under another process: wait for it *)
      List.iter
        (fun p -> if not (Storage.Lru_pool.mem t.buf p) then ensure_resident t p)
        pages

(* ------------------------------------------------------------------ *)
(* Aborts and deadlock detection                                       *)
(* ------------------------------------------------------------------ *)

(* Undo any of the victim's updates that reached the buffer pool before
   commit; pages already forced to disk cost a read-modify-write. *)
let undo_installed t xs =
  (* every iteration crosses suspension points; if the server crashes
     mid-undo the remaining work belongs to a dead incarnation *)
  List.iter
    (fun page ->
      if t.epoch = xs.x_epoch then begin
        Comms.use_cpu t.sport t.cfg.Sys_params.server_proc_inst;
        if t.epoch = xs.x_epoch then
          if Storage.Lru_pool.mem t.buf page then
            ignore (Storage.Lru_pool.remove t.buf page)
          else begin
            Comms.use_cpu t.sport t.cfg.Sys_params.init_disk_inst;
            sspan t Obs.Span.Disk_io (fun () ->
                Storage.Disk.access (disk_for t page) ~seeks:1 ~pages:2)
          end
      end)
    xs.x_installed;
  if t.epoch = xs.x_epoch then
    match t.log with
    | Some log when t.srv_faulty ->
        (* crashable servers log every abort, even update-free ones, so
           recovery can rebuild the tombstone set from durable records *)
        force_abort_sp ~xid:xs.x_xid t log
          ~n_updates:(List.length xs.x_installed)
    | Some log when xs.x_installed <> [] ->
        force_abort_sp t log ~n_updates:(List.length xs.x_installed)
    | Some _ | None -> ()

(* [record] and [notify] exist for the sharded paths: a transaction
   aborted on several shards is counted once, and its client is told by
   whoever owns the verdict (the 2PC router), not by every shard. *)
let abort_xact ?(ctx = -1) ?(record = true) ?(notify = true) t xs ~reason
    ~stale =
  if not xs.x_aborted then begin
    xs.x_aborted <- true;
    Hashtbl.replace t.tombstones xs.x_xid ();
    if Trace.active () then
      Trace.emit (Sim.Engine.now t.eng)
        (Trace.Abort
           {
             client = xs.x_client;
             xid = xs.x_xid;
             reason =
               (match reason with
               | Metrics.Deadlock -> "deadlock"
               | Metrics.Stale_read -> "stale read"
               | Metrics.Cert_fail -> "certification"
               | Metrics.Lease_reclaim -> "lease reclaimed");
           });
    if record then Metrics.record_abort t.metrics reason;
    if Obs.Metrics.active () then
      Obs.Metrics.incr_s
        (match reason with
        | Metrics.Deadlock -> "ccsim_aborts_total{cause=\"deadlock\"}"
        | Metrics.Stale_read -> "ccsim_aborts_total{cause=\"stale_read\"}"
        | Metrics.Cert_fail -> "ccsim_aborts_total{cause=\"cert_fail\"}"
        | Metrics.Lease_reclaim -> "ccsim_aborts_total{cause=\"lease_reclaim\"}")
        1;
    List.iter
      (fun (page, cell) ->
        Cc.Lock_table.cancel_wait t.lock_table ~page xs.x_client;
        ignore (Sim.Ivar.try_fill cell Lock_aborted))
      xs.x_waits;
    xs.x_waits <- [];
    (match t.algo with
    | Proto.Callback ->
        (* keep retained locks from previous transactions; release only what
           this transaction acquired, and undo its upgrades *)
        List.iter
          (fun p -> Cc.Lock_table.release t.lock_table ~page:p xs.x_client)
          xs.x_new_locks;
        List.iter
          (fun p -> Cc.Lock_table.downgrade t.lock_table ~page:p xs.x_client)
          xs.x_upgraded
    | Proto.Two_phase _ | Proto.Certification _ | Proto.No_wait _ ->
        ignore (Cc.Lock_table.release_all t.lock_table xs.x_client));
    close_xact t xs;
    (* the undo work and abort message happen off the caller's process so a
       deadlock-detecting handler is not charged the victim's cleanup *)
    Sim.Engine.spawn t.eng (fun () ->
        undo_installed t xs;
        if notify then
          send_to_client ~ctx t xs.x_client
            (Proto.Aborted { xid = xs.x_xid; stale_pages = stale }))
  end

(* ---- sharded deadlock plumbing -------------------------------------- *)

(* Cross-shard transactions hold locks on several shards at once, so a
   cycle can thread through more than one lock table.  The union graph
   over every peer finds those; unsharded runs keep the single-table
   build untouched. *)
let waits_graph t =
  if not (sharded t) then Cc.Waits_for.of_lock_table t.lock_table
  else begin
    let g = Cc.Waits_for.create () in
    Array.iter (fun p -> Cc.Waits_for.add_lock_table g p.lock_table) t.peers;
    g
  end

let start_time_of t c =
  if not (sharded t) then
    match Hashtbl.find_opt t.active_by_client c with
    | Some xs -> xs.x_start
    | None -> neg_infinity
  else
    Array.fold_left
      (fun acc p ->
        match Hashtbl.find_opt p.active_by_client c with
        | Some xs -> Float.min acc xs.x_start
        | None -> acc)
      infinity t.peers
    |> fun v -> if v = infinity then neg_infinity else v

(* Abort the victim's transaction on every shard where it is active.
   Metrics and the client notification happen exactly once; returns
   whether any slice was found. *)
let abort_victim t ~victim ~reason =
  if not (sharded t) then
    match Hashtbl.find_opt t.active_by_client victim with
    | Some xs ->
        abort_xact t xs ~reason ~stale:[];
        true
    | None -> false
  else begin
    let found = ref false in
    Array.iter
      (fun p ->
        match Hashtbl.find_opt p.active_by_client victim with
        | Some xs when not xs.x_aborted ->
            abort_xact ~record:(not !found) ~notify:(not !found) p xs ~reason
              ~stale:[];
            found := true
        | Some _ | None -> ())
      t.peers;
    !found
  end

(* One blocking request can close several cycles at once, so keep breaking
   cycles through the requester until none remain (or the requester itself
   was chosen as a victim, which clears its wait edges). *)
let check_deadlock t ~requester =
  let rec break () =
    let g = waits_graph t in
    match Cc.Waits_for.find_cycle_from g requester with
    | None -> ()
    | Some cycle ->
        let victim =
          Cc.Waits_for.pick_victim ~start_time:(start_time_of t) cycle
        in
        if Trace.active () then
          Trace.emit (Sim.Engine.now t.eng)
            (Trace.Deadlock { victim_client = victim; cycle });
        if abort_victim t ~victim ~reason:Metrics.Deadlock then begin
          if victim <> requester then break ()
        end
        else
          (* a retained-lock holder with no active transaction cannot be
             in a cycle (it has no outgoing wait edge) *)
          raise
            (Server_invariant
               {
                 protocol = Proto.algorithm_name t.algo;
                 client = victim;
                 kind = "deadlock-victim-without-active-transaction";
               })
  in
  break ()

(* Periodic deadlock detector for callback locking.  Edges into retained
   locks are spurious until the holder has had a chance to answer the
   callback (§6), so a cycle is only trusted once every member has been
   waiting at least one grace period; younger cycles either dissolve via
   in-flight callback replies or are caught by a later sweep.  The detector
   arms itself when a request blocks and disarms when nothing waits, so a
   quiescent simulation still drains. *)
let wait_since_of t c =
  if not (sharded t) then Hashtbl.find_opt t.wait_since c
  else
    Array.fold_left
      (fun acc p ->
        match (Hashtbl.find_opt p.wait_since c, acc) with
        | Some s, Some a -> Some (Float.min s a)
        | Some s, None -> Some s
        | None, acc -> acc)
      None t.peers

let stable_cycle t ~now cycle =
  List.for_all
    (fun c ->
      match wait_since_of t c with
      | Some since -> now -. since >= t.cfg.Sys_params.callback_grace
      | None -> false)
    cycle

let all_waiting_owners t =
  let of_table tbl =
    List.map (fun (_, o, _) -> o) (Cc.Lock_table.all_waiting tbl)
  in
  let owners =
    if not (sharded t) then of_table t.lock_table
    else
      Array.fold_left
        (fun acc p -> List.rev_append (of_table p.lock_table) acc)
        [] t.peers
  in
  List.sort_uniq Int.compare owners

let deadlock_sweep t =
  let now = Sim.Engine.now t.eng in
  let rec loop () =
    let g = waits_graph t in
    let actionable =
      List.find_map
        (fun o ->
          match Cc.Waits_for.find_cycle_from g o with
          | Some cycle when stable_cycle t ~now cycle -> Some cycle
          | Some _ | None -> None)
        (all_waiting_owners t)
    in
    match actionable with
    | None -> ()
    | Some cycle ->
        let victim =
          Cc.Waits_for.pick_victim ~start_time:(start_time_of t) cycle
        in
        ignore (abort_victim t ~victim ~reason:Metrics.Deadlock);
        loop ()
  in
  loop ()

let rec arm_detector t =
  if not t.detector_armed then begin
    t.detector_armed <- true;
    Sim.Engine.schedule t.eng
      ~at:(Sim.Engine.now t.eng +. t.cfg.Sys_params.callback_grace)
      (fun () ->
        t.detector_armed <- false;
        deadlock_sweep t;
        (* waits younger than one grace period were skipped by the
           stability rule and deserve another look; older waits were fully
           checked, and any future cycle needs a new block, which re-arms *)
        let now = Sim.Engine.now t.eng in
        let young =
          Hashtbl.fold
            (fun _ since acc ->
              acc || now -. since < t.cfg.Sys_params.callback_grace)
            t.wait_since false
        in
        if young then arm_detector t)
  end

(* ------------------------------------------------------------------ *)
(* Lock acquisition                                                    *)
(* ------------------------------------------------------------------ *)

let lt_mode = function Proto.Read -> Cc.Lock_table.S | Proto.Write -> Cc.Lock_table.X

let record_acquisition xs page ~before ~after =
  match (before, after) with
  | None, Some _ -> xs.x_new_locks <- page :: xs.x_new_locks
  | Some Cc.Lock_table.S, Some Cc.Lock_table.X ->
      xs.x_upgraded <- page :: xs.x_upgraded
  | _ -> ()

(* A grant that lands after (or concurrently with) the transaction's abort
   must be given back immediately: the abort's lock sweep has already run
   and would otherwise leave the lock held forever. *)
let undo_grant t ~page ~client ~before =
  match before with
  | None -> Cc.Lock_table.release t.lock_table ~page client
  | Some Cc.Lock_table.S -> Cc.Lock_table.downgrade t.lock_table ~page client
  | Some Cc.Lock_table.X -> ()

let acquire ?(ctx = -1) t xs ~page ~mode =
  let client = xs.x_client in
  if xs.x_aborted then Lock_aborted
  else begin
    let before = Cc.Lock_table.held t.lock_table ~page client in
    let cell = Sim.Ivar.create t.eng in
    let wake () = ignore (Sim.Ivar.try_fill cell Lock_granted) in
    match Cc.Lock_table.request t.lock_table ~page client (lt_mode mode) ~wake with
    | Cc.Lock_table.Granted ->
        record_acquisition xs page ~before
          ~after:(Cc.Lock_table.held t.lock_table ~page client);
        Lock_granted
    | Cc.Lock_table.Blocked holders ->
        if Trace.active () then
          Trace.emit (Sim.Engine.now t.eng)
            (Trace.Lock_wait
               {
                 client;
                 page;
                 mode = (match mode with Proto.Read -> "S" | Proto.Write -> "X");
               });
        (* register the wait before anything that can suspend, so an abort
           arriving mid-callback-send still cancels this queued request *)
        xs.x_waits <- (page, cell) :: xs.x_waits;
        if not (Hashtbl.mem t.wait_since client) then
          Hashtbl.replace t.wait_since client (Sim.Engine.now t.eng);
        (* callback locking: ask the blocking clients to give the lock back *)
        (match t.algo with
        | Proto.Callback ->
            List.iter
              (fun holder ->
                if holder <> client then begin
                  Metrics.record_callback_sent t.metrics;
                  send_to_client ~ctx ~xid:xs.x_xid t holder
                    (Proto.Callback_request { page })
                end)
              holders;
            (* under message loss a callback request (or its reply) can
               vanish; re-nag the surviving holders until the wait ends *)
            if t.faulty && t.fault.Fault.Plan.callback_retry > 0.0 then
              Sim.Engine.spawn t.eng (fun () ->
                  let rec nag n =
                    Sim.Engine.hold t.fault.Fault.Plan.callback_retry;
                    if
                      (not (Sim.Ivar.is_filled cell))
                      && (not xs.x_aborted)
                      && t.epoch = xs.x_epoch
                    then begin
                      List.iter
                        (fun (holder, _m) ->
                          if holder <> client then begin
                            Metrics.record_callback_sent t.metrics;
                            send_to_client ~ctx ~xid:xs.x_xid ~retry:n t
                              holder (Proto.Callback_request { page })
                          end)
                        (Cc.Lock_table.holders t.lock_table ~page);
                      nag (n + 1)
                    end
                  in
                  nag 1)
        | _ -> ());
        (match t.algo with
        | Proto.Callback when t.cfg.Sys_params.callback_grace > 0.0 ->
            (* deadlock detection is the periodic detector's job *)
            arm_detector t
        | Proto.Callback | Proto.Two_phase _ | Proto.Certification _
        | Proto.No_wait _ ->
            if not xs.x_aborted then check_deadlock t ~requester:client);
        let r =
          (* callback locking resolves lock waits with a callback round:
             name the phase accordingly in the waterfall *)
          let kind =
            if t.algo = Proto.Callback then Obs.Span.Cb_round
            else Obs.Span.Lock_wait
          in
          sspan t kind (fun () -> Sim.Ivar.read cell)
        in
        if t.epoch <> xs.x_epoch then
          (* the server crashed while we waited: the lock table that held
             this request is gone, and [wait_since]/[x_waits] belong to
             the new incarnation — touch nothing *)
          Lock_aborted
        else begin
        xs.x_waits <- List.filter (fun (_, c) -> not (c == cell)) xs.x_waits;
        if xs.x_waits = [] then Hashtbl.remove t.wait_since client;
        (match r with
        | Lock_granted when xs.x_aborted ->
            undo_grant t ~page ~client ~before;
            Lock_aborted
        | Lock_granted ->
            if Trace.active () then
              Trace.emit (Sim.Engine.now t.eng)
                (Trace.Lock_grant
                   {
                     client;
                     page;
                     mode =
                       (match mode with Proto.Read -> "S" | Proto.Write -> "X");
                   });
            record_acquisition xs page ~before
              ~after:(Cc.Lock_table.held t.lock_table ~page client);
            Lock_granted
        | Lock_aborted -> Lock_aborted)
        end
  end

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let with_chain t xs f =
  Sim.Facility.request xs.x_chain;
  (* the chain is a facility: queueing on it is a suspension point *)
  if t.epoch <> xs.x_epoch then begin
    Sim.Facility.release xs.x_chain;
    raise Server_down
  end;
  let finally () = Sim.Facility.release xs.x_chain in
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let charge_pages_sent t n =
  if n > 0 then Comms.use_cpu t.sport (t.cfg.Sys_params.server_proc_inst * n)

let charge_updates_received t n =
  if n > 0 then Comms.use_cpu t.sport (t.cfg.Sys_params.server_proc_inst * n)

(* A transaction is finished once its commit verdict is recorded; duplicate
   or retransmitted messages for it must not re-open it through [admit].
   Only populated under an active fault plan (retries cannot otherwise
   occur), so the fault-free path never consults a growing table. *)
let remember_reply t xid reply =
  if t.faulty then Hashtbl.replace t.completed xid reply

let finished_reply t xid =
  if t.faulty then Hashtbl.find_opt t.completed xid else None

(* In-chain guard: a duplicate that queued on the transaction's chain
   behind the handler that finished it would otherwise run against a
   closed transaction's stale state.  The epoch test also fences zombies:
   after a crash the same xid may be re-admitted as a fresh xact, so
   membership of [t.active] alone would let the dead incarnation through. *)
let still_open t xs =
  t.epoch = xs.x_epoch
  && (not xs.x_aborted)
  && Hashtbl.mem t.active xs.x_xid

(* WAL read rule: a page whose latest committed version is still in the
   buffered log tail must not be shipped to a reader — the reader forces
   the log first (group commit), charged one sequential log page.  Every
   version a client ever observes is therefore durable, so a crash can
   never erase an observed version, and the version numbers recovery
   re-issues can never collide with one a client still holds. *)
let await_pages_durable t xs pages =
  match t.log with
  | Some log when t.srv_faulty ->
      let pending page =
        match Hashtbl.find_opt t.unforced_page page with
        | Some lsn ->
            if lsn < Storage.Log_manager.durable_records log then begin
              Hashtbl.remove t.unforced_page page;
              false
            end
            else true
        | None -> false
      in
      if List.exists pending pages then begin
        force_pending_sp t log;
        barrier t xs
      end
  | Some _ | None -> ()

(* Remember, for the WAL read rule above, which pages' latest versions
   ride in the log tail the [append_commit] that was just buffered. *)
let note_unforced t log new_versions =
  let lsn = Storage.Log_manager.records_logged log - 1 in
  List.iter
    (fun (page, _) -> Hashtbl.replace t.unforced_page page lsn)
    new_versions

let handle_fetch t ~ctx ~client ~xid ~req ~mode ~pages ~no_wait =
  if tombstoned t xid then begin
    if not no_wait then
      send_to_client ~ctx t client (Proto.Aborted { xid; stale_pages = [] })
  end
  else if finished_reply t xid <> None || Hashtbl.mem t.durable_commits xid
  then ()
  else begin
    let xs = admit t ~client ~xid in
    with_chain t xs (fun () ->
        if not (still_open t xs) then ()
        else begin
          (* lock every page of the object first, then read the stale and
             missing ones in one clustering-aware disk access *)
          let rec lock_all acc = function
            | [] -> `Ok (List.rev acc)
            | { Proto.page; cached_version } :: rest -> (
                match acquire ~ctx t xs ~page ~mode with
                | Lock_aborted -> `Abort_handled
                | Lock_granted ->
                    if xs.x_aborted then `Abort_handled
                    else begin
                      let current = Cc.Version_table.current t.version_table page in
                      match cached_version with
                      | Some v when v = current -> lock_all acc rest
                      | Some _ when no_wait ->
                          (* the client is already computing on a stale
                             copy: abort and tell it which page to drop *)
                          abort_xact ~ctx t xs ~reason:Metrics.Stale_read
                            ~stale:[ page ];
                          `Abort_handled
                      | Some _ | None -> lock_all ((page, current) :: acc) rest
                    end)
          in
          match lock_all [] pages with
          | `Abort_handled -> ()
          | `Ok data ->
              read_pages t (List.map fst data);
              await_pages_durable t xs (List.map fst data);
              if not xs.x_aborted then begin
                charge_pages_sent t (List.length data);
                if not no_wait then
                  send_to_client ~ctx t client
                    (Proto.Fetch_reply { xid; req; data })
              end
        end)
  end

let handle_cert_read t ~ctx ~client ~xid ~req ~pages =
  if tombstoned t xid then
    send_to_client ~ctx t client (Proto.Aborted { xid; stale_pages = [] })
  else if finished_reply t xid <> None || Hashtbl.mem t.durable_commits xid
  then ()
  else begin
    let xs = admit t ~client ~xid in
    with_chain t xs (fun () ->
        if not (still_open t xs) then ()
        else begin
          let data =
            List.filter_map
              (fun { Proto.page; cached_version } ->
                let current = Cc.Version_table.current t.version_table page in
                match cached_version with
                | Some v when v = current -> None
                | Some _ | None -> Some (page, current))
              pages
          in
          read_pages t (List.map fst data);
          await_pages_durable t xs (List.map fst data);
          charge_pages_sent t (List.length data);
          send_to_client ~ctx t client (Proto.Cert_reply { xid; req; data })
        end)
  end

(* Commit for the certification algorithms: validate, then atomically bump
   versions (no suspension point between validation and bumping), then pay
   for the log and installation. *)
let cert_validate t ~xid ~read_set ~update_pages =
  let stale =
    if t.fault.Fault.Plan.unsafe_skip_validation then []
    else
      List.filter_map
        (fun (page, version) ->
          if Cc.Version_table.is_current t.version_table ~page ~version then
            None
          else Some page)
        read_set
  in
  (* pages pinned by an in-doubt prepared transaction are unreadable and
     unwritable until its outcome is known; never taken unsharded *)
  if Hashtbl.length t.pinned = 0 then stale
  else
    List.sort_uniq compare
      (stale
      @ pin_conflicts t ~xid (List.map fst read_set @ update_pages))

let commit_certification t ~ctx xs ~client ~xid ~req ~read_set ~update_pages =
  let stale = cert_validate t ~xid ~read_set ~update_pages in
  if stale <> [] then begin
    Metrics.record_abort t.metrics Metrics.Cert_fail;
    let reply =
      Proto.Commit_reply
        { xid; req; ok = false; new_versions = []; stale_pages = stale }
    in
    remember_reply t xid reply;
    close_xact t xs;
    send_to_client ~ctx t client reply
  end
  else begin
    let new_versions =
      List.map (fun p -> (p, Cc.Version_table.bump t.version_table p)) update_pages
    in
    (match t.log with
    | Some log when t.srv_faulty ->
        (* append in the same atomic step as the bump: a reader that
           fetches these versions and forces its own commit makes this
           one durable too (group commit), so a durable commit can never
           depend on a write a crash would lose.  Crashable servers log
           every commit (read-only ones too) so a lost reply can be
           rebuilt from the durable log. *)
        Storage.Log_manager.append_commit log ~xid ~updates:new_versions;
        note_unforced t log new_versions
    | Some _ | None -> ());
    charge_updates_received t (List.length update_pages);
    barrier t xs;
    (match t.log with
    | Some log when t.srv_faulty || update_pages <> [] ->
        force_commit_sp t log ~n_updates:(List.length update_pages)
    | Some _ | None -> ());
    barrier t xs;
    List.iter
      (fun p -> if t.epoch = xs.x_epoch then install_page t p ~dirty:true)
      update_pages;
    barrier t xs;
    let reply =
      Proto.Commit_reply { xid; req; ok = true; new_versions; stale_pages = [] }
    in
    remember_reply t xid reply;
    t.local_commits <- t.local_commits + 1;
    close_xact t xs;
    send_to_client ~ctx t client reply
  end

let notify_clients ?(ctx = -1) t ~updater ~xid ~mode new_versions =
  (* The reverse index replaces a scan of every client.  Each send is a
     suspension point under which caches change, so candidates must be
     discovered lazily — "smallest caching client above the last one
     visited", evaluated at visit time — to notify exactly the clients a
     full ascending scan with per-client membership checks would. *)
  List.iter
    (fun (page, version) ->
      let next above =
        match Hashtbl.find_opt t.cached_by page with
        | None -> None
        | Some r -> Int_set.find_first_opt (fun c -> c > above) !r
      in
      let rec loop last =
        match next last with
        | None -> ()
        | Some cid ->
            if cid <> updater then begin
              Metrics.record_push_sent t.metrics;
              (match mode with
              | Proto.Push ->
                  charge_pages_sent t 1;
                  send_to_client ~ctx ~xid t cid
                    (Proto.Update_push { page; version })
              | Proto.Invalidate ->
                  send_to_client ~ctx ~xid t cid
                    (Proto.Invalidate_page { page }))
            end;
            loop cid
      in
      loop (-1))
    new_versions

let commit_locking t ~ctx xs ~client ~xid ~req ~read_set ~update_pages
    ~release_pages =
  (* [read_set] is only sent by no-wait clients under an active fault plan:
     a lease reclaim may have handed their locks to another writer, so the
     optimistic assumption must be re-validated at commit.  Fault-free runs
     always take the [read_set = []] branch, whose operation order is kept
     byte-for-byte identical to the original. *)
  let stale =
    if read_set = [] || t.fault.Fault.Plan.unsafe_skip_validation then []
    else
      List.filter_map
        (fun (page, version) ->
          if Cc.Version_table.is_current t.version_table ~page ~version then
            None
          else Some page)
        read_set
  in
  if stale <> [] then begin
    Metrics.record_abort t.metrics Metrics.Stale_read;
    ignore (Cc.Lock_table.release_all t.lock_table client);
    let reply =
      Proto.Commit_reply
        { xid; req; ok = false; new_versions = []; stale_pages = stale }
    in
    remember_reply t xid reply;
    close_xact t xs;
    send_to_client ~ctx t client reply
  end
  else begin
  (* when validation ran, bump before any suspension point so no competing
     commit can slip between the version check and the version advance; a
     crashable server also bumps here so the appended update records carry
     the committed versions (group commit: the append rides out with the
     next force by anyone, never later than our own below) *)
  let logged_versions =
    if read_set = [] && not t.srv_faulty then None
    else
      Some
        (List.map
           (fun p -> (p, Cc.Version_table.bump t.version_table p))
           update_pages)
  in
  (match (t.log, logged_versions) with
  | Some log, Some nv when t.srv_faulty ->
      Storage.Log_manager.append_commit log ~xid ~updates:nv;
      note_unforced t log nv
  | _ -> ());
  charge_updates_received t (List.length update_pages);
  barrier t xs;
  (* crashable servers force every commit (read-only ones too), so a lost
     reply can be rebuilt from the durable record *)
  (match t.log with
  | Some log when t.srv_faulty || update_pages <> [] ->
      force_commit_sp t log ~n_updates:(List.length update_pages)
  | Some _ | None -> ());
  barrier t xs;
  let new_versions =
    match logged_versions with
    | Some nv -> nv
    | None ->
        List.map
          (fun p -> (p, Cc.Version_table.bump t.version_table p))
          update_pages
  in
  List.iter
    (fun p -> if t.epoch = xs.x_epoch then install_page t p ~dirty:true)
    update_pages;
  barrier t xs;
  (match t.algo with
  | Proto.Callback ->
      (* give up the pages whose callbacks the client deferred; keep
         everything else as retained read locks (write locks downgrade) *)
      List.iter
        (fun p -> Cc.Lock_table.release t.lock_table ~page:p client)
        release_pages;
      if not t.cfg.Sys_params.callback_retain_writes then
        List.iter
          (fun p ->
            match Cc.Lock_table.held t.lock_table ~page:p client with
            | Some Cc.Lock_table.X ->
                Cc.Lock_table.downgrade t.lock_table ~page:p client
            | Some Cc.Lock_table.S | None -> ())
          (Cc.Lock_table.pages_held_by t.lock_table client)
  | Proto.Two_phase _ | Proto.No_wait _ ->
      ignore (Cc.Lock_table.release_all t.lock_table client)
  | Proto.Certification _ ->
      (* certification commits are dispatched to [commit_certification] *)
      raise
        (Server_invariant
           {
             protocol = Proto.algorithm_name t.algo;
             client;
             kind = "locking-commit-under-certification";
           }));
  let reply =
    Proto.Commit_reply { xid; req; ok = true; new_versions; stale_pages = [] }
  in
  remember_reply t xid reply;
  t.local_commits <- t.local_commits + 1;
  close_xact t xs;
  if Trace.active () then
    Trace.emit (Sim.Engine.now t.eng)
      (Trace.Commit { client; xid; n_updates = List.length update_pages });
  send_to_client ~ctx t client reply;
  (let notify_mode =
     match t.algo with
     | Proto.No_wait { notify = Some mode } -> Some mode
     | Proto.No_wait { notify = None } | Proto.Two_phase _ | Proto.Callback ->
         t.cfg.Sys_params.notify_updates
     | Proto.Certification _ -> None
   in
   match notify_mode with
   | Some mode when new_versions <> [] ->
       notify_clients ~ctx t ~updater:client ~xid ~mode new_versions
   | Some _ | None -> ())
  end

let handle_commit t ~ctx ~client ~xid ~req ~read_set ~update_pages
    ~release_pages =
  if tombstoned t xid then
    send_to_client ~ctx t client (Proto.Aborted { xid; stale_pages = [] })
  else
    match finished_reply t xid with
    | Some reply ->
        (* the commit already ran; its reply was lost — replay it verbatim *)
        send_to_client ~ctx t client reply
    | None when Hashtbl.mem t.durable_commits xid -> (
        (* the commit became durable before a server crash wiped
           [completed]: rebuild the lost reply from the log.  [req] comes
           from the retransmission, so the client's request pairing holds *)
        match t.log with
        | Some log -> (
            match Storage.Log_manager.durable_commit_updates log ~xid with
            | Some new_versions ->
                let reply =
                  Proto.Commit_reply
                    { xid; req; ok = true; new_versions; stale_pages = [] }
                in
                remember_reply t xid reply;
                send_to_client ~ctx t client reply
            | None ->
                raise
                  (Server_invariant
                     {
                       protocol = Proto.algorithm_name t.algo;
                       client;
                       kind = "durable-commit-without-log-record";
                     }))
        | None -> ())
    | None ->
        let xs = admit t ~client ~xid in
        with_chain t xs (fun () ->
            if not (still_open t xs) then begin
              (* a duplicate queued behind the handler that finished the
                 transaction: replay the recorded verdict, if any *)
              match finished_reply t xid with
              | Some reply -> send_to_client ~ctx t client reply
              | None -> ()
            end
            else
              match t.algo with
              | Proto.Certification _ ->
                  commit_certification t ~ctx xs ~client ~xid ~req ~read_set
                    ~update_pages
              | Proto.Two_phase _ | Proto.Callback | Proto.No_wait _ ->
                  commit_locking t ~ctx xs ~client ~xid ~req ~read_set
                    ~update_pages ~release_pages)

let handle_dirty_evict t ~client ~xid ~page =
  if
    (not (tombstoned t xid))
    && finished_reply t xid = None
    && not (Hashtbl.mem t.durable_commits xid)
  then begin
    let xs = admit t ~client ~xid in
    with_chain t xs (fun () ->
        if still_open t xs then begin
          charge_updates_received t 1;
          install_page t page ~dirty:true;
          xs.x_installed <- page :: xs.x_installed
        end)
  end

(* ------------------------------------------------------------------ *)
(* Two-phase commit (sharded topologies only; presumed abort)          *)
(* ------------------------------------------------------------------ *)

(* The protocol's normal commit-time lock disposition, shared by the
   one-round commit and the 2PC decision. *)
let release_for_commit t ~client ~release_pages =
  match t.algo with
  | Proto.Callback ->
      List.iter
        (fun p -> Cc.Lock_table.release t.lock_table ~page:p client)
        release_pages;
      if not t.cfg.Sys_params.callback_retain_writes then
        List.iter
          (fun p ->
            match Cc.Lock_table.held t.lock_table ~page:p client with
            | Some Cc.Lock_table.X ->
                Cc.Lock_table.downgrade t.lock_table ~page:p client
            | Some Cc.Lock_table.S | None -> ())
          (Cc.Lock_table.pages_held_by t.lock_table client)
  | Proto.Two_phase _ | Proto.No_wait _ ->
      ignore (Cc.Lock_table.release_all t.lock_table client)
  | Proto.Certification _ -> ()

(* Apply a decision to a prepared slice ([pr] must already be removed
   from [t.prepared]).  Commit publishes the reserved versions, logs and
   forces the commit record — re-appending the update records so a
   checkpoint taken between prepare and decision can never hide them
   from replay — installs the pages, and releases locks/pins under the
   protocol's normal commit rules.  Abort discards the reservation.
   Returns the versions the acknowledgement carries. *)
let resolve_prepared ?(ctx = -1) t pr ~xid ~commit =
  let fence () = if t.epoch <> pr.p_epoch then raise Server_down in
  unpin_xact t xid;
  if commit then begin
    List.iter
      (fun (page, version) ->
        Cc.Version_table.set t.version_table ~page ~version)
      pr.p_updates;
    (match t.log with
    | Some log when t.srv_faulty ->
        Storage.Log_manager.append_commit log ~xid ~updates:pr.p_updates;
        note_unforced t log pr.p_updates
    | Some _ | None -> ());
    (* the decision force carries the commit record alone: the update
       images were already forced at prepare *)
    (match t.log with
    | Some log -> force_commit_sp t log ~n_updates:0
    | None -> ());
    fence ();
    List.iter
      (fun (p, _) -> if t.epoch = pr.p_epoch then install_page t p ~dirty:true)
      pr.p_updates;
    fence ();
    (match pr.p_xs with
    | Some xs ->
        release_for_commit t ~client:pr.p_client
          ~release_pages:pr.p_release_pages;
        close_xact t xs
    | None ->
        (* a slice rebuilt from the log owns plain re-acquired locks *)
        ignore (Cc.Lock_table.release_all t.lock_table pr.p_client));
    t.local_commits <- t.local_commits + 1;
    if Trace.active () then
      Trace.emit (Sim.Engine.now t.eng)
        (Trace.Commit
           {
             client = pr.p_client;
             xid;
             n_updates = List.length pr.p_updates;
           });
    (let notify_mode =
       match t.algo with
       | Proto.No_wait { notify = Some mode } -> Some mode
       | Proto.No_wait { notify = None } | Proto.Two_phase _ | Proto.Callback
         ->
           t.cfg.Sys_params.notify_updates
       | Proto.Certification _ -> None
     in
     match notify_mode with
     | Some mode when pr.p_updates <> [] ->
         notify_clients ~ctx t ~updater:pr.p_client ~xid ~mode pr.p_updates
     | Some _ | None -> ());
    pr.p_updates
  end
  else begin
    (match pr.p_xs with
    | Some xs ->
        (* counted and announced by whoever decided the global abort *)
        abort_xact ~record:false ~notify:false t xs ~reason:Metrics.Cert_fail
          ~stale:[]
    | None ->
        Hashtbl.replace t.tombstones xid ();
        ignore (Cc.Lock_table.release_all t.lock_table pr.p_client);
        (match t.log with
        | Some log when t.srv_faulty ->
            force_abort_sp ~xid t log ~n_updates:0
        | Some _ | None -> ()));
    []
  end

(* Participant termination protocol: while a slice stays in doubt,
   periodically ask the decider for the outcome (presumed abort: it
   answers commit only from a durable commit record).  A decider whose
   own slice is still undecided after the nag interval presumes abort
   unilaterally — safe, because the global commit point is precisely its
   own durable commit record, which does not exist yet. *)
let rec nag_in_doubt ?(n = 0) t xid =
  if t.faulty then
    Sim.Engine.spawn t.eng (fun () ->
        let period = Float.max (4.0 *. t.fault.Fault.Plan.req_timeout) 2.0 in
        Sim.Engine.hold period;
        match Hashtbl.find_opt t.prepared xid with
        | Some pr when pr.p_epoch = t.epoch && not t.down ->
            if pr.p_decider = t.shard_id then begin
              Hashtbl.remove t.prepared xid;
              ignore (resolve_prepared t pr ~xid ~commit:false)
            end
            else begin
              send_to_shard ~retry:n t pr.p_decider
                (Proto.Outcome_query { shard = t.shard_id; xid });
              nag_in_doubt ~n:(n + 1) t xid
            end
        | Some _ | None -> ())

let vote t ~ctx ~client ~xid ~req ~ok ~stale =
  send_to_client ~ctx t client
    (Proto.Vote { xid; req; shard = t.shard_id; ok; stale_pages = stale })

let prepare_certification t ~ctx xs ~client ~xid ~req ~decider ~read_set
    ~update_pages =
  let stale = cert_validate t ~xid ~read_set ~update_pages in
  if stale <> [] then begin
    abort_xact t xs ~notify:false ~reason:Metrics.Cert_fail ~stale:[];
    vote t ~ctx ~client ~xid ~req ~ok:false ~stale
  end
  else begin
    (* reserve without publishing: the bump to current+1 happens at
       decision-commit via [Version_table.set]; until then the pins keep
       every competing validation away from these pages *)
    let new_versions =
      List.map
        (fun p -> (p, Cc.Version_table.current t.version_table p + 1))
        update_pages
    in
    pin_pages t xid (List.map fst read_set);
    pin_pages t xid update_pages;
    charge_updates_received t (List.length update_pages);
    barrier t xs;
    (match t.log with
    | Some log when t.srv_faulty ->
        force_prepare_sp t log ~xid ~decider
          ~read_pages:(List.map fst read_set) ~updates:new_versions
    | Some log when update_pages <> [] ->
        (* bare cost model: the prepare force writes the update images *)
        force_commit_sp t log ~n_updates:(List.length update_pages)
    | Some _ | None -> ());
    barrier t xs;
    Metrics.record_prepare t.metrics;
    Hashtbl.replace t.prepared xid
      {
        p_xs = Some xs;
        p_client = client;
        p_decider = decider;
        p_read_pages = List.map fst read_set;
        p_updates = new_versions;
        p_release_pages = [];
        p_epoch = xs.x_epoch;
      };
    nag_in_doubt t xid;
    vote t ~ctx ~client ~xid ~req ~ok:true ~stale:[]
  end

let prepare_locking t ~ctx xs ~client ~xid ~req ~decider ~read_set
    ~update_pages ~release_pages =
  (* as in [commit_locking], [read_set] is non-empty only for no-wait
     clients under faults; the held locks are otherwise the guarantee *)
  let stale =
    if read_set = [] || t.fault.Fault.Plan.unsafe_skip_validation then []
    else
      List.filter_map
        (fun (page, version) ->
          if Cc.Version_table.is_current t.version_table ~page ~version then
            None
          else Some page)
        read_set
  in
  if stale <> [] then begin
    abort_xact t xs ~notify:false ~reason:Metrics.Stale_read ~stale:[];
    vote t ~ctx ~client ~xid ~req ~ok:false ~stale
  end
  else begin
    let new_versions =
      List.map
        (fun p -> (p, Cc.Version_table.current t.version_table p + 1))
        update_pages
    in
    charge_updates_received t (List.length update_pages);
    barrier t xs;
    (match t.log with
    | Some log when t.srv_faulty ->
        force_prepare_sp t log ~xid ~decider
          ~read_pages:(List.map fst read_set) ~updates:new_versions
    | Some log when update_pages <> [] ->
        force_commit_sp t log ~n_updates:(List.length update_pages)
    | Some _ | None -> ());
    barrier t xs;
    Metrics.record_prepare t.metrics;
    Hashtbl.replace t.prepared xid
      {
        p_xs = Some xs;
        p_client = client;
        p_decider = decider;
        p_read_pages = List.map fst read_set;
        p_updates = new_versions;
        p_release_pages = release_pages;
        p_epoch = xs.x_epoch;
      };
    nag_in_doubt t xid;
    vote t ~ctx ~client ~xid ~req ~ok:true ~stale:[]
  end

(* Traffic for a NEW transaction from a client whose OLDER slice is still
   prepared here can only mean the old attempt resolved as a global abort:
   the router replies to the client (and the client moves to its next xid)
   strictly after every participant acknowledged the decision, and client
   crashes are deferred across the commit round-trip — so a still-prepared
   older slice has no durable commit anywhere and presumed abort is
   consistent.  Settling it NOW, before the new transaction touches the
   lock table (which is keyed by client, not xid), is what makes the
   cleanup safe under arbitrary message reordering: a racing
   [Decision { commit = false }] for the old xid then finds the slice
   already gone and just re-acknowledges. *)
let settle_superseded t ~client ~xid =
  if Hashtbl.length t.prepared > 0 then begin
    let stale =
      Hashtbl.fold
        (fun xid' pr acc ->
          if pr.p_client = client && xid' < xid && pr.p_epoch = t.epoch then
            (xid', pr) :: acc
          else acc)
        t.prepared []
    in
    List.iter
      (fun (xid', pr) ->
        Hashtbl.remove t.prepared xid';
        ignore (resolve_prepared t pr ~xid:xid' ~commit:false))
      stale
  end

let handle_prepare t ~ctx ~client ~xid ~req ~decider ~read_set ~update_pages
    ~release_pages =
  match Hashtbl.find_opt t.prepared xid with
  | Some pr when pr.p_epoch = t.epoch ->
      (* duplicate of a prepare this shard already accepted: re-vote *)
      vote t ~ctx ~client ~xid ~req ~ok:true ~stale:[]
  | Some _ | None ->
      if tombstoned t xid then
        vote t ~ctx ~client ~xid ~req ~ok:false ~stale:[]
      else (
        match finished_reply t xid with
        | Some reply -> send_to_client ~ctx t client reply
        | None when Hashtbl.mem t.durable_commits xid -> (
            (* this shard already committed the transaction before a crash
               wiped [completed]: tell the router directly *)
            match t.log with
            | Some log -> (
                match Storage.Log_manager.durable_commit_updates log ~xid with
                | Some new_versions ->
                    send_to_client ~ctx t client
                      (Proto.Decision_ack
                         {
                           xid;
                           req;
                           shard = t.shard_id;
                           committed = true;
                           new_versions;
                         })
                | None ->
                    raise
                      (Server_invariant
                         {
                           protocol = Proto.algorithm_name t.algo;
                           client;
                           kind = "durable-commit-without-log-record";
                         }))
            | None -> ())
        | None ->
            let xs = admit t ~client ~xid in
            with_chain t xs (fun () ->
                if not (still_open t xs) then begin
                  if tombstoned t xid then
                    vote t ~ctx ~client ~xid ~req ~ok:false ~stale:[]
                  else
                    match finished_reply t xid with
                    | Some reply -> send_to_client ~ctx t client reply
                    | None -> ()
                end
                else if Hashtbl.mem t.prepared xid then
                  (* a duplicate queued on the chain behind the prepare
                     that accepted the slice *)
                  vote t ~ctx ~client ~xid ~req ~ok:true ~stale:[]
                else
                  match t.algo with
                  | Proto.Certification _ ->
                      prepare_certification t ~ctx xs ~client ~xid ~req
                        ~decider ~read_set ~update_pages
                  | Proto.Two_phase _ | Proto.Callback | Proto.No_wait _ ->
                      prepare_locking t ~ctx xs ~client ~xid ~req ~decider
                        ~read_set ~update_pages ~release_pages))

let decision_ack t ~ctx ~client ~xid ~req ~committed ~new_versions =
  send_to_client ~ctx t client
    (Proto.Decision_ack { xid; req; shard = t.shard_id; committed; new_versions })

let handle_decision t ~ctx ~client ~xid ~req ~commit =
  match Hashtbl.find_opt t.prepared xid with
  | Some pr when pr.p_epoch = t.epoch ->
      Hashtbl.remove t.prepared xid;
      let new_versions = resolve_prepared ~ctx t pr ~xid ~commit in
      let reply =
        Proto.Decision_ack
          { xid; req; shard = t.shard_id; committed = commit; new_versions }
      in
      remember_reply t xid reply;
      send_to_client ~ctx t client reply
  | Some _ | None ->
      if commit then (
        match finished_reply t xid with
        | Some reply -> send_to_client ~ctx t client reply
        | None ->
            if Hashtbl.mem t.durable_commits xid then (
              match t.log with
              | Some log -> (
                  match Storage.Log_manager.durable_commit_updates log ~xid with
                  | Some new_versions ->
                      decision_ack t ~ctx ~client ~xid ~req ~committed:true
                        ~new_versions
                  | None ->
                      raise
                        (Server_invariant
                           {
                             protocol = Proto.algorithm_name t.algo;
                             client;
                             kind = "durable-commit-without-log-record";
                           }))
              | None -> ())
            else
              (* the slice is gone without a durable commit: it resolved
                 as an abort (presumed abort here or at the decider); the
                 router learns the truth and aborts the other shards *)
              decision_ack t ~ctx ~client ~xid ~req ~committed:false
                ~new_versions:[])
      else begin
        (* abort decision — also covers router cleanup of an attempt that
           never prepared here: kill any execution-phase slice and
           tombstone so a late prepare votes no *)
        (match Hashtbl.find_opt t.active xid with
        | Some xs when still_open t xs ->
            abort_xact ~record:false ~notify:false t xs
              ~reason:Metrics.Cert_fail ~stale:[]
        | Some _ | None -> ());
        Hashtbl.replace t.tombstones xid ();
        decision_ack t ~ctx ~client ~xid ~req ~committed:false
          ~new_versions:[]
      end

(* Shard-to-shard: a prepared participant asks this shard (the decider)
   for the outcome.  Presumed abort makes the negative answer a durable
   promise: absent a durable commit record the answer is abort, our own
   in-doubt slice (if any) resolves the same way, and the tombstone is
   forced to the log so no post-crash retransmission can re-vote yes. *)
let handle_outcome_query t ~ctx ~shard ~xid =
  Metrics.record_outcome_query t.metrics;
  let committed =
    Hashtbl.mem t.durable_commits xid
    ||
    match finished_reply t xid with
    | Some (Proto.Decision_ack { committed; _ }) -> committed
    | Some (Proto.Commit_reply { ok; _ }) -> ok
    | Some _ | None -> false
  in
  if committed then
    send_to_shard ~ctx t shard
      (Proto.Decision
         { client = Proto.xid_client xid; xid; req = 0; commit = true })
  else begin
    (match Hashtbl.find_opt t.prepared xid with
    | Some pr when pr.p_epoch = t.epoch ->
        Hashtbl.remove t.prepared xid;
        ignore (resolve_prepared t pr ~xid ~commit:false)
    | Some _ | None -> (
        match Hashtbl.find_opt t.active xid with
        | Some xs when t.epoch = xs.x_epoch && not xs.x_aborted ->
            abort_xact ~record:false ~notify:false t xs
              ~reason:Metrics.Cert_fail ~stale:[]
        | Some _ | None ->
            if not (tombstoned t xid) then begin
              Hashtbl.replace t.tombstones xid ();
              match t.log with
              | Some log when t.srv_faulty ->
                  force_abort_sp ~xid t log ~n_updates:0
              | Some _ | None -> ()
            end));
    send_to_shard ~ctx t shard
      (Proto.Decision
         { client = Proto.xid_client xid; xid; req = 0; commit = false })
  end

(* ------------------------------------------------------------------ *)
(* Lease reclamation (fault plans only)                                *)
(* ------------------------------------------------------------------ *)

(* Take back everything a crashed or partitioned client holds: its active
   transaction (if any), then any leftover locks — including callback
   locks retained across transactions, which its empty post-restart cache
   no longer justifies. *)
let reclaim_client t ~client =
  (* never touch a client with a prepared 2PC slice: its locks protect an
     in-doubt transaction whose fate only the termination protocol may
     settle (the classic 2PC blocking window) *)
  if not (client_has_prepared t ~client) then begin
    (match Hashtbl.find_opt t.active_by_client client with
    | Some xs -> abort_xact t xs ~reason:Metrics.Lease_reclaim ~stale:[]
    | None -> ());
    Cc.Lock_table.cancel_all_waits t.lock_table client;
    let freed = Cc.Lock_table.release_all t.lock_table client in
    if freed <> [] then begin
      Metrics.record_reclaimed t.metrics ~locks:(List.length freed);
      if Trace.active () then
        Trace.emit (Sim.Engine.now t.eng)
          (Trace.Lock_reclaimed { client; pages = freed })
    end
  end

(* Periodic sweep: any client silent for longer than the lease has, by the
   client-side lease rule, already stopped trusting its locks — reclaim
   them so their pages do not stay locked forever.  The client deadline is
   first-transmission time + lease; [last_heard] is an arrival time, which
   is never earlier, so the server acts only after the client has lapsed. *)
let lease_sweep t =
  let lease = t.fault.Fault.Plan.lease in
  let now = Sim.Engine.now t.eng in
  let silent = heard_expired t.last_heard ~now ~lease in
  List.iter
    (fun cid ->
      if
        Hashtbl.mem t.active_by_client cid
        || Cc.Lock_table.holds_any t.lock_table cid
      then reclaim_client t ~client:cid)
    (List.sort Int.compare silent)

(* ------------------------------------------------------------------ *)
(* Server crash and recovery                                           *)
(* ------------------------------------------------------------------ *)

(* Drop every piece of volatile state, instantaneously (no suspension
   point: nothing can observe a half-crashed server).  Handler processes
   suspended across the crash are fenced by the epoch bump; processes
   parked on wiped ivars/conditions never resume at all. *)
let crash_server t =
  let killed = t.n_active in
  Metrics.record_server_crash t.metrics ~killed;
  if Trace.active () then
    Trace.emit (Sim.Engine.now t.eng) (Trace.Server_crash { killed });
  t.epoch <- t.epoch + 1;
  t.down <- true;
  t.down_since <- Sim.Engine.now t.eng;
  Option.iter Storage.Log_manager.crash t.log;
  Storage.Lru_pool.clear t.buf;
  t.lock_table <- Cc.Lock_table.create ();
  Cc.Version_table.clear t.version_table;
  Hashtbl.reset t.active;
  Hashtbl.reset t.active_by_client;
  Hashtbl.reset t.admitting;
  Hashtbl.reset t.tombstones;
  Hashtbl.reset t.in_flight;
  Hashtbl.reset t.wait_since;
  Hashtbl.reset t.completed;
  heard_reset t.last_heard;
  Hashtbl.reset t.durable_commits;
  Hashtbl.reset t.unforced_page;
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.pinned;
  t.n_active <- 0;
  Queue.clear t.ready

(* Replay the durable log from the last checkpoint (paying the log-disk
   read-back), reload the committed page-version map, and rebuild the
   bookkeeping that outlives [completed]: tombstones from durable aborts,
   the durable-commit set from durable commits.  Ends with a best-effort
   restart broadcast — droppable; commit-time revalidation and the
   tombstone/durable-commit tables are the reliable backstop. *)
let recover_server t =
  let replay_start = Sim.Engine.now t.eng in
  (match t.log with
  | Some log ->
      let scratch = Hashtbl.create 256 in
      let stats = Storage.Log_manager.replay log ~into:scratch in
      let versions =
        Hashtbl.fold (fun p v acc -> (p, v) :: acc) scratch []
        |> List.sort compare
      in
      List.iter
        (fun (page, version) ->
          Cc.Version_table.set t.version_table ~page ~version)
        versions;
      List.iter
        (fun (xid, committed) ->
          if committed then Hashtbl.replace t.durable_commits xid ()
          else Hashtbl.replace t.tombstones xid ())
        (Storage.Log_manager.durable_outcomes log);
      (* in-doubt 2PC slices: re-protect them (write locks or pins)
         before the server hears its first post-recovery message, then
         resolve them through the termination protocol *)
      if sharded t then
        List.iter
          (fun (xid, decider, read_pages, updates) ->
            let client = Proto.xid_client xid in
            let reacquire mode page =
              match
                Cc.Lock_table.request t.lock_table ~page client mode
                  ~wake:(fun () -> ())
              with
              | Cc.Lock_table.Granted -> ()
              | Cc.Lock_table.Blocked _ ->
                  (* prepared slices validated/locked disjointly, and the
                     post-crash table holds nothing else yet *)
                  raise
                    (Server_invariant
                       {
                         protocol = Proto.algorithm_name t.algo;
                         client;
                         kind = "in-doubt-lock-reacquisition-blocked";
                       })
            in
            (match t.algo with
            | Proto.Certification _ ->
                pin_pages t xid read_pages;
                pin_pages t xid (List.map fst updates)
            | Proto.Two_phase _ | Proto.Callback | Proto.No_wait _ ->
                List.iter
                  (fun (p, _) -> reacquire Cc.Lock_table.X p)
                  updates;
                List.iter
                  (fun p ->
                    if not (List.mem_assoc p updates) then
                      reacquire Cc.Lock_table.S p)
                  read_pages);
            Hashtbl.replace t.prepared xid
              {
                p_xs = None;
                p_client = client;
                p_decider = decider;
                p_read_pages = read_pages;
                p_updates = updates;
                p_release_pages = [];
                p_epoch = t.epoch;
              };
            nag_in_doubt t xid)
          (Storage.Log_manager.in_doubt log);
      if Trace.active () then
        Trace.emit (Sim.Engine.now t.eng)
          (Trace.Log_replayed
             {
               records = stats.Storage.Log_manager.records_replayed;
               pages = stats.Storage.Log_manager.pages_read;
             })
  | None -> ());
  t.down <- false;
  let now = Sim.Engine.now t.eng in
  let recovery = now -. replay_start in
  let downtime = now -. t.down_since in
  Metrics.record_server_recovery t.metrics ~downtime ~recovery;
  if Trace.active () then
    Trace.emit now (Trace.Server_recover { downtime; recovery });
  Array.iteri
    (fun cid _ ->
      send_to_client t cid (Proto.Server_restart { epoch = t.epoch }))
    t.clients

let start ?crash_rng t =
  if t.faulty && t.fault.Fault.Plan.lease > 0.0 then
    Sim.Engine.spawn t.eng ~name:"lease-sweep" (fun () ->
        let rec loop () =
          Sim.Engine.hold (t.fault.Fault.Plan.lease /. 2.0);
          lease_sweep t;
          loop ()
        in
        loop ());
  if t.srv_faulty then begin
    let srng =
      match crash_rng with
      | Some r -> r
      | None -> Fault.Injector.server_stream t.fault
    in
    Sim.Engine.spawn t.eng ~name:"server-gremlin" (fun () ->
        let rec loop () =
          Sim.Engine.hold
            (Sim.Rng.exponential srng
               ~mean:t.fault.Fault.Plan.server_crash_mean);
          crash_server t;
          Sim.Engine.hold
            (Float.max 1e-4
               (Sim.Rng.exponential srng
                  ~mean:t.fault.Fault.Plan.server_restart_mean));
          recover_server t;
          loop ()
        in
        loop ());
    if t.fault.Fault.Plan.checkpoint_interval > 0.0 then
      Sim.Engine.spawn t.eng ~name:"server-checkpoint" (fun () ->
          let rec loop () =
            Sim.Engine.hold t.fault.Fault.Plan.checkpoint_interval;
            (match t.log with
            | Some log when not t.down ->
                Metrics.record_checkpoint t.metrics;
                let versions = Storage.Log_manager.checkpoint log in
                if Trace.active () then
                  Trace.emit (Sim.Engine.now t.eng)
                    (Trace.Checkpoint { versions })
            | Some _ | None -> ());
            loop ()
          in
          loop ())
  end

let handle_msg t ~ctx = function
  | Proto.Fetch { client; xid; req; mode; pages; no_wait } ->
      settle_superseded t ~client ~xid;
      handle_fetch t ~ctx ~client ~xid ~req ~mode ~pages ~no_wait
  | Proto.Cert_read { client; xid; req; pages } ->
      settle_superseded t ~client ~xid;
      handle_cert_read t ~ctx ~client ~xid ~req ~pages
  | Proto.Commit { client; xid; req; read_set; update_pages; release_pages } ->
      settle_superseded t ~client ~xid;
      handle_commit t ~ctx ~client ~xid ~req ~read_set ~update_pages
        ~release_pages
  | Proto.Callback_reply { client; page } ->
      Cc.Lock_table.release t.lock_table ~page client
  | Proto.Release_retained { client; pages } ->
      List.iter (fun page -> Cc.Lock_table.release t.lock_table ~page client) pages
  | Proto.Dirty_evict { client; xid; page } -> handle_dirty_evict t ~client ~xid ~page
  | Proto.Recovered { client } ->
      (* best-effort fast path (this notice itself is droppable; the lease
         sweep is the reliable backstop) *)
      reclaim_client t ~client
  | Proto.Prepare { client; xid; req; decider; read_set; update_pages; release_pages } ->
      settle_superseded t ~client ~xid;
      handle_prepare t ~ctx ~client ~xid ~req ~decider ~read_set ~update_pages
        ~release_pages
  | Proto.Decision { client; xid; req; commit } ->
      handle_decision t ~ctx ~client ~xid ~req ~commit
  | Proto.Outcome_query { shard; xid } -> handle_outcome_query t ~ctx ~shard ~xid

let handle t ~ctx msg =
  (* a handler overtaken by a server crash dies silently, like any other
     in-flight work lost in the failure; the client-side timeout machinery
     owns the retry *)
  try handle_msg t ~ctx msg with Server_down -> ()

let deliver t ~ctx msg =
  if t.down then () (* a dead server hears nothing; clients retransmit *)
  else begin
    (if t.faulty then
       let cid = Proto.c2s_client msg in
       (* shard-to-shard messages carry no client to keep alive *)
       if cid >= 0 then heard_touch t.last_heard cid ~at:(Sim.Engine.now t.eng));
    Sim.Engine.spawn t.eng (fun () -> handle t ~ctx msg)
  end

let () = deliver_ref := deliver
let server_epoch t = t.epoch
let server_down t = t.down
let log_manager t = t.log
let shard_id t = t.shard_id
let local_commits t = t.local_commits
let prepared_count t = Hashtbl.length t.prepared
