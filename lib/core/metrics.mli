(** Simulation-wide measurement state.

    One [Metrics.t] is shared by all clients and the server.  The runner
    resets it (and every facility) at the warmup boundary so reported
    numbers cover only the steady-state window. *)

type t

val create : Sim.Engine.t -> t

(** Time the current measurement window opened. *)
val measure_start : t -> float

(** {1 Recording} *)

(** [record_commit t ~response] — a transaction committed; [response] is
    seconds from its first attempt's begin to commit (restarts included). *)
val record_commit : t -> response:float -> unit

type abort_reason = Deadlock | Stale_read | Cert_fail | Lease_reclaim

val record_abort : t -> abort_reason -> unit

(** [record_lookup t ~hit] — a client accessed one page; [hit] means it was
    served locally, with no server message. *)
val record_lookup : t -> hit:bool -> unit

val record_callback_sent : t -> unit
val record_push_sent : t -> unit

(** {1 Fault-injection availability accounting}

    All zero when fault injection is off. *)

(** A client re-sent a timed-out request. *)
val record_retry : t -> unit

(** A client crashed; [in_xact] marks a transaction lost mid-flight. *)
val record_crash : t -> in_xact:bool -> unit

(** A crashed client came back after [downtime] seconds. *)
val record_recovery : t -> downtime:float -> unit

(** The server lease-reclaimed [locks] locks from a silent client. *)
val record_reclaimed : t -> locks:int -> unit

(** A client stopped trusting its retained state because its lease
    lapsed, and voluntarily restarted the transaction. *)
val record_lease_lapse : t -> unit

val record_msg_dropped : t -> unit
val record_msg_delayed : t -> unit
val record_msg_duplicated : t -> unit

(** {1 Server-fault availability accounting}

    All zero unless the plan can crash the server. *)

(** The server crashed, killing [killed] in-flight transactions. *)
val record_server_crash : t -> killed:int -> unit

(** The server reopened after [downtime] total seconds of outage, of
    which [recovery] seconds were spent replaying the log. *)
val record_server_recovery : t -> downtime:float -> recovery:float -> unit

(** The server forced a committed-version checkpoint to the log. *)
val record_checkpoint : t -> unit

(** {1 Sharding / two-phase-commit accounting}

    All zero with a single shard. *)

(** A shard force-logged a 2PC prepare record and voted. *)
val record_prepare : t -> unit

(** A cross-shard transaction committed (counted once, by the router). *)
val record_xshard_commit : t -> unit

(** A cross-shard transaction aborted during 2PC (counted once). *)
val record_xshard_abort : t -> unit

(** A participant queried the decider for an in-doubt outcome. *)
val record_outcome_query : t -> unit

(** Commits since the simulation (not the window) started — used for warmup
    and run-length control. *)
val total_commits : t -> int

(** {1 Reading the window} *)

val commits : t -> int
val aborts : t -> int
val aborts_by : t -> abort_reason -> int
val mean_response : t -> float
val response_stats : t -> Sim.Stats.t

(** The raw window response times — pooled across replications for exact
    combined quantiles. *)
val response_samples : t -> Sim.Stats.Samples.t

(** Exact response-time quantile over the window, [q] in [0, 1]. *)
val response_quantile : t -> float -> float
val lookups : t -> int
val hits : t -> int
val callbacks_sent : t -> int
val pushes_sent : t -> int
val retries : t -> int
val crashes : t -> int
val recoveries : t -> int
val lost_xacts : t -> int
val reclaimed_locks : t -> int
val lease_lapses : t -> int
val msgs_dropped : t -> int
val msgs_delayed : t -> int
val msgs_duplicated : t -> int

(** Mean client downtime over recorded recoveries (0 if none). *)
val mean_recovery : t -> float

val server_crashes : t -> int
val server_recoveries : t -> int

(** Transactions killed because the server lost them in a crash. *)
val server_killed_xacts : t -> int

val checkpoints : t -> int

(** Total seconds the server was down in the window. *)
val server_downtime : t -> float

(** Mean log-replay time over recorded server recoveries (0 if none). *)
val mean_server_recovery : t -> float

val prepares : t -> int
val xshard_commits : t -> int
val xshard_aborts : t -> int
val outcome_queries : t -> int

(** Committed transactions per second of window time. *)
val throughput : t -> now:float -> float

(** Re-open the measurement window at the current simulated time. *)
val reset : t -> unit
