(** Simulation-wide measurement state.

    One [Metrics.t] is shared by all clients and the server.  The runner
    resets it (and every facility) at the warmup boundary so reported
    numbers cover only the steady-state window. *)

type t

val create : Sim.Engine.t -> t

(** Time the current measurement window opened. *)
val measure_start : t -> float

(** {1 Recording} *)

(** [record_commit t ~response] — a transaction committed; [response] is
    seconds from its first attempt's begin to commit (restarts included). *)
val record_commit : t -> response:float -> unit

type abort_reason = Deadlock | Stale_read | Cert_fail

val record_abort : t -> abort_reason -> unit

(** [record_lookup t ~hit] — a client accessed one page; [hit] means it was
    served locally, with no server message. *)
val record_lookup : t -> hit:bool -> unit

val record_callback_sent : t -> unit
val record_push_sent : t -> unit

(** Commits since the simulation (not the window) started — used for warmup
    and run-length control. *)
val total_commits : t -> int

(** {1 Reading the window} *)

val commits : t -> int
val aborts : t -> int
val aborts_by : t -> abort_reason -> int
val mean_response : t -> float
val response_stats : t -> Sim.Stats.t

(** The raw window response times — pooled across replications for exact
    combined quantiles. *)
val response_samples : t -> Sim.Stats.Samples.t

(** Exact response-time quantile over the window, [q] in [0, 1]. *)
val response_quantile : t -> float -> float
val lookups : t -> int
val hits : t -> int
val callbacks_sent : t -> int
val pushes_sent : t -> int

(** Committed transactions per second of window time. *)
val throughput : t -> now:float -> float

(** Re-open the measurement window at the current simulated time. *)
val reset : t -> unit
