type spec = {
  cfg : Sys_params.t;
  db_params : Db.Db_params.t;
  xact_params : Db.Xact_params.t;
  mix : (float * Db.Xact_params.t) list option;
  algo : Proto.algorithm;
  n_shards : int;
  seed : int;
  warmup_commits : int;
  measured_commits : int;
  max_sim_time : float;
  fault : Fault.Plan.t;
  obs : Obs.Config.t;
}

let default_spec ?(seed = 1) ?(warmup_commits = 300) ?(measured_commits = 2000)
    ?(max_sim_time = 50_000.0) ?(fault = Fault.Plan.none)
    ?(obs = Obs.Config.off) ~cfg ~xact_params algo =
  {
    cfg;
    db_params = Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ();
    xact_params;
    mix = None;
    algo;
    n_shards = 1;
    seed;
    warmup_commits;
    measured_commits;
    max_sim_time;
    fault;
    obs;
  }

type result = {
  algo : Proto.algorithm;
  n_clients : int;
  mean_response : float;
  response_stddev : float;
  response_p50 : float;
  response_p95 : float;
  throughput : float;
  commits : int;
  aborts : int;
  aborts_deadlock : int;
  aborts_stale : int;
  aborts_cert : int;
  hit_ratio : float;
  messages : int;
  packets : int;
  msgs_per_commit : float;
  callbacks_sent : int;
  pushes_sent : int;
  server_cpu_util : float;
  client_cpu_util : float;
  disk_util : float;
  log_disk_util : float;
  net_util : float;
  window : float;
  sim_time : float;
  events : int;
  (* fault / availability metrics (all zero under [Fault.Plan.none]) *)
  aborts_lease : int;
  retries : int;
  crashes : int;
  recoveries : int;
  lost_xacts : int;
  reclaimed_locks : int;
  lease_lapses : int;
  msgs_dropped : int;
  msgs_delayed : int;
  msgs_duplicated : int;
  mean_recovery : float;
  (* server availability (all zero unless the plan crashes the server) *)
  server_crashes : int;
  server_recoveries : int;
  server_killed_xacts : int;
  checkpoints : int;
  server_downtime : float;
  mean_server_recovery : float;
  (* sharded topologies (n_shards = 1 and zeros for unsharded runs) *)
  n_shards : int;
  prepares : int;
  xshard_commits : int;
  xshard_aborts : int;
  outcome_queries : int;
  shard_commits : int array;
      (* commits applied per shard, in shard order — a singleton for
         unsharded runs; reveals hot-shard skew under Zipf access *)
  (* per-replication point estimates, in seed order (singletons for a
     single run): the raw material for replication confidence intervals.
     Purely additive — every pooled scalar above is computed exactly as
     before. *)
  rep_mean_responses : float array;
  rep_throughputs : float array;
  obs : Obs.Run.t option;
}

(* Per-replication measurement state that the scalar [result] cannot
   reconstruct: the response-time accumulator and raw samples (for pooled
   stddev and quantiles) and the hit/lookup counts (for count-weighted
   ratios). *)
type rep_stats = {
  rep_response : Sim.Stats.t;
  rep_samples : Sim.Stats.Samples.t;
  rep_lookups : int;
  rep_hits : int;
}

let run_with_stats ?audit ?inspect spec =
  Sys_params.validate spec.cfg;
  Fault.Plan.validate spec.fault;
  if spec.n_shards > 1 then
    invalid_arg "Simulator.run: sharded specs (n_shards > 1) run via Shard.Sim";
  let cfg = spec.cfg in
  let eng = Sim.Engine.create () in
  let master = Sim.Rng.create spec.seed in
  let db = Db.Database.create spec.db_params in
  let metrics = Metrics.create eng in
  let net = Sim.Rng.split master "network" |> fun rng ->
            Net.Network.create eng ~rng cfg.Sys_params.net in
  (* with [Fault.Plan.none] no hook is installed and [Net.Network.post]
     takes its original path byte-for-byte: fault-free runs stay
     bit-identical to the pre-fault simulator *)
  if Fault.Plan.active spec.fault then begin
    let inj = Fault.Injector.create spec.fault in
    Net.Network.set_fault_hook net (fun ~bytes ->
        let v = Fault.Injector.message inj in
        if v.Fault.Injector.drop then begin
          Metrics.record_msg_dropped metrics;
          if Trace.active () then
            Trace.emit (Sim.Engine.now eng) (Trace.Msg_dropped { bytes })
        end
        else begin
          if v.Fault.Injector.extra_delay > 0.0 then begin
            Metrics.record_msg_delayed metrics;
            if Trace.active () then
              Trace.emit (Sim.Engine.now eng)
                (Trace.Msg_delayed { bytes; by = v.Fault.Injector.extra_delay })
          end;
          if v.Fault.Injector.copies > 1 then begin
            Metrics.record_msg_duplicated metrics;
            if Trace.active () then
              Trace.emit (Sim.Engine.now eng)
                (Trace.Msg_duplicated
                   { bytes; copies = v.Fault.Injector.copies })
          end
        end;
        {
          Net.Network.drop = v.Fault.Injector.drop;
          extra_delay = v.Fault.Injector.extra_delay;
          copies = v.Fault.Injector.copies;
        })
  end;
  let server =
    Server.create ~fault:spec.fault eng ~cfg ~db ~algo:spec.algo ~net
      ~rng:(Sim.Rng.split master "server") ~metrics
  in
  let clients = Array.make cfg.Sys_params.n_clients None in
  (* fleet-wide crashed-client count, maintained by the clients themselves
     so the sampler never scans the population *)
  let down_gauge = ref 0 in
  let commit_target = spec.warmup_commits + spec.measured_commits in
  let reset_all () =
    Metrics.reset metrics;
    Net.Network.reset_stats net;
    Server.reset_stats server;
    Array.iter (function Some c -> Client.reset_stats c | None -> ()) clients
  in
  let on_commit () =
    let n = Metrics.total_commits metrics in
    if n = spec.warmup_commits then reset_all ()
    else if n >= commit_target then Sim.Engine.stop eng
  in
  for i = 0 to cfg.Sys_params.n_clients - 1 do
    let crng = Sim.Rng.split master (Printf.sprintf "client-%d" i) in
    let workload =
      let rng = Sim.Rng.split crng "workload" in
      match spec.mix with
      | Some mix -> Db.Workload.create_mix db mix ~rng
      | None -> Db.Workload.create db spec.xact_params ~rng
    in
    let client = ref None in
    let to_server ~parent ~retry msg =
      let c = Option.get !client in
      let bytes =
        Proto.c2s_bytes ~control:cfg.Sys_params.control_msg_bytes
          ~page_size:cfg.Sys_params.page_size msg
      in
      let tag =
        {
          Obs.Causal.tg_parent = parent;
          tg_xid = Proto.c2s_xid msg;
          tg_owner = Proto.c2s_client msg;
          tg_kind = Proto.c2s_kind msg;
          tg_src = Obs.Causal.Client i;
          tg_dst = Obs.Causal.Shard 0;
          tg_retry = retry;
        }
      in
      Comms.send ~tag net ~msg_inst:cfg.Sys_params.net.Net.Network.msg_inst
        ~src:(Client.port c) ~dst:(Server.port server) ~bytes
        ~deliver:(fun ctx -> Server.deliver server ~ctx msg)
    in
    let c =
      Client.create eng ?audit ~fault:spec.fault ~down_gauge ~id:i ~cfg
        ~algo:spec.algo ~workload ~rng:(Sim.Rng.split crng "client") ~metrics
        ~to_server ~on_commit
    in
    client := Some c;
    clients.(i) <- Some c
  done;
  let links =
    Array.map
      (function
        | Some c ->
            {
              Server.port = Client.port c;
              inbox = Client.inbox c;
              cache_view = Client.cache c;
            }
        | None -> assert false)
      clients
  in
  Server.register_clients server links;
  Server.start server;
  Array.iter (function Some c -> Client.start c | None -> ()) clients;
  (* Observability, all opt-in ([Obs.Config.off] installs nothing).  The
     recorder goes into THIS domain's sink slot — which is the pool
     worker's slot when the run was dispatched by [Sim.Pool] — and the
     filled buffer returns by value in [result.obs], so tracing works at
     any [-j].  Sampler sources only read statistics (no hold, no RNG),
     so sampled runs compute exactly the results of unsampled ones. *)
  let ocfg = spec.obs in
  let recorder =
    if ocfg.Obs.Config.trace then
      Some (Obs.Recorder.create ~limit:ocfg.Obs.Config.trace_limit ())
    else None
  in
  let span_buf =
    if ocfg.Obs.Config.spans then
      Some (Obs.Span.create ~limit:ocfg.Obs.Config.span_limit ())
    else None
  in
  let causal_buf =
    if ocfg.Obs.Config.causal then
      Some (Obs.Causal.create ~limit:ocfg.Obs.Config.causal_limit ())
    else None
  in
  let registry =
    if ocfg.Obs.Config.metrics then begin
      let r = Obs.Metrics.create () in
      Obs.Metrics.set_gauge r "ccsim_shards" 1.0;
      Some r
    end
    else None
  in
  if ocfg.Obs.Config.profile then Sim.Engine.enable_profiling eng;
  let server_cpu = (Server.port server).Proto.cpu in
  let series =
    if not ocfg.Obs.Config.series then None
    else begin
      let interval = ocfg.Obs.Config.sample_interval in
      (* Per-interval rate from a cumulative counter.  [Metrics.reset] at
         the warmup boundary rewinds the counters, so the first
         post-warmup delta can be negative: clamp to 0. *)
      let rate_of read =
        let last = ref (read ()) in
        fun () ->
          let v = read () in
          let d = v -. !last in
          last := v;
          Float.max 0.0 d
      in
      let util_of fac =
        let cap = float_of_int (Sim.Facility.capacity fac) in
        let busy = rate_of (fun () -> Sim.Facility.busy_time fac) in
        fun () -> Float.min 1.0 (busy () /. (interval *. cap))
      in
      let disks = Server.data_disks server in
      let disk_busy =
        rate_of (fun () ->
            Array.fold_left (fun a d -> a +. Storage.Disk.busy_time d) 0.0 disks)
      in
      let net_busy = rate_of (fun () -> Net.Network.busy_time net) in
      let commit_rate =
        rate_of (fun () -> float_of_int (Metrics.total_commits metrics))
      in
      let abort_rate =
        rate_of (fun () -> float_of_int (Metrics.aborts metrics))
      in
      let locks = Server.locks server in
      let sources =
        [
          ("server_cpu_util", util_of server_cpu);
          ( "disk_util",
            fun () ->
              if Array.length disks = 0 then 0.0
              else
                Float.min 1.0
                  (disk_busy ()
                  /. (interval *. float_of_int (Array.length disks))) );
          ("net_util", fun () -> Float.min 1.0 (net_busy () /. interval));
          ("locks_held", fun () -> float_of_int (Cc.Lock_table.locks_held locks));
          ( "lock_waiters",
            fun () -> float_of_int (Cc.Lock_table.waiting_count locks) );
          ("active_xacts", fun () -> float_of_int (Server.active_count server));
          ( "ready_queue",
            fun () -> float_of_int (Server.ready_queue_length server) );
          ("commit_rate", fun () -> commit_rate () /. interval);
          ("abort_rate", fun () -> abort_rate () /. interval);
          ("clients_down", fun () -> float_of_int !down_gauge);
        ]
      in
      Some (Obs.Series.sample eng ~interval ~sources)
    end
  in
  let sim_time =
    (* Each sink goes into THIS domain's slot for the duration of the run;
       composable wrapping keeps recorder-off runs on the bare path. *)
    let run_sim () = Sim.Engine.run eng ~until:spec.max_sim_time () in
    let with_sink save install restore v f =
      match v with
      | None -> f ()
      | Some x ->
          let saved = save () in
          install x;
          Fun.protect ~finally:(fun () -> restore saved) f
    in
    with_sink Obs.Recorder.save Obs.Recorder.install Obs.Recorder.restore
      recorder (fun () ->
        with_sink Obs.Span.save Obs.Span.install Obs.Span.restore span_buf
          (fun () ->
            with_sink Obs.Causal.save Obs.Causal.install Obs.Causal.restore
              causal_buf (fun () ->
                with_sink Obs.Metrics.save Obs.Metrics.install
                  Obs.Metrics.restore registry run_sim)))
  in
  (* Per-kind wire accounting and causal critical-chain shape land in the
     registry after the run: pure counter folds, no engine interaction. *)
  (match registry with
  | Some r ->
      List.iter
        (fun (kind, ks) ->
          let lbl name = Printf.sprintf "%s{kind=\"%s\"}" name kind in
          Obs.Metrics.incr r (lbl "ccsim_net_msgs_total")
            ks.Net.Network.ks_msgs;
          Obs.Metrics.incr r (lbl "ccsim_net_packets_total")
            ks.Net.Network.ks_pkts;
          Obs.Metrics.incr r (lbl "ccsim_net_bytes_total")
            ks.Net.Network.ks_bytes;
          if ks.Net.Network.ks_retx > 0 then
            Obs.Metrics.incr r
              (lbl "ccsim_net_retransmits_total")
              ks.Net.Network.ks_retx;
          if ks.Net.Network.ks_dups > 0 then
            Obs.Metrics.incr r
              (lbl "ccsim_net_duplicates_total")
              ks.Net.Network.ks_dups)
        (Net.Network.kind_stats net);
      (match causal_buf with
      | Some b ->
          let tagged =
            Array.map (fun e -> (0, e)) (Obs.Causal.entries b)
          in
          let an =
            Obs.Causal.analyze ~dropped:(Obs.Causal.dropped b) tagged
          in
          let saved = Obs.Metrics.save () in
          Obs.Metrics.install r;
          Fun.protect
            ~finally:(fun () -> Obs.Metrics.restore saved)
            (fun () -> Obs.Causal.register_chain_metrics an)
      | None -> ())
  | None -> ());
  (match inspect with
  | Some f ->
      f server
        (Array.map (function Some c -> c | None -> assert false) clients)
  | None -> ());
  let now = sim_time in
  let window = now -. Metrics.measure_start metrics in
  let commits = Metrics.commits metrics in
  let lookups = Metrics.lookups metrics in
  (* single pass over the client array: no intermediate list at 100k *)
  let client_cpu_util_mean =
    let sum = ref 0.0 and n = ref 0 in
    Array.iter
      (function
        | Some c ->
            sum := !sum +. Client.cpu_utilization c;
            incr n
        | None -> ())
      clients;
    if !n = 0 then 0.0 else !sum /. float_of_int !n
  in
  let obs_payload =
    if not (Obs.Config.enabled ocfg) then None
    else begin
      let disk_snap d =
        {
          Obs.Run.fac_name = Storage.Disk.name d;
          fac_capacity = 1;
          fac_utilization = Storage.Disk.utilization d;
          fac_mean_queue = Storage.Disk.mean_queue_length d;
          fac_max_queue = Storage.Disk.max_queue_length d;
          fac_busy_time = Storage.Disk.busy_time d;
          fac_completions = Storage.Disk.accesses d;
        }
      in
      let facilities =
        (Obs.Run.snapshot_facility server_cpu
        :: (Array.to_list (Server.data_disks server) |> List.map disk_snap))
        @ (match Server.log_disk server with
          | Some d -> [ disk_snap d ]
          | None -> [])
        @ [
            {
              Obs.Run.fac_name = "network";
              fac_capacity = 1;
              fac_utilization = Net.Network.utilization net;
              fac_mean_queue = Net.Network.mean_queue_length net;
              fac_max_queue = Net.Network.max_queue_length net;
              fac_busy_time = Net.Network.busy_time net;
              fac_completions = Net.Network.packets_sent net;
            };
          ]
      in
      let trace, trace_dropped =
        match recorder with
        | Some r -> (Obs.Recorder.entries r, Obs.Recorder.dropped r)
        | None -> ([||], 0)
      in
      let spans, spans_dropped =
        match span_buf with
        | Some b -> (Obs.Span.entries b, Obs.Span.dropped b)
        | None -> ([||], 0)
      in
      let causal, causal_dropped =
        match causal_buf with
        | Some b -> (Obs.Causal.entries b, Obs.Causal.dropped b)
        | None -> ([||], 0)
      in
      Some
        {
          Obs.Run.reps =
            [
              {
                Obs.Run.rep_seed = spec.seed;
                trace;
                trace_dropped;
                series;
                facilities;
                profile =
                  (if ocfg.Obs.Config.profile then
                     Some (Sim.Engine.profile eng)
                   else None);
                spans;
                spans_dropped;
                causal;
                causal_dropped;
                metrics = registry;
              };
            ];
        }
    end
  in
  let result =
  {
    algo = spec.algo;
    n_clients = cfg.Sys_params.n_clients;
    mean_response = Metrics.mean_response metrics;
    response_stddev = Sim.Stats.stddev (Metrics.response_stats metrics);
    response_p50 = Metrics.response_quantile metrics 0.5;
    response_p95 = Metrics.response_quantile metrics 0.95;
    throughput = Metrics.throughput metrics ~now;
    commits;
    aborts = Metrics.aborts metrics;
    aborts_deadlock = Metrics.aborts_by metrics Metrics.Deadlock;
    aborts_stale = Metrics.aborts_by metrics Metrics.Stale_read;
    aborts_cert = Metrics.aborts_by metrics Metrics.Cert_fail;
    hit_ratio =
      (if lookups = 0 then 0.0
       else float_of_int (Metrics.hits metrics) /. float_of_int lookups);
    messages = Net.Network.messages_sent net;
    packets = Net.Network.packets_sent net;
    msgs_per_commit =
      (if commits = 0 then 0.0
       else float_of_int (Net.Network.messages_sent net) /. float_of_int commits);
    callbacks_sent = Metrics.callbacks_sent metrics;
    pushes_sent = Metrics.pushes_sent metrics;
    server_cpu_util = Server.cpu_utilization server;
    client_cpu_util = client_cpu_util_mean;
    disk_util = Server.mean_disk_utilization server;
    log_disk_util =
      (match Server.log_disk server with
      | Some d -> Storage.Disk.utilization d
      | None -> 0.0);
    net_util = Net.Network.utilization net;
    window;
    sim_time;
    events = Sim.Engine.events_executed eng;
    aborts_lease = Metrics.aborts_by metrics Metrics.Lease_reclaim;
    retries = Metrics.retries metrics;
    crashes = Metrics.crashes metrics;
    recoveries = Metrics.recoveries metrics;
    lost_xacts = Metrics.lost_xacts metrics;
    reclaimed_locks = Metrics.reclaimed_locks metrics;
    lease_lapses = Metrics.lease_lapses metrics;
    msgs_dropped = Metrics.msgs_dropped metrics;
    msgs_delayed = Metrics.msgs_delayed metrics;
    msgs_duplicated = Metrics.msgs_duplicated metrics;
    mean_recovery = Metrics.mean_recovery metrics;
    server_crashes = Metrics.server_crashes metrics;
    server_recoveries = Metrics.server_recoveries metrics;
    server_killed_xacts = Metrics.server_killed_xacts metrics;
    checkpoints = Metrics.checkpoints metrics;
    server_downtime = Metrics.server_downtime metrics;
    mean_server_recovery = Metrics.mean_server_recovery metrics;
    n_shards = 1;
    prepares = Metrics.prepares metrics;
    xshard_commits = Metrics.xshard_commits metrics;
    xshard_aborts = Metrics.xshard_aborts metrics;
    outcome_queries = Metrics.outcome_queries metrics;
    shard_commits = [| Server.local_commits server |];
    rep_mean_responses = [| Metrics.mean_response metrics |];
    rep_throughputs = [| Metrics.throughput metrics ~now |];
    obs = obs_payload;
  }
  in
  ( result,
    {
      rep_response = Metrics.response_stats metrics;
      rep_samples = Metrics.response_samples metrics;
      rep_lookups = Metrics.lookups metrics;
      rep_hits = Metrics.hits metrics;
    } )

let run ?audit ?inspect spec = fst (run_with_stats ?audit ?inspect spec)

let aggregate runs =
  if runs = [] then invalid_arg "Simulator.aggregate: no runs";
  let reps = List.length runs in
  begin
    let results = List.map fst runs in
    (* Response-time moments and quantiles come from the pooled per-commit
       observations — averaging per-rep stddevs or quantiles is not a
       stddev or quantile of anything.  Ratios are weighted by their
       denominators' counts, not averaged. *)
    let pooled_response =
      List.fold_left
        (fun acc (_, e) -> Sim.Stats.merge acc e.rep_response)
        (Sim.Stats.create ()) runs
    in
    let pooled_samples =
      match runs with
      | [] -> Sim.Stats.Samples.create ~capacity:0 ()
      | (_, e0) :: rest ->
          List.fold_left
            (fun acc (_, e) -> Sim.Stats.Samples.merge acc e.rep_samples)
            e0.rep_samples rest
    in
    let lookups = List.fold_left (fun a (_, e) -> a + e.rep_lookups) 0 runs in
    let hits = List.fold_left (fun a (_, e) -> a + e.rep_hits) 0 runs in
    let n = float_of_int reps in
    let favg f = List.fold_left (fun a r -> a +. f r) 0.0 results /. n in
    let isum f = List.fold_left (fun a r -> a + f r) 0 results in
    let first = List.hd results in
    let commits = isum (fun r -> r.commits) in
    let messages = isum (fun r -> r.messages) in
    {
      first with
      mean_response = Sim.Stats.mean pooled_response;
      response_stddev = Sim.Stats.stddev pooled_response;
      response_p50 = Sim.Stats.Samples.quantile pooled_samples 0.5;
      response_p95 = Sim.Stats.Samples.quantile pooled_samples 0.95;
      throughput = favg (fun r -> r.throughput);
      commits;
      aborts = isum (fun r -> r.aborts);
      aborts_deadlock = isum (fun r -> r.aborts_deadlock);
      aborts_stale = isum (fun r -> r.aborts_stale);
      aborts_cert = isum (fun r -> r.aborts_cert);
      hit_ratio =
        (if lookups = 0 then 0.0
         else float_of_int hits /. float_of_int lookups);
      messages;
      packets = isum (fun r -> r.packets);
      msgs_per_commit =
        (if commits = 0 then 0.0
         else float_of_int messages /. float_of_int commits);
      callbacks_sent = isum (fun r -> r.callbacks_sent);
      pushes_sent = isum (fun r -> r.pushes_sent);
      server_cpu_util = favg (fun r -> r.server_cpu_util);
      client_cpu_util = favg (fun r -> r.client_cpu_util);
      disk_util = favg (fun r -> r.disk_util);
      log_disk_util = favg (fun r -> r.log_disk_util);
      net_util = favg (fun r -> r.net_util);
      window = favg (fun r -> r.window);
      sim_time = favg (fun r -> r.sim_time);
      events = isum (fun r -> r.events);
      aborts_lease = isum (fun r -> r.aborts_lease);
      retries = isum (fun r -> r.retries);
      crashes = isum (fun r -> r.crashes);
      recoveries = isum (fun r -> r.recoveries);
      lost_xacts = isum (fun r -> r.lost_xacts);
      reclaimed_locks = isum (fun r -> r.reclaimed_locks);
      lease_lapses = isum (fun r -> r.lease_lapses);
      msgs_dropped = isum (fun r -> r.msgs_dropped);
      msgs_delayed = isum (fun r -> r.msgs_delayed);
      msgs_duplicated = isum (fun r -> r.msgs_duplicated);
      mean_recovery =
        (* weight per-rep means by their recovery counts *)
        (let recs = isum (fun r -> r.recoveries) in
         if recs = 0 then 0.0
         else
           List.fold_left
             (fun a r -> a +. (r.mean_recovery *. float_of_int r.recoveries))
             0.0 results
           /. float_of_int recs);
      server_crashes = isum (fun r -> r.server_crashes);
      server_recoveries = isum (fun r -> r.server_recoveries);
      server_killed_xacts = isum (fun r -> r.server_killed_xacts);
      checkpoints = isum (fun r -> r.checkpoints);
      (* total seconds of outage across replications, like the counters *)
      server_downtime =
        List.fold_left (fun a r -> a +. r.server_downtime) 0.0 results;
      mean_server_recovery =
        (let recs = isum (fun r -> r.server_recoveries) in
         if recs = 0 then 0.0
         else
           List.fold_left
             (fun a r ->
               a +. (r.mean_server_recovery *. float_of_int r.server_recoveries))
             0.0 results
           /. float_of_int recs);
      prepares = isum (fun r -> r.prepares);
      xshard_commits = isum (fun r -> r.xshard_commits);
      xshard_aborts = isum (fun r -> r.xshard_aborts);
      outcome_queries = isum (fun r -> r.outcome_queries);
      shard_commits =
        (* element-wise sum; every rep runs the same topology *)
        (let acc = Array.copy first.shard_commits in
         List.iter
           (fun r ->
             Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) r.shard_commits)
           (List.tl results);
         acc);
      rep_mean_responses =
        Array.of_list (List.map (fun r -> r.mean_response) results);
      rep_throughputs =
        Array.of_list (List.map (fun r -> r.throughput) results);
      obs =
        (* [Pool.map] preserves submission order, so replication payloads
           concatenate in seed order at any [jobs] — the merged trace is
           byte-identical whether run at -j 1 or -j N. *)
        (let reps =
           List.concat_map
             (fun r ->
               match r.obs with Some o -> o.Obs.Run.reps | None -> [])
             results
         in
         if reps = [] then None else Some { Obs.Run.reps });
    }
  end

let run_replicated ?(jobs = 1) spec ~reps =
  if reps <= 1 then run spec
  else begin
    let specs = List.init reps (fun k -> { spec with seed = spec.seed + k }) in
    let runs =
      if jobs > 1 then Sim.Pool.map ~jobs (fun s -> run_with_stats s) specs
      else List.map (fun s -> run_with_stats s) specs
    in
    aggregate runs
  end

let pp_result fmt r =
  Format.fprintf fmt
    "%-15s clients=%-3d rt=%.3fs tput=%.2f/s commits=%d aborts=%d \
     (dl=%d stale=%d cert=%d) hit=%.2f msgs/xact=%.1f cpu=%.2f disk=%.2f \
     net=%.2f"
    (Proto.algorithm_name r.algo)
    r.n_clients r.mean_response r.throughput r.commits r.aborts
    r.aborts_deadlock r.aborts_stale r.aborts_cert r.hit_ratio
    r.msgs_per_commit r.server_cpu_util r.disk_util r.net_util;
  if
    r.crashes > 0 || r.retries > 0 || r.msgs_dropped > 0
    || r.aborts_lease > 0
  then
    Format.fprintf fmt
      " | faults: drops=%d dups=%d retries=%d crashes=%d recovered=%d \
       (%.3fs avg) lost=%d lease-aborts=%d reclaimed=%d"
      r.msgs_dropped r.msgs_duplicated r.retries r.crashes r.recoveries
      r.mean_recovery r.lost_xacts r.aborts_lease r.reclaimed_locks;
  if r.server_crashes > 0 then
    Format.fprintf fmt
      " | server: crashes=%d recovered=%d killed=%d ckpts=%d down=%.3fs \
       replay=%.4fs avg"
      r.server_crashes r.server_recoveries r.server_killed_xacts r.checkpoints
      r.server_downtime r.mean_server_recovery;
  if r.n_shards > 1 then
    Format.fprintf fmt
      " | shards: n=%d prepares=%d 2pc-commits=%d 2pc-aborts=%d queries=%d \
       per-shard=[%s]"
      r.n_shards r.prepares r.xshard_commits r.xshard_aborts r.outcome_queries
      (String.concat ";"
         (Array.to_list (Array.map string_of_int r.shard_commits)))
