type caching = Intra | Inter
type notify_mode = Push | Invalidate

type algorithm =
  | Two_phase of caching
  | Certification of caching
  | Callback
  | No_wait of { notify : notify_mode option }

let algorithm_name = function
  | Two_phase Inter -> "2PL"
  | Two_phase Intra -> "2PL-intra"
  | Certification Inter -> "cert"
  | Certification Intra -> "cert-intra"
  | Callback -> "callback"
  | No_wait { notify = None } -> "no-wait"
  | No_wait { notify = Some Push } -> "no-wait+notify"
  | No_wait { notify = Some Invalidate } -> "no-wait+inval"

let section5_algorithms =
  [
    Two_phase Inter;
    Callback;
    No_wait { notify = None };
    No_wait { notify = Some Push };
  ]

let inter_caching = function
  | Two_phase Intra | Certification Intra -> false
  | Two_phase Inter | Certification Inter | Callback | No_wait _ -> true

type lock_kind = Read | Write
type fetch_page = { page : int; cached_version : int option }

type c2s =
  | Fetch of {
      client : int;
      xid : int;
      req : int;
      mode : lock_kind;
      pages : fetch_page list;
      no_wait : bool;
    }
  | Cert_read of { client : int; xid : int; req : int; pages : fetch_page list }
  | Commit of {
      client : int;
      xid : int;
      req : int;
      read_set : (int * int) list;
      update_pages : int list;
      release_pages : int list;
    }
  | Callback_reply of { client : int; page : int }
  | Release_retained of { client : int; pages : int list }
  | Dirty_evict of { client : int; xid : int; page : int }
  | Recovered of { client : int }
  (* Two-phase commit (sharded topologies only).  [Prepare] carries the
     shard's slice of the commit; [decider] names the shard whose durable
     commit record is the commit point.  [Decision] delivers the outcome.
     [Outcome_query] is shard-to-shard: a participant with an in-doubt
     prepared transaction asks the decider for the outcome. *)
  | Prepare of {
      client : int;
      xid : int;
      req : int;
      decider : int;
      read_set : (int * int) list;
      update_pages : int list;
      release_pages : int list;
    }
  | Decision of { client : int; xid : int; req : int; commit : bool }
  | Outcome_query of { shard : int; xid : int }

type s2c =
  | Fetch_reply of { xid : int; req : int; data : (int * int) list }
  | Cert_reply of { xid : int; req : int; data : (int * int) list }
  | Commit_reply of {
      xid : int;
      req : int;
      ok : bool;
      new_versions : (int * int) list;
      stale_pages : int list;
    }
  | Aborted of { xid : int; stale_pages : int list }
  | Callback_request of { page : int }
  | Update_push of { page : int; version : int }
  | Invalidate_page of { page : int }
  | Server_restart of { epoch : int }
  (* 2PC replies: a participant's vote on a [Prepare], and its
     acknowledgement of a [Decision] (with the slice of new versions it
     installed when committing).  Consumed by the client-side router;
     they never reach the client transaction loop. *)
  | Vote of { xid : int; req : int; shard : int; ok : bool; stale_pages : int list }
  | Decision_ack of {
      xid : int;
      req : int;
      shard : int;
      committed : bool;
      new_versions : (int * int) list;
    }

(* 2^30 attempts per client is far beyond any simulation run *)
let xid_stride = 1 lsl 30
let make_xid ~client ~seq = (client * xid_stride) + seq
let xid_client xid = xid / xid_stride

let c2s_client = function
  | Fetch { client; _ }
  | Cert_read { client; _ }
  | Commit { client; _ }
  | Callback_reply { client; _ }
  | Release_retained { client; _ }
  | Dirty_evict { client; _ }
  | Recovered { client }
  | Prepare { client; _ }
  | Decision { client; _ } ->
      client
  | Outcome_query _ -> -1 (* sent by a shard, not a client *)

(* The transaction a client-to-server message is about; -1 for messages
   not bound to one (callback replies, retained-lock releases, reboots). *)
let c2s_xid = function
  | Fetch { xid; _ }
  | Cert_read { xid; _ }
  | Commit { xid; _ }
  | Dirty_evict { xid; _ }
  | Prepare { xid; _ }
  | Decision { xid; _ }
  | Outcome_query { xid; _ } ->
      xid
  | Callback_reply _ | Release_retained _ | Recovered _ -> -1

(* Stable lower-case kind tags for causal tags and per-kind network
   accounting. *)
let c2s_kind = function
  | Fetch _ -> "fetch"
  | Cert_read _ -> "cert_read"
  | Commit _ -> "commit"
  | Callback_reply _ -> "callback_reply"
  | Release_retained _ -> "release_retained"
  | Dirty_evict _ -> "dirty_evict"
  | Recovered _ -> "recovered"
  | Prepare _ -> "prepare"
  | Decision _ -> "decision"
  | Outcome_query _ -> "outcome_query"

let s2c_kind = function
  | Fetch_reply _ -> "fetch_reply"
  | Cert_reply _ -> "cert_reply"
  | Commit_reply _ -> "commit_reply"
  | Aborted _ -> "aborted"
  | Callback_request _ -> "callback_request"
  | Update_push _ -> "update_push"
  | Invalidate_page _ -> "invalidate"
  | Server_restart _ -> "server_restart"
  | Vote _ -> "vote"
  | Decision_ack _ -> "decision_ack"

(* The transaction a server-to-client message is about; -1 for messages
   not bound to one (callbacks, notifications, restarts). *)
let s2c_xid = function
  | Fetch_reply { xid; _ }
  | Cert_reply { xid; _ }
  | Commit_reply { xid; _ }
  | Aborted { xid; _ }
  | Vote { xid; _ }
  | Decision_ack { xid; _ } ->
      xid
  | Callback_request _ | Update_push _ | Invalidate_page _ | Server_restart _
    ->
      -1

let c2s_bytes ~control ~page_size = function
  | Fetch _ | Cert_read _ | Callback_reply _ | Release_retained _
  | Recovered _ | Decision _ | Outcome_query _ ->
      control
  | Commit { update_pages; _ } | Prepare { update_pages; _ } ->
      control + (page_size * List.length update_pages)
  | Dirty_evict _ -> control + page_size

let s2c_bytes ~control ~page_size = function
  | Fetch_reply { data; _ } | Cert_reply { data; _ } ->
      control + (page_size * List.length data)
  | Commit_reply _ | Aborted _ | Callback_request _ | Invalidate_page _
  | Server_restart _ | Vote _ | Decision_ack _ ->
      control
  | Update_push _ -> control + page_size

type port = { cpu : Sim.Facility.t; mips : float }
