(** Protocol event tracing.

    A hook that, when set, receives every interesting protocol event with
    its simulated timestamp: client requests, server grants and replies,
    aborts, callbacks, notifications, commits.  Used by the
    [protocol_trace] example and handy when debugging a protocol change;
    costs nothing when unset.

    The sink is domain-local: each domain sees only the sink it installed
    itself, so simulations dispatched to {!Sim.Pool} workers run untraced
    and never race on the hook.  To trace a simulation, run it in the
    domain that called {!set_sink} (e.g. with [-j 1]). *)

type event =
  | Client_send of { client : int; xid : int; what : string }
  | Server_reply of { client : int; xid : int; what : string }
  | Lock_wait of { client : int; page : int; mode : string }
  | Lock_grant of { client : int; page : int; mode : string }
  | Deadlock of { victim_client : int; cycle : int list }
  | Abort of { client : int; xid : int; reason : string }
  | Callback of { holder : int; page : int }
  | Notify of { client : int; page : int; push : bool }
  | Commit of { client : int; xid : int; n_updates : int }
  | Disk_read of { page : int }
  | Msg_dropped of { bytes : int }
  | Msg_delayed of { bytes : int; by : float }
  | Client_crash of { client : int }
  | Client_recover of { client : int; downtime : float }
  | Lock_reclaimed of { client : int; pages : int list }
  | Retransmit of { client : int; xid : int }

val event_to_string : event -> string

(** Install a sink receiving [(simulated_time, event)]. *)
val set_sink : (float -> event -> unit) -> unit

(** Remove the sink. *)
val clear_sink : unit -> unit

(** Emit an event (no-op when no sink is installed). *)
val emit : float -> event -> unit

(** Is a sink installed?  Lets call sites skip argument construction. *)
val active : unit -> bool
