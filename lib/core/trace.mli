(** Protocol event tracing (compatibility shim over {!Obs.Recorder}).

    Emit sites in the server, client, and simulator report every
    interesting protocol event with its simulated timestamp: client
    requests, server grants and replies, aborts, callbacks,
    notifications, commits.  Costs nothing when no sink or recorder is
    installed.

    The sink slot is domain-local and shared with {!Obs.Recorder}:
    {!Core.Simulator} installs a typed recorder in whatever domain runs a
    simulation — including {!Sim.Pool} workers — so traced runs work at
    any [-j]; the filled buffer travels back by value inside the run's
    result and merges deterministically (see {!Obs.Run.merged_trace}).
    The callback sink below is the legacy interface, kept for simple
    stream-to-stdout uses such as the [protocol_trace] example. *)

type event = Obs.Event.t =
  | Client_send of { client : int; xid : int; what : string }
  | Server_reply of { client : int; xid : int; what : string }
  | Lock_wait of { client : int; page : int; mode : string }
  | Lock_grant of { client : int; page : int; mode : string }
  | Deadlock of { victim_client : int; cycle : int list }
  | Abort of { client : int; xid : int; reason : string }
  | Callback of { holder : int; page : int }
  | Notify of { client : int; page : int; push : bool }
  | Commit of { client : int; xid : int; n_updates : int }
  | Disk_read of { page : int }
  | Msg_dropped of { bytes : int }
  | Msg_delayed of { bytes : int; by : float }
  | Msg_duplicated of { bytes : int; copies : int }
  | Client_crash of { client : int }
  | Client_recover of { client : int; downtime : float }
  | Lock_reclaimed of { client : int; pages : int list }
  | Retransmit of { client : int; xid : int }
  | Server_crash of { killed : int }
  | Server_recover of { downtime : float; recovery : float }
  | Checkpoint of { versions : int }
  | Log_replayed of { records : int; pages : int }

val event_to_string : event -> string

(** Install a callback sink receiving [(simulated_time, event)] in this
    domain.  Replaces any recorder installed here. *)
val set_sink : (float -> event -> unit) -> unit

(** Remove this domain's sink. *)
val clear_sink : unit -> unit

(** Emit an event (no-op when no sink is installed). *)
val emit : float -> event -> unit

(** Is a sink installed?  Lets call sites skip argument construction. *)
val active : unit -> bool
