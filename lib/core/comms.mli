(** Charged message transport between client and server endpoints.

    Implements the paper's §3.4 cost accounting for messages: [MsgCost]
    instructions per packet at the sending CPU (blocking the sender
    process), the wire occupancy per packet (via {!Net.Network}), and
    [MsgCost] per packet at the receiving CPU before delivery. *)

(** [use_cpu port inst] blocks the calling process for [inst] instructions
    of FCFS service on [port]'s CPU.  No-op for [inst <= 0]. *)
val use_cpu : Proto.port -> int -> unit

(** [send net ~msg_inst ~src ~dst ~bytes ~deliver] charges the sender,
    transmits asynchronously, charges the receiver, then runs [deliver]
    (typically a mailbox send).  The caller resumes as soon as the sender
    CPU charge completes. *)
val send :
  Net.Network.t ->
  msg_inst:int ->
  src:Proto.port ->
  dst:Proto.port ->
  bytes:int ->
  deliver:(unit -> unit) ->
  unit
