(** Charged message transport between client and server endpoints.

    Implements the paper's §3.4 cost accounting for messages: [MsgCost]
    instructions per packet at the sending CPU (blocking the sender
    process), the wire occupancy per packet (via {!Net.Network}), and
    [MsgCost] per packet at the receiving CPU before delivery. *)

(** [use_cpu port inst] blocks the calling process for [inst] instructions
    of FCFS service on [port]'s CPU.  No-op for [inst <= 0]. *)
val use_cpu : Proto.port -> int -> unit

(** [send ?tag net ~msg_inst ~src ~dst ~bytes ~deliver] charges the
    sender, transmits asynchronously, charges the receiver, then runs
    [deliver] (typically a mailbox send).  The caller resumes as soon as
    the sender CPU charge completes.  [tag] is the message's causal
    trace context (see {!Net.Network.post}); [deliver] receives the
    delivered copy's causal node id, -1 when causal tracing is off. *)
val send :
  ?tag:Obs.Causal.tag ->
  Net.Network.t ->
  msg_inst:int ->
  src:Proto.port ->
  dst:Proto.port ->
  bytes:int ->
  deliver:(int -> unit) ->
  unit
