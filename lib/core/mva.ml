type station = { name : string; demand : float }
type inputs = { n_clients : int; think : float; stations : station list }

type prediction = {
  throughput : float;
  response : float;
  station_utils : (string * float) list;
  bottleneck : string;
}

let solve { n_clients; think; stations } =
  if stations = [] then invalid_arg "Mva.solve: no stations";
  if n_clients <= 0 then invalid_arg "Mva.solve: n_clients <= 0";
  List.iter
    (fun s -> if s.demand < 0.0 then invalid_arg "Mva.solve: negative demand")
    stations;
  if think < 0.0 then invalid_arg "Mva.solve: negative think time";
  let k = List.length stations in
  let d = Array.of_list (List.map (fun s -> s.demand) stations) in
  let q = Array.make k 0.0 in
  let r = Array.make k 0.0 in
  let x = ref 0.0 in
  for n = 1 to n_clients do
    let total = ref 0.0 in
    for i = 0 to k - 1 do
      r.(i) <- d.(i) *. (1.0 +. q.(i));
      total := !total +. r.(i)
    done;
    x := float_of_int n /. (!total +. think);
    for i = 0 to k - 1 do
      q.(i) <- !x *. r.(i)
    done
  done;
  let response = Array.fold_left ( +. ) 0.0 r in
  let station_utils =
    List.mapi (fun i s -> (s.name, !x *. d.(i))) stations
  in
  let bottleneck =
    List.fold_left
      (fun (bn, bu) (n, u) -> if u > bu then (n, u) else (bn, bu))
      ("", neg_infinity) station_utils
    |> fst
  in
  { throughput = !x; response; station_utils; bottleneck }

let demands_2pl (cfg : Sys_params.t) (xp : Db.Xact_params.t) ~client_hit
    ~buffer_hit =
  if client_hit < 0.0 || client_hit > 1.0 then
    invalid_arg "Mva.demands_2pl: client_hit outside [0,1]";
  if buffer_hit < 0.0 || buffer_hit > 1.0 then
    invalid_arg "Mva.demands_2pl: buffer_hit outside [0,1]";
  let n_reads =
    float_of_int (xp.Db.Xact_params.min_xact_size + xp.Db.Xact_params.max_xact_size)
    /. 2.0
  in
  let pw = xp.Db.Xact_params.prob_write in
  let n_updates = n_reads *. pw in
  (* message and packet counts (object size 1: one page per read) *)
  let data_fetches = n_reads *. (1.0 -. client_hit) in
  let commit_up_packets = 1.0 +. n_updates in
  let c2s_packets = n_reads +. n_updates +. commit_up_packets in
  let s2c_packets =
    (data_fetches *. 2.0)
    +. (n_reads -. data_fetches)
    +. n_updates (* X-grant replies *)
    +. 1.0 (* commit reply *)
  in
  let packets = c2s_packets +. s2c_packets in
  let msg_inst = float_of_int cfg.Sys_params.net.Net.Network.msg_inst in
  (* CPU demands in seconds *)
  let client_cpu_s =
    ((float_of_int cfg.Sys_params.client_proc_inst *. (n_reads +. n_updates))
    +. (msg_inst *. packets))
    /. (cfg.Sys_params.client_mips *. 1e6)
  in
  let disk_reads = data_fetches *. (1.0 -. buffer_hit) in
  let disk_writes = n_updates in
  let server_cpu_s =
    ((msg_inst *. packets)
    +. (float_of_int cfg.Sys_params.server_proc_inst *. (data_fetches +. n_updates))
    +. (float_of_int cfg.Sys_params.init_disk_inst *. (disk_reads +. disk_writes)))
    /. (cfg.Sys_params.server_mips *. 1e6)
  in
  (* device demands *)
  let avg_seek =
    (cfg.Sys_params.disk.Storage.Disk.seek_low
    +. cfg.Sys_params.disk.Storage.Disk.seek_high)
    /. 2.0
  in
  let access = avg_seek +. cfg.Sys_params.disk.Storage.Disk.transfer_time in
  let per_disk =
    (disk_reads +. disk_writes) *. access
    /. float_of_int cfg.Sys_params.n_data_disks
  in
  let log_demand =
    if cfg.Sys_params.n_log_disks > 0 && pw > 0.0 then
      (* one sequential log force per updating transaction *)
      let log_pages = Float.max 1.0 (Float.round (n_updates /. 8.0)) in
      log_pages *. cfg.Sys_params.disk.Storage.Disk.transfer_time
    else 0.0
  in
  let net_demand = packets *. cfg.Sys_params.net.Net.Network.net_delay in
  let think =
    xp.Db.Xact_params.external_delay
    +. (n_reads
       *. (xp.Db.Xact_params.update_delay +. xp.Db.Xact_params.internal_delay))
    +. client_cpu_s
    (* the client CPU is private to each client: a delay, not a shared
       queueing station *)
  in
  let data_disks =
    List.init cfg.Sys_params.n_data_disks (fun i ->
        { name = Printf.sprintf "disk-%d" i; demand = per_disk })
  in
  {
    n_clients = cfg.Sys_params.n_clients;
    think;
    stations =
      ({ name = "server-cpu"; demand = server_cpu_s } :: data_disks)
      @ (if log_demand > 0.0 then [ { name = "log-disk"; demand = log_demand } ]
         else [])
      @ (if net_demand > 0.0 then [ { name = "network"; demand = net_demand } ]
         else []);
  }
