exception Restart
exception Crashed

type t = {
  id : int;
  eng : Sim.Engine.t;
  cfg : Sys_params.t;
  algo : Proto.algorithm;
  workload : Db.Workload.t;
  rng : Sim.Rng.t;
  metrics : Metrics.t;
  to_server : parent:int -> retry:int -> Proto.c2s -> unit;
  on_commit : unit -> unit;
  audit : Cc.History.t option;
  fault : Fault.Plan.t;
  faulty : bool; (* [Fault.Plan.active fault]: arms timeouts, leases, retries *)
  frng : Sim.Rng.t; (* crash/restart stream, split off the plan seed *)
  cport : Proto.port;
  cache_pool : Storage.Lru_pool.t;
  vers : (int, int) Hashtbl.t; (* cached page -> version of our copy *)
  inbox_mb : (int * Proto.s2c) Sim.Mailbox.t;
  reply_box : (int * Proto.s2c) Sim.Mailbox.t;
  (* per-transaction state *)
  mutable xid : int;
  mutable seq : int;
  mutable in_xact : bool;
  locked : (int, Proto.lock_kind) Hashtbl.t; (* accessed/locked by current *)
  checked : (int, int) Hashtbl.t; (* cert: page -> version read *)
  dirty : (int, unit) Hashtbl.t;
  acquired : (int, unit) Hashtbl.t; (* callback: locks first taken this xact *)
  retained : (int, Proto.lock_kind) Hashtbl.t; (* callback: retained locks *)
  pending_cb : (int, unit) Hashtbl.t; (* callbacks deferred to xact end *)
  read_snap : (int, int) Hashtbl.t; (* locking: page -> version first read *)
  mutable contacted : bool; (* sent any xact-scoped message this attempt *)
  mutable abort_flag : bool;
  mutable abort_stale : int list;
  mutable thinking : bool;
  deferred : (int * Proto.s2c) Queue.t;
  (* fault-recovery state (inert under Fault.none) *)
  mutable cur_req : int; (* sequence number of the last awaitable request *)
  mutable last_req : Proto.c2s option; (* that request, for retransmission *)
  mutable last_req_sent : float; (* its FIRST transmission time *)
  mutable lease_deadline : float; (* retained state trusted until here *)
  mutable crash_requested : bool;
  mutable crashed : bool; (* down: the dispatcher drops every message *)
  mutable srv_epoch : int; (* highest server epoch seen in a restart notice *)
  (* stats *)
  mutable n_commits : int;
  mutable n_restarts : int;
  down_gauge : int ref; (* shared fleet-wide count of crashed clients *)
  (* observability only: open span ids, -1 when closed or spans are off *)
  mutable sp_xact : int;
  mutable sp_attempt : int;
  mutable sp_leaf : int;
  (* causal trace context: the current transaction's Root node and the
     most recently consumed message's node id (the cause of whatever we
     send next); both -1 when causal tracing is off *)
  mutable cz_root : int;
  mutable cz_parent : int;
}

(* Build a probe set once so per-page membership checks cost O(1) instead
   of rescanning a list for every page of the object. *)
let page_set pages =
  let s = Hashtbl.create (max 8 (List.length pages)) in
  List.iter (fun p -> Hashtbl.replace s p ()) pages;
  s

let reply_page_set data =
  let s = Hashtbl.create (max 8 (List.length data)) in
  List.iter (fun (p, _) -> Hashtbl.replace s p ()) data;
  s

let create ?audit ?(fault = Fault.Plan.none) ?(down_gauge = ref 0) eng ~id
    ~cfg ~algo ~workload ~rng ~metrics ~to_server ~on_commit =
  let cpu =
    Sim.Facility.create eng
      ~name:(Printf.sprintf "client-%d-cpu" id)
      ~capacity:cfg.Sys_params.n_client_cpus ()
  in
  {
    id;
    eng;
    cfg;
    algo;
    workload;
    rng;
    metrics;
    to_server;
    on_commit;
    audit;
    fault;
    faulty = Fault.Plan.active fault;
    frng = Fault.Injector.client_stream fault id;
    cport = { Proto.cpu; mips = cfg.Sys_params.client_mips };
    cache_pool = Storage.Lru_pool.create ~capacity:cfg.Sys_params.cache_size;
    vers = Hashtbl.create 256;
    inbox_mb = Sim.Mailbox.create eng;
    reply_box = Sim.Mailbox.create eng;
    xid = -1;
    seq = 0;
    in_xact = false;
    locked = Hashtbl.create 64;
    checked = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    acquired = Hashtbl.create 64;
    retained = Hashtbl.create 256;
    pending_cb = Hashtbl.create 16;
    read_snap = Hashtbl.create 64;
    contacted = false;
    abort_flag = false;
    abort_stale = [];
    thinking = false;
    deferred = Queue.create ();
    cur_req = 0;
    last_req = None;
    last_req_sent = 0.0;
    lease_deadline = infinity;
    crash_requested = false;
    crashed = false;
    srv_epoch = 0;
    n_commits = 0;
    n_restarts = 0;
    down_gauge;
    sp_xact = -1;
    sp_attempt = -1;
    sp_leaf = -1;
    cz_root = -1;
    cz_parent = -1;
  }

let port t = t.cport
let inbox t = t.inbox_mb
let cache t = t.cache_pool
let commits t = t.n_commits
let restarts t = t.n_restarts
let cpu_utilization t = Sim.Facility.utilization t.cport.Proto.cpu
let retained_count t = Hashtbl.length t.retained

let reset_stats t =
  Sim.Facility.reset_stats t.cport.Proto.cpu;
  t.n_commits <- 0;
  t.n_restarts <- 0

let is_callback t = t.algo = Proto.Callback
let charge_pages t n = Comms.use_cpu t.cport (t.cfg.Sys_params.client_proc_inst * n)

(* ------------------------------------------------------------------ *)
(* Span instrumentation                                                *)
(* ------------------------------------------------------------------ *)

(* Leaf phase segments TILE each transaction attempt: at any instant
   inside a transaction exactly one leaf span is open on this client's
   track.  Time passes on the main process during think holds, CPU
   charges, every [Comms.send] (which holds on the client CPU), reply
   waits, abort cleanup, and restart back-off — each is covered by
   exactly one leaf, and consecutive leaves share their boundary
   instant, so the per-phase totals telescope to the [Xact] duration up
   to float-addition rounding ({!Obs.Critical_path.reconciles}).

   [sp_attempt >= 0] implies a span sink is installed (the id came from
   [Obs.Span.open_span]); everything here is a no-op — not even a clock
   read — when spans are off. *)

let sp_track t = Obs.Span.Client t.id

(* Close the current leaf and open the next at the same timestamp. *)
let sp_enter_leaf t kind =
  if t.sp_attempt >= 0 then begin
    let now = Sim.Engine.now t.eng in
    if t.sp_leaf >= 0 then Obs.Span.close_span ~time:now t.sp_leaf;
    t.sp_leaf <-
      Obs.Span.open_span ~time:now ~track:(sp_track t) ~kind
        ~parent:t.sp_attempt ~xid:t.xid
  end

let sp_open_attempt t =
  if Obs.Span.active () then begin
    let now = Sim.Engine.now t.eng in
    t.sp_attempt <-
      Obs.Span.open_span ~time:now ~track:(sp_track t) ~kind:Obs.Span.Attempt
        ~parent:t.sp_xact ~xid:t.xid;
    t.sp_leaf <-
      Obs.Span.open_span ~time:now ~track:(sp_track t)
        ~kind:Obs.Span.Client_cpu ~parent:t.sp_attempt ~xid:t.xid
  end

let sp_close_attempt t ~time ~ok =
  if t.sp_leaf >= 0 then begin
    Obs.Span.close_span ~time ~ok t.sp_leaf;
    t.sp_leaf <- -1
  end;
  if t.sp_attempt >= 0 then begin
    Obs.Span.close_span ~time ~ok t.sp_attempt;
    t.sp_attempt <- -1
  end

let sp_close_xact t ~time ~ok =
  if t.sp_xact >= 0 then begin
    Obs.Span.close_span ~time ~ok t.sp_xact;
    t.sp_xact <- -1
  end

(* A crash ends every open span at the crash instant, marked failed. *)
let sp_crash t =
  if t.sp_xact >= 0 || t.sp_attempt >= 0 then begin
    let now = Sim.Engine.now t.eng in
    sp_close_attempt t ~time:now ~ok:false;
    sp_close_xact t ~time:now ~ok:false
  end

(* ------------------------------------------------------------------ *)
(* Cache management                                                    *)
(* ------------------------------------------------------------------ *)

let drop_page t page =
  ignore (Storage.Lru_pool.remove t.cache_pool page);
  Hashtbl.remove t.vers page

let on_evict t (v : Storage.Lru_pool.victim) =
  Hashtbl.remove t.vers v.Storage.Lru_pool.page;
  if v.Storage.Lru_pool.dirty then
    (* cannot happen while current-transaction pages are pinned, but keep
       the §3.3.3 protocol: updated pages swapped out go to the server *)
    t.to_server ~parent:t.cz_parent ~retry:0
      (Proto.Dirty_evict { client = t.id; xid = t.xid; page = v.Storage.Lru_pool.page })
  else if is_callback t && Hashtbl.mem t.retained v.Storage.Lru_pool.page then begin
    Hashtbl.remove t.retained v.Storage.Lru_pool.page;
    t.to_server ~parent:t.cz_parent ~retry:0
      (Proto.Release_retained { client = t.id; pages = [ v.Storage.Lru_pool.page ] })
  end

let cache_insert t page ~version =
  (match Storage.Lru_pool.insert t.cache_pool page ~dirty:false with
  | None -> ()
  | Some v -> on_evict t v);
  Hashtbl.replace t.vers page version;
  Storage.Lru_pool.pin t.cache_pool page

let touch_and_pin t page =
  ignore (Storage.Lru_pool.touch t.cache_pool page);
  Storage.Lru_pool.pin t.cache_pool page

let cached_version t page =
  if Storage.Lru_pool.mem t.cache_pool page then Hashtbl.find_opt t.vers page
  else None

let fetch_pages_of t pages =
  List.map (fun page -> { Proto.page; cached_version = cached_version t page }) pages

(* ------------------------------------------------------------------ *)
(* Asynchronous message handling (dispatcher)                          *)
(* ------------------------------------------------------------------ *)

let handle_callback_request t ctx page =
  if t.in_xact && Hashtbl.mem t.locked page then
    (* in use by the current transaction: release when it terminates *)
    Hashtbl.replace t.pending_cb page ()
  else begin
    Hashtbl.remove t.retained page;
    t.to_server ~parent:ctx ~retry:0
      (Proto.Callback_reply { client = t.id; page })
  end

let handle_push t page version =
  if not (Hashtbl.mem t.dirty page) then
    if Storage.Lru_pool.mem t.cache_pool page then begin
      ignore (Storage.Lru_pool.insert t.cache_pool page ~dirty:false);
      Hashtbl.replace t.vers page version
    end
(* else: wasted push — we no longer cache the page *)

let handle_invalidate t page =
  if not (Hashtbl.mem t.dirty page) then drop_page t page

let handle_async t ctx = function
  | Proto.Callback_request { page } -> handle_callback_request t ctx page
  | Proto.Update_push { page; version } -> handle_push t page version
  | Proto.Invalidate_page { page } -> handle_invalidate t page
  | Proto.Fetch_reply _ | Proto.Cert_reply _ | Proto.Commit_reply _
  | Proto.Aborted _ | Proto.Server_restart _ | Proto.Vote _
  | Proto.Decision_ack _ ->
      assert false

(* Per-protocol reconstruction on first sight of a new server epoch
   (§ISSUE: server crash-recovery).  The server's lock table, callback
   registrations and in-flight requests are gone:

   - callback locking: every retained lock is void.  Dropping [retained]
     is the re-registration step — the next access of each page misses
     [local] and goes through the normal fetch path, which re-establishes
     the server-side registration before the page is reused.
   - locking protocols (2PL, callback, no-wait): a transaction that holds
     (or believes it holds) locks aborts and re-acquires — unless it is
     awaiting its commit verdict, which may already be durable; the
     retransmission machinery gets the authoritative answer from the
     recovered server's log.
   - certification: nothing to do — commit-time validation against the
     rebuilt version table is crash-proof by construction.

   Runs on the dispatcher, so it must flag the main process rather than
   raise.  The notice itself is best-effort (droppable): commit-time
   read-set revalidation under server-crash plans is the backstop. *)
let handle_server_restart t ctx =
  (match t.algo with
  | Proto.Callback ->
      Hashtbl.reset t.retained;
      Hashtbl.reset t.pending_cb
  | Proto.Two_phase _ | Proto.Certification _ | Proto.No_wait _ -> ());
  let awaiting_commit =
    match t.last_req with
    | Some (Proto.Commit { xid; _ }) -> t.in_xact && xid = t.xid
    | _ -> false
  in
  match t.algo with
  | Proto.Certification _ -> ()
  | Proto.Two_phase _ | Proto.Callback | Proto.No_wait _ ->
      if
        t.in_xact
        && (t.contacted || Hashtbl.length t.locked > 0)
        && not awaiting_commit
      then begin
        t.abort_flag <- true;
        (* wake the main process if it is blocked on a reply; the
           synthetic abort is caused by the restart notice itself *)
        Sim.Mailbox.send t.reply_box
          (ctx, Proto.Aborted { xid = t.xid; stale_pages = [] })
      end

let dispatch t (ctx, msg) =
  if t.crashed then () (* a down workstation hears nothing *)
  else
  match msg with
  | Proto.Callback_request _ | Proto.Update_push _ | Proto.Invalidate_page _ ->
      if t.thinking && not t.cfg.Sys_params.process_async_during_think then
        Queue.add (ctx, msg) t.deferred
      else handle_async t ctx msg
  | Proto.Aborted { xid; stale_pages } ->
      if xid = t.xid then begin
        t.abort_flag <- true;
        t.abort_stale <- stale_pages @ t.abort_stale;
        (* wake the main process if it is blocked on a reply *)
        Sim.Mailbox.send t.reply_box (ctx, msg)
      end
  | Proto.Server_restart { epoch } ->
      if epoch > t.srv_epoch then begin
        t.srv_epoch <- epoch;
        handle_server_restart t ctx
      end
  | Proto.Fetch_reply _ | Proto.Cert_reply _ | Proto.Commit_reply _ ->
      Sim.Mailbox.send t.reply_box (ctx, msg)
  | Proto.Vote _ | Proto.Decision_ack _ ->
      (* 2PC traffic terminates at the shard router; it never reaches a
         client transaction loop *)
      ()

let dispatcher_loop t () =
  let rec loop () =
    dispatch t (Sim.Mailbox.recv t.inbox_mb);
    loop ()
  in
  loop ()

let drain_deferred t =
  let n = Queue.length t.deferred in
  for _ = 1 to n do
    let ctx, msg = Queue.take t.deferred in
    handle_async t ctx msg
  done

(* ------------------------------------------------------------------ *)
(* Main-process helpers                                                *)
(* ------------------------------------------------------------------ *)

let check_abort t =
  if t.crash_requested then raise Crashed;
  if t.abort_flag then raise Restart

let reply_xid = function
  | Proto.Fetch_reply { xid; _ }
  | Proto.Cert_reply { xid; _ }
  | Proto.Commit_reply { xid; _ }
  | Proto.Aborted { xid; _ } ->
      xid
  | Proto.Callback_request _ | Proto.Update_push _ | Proto.Invalidate_page _
  | Proto.Server_restart _ | Proto.Vote _ | Proto.Decision_ack _ ->
      -1

let reply_req = function
  | Proto.Fetch_reply { req; _ }
  | Proto.Cert_reply { req; _ }
  | Proto.Commit_reply { req; _ } ->
      req
  | Proto.Aborted _ | Proto.Callback_request _ | Proto.Update_push _
  | Proto.Invalidate_page _ | Proto.Server_restart _ | Proto.Vote _
  | Proto.Decision_ack _ ->
      -1

(* [req] sequence numbers only advance under an active fault plan; without
   one every request carries [req = 0] and replies are matched by xid
   alone, exactly as before. *)
let next_req t =
  if t.faulty then begin
    t.cur_req <- t.cur_req + 1;
    t.cur_req
  end
  else 0

(* Timed receive with capped exponential backoff.  On every timeout the
   current request is retransmitted verbatim (same xid, same [req]), so
   the server sees an idempotent duplicate.  Replies to earlier [req]s of
   the current transaction are discarded.  A matched reply acknowledges
   the request and renews the lease from the request's FIRST transmission
   time — the server has heard us no earlier than that, so its own expiry
   clock [last_heard + lease] is never behind ours.

   [crashable] is false for the commit round-trip: a crash request is
   deferred until the commit outcome is known, so a transaction the server
   committed is always recorded (and audited) by the client.  The
   observable difference from a client that crashed mid-round-trip is
   nil — the commit was already durable at the server. *)
let await_reply_faulty t ~crashable =
  let retries = ref 0 in
  let rec wait timeout =
    if crashable && t.crash_requested then raise Crashed;
    match Sim.Mailbox.recv_timeout t.reply_box ~timeout with
    | Some (ctx, msg) ->
        if reply_xid msg <> t.xid then wait timeout
        else (
          match msg with
          | Proto.Aborted _ ->
              (* abort-path work (callback releases, restart) is caused
                 by this abort notice *)
              t.cz_parent <- ctx;
              raise Restart
          | m when reply_req m = t.cur_req ->
              if t.fault.Fault.Plan.lease > 0.0 then
                t.lease_deadline <-
                  Float.max t.lease_deadline
                    (t.last_req_sent +. t.fault.Fault.Plan.lease);
              (ctx, m)
          | _ -> wait timeout (* duplicate reply to a superseded request *))
    | None ->
        if crashable && t.crash_requested then raise Crashed;
        Metrics.record_retry t.metrics;
        if Trace.active () then
          Trace.emit (Sim.Engine.now t.eng)
            (Trace.Retransmit { client = t.id; xid = t.xid });
        incr retries;
        (match t.last_req with
        | Some m -> t.to_server ~parent:t.cz_parent ~retry:!retries m
        | None -> ());
        wait (Float.min (timeout *. 2.0) t.fault.Fault.Plan.max_backoff)
  in
  wait t.fault.Fault.Plan.req_timeout

let rec await_reply_plain t =
  let ctx, msg = Sim.Mailbox.recv t.reply_box in
  if reply_xid msg <> t.xid then await_reply_plain t (* stale, old attempt *)
  else
    match msg with
    | Proto.Aborted _ ->
        t.cz_parent <- ctx;
        raise Restart
    | m -> (ctx, m)

(* [kind] is the wait-leaf span for this round trip.  On [Restart] (or
   [Crashed]) the wait leaf stays open; the exception handler's own
   [sp_enter_leaf]/[sp_crash] closes it at the handling instant, so the
   tiling has no gap. *)
let await_reply ?(crashable = true) ?(kind = Obs.Span.Fetch_wait) t =
  sp_enter_leaf t kind;
  let ctx, m =
    if t.faulty then await_reply_faulty t ~crashable else await_reply_plain t
  in
  (* everything the main process does next is caused by this reply *)
  t.cz_parent <- ctx;
  sp_enter_leaf t Obs.Span.Client_cpu;
  m

let think t dt =
  if dt > 0.0 then begin
    sp_enter_leaf t Obs.Span.Think;
    t.thinking <- true;
    Sim.Engine.hold dt;
    t.thinking <- false;
    (* deferred-callback replies sent here are accounted as think time *)
    drain_deferred t;
    sp_enter_leaf t Obs.Span.Client_cpu
  end

let describe_c2s = function
  | Proto.Fetch { mode; pages; no_wait; _ } ->
      Printf.sprintf "%s%s lock request [%s]"
        (match mode with Proto.Read -> "S" | Proto.Write -> "X")
        (if no_wait then " (no-wait)" else "")
        (String.concat "," (List.map (fun f -> string_of_int f.Proto.page) pages))
  | Proto.Cert_read { pages; _ } ->
      Printf.sprintf "cert read [%s]"
        (String.concat "," (List.map (fun f -> string_of_int f.Proto.page) pages))
  | Proto.Commit { update_pages; _ } ->
      Printf.sprintf "commit (%d updated pages)" (List.length update_pages)
  | Proto.Callback_reply { page; _ } -> Printf.sprintf "callback reply p%d" page
  | Proto.Release_retained { pages; _ } ->
      Printf.sprintf "release retained [%s]"
        (String.concat "," (List.map string_of_int pages))
  | Proto.Dirty_evict { page; _ } -> Printf.sprintf "dirty evict p%d" page
  | Proto.Recovered _ -> "recovered (cold cache)"
  | Proto.Prepare { update_pages; _ } ->
      Printf.sprintf "2pc prepare (%d updated pages)"
        (List.length update_pages)
  | Proto.Decision { commit; _ } ->
      if commit then "2pc decision commit" else "2pc decision abort"
  | Proto.Outcome_query { xid; _ } -> Printf.sprintf "2pc outcome query x%d" xid

let send_xact_msg t msg =
  if Trace.active () then
    Trace.emit (Sim.Engine.now t.eng)
      (Trace.Client_send { client = t.id; xid = t.xid; what = describe_c2s msg });
  t.contacted <- true;
  if t.faulty then (
    match msg with
    | Proto.Fetch { no_wait = false; _ } | Proto.Cert_read _ | Proto.Commit _
      ->
        t.last_req <- Some msg;
        t.last_req_sent <- Sim.Engine.now t.eng
    | _ -> ());
  t.to_server ~parent:t.cz_parent ~retry:0 msg

let record_lookups t ~total ~misses =
  for _ = 1 to misses do
    Metrics.record_lookup t.metrics ~hit:false
  done;
  for _ = 1 to total - misses do
    Metrics.record_lookup t.metrics ~hit:true
  done

(* Record the version a page had when the transaction first accessed it.
   This is what the serializability audit reports as the read: later
   re-reads of a locked page are served from the transaction's private
   copy, so a mid-transaction push to the cached frame (possible only
   under faults, after a lock was lease-reclaimed) must not rewrite
   history.  Under [Fault.none] the snapshot provably equals the cached
   version at commit, because a held lock keeps writers out. *)
let snap_reads t pages =
  List.iter
    (fun p ->
      if not (Hashtbl.mem t.read_snap p) then
        match Hashtbl.find_opt t.vers p with
        | Some v -> Hashtbl.add t.read_snap p v
        | None -> ())
    pages

(* Callback locking under a lease: retained locks are only trusted while
   the lease holds.  The deadline renews from acknowledged requests, and
   the server's reclamation clock ([last_heard + lease]) is always at or
   behind ours, so a client that stops trusting here can never use a lock
   the server has already given away.  When the lease lapses we drop all
   retained locks; if this attempt already read through them those reads
   are suspect, so the attempt restarts. *)
let check_lease t =
  if
    t.faulty && t.algo = Proto.Callback
    && t.fault.Fault.Plan.lease > 0.0
    && Sim.Engine.now t.eng > t.lease_deadline
  then begin
    let pages = Hashtbl.fold (fun p _ acc -> p :: acc) t.retained [] in
    if pages <> [] then begin
      Hashtbl.reset t.retained;
      Hashtbl.reset t.pending_cb;
      Metrics.record_lease_lapse t.metrics;
      (* best effort; the server may already have reclaimed them *)
      t.to_server ~parent:t.cz_parent ~retry:0
        (Proto.Release_retained { client = t.id; pages });
      if t.in_xact && Hashtbl.length t.locked > 0 then raise Restart
    end
  end

(* ------------------------------------------------------------------ *)
(* ReadObject                                                          *)
(* ------------------------------------------------------------------ *)

let install_fetch_data t data = List.iter (fun (p, v) -> cache_insert t p ~version:v) data

(* two-phase and no-wait locking: a page locked by the current transaction
   is valid; anything else needs a server lock request (which doubles as
   the validity check, §2.1) *)
(* Pin every already-resident page of the object before anything can be
   installed: installing one page of a multi-page object must not evict
   another page of the same object mid-read. *)
let pin_resident t pages =
  List.iter
    (fun p -> if Storage.Lru_pool.mem t.cache_pool p then touch_and_pin t p)
    pages

let read_locking t pages ~no_wait_ok =
  pin_resident t pages;
  let need = List.filter (fun p -> not (Hashtbl.mem t.locked p)) pages in
  record_lookups t ~total:(List.length pages) ~misses:(List.length need);
  if need <> [] then begin
    let all_cached = List.for_all (fun p -> cached_version t p <> None) need in
    if no_wait_ok && all_cached then begin
      send_xact_msg t
        (Proto.Fetch
           {
             client = t.id;
             xid = t.xid;
             req = 0;
             mode = Proto.Read;
             pages = fetch_pages_of t need;
             no_wait = true;
           });
      List.iter (fun p -> touch_and_pin t p) need
    end
    else begin
      send_xact_msg t
        (Proto.Fetch
           {
             client = t.id;
             xid = t.xid;
             req = next_req t;
             mode = Proto.Read;
             pages = fetch_pages_of t need;
             no_wait = false;
           });
      match await_reply t with
      | Proto.Fetch_reply { data; _ } ->
          install_fetch_data t data;
          let got = reply_page_set data in
          List.iter
            (fun p -> if not (Hashtbl.mem got p) then touch_and_pin t p)
            need
      | _ -> assert false
    end;
    List.iter (fun p -> Hashtbl.replace t.locked p Proto.Read) need;
    snap_reads t need
  end;
  let needed = page_set need in
  List.iter
    (fun p -> if not (Hashtbl.mem needed p) then touch_and_pin t p)
    pages;
  check_abort t

(* callback locking: retained locks make cached pages valid with no server
   contact at all (§2.3) *)
let read_callback t pages =
  check_lease t;
  pin_resident t pages;
  let local p =
    (Hashtbl.mem t.retained p || Hashtbl.mem t.locked p)
    && Storage.Lru_pool.mem t.cache_pool p
  in
  let need = List.filter (fun p -> not (local p)) pages in
  record_lookups t ~total:(List.length pages) ~misses:(List.length need);
  if need <> [] then begin
    (* mark the pages in-use before the fetch leaves: a callback request
       racing the fetch must be deferred, or the dispatcher would release
       the very lock the in-flight fetch relies on *)
    List.iter
      (fun p ->
        if Hashtbl.find_opt t.locked p <> Some Proto.Write then
          Hashtbl.replace t.locked p Proto.Read)
      need;
    send_xact_msg t
      (Proto.Fetch
         {
           client = t.id;
           xid = t.xid;
           req = next_req t;
           mode = Proto.Read;
           pages = fetch_pages_of t need;
           no_wait = false;
         });
    (match await_reply t with
    | Proto.Fetch_reply { data; _ } ->
        install_fetch_data t data;
        let got = reply_page_set data in
        List.iter
          (fun p -> if not (Hashtbl.mem got p) then touch_and_pin t p)
          need
    | _ -> assert false);
    List.iter
      (fun p ->
        if not (Hashtbl.mem t.retained p) then begin
          Hashtbl.replace t.retained p Proto.Read;
          Hashtbl.replace t.acquired p ()
        end)
      need
  end;
  let needed = page_set need in
  List.iter
    (fun p ->
      (* don't forget a write lock we already hold on a re-read *)
      if Hashtbl.find_opt t.locked p <> Some Proto.Write then
        Hashtbl.replace t.locked p Proto.Read;
      if not (Hashtbl.mem needed p) then touch_and_pin t p)
    pages;
  snap_reads t pages;
  check_abort t

(* certification: check each cached page with the server once per
   transaction (§2.2); no locks, so no asynchronous aborts either *)
let read_certification t pages =
  pin_resident t pages;
  let need = List.filter (fun p -> not (Hashtbl.mem t.checked p)) pages in
  record_lookups t ~total:(List.length pages) ~misses:(List.length need);
  if need <> [] then begin
    send_xact_msg t
      (Proto.Cert_read
         { client = t.id; xid = t.xid; req = next_req t; pages = fetch_pages_of t need });
    (match await_reply ~kind:Obs.Span.Cert_wait t with
    | Proto.Cert_reply { data; _ } ->
        install_fetch_data t data;
        let got = reply_page_set data in
        List.iter
          (fun p -> if not (Hashtbl.mem got p) then touch_and_pin t p)
          need
    | _ -> assert false);
    List.iter
      (fun p ->
        match Hashtbl.find_opt t.vers p with
        | Some v -> Hashtbl.replace t.checked p v
        | None -> assert false)
      need
  end;
  let needed = page_set need in
  List.iter
    (fun p -> if not (Hashtbl.mem needed p) then touch_and_pin t p)
    pages

let read_object t pages =
  match t.algo with
  | Proto.Two_phase _ -> read_locking t pages ~no_wait_ok:false
  | Proto.No_wait _ -> read_locking t pages ~no_wait_ok:true
  | Proto.Callback -> read_callback t pages
  | Proto.Certification _ -> read_certification t pages

(* ------------------------------------------------------------------ *)
(* UpdateObject                                                        *)
(* ------------------------------------------------------------------ *)

let mark_dirty t pages =
  List.iter
    (fun p ->
      Storage.Lru_pool.set_dirty t.cache_pool p true;
      Hashtbl.replace t.dirty p ())
    pages

let update_object t pages =
  if t.algo = Proto.Callback then check_lease t;
  let have_x p =
    Hashtbl.find_opt t.locked p = Some Proto.Write
    || (is_callback t && Hashtbl.find_opt t.retained p = Some Proto.Write)
  in
  let need_x = List.filter (fun p -> not (have_x p)) pages in
  (* count update permissions served locally (retained write locks) *)
  (match t.algo with
  | Proto.Callback ->
      List.iter
        (fun p ->
          Metrics.record_lookup t.metrics
            ~hit:(Hashtbl.find_opt t.retained p = Some Proto.Write))
        pages
  | Proto.Two_phase _ | Proto.Certification _ | Proto.No_wait _ -> ());
  (match t.algo with
  | Proto.Certification _ ->
      (* deferred updates: purely local until commit *)
      ()
  | Proto.Two_phase _ | Proto.Callback ->
      if need_x <> [] then begin
        send_xact_msg t
          (Proto.Fetch
             {
               client = t.id;
               xid = t.xid;
               req = next_req t;
               mode = Proto.Write;
               pages = fetch_pages_of t need_x;
               no_wait = false;
             });
        match await_reply t with
        | Proto.Fetch_reply { data; _ } -> install_fetch_data t data
        | _ -> assert false
      end
  | Proto.No_wait _ ->
      if need_x <> [] then
        send_xact_msg t
          (Proto.Fetch
             {
               client = t.id;
               xid = t.xid;
               req = 0;
               mode = Proto.Write;
               pages = fetch_pages_of t need_x;
               no_wait = true;
             }));
  List.iter (fun p -> Hashtbl.replace t.locked p Proto.Write) need_x;
  snap_reads t need_x;
  mark_dirty t pages;
  check_abort t

(* ------------------------------------------------------------------ *)
(* Commit / abort                                                      *)
(* ------------------------------------------------------------------ *)

let dirty_pages t = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty []

let apply_new_versions t new_versions =
  List.iter
    (fun (p, v) ->
      if Storage.Lru_pool.mem t.cache_pool p then begin
        Hashtbl.replace t.vers p v;
        Storage.Lru_pool.set_dirty t.cache_pool p false
      end)
    new_versions

let clear_xact_state t =
  Hashtbl.reset t.locked;
  Hashtbl.reset t.checked;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.acquired;
  Hashtbl.reset t.read_snap;
  Storage.Lru_pool.unpin_all t.cache_pool;
  t.contacted <- false;
  t.abort_flag <- false;
  t.abort_stale <- [];
  t.in_xact <- false

(* Serializability audit: summarize the committed transaction as the
   versions it read and installed.  Must run before [apply_new_versions]
   so updated pages still show the version that was read. *)
let record_audit t ~new_versions =
  match t.audit with
  | None -> ()
  | Some history ->
      let reads =
        match t.algo with
        | Proto.Certification _ ->
            Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.checked []
        | Proto.Two_phase _ | Proto.Callback | Proto.No_wait _ ->
            Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.read_snap []
      in
      Cc.History.add_commit history
        { Cc.History.xid = t.xid; reads; writes = new_versions }

let send_commit t ~read_set ~update_pages ~release_pages =
  send_xact_msg t
    (Proto.Commit
       {
         client = t.id;
         xid = t.xid;
         req = next_req t;
         read_set;
         update_pages;
         release_pages;
       });
  match await_reply ~crashable:false ~kind:Obs.Span.Commit_wait t with
  | Proto.Commit_reply { ok; new_versions; stale_pages; _ } ->
      (ok, new_versions, stale_pages)
  | _ -> assert false

let commit t =
  let updates = dirty_pages t in
  (* Under server-crash plans every locking commit carries its read
     snapshot: a crash may have voided the locks mid-transaction without
     the (droppable) restart notice reaching us, so the server must
     re-validate what we read.  Zero-server-fault plans never set this. *)
  let srv_crashes = t.fault.Fault.Plan.server_crash_mean > 0.0 in
  match t.algo with
  | Proto.Two_phase _ | Proto.No_wait _ ->
      (* Under faults, no-wait's optimistic (fire-and-forget) reads are
         re-validated at commit: a dropped no-wait fetch must not let a
         stale read commit.  The read set is empty — and the server skips
         validation — in the fault-free model, preserving §2.4 exactly. *)
      let read_set =
        match t.algo with
        | Proto.No_wait _ when t.faulty ->
            Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.read_snap []
        | Proto.Two_phase _ when srv_crashes ->
            Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.read_snap []
        | _ -> []
      in
      let ok, new_versions, stale =
        send_commit t ~read_set ~update_pages:updates ~release_pages:[]
      in
      if not ok then begin
        List.iter (drop_page t) stale;
        raise Restart
      end;
      record_audit t ~new_versions;
      apply_new_versions t new_versions
  | Proto.Certification _ ->
      let read_set = Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.checked [] in
      let ok, new_versions, stale = send_commit t ~read_set ~update_pages:updates ~release_pages:[] in
      if not ok then begin
        List.iter (drop_page t) stale;
        raise Restart
      end;
      record_audit t ~new_versions;
      apply_new_versions t new_versions
  | Proto.Callback ->
      let release_pages = Hashtbl.fold (fun p () acc -> p :: acc) t.pending_cb [] in
      (* a read-only commit served entirely from retained locks must still
         contact the server when the server can crash: the retained locks
         may be void (wiped by a crash whose restart notice was dropped),
         and only server-side revalidation can tell *)
      let must_validate = srv_crashes && Hashtbl.length t.read_snap > 0 in
      if t.contacted || updates <> [] || release_pages <> [] || must_validate
      then begin
        let read_set =
          if srv_crashes then
            Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.read_snap []
          else []
        in
        let ok, new_versions, stale =
          send_commit t ~read_set ~update_pages:updates ~release_pages
        in
        if not ok then begin
          (* failed revalidation: the server released every lock we held,
             retained ones included — forget them and re-acquire *)
          Hashtbl.reset t.retained;
          Hashtbl.reset t.pending_cb;
          List.iter (drop_page t) stale;
          raise Restart
        end;
        record_audit t ~new_versions;
        apply_new_versions t new_versions
      end
      else record_audit t ~new_versions:[];
      List.iter
        (fun p ->
          Hashtbl.remove t.retained p;
          Hashtbl.remove t.pending_cb p)
        release_pages;
      (* locks on updated pages survive the commit: as writes if the
         retain-writes extension is on, downgraded to reads otherwise
         (matching the server) *)
      let mode =
        if t.cfg.Sys_params.callback_retain_writes then Proto.Write
        else Proto.Read
      in
      let released = page_set release_pages in
      List.iter
        (fun p ->
          if not (Hashtbl.mem released p) then Hashtbl.replace t.retained p mode)
        updates;
      (* callbacks that arrived while the commit was in flight missed
         [release_pages]; the transaction is over, honour them now *)
      let late = Hashtbl.fold (fun p () acc -> p :: acc) t.pending_cb [] in
      List.iter
        (fun p ->
          Hashtbl.remove t.pending_cb p;
          Hashtbl.remove t.retained p;
          t.to_server ~parent:t.cz_parent ~retry:0
            (Proto.Callback_reply { client = t.id; page = p }))
        late

(* After an abort: throw away in-place garbage and pages the server told us
   are stale, drop this attempt's callback locks (the server released
   them), and honour deferred callbacks. *)
let abort_cleanup t =
  t.n_restarts <- t.n_restarts + 1;
  List.iter (drop_page t) t.abort_stale;
  (* A stale-read abort means the cache betrayed us: distrust every page
     this attempt touched, or the restart keeps tripping over the next
     stale copy one abort at a time (optimistic livelock). *)
  if t.abort_stale <> [] && t.cfg.Sys_params.stale_drop_all then
    Hashtbl.iter (fun p _ -> drop_page t p) t.locked;
  List.iter (drop_page t) (dirty_pages t);
  if is_callback t then begin
    Hashtbl.iter (fun p () -> Hashtbl.remove t.retained p) t.acquired;
    let pending = Hashtbl.fold (fun p () acc -> p :: acc) t.pending_cb [] in
    List.iter
      (fun p ->
        Hashtbl.remove t.retained p;
        Hashtbl.remove t.pending_cb p;
        t.to_server ~parent:t.cz_parent ~retry:0
          (Proto.Callback_reply { client = t.id; page = p }))
      pending
  end;
  clear_xact_state t

let restart_delay t =
  match t.cfg.Sys_params.restart_policy with
  | Sys_params.Immediate -> 0.0
  | Sys_params.Fixed mean -> Sim.Rng.exponential t.rng ~mean
  | Sys_params.Adaptive ->
      let mean = Float.max (Metrics.mean_response t.metrics) 0.1 in
      Sim.Rng.exponential t.rng ~mean

(* ------------------------------------------------------------------ *)
(* The Figure 3 transaction loop                                       *)
(* ------------------------------------------------------------------ *)

let run_profile t (profile : Db.Workload.profile) =
  List.iter
    (fun (s : Db.Workload.step) ->
      read_object t s.Db.Workload.read_pages;
      charge_pages t (List.length s.Db.Workload.read_pages);
      think t s.Db.Workload.update_delay;
      check_abort t;
      if s.Db.Workload.write_pages <> [] then begin
        update_object t s.Db.Workload.write_pages;
        charge_pages t (List.length s.Db.Workload.write_pages)
      end;
      think t s.Db.Workload.internal_delay;
      check_abort t)
    profile.Db.Workload.steps;
  commit t

let begin_attempt t =
  if t.crash_requested then raise Crashed;
  t.seq <- t.seq + 1;
  t.xid <- Proto.make_xid ~client:t.id ~seq:t.seq;
  t.in_xact <- true;
  t.abort_flag <- false;
  t.abort_stale <- [];
  if not (Proto.inter_caching t.algo) then begin
    (* intra-transaction caching: the whole cache is invalid at BeginXact *)
    Storage.Lru_pool.clear t.cache_pool;
    Hashtbl.reset t.vers
  end

(* ------------------------------------------------------------------ *)
(* Crash / recovery                                                    *)
(* ------------------------------------------------------------------ *)

let request_crash t = t.crash_requested <- true

(* A crash loses every bit of volatile state: the cache, version table,
   retained locks, and any in-flight transaction.  The dispatcher keeps
   running but drops messages while [crashed] — a down workstation hears
   nothing, and whatever queued meanwhile is gone on reboot. *)
let crash_cleanup t =
  sp_crash t;
  (* the causal group dies with the crash, marked failed; the crash has
     no causing message, so the End keeps whatever cause came last *)
  if t.cz_root >= 0 then begin
    Obs.Causal.finish ~time:(Sim.Engine.now t.eng) ~parent:t.cz_parent
      ~xid:t.xid ~client:t.id ~ok:false;
    t.cz_root <- -1;
    t.cz_parent <- -1
  end;
  Metrics.record_crash t.metrics ~in_xact:t.in_xact;
  if Trace.active () then
    Trace.emit (Sim.Engine.now t.eng) (Trace.Client_crash { client = t.id });
  Storage.Lru_pool.unpin_all t.cache_pool;
  Storage.Lru_pool.clear t.cache_pool;
  Hashtbl.reset t.vers;
  Hashtbl.reset t.locked;
  Hashtbl.reset t.checked;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.acquired;
  Hashtbl.reset t.retained;
  Hashtbl.reset t.pending_cb;
  Hashtbl.reset t.read_snap;
  Queue.clear t.deferred;
  t.contacted <- false;
  t.abort_flag <- false;
  t.abort_stale <- [];
  t.in_xact <- false;
  t.thinking <- false;
  t.last_req <- None;
  t.lease_deadline <- infinity;
  t.crash_requested <- false;
  t.crashed <- true;
  incr t.down_gauge

let recover t ~downtime =
  t.crashed <- false;
  decr t.down_gauge;
  (* messages delivered during the outage were already dropped by the
     dispatcher; clear any reply that slipped in before the crash *)
  let rec drain () =
    match Sim.Mailbox.recv_opt t.reply_box with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ();
  Metrics.record_recovery t.metrics ~downtime;
  if Trace.active () then
    Trace.emit (Sim.Engine.now t.eng)
      (Trace.Client_recover { client = t.id; downtime });
  (* tell the server we rebooted cold, so it aborts our in-flight
     transaction and frees every lock we held.  Best effort: if this
     message is dropped, the lease sweep reclaims them instead (an active
     crash plan requires a lease, see Fault.Plan.validate). *)
  t.to_server ~parent:(-1) ~retry:0 (Proto.Recovered { client = t.id })

let main_loop t () =
  (* stagger client start-up so the fleet does not move in lockstep *)
  Sim.Engine.hold
    (Sim.Rng.exponential t.rng
       ~mean:(Db.Workload.params t.workload).Db.Xact_params.external_delay);
  let rec xact_loop () =
    let profile = Db.Workload.next t.workload in
    let first_start = Sim.Engine.now t.eng in
    if Obs.Span.active () then
      t.sp_xact <-
        Obs.Span.open_span ~time:first_start ~track:(sp_track t)
          ~kind:Obs.Span.Xact ~parent:(-1) ~xid:(-1);
    (* the causal Root shares the Xact span's exact open instant, so the
       DAG chain length reconciles with the span decomposition *)
    t.cz_root <- Obs.Causal.root ~time:first_start ~client:t.id;
    t.cz_parent <- t.cz_root;
    let rec attempt () =
      begin_attempt t;
      sp_open_attempt t;
      match run_profile t profile with
      | () ->
          (* the same clock read closes the spans and measures the
             response, so the Xact span's duration IS the recorded
             end-to-end latency *)
          let now = Sim.Engine.now t.eng in
          let response = now -. first_start in
          t.n_commits <- t.n_commits + 1;
          Metrics.record_commit t.metrics ~response;
          sp_close_attempt t ~time:now ~ok:true;
          sp_close_xact t ~time:now ~ok:true;
          (* the End shares the Xact span's exact close instant *)
          if t.cz_root >= 0 then begin
            Obs.Causal.finish ~time:now ~parent:t.cz_parent ~xid:t.xid
              ~client:t.id ~ok:true;
            t.cz_root <- -1;
            t.cz_parent <- -1
          end;
          Obs.Metrics.observe_s "ccsim_commit_latency_seconds" response;
          clear_xact_state t;
          t.on_commit ()
      | exception Restart ->
          sp_enter_leaf t Obs.Span.Abort_work;
          abort_cleanup t;
          let after_cleanup = Sim.Engine.now t.eng in
          sp_close_attempt t ~time:after_cleanup ~ok:false;
          let sp_restart =
            if t.sp_xact >= 0 then
              Obs.Span.open_span ~time:after_cleanup ~track:(sp_track t)
                ~kind:Obs.Span.Restart_wait ~parent:t.sp_xact ~xid:(-1)
            else -1
          in
          Sim.Engine.hold (restart_delay t);
          Obs.Span.close_span ~time:(Sim.Engine.now t.eng) sp_restart;
          attempt ()
    in
    attempt ();
    Sim.Engine.hold profile.Db.Workload.external_delay;
    xact_loop ()
  in
  if not t.faulty then xact_loop ()
  else
    let down_rng = Sim.Rng.split t.frng "downtime" in
    let rec life () =
      match xact_loop () with
      | () -> ()
      | exception Crashed ->
          crash_cleanup t;
          let downtime =
            Float.max 1e-4
              (Sim.Rng.exponential down_rng
                 ~mean:t.fault.Fault.Plan.restart_mean)
          in
          Sim.Engine.hold downtime;
          recover t ~downtime;
          life ()
    in
    life ()

let start t =
  Sim.Engine.spawn t.eng ~name:(Printf.sprintf "client-%d-dispatch" t.id)
    (dispatcher_loop t);
  Sim.Engine.spawn t.eng ~name:(Printf.sprintf "client-%d-main" t.id) (main_loop t);
  if t.faulty && t.fault.Fault.Plan.crash_mean > 0.0 then begin
    let sched = Sim.Rng.split t.frng "crash-schedule" in
    Sim.Engine.spawn t.eng ~name:(Printf.sprintf "client-%d-gremlin" t.id)
      (fun () ->
        let rec loop () =
          Sim.Engine.hold
            (Sim.Rng.exponential sched ~mean:t.fault.Fault.Plan.crash_mean);
          (* the flag takes effect at the client's next checkpoint; crash
             requests raised during downtime coalesce into the reboot *)
          t.crash_requested <- true;
          loop ()
        in
        loop ())
  end

let crashed t = t.crashed

let cached_versions t =
  Hashtbl.fold
    (fun p v acc ->
      if Storage.Lru_pool.mem t.cache_pool p then (p, v) :: acc else acc)
    t.vers []

let debug_state t =
  let keys h = Hashtbl.fold (fun k _ acc -> string_of_int k :: acc) h [] |> String.concat "," in
  Printf.sprintf
    "client %d: in_xact=%b xid=%d contacted=%b abort=%b locked=[%s] dirty=[%s] retained=%d pending_cb=[%s] commits=%d restarts=%d"
    t.id t.in_xact t.xid t.contacted t.abort_flag (keys t.locked) (keys t.dirty)
    (Hashtbl.length t.retained) (keys t.pending_cb) t.n_commits t.n_restarts
