(** The database server (paper §3.3.4 and Figure 4).

    Owns the server CPU(s), data and log disks, buffer pool, lock manager,
    version table, and MPL admission control.  Each incoming client message
    is handled by its own process; operations of the same transaction are
    serialized on a per-transaction chain (a client session delivers its
    requests in order), which is also what makes a no-wait commit wait for
    the transaction's outstanding optimistic requests.

    The algorithm-dependent server transaction module of the paper is the
    [handle_*] family here: lock-based fetch (with callback requests and
    no-wait silence), certification reads and commit-time validation, and
    commit/abort processing with logging, buffer installation, lock release
    or retention, and update notification. *)

type t

(** A broken server-side invariant: the protocol under which it broke,
    the client whose request exposed it, and which invariant it was.
    Replaces what used to be bare [assert false] branches, so a violation
    in a long chaos run says {e what} died instead of a file/line pair. *)
exception
  Server_invariant of { protocol : string; client : int; kind : string }

(** How the server reaches one client: its CPU endpoint, its inbox, and a
    read-only view of its cache (the notification directory — see
    DESIGN.md on why consulting it costs nothing). *)
type client_link = {
  port : Proto.port;
  inbox : (int * Proto.s2c) Sim.Mailbox.t;
      (** (causal node id, message) pairs, the node id being -1 when
          causal tracing is off *)
  cache_view : Storage.Lru_pool.t;
}

(** [?fault] enables the recovery paths: request idempotency (a table of
    finished commit verdicts replayed to retransmissions), commit-time
    re-validation of no-wait read sets, callback-request re-sends, and
    lease-based reclamation of locks held by silent clients.  With the
    default [Fault.Plan.none] every one of those paths is inert and the
    server behaves bit-identically to the original.

    [?label] prefixes the names of this server's CPU facility and disks —
    sharded assemblies pass ["s<k>-"] so per-resource stats stay
    distinguishable.  The empty default keeps single-server names
    unchanged. *)
val create :
  ?fault:Fault.Plan.t ->
  ?label:string ->
  Sim.Engine.t ->
  cfg:Sys_params.t ->
  db:Db.Database.t ->
  algo:Proto.algorithm ->
  net:Net.Network.t ->
  rng:Sim.Rng.t ->
  metrics:Metrics.t ->
  t

(** Must be called once, before any message is delivered.  [?hooks]
    (default true) installs the cache-residency hooks on the client
    pools; sharded assemblies pass [false] and install one dispatcher
    hook per pool themselves, routing each page to its shard's
    {!residency_add}/{!residency_drop}. *)
val register_clients : ?hooks:bool -> t -> client_link array -> unit

(** {1 Sharded topologies}

    A shard is an ordinary server owning one partition of the page
    space.  [set_peers] wires it into the topology; with it set, the
    server accepts the 2PC messages ([Proto.Prepare] / [Proto.Decision]
    / [Proto.Outcome_query]), resolves in-doubt slices on recovery, and
    detects deadlocks on the union waits-for graph over every peer's
    lock table.  Unsharded servers ([peers] never set) are bit-identical
    to the pre-sharding implementation. *)

(** [set_peers t ~shard_id peers] — [peers] lists every shard, self
    included, indexed by shard id. *)
val set_peers : t -> shard_id:int -> t array -> unit

(** Mirror one client pool's residency change into this server's
    notification directory (sharded assemblies only; see
    {!register_clients}). *)
val residency_add : t -> int -> int -> unit

val residency_drop : t -> int -> int -> unit

(** Does this server's algorithm/configuration send update
    notifications (and hence need the residency directory at all)? *)
val notifies : t -> bool

(** Start background services: the lease-reclamation sweep (fault plans
    with a positive lease), and — when the plan can crash the server —
    the crash/restart gremlin and the periodic checkpointer.  A server
    crash drops all volatile state (lock table, version table, buffer
    pool, admission queues, in-flight requests) instantaneously; recovery
    replays the durable redo log from the last checkpoint, paying the
    log-disk read-back, then broadcasts [Proto.Server_restart] so clients
    can run their per-protocol reconstruction.  Handler processes caught
    mid-flight by a crash are fenced by an epoch counter and die
    silently.  A no-op for inert plans.

    [?crash_rng] overrides the crash/restart schedule stream — sharded
    assemblies pass {!Fault.Injector.shard_stream} so each shard fails
    independently; the default is the single-server stream. *)
val start : ?crash_rng:Sim.Rng.t -> t -> unit

(** The server CPU endpoint (for charging inbound messages). *)
val port : t -> Proto.port

(** Deliver one client message: spawns a handler process and returns.
    [ctx] is the delivered copy's causal node id (-1 when causal tracing
    is off); every message the handler emits in response is parented on
    it. *)
val deliver : t -> ctx:int -> Proto.c2s -> unit

(** {1 Introspection (stats, tests)} *)

val buffer : t -> Storage.Lru_pool.t
val locks : t -> Cc.Lock_table.t
val versions : t -> Cc.Version_table.t
val data_disks : t -> Storage.Disk.t array
val log_disk : t -> Storage.Disk.t option
val active_count : t -> int
val ready_queue_length : t -> int
val cpu_utilization : t -> float
val mean_disk_utilization : t -> float
val reset_stats : t -> unit

(** Crash count so far (0 until the first crash).  Bumped atomically at
    each crash; transactions admitted under an older epoch are dead. *)
val server_epoch : t -> int

(** Is the server currently crashed (between crash and recovery)? *)
val server_down : t -> bool

(** The redo log, when a log disk is configured — the durability audit's
    ground truth ({!Storage.Log_manager.committed_versions}). *)
val log_manager : t -> Storage.Log_manager.t option

(** This server's shard id (0 unless {!set_peers} was called). *)
val shard_id : t -> int

(** Commits applied on this shard since the last {!reset_stats} — both
    one-round commits and 2PC decision-commits. *)
val local_commits : t -> int

(** In-doubt prepared 2PC slices currently held (tests, audits). *)
val prepared_count : t -> int
