(** System parameters (paper Table 3), with the Table 5 and Table 4 presets
    used by the experiments. *)

type t = {
  n_clients : int;  (** [NClients] *)
  n_client_cpus : int;  (** [NClientCPUs] *)
  client_mips : float;  (** [ClientMips] *)
  n_server_cpus : int;  (** [NServerCPUs] *)
  server_mips : float;  (** [ServerMips] *)
  n_data_disks : int;  (** [NDataDisks] *)
  n_log_disks : int;  (** [NLogDisks]; 0 disables the log manager *)
  cache_size : int;  (** [CacheSize]: pages per client cache *)
  buffer_size : int;  (** [BufferSize]: pages in the server pool *)
  page_size : int;  (** [PageSize] in bytes *)
  init_disk_inst : int;  (** [InitDiskCost] instructions *)
  server_proc_inst : int;  (** [ServerProcPage] instructions *)
  client_proc_inst : int;  (** [ClientProcPage] instructions *)
  mpl : int;  (** [MPL]: max active transactions at the server *)
  disk : Storage.Disk.params;
  net : Net.Network.params;
  control_msg_bytes : int;
      (** bytes of a data-free protocol message (our constant; the paper
          leaves header size implicit) *)
  process_async_during_think : bool;
      (** if [false] (the paper's implementation, see §5.5), a client defers
          asynchronous server messages — callbacks, pushes — that arrive
          during a user think delay until the delay ends *)
  stale_drop_all : bool;
      (** on a no-wait staleness abort, drop the whole read set of the
          failed attempt ([true], prevents optimistic livelock) or only the
          page the server named ([false], for the ablation) *)
  restart_policy : restart_policy;
      (** delay before an aborted transaction restarts *)
  callback_grace : float;
      (** seconds a blocked callback-locking request waits for callbacks to
          land before deadlock detection runs (0 = immediate detection,
          which makes retained-lock cycles spuriously abort; see §6) *)
  callback_retain_writes : bool;
      (** extension of the §2.3 design choice: retain {e write} locks across
          transactions too (the paper retains only read locks).  A client
          that rewrites its own hot pages then needs no lock traffic at
          all; writers elsewhere pay an extra callback. *)
  notify_updates : Proto.notify_mode option;
      (** extension: have the server propagate committed updates (push or
          invalidate) to caching clients under {e any} locking algorithm,
          not just no-wait — the "two-phase locking with notification" the
          paper's §5.1 text alludes to.  [None] (default) leaves
          notification to the algorithm itself. *)
}

(** How long an aborted transaction sits out before restarting. *)
and restart_policy =
  | Adaptive  (** exponential with mean = observed mean response (ACL) *)
  | Fixed of float  (** exponential with the given mean *)
  | Immediate  (** no delay *)

(** The Table 5 configuration: 1-MIPS clients, 2-MIPS server, 2 data disks,
    1 log disk, 100-page caches, 400-page buffer, 2 ms network, MPL 50.
    Override the client count with [~n_clients]. *)
val table5 : ?n_clients:int -> unit -> t

(** Table 5 with a 20-MIPS server (§5.3 fast server experiment). *)
val fast_server : ?n_clients:int -> unit -> t

(** Fast server and an infinitely fast network (§5.4). *)
val fast_server_fast_net : ?n_clients:int -> unit -> t

(** The Table 4 configuration reproducing the ACL centralized-DBMS
    comparison: 200 clients, 1-MIPS server, two 35 ms disks, no log disk,
    free messages, 12-page caches, 1-page buffer.  [mpl] is the varied
    parameter. *)
val table4 : mpl:int -> t

(** Seconds of CPU time for [inst] instructions at [mips]. *)
val cpu_seconds : mips:float -> int -> float

val validate : t -> unit
