(** Analytic cross-check: exact Mean Value Analysis (MVA) of the closed
    queueing network the simulator embodies.

    The simulated system is a classic closed network: [n] clients cycle
    between a think state and visits to shared FCFS stations (server CPU,
    data disks, log disk, network wire).  With per-transaction service
    demands at each station, exact MVA predicts throughput, response time,
    and utilizations — no simulation required.  Where the prediction and
    the simulator agree (low data contention, where product-form
    assumptions hold), both are corroborated; where they diverge, the gap
    measures lock contention and abort waste, which queueing theory cannot
    see.

    {!demands_2pl} estimates demands for inter-transaction-caching 2PL from
    the system and workload parameters. *)

type station = {
  name : string;
  demand : float;  (** seconds of service per transaction *)
}

type inputs = {
  n_clients : int;
  think : float;  (** per-transaction time outside the stations (s) *)
  stations : station list;
}

type prediction = {
  throughput : float;  (** transactions per second *)
  response : float;  (** seconds at the stations (excluding think) *)
  station_utils : (string * float) list;
  bottleneck : string;  (** station with the highest utilization *)
}

(** Exact MVA recursion over [1..n_clients].  Raises [Invalid_argument] on
    an empty station list, non-positive population, or negative demands. *)
val solve : inputs -> prediction

(** Estimate 2PL per-transaction service demands from a configuration.

    [client_hit] is the probability a page access is served from the
    client cache without data transfer (≈ the inter-transaction locality
    for Table 5 caches); [buffer_hit] the server buffer hit ratio for the
    remaining fetches.  Assumes no aborts and no lock waiting — exactly
    the regime where MVA applies. *)
val demands_2pl :
  Sys_params.t ->
  Db.Xact_params.t ->
  client_hit:float ->
  buffer_hit:float ->
  inputs
