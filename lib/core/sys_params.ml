type t = {
  n_clients : int;
  n_client_cpus : int;
  client_mips : float;
  n_server_cpus : int;
  server_mips : float;
  n_data_disks : int;
  n_log_disks : int;
  cache_size : int;
  buffer_size : int;
  page_size : int;
  init_disk_inst : int;
  server_proc_inst : int;
  client_proc_inst : int;
  mpl : int;
  disk : Storage.Disk.params;
  net : Net.Network.params;
  control_msg_bytes : int;
  process_async_during_think : bool;
  stale_drop_all : bool;
  restart_policy : restart_policy;
  callback_grace : float;
  callback_retain_writes : bool;
  notify_updates : Proto.notify_mode option;
}

and restart_policy = Adaptive | Fixed of float | Immediate

let table5 ?(n_clients = 10) () =
  {
    n_clients;
    n_client_cpus = 1;
    client_mips = 1.0;
    n_server_cpus = 1;
    server_mips = 2.0;
    n_data_disks = 2;
    n_log_disks = 1;
    cache_size = 100;
    buffer_size = 400;
    page_size = 4096;
    init_disk_inst = 5_000;
    server_proc_inst = 10_000;
    client_proc_inst = 20_000;
    mpl = 50;
    disk = { Storage.Disk.seek_low = 0.0; seek_high = 0.044; transfer_time = 0.002 };
    net = { Net.Network.net_delay = 0.002; packet_size = 4096; msg_inst = 5_000 };
    control_msg_bytes = 256;
    process_async_during_think = false;
    stale_drop_all = true;
    restart_policy = Adaptive;
    callback_grace = 0.05;
    callback_retain_writes = false;
    notify_updates = None;
  }

let fast_server ?n_clients () = { (table5 ?n_clients ()) with server_mips = 20.0 }

let fast_server_fast_net ?n_clients () =
  let base = fast_server ?n_clients () in
  { base with net = { base.net with Net.Network.net_delay = 0.0 } }

let table4 ~mpl =
  {
    n_clients = 200;
    n_client_cpus = 1;
    client_mips = 1.0;
    n_server_cpus = 1;
    server_mips = 1.0;
    n_data_disks = 2;
    n_log_disks = 0;
    cache_size = 12;
    buffer_size = 1;
    page_size = 4096;
    init_disk_inst = 0;
    server_proc_inst = 15_000;
    client_proc_inst = 0;
    mpl;
    disk = { Storage.Disk.seek_low = 0.035; seek_high = 0.035; transfer_time = 0.0 };
    net = { Net.Network.net_delay = 0.0; packet_size = 4096; msg_inst = 0 };
    control_msg_bytes = 256;
    process_async_during_think = false;
    stale_drop_all = true;
    restart_policy = Adaptive;
    callback_grace = 0.05;
    callback_retain_writes = false;
    notify_updates = None;
  }

let cpu_seconds ~mips inst =
  if inst <= 0 then 0.0 else float_of_int inst /. (mips *. 1e6)

let validate t =
  if t.n_clients <= 0 then invalid_arg "Sys_params: n_clients <= 0";
  if t.n_client_cpus <= 0 || t.n_server_cpus <= 0 then
    invalid_arg "Sys_params: cpu count <= 0";
  if t.client_mips <= 0.0 || t.server_mips <= 0.0 then
    invalid_arg "Sys_params: mips <= 0";
  if t.n_data_disks <= 0 then invalid_arg "Sys_params: n_data_disks <= 0";
  if t.n_log_disks < 0 then invalid_arg "Sys_params: n_log_disks < 0";
  if t.cache_size <= 0 || t.buffer_size <= 0 then
    invalid_arg "Sys_params: cache or buffer size <= 0";
  if t.page_size <= 0 then invalid_arg "Sys_params: page_size <= 0";
  if t.mpl <= 0 then invalid_arg "Sys_params: mpl <= 0"
