type event = Obs.Event.t =
  | Client_send of { client : int; xid : int; what : string }
  | Server_reply of { client : int; xid : int; what : string }
  | Lock_wait of { client : int; page : int; mode : string }
  | Lock_grant of { client : int; page : int; mode : string }
  | Deadlock of { victim_client : int; cycle : int list }
  | Abort of { client : int; xid : int; reason : string }
  | Callback of { holder : int; page : int }
  | Notify of { client : int; page : int; push : bool }
  | Commit of { client : int; xid : int; n_updates : int }
  | Disk_read of { page : int }
  | Msg_dropped of { bytes : int }
  | Msg_delayed of { bytes : int; by : float }
  | Msg_duplicated of { bytes : int; copies : int }
  | Client_crash of { client : int }
  | Client_recover of { client : int; downtime : float }
  | Lock_reclaimed of { client : int; pages : int list }
  | Retransmit of { client : int; xid : int }
  | Server_crash of { killed : int }
  | Server_recover of { downtime : float; recovery : float }
  | Checkpoint of { versions : int }
  | Log_replayed of { records : int; pages : int }

let event_to_string = Obs.Event.to_string
let set_sink = Obs.Recorder.set_sink
let clear_sink = Obs.Recorder.clear_sink
let emit = Obs.Recorder.emit
let active = Obs.Recorder.active
