type event =
  | Client_send of { client : int; xid : int; what : string }
  | Server_reply of { client : int; xid : int; what : string }
  | Lock_wait of { client : int; page : int; mode : string }
  | Lock_grant of { client : int; page : int; mode : string }
  | Deadlock of { victim_client : int; cycle : int list }
  | Abort of { client : int; xid : int; reason : string }
  | Callback of { holder : int; page : int }
  | Notify of { client : int; page : int; push : bool }
  | Commit of { client : int; xid : int; n_updates : int }
  | Disk_read of { page : int }
  | Msg_dropped of { bytes : int }
  | Msg_delayed of { bytes : int; by : float }
  | Client_crash of { client : int }
  | Client_recover of { client : int; downtime : float }
  | Lock_reclaimed of { client : int; pages : int list }
  | Retransmit of { client : int; xid : int }

let event_to_string = function
  | Client_send { client; xid; what } ->
      Printf.sprintf "client %d -> server: %s (xid %d)" client what xid
  | Server_reply { client; xid; what } ->
      Printf.sprintf "server -> client %d: %s (xid %d)" client what xid
  | Lock_wait { client; page; mode } ->
      Printf.sprintf "client %d blocks for %s lock on page %d" client mode page
  | Lock_grant { client; page; mode } ->
      Printf.sprintf "client %d granted %s lock on page %d" client mode page
  | Deadlock { victim_client; cycle } ->
      Printf.sprintf "deadlock [%s]: victim is client %d"
        (String.concat " -> " (List.map string_of_int cycle))
        victim_client
  | Abort { client; xid; reason } ->
      Printf.sprintf "abort client %d xid %d (%s)" client xid reason
  | Callback { holder; page } ->
      Printf.sprintf "callback request to client %d for page %d" holder page
  | Notify { client; page; push } ->
      Printf.sprintf "%s to client %d for page %d"
        (if push then "update push" else "invalidation")
        client page
  | Commit { client; xid; n_updates } ->
      Printf.sprintf "commit client %d xid %d (%d updated pages)" client xid
        n_updates
  | Disk_read { page } -> Printf.sprintf "disk read page %d" page
  | Msg_dropped { bytes } -> Printf.sprintf "message dropped (%d bytes)" bytes
  | Msg_delayed { bytes; by } ->
      Printf.sprintf "message delayed %.4fs (%d bytes)" by bytes
  | Client_crash { client } -> Printf.sprintf "client %d crashed" client
  | Client_recover { client; downtime } ->
      Printf.sprintf "client %d recovered after %.4fs" client downtime
  | Lock_reclaimed { client; pages } ->
      Printf.sprintf "lease expired: reclaimed %d lock(s) of client %d [%s]"
        (List.length pages) client
        (String.concat " " (List.map string_of_int pages))
  | Retransmit { client; xid } ->
      Printf.sprintf "client %d retransmits request (xid %d)" client xid

(* Domain-local so simulations running on pool workers (Sim.Pool) neither
   race on the hook nor leak their events into a sink installed by the
   calling domain. *)
let sink : (float -> event -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_sink f = Domain.DLS.set sink (Some f)
let clear_sink () = Domain.DLS.set sink None

let emit time ev =
  match Domain.DLS.get sink with Some f -> f time ev | None -> ()

let active () = Option.is_some (Domain.DLS.get sink)
