(** A client workstation (paper §3.3.3): transaction generator, cache
    manager, and the algorithm-dependent client transaction manager.

    Each client runs two simulation processes:

    - the {e main} process executes the Figure 3 transaction loop —
      generate a profile, run its read/update steps under the configured
      consistency algorithm, commit, think, repeat — restarting the same
      profile after every abort until it commits;
    - the {e dispatcher} process consumes asynchronous server messages
      (callback requests, update pushes, aborts) so the client can answer
      callbacks even while the main process is blocked on a fetch.

    Protocol state (which cached pages are locked by the current
    transaction, checked by certification, retained under callback locking,
    dirtied in place) lives here; the server holds the authoritative lock
    table. *)

type t

(** [?audit] — when given, every committed transaction appends its
    (page, version) read and write summaries to the history, enabling the
    serializability check of {!Cc.History}.

    [?fault] — an active {!Fault.Plan} arms the recovery machinery:
    request timeouts with capped exponential backoff and idempotent
    retransmission, crash/restart handling (a third process, the crash
    gremlin, schedules crashes off the plan seed), and — under callback
    locking — lease-bounded trust in retained locks.  With the default
    {!Fault.Plan.none} every one of those paths is dormant and behavior
    is bit-identical to a fault-free build.

    [?down_gauge] — a shared counter the client increments while crashed
    and decrements on recovery, so a fleet-wide "clients down" probe is
    O(1) instead of scanning every client per sample.

    [to_server] sends one message with its causal trace context:
    [parent] is the node id of the message whose receipt caused this
    send (-1 when unknown or causal tracing is off) and [retry] the
    retransmission index (0 = first transmission). *)
val create :
  ?audit:Cc.History.t ->
  ?fault:Fault.Plan.t ->
  ?down_gauge:int ref ->
  Sim.Engine.t ->
  id:int ->
  cfg:Sys_params.t ->
  algo:Proto.algorithm ->
  workload:Db.Workload.t ->
  rng:Sim.Rng.t ->
  metrics:Metrics.t ->
  to_server:(parent:int -> retry:int -> Proto.c2s -> unit) ->
  on_commit:(unit -> unit) ->
  t

(** The client CPU endpoint (for charging inbound messages). *)
val port : t -> Proto.port

(** Mailbox the server delivers into: (causal node id, message) pairs,
    the node id being -1 when causal tracing is off. *)
val inbox : t -> (int * Proto.s2c) Sim.Mailbox.t

(** The cache, as the server's notification-directory view. *)
val cache : t -> Storage.Lru_pool.t

(** Spawn the main and dispatcher processes.  Call once. *)
val start : t -> unit

(** {1 Introspection (stats, tests)} *)

val commits : t -> int
val restarts : t -> int

(** Ask the client to crash at its next checkpoint (used by the crash
    gremlin; harmless to call directly in tests). *)
val request_crash : t -> unit

(** Is the client currently down? *)
val crashed : t -> bool

(** (page, version) pairs currently cached — the chaos harness's
    cache-coherence sweep compares them against the server's versions. *)
val cached_versions : t -> (int * int) list
val cpu_utilization : t -> float
val retained_count : t -> int
val reset_stats : t -> unit

(** One-line debug summary of the client's protocol state. *)
val debug_state : t -> string
