(** Assemble and run one complete simulation: a server, [n_clients]
    clients, the shared network, and one consistency algorithm, measured
    over a steady-state window.

    A run executes a warmup of [warmup_commits] committed transactions,
    resets every statistic, measures until another [measured_commits]
    commits (or [max_sim_time] elapses), and reports the paper's metrics:
    mean transaction response time, system throughput, abort counts, cache
    hit ratio, message counts, and resource utilizations. *)

type spec = {
  cfg : Sys_params.t;
  db_params : Db.Db_params.t;
  xact_params : Db.Xact_params.t;
  mix : (float * Db.Xact_params.t) list option;
      (** when set, overrides [xact_params] with a weighted transaction-type
          mix (paper §3.2) *)
  algo : Proto.algorithm;
  n_shards : int;
      (** number of shard servers the page space is partitioned over
          (default 1).  This module runs only unsharded specs; sharded
          specs are executed by [Shard.Sim], which dispatches
          [n_shards <= 1] right back here so single-shard topologies are
          bit-identical to the original simulator. *)
  seed : int;
  warmup_commits : int;
  measured_commits : int;
  max_sim_time : float;  (** hard stop in simulated seconds *)
  fault : Fault.Plan.t;
      (** deterministic fault-injection plan; [Fault.Plan.none] (the
          default) leaves every run bit-identical to the fault-free
          simulator *)
  obs : Obs.Config.t;
      (** observability switches; {!Obs.Config.off} (the default) installs
          no recorder, sampler, or profiling and leaves the run
          bit-identical.  With [series] on, a run that would otherwise
          drain its event queue early instead ends exactly at
          [max_sim_time], because the sampler process keeps the clock
          alive; runs that reach their commit target are unaffected
          ([Engine.stop] fires first). *)
}

(** A convenient spec: Table 5 system, short-batch workload, 300 warmup +
    2000 measured commits, no faults. *)
val default_spec :
  ?seed:int ->
  ?warmup_commits:int ->
  ?measured_commits:int ->
  ?max_sim_time:float ->
  ?fault:Fault.Plan.t ->
  ?obs:Obs.Config.t ->
  cfg:Sys_params.t ->
  xact_params:Db.Xact_params.t ->
  Proto.algorithm ->
  spec

type result = {
  algo : Proto.algorithm;
  n_clients : int;
  mean_response : float;  (** seconds, first attempt begin → commit *)
  response_stddev : float;
  response_p50 : float;
  response_p95 : float;
  throughput : float;  (** commits per second *)
  commits : int;
  aborts : int;
  aborts_deadlock : int;
  aborts_stale : int;
  aborts_cert : int;
  hit_ratio : float;  (** page accesses served with no server message *)
  messages : int;
  packets : int;
  msgs_per_commit : float;
  callbacks_sent : int;
  pushes_sent : int;
  server_cpu_util : float;
  client_cpu_util : float;  (** mean over clients *)
  disk_util : float;  (** mean over data disks *)
  log_disk_util : float;
  net_util : float;
  window : float;  (** measured seconds of simulated time *)
  sim_time : float;  (** total simulated seconds *)
  events : int;
  aborts_lease : int;  (** aborts from lease reclamation of silent clients *)
  retries : int;  (** client request retransmissions *)
  crashes : int;
  recoveries : int;
  lost_xacts : int;  (** crashes that killed an in-flight transaction *)
  reclaimed_locks : int;
  lease_lapses : int;  (** client-side retained-lock lease expirations *)
  msgs_dropped : int;
  msgs_delayed : int;
  msgs_duplicated : int;
  mean_recovery : float;  (** mean crash-to-recovery downtime, seconds *)
  server_crashes : int;
      (** server failures (plans with server faults); like every
          [server_*] availability field below, an aggregate over all
          [n_shards] servers in a sharded topology *)
  server_recoveries : int;
  server_killed_xacts : int;
      (** in-flight transactions killed by server crashes *)
  checkpoints : int;  (** redo-log checkpoints taken *)
  server_downtime : float;
      (** total seconds the server was unavailable (summed over
          replications in {!run_replicated}) *)
  mean_server_recovery : float;
      (** mean log-replay time per recovery, seconds *)
  n_shards : int;  (** topology the run executed (1 here) *)
  prepares : int;  (** 2PC prepare slices force-logged (0 unsharded) *)
  xshard_commits : int;  (** cross-shard transactions committed by 2PC *)
  xshard_aborts : int;  (** cross-shard transactions aborted at 2PC time *)
  outcome_queries : int;
      (** in-doubt participants asking the decider for the outcome *)
  shard_commits : int array;
      (** commits applied per shard, in shard order (a singleton for
          unsharded runs) — reveals hot-shard skew under Zipf access *)
  rep_mean_responses : float array;
      (** each replication's mean response time, in seed order (a
          singleton for a single run) — the raw material for
          {!Obs.Run_stats.mean_ci} replication confidence intervals *)
  rep_throughputs : float array;  (** likewise for throughput *)
  obs : Obs.Run.t option;
      (** observability payload — one {!Obs.Run.rep} per replication, in
          seed order — when [spec.obs] enabled anything; [None] otherwise *)
}

(** Run one simulation to completion.  [?audit] collects every committed
    transaction's read/write version summary for the serializability check
    of {!Cc.History}.  [?inspect] runs after the simulation ends, with the
    server and clients still intact, for end-state invariant sweeps (lock
    table consistency, cache coherence, crash/recovery bookkeeping). *)
val run :
  ?audit:Cc.History.t ->
  ?inspect:(Server.t -> Client.t array -> unit) ->
  spec ->
  result

(** [run_replicated ?jobs spec ~reps] combines [reps] independent seeds
    (seed, seed+1, ...): response-time mean, stddev, and quantiles come
    from the pooled per-commit observations of every replication (via
    {!Sim.Stats.merge} / {!Sim.Stats.Samples.merge}), counts are summed,
    [hit_ratio] and [msgs_per_commit] are weighted by their per-rep
    denominators, and utilizations are averaged.  With [jobs > 1] the
    replications run concurrently on a {!Sim.Pool} of domains; results are
    identical to the sequential run because every replication's randomness
    is derived from its own seed. *)
val run_replicated : ?jobs:int -> spec -> reps:int -> result

val pp_result : Format.formatter -> result -> unit

(** {1 Replication plumbing (for alternative runners)}

    [Shard.Sim] builds its own multi-server assembly but pools
    replications exactly like {!run_replicated}; these expose the pieces
    it reuses so the aggregation arithmetic lives in one place. *)

(** Per-replication measurement state a scalar {!result} cannot
    reconstruct: the response-time accumulator and raw samples (for
    pooled stddev/quantiles) and hit/lookup counts (for count-weighted
    ratios). *)
type rep_stats = {
  rep_response : Sim.Stats.t;
  rep_samples : Sim.Stats.Samples.t;
  rep_lookups : int;
  rep_hits : int;
}

(** {!run} plus the replication state needed by {!aggregate}. *)
val run_with_stats :
  ?audit:Cc.History.t ->
  ?inspect:(Server.t -> Client.t array -> unit) ->
  spec ->
  result * rep_stats

(** Pool a non-empty list of per-seed runs into one {!result}, with the
    {!run_replicated} arithmetic: pooled response moments and quantiles,
    summed counts, denominator-weighted ratios, averaged utilizations,
    per-rep arrays and observability payloads concatenated in list
    order. *)
val aggregate : (result * rep_stats) list -> result
