(** Deterministic page-to-shard directory.

    The database is partitioned by {e contiguous class ranges}: shard [k]
    of [N] owns classes [k*C/N, (k+1)*C/N).  Because an object never
    spans a class boundary (see {!Db.Database}), every object access —
    fetch, certification read, dirty evict, callback — is single-shard by
    construction; only transaction {e commits} can span shards.  The map
    is a pure function of the database shape and [n_shards], so the
    client-side router and every shard server compute identical
    directories with no coordination. *)

type t

val create : Db.Database.t -> n_shards:int -> t
val n_shards : t -> int
val shard_of_page : t -> int -> int

(** Distinct shards covering [pages], ascending. *)
val shards_of_pages : t -> int list -> int list

(** Group [pages] by shard: [(shard, pages-in-original-order)] pairs,
    ascending by shard — deterministic regardless of hash-table layout. *)
val partition_pages : t -> int list -> (int * int list) list
