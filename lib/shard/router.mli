(** Client-side directory router and two-phase-commit coordinator.

    One router fronts each client.  It owns the page->shard directory
    ({!Shard_map}), splits the client's traffic per shard, and — for
    transactions whose commit touches more than one shard — runs
    presumed-abort two-phase commit:

    + [Prepare] fans out one slice (read-set, updates, releases filtered
      by shard) to every participant; each validates, force-logs the
      slice plus a prepare record, and answers with a [Vote].
    + On unanimous yes the commit decision goes to the {e decider}
      (lowest participant shard) {e alone}; its durable commit record is
      the global commit point.
    + Only after the decider acknowledges does the decision fan out to
      the remaining participants; on any no-vote the abort decision fans
      out immediately.
    + The client's [Commit_reply] is delivered only once {e every}
      participant acknowledged — the lock table is keyed by client, so
      the next transaction must not start while an old slice survives
      anywhere.

    Single-shard commits — always, when [n_shards = 1] — bypass all of
    this and take the ordinary one-round commit path.

    Presumed abort: no outcome is remembered for aborted transactions;
    the absence of the decider's durable commit record {e is} the abort.
    Under coordinator-crash fault plans the router can forget an
    in-flight attempt at the decision point ("amnesia"); prepared
    participants then either re-vote on the retransmitted prepare or
    resolve through the shard-to-shard termination protocol
    ([Outcome_query], answered from durable state only). *)

type t

(** [amnesia] is drawn once per 2PC attempt at the decision point;
    [send] delivers one message to a shard (charged to the client's
    CPU), carrying the causal parent node id and retry index for the
    message's trace tag; [now] reads the engine clock (for 2PC
    span/metric emission only — never to make decisions);
    [deliver_client] puts a server-to-client message in the client's
    real inbox, bypassing the network (the router IS the client's
    network endpoint) — its first argument is the causal node id the
    message arrived under (-1 when tracing is off). *)
val create :
  map:Shard_map.t ->
  client_id:int ->
  metrics:Core.Metrics.t ->
  amnesia:(unit -> bool) ->
  send:(int -> parent:int -> retry:int -> Core.Proto.c2s -> unit) ->
  now:(unit -> float) ->
  deliver_client:(int -> Core.Proto.s2c -> unit) ->
  t

(** The client's [to_server]: route one outbound message.  [parent] and
    [retry] are the causal tag fields the client attached; shard-bound
    copies inherit them.  Decisions the router originates later (vote
    collection, redrives) are parented on the last 2PC message it
    consumed. *)
val route : t -> parent:int -> retry:int -> Core.Proto.c2s -> unit

(** Inbound server-to-client traffic from [shard]: votes and decision
    acknowledgements terminate here; everything else is forwarded to the
    client (with per-shard restart epochs folded into one monotone
    virtual epoch).  [ctx] is the delivered copy's causal node id. *)
val on_s2c : t -> shard:int -> ctx:int -> Core.Proto.s2c -> unit

(** Transaction id of the in-flight 2PC attempt, if any (tests). *)
val pending_xid : t -> int option
