module Simulator = Core.Simulator
module Server = Core.Server
module Client = Core.Client
module Metrics = Core.Metrics
module Sys_params = Core.Sys_params
module Proto = Core.Proto
module Comms = Core.Comms
module Trace = Core.Trace

(* The sharded counterpart of [Core.Simulator.run_with_stats]: one engine,
   one network, one metrics hub, one database — and [n_shards] servers,
   each owning its slice of the page space with its own lock table,
   buffer, version table, and WAL, plus one router per client splitting
   traffic and coordinating 2PC.  Replication pooling and the result
   record are shared with the core simulator. *)
let run_with_stats ?audit ?inspect (spec : Simulator.spec) =
  Sys_params.validate spec.cfg;
  Fault.Plan.validate spec.fault;
  let n_shards = spec.n_shards in
  if n_shards < 2 then
    invalid_arg "Shard_sim.run_with_stats: use Core.Simulator for n_shards <= 1";
  let cfg = spec.cfg in
  let eng = Sim.Engine.create () in
  let master = Sim.Rng.create spec.seed in
  let db = Db.Database.create spec.db_params in
  let map = Shard_map.create db ~n_shards in
  let metrics = Metrics.create eng in
  let net = Sim.Rng.split master "network" |> fun rng ->
            Net.Network.create eng ~rng cfg.Sys_params.net in
  if Fault.Plan.active spec.fault then begin
    let inj = Fault.Injector.create spec.fault in
    Net.Network.set_fault_hook net (fun ~bytes ->
        let v = Fault.Injector.message inj in
        if v.Fault.Injector.drop then begin
          Metrics.record_msg_dropped metrics;
          if Trace.active () then
            Trace.emit (Sim.Engine.now eng) (Trace.Msg_dropped { bytes })
        end
        else begin
          if v.Fault.Injector.extra_delay > 0.0 then begin
            Metrics.record_msg_delayed metrics;
            if Trace.active () then
              Trace.emit (Sim.Engine.now eng)
                (Trace.Msg_delayed { bytes; by = v.Fault.Injector.extra_delay })
          end;
          if v.Fault.Injector.copies > 1 then begin
            Metrics.record_msg_duplicated metrics;
            if Trace.active () then
              Trace.emit (Sim.Engine.now eng)
                (Trace.Msg_duplicated
                   { bytes; copies = v.Fault.Injector.copies })
          end
        end;
        {
          Net.Network.drop = v.Fault.Injector.drop;
          extra_delay = v.Fault.Injector.extra_delay;
          copies = v.Fault.Injector.copies;
        })
  end;
  let servers =
    Array.init n_shards (fun k ->
        Server.create ~fault:spec.fault
          ~label:(Printf.sprintf "s%d-" k)
          eng ~cfg ~db ~algo:spec.algo ~net
          ~rng:(Sim.Rng.split master (Printf.sprintf "server-%d" k))
          ~metrics)
  in
  Array.iteri (fun k srv -> Server.set_peers srv ~shard_id:k servers) servers;
  let clients = Array.make cfg.Sys_params.n_clients None in
  let down_gauge = ref 0 in
  let commit_target = spec.warmup_commits + spec.measured_commits in
  let reset_all () =
    Metrics.reset metrics;
    Net.Network.reset_stats net;
    Array.iter Server.reset_stats servers;
    Array.iter (function Some c -> Client.reset_stats c | None -> ()) clients
  in
  let on_commit () =
    let n = Metrics.total_commits metrics in
    if n = spec.warmup_commits then reset_all ()
    else if n >= commit_target then Sim.Engine.stop eng
  in
  (* per-(client, shard) relay inboxes: each shard believes it talks to
     the client directly, but the router sits in between, consuming 2PC
     traffic and forwarding the rest *)
  let relay = Array.make_matrix cfg.Sys_params.n_clients n_shards None in
  (* per-shard routed-message counters, names precomputed once so the
     hot path is a hash lookup + integer add (and nothing at all when no
     registry is installed) *)
  let shard_msg_name =
    Array.init n_shards (fun k ->
        Printf.sprintf "ccsim_shard_msgs_total{shard=\"%d\"}" k)
  in
  for i = 0 to cfg.Sys_params.n_clients - 1 do
    let crng = Sim.Rng.split master (Printf.sprintf "client-%d" i) in
    let workload =
      let rng = Sim.Rng.split crng "workload" in
      match spec.mix with
      | Some mix -> Db.Workload.create_mix db mix ~rng
      | None -> Db.Workload.create db spec.xact_params ~rng
    in
    let client = ref None in
    let send s ~parent ~retry msg =
      let c = Option.get !client in
      if Obs.Metrics.active () then Obs.Metrics.incr_s shard_msg_name.(s) 1;
      let bytes =
        Proto.c2s_bytes ~control:cfg.Sys_params.control_msg_bytes
          ~page_size:cfg.Sys_params.page_size msg
      in
      let tag =
        {
          Obs.Causal.tg_parent = parent;
          tg_xid = Proto.c2s_xid msg;
          tg_owner = Proto.c2s_client msg;
          tg_kind = Proto.c2s_kind msg;
          tg_src = Obs.Causal.Client i;
          tg_dst = Obs.Causal.Shard s;
          tg_retry = retry;
        }
      in
      Comms.send ~tag net ~msg_inst:cfg.Sys_params.net.Net.Network.msg_inst
        ~src:(Client.port c) ~dst:(Server.port servers.(s)) ~bytes
        ~deliver:(fun ctx -> Server.deliver servers.(s) ~ctx msg)
    in
    let amnesia =
      let p = spec.fault.Fault.Plan.coord_crash_prob in
      let rng = Fault.Injector.coord_stream spec.fault i in
      fun () -> p > 0.0 && Sim.Rng.bernoulli rng p
    in
    let router =
      Router.create ~map ~client_id:i ~metrics ~amnesia ~send
        ~now:(fun () -> Sim.Engine.now eng)
        ~deliver_client:(fun ctx msg ->
          Sim.Mailbox.send (Client.inbox (Option.get !client)) (ctx, msg))
    in
    let c =
      Client.create eng ?audit ~fault:spec.fault ~down_gauge ~id:i ~cfg
        ~algo:spec.algo ~workload ~rng:(Sim.Rng.split crng "client") ~metrics
        ~to_server:(Router.route router) ~on_commit
    in
    client := Some c;
    clients.(i) <- Some c;
    for s = 0 to n_shards - 1 do
      let mb = Sim.Mailbox.create eng in
      relay.(i).(s) <- Some mb;
      Sim.Engine.spawn eng
        ~name:(Printf.sprintf "relay-%d-%d" i s)
        (fun () ->
          let rec loop () =
            let ctx, msg = Sim.Mailbox.recv mb in
            Router.on_s2c router ~shard:s ~ctx msg;
            loop ()
          in
          loop ())
    done
  done;
  let client_of i =
    match clients.(i) with Some c -> c | None -> assert false
  in
  for s = 0 to n_shards - 1 do
    let links =
      Array.init cfg.Sys_params.n_clients (fun i ->
          let c = client_of i in
          {
            Server.port = Client.port c;
            inbox = Option.get relay.(i).(s);
            cache_view = Client.cache c;
          })
    in
    Server.register_clients ~hooks:false servers.(s) links
  done;
  (* one residency-hook dispatcher per client pool (a pool has a single
     hook slot): each cached page is indexed on the shard that owns it *)
  if Server.notifies servers.(0) then
    for i = 0 to cfg.Sys_params.n_clients - 1 do
      let pool = Client.cache (client_of i) in
      Storage.Lru_pool.set_residency_hook pool
        ~on_add:(fun page ->
          Server.residency_add servers.(Shard_map.shard_of_page map page) i page)
        ~on_drop:(fun page ->
          Server.residency_drop servers.(Shard_map.shard_of_page map page) i
            page)
    done;
  Array.iteri
    (fun k srv ->
      Server.start ~crash_rng:(Fault.Injector.shard_stream spec.fault k) srv)
    servers;
  Array.iter (function Some c -> Client.start c | None -> ()) clients;
  let ocfg = spec.obs in
  let recorder =
    if ocfg.Obs.Config.trace then
      Some (Obs.Recorder.create ~limit:ocfg.Obs.Config.trace_limit ())
    else None
  in
  let span_buf =
    if ocfg.Obs.Config.spans then
      Some (Obs.Span.create ~limit:ocfg.Obs.Config.span_limit ())
    else None
  in
  let causal_buf =
    if ocfg.Obs.Config.causal then
      Some (Obs.Causal.create ~limit:ocfg.Obs.Config.causal_limit ())
    else None
  in
  let registry =
    if ocfg.Obs.Config.metrics then begin
      let r = Obs.Metrics.create () in
      Obs.Metrics.set_gauge r "ccsim_shards" (float_of_int n_shards);
      Some r
    end
    else None
  in
  if ocfg.Obs.Config.profile then Sim.Engine.enable_profiling eng;
  let all_disks =
    Array.concat (Array.to_list (Array.map Server.data_disks servers))
  in
  let series =
    if not ocfg.Obs.Config.series then None
    else begin
      let interval = ocfg.Obs.Config.sample_interval in
      let rate_of read =
        let last = ref (read ()) in
        fun () ->
          let v = read () in
          let d = v -. !last in
          last := v;
          Float.max 0.0 d
      in
      let cpu_busy =
        rate_of (fun () ->
            Array.fold_left
              (fun a srv ->
                a +. Sim.Facility.busy_time (Server.port srv).Proto.cpu)
              0.0 servers)
      in
      let cpu_capacity =
        Array.fold_left
          (fun a srv ->
            a + Sim.Facility.capacity (Server.port srv).Proto.cpu)
          0 servers
      in
      let disk_busy =
        rate_of (fun () ->
            Array.fold_left
              (fun a d -> a +. Storage.Disk.busy_time d)
              0.0 all_disks)
      in
      let net_busy = rate_of (fun () -> Net.Network.busy_time net) in
      let commit_rate =
        rate_of (fun () -> float_of_int (Metrics.total_commits metrics))
      in
      let abort_rate =
        rate_of (fun () -> float_of_int (Metrics.aborts metrics))
      in
      let sum_over f () =
        Array.fold_left (fun a srv -> a + f srv) 0 servers
      in
      let sources =
        [
          ( "server_cpu_util",
            fun () ->
              Float.min 1.0
                (cpu_busy () /. (interval *. float_of_int cpu_capacity)) );
          ( "disk_util",
            fun () ->
              if Array.length all_disks = 0 then 0.0
              else
                Float.min 1.0
                  (disk_busy ()
                  /. (interval *. float_of_int (Array.length all_disks))) );
          ("net_util", fun () -> Float.min 1.0 (net_busy () /. interval));
          ( "locks_held",
            fun () ->
              float_of_int
                (sum_over
                   (fun srv -> Cc.Lock_table.locks_held (Server.locks srv))
                   ()) );
          ( "lock_waiters",
            fun () ->
              float_of_int
                (sum_over
                   (fun srv -> Cc.Lock_table.waiting_count (Server.locks srv))
                   ()) );
          ( "active_xacts",
            fun () -> float_of_int (sum_over Server.active_count ()) );
          ( "ready_queue",
            fun () -> float_of_int (sum_over Server.ready_queue_length ()) );
          ("commit_rate", fun () -> commit_rate () /. interval);
          ("abort_rate", fun () -> abort_rate () /. interval);
          ("clients_down", fun () -> float_of_int !down_gauge);
        ]
      in
      Some (Obs.Series.sample eng ~interval ~sources)
    end
  in
  let sim_time =
    let run_sim () = Sim.Engine.run eng ~until:spec.max_sim_time () in
    let with_sink save install restore v f =
      match v with
      | None -> f ()
      | Some x ->
          let saved = save () in
          install x;
          Fun.protect ~finally:(fun () -> restore saved) f
    in
    with_sink Obs.Recorder.save Obs.Recorder.install Obs.Recorder.restore
      recorder (fun () ->
        with_sink Obs.Span.save Obs.Span.install Obs.Span.restore span_buf
          (fun () ->
            with_sink Obs.Causal.save Obs.Causal.install Obs.Causal.restore
              causal_buf (fun () ->
                with_sink Obs.Metrics.save Obs.Metrics.install
                  Obs.Metrics.restore registry run_sim)))
  in
  (* Per-kind wire accounting and causal critical-chain shape land in the
     registry after the run: pure counter folds, no engine interaction. *)
  (match registry with
  | Some r ->
      List.iter
        (fun (kind, ks) ->
          let lbl name = Printf.sprintf "%s{kind=\"%s\"}" name kind in
          Obs.Metrics.incr r (lbl "ccsim_net_msgs_total")
            ks.Net.Network.ks_msgs;
          Obs.Metrics.incr r (lbl "ccsim_net_packets_total")
            ks.Net.Network.ks_pkts;
          Obs.Metrics.incr r (lbl "ccsim_net_bytes_total")
            ks.Net.Network.ks_bytes;
          if ks.Net.Network.ks_retx > 0 then
            Obs.Metrics.incr r
              (lbl "ccsim_net_retransmits_total")
              ks.Net.Network.ks_retx;
          if ks.Net.Network.ks_dups > 0 then
            Obs.Metrics.incr r
              (lbl "ccsim_net_duplicates_total")
              ks.Net.Network.ks_dups)
        (Net.Network.kind_stats net);
      (match causal_buf with
      | Some b ->
          let tagged = Array.map (fun e -> (0, e)) (Obs.Causal.entries b) in
          let an = Obs.Causal.analyze ~dropped:(Obs.Causal.dropped b) tagged in
          let saved = Obs.Metrics.save () in
          Obs.Metrics.install r;
          Fun.protect
            ~finally:(fun () -> Obs.Metrics.restore saved)
            (fun () -> Obs.Causal.register_chain_metrics an)
      | None -> ())
  | None -> ());
  (match inspect with
  | Some f -> f servers (Array.map (function Some c -> c | None -> assert false) clients)
  | None -> ());
  let now = sim_time in
  let window = now -. Metrics.measure_start metrics in
  let commits = Metrics.commits metrics in
  let lookups = Metrics.lookups metrics in
  let client_cpu_util_mean =
    let sum = ref 0.0 and n = ref 0 in
    Array.iter
      (function
        | Some c ->
            sum := !sum +. Client.cpu_utilization c;
            incr n
        | None -> ())
      clients;
    if !n = 0 then 0.0 else !sum /. float_of_int !n
  in
  let favg_servers f =
    Array.fold_left (fun a srv -> a +. f srv) 0.0 servers
    /. float_of_int n_shards
  in
  let obs_payload =
    if not (Obs.Config.enabled ocfg) then None
    else begin
      let disk_snap d =
        {
          Obs.Run.fac_name = Storage.Disk.name d;
          fac_capacity = 1;
          fac_utilization = Storage.Disk.utilization d;
          fac_mean_queue = Storage.Disk.mean_queue_length d;
          fac_max_queue = Storage.Disk.max_queue_length d;
          fac_busy_time = Storage.Disk.busy_time d;
          fac_completions = Storage.Disk.accesses d;
        }
      in
      let facilities =
        List.concat_map
          (fun srv ->
            Obs.Run.snapshot_facility (Server.port srv).Proto.cpu
            :: ((Array.to_list (Server.data_disks srv) |> List.map disk_snap)
               @ (match Server.log_disk srv with
                 | Some d -> [ disk_snap d ]
                 | None -> [])))
          (Array.to_list servers)
        @ [
            {
              Obs.Run.fac_name = "network";
              fac_capacity = 1;
              fac_utilization = Net.Network.utilization net;
              fac_mean_queue = Net.Network.mean_queue_length net;
              fac_max_queue = Net.Network.max_queue_length net;
              fac_busy_time = Net.Network.busy_time net;
              fac_completions = Net.Network.packets_sent net;
            };
          ]
      in
      let trace, trace_dropped =
        match recorder with
        | Some r -> (Obs.Recorder.entries r, Obs.Recorder.dropped r)
        | None -> ([||], 0)
      in
      let spans, spans_dropped =
        match span_buf with
        | Some b -> (Obs.Span.entries b, Obs.Span.dropped b)
        | None -> ([||], 0)
      in
      let causal, causal_dropped =
        match causal_buf with
        | Some b -> (Obs.Causal.entries b, Obs.Causal.dropped b)
        | None -> ([||], 0)
      in
      Some
        {
          Obs.Run.reps =
            [
              {
                Obs.Run.rep_seed = spec.seed;
                trace;
                trace_dropped;
                series;
                facilities;
                profile =
                  (if ocfg.Obs.Config.profile then
                     Some (Sim.Engine.profile eng)
                   else None);
                spans;
                spans_dropped;
                causal;
                causal_dropped;
                metrics = registry;
              };
            ];
        }
    end
  in
  let result =
    {
      Simulator.algo = spec.algo;
      n_clients = cfg.Sys_params.n_clients;
      mean_response = Metrics.mean_response metrics;
      response_stddev = Sim.Stats.stddev (Metrics.response_stats metrics);
      response_p50 = Metrics.response_quantile metrics 0.5;
      response_p95 = Metrics.response_quantile metrics 0.95;
      throughput = Metrics.throughput metrics ~now;
      commits;
      aborts = Metrics.aborts metrics;
      aborts_deadlock = Metrics.aborts_by metrics Metrics.Deadlock;
      aborts_stale = Metrics.aborts_by metrics Metrics.Stale_read;
      aborts_cert = Metrics.aborts_by metrics Metrics.Cert_fail;
      hit_ratio =
        (if lookups = 0 then 0.0
         else float_of_int (Metrics.hits metrics) /. float_of_int lookups);
      messages = Net.Network.messages_sent net;
      packets = Net.Network.packets_sent net;
      msgs_per_commit =
        (if commits = 0 then 0.0
         else
           float_of_int (Net.Network.messages_sent net) /. float_of_int commits);
      callbacks_sent = Metrics.callbacks_sent metrics;
      pushes_sent = Metrics.pushes_sent metrics;
      server_cpu_util = favg_servers Server.cpu_utilization;
      client_cpu_util = client_cpu_util_mean;
      disk_util = favg_servers Server.mean_disk_utilization;
      log_disk_util =
        favg_servers (fun srv ->
            match Server.log_disk srv with
            | Some d -> Storage.Disk.utilization d
            | None -> 0.0);
      net_util = Net.Network.utilization net;
      window;
      sim_time;
      events = Sim.Engine.events_executed eng;
      aborts_lease = Metrics.aborts_by metrics Metrics.Lease_reclaim;
      retries = Metrics.retries metrics;
      crashes = Metrics.crashes metrics;
      recoveries = Metrics.recoveries metrics;
      lost_xacts = Metrics.lost_xacts metrics;
      reclaimed_locks = Metrics.reclaimed_locks metrics;
      lease_lapses = Metrics.lease_lapses metrics;
      msgs_dropped = Metrics.msgs_dropped metrics;
      msgs_delayed = Metrics.msgs_delayed metrics;
      msgs_duplicated = Metrics.msgs_duplicated metrics;
      mean_recovery = Metrics.mean_recovery metrics;
      server_crashes = Metrics.server_crashes metrics;
      server_recoveries = Metrics.server_recoveries metrics;
      server_killed_xacts = Metrics.server_killed_xacts metrics;
      checkpoints = Metrics.checkpoints metrics;
      server_downtime = Metrics.server_downtime metrics;
      mean_server_recovery = Metrics.mean_server_recovery metrics;
      n_shards;
      prepares = Metrics.prepares metrics;
      xshard_commits = Metrics.xshard_commits metrics;
      xshard_aborts = Metrics.xshard_aborts metrics;
      outcome_queries = Metrics.outcome_queries metrics;
      shard_commits = Array.map Server.local_commits servers;
      rep_mean_responses = [| Metrics.mean_response metrics |];
      rep_throughputs = [| Metrics.throughput metrics ~now |];
      obs = obs_payload;
    }
  in
  ( result,
    {
      Simulator.rep_response = Metrics.response_stats metrics;
      rep_samples = Metrics.response_samples metrics;
      rep_lookups = Metrics.lookups metrics;
      rep_hits = Metrics.hits metrics;
    } )

let run ?audit ?inspect (spec : Simulator.spec) =
  if spec.n_shards <= 1 then
    Simulator.run ?audit
      ?inspect:
        (Option.map (fun f srv cls -> f [| srv |] cls) inspect)
      spec
  else fst (run_with_stats ?audit ?inspect spec)

let run_replicated ?(jobs = 1) (spec : Simulator.spec) ~reps =
  if spec.n_shards <= 1 then Simulator.run_replicated ~jobs spec ~reps
  else if reps <= 1 then run spec
  else begin
    let specs =
      List.init reps (fun k -> { spec with Simulator.seed = spec.seed + k })
    in
    let runs =
      if jobs > 1 then Sim.Pool.map ~jobs (fun s -> run_with_stats s) specs
      else List.map (fun s -> run_with_stats s) specs
    in
    Simulator.aggregate runs
  end
