module Proto = Core.Proto

(* One two-phase-commit attempt for a cross-shard transaction.

   Phases:

   - [Voting]: prepares are out; collecting votes.
   - [Commit_point_sent]: every vote was yes; the commit decision went to
     the DECIDER ALONE.  Its durable commit record is the global commit
     point, so nothing else may hear "commit" until the decider
     acknowledges — otherwise a participant could apply a commit that
     never became durable anywhere.
   - [Committing]: the commit point is durable; fan the decision out and
     collect acknowledgements.
   - [Aborting]: the global outcome is abort; fan out and collect
     acknowledgements.

   The client's reply is delivered only when EVERY participant has
   acknowledged the decision.  That gate is load-bearing: the lock table
   is keyed by client, so the client must not start its next transaction
   (whose lock traffic would be indistinguishable from the old one's)
   while any shard still holds the old transaction's slice. *)
type phase = Voting | Commit_point_sent | Committing | Aborting

type attempt = {
  a_xid : int;
  a_req : int;
  a_participants : int list; (* ascending shard ids *)
  a_decider : int;
  a_slices : (int * Proto.c2s) list; (* per-participant Prepare *)
  votes : (int, bool) Hashtbl.t;
  mutable stale : int list; (* union of no-voters' stale pages *)
  mutable phase : phase;
  (* shard -> (committed, new_versions slice) once it acknowledged *)
  acks : (int, bool * (int * int) list) Hashtbl.t;
  a_start : float; (* engine clock at [start_2pc], for the in-doubt metric *)
  (* causal node id of the last consumed 2PC message (a Vote or
     Decision_ack recv), initially the parent of the client's commit.
     Decisions fan out parented on it, and the locally-delivered
     Commit_reply carries it, so the client's next send chains to the
     true causal tail of the 2PC exchange.  -1 when tracing is off. *)
  mutable a_last_ctx : int;
  (* observability only: open span ids, -1 when closed or spans are off *)
  mutable sp_prepare : int;
  mutable sp_decide : int;
}

type t = {
  map : Shard_map.t;
  client_id : int;
  metrics : Core.Metrics.t;
  amnesia : unit -> bool;
  send : int -> parent:int -> retry:int -> Proto.c2s -> unit;
  now : unit -> float;
  deliver_client : int -> Proto.s2c -> unit;
  mutable cur_xid : int;
  touched : bool array; (* shards the current transaction has contacted *)
  mutable attempt : attempt option;
  (* Each shard counts its own crashes; the client knows one server.  The
     router maps per-shard epochs onto one monotone virtual epoch, so any
     shard restart triggers the client's (conservative, whole-cache)
     per-protocol reconstruction exactly once. *)
  shard_epochs : int array;
  mutable virt_epoch : int;
}

let create ~map ~client_id ~metrics ~amnesia ~send ~now ~deliver_client =
  let n = Shard_map.n_shards map in
  {
    map;
    client_id;
    metrics;
    amnesia;
    send;
    now;
    deliver_client;
    cur_xid = min_int;
    touched = Array.make n false;
    attempt = None;
    shard_epochs = Array.make n 0;
    virt_epoch = 0;
  }

let pending_xid t = Option.map (fun a -> a.a_xid) t.attempt
let shard_of t page = Shard_map.shard_of_page t.map page

let decision t a shard ~parent ~retry ~commit =
  t.send shard ~parent ~retry
    (Proto.Decision { client = t.client_id; xid = a.a_xid; req = a.a_req; commit })

let contradiction t kind =
  raise
    (Core.Server.Server_invariant
       { protocol = "2pc-router"; client = t.client_id; kind })

(* 2PC phase spans live on the coordinating client's track.  Close-once
   discipline (reset the id field) because [drive_commit]/[drive_abort]
   are re-entrant under retransmission. *)
let close_prepare t a ~ok =
  if a.sp_prepare >= 0 then begin
    Obs.Span.close_span ~time:(t.now ()) ~ok a.sp_prepare;
    a.sp_prepare <- -1
  end

let open_decide t a =
  if a.sp_decide < 0 && Obs.Span.active () then
    a.sp_decide <-
      Obs.Span.open_span ~time:(t.now ())
        ~track:(Obs.Span.Client t.client_id) ~kind:Obs.Span.Decide_2pc
        ~parent:(-1) ~xid:a.a_xid

let close_decide t a ~ok =
  if a.sp_decide >= 0 then begin
    Obs.Span.close_span ~time:(t.now ()) ~ok a.sp_decide;
    a.sp_decide <- -1
  end

let finish t a ~ok =
  (if ok then Core.Metrics.record_xshard_commit t.metrics
   else Core.Metrics.record_xshard_abort t.metrics);
  close_prepare t a ~ok;
  close_decide t a ~ok;
  Obs.Metrics.observe_s "ccsim_2pc_indoubt_seconds" (t.now () -. a.a_start);
  let new_versions =
    if not ok then []
    else
      List.concat_map
        (fun s ->
          match Hashtbl.find_opt a.acks s with
          | Some (_, nv) -> nv
          | None -> [])
        a.a_participants
  in
  t.attempt <- None;
  t.deliver_client a.a_last_ctx
    (Proto.Commit_reply
       {
         xid = a.a_xid;
         req = a.a_req;
         ok;
         new_versions;
         stale_pages = (if ok then [] else List.sort_uniq compare a.stale);
       })

let check_done t a =
  if List.for_all (fun s -> Hashtbl.mem a.acks s) a.a_participants then
    finish t a ~ok:(a.phase = Committing)

(* The commit point is durably recorded: fan the commit out to everyone
   still unacknowledged and wait. *)
let drive_commit t a =
  close_prepare t a ~ok:true;
  open_decide t a;
  a.phase <- Committing;
  List.iter
    (fun s ->
      if not (Hashtbl.mem a.acks s) then
        decision t a s ~parent:a.a_last_ctx ~retry:0 ~commit:true)
    a.a_participants;
  check_done t a

let drive_abort t a =
  close_prepare t a ~ok:false;
  open_decide t a;
  a.phase <- Aborting;
  List.iter
    (fun s ->
      if not (Hashtbl.mem a.acks s) then
        decision t a s ~parent:a.a_last_ctx ~retry:0 ~commit:false)
    a.a_participants;
  check_done t a

(* All votes are in: the decision point.  Under a coordinator-crash plan
   this is where the router can "crash": it forgets the attempt entirely
   (participants stay prepared and lean on the termination protocol); the
   client's retransmission of the same commit restarts 2PC under the same
   xid, and duplicate prepares are answered idempotently. *)
let decide t a ~commit =
  if t.amnesia () then begin
    (* coordinator amnesia: the attempt is forgotten mid-flight, so its
       spans end here, marked failed *)
    close_prepare t a ~ok:false;
    close_decide t a ~ok:false;
    Obs.Metrics.incr_s "ccsim_2pc_amnesia_total" 1;
    t.attempt <- None
  end
  else if commit then begin
    close_prepare t a ~ok:true;
    open_decide t a;
    a.phase <- Commit_point_sent;
    decision t a a.a_decider ~parent:a.a_last_ctx ~retry:0 ~commit:true
  end
  else drive_abort t a

let on_vote t ~ctx ~shard ~xid ~ok ~stale_pages =
  match t.attempt with
  | Some a when a.a_xid = xid -> (
      a.a_last_ctx <- ctx;
      match a.phase with
      | Voting ->
          if not (Hashtbl.mem a.votes shard) then begin
            Hashtbl.replace a.votes shard ok;
            if not ok then begin
              a.stale <- stale_pages @ a.stale;
              decide t a ~commit:false
            end
            else if
              List.for_all (fun s -> Hashtbl.mem a.votes s) a.a_participants
            then decide t a ~commit:true
          end
      | Aborting ->
          (* a late no-vote still contributes its stale pages to the
             client's reply, so the restart drops them *)
          if not ok then a.stale <- stale_pages @ a.stale
      | Commit_point_sent | Committing -> ())
  | Some _ | None -> () (* stray vote for a finished/forgotten attempt *)

let on_ack t ~ctx ~shard ~xid ~committed ~new_versions =
  match t.attempt with
  | Some a when a.a_xid = xid -> (
      a.a_last_ctx <- ctx;
      let record () =
        if not (Hashtbl.mem a.acks shard) then
          Hashtbl.replace a.acks shard (committed, new_versions)
      in
      match a.phase with
      | Voting | Commit_point_sent ->
          record ();
          if committed then
            (* durable-commit evidence (a re-sent prepare answered from the
               log, or the decider applying our decision): the global
               outcome is commit *)
            drive_commit t a
          else if shard = a.a_decider then
            (* the decider's slice is gone with no durable commit record —
               under presumed abort that IS the outcome, even if we had
               already asked it to commit (it presumed abort first) *)
            drive_abort t a
          else if a.phase = Voting then
            (* a participant resolved by presumed abort before we decided:
               the decider cannot have committed (it durably tombstones
               itself before ever answering a query with abort) *)
            drive_abort t a
          else
            (* non-decider presumed abort while our commit decision is at
               the decider: its ack settles the outcome either way *)
            check_done t a
      | Committing ->
          if not committed then
            contradiction t "participant-aborted-committed-transaction";
          record ();
          check_done t a
      | Aborting ->
          if committed then
            contradiction t "participant-committed-aborted-transaction";
          record ();
          check_done t a)
  | Some _ | None -> () (* stray ack for a finished/forgotten attempt *)

(* Client retransmission of the commit: re-drive whatever stage is
   incomplete.  The retransmitted message is byte-identical (same xid,
   same req), so participant-side idempotency does the rest. *)
let redrive t a ~parent ~retry =
  match a.phase with
  | Voting ->
      List.iter
        (fun (s, m) ->
          if not (Hashtbl.mem a.votes s) then t.send s ~parent ~retry m)
        a.a_slices
  | Commit_point_sent -> decision t a a.a_decider ~parent ~retry ~commit:true
  | Committing ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem a.acks s) then
            decision t a s ~parent ~retry ~commit:true)
        a.a_participants
  | Aborting ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem a.acks s) then
            decision t a s ~parent ~retry ~commit:false)
        a.a_participants

let start_2pc t ~parent ~retry ~client ~xid ~req ~read_set ~update_pages
    ~release_pages participants =
  let decider = List.hd participants in
  let slices =
    List.map
      (fun s ->
        let rs = List.filter (fun (p, _) -> shard_of t p = s) read_set in
        let ups = List.filter (fun p -> shard_of t p = s) update_pages in
        let rel = List.filter (fun p -> shard_of t p = s) release_pages in
        ( s,
          Proto.Prepare
            {
              client;
              xid;
              req;
              decider;
              read_set = rs;
              update_pages = ups;
              release_pages = rel;
            } ))
      participants
  in
  let a =
    {
      a_xid = xid;
      a_req = req;
      a_participants = participants;
      a_decider = decider;
      a_slices = slices;
      votes = Hashtbl.create 8;
      stale = [];
      phase = Voting;
      acks = Hashtbl.create 8;
      a_start = t.now ();
      a_last_ctx = parent;
      sp_prepare =
        Obs.Span.open_span ~time:(t.now ())
          ~track:(Obs.Span.Client t.client_id) ~kind:Obs.Span.Prepare_2pc
          ~parent:(-1) ~xid;
      sp_decide = -1;
    }
  in
  t.attempt <- Some a;
  Obs.Metrics.observe_s "ccsim_2pc_fanout"
    (float_of_int (List.length participants));
  List.iter (fun (s, m) -> t.send s ~parent ~retry m) slices

(* First sight of a new transaction id.  A dangling attempt here can only
   be a forgotten/abandoned one whose global outcome was abort (the
   reply gate above means the client never moves on from a committed
   attempt, and client crashes are deferred across the commit
   round-trip): fire best-effort abort decisions at its participants.
   The authoritative cleanup is server-side ([settle_superseded]), which
   is immune to message reordering. *)
let note_xid t ~parent xid =
  if xid <> t.cur_xid then begin
    (match t.attempt with
    | Some a ->
        (match a.phase with
        | Voting ->
            Core.Metrics.record_xshard_abort t.metrics;
            List.iter
              (fun s -> decision t a s ~parent ~retry:0 ~commit:false)
              a.a_participants
        | Aborting ->
            List.iter
              (fun s ->
                if not (Hashtbl.mem a.acks s) then
                  decision t a s ~parent ~retry:0 ~commit:false)
              a.a_participants
        | Commit_point_sent | Committing -> ());
        close_prepare t a ~ok:false;
        close_decide t a ~ok:false;
        t.attempt <- None
    | None -> ());
    t.cur_xid <- xid;
    Array.fill t.touched 0 (Array.length t.touched) false
  end

let touch t s = t.touched.(s) <- true

let handle_commit t ~parent ~retry ~client ~xid ~req ~read_set ~update_pages
    ~release_pages msg =
  match t.attempt with
  | Some a when a.a_xid = xid -> redrive t a ~parent ~retry
  | Some _ | None -> (
      let parts = Array.copy t.touched in
      List.iter (fun (p, _) -> parts.(shard_of t p) <- true) read_set;
      List.iter (fun p -> parts.(shard_of t p) <- true) update_pages;
      List.iter (fun p -> parts.(shard_of t p) <- true) release_pages;
      let participants = ref [] in
      Array.iteri (fun s b -> if b then participants := s :: !participants) parts;
      match List.rev !participants with
      | [] ->
          (* unreachable in practice (a commit is only sent by a client
             that contacted a shard, updated, or released); route it
             somewhere deterministic anyway *)
          touch t 0;
          t.send 0 ~parent ~retry msg
      | [ s ] ->
          (* single-shard: the one-round commit path, untouched *)
          touch t s;
          t.send s ~parent ~retry msg
      | participants ->
          start_2pc t ~parent ~retry ~client ~xid ~req ~read_set ~update_pages
            ~release_pages participants)

let route t ~parent ~retry (msg : Proto.c2s) =
  match msg with
  | Proto.Fetch { xid; pages; _ } | Proto.Cert_read { xid; pages; _ } ->
      note_xid t ~parent xid;
      (* all pages of one object live in one class, hence on one shard *)
      let s = shard_of t (List.hd pages).Proto.page in
      touch t s;
      t.send s ~parent ~retry msg
  | Proto.Dirty_evict { xid; page; _ } ->
      note_xid t ~parent xid;
      let s = shard_of t page in
      touch t s;
      t.send s ~parent ~retry msg
  | Proto.Callback_reply { page; _ } ->
      t.send (shard_of t page) ~parent ~retry msg
  | Proto.Release_retained { client; pages } ->
      List.iter
        (fun (s, ps) ->
          t.send s ~parent ~retry (Proto.Release_retained { client; pages = ps }))
        (Shard_map.partition_pages t.map pages)
  | Proto.Recovered _ ->
      for s = 0 to Shard_map.n_shards t.map - 1 do
        t.send s ~parent ~retry msg
      done
  | Proto.Commit { client; xid; req; read_set; update_pages; release_pages } ->
      note_xid t ~parent xid;
      handle_commit t ~parent ~retry ~client ~xid ~req ~read_set ~update_pages
        ~release_pages msg
  | Proto.Prepare _ | Proto.Decision _ | Proto.Outcome_query _ ->
      (* clients never originate 2PC messages *)
      assert false

let on_s2c t ~shard ~ctx (msg : Proto.s2c) =
  match msg with
  | Proto.Vote { xid; shard = s; ok; stale_pages; _ } ->
      on_vote t ~ctx ~shard:s ~xid ~ok ~stale_pages
  | Proto.Decision_ack { xid; shard = s; committed; new_versions; _ } ->
      on_ack t ~ctx ~shard:s ~xid ~committed ~new_versions
  | Proto.Server_restart { epoch } ->
      if epoch > t.shard_epochs.(shard) then begin
        t.shard_epochs.(shard) <- epoch;
        t.virt_epoch <- t.virt_epoch + 1;
        t.deliver_client ctx (Proto.Server_restart { epoch = t.virt_epoch })
      end
  | Proto.Fetch_reply _ | Proto.Cert_reply _ | Proto.Commit_reply _
  | Proto.Aborted _ | Proto.Callback_request _ | Proto.Update_push _
  | Proto.Invalidate_page _ ->
      t.deliver_client ctx msg
