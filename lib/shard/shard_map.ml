type t = {
  db : Db.Database.t;
  n_shards : int;
  class_shard : int array;
}

let create db ~n_shards =
  if n_shards < 1 then invalid_arg "Shard_map.create: n_shards < 1";
  let n_classes = Db.Database.n_classes db in
  let class_shard = Array.make n_classes 0 in
  (* contiguous class ranges: shard [k] owns classes
     [k*C/N, (k+1)*C/N).  With N > C the trailing shards own nothing. *)
  for k = 0 to n_shards - 1 do
    for cls = k * n_classes / n_shards to ((k + 1) * n_classes / n_shards) - 1
    do
      class_shard.(cls) <- k
    done
  done;
  { db; n_shards; class_shard }

let n_shards t = t.n_shards
let shard_of_page t page = t.class_shard.(Db.Database.class_of_page t.db page)

let shards_of_pages t pages =
  List.sort_uniq compare (List.map (shard_of_page t) pages)

let partition_pages t pages =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let s = shard_of_page t p in
      Hashtbl.replace tbl s
        (p :: Option.value (Hashtbl.find_opt tbl s) ~default:[]))
    pages;
  Hashtbl.fold (fun s ps acc -> (s, List.rev ps) :: acc) tbl []
  |> List.sort compare
