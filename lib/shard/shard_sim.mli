(** Sharded simulation assembly.

    Builds one engine, one network, one metrics hub and one database —
    and [spec.n_shards] servers, each owning its contiguous slice of the
    page space with its own lock table, buffer pool, version table and
    WAL ({!Shard_map}), fronted by one {!Router} per client that splits
    traffic and coordinates presumed-abort two-phase commit.

    Dispatch: [n_shards <= 1] runs through {!Core.Simulator} untouched,
    so single-shard results are bit-identical to the unsharded
    simulator's.  [Core.Simulator.run_with_stats] refuses sharded specs;
    this module is the only entry point for [n_shards > 1]. *)

(** As {!Core.Simulator.run_with_stats}, over an array of shard
    servers.  Raises [Invalid_argument] when [spec.n_shards <= 1] — use
    {!run}, which dispatches. *)
val run_with_stats :
  ?audit:Cc.History.t ->
  ?inspect:(Core.Server.t array -> Core.Client.t array -> unit) ->
  Core.Simulator.spec ->
  Core.Simulator.result * Core.Simulator.rep_stats

(** Single run.  [inspect] receives every shard server (a one-element
    array when dispatching to the unsharded simulator). *)
val run :
  ?audit:Cc.History.t ->
  ?inspect:(Core.Server.t array -> Core.Client.t array -> unit) ->
  Core.Simulator.spec ->
  Core.Simulator.result

(** As {!Core.Simulator.run_replicated}: [reps] runs with seeds
    [seed .. seed+reps-1], optionally across [jobs] processes, folded
    with {!Core.Simulator.aggregate}.  Dispatches [n_shards <= 1] to the
    unsharded pool for bit-identical replicated figures. *)
val run_replicated :
  ?jobs:int -> Core.Simulator.spec -> reps:int -> Core.Simulator.result
