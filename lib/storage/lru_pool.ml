(* Doubly-linked LRU list threaded through a sentinel node, plus a hashtable
   from page id to node.  [sentinel.next] is the MRU end; [sentinel.prev] is
   the LRU end. *)

type node = {
  mutable page : int;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : node;
  mutable next : node;
}

type victim = { page : int; dirty : bool }

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  sentinel : node;
  (* residency hooks: fired whenever a page enters or leaves the pool, so
     an external index (e.g. the server's page -> caching-clients map) can
     track membership without scanning pools *)
  mutable on_add : (int -> unit) option;
  mutable on_drop : (int -> unit) option;
}

let make_sentinel () =
  let rec s = { page = -1; dirty = false; pins = 0; prev = s; next = s } in
  s

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru_pool.create: capacity <= 0";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    sentinel = make_sentinel ();
    on_add = None;
    on_drop = None;
  }

let set_residency_hook t ~on_add ~on_drop =
  t.on_add <- Some on_add;
  t.on_drop <- Some on_drop

let fire_add t page = match t.on_add with Some f -> f page | None -> ()
let fire_drop t page = match t.on_drop with Some f -> f page | None -> ()

let capacity t = t.cap
let size t = Hashtbl.length t.table
let mem t page = Hashtbl.mem t.table page

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

let touch t page =
  match Hashtbl.find_opt t.table page with
  | None -> false
  | Some n ->
      unlink n;
      push_front t n;
      true

let evict_one t =
  (* walk from the LRU end, skipping pinned frames *)
  let rec find n =
    if n == t.sentinel then failwith "Lru_pool: all frames pinned"
    else if n.pins = 0 then n
    else find n.prev
  in
  let v = find t.sentinel.prev in
  unlink v;
  Hashtbl.remove t.table v.page;
  fire_drop t v.page;
  { page = v.page; dirty = v.dirty }

let insert t page ~dirty =
  match Hashtbl.find_opt t.table page with
  | Some n ->
      n.dirty <- n.dirty || dirty;
      unlink n;
      push_front t n;
      None
  | None ->
      let victim = if size t >= t.cap then Some (evict_one t) else None in
      let n =
        {
          page;
          dirty;
          pins = 0;
          prev = t.sentinel;
          next = t.sentinel;
        }
      in
      push_front t n;
      Hashtbl.replace t.table page n;
      fire_add t page;
      victim

let is_dirty t page =
  match Hashtbl.find_opt t.table page with Some n -> n.dirty | None -> false

let set_dirty t page d =
  match Hashtbl.find_opt t.table page with
  | Some n -> n.dirty <- d
  | None -> ()

let remove t page =
  match Hashtbl.find_opt t.table page with
  | None -> false
  | Some n ->
      unlink n;
      Hashtbl.remove t.table page;
      fire_drop t page;
      n.dirty

let pin t page =
  match Hashtbl.find_opt t.table page with
  | Some n -> n.pins <- n.pins + 1
  | None -> ()

let unpin t page =
  match Hashtbl.find_opt t.table page with
  | Some n ->
      if n.pins <= 0 then invalid_arg "Lru_pool.unpin: not pinned";
      n.pins <- n.pins - 1
  | None -> ()

let pin_count t page =
  match Hashtbl.find_opt t.table page with Some n -> n.pins | None -> 0

let unpin_all t = Hashtbl.iter (fun _ n -> n.pins <- 0) t.table

let pages_mru t =
  let rec walk n acc =
    if n == t.sentinel then List.rev acc else walk n.next (n.page :: acc)
  in
  walk t.sentinel.next []

let dirty_pages t =
  Hashtbl.fold
    (fun p (n : node) acc -> if n.dirty then p :: acc else acc)
    t.table []

let clear t =
  (match t.on_drop with
  | None -> ()
  | Some f ->
      (* enumerate before the reset so the hook sees every dropped page *)
      let pages = Hashtbl.fold (fun p _ acc -> p :: acc) t.table [] in
      List.iter f pages);
  Hashtbl.reset t.table;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel
