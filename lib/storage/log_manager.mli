(** Log manager (paper §3.3.4).

    Implements the paper's log-based recovery cost model: commits force the
    transaction's log to a dedicated log disk before the reply is sent
    (sequential write — no seek), and aborts replay the log, paying data-disk
    I/O to undo any updated page that was already forced out of the buffer
    pool.  The manager only models {e costs}; the page images themselves are
    not materialized. *)

type t

(** [create eng ~disk ?updates_per_log_page ()] writes log records to
    [disk].  [updates_per_log_page] (default 8) sets how many page-update
    records fit in one log page. *)
val create : Sim.Engine.t -> disk:Disk.t -> ?updates_per_log_page:int -> unit -> t

(** Log pages needed to record [n_updates] page updates (minimum 1 — the
    commit/abort record itself). *)
val log_pages_for : t -> n_updates:int -> int

(** [force_commit t ~n_updates] blocks for the sequential log write that
    makes a commit durable. *)
val force_commit : t -> n_updates:int -> unit

(** [force_abort t ~n_updates] blocks for the (smaller) abort-record
    write. *)
val force_abort : t -> n_updates:int -> unit

val commits_logged : t -> int
val aborts_logged : t -> int
val log_pages_written : t -> int
val reset_stats : t -> unit
