(** Log manager (paper §3.3.4), upgraded to a typed redo log.

    Implements the paper's log-based recovery cost model: commits force the
    transaction's log to a dedicated log disk before the reply is sent
    (sequential write — no seek), and aborts replay the log, paying data-disk
    I/O to undo any updated page that was already forced out of the buffer
    pool.  On top of the cost model the manager now keeps the typed records
    themselves (begin/update/commit/abort/checkpoint), split into a durable
    prefix (everything up to the last force) and a volatile tail, so a
    simulated server crash can {!crash} the tail and {!replay} the durable
    prefix from the last checkpoint — redoing committed transactions and
    discarding uncommitted ones.  The page images are still not
    materialized; only page {e versions} are logged, which is exactly what
    the version-table consistency checks and the durability audit need.

    Disk charging is unchanged from the pure cost model: a force writes
    [log_pages_for n_updates] sequential pages, so runs that never crash
    the server are bit-identical to the previous implementation. *)

type record =
  | Begin of { xid : int }
  | Update of { xid : int; page : int; version : int }
  | Commit of { xid : int }
  | Abort of { xid : int }
  | Checkpoint of { versions : (int * int) list }
      (** snapshot of the committed page-version map *)
  | Prepare of { xid : int; decider : int; read_pages : int list }
      (** 2PC phase one: the transaction's slice on this shard is durable
          and the shard voted yes; [decider] names the shard holding the
          commit point, [read_pages] the pages whose read locks/pins
          recovery must re-establish while the outcome is in doubt *)

type replay_stats = {
  records_replayed : int;  (** records scanned from the replay start *)
  pages_read : int;  (** log pages read back (the charged disk work) *)
  xacts_redone : int;  (** durable commits reinstalled *)
  xacts_discarded : int;  (** aborted or uncommitted transactions dropped *)
}

type t

(** [create eng ~disk ?updates_per_log_page ()] writes log records to
    [disk].  [updates_per_log_page] (default 8) sets how many page-update
    records fit in one log page. *)
val create : Sim.Engine.t -> disk:Disk.t -> ?updates_per_log_page:int -> unit -> t

(** Log pages needed to record [n_updates] page updates (minimum 1 — the
    commit/abort record itself). *)
val log_pages_for : t -> n_updates:int -> int

(** [log_begin t ~xid] appends a buffered begin record.  Nothing is
    charged and nothing becomes durable until the next force; a crash
    before that loses the record together with the transaction. *)
val log_begin : t -> xid:int -> unit

(** [force_pending t] forces the buffered log tail — one sequential page,
    the group-commit write a reader pays before shipping a page whose
    latest committed version is not yet durable (the WAL read rule).
    A no-op when the log is already durable. *)
val force_pending : t -> unit

(** [append_commit t ~xid ~updates] buffers the transaction's update
    records and its commit record without charging or forcing anything.
    Called at version-bump time — before any suspension point — so that
    whoever forces next (group commit) also makes these records durable:
    a reader that observed the bumped versions and then forced its own
    commit can never survive a crash that loses this writer. *)
val append_commit : t -> xid:int -> updates:(int * int) list -> unit

(** [force_commit ?xid ?updates t ~n_updates] appends the transaction's
    update records and its commit record (when [xid] is given), then
    blocks for the sequential log write that makes the commit durable.
    Without [xid] it degrades to the bare cost model (counter + disk
    charge), which legacy call sites and tests still use. *)
val force_commit :
  ?xid:int -> ?updates:(int * int) list -> t -> n_updates:int -> unit

(** [force_abort ?xid t ~n_updates] appends an abort record (when [xid]
    is given) and blocks for the (smaller) abort-record write. *)
val force_abort : ?xid:int -> t -> n_updates:int -> unit

(** [force_prepare t ~xid ~decider ~read_pages ~updates] appends the
    transaction's update records plus a prepare record and blocks for the
    forced write — 2PC phase one.  The later commit decision re-appends
    the updates with its commit record, so a checkpoint taken between
    prepare and decision never hides them from replay. *)
val force_prepare :
  t ->
  xid:int ->
  decider:int ->
  read_pages:int list ->
  updates:(int * int) list ->
  unit

(** [checkpoint t] forces a snapshot of the committed page-version map,
    computed from the durable log itself (never from the server's
    volatile version table, which may run ahead of the log between a
    version bump and its commit force — the write-ahead rule).  Recovery
    replays from the last checkpoint, so the pages a future {!replay}
    must read drop to zero here.  Returns the snapshot size (pages in the
    committed map). *)
val checkpoint : t -> int

(** Simulated media behavior of a server crash: the volatile log tail —
    records appended since the last force — is lost.  The durable prefix
    is untouched. *)
val crash : t -> unit

(** [replay t ~into] rebuilds the committed page-version map from the
    durable log, starting at the last checkpoint: checkpoint snapshot
    loaded, durable commits redone, aborted and uncommitted transactions
    discarded.  Blocks for the sequential read-back of every log page
    forced since the checkpoint (one positioning seek) — this is the
    charged recovery work.  [into] is cleared/overwritten as needed. *)
val replay : t -> into:(int, int) Hashtbl.t -> replay_stats

(** Durable transaction outcomes [(xid, committed?)] in log order — what
    a recovered server consults to answer a retransmitted commit whose
    reply was lost in the crash. *)
val durable_outcomes : t -> (int * bool) list

(** [Some updates] iff [xid]'s commit record is durable; the updates let
    a recovered server rebuild the lost commit reply verbatim. *)
val durable_commit_updates : t -> xid:int -> (int * int) list option

(** In-doubt transactions: durable prepare record, no durable outcome.
    [(xid, decider, read_pages, updates)] in prepare order.  What a
    recovering shard must re-protect and resolve via the 2PC termination
    protocol. *)
val in_doubt : t -> (int * int * int list * (int * int) list) list

(** Pure full-log replay (no disk charge): the committed page-version
    map as a sorted association list.  Audit-side ground truth. *)
val committed_versions : t -> (int * int) list

(** Every (page, version) update record of a durably committed
    transaction, over the whole durable log, sorted and de-duplicated.
    The durability audit checks that every version a committed
    transaction read is in this set (or 0, the initial version):
    no uncommitted update may ever be visible to a commit. *)
val durable_committed_pairs : t -> (int * int) list

val records_logged : t -> int
val durable_records : t -> int
val commits_logged : t -> int
val aborts_logged : t -> int
val log_pages_written : t -> int
val reset_stats : t -> unit
