type params = { seek_low : float; seek_high : float; transfer_time : float }

let default_params = { seek_low = 0.0; seek_high = 0.044; transfer_time = 0.002 }

type t = {
  rng : Sim.Rng.t;
  prm : params;
  dname : string;
  fac : Sim.Facility.t;
  mutable n_access : int;
  mutable n_pages : int;
}

let create eng ~rng ~name prm =
  if prm.seek_low < 0.0 || prm.seek_high < prm.seek_low then
    invalid_arg "Disk.create: bad seek range";
  if prm.transfer_time < 0.0 then invalid_arg "Disk.create: bad transfer time";
  {
    rng;
    prm;
    dname = name;
    fac = Sim.Facility.create eng ~name ();
    n_access = 0;
    n_pages = 0;
  }

let name t = t.dname

let access t ~seeks ~pages =
  if seeks < 0 || pages < 0 then invalid_arg "Disk.access: negative count";
  let seek_time = ref 0.0 in
  for _ = 1 to seeks do
    seek_time :=
      !seek_time +. Sim.Rng.uniform_float t.rng t.prm.seek_low t.prm.seek_high
  done;
  let service = !seek_time +. (float_of_int pages *. t.prm.transfer_time) in
  t.n_access <- t.n_access + 1;
  t.n_pages <- t.n_pages + pages;
  Sim.Facility.use t.fac service

let accesses t = t.n_access
let pages_transferred t = t.n_pages
let utilization t = Sim.Facility.utilization t.fac
let mean_queue_length t = Sim.Facility.mean_queue_length t.fac
let max_queue_length t = Sim.Facility.max_queue_length t.fac
let busy_time t = Sim.Facility.busy_time t.fac

let reset_stats t =
  t.n_access <- 0;
  t.n_pages <- 0;
  Sim.Facility.reset_stats t.fac
