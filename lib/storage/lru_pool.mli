(** LRU page pool with pin counts and dirty bits.

    The same structure backs the server buffer pool (§3.3.4) and each
    client cache (§3.3.3): a fixed number of page frames, least-recently-
    used replacement, and pinning to keep pages of in-flight operations
    resident.  Pure data structure — the caller performs whatever I/O or
    messaging the returned eviction victim requires. *)

type t

(** An evicted page and whether it was dirty when evicted. *)
type victim = { page : int; dirty : bool }

(** [create ~capacity] is an empty pool of [capacity] frames
    (raises [Invalid_argument] if non-positive). *)
val create : capacity:int -> t

(** [set_residency_hook t ~on_add ~on_drop] registers callbacks fired when
    a page becomes resident ([insert] of a new page) or stops being
    resident ([insert] eviction, [remove], [clear]).  Lets an external
    index mirror the pool's membership without ever scanning it; replaces
    any previously registered hook. *)
val set_residency_hook : t -> on_add:(int -> unit) -> on_drop:(int -> unit) -> unit

val capacity : t -> int
val size : t -> int
val mem : t -> int -> bool

(** [touch t page] moves [page] to most-recently-used; [false] on miss. *)
val touch : t -> int -> bool

(** [insert t page ~dirty] makes [page] resident and most-recently-used.
    If it was already resident its dirty bit is OR-ed with [dirty].  If a
    frame had to be freed, the evicted victim is returned.  Raises
    [Failure] if every frame is pinned (a configuration error: the pool is
    smaller than the working set it must pin). *)
val insert : t -> int -> dirty:bool -> victim option

(** Dirty bit of a resident page ([false] on miss). *)
val is_dirty : t -> int -> bool

val set_dirty : t -> int -> bool -> unit

(** [remove t page] drops the page regardless of pins; no-op on miss.
    Returns whether the page was dirty. *)
val remove : t -> int -> bool

(** Pin / unpin a resident page.  Pinned pages are never evicted.
    No-ops on miss; [unpin] below zero raises. *)
val pin : t -> int -> unit

val unpin : t -> int -> unit
val pin_count : t -> int -> int

(** Unpin every page (end-of-transaction convenience). *)
val unpin_all : t -> unit

(** Resident pages, most recently used first. *)
val pages_mru : t -> int list

(** Resident dirty pages (unordered). *)
val dirty_pages : t -> int list

(** Drop everything (intra-transaction caching invalidates the whole cache
    on transaction boundaries). *)
val clear : t -> unit
