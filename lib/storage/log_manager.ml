type record =
  | Begin of { xid : int }
  | Update of { xid : int; page : int; version : int }
  | Commit of { xid : int }
  | Abort of { xid : int }
  | Checkpoint of { versions : (int * int) list }
  | Prepare of { xid : int; decider : int; read_pages : int list }

type replay_stats = {
  records_replayed : int;
  pages_read : int;
  xacts_redone : int;
  xacts_discarded : int;
}

type t = {
  disk : Disk.t;
  per_page : int;
  mutable commits : int;
  mutable aborts : int;
  mutable pages : int;
  (* the typed log: [recs.(0 .. len-1)] is the in-memory tail,
     [recs.(0 .. durable-1)] is what a crash preserves *)
  mutable recs : record array;
  mutable len : int;
  mutable durable : int;
  (* replay cursor: index of the last durable checkpoint record and the
     count of log pages forced since it (what recovery must read back) *)
  mutable ckpt_index : int;
  mutable pages_since_ckpt : int;
}

let create _eng ~disk ?(updates_per_log_page = 8) () =
  if updates_per_log_page <= 0 then
    invalid_arg "Log_manager.create: updates_per_log_page <= 0";
  {
    disk;
    per_page = updates_per_log_page;
    commits = 0;
    aborts = 0;
    pages = 0;
    recs = Array.make 64 (Begin { xid = 0 });
    len = 0;
    durable = 0;
    ckpt_index = -1;
    pages_since_ckpt = 0;
  }

let append t r =
  if t.len = Array.length t.recs then begin
    let bigger = Array.make (2 * t.len) r in
    Array.blit t.recs 0 bigger 0 t.len;
    t.recs <- bigger
  end;
  t.recs.(t.len) <- r;
  t.len <- t.len + 1

let log_pages_for t ~n_updates =
  if n_updates < 0 then invalid_arg "Log_manager.log_pages_for: negative";
  max 1 ((n_updates + t.per_page - 1) / t.per_page)

let force t ~n_updates =
  let pages = log_pages_for t ~n_updates in
  t.pages <- t.pages + pages;
  t.pages_since_ckpt <- t.pages_since_ckpt + pages;
  t.durable <- t.len;
  (* dedicated disk, sequential append: transfers only, no seek *)
  Disk.access t.disk ~seeks:0 ~pages

let force_pending t = if t.len > t.durable then force t ~n_updates:0

let log_begin t ~xid =
  (* buffered only: a begin record rides out with the next force, and a
     crash before that force loses it (with the transaction it opened) *)
  append t (Begin { xid })

let append_commit t ~xid ~updates =
  (* Buffered, charged nothing: the records become durable with the next
     force — whoever issues it.  Appending at version-bump time (before
     any suspension point) gives group-commit ordering: a reader that
     sees the bumped version and forces its own commit necessarily makes
     this writer's records durable too, so a crash can never lose a
     write that a durably-committed reader observed. *)
  List.iter
    (fun (page, version) -> append t (Update { xid; page; version }))
    updates;
  append t (Commit { xid })

let force_commit ?xid ?(updates = []) t ~n_updates =
  (match xid with
  | Some xid -> append_commit t ~xid ~updates
  | None -> ());
  t.commits <- t.commits + 1;
  force t ~n_updates

let force_abort ?xid t ~n_updates =
  (match xid with Some xid -> append t (Abort { xid }) | None -> ());
  t.aborts <- t.aborts + 1;
  force t ~n_updates

let force_prepare t ~xid ~decider ~read_pages ~updates =
  (* 2PC phase one: the yes-vote must survive a crash, so the update
     records and the prepare record are forced before voting.  The
     decision later re-appends the updates with its commit record
     ([append_commit]), so a replay window opening at a checkpoint taken
     between prepare and decision still finds them. *)
  List.iter
    (fun (page, version) -> append t (Update { xid; page; version }))
    updates;
  append t (Prepare { xid; decider; read_pages });
  force t ~n_updates:(List.length updates)

let crash t =
  (* the volatile log tail (appended but never forced) is lost *)
  t.len <- t.durable;
  if t.ckpt_index >= t.len then t.ckpt_index <- -1

let replay_range t ~from ~into =
  let pending : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  let prepared : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let redone = ref 0 and discarded = ref 0 and scanned = ref 0 in
  for i = from to t.durable - 1 do
    incr scanned;
    match t.recs.(i) with
    | Begin { xid } -> if not (Hashtbl.mem pending xid) then Hashtbl.replace pending xid []
    | Update { xid; page; version } ->
        let prev = try Hashtbl.find pending xid with Not_found -> [] in
        Hashtbl.replace pending xid ((page, version) :: prev)
    | Commit { xid } ->
        let ups = try Hashtbl.find pending xid with Not_found -> [] in
        List.iter
          (fun (page, version) ->
            let cur = try Hashtbl.find into page with Not_found -> 0 in
            if version > cur then Hashtbl.replace into page version)
          ups;
        Hashtbl.remove pending xid;
        Hashtbl.remove prepared xid;
        incr redone
    | Abort { xid } ->
        Hashtbl.remove pending xid;
        Hashtbl.remove prepared xid;
        incr discarded
    | Prepare { xid; _ } -> Hashtbl.replace prepared xid ()
    | Checkpoint { versions } ->
        Hashtbl.reset into;
        List.iter (fun (page, v) -> Hashtbl.replace into page v) versions
  done;
  (* transactions with durable updates but no durable commit record are
     uncommitted at the crash point: discard, never install.  Prepared
     transactions are neither — they stay in doubt ([in_doubt]) until the
     2PC termination protocol resolves them. *)
  Hashtbl.iter
    (fun xid _ -> if not (Hashtbl.mem prepared xid) then incr discarded)
    pending;
  {
    records_replayed = !scanned;
    pages_read = 0;
    xacts_redone = !redone;
    xacts_discarded = !discarded;
  }

let checkpoint t =
  (* Snapshot only what the log proves committed — never the server's
     volatile version table, which may run ahead of the log between a
     version bump and its commit force (write-ahead rule).  The buffered
     tail IS covered: this checkpoint's own force makes it durable, and
     its records sit before the Checkpoint record in the log, so a
     snapshot that skipped them would leave their commits in a blind
     spot no future replay-from-checkpoint could see. *)
  t.durable <- t.len;
  let into = Hashtbl.create 64 in
  let from = if t.ckpt_index >= 0 then t.ckpt_index else 0 in
  ignore (replay_range t ~from ~into);
  let versions =
    Hashtbl.fold (fun p v acc -> (p, v) :: acc) into [] |> List.sort compare
  in
  append t (Checkpoint { versions });
  t.ckpt_index <- t.len - 1;
  let pages = log_pages_for t ~n_updates:(List.length versions) in
  t.pages <- t.pages + pages;
  t.durable <- t.len;
  (* the snapshot resets the replay window: recovery reads from here *)
  t.pages_since_ckpt <- 0;
  Disk.access t.disk ~seeks:0 ~pages;
  List.length versions

let durable_commit_updates t ~xid =
  let ups = ref [] and committed = ref false in
  for i = 0 to t.durable - 1 do
    match t.recs.(i) with
    | Update { xid = x; page; version } when x = xid ->
        ups := (page, version) :: !ups
    | Commit { xid = x } when x = xid -> committed := true
    | _ -> ()
  done;
  (* 2PC logs a transaction's updates twice (at prepare and with the
     commit decision): collapse the duplicates *)
  if !committed then Some (List.sort_uniq compare !ups) else None

let replay t ~into =
  let from = if t.ckpt_index >= 0 then t.ckpt_index else 0 in
  let stats = replay_range t ~from ~into in
  (* sequential read-back of everything forced since the checkpoint; one
     seek to position the head at the replay start *)
  let pages = max 1 t.pages_since_ckpt in
  Disk.access t.disk ~seeks:1 ~pages;
  { stats with pages_read = pages }

let durable_outcomes t =
  let out = ref [] in
  for i = 0 to t.durable - 1 do
    match t.recs.(i) with
    | Commit { xid } -> out := (xid, true) :: !out
    | Abort { xid } -> out := (xid, false) :: !out
    | Begin _ | Update _ | Checkpoint _ | Prepare _ -> ()
  done;
  List.rev !out

let durable_committed_pairs t =
  let pending : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  for i = 0 to t.durable - 1 do
    match t.recs.(i) with
    | Update { xid; page; version } ->
        let prev = try Hashtbl.find pending xid with Not_found -> [] in
        Hashtbl.replace pending xid ((page, version) :: prev)
    | Commit { xid } -> (
        match Hashtbl.find_opt pending xid with
        | Some ups ->
            out := List.rev_append ups !out;
            Hashtbl.remove pending xid
        | None -> ())
    | Abort { xid } -> Hashtbl.remove pending xid
    | Begin _ | Checkpoint _ | Prepare _ -> ()
  done;
  List.sort_uniq compare !out

let in_doubt t =
  (* prepared transactions with no durable outcome, over the whole
     durable prefix (records are never deleted, so scanning from 0 is
     exact regardless of checkpoints) *)
  let updates : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  let open_prep = ref [] in
  for i = 0 to t.durable - 1 do
    match t.recs.(i) with
    | Update { xid; page; version } ->
        let prev = try Hashtbl.find updates xid with Not_found -> [] in
        Hashtbl.replace updates xid ((page, version) :: prev)
    | Prepare { xid; decider; read_pages } ->
        if not (List.exists (fun (x, _, _) -> x = xid) !open_prep) then
          open_prep := (xid, decider, read_pages) :: !open_prep
    | Commit { xid } | Abort { xid } ->
        open_prep := List.filter (fun (x, _, _) -> x <> xid) !open_prep
    | Begin _ | Checkpoint _ -> ()
  done;
  List.rev_map
    (fun (xid, decider, read_pages) ->
      let ups =
        try List.sort_uniq compare (Hashtbl.find updates xid)
        with Not_found -> []
      in
      (xid, decider, read_pages, ups))
    !open_prep

let committed_versions t =
  let into = Hashtbl.create 64 in
  ignore (replay_range t ~from:0 ~into);
  Hashtbl.fold (fun p v acc -> (p, v) :: acc) into []
  |> List.sort compare

let records_logged t = t.len
let durable_records t = t.durable
let commits_logged t = t.commits
let aborts_logged t = t.aborts
let log_pages_written t = t.pages

let reset_stats t =
  t.commits <- 0;
  t.aborts <- 0;
  t.pages <- 0
