type t = {
  disk : Disk.t;
  per_page : int;
  mutable commits : int;
  mutable aborts : int;
  mutable pages : int;
}

let create _eng ~disk ?(updates_per_log_page = 8) () =
  if updates_per_log_page <= 0 then
    invalid_arg "Log_manager.create: updates_per_log_page <= 0";
  { disk; per_page = updates_per_log_page; commits = 0; aborts = 0; pages = 0 }

let log_pages_for t ~n_updates =
  if n_updates < 0 then invalid_arg "Log_manager.log_pages_for: negative";
  max 1 ((n_updates + t.per_page - 1) / t.per_page)

let force t ~n_updates =
  let pages = log_pages_for t ~n_updates in
  t.pages <- t.pages + pages;
  (* dedicated disk, sequential append: transfers only, no seek *)
  Disk.access t.disk ~seeks:0 ~pages

let force_commit t ~n_updates =
  t.commits <- t.commits + 1;
  force t ~n_updates

let force_abort t ~n_updates =
  t.aborts <- t.aborts + 1;
  force t ~n_updates

let commits_logged t = t.commits
let aborts_logged t = t.aborts
let log_pages_written t = t.pages

let reset_stats t =
  t.commits <- 0;
  t.aborts <- 0;
  t.pages <- 0
