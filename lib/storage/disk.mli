(** A server disk (paper §3.3.2).

    Seek time (including rotation) is uniform in [seek_low, seek_high];
    each page then transfers in [transfer_time].  Separating the two lets
    clustered multi-page accesses pay one seek (sequential I/O) and lets
    the log disk write sequentially with no seek at all.  The disk serves
    requests FCFS. *)

type params = {
  seek_low : float;  (** [SeekLow] (s) *)
  seek_high : float;  (** [SeekHigh] (s) *)
  transfer_time : float;  (** [DiskTran]: per-page transfer (s) *)
}

(** Table 5 values: 0–44 ms seek, 2 ms transfer. *)
val default_params : params

type t

val create : Sim.Engine.t -> rng:Sim.Rng.t -> name:string -> params -> t

val name : t -> string

(** [access t ~seeks ~pages] blocks the calling process for one FCFS
    service of [seeks] random seeks plus [pages] page transfers.
    [seeks = 0] models a purely sequential access. *)
val access : t -> seeks:int -> pages:int -> unit

(** Completed accesses. *)
val accesses : t -> int

(** Pages transferred. *)
val pages_transferred : t -> int

val utilization : t -> float
val mean_queue_length : t -> float

(** Longest request queue observed in the window. *)
val max_queue_length : t -> int

(** Cumulative busy seconds in the window (see {!Sim.Facility.busy_time}). *)
val busy_time : t -> float

val reset_stats : t -> unit
