type t = {
  n_classes : int;
  n_pages : int array;
  object_size : int array;
  cluster_factor : float;
}

let uniform ~n_classes ~pages_per_class ?(object_size = 1) ?(cluster_factor = 1.0)
    () =
  {
    n_classes;
    n_pages = Array.make n_classes pages_per_class;
    object_size = Array.make n_classes object_size;
    cluster_factor;
  }

let total_pages t = Array.fold_left ( + ) 0 t.n_pages

let validate t =
  if t.n_classes <= 0 then invalid_arg "Db_params: n_classes <= 0";
  if Array.length t.n_pages <> t.n_classes then
    invalid_arg "Db_params: n_pages length mismatch";
  if Array.length t.object_size <> t.n_classes then
    invalid_arg "Db_params: object_size length mismatch";
  Array.iteri
    (fun i p -> if p <= 0 then invalid_arg (Printf.sprintf "Db_params: class %d empty" i))
    t.n_pages;
  Array.iteri
    (fun i s ->
      if s <= 0 || s > t.n_pages.(i) then
        invalid_arg (Printf.sprintf "Db_params: class %d object size invalid" i))
    t.object_size;
  if t.cluster_factor < 0.0 || t.cluster_factor > 1.0 then
    invalid_arg "Db_params: cluster_factor outside [0,1]"
