(** Transaction-type parameters (paper Table 2).

    A transaction is the Figure 3 loop: [transaction_size] iterations of
    ReadObject, UserDelay(UpdateDelay), UpdateObject, UserDelay(InternalDelay),
    then commit.  UpdateObject updates each atom of the object just read with
    probability [prob_write], so the write set is always a subset of the read
    set.  Inter-transaction reference locality is modeled with the
    [InterXactSet]: each ReadObject picks an object from the set of recently
    read objects with probability [inter_xact_loc]. *)

type t = {
  min_xact_size : int;  (** [MinXactSize]: minimum ReadObject count *)
  max_xact_size : int;  (** [MaxXactSize]: maximum ReadObject count *)
  prob_write : float;  (** [ProbWrite]: per-atom update probability *)
  update_delay : float;
      (** [UpdateDelay]: mean think time between read and update (s) *)
  internal_delay : float;
      (** [InternalDelay]: mean think time per loop iteration (s) *)
  external_delay : float;
      (** [ExternalDelay]: mean think time between transactions (s) *)
  inter_xact_set_size : int;
      (** [InterXactSetSize]: capacity of the recent-objects set *)
  inter_xact_loc : float;
      (** [InterXactLoc]: probability a read comes from the set *)
  class_skew : float;
      (** Zipf exponent over classes for reads outside the InterXactSet:
          class [k] is drawn with probability proportional to
          [1/(k+1)^class_skew].  [0] (the default, and the paper's model)
          is uniform; under sharding a positive skew concentrates traffic
          on the low-numbered classes — i.e. on shard 0 — making it the
          hot-shard access pattern of the shard sweep. *)
}

(** Short batch transactions of the paper's Table 5 (4–12 reads, no think
    time, 1 s external delay, set size 20).  Vary with the [?prob_write] and
    [?inter_xact_loc] arguments. *)
val short_batch : ?prob_write:float -> ?inter_xact_loc:float -> unit -> t

(** Large batch transactions of §5.2 (20–60 reads). *)
val large_batch : ?prob_write:float -> ?inter_xact_loc:float -> unit -> t

(** Interactive transactions of §5.5 (UpdateDelay 5 s, InternalDelay 2 s). *)
val interactive : ?prob_write:float -> ?inter_xact_loc:float -> unit -> t

val validate : t -> unit
