type step = {
  obj : Database.obj;
  read_pages : int list;
  write_pages : int list;
  update_delay : float;
  internal_delay : float;
}

type profile = { steps : step list; external_delay : float }

type t = {
  db : Database.t;
  mix : (float * Xact_params.t) list; (* weights normalized at creation *)
  rng : Sim.Rng.t;
  mutable prm : Xact_params.t; (* parameters of the current transaction *)
  mutable recent : Database.obj list; (* InterXactSet, most recent first *)
  mutable zipf : (float * float array) option; (* cached (skew, class CDF) *)
}

let create_mix db mix ~rng =
  if mix = [] then invalid_arg "Workload.create_mix: empty mix";
  List.iter
    (fun (w, prm) ->
      if w <= 0.0 then invalid_arg "Workload.create_mix: non-positive weight";
      Xact_params.validate prm)
    mix;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 mix in
  let mix = List.map (fun (w, prm) -> (w /. total, prm)) mix in
  { db; mix; rng; prm = snd (List.hd mix); recent = []; zipf = None }

let create db prm ~rng = create_mix db [ (1.0, prm) ] ~rng

let params t = snd (List.hd t.mix)

let pick_type t =
  match t.mix with
  | [ (_, prm) ] -> prm
  | mix ->
      let u = Sim.Rng.float t.rng in
      let rec go acc = function
        | [] -> snd (List.hd mix)
        | (w, prm) :: rest -> if u < acc +. w then prm else go (acc +. w) rest
      in
      go 0.0 mix
let inter_xact_set t = t.recent

(* LRU update: re-reading an object moves it to the front rather than
   duplicating it, so the set holds distinct recent objects. *)
let remember t obj =
  if t.prm.Xact_params.inter_xact_set_size > 0 then begin
    let without =
      List.filter (fun o -> Database.compare_obj o obj <> 0) t.recent
    in
    let trimmed =
      if List.length without >= t.prm.Xact_params.inter_xact_set_size then
        List.filteri
          (fun i _ -> i < t.prm.Xact_params.inter_xact_set_size - 1)
          without
      else without
    in
    t.recent <- obj :: trimmed
  end

(* Zipf(theta) over classes: class [k] with probability proportional to
   [1/(k+1)^theta].  The normalized CDF is cached per skew value; a mix
   alternating between skews just rebuilds a 40-entry array. *)
let zipf_cdf t skew =
  match t.zipf with
  | Some (s, cdf) when s = skew -> cdf
  | _ ->
      let n = Database.n_classes t.db in
      let cdf = Array.make n 0.0 in
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) skew);
        cdf.(k) <- !acc
      done;
      for k = 0 to n - 1 do
        cdf.(k) <- cdf.(k) /. !acc
      done;
      t.zipf <- Some (skew, cdf);
      cdf

let skewed_object t skew =
  let cdf = zipf_cdf t skew in
  let u = Sim.Rng.float t.rng in
  let n = Array.length cdf in
  let rec find k = if k >= n - 1 || u < cdf.(k) then k else find (k + 1) in
  let cls = find 0 in
  let atoms = (Database.params t.db).Db_params.n_pages.(cls) in
  { Database.cls; start = Sim.Rng.int t.rng atoms }

let pick_object t =
  let p = t.prm.Xact_params.inter_xact_loc in
  if t.recent <> [] && Sim.Rng.bernoulli t.rng p then
    List.nth t.recent (Sim.Rng.int t.rng (List.length t.recent))
  else if t.prm.Xact_params.class_skew > 0.0 then
    skewed_object t t.prm.Xact_params.class_skew
  else Database.random_object t.db t.rng

let make_step t =
  let obj = pick_object t in
  remember t obj;
  let read_pages = Database.pages t.db obj in
  let pw = t.prm.Xact_params.prob_write in
  let write_pages =
    if pw <= 0.0 then []
    else List.filter (fun _ -> Sim.Rng.bernoulli t.rng pw) read_pages
  in
  {
    obj;
    read_pages;
    write_pages;
    update_delay = Sim.Rng.exponential t.rng ~mean:t.prm.Xact_params.update_delay;
    internal_delay =
      Sim.Rng.exponential t.rng ~mean:t.prm.Xact_params.internal_delay;
  }

let next t =
  t.prm <- pick_type t;
  let size =
    Sim.Rng.uniform_int t.rng t.prm.Xact_params.min_xact_size
      t.prm.Xact_params.max_xact_size
  in
  let steps = List.init size (fun _ -> make_step t) in
  {
    steps;
    external_delay =
      Sim.Rng.exponential t.rng ~mean:t.prm.Xact_params.external_delay;
  }

let distinct pages =
  List.sort_uniq Int.compare pages

let profile_read_pages p =
  distinct (List.concat_map (fun s -> s.read_pages) p.steps)

let profile_write_pages p =
  distinct (List.concat_map (fun s -> s.write_pages) p.steps)
