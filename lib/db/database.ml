type t = {
  prm : Db_params.t;
  class_base : int array; (* global page id of atom 0 of each class *)
  total : int;
}

type obj = { cls : int; start : int }

let compare_obj a b =
  let c = Int.compare a.cls b.cls in
  if c <> 0 then c else Int.compare a.start b.start

let create prm =
  Db_params.validate prm;
  let class_base = Array.make prm.Db_params.n_classes 0 in
  let acc = ref 0 in
  for i = 0 to prm.Db_params.n_classes - 1 do
    class_base.(i) <- !acc;
    acc := !acc + prm.Db_params.n_pages.(i)
  done;
  { prm; class_base; total = !acc }

let params t = t.prm
let n_pages t = t.total
let n_classes t = t.prm.Db_params.n_classes

let page_id t ~cls ~atom =
  let np = t.prm.Db_params.n_pages.(cls) in
  if atom < 0 || atom >= np then invalid_arg "Database.page_id: atom out of range";
  t.class_base.(cls) + atom

let class_of_page t page =
  if page < 0 || page >= t.total then invalid_arg "Database.class_of_page";
  (* classes are few (<= hundreds); linear scan from the end is fine and
     avoids an index structure *)
  let rec find i =
    if t.class_base.(i) <= page then i else find (i - 1)
  in
  find (n_classes t - 1)

let pages t { cls; start } =
  let np = t.prm.Db_params.n_pages.(cls) in
  let s = t.prm.Db_params.object_size.(cls) in
  List.init s (fun k -> page_id t ~cls ~atom:((start + k) mod np))

let random_object t rng =
  let cls = Sim.Rng.int rng (n_classes t) in
  let start = Sim.Rng.int rng t.prm.Db_params.n_pages.(cls) in
  { cls; start }

let disk_of_page t ~n_disks page =
  if n_disks <= 0 then invalid_arg "Database.disk_of_page: n_disks <= 0";
  class_of_page t page mod n_disks

let seeks_for_pages t rng = function
  | [] -> 0
  | _ :: rest ->
      let cf = t.prm.Db_params.cluster_factor in
      let breaks =
        List.fold_left
          (fun acc _ -> if Sim.Rng.bernoulli rng cf then acc else acc + 1)
          0 rest
      in
      1 + breaks
