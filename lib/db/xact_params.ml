type t = {
  min_xact_size : int;
  max_xact_size : int;
  prob_write : float;
  update_delay : float;
  internal_delay : float;
  external_delay : float;
  inter_xact_set_size : int;
  inter_xact_loc : float;
  class_skew : float;
}

let base ~min_size ~max_size ~update_delay ~internal_delay ~prob_write
    ~inter_xact_loc =
  {
    min_xact_size = min_size;
    max_xact_size = max_size;
    prob_write;
    update_delay;
    internal_delay;
    external_delay = 1.0;
    inter_xact_set_size = 20;
    inter_xact_loc;
    class_skew = 0.0;
  }

let short_batch ?(prob_write = 0.0) ?(inter_xact_loc = 0.05) () =
  base ~min_size:4 ~max_size:12 ~update_delay:0.0 ~internal_delay:0.0
    ~prob_write ~inter_xact_loc

let large_batch ?(prob_write = 0.0) ?(inter_xact_loc = 0.05) () =
  base ~min_size:20 ~max_size:60 ~update_delay:0.0 ~internal_delay:0.0
    ~prob_write ~inter_xact_loc

let interactive ?(prob_write = 0.0) ?(inter_xact_loc = 0.05) () =
  base ~min_size:4 ~max_size:12 ~update_delay:5.0 ~internal_delay:2.0
    ~prob_write ~inter_xact_loc

let validate t =
  if t.min_xact_size <= 0 then invalid_arg "Xact_params: min_xact_size <= 0";
  if t.max_xact_size < t.min_xact_size then
    invalid_arg "Xact_params: max < min xact size";
  if t.prob_write < 0.0 || t.prob_write > 1.0 then
    invalid_arg "Xact_params: prob_write outside [0,1]";
  if t.inter_xact_loc < 0.0 || t.inter_xact_loc > 1.0 then
    invalid_arg "Xact_params: inter_xact_loc outside [0,1]";
  if t.inter_xact_set_size < 0 then
    invalid_arg "Xact_params: inter_xact_set_size < 0";
  if t.update_delay < 0.0 || t.internal_delay < 0.0 || t.external_delay < 0.0
  then invalid_arg "Xact_params: negative delay";
  if t.class_skew < 0.0 then invalid_arg "Xact_params: class_skew < 0"
