(** Database parameters (paper Table 1).

    A database is a set of classes; each class is a sequence of atoms, and
    an atom corresponds to one disk page (paper §3.1).  Objects are [s]
    consecutive atoms starting at a uniformly random atom of their class, so
    objects of the same class may share atoms (subobject sharing). *)

type t = {
  n_classes : int;  (** [NClasses]: number of classes *)
  n_pages : int array;
      (** [NPages.(i)]: atoms (= pages) in class [i]; length [n_classes] *)
  object_size : int array;
      (** [ObjectSize.(i)]: atoms per object of class [i] *)
  cluster_factor : float;
      (** [ClusterFactor]: probability that consecutive atoms of an object
          are stored sequentially on disk *)
}

(** [uniform ~n_classes ~pages_per_class ~object_size ~cluster_factor] builds
    the homogeneous database used throughout the paper. *)
val uniform :
  n_classes:int ->
  pages_per_class:int ->
  ?object_size:int ->
  ?cluster_factor:float ->
  unit ->
  t

(** Total pages across all classes. *)
val total_pages : t -> int

(** Raises [Invalid_argument] if any class is empty, sizes disagree, or
    [cluster_factor] is outside [0, 1]. *)
val validate : t -> unit
