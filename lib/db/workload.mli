(** Per-client workload generator (paper §3.2).

    Produces transaction {e profiles}: the fixed sequence of object reads,
    atom updates, and think times that one transaction instance will execute.
    A profile is generated once and replayed unchanged on every restart of
    an aborted transaction ("it restarts the same transaction again and
    again until it finally commits", §3.3.3).

    Inter-transaction locality: each read draws from the client's
    [InterXactSet] (the most recently read distinct objects, LRU-ordered,
    capacity [inter_xact_set_size]) with probability [inter_xact_loc];
    otherwise a uniform random object.  Objects enter the set when the
    profile is generated, which equals commit-time updating up to one
    transaction of lag because clients run transactions sequentially. *)

type step = {
  obj : Database.obj;  (** the object this iteration reads *)
  read_pages : int list;  (** its pages, in atom order *)
  write_pages : int list;
      (** the atoms UpdateObject dirties (each read page w.p. ProbWrite) *)
  update_delay : float;  (** drawn UserDelay between read and update *)
  internal_delay : float;  (** drawn UserDelay ending the iteration *)
}

type profile = {
  steps : step list;
  external_delay : float;  (** drawn think time after commit *)
}

type t

(** [create db params ~rng] is a fresh generator drawing from [rng]. *)
val create : Database.t -> Xact_params.t -> rng:Sim.Rng.t -> t

(** [create_mix db mix ~rng] draws each transaction's type from the
    weighted [mix] (paper §3.2: "a simulation run can simulate ... a mix
    of transactions belonging to different types").  All types share the
    client's recent-object set; the set size and locality of the chosen
    type apply to each transaction it generates.  Weights must be positive
    and the list non-empty. *)
val create_mix : Database.t -> (float * Xact_params.t) list -> rng:Sim.Rng.t -> t

(** The parameters of the first (or only) transaction type. *)
val params : t -> Xact_params.t

(** Generate the next transaction profile. *)
val next : t -> profile

(** Current contents of the InterXactSet, most recent first (for tests). *)
val inter_xact_set : t -> Database.obj list

(** All distinct pages a profile reads. *)
val profile_read_pages : profile -> int list

(** All distinct pages a profile writes. *)
val profile_write_pages : profile -> int list
