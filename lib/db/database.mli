(** The database: classes of atoms, overlapping objects, page addressing.

    Pages (= atoms) are numbered globally, class after class, so the rest of
    the simulator deals in plain page ids.  An object is identified by its
    class and starting atom (paper §3.1, Figure 2): it covers the starting
    atom and the next [s-1] atoms of the same class, wrapping at the end of
    the class so every object has exactly [s] pages. *)

type t

(** An object: class index plus starting atom offset within the class. *)
type obj = { cls : int; start : int }

val compare_obj : obj -> obj -> int

(** [create params] validates and indexes the database. *)
val create : Db_params.t -> t

val params : t -> Db_params.t

(** Total number of pages. *)
val n_pages : t -> int

val n_classes : t -> int

(** [page_id t ~cls ~atom] is the global page id of [atom] in class [cls]. *)
val page_id : t -> cls:int -> atom:int -> int

(** [class_of_page t page] inverts {!page_id}. *)
val class_of_page : t -> int -> int

(** [pages t obj] lists the global page ids covered by [obj], in atom
    order. *)
val pages : t -> obj -> int list

(** [random_object t rng] draws a uniform class, then a uniform starting
    atom within it. *)
val random_object : t -> Sim.Rng.t -> obj

(** [disk_of_page t ~n_disks page] assigns the page's class round-robin to a
    disk; all pages of a class live on one disk (paper §3.3.2). *)
val disk_of_page : t -> n_disks:int -> int -> int

(** [seeks_for_pages t rng pages] is the number of distinct seek operations
    needed to access [pages] of one object: consecutive atoms are
    sequential on disk with probability [cluster_factor], and each break
    costs another seek.  At least 1 for a non-empty list. *)
val seeks_for_pages : t -> Sim.Rng.t -> int list -> int
