(* Population-scalability sweep: run the same fixed-contention workload at
   growing client populations and report how fast the simulator itself
   ran — engine events per wall-clock second and the event-heap high-water
   mark — rather than any paper metric.  The commit target is fixed per
   cell, and the server's MPL bounds concurrent transactions, so the
   simulated work per cell is roughly constant: any super-linear growth in
   wall-clock is a per-client cost hiding in a hot path (the bug class
   this sweep exists to catch).

   Cells run sequentially and are never cached: each one is timed around
   its own [Simulator.run], so a pool worker co-running another cell can
   not inflate its wall-clock. *)

type cell = {
  sw_clients : int;
  sw_algo : string;
  sw_commits : int;
  sw_events : int;  (* engine events executed, warmup included *)
  sw_wall_s : float;
  sw_heap_hwm : int;  (* event-heap high-water mark *)
}

let events_per_sec c =
  if c.sw_wall_s <= 0.0 then 0.0
  else float_of_int c.sw_events /. c.sw_wall_s

let populations ~quick =
  if quick then [ 500; 1_000; 2_000 ]
  else [ 1_000; 3_000; 10_000; 30_000; 100_000 ]

(* One pessimistic and one optimistic-flavoured protocol: two-phase
   locking drives the lock table's wait queues, callback locking drives
   retained-lock state and callback traffic. *)
let algos = [ Core.Proto.Two_phase Core.Proto.Inter; Core.Proto.Callback ]

let commit_target ~quick = if quick then (50, 150) else (100, 400)

let cell_spec ~quick ~seed ~n_clients algo =
  let warmup_commits, measured_commits = commit_target ~quick in
  let cfg = Core.Sys_params.table5 ~n_clients () in
  let xp =
    Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
  in
  Core.Simulator.default_spec ~seed ~warmup_commits ~measured_commits
    ~obs:(Obs.Config.make ~profile:true ())
    ~cfg ~xact_params:xp algo

let heap_hwm (r : Core.Simulator.result) =
  match r.Core.Simulator.obs with
  | Some { Obs.Run.reps = rep :: _ } -> (
      match rep.Obs.Run.profile with
      | Some p -> p.Sim.Engine.pr_heap_hwm
      | None -> 0)
  | _ -> 0

let run ?(progress = fun _ -> ()) ~quick ~seed () =
  List.concat_map
    (fun n_clients ->
      List.map
        (fun algo ->
          let spec = cell_spec ~quick ~seed ~n_clients algo in
          let t0 = Unix.gettimeofday () in
          let r = Core.Simulator.run spec in
          let wall = Unix.gettimeofday () -. t0 in
          let c =
            {
              sw_clients = n_clients;
              sw_algo = Core.Proto.algorithm_name algo;
              sw_commits = r.Core.Simulator.commits;
              sw_events = r.Core.Simulator.events;
              sw_wall_s = wall;
              sw_heap_hwm = heap_hwm r;
            }
          in
          progress c;
          c)
        algos)
    (populations ~quick)

let print fmt cells =
  Format.fprintf fmt
    "@.== client-sweep: simulator scalability vs client population ==@.";
  Format.fprintf fmt
    "   host-performance benchmark (not a paper figure): fixed commit \
     target per cell,@.   so flat events/s across rows means no per-client \
     cost in the per-event hot paths@.";
  Format.fprintf fmt "   %-8s %-14s %12s %9s %12s %10s %8s@." "clients"
    "algorithm" "events" "wall_s" "events/s" "heap_hwm" "commits";
  List.iter
    (fun c ->
      Format.fprintf fmt "   %-8d %-14s %12d %9.2f %12.0f %10d %8d@."
        c.sw_clients c.sw_algo c.sw_events c.sw_wall_s (events_per_sec c)
        c.sw_heap_hwm c.sw_commits)
    cells

let csv cells =
  "clients,algorithm,events,wall_s,events_per_sec,heap_hwm,commits"
  :: List.map
       (fun c ->
         Printf.sprintf "%d,%s,%d,%.4f,%.1f,%d,%d" c.sw_clients
           (Report.csv_field c.sw_algo)
           c.sw_events c.sw_wall_s (events_per_sec c) c.sw_heap_hwm
           c.sw_commits)
       cells
