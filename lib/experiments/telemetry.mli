(** Benchmark telemetry snapshots — the longitudinal half of the
    observability story.

    [bench --json FILE] serialises one {!snapshot} per harness run:
    per-experiment wall-clock and engine event counts, microbenchmark
    medians with replication confidence intervals, an engine probe
    (events/sec, event-heap high-water mark), and full provenance
    ({!Report.repro_line}: seed, jobs, git describe, OCaml version,
    host).  [ccsim bench-diff old.json new.json] reads two snapshots back
    with {!of_json} and compares them with {!diff}, which is
    noise-aware: microbench deltas whose confidence intervals overlap are
    never regressions, sub-jitter wall-clock cells are ignored, and
    host/compiler mismatches are reported as notes.

    Serialization round-trips through the in-repo JSON parser
    ({!Obs.Export.parse_json}); no external dependency is involved. *)

val schema_version : string

type experiment = {
  e_id : string;
  e_wall_s : float;  (** wall-clock seconds to run + render the experiment *)
  e_sims : int;  (** simulations newly executed (cache misses) *)
  e_events : int;  (** engine events summed over the figure cells *)
}

(** [events / wall_s], 0 when the wall time is not positive. *)
val events_per_sec : events:int -> wall_s:float -> float

type micro = {
  m_name : string;
  m_runs : int;
  m_median_ns : float;
  m_ci_lo_ns : float;
      (** 95 % CI endpoints of the mean run time; both equal the median
          when fewer than two runs were taken *)
  m_ci_hi_ns : float;
}

type probe = {
  p_wall_s : float;
  p_events : int;
  p_heap_hwm : int;  (** event-heap high-water mark of the probe run *)
}

(** One cell of the client-population scalability sweep
    ({!Client_sweep}).  Cells are keyed by (algo, clients) in diffs;
    events/sec falling or heap_hwm rising past the threshold is a
    regression. *)
type sweep_cell = {
  w_clients : int;
  w_algo : string;
  w_events : int;
  w_wall_s : float;
  w_heap_hwm : int;
}

(** One cell of the shard sweep (the [shard-sweep] experiment): simulated
    paper-style figures under 1-16 shard servers with presumed-abort 2PC.
    Deterministic for a given seed, so diffs treat drift as semantic
    change, never noise: throughput past the threshold regresses, and any
    2PC-counter change is surfaced as a note. *)
type shard_cell = {
  h_shards : int;
  h_pattern : string;  (** access pattern label: uniform | zipf-hot *)
  h_throughput : float;  (** committed transactions per simulated second *)
  h_xshard_commits : int;  (** cross-shard 2PC commits *)
  h_prepares : int;  (** prepare slices force-logged *)
}

(** One cell of the commit-latency decomposition: per-protocol quantiles
    of simulated end-to-end commit latency, recorded by the span/metrics
    layer ({!Obs.Metrics}) on a fixed-seed run.  Deterministic like the
    shard cells, so diffs treat drift as semantic change with no noise
    band. *)
type latency_cell = {
  l_algo : string;
  l_shards : int;
  l_p50 : float;  (** simulated seconds *)
  l_p95 : float;
  l_p99 : float;
  l_mean : float;
  l_xacts : int;  (** committed transactions behind the quantiles *)
}

(** One cell of the message-amplification table: network cost of one
    committed transaction under a protocol at a shard count, measured by
    the causal message record ({!Obs.Causal}) on a fixed-seed run.
    Deterministic like the latency cells, so diffs treat drift as
    semantic change (the protocol started sending more messages per
    commit) with no noise band. *)
type causal_cell = {
  z_algo : string;
  z_shards : int;
  z_msgs_per_commit : float;  (** messages sent per committed xact *)
  z_pkts_per_commit : float;
  z_bytes_per_commit : float;
  z_commits : int;  (** committed transactions behind the ratios *)
}

type snapshot = {
  s_schema : string;  (** {!schema_version} *)
  s_repro : string;  (** {!Report.repro_line} verbatim *)
  s_git : string;
  s_ocaml : string;
  s_host : string;
  s_seed : int;
  s_jobs : int;
  s_reps : int;
  s_quick : bool;
  s_experiments : experiment list;
  s_micro : micro list;
  s_sweep : sweep_cell list;
      (** empty when the sweep was not run; the field is additive — old
          snapshots without it still parse *)
  s_shard : shard_cell list;
      (** empty when the shard sweep was not run; additive like
          [s_sweep] *)
  s_latency : latency_cell list;
      (** empty when the latency cells were not run; additive like
          [s_sweep] *)
  s_causal : causal_cell list;
      (** empty when the causal cells were not run; additive like
          [s_sweep] *)
  s_engine : probe option;
}

(** Emit the snapshot as JSON (parses with {!Obs.Export.validate_json};
    floats are [%.17g] so {!of_json} round-trips exactly). *)
val to_json : snapshot -> string

(** Parse a snapshot back.  [Error] on malformed JSON, missing fields, or
    a schema version mismatch. *)
val of_json : string -> (snapshot, string) result

(** {1 Comparison} *)

type finding = {
  f_metric : string;
  f_base : float;
  f_cur : float;
  f_slowdown : float;  (** > 1 means the current snapshot is slower *)
}

type verdict = {
  v_threshold : float;
  v_regressions : finding list;
  v_improvements : finding list;
  v_notes : string list;  (** unmatched entries, host/compiler mismatches *)
}

(** [diff ?threshold ~baseline ~current ()] — a metric regresses when it
    slows past [1 + threshold] (default 0.25) {e and} the change is not
    explainable as noise: microbench CIs must not overlap, and wall-clock
    cells below the jitter floor (50 ms) never regress.  Improvements
    past the mirror-image ratio are reported too. *)
val diff :
  ?threshold:float -> baseline:snapshot -> current:snapshot -> unit -> verdict

(** No regressions? *)
val ok : verdict -> bool

val pp_finding : Format.formatter -> finding -> unit

(** Notes, then improvements, then regressions, then a one-line summary. *)
val pp_verdict : Format.formatter -> verdict -> unit
