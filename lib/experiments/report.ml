open Exp_defs

let metric_name = function
  | Response_time -> "response time (s)"
  | Throughput -> "throughput (commits/s)"

(* Every cell prints its value with a 95 % replication confidence
   half-width: "3.912 ±0.135" at reps >= 2, "3.912 ±n/a" at reps = 1
   (a single replication carries no dispersion information). *)
let cell_string m r =
  Printf.sprintf "%.3f ±%s" (metric_value m r)
    (Obs.Run_stats.half_string (metric_ci m r))

let figure_cis (fig : figure) =
  List.concat_map
    (fun s -> List.map (fun (_, r) -> metric_ci fig.metric r) s.points)
    fig.series

(* Index a series' points by x once.  The row loops below probe every
   (x, series) cell; List.assoc_opt there rescanned the point list per
   cell, quadratic in the axis length.  First binding wins, matching
   List.assoc_opt on the raw list. *)
let points_table s =
  let h = Hashtbl.create (max 8 (List.length s.points)) in
  List.iter
    (fun (x, r) -> if not (Hashtbl.mem h x) then Hashtbl.add h x r)
    s.points;
  h

let series_tables fig = List.map (fun s -> (s, points_table s)) fig.series

let print_figure ?(detail = false) fmt (fig : figure) =
  Format.fprintf fmt "@.== %s: %s ==@." fig.fig_id fig.title;
  Format.fprintf fmt "   metric: %s@." (metric_name fig.metric);
  let labels = List.map (fun s -> s.label) fig.series in
  Format.fprintf fmt "   %-8s" fig.xlabel;
  List.iter (Format.fprintf fmt " %16s") labels;
  Format.fprintf fmt "@.";
  let xs =
    match fig.series with [] -> [] | s :: _ -> List.map fst s.points
  in
  let tables = series_tables fig in
  List.iter
    (fun x ->
      Format.fprintf fmt "   %-8g" x;
      List.iter
        (fun (_, tbl) ->
          match Hashtbl.find_opt tbl x with
          | Some r -> Format.fprintf fmt " %16s" (cell_string fig.metric r)
          | None -> Format.fprintf fmt " %16s" "-")
        tables;
      Format.fprintf fmt "@.")
    xs;
  (match Obs.Run_stats.pooled_rel_half_width (figure_cis fig) with
  | Some rel ->
      Format.fprintf fmt
        "   pooled 95%% CI half-width: ±%.1f%% of the cell means@."
        (100.0 *. rel)
  | None -> ());
  if detail then begin
    Format.fprintf fmt "   -- per-cell detail (aborts | hit ratio | msgs/commit)@.";
    List.iter
      (fun x ->
        Format.fprintf fmt "   %-8g" x;
        List.iter
          (fun (_, tbl) ->
            match Hashtbl.find_opt tbl x with
            | Some r ->
                Format.fprintf fmt " %4d %4.2f %5.1f"
                  r.Core.Simulator.aborts r.Core.Simulator.hit_ratio
                  r.Core.Simulator.msgs_per_commit
            | None -> Format.fprintf fmt " %14s" "-")
          tables;
        Format.fprintf fmt "@.")
      xs
  end

let print_decision_map fmt (m : Suite.decision_map) =
  Format.fprintf fmt
    "@.== fig13: best algorithm by locality and write probability (50 \
     clients) ==@.";
  Format.fprintf fmt "   %-8s" "pw\\loc";
  List.iter (Format.fprintf fmt " %10.2f") m.Suite.localities;
  Format.fprintf fmt "@.";
  List.iteri
    (fun i pw ->
      Format.fprintf fmt "   %-8.2f" pw;
      Array.iter (Format.fprintf fmt " %10s") m.Suite.winners.(i);
      Format.fprintf fmt "@.")
    m.Suite.write_probs

let print_output ?detail fmt = function
  | Suite.Figures figs -> List.iter (print_figure ?detail fmt) figs
  | Suite.Map m -> print_decision_map fmt m

(* RFC-4180 quoting: free-text fields (figure ids, series labels) may
   contain commas or quotes and must not shift the column layout *)
let csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b

let figure_csv (fig : figure) =
  let header =
    "fig_id,metric,x,algorithm,value,ci_lo,ci_hi,aborts,hit_ratio,msgs_per_commit"
  in
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun (x, r) ->
            let ci = metric_ci fig.metric r in
            (* empty ci fields at reps = 1: the interval does not exist,
               and an empty field is more honest than a fake 0-width one *)
            let lo, hi =
              if Obs.Run_stats.available ci then
                ( Printf.sprintf "%.4f" (Obs.Run_stats.ci_lo ci),
                  Printf.sprintf "%.4f" (Obs.Run_stats.ci_hi ci) )
              else ("", "")
            in
            Printf.sprintf "%s,%s,%g,%s,%.4f,%s,%s,%d,%.3f,%.2f"
              (csv_field fig.fig_id)
              (match fig.metric with
              | Response_time -> "response"
              | Throughput -> "throughput")
              x (csv_field s.label)
              (metric_value fig.metric r)
              lo hi r.Core.Simulator.aborts r.Core.Simulator.hit_ratio
              r.Core.Simulator.msgs_per_commit)
          s.points)
      fig.series
  in
  header :: rows

(* One-line provenance header for experiment and benchmark output, so a
   printed figure can be traced back to the exact run that produced it. *)
let git_describe () =
  let tmp = Filename.temp_file "ccsim" ".git" in
  let cmd =
    Printf.sprintf "git describe --always --dirty >%s 2>/dev/null"
      (Filename.quote tmp)
  in
  let out =
    if Sys.command cmd = 0 then (
      let ic = open_in tmp in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      line)
    else ""
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  if out = "" then "unknown" else out

(* Hostname without a unix dependency: the kernel's view first (Linux),
   then the environment, so snapshots from different machines are
   distinguishable. *)
let hostname () =
  let from_proc =
    try
      let ic = open_in "/proc/sys/kernel/hostname" in
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line
    with Sys_error _ -> None
  in
  match from_proc with
  | Some h when h <> "" -> h
  | _ -> (
      match Sys.getenv_opt "HOSTNAME" with
      | Some h when h <> "" -> h
      | _ -> "unknown")

let repro_line ~seed ~jobs =
  Printf.sprintf "# repro: seed=%d jobs=%d git=%s ocaml=%s host=%s" seed jobs
    (git_describe ()) Sys.ocaml_version (hostname ())

let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    id

let write_gnuplot ~dir (fig : figure) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base = sanitize fig.fig_id in
  let dat = Filename.concat dir (base ^ ".dat") in
  let gp = Filename.concat dir (base ^ ".gp") in
  (* two columns per series — value and 95 % CI half-width (0 when the
     interval is unavailable, i.e. reps = 1) — so the script can draw
     error bars *)
  let has_ci =
    List.exists
      (fun s ->
        List.exists
          (fun (_, r) -> Obs.Run_stats.available (metric_ci fig.metric r))
          s.points)
      fig.series
  in
  let oc = open_out dat in
  Printf.fprintf oc "# %s — %s\n# %s" fig.fig_id fig.title fig.xlabel;
  List.iter
    (fun s -> Printf.fprintf oc "\t%S\t%S" s.label (s.label ^ " ±"))
    fig.series;
  output_char oc '\n';
  let xs = match fig.series with [] -> [] | s :: _ -> List.map fst s.points in
  let tables = series_tables fig in
  List.iter
    (fun x ->
      Printf.fprintf oc "%g" x;
      List.iter
        (fun (_, tbl) ->
          match Hashtbl.find_opt tbl x with
          | Some r ->
              let ci = metric_ci fig.metric r in
              let half =
                if Obs.Run_stats.available ci then ci.Obs.Run_stats.ci_half
                else 0.0
              in
              Printf.fprintf oc "\t%.6f\t%.6f"
                (metric_value fig.metric r)
                half
          | None -> output_string oc "\t-\t-")
        tables;
      output_char oc '\n')
    xs;
  close_out oc;
  let oc = open_out gp in
  Printf.fprintf oc
    "set terminal pngcairo size 720,480\nset output %S\nset title %S\n\
     set xlabel %S\nset ylabel %S\nset key top left\nset grid\nplot \\\n"
    (base ^ ".png") fig.title fig.xlabel (metric_name fig.metric);
  List.iteri
    (fun i s ->
      let vcol = 2 + (2 * i) in
      if has_ci then
        Printf.fprintf oc "  %S using 1:%d:%d with yerrorlines title %S%s\n"
          (base ^ ".dat") vcol (vcol + 1) s.label
          (if i = List.length fig.series - 1 then "" else ", \\")
      else
        Printf.fprintf oc "  %S using 1:%d with linespoints title %S%s\n"
          (base ^ ".dat") vcol s.label
          (if i = List.length fig.series - 1 then "" else ", \\"))
    fig.series;
  close_out oc;
  gp
