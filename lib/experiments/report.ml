open Exp_defs

let metric_name = function
  | Response_time -> "response time (s)"
  | Throughput -> "throughput (commits/s)"

let print_figure ?(detail = false) fmt (fig : figure) =
  Format.fprintf fmt "@.== %s: %s ==@." fig.fig_id fig.title;
  Format.fprintf fmt "   metric: %s@." (metric_name fig.metric);
  let labels = List.map (fun s -> s.label) fig.series in
  Format.fprintf fmt "   %-8s" fig.xlabel;
  List.iter (Format.fprintf fmt " %14s") labels;
  Format.fprintf fmt "@.";
  let xs =
    match fig.series with [] -> [] | s :: _ -> List.map fst s.points
  in
  List.iter
    (fun x ->
      Format.fprintf fmt "   %-8g" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some r ->
              Format.fprintf fmt " %14.3f" (metric_value fig.metric r)
          | None -> Format.fprintf fmt " %14s" "-")
        fig.series;
      Format.fprintf fmt "@.")
    xs;
  if detail then begin
    Format.fprintf fmt "   -- per-cell detail (aborts | hit ratio | msgs/commit)@.";
    List.iter
      (fun x ->
        Format.fprintf fmt "   %-8g" x;
        List.iter
          (fun s ->
            match List.assoc_opt x s.points with
            | Some r ->
                Format.fprintf fmt " %4d %4.2f %5.1f"
                  r.Core.Simulator.aborts r.Core.Simulator.hit_ratio
                  r.Core.Simulator.msgs_per_commit
            | None -> Format.fprintf fmt " %14s" "-")
          fig.series;
        Format.fprintf fmt "@.")
      xs
  end

let print_decision_map fmt (m : Suite.decision_map) =
  Format.fprintf fmt
    "@.== fig13: best algorithm by locality and write probability (50 \
     clients) ==@.";
  Format.fprintf fmt "   %-8s" "pw\\loc";
  List.iter (Format.fprintf fmt " %10.2f") m.Suite.localities;
  Format.fprintf fmt "@.";
  List.iteri
    (fun i pw ->
      Format.fprintf fmt "   %-8.2f" pw;
      Array.iter (Format.fprintf fmt " %10s") m.Suite.winners.(i);
      Format.fprintf fmt "@.")
    m.Suite.write_probs

let print_output ?detail fmt = function
  | Suite.Figures figs -> List.iter (print_figure ?detail fmt) figs
  | Suite.Map m -> print_decision_map fmt m

(* RFC-4180 quoting: free-text fields (figure ids, series labels) may
   contain commas or quotes and must not shift the column layout *)
let csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b

let figure_csv (fig : figure) =
  let header = "fig_id,metric,x,algorithm,value,aborts,hit_ratio,msgs_per_commit" in
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun (x, r) ->
            Printf.sprintf "%s,%s,%g,%s,%.4f,%d,%.3f,%.2f"
              (csv_field fig.fig_id)
              (match fig.metric with
              | Response_time -> "response"
              | Throughput -> "throughput")
              x (csv_field s.label)
              (metric_value fig.metric r)
              r.Core.Simulator.aborts r.Core.Simulator.hit_ratio
              r.Core.Simulator.msgs_per_commit)
          s.points)
      fig.series
  in
  header :: rows

(* One-line provenance header for experiment and benchmark output, so a
   printed figure can be traced back to the exact run that produced it. *)
let git_describe () =
  let tmp = Filename.temp_file "ccsim" ".git" in
  let cmd =
    Printf.sprintf "git describe --always --dirty >%s 2>/dev/null"
      (Filename.quote tmp)
  in
  let out =
    if Sys.command cmd = 0 then (
      let ic = open_in tmp in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      line)
    else ""
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  if out = "" then "unknown" else out

let repro_line ~seed ~jobs =
  Printf.sprintf "# repro: seed=%d jobs=%d git=%s" seed jobs (git_describe ())

let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    id

let write_gnuplot ~dir (fig : figure) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base = sanitize fig.fig_id in
  let dat = Filename.concat dir (base ^ ".dat") in
  let gp = Filename.concat dir (base ^ ".gp") in
  let oc = open_out dat in
  Printf.fprintf oc "# %s — %s\n# %s" fig.fig_id fig.title fig.xlabel;
  List.iter (fun s -> Printf.fprintf oc "\t%S" s.label) fig.series;
  output_char oc '\n';
  let xs = match fig.series with [] -> [] | s :: _ -> List.map fst s.points in
  List.iter
    (fun x ->
      Printf.fprintf oc "%g" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some r -> Printf.fprintf oc "\t%.6f" (metric_value fig.metric r)
          | None -> output_string oc "\t-")
        fig.series;
      output_char oc '\n')
    xs;
  close_out oc;
  let oc = open_out gp in
  Printf.fprintf oc
    "set terminal pngcairo size 720,480\nset output %S\nset title %S\n\
     set xlabel %S\nset ylabel %S\nset key top left\nset grid\nplot \\\n"
    (base ^ ".png") fig.title fig.xlabel (metric_name fig.metric);
  List.iteri
    (fun i s ->
      Printf.fprintf oc "  %S using 1:%d with linespoints title %S%s\n"
        (base ^ ".dat") (i + 2) s.label
        (if i = List.length fig.series - 1 then "" else ", \\"))
    fig.series;
  close_out oc;
  gp
