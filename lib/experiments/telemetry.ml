(* Benchmark telemetry snapshots: the JSON the bench harness writes with
   --json, and the comparison behind `ccsim bench-diff`.

   A snapshot records how fast the simulator itself ran — per-experiment
   wall-clock and engine event throughput, microbenchmark medians with
   replication confidence intervals, an engine probe (events/sec and
   event-heap high-water mark) — plus full provenance (Report.repro_line:
   seed, jobs, git, OCaml version, host), so two snapshots can be
   compared across PRs with noise awareness.  Serialization is
   hand-rolled JSON (reusing Obs.Export's escaper and parser): no
   dependency enters the tree, and every emitted snapshot parses with the
   in-repo RFC 8259 validator. *)

let schema_version = "ccsim-bench/1"

type experiment = {
  e_id : string;
  e_wall_s : float;  (* wall-clock seconds to run + render the experiment *)
  e_sims : int;  (* simulations newly executed (cache misses) *)
  e_events : int;  (* engine events summed over the figure cells *)
}

let events_per_sec ~events ~wall_s =
  if wall_s <= 0.0 then 0.0 else float_of_int events /. wall_s

type micro = {
  m_name : string;
  m_runs : int;
  m_median_ns : float;
  m_ci_lo_ns : float;  (* 95 % CI of the mean run time; = median at runs < 2 *)
  m_ci_hi_ns : float;
}

type probe = {
  p_wall_s : float;
  p_events : int;
  p_heap_hwm : int;  (* event-heap high-water mark of the probe run *)
}

(* One cell of the client-population scalability sweep: how fast the
   engine ran (events per wall-clock second) and how much event-heap it
   needed at a given population.  Keyed by (algo, clients) in diffs. *)
type sweep_cell = {
  w_clients : int;
  w_algo : string;
  w_events : int;
  w_wall_s : float;
  w_heap_hwm : int;
}

(* One cell of the shard sweep: paper-style simulated figures under 1-16
   shard servers with 2PC.  They are deterministic — a drift between
   snapshots on the same seed is semantic (protocol behavior changed),
   never measurement noise — so diffs compare them with no noise band. *)
type shard_cell = {
  h_shards : int;
  h_pattern : string;  (* access pattern: uniform | zipf-hot *)
  h_throughput : float;  (* committed transactions per simulated second *)
  h_xshard_commits : int;  (* cross-shard 2PC commits *)
  h_prepares : int;  (* prepare slices force-logged *)
}

(* One cell of the commit-latency decomposition: per-protocol quantiles
   of simulated end-to-end commit latency, measured by the span/metrics
   layer on a fixed-seed run.  Like the shard cells these are
   deterministic, so drift between snapshots is semantic, never noise. *)
type latency_cell = {
  l_algo : string;
  l_shards : int;
  l_p50 : float;  (* simulated seconds *)
  l_p95 : float;
  l_p99 : float;
  l_mean : float;
  l_xacts : int;  (* committed transactions behind the quantiles *)
}

(* One cell of the message-amplification table: how many network
   messages (and packets and payload bytes) one committed transaction
   costs under a protocol at a shard count, measured by the causal
   message record on a fixed-seed run.  Deterministic — diffs compare
   with no noise band; a commit-count change is surfaced as a note. *)
type causal_cell = {
  z_algo : string;
  z_shards : int;
  z_msgs_per_commit : float;  (* messages sent per committed xact *)
  z_pkts_per_commit : float;
  z_bytes_per_commit : float;
  z_commits : int;  (* committed transactions behind the ratios *)
}

type snapshot = {
  s_schema : string;
  s_repro : string;  (* Report.repro_line verbatim — the provenance header *)
  s_git : string;
  s_ocaml : string;
  s_host : string;
  s_seed : int;
  s_jobs : int;
  s_reps : int;
  s_quick : bool;
  s_experiments : experiment list;
  s_micro : micro list;
  s_sweep : sweep_cell list;  (* empty when the sweep was not run *)
  s_shard : shard_cell list;  (* empty when the shard sweep was not run *)
  s_latency : latency_cell list;  (* empty when latency cells were not run *)
  s_causal : causal_cell list;  (* empty when causal cells were not run *)
  s_engine : probe option;
}

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let q s = "\"" ^ Obs.Export.json_escape s ^ "\""
let f v = Printf.sprintf "%.17g" v

let to_json s =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": %s,\n" (q s.s_schema);
  add "  \"repro\": %s,\n" (q s.s_repro);
  add "  \"git\": %s,\n" (q s.s_git);
  add "  \"ocaml\": %s,\n" (q s.s_ocaml);
  add "  \"host\": %s,\n" (q s.s_host);
  add "  \"seed\": %d,\n" s.s_seed;
  add "  \"jobs\": %d,\n" s.s_jobs;
  add "  \"reps\": %d,\n" s.s_reps;
  add "  \"quick\": %b,\n" s.s_quick;
  add "  \"experiments\": [";
  List.iteri
    (fun i e ->
      add "%s\n    {\"id\": %s, \"wall_s\": %s, \"sims\": %d, \"events\": %d, \
           \"events_per_sec\": %s}"
        (if i = 0 then "" else ",")
        (q e.e_id) (f e.e_wall_s) e.e_sims e.e_events
        (f (events_per_sec ~events:e.e_events ~wall_s:e.e_wall_s)))
    s.s_experiments;
  add "%s],\n" (if s.s_experiments = [] then "" else "\n  ");
  add "  \"micro\": [";
  List.iteri
    (fun i m ->
      add "%s\n    {\"name\": %s, \"runs\": %d, \"median_ns\": %s, \
           \"ci_lo_ns\": %s, \"ci_hi_ns\": %s}"
        (if i = 0 then "" else ",")
        (q m.m_name) m.m_runs (f m.m_median_ns) (f m.m_ci_lo_ns)
        (f m.m_ci_hi_ns))
    s.s_micro;
  add "%s],\n" (if s.s_micro = [] then "" else "\n  ");
  add "  \"sweep\": [";
  List.iteri
    (fun i w ->
      add "%s\n    {\"clients\": %d, \"algo\": %s, \"events\": %d, \
           \"wall_s\": %s, \"events_per_sec\": %s, \"heap_hwm\": %d}"
        (if i = 0 then "" else ",")
        w.w_clients (q w.w_algo) w.w_events (f w.w_wall_s)
        (f (events_per_sec ~events:w.w_events ~wall_s:w.w_wall_s))
        w.w_heap_hwm)
    s.s_sweep;
  add "%s],\n" (if s.s_sweep = [] then "" else "\n  ");
  add "  \"shard_sweep\": [";
  List.iteri
    (fun i h ->
      add "%s\n    {\"shards\": %d, \"pattern\": %s, \"throughput\": %s, \
           \"xshard_commits\": %d, \"prepares\": %d}"
        (if i = 0 then "" else ",")
        h.h_shards (q h.h_pattern) (f h.h_throughput) h.h_xshard_commits
        h.h_prepares)
    s.s_shard;
  add "%s],\n" (if s.s_shard = [] then "" else "\n  ");
  add "  \"latency\": [";
  List.iteri
    (fun i l ->
      add "%s\n    {\"algo\": %s, \"shards\": %d, \"p50\": %s, \"p95\": %s, \
           \"p99\": %s, \"mean\": %s, \"xacts\": %d}"
        (if i = 0 then "" else ",")
        (q l.l_algo) l.l_shards (f l.l_p50) (f l.l_p95) (f l.l_p99)
        (f l.l_mean) l.l_xacts)
    s.s_latency;
  add "%s],\n" (if s.s_latency = [] then "" else "\n  ");
  add "  \"causal\": [";
  List.iteri
    (fun i z ->
      add "%s\n    {\"algo\": %s, \"shards\": %d, \"msgs_per_commit\": %s, \
           \"pkts_per_commit\": %s, \"bytes_per_commit\": %s, \"commits\": %d}"
        (if i = 0 then "" else ",")
        (q z.z_algo) z.z_shards (f z.z_msgs_per_commit)
        (f z.z_pkts_per_commit) (f z.z_bytes_per_commit) z.z_commits)
    s.s_causal;
  add "%s],\n" (if s.s_causal = [] then "" else "\n  ");
  (match s.s_engine with
  | None -> add "  \"engine\": null\n"
  | Some p ->
      add
        "  \"engine\": {\"wall_s\": %s, \"events\": %d, \"events_per_sec\": \
         %s, \"heap_hwm\": %d}\n"
        (f p.p_wall_s) p.p_events
        (f (events_per_sec ~events:p.p_events ~wall_s:p.p_wall_s))
        p.p_heap_hwm);
  add "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON reading                                                        *)
(* ------------------------------------------------------------------ *)

exception Shape of string

let get k j =
  match Obs.Export.member k j with
  | Some v -> v
  | None -> raise (Shape (Printf.sprintf "missing field %S" k))

let str = function
  | Obs.Export.Str s -> s
  | _ -> raise (Shape "expected string")

let num = function
  | Obs.Export.Num v -> v
  | _ -> raise (Shape "expected number")

let int j = int_of_float (num j)

let bool = function
  | Obs.Export.Bool v -> v
  | _ -> raise (Shape "expected bool")

let arr = function
  | Obs.Export.Arr l -> l
  | _ -> raise (Shape "expected array")

let of_json text =
  match Obs.Export.parse_json text with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> (
      try
        let schema = str (get "schema" j) in
        if schema <> schema_version then
          raise
            (Shape
               (Printf.sprintf "schema %S, expected %S" schema schema_version));
        Ok
          {
            s_schema = schema;
            s_repro = str (get "repro" j);
            s_git = str (get "git" j);
            s_ocaml = str (get "ocaml" j);
            s_host = str (get "host" j);
            s_seed = int (get "seed" j);
            s_jobs = int (get "jobs" j);
            s_reps = int (get "reps" j);
            s_quick = bool (get "quick" j);
            s_experiments =
              List.map
                (fun e ->
                  {
                    e_id = str (get "id" e);
                    e_wall_s = num (get "wall_s" e);
                    e_sims = int (get "sims" e);
                    e_events = int (get "events" e);
                  })
                (arr (get "experiments" j));
            s_micro =
              List.map
                (fun m ->
                  {
                    m_name = str (get "name" m);
                    m_runs = int (get "runs" m);
                    m_median_ns = num (get "median_ns" m);
                    m_ci_lo_ns = num (get "ci_lo_ns" m);
                    m_ci_hi_ns = num (get "ci_hi_ns" m);
                  })
                (arr (get "micro" j));
            s_sweep =
              (* additive section: absent in snapshots written before the
                 sweep existed, and that must stay parseable *)
              (match Obs.Export.member "sweep" j with
              | None -> []
              | Some a ->
                  List.map
                    (fun w ->
                      {
                        w_clients = int (get "clients" w);
                        w_algo = str (get "algo" w);
                        w_events = int (get "events" w);
                        w_wall_s = num (get "wall_s" w);
                        w_heap_hwm = int (get "heap_hwm" w);
                      })
                    (arr a));
            s_shard =
              (* additive like the sweep: absent in older snapshots *)
              (match Obs.Export.member "shard_sweep" j with
              | None -> []
              | Some a ->
                  List.map
                    (fun h ->
                      {
                        h_shards = int (get "shards" h);
                        h_pattern = str (get "pattern" h);
                        h_throughput = num (get "throughput" h);
                        h_xshard_commits = int (get "xshard_commits" h);
                        h_prepares = int (get "prepares" h);
                      })
                    (arr a));
            s_latency =
              (* additive like the sweeps: absent in older snapshots *)
              (match Obs.Export.member "latency" j with
              | None -> []
              | Some a ->
                  List.map
                    (fun l ->
                      {
                        l_algo = str (get "algo" l);
                        l_shards = int (get "shards" l);
                        l_p50 = num (get "p50" l);
                        l_p95 = num (get "p95" l);
                        l_p99 = num (get "p99" l);
                        l_mean = num (get "mean" l);
                        l_xacts = int (get "xacts" l);
                      })
                    (arr a));
            s_causal =
              (* additive like the sweeps: absent in older snapshots *)
              (match Obs.Export.member "causal" j with
              | None -> []
              | Some a ->
                  List.map
                    (fun z ->
                      {
                        z_algo = str (get "algo" z);
                        z_shards = int (get "shards" z);
                        z_msgs_per_commit = num (get "msgs_per_commit" z);
                        z_pkts_per_commit = num (get "pkts_per_commit" z);
                        z_bytes_per_commit = num (get "bytes_per_commit" z);
                        z_commits = int (get "commits" z);
                      })
                    (arr a));
            s_engine =
              (match get "engine" j with
              | Obs.Export.Null -> None
              | p ->
                  Some
                    {
                      p_wall_s = num (get "wall_s" p);
                      p_events = int (get "events" p);
                      p_heap_hwm = int (get "heap_hwm" p);
                    });
          }
      with Shape msg -> Error ("bad snapshot: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type finding = {
  f_metric : string;
  f_base : float;
  f_cur : float;
  f_slowdown : float;  (* > 1 means the current snapshot is slower *)
}

type verdict = {
  v_threshold : float;
  v_regressions : finding list;
  v_improvements : finding list;
  v_notes : string list;
}

let ok v = v.v_regressions = []

(* Wall-clock measurements below this are timer jitter, not signal. *)
let min_wall_s = 0.05

let overlap (alo, ahi) (blo, bhi) = alo <= bhi && blo <= ahi

(* Index a list by key once so matching baseline entries against current
   ones costs O(n) total instead of O(n.m) rescans.  First entry wins on a
   duplicate key, matching List.find_opt on the unindexed list. *)
let index_by key l =
  let h = Hashtbl.create (max 8 (List.length l)) in
  List.iter (fun x -> if not (Hashtbl.mem h (key x)) then Hashtbl.add h (key x) x) l;
  h

let diff ?(threshold = 0.25) ~baseline ~current () =
  if threshold <= 0.0 then invalid_arg "Telemetry.diff: threshold must be > 0";
  let regressions = ref [] and improvements = ref [] and notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  if baseline.s_host <> current.s_host then
    note
      "snapshots come from different hosts (%s vs %s): wall-clock deltas \
       include machine noise"
      baseline.s_host current.s_host;
  if baseline.s_ocaml <> current.s_ocaml then
    note "OCaml versions differ (%s vs %s)" baseline.s_ocaml current.s_ocaml;
  if baseline.s_quick <> current.s_quick then
    note "depth differs (quick=%b vs quick=%b): not comparable cell by cell"
      baseline.s_quick current.s_quick;
  let classify ~metric ~base ~cur ~slowdown ~noisy =
    if Float.is_nan slowdown then ()
    else if slowdown > 1.0 +. threshold && not noisy then
      regressions :=
        { f_metric = metric; f_base = base; f_cur = cur; f_slowdown = slowdown }
        :: !regressions
    else if slowdown < 1.0 /. (1.0 +. threshold) then
      improvements :=
        { f_metric = metric; f_base = base; f_cur = cur; f_slowdown = slowdown }
        :: !improvements
  in
  (* experiments: match by id; wall-clock, higher = worse *)
  let cur_exp = index_by (fun (c : experiment) -> c.e_id) current.s_experiments in
  let base_exp = index_by (fun (b : experiment) -> b.e_id) baseline.s_experiments in
  List.iter
    (fun (b : experiment) ->
      match Hashtbl.find_opt cur_exp b.e_id with
      | None -> note "experiment %s only in baseline" b.e_id
      | Some c ->
          let noisy = b.e_wall_s < min_wall_s && c.e_wall_s < min_wall_s in
          classify
            ~metric:(Printf.sprintf "experiment %s wall_s" b.e_id)
            ~base:b.e_wall_s ~cur:c.e_wall_s
            ~slowdown:(if b.e_wall_s <= 0.0 then Float.nan
                       else c.e_wall_s /. b.e_wall_s)
            ~noisy)
    baseline.s_experiments;
  List.iter
    (fun (c : experiment) ->
      if not (Hashtbl.mem base_exp c.e_id) then
        note "experiment %s only in current snapshot" c.e_id)
    current.s_experiments;
  (* microbenches: match by name; a regression needs both the medians to
     move past the threshold AND the replication CIs to not overlap —
     overlapping intervals mean the difference is within measurement
     noise *)
  let cur_micro = index_by (fun (c : micro) -> c.m_name) current.s_micro in
  let base_micro = index_by (fun (b : micro) -> b.m_name) baseline.s_micro in
  List.iter
    (fun (b : micro) ->
      match Hashtbl.find_opt cur_micro b.m_name with
      | None -> note "microbench %S only in baseline" b.m_name
      | Some c ->
          let noisy =
            overlap (b.m_ci_lo_ns, b.m_ci_hi_ns) (c.m_ci_lo_ns, c.m_ci_hi_ns)
          in
          classify
            ~metric:(Printf.sprintf "micro %S median_ns" b.m_name)
            ~base:b.m_median_ns ~cur:c.m_median_ns
            ~slowdown:(if b.m_median_ns <= 0.0 then Float.nan
                       else c.m_median_ns /. b.m_median_ns)
            ~noisy)
    baseline.s_micro;
  List.iter
    (fun (c : micro) ->
      if not (Hashtbl.mem base_micro c.m_name) then
        note "microbench %S only in current snapshot" c.m_name)
    current.s_micro;
  (* sweep cells: match by (algo, clients); events/sec, lower = worse;
     heap high-water, higher = worse.  The heap mark is deterministic, so
     it gets no noise band. *)
  let sweep_key (w : sweep_cell) = Printf.sprintf "%s@%d" w.w_algo w.w_clients in
  let cur_sweep = index_by sweep_key current.s_sweep in
  let base_sweep = index_by sweep_key baseline.s_sweep in
  List.iter
    (fun (b : sweep_cell) ->
      match Hashtbl.find_opt cur_sweep (sweep_key b) with
      | None -> note "sweep cell %s only in baseline" (sweep_key b)
      | Some c ->
          let b_eps = events_per_sec ~events:b.w_events ~wall_s:b.w_wall_s in
          let c_eps = events_per_sec ~events:c.w_events ~wall_s:c.w_wall_s in
          let noisy = b.w_wall_s < min_wall_s && c.w_wall_s < min_wall_s in
          classify
            ~metric:(Printf.sprintf "sweep %s events_per_sec" (sweep_key b))
            ~base:b_eps ~cur:c_eps
            ~slowdown:(if c_eps <= 0.0 then Float.nan else b_eps /. c_eps)
            ~noisy;
          classify
            ~metric:(Printf.sprintf "sweep %s heap_hwm" (sweep_key b))
            ~base:(float_of_int b.w_heap_hwm)
            ~cur:(float_of_int c.w_heap_hwm)
            ~slowdown:
              (if b.w_heap_hwm <= 0 then Float.nan
               else float_of_int c.w_heap_hwm /. float_of_int b.w_heap_hwm)
            ~noisy:false)
    baseline.s_sweep;
  List.iter
    (fun (c : sweep_cell) ->
      if not (Hashtbl.mem base_sweep (sweep_key c)) then
        note "sweep cell %s only in current snapshot" (sweep_key c))
    current.s_sweep;
  (* shard cells: match by (pattern, shards).  These are simulated
     figures, fully deterministic for a given seed — throughput moving
     past the threshold is a semantic regression (no noise band), and
     any change at all in the 2PC counters is surfaced as a note. *)
  let shard_key (h : shard_cell) =
    Printf.sprintf "%s@%d" h.h_pattern h.h_shards
  in
  let cur_shard = index_by shard_key current.s_shard in
  let base_shard = index_by shard_key baseline.s_shard in
  List.iter
    (fun (b : shard_cell) ->
      match Hashtbl.find_opt cur_shard (shard_key b) with
      | None -> note "shard cell %s only in baseline" (shard_key b)
      | Some c ->
          classify
            ~metric:(Printf.sprintf "shard %s throughput" (shard_key b))
            ~base:b.h_throughput ~cur:c.h_throughput
            ~slowdown:
              (if c.h_throughput <= 0.0 then Float.nan
               else b.h_throughput /. c.h_throughput)
            ~noisy:false;
          if
            b.h_xshard_commits <> c.h_xshard_commits
            || b.h_prepares <> c.h_prepares
          then
            note
              "shard cell %s 2PC counters changed: xshard_commits %d -> %d, \
               prepares %d -> %d"
              (shard_key b) b.h_xshard_commits c.h_xshard_commits
              b.h_prepares c.h_prepares)
    baseline.s_shard;
  List.iter
    (fun (c : shard_cell) ->
      if not (Hashtbl.mem base_shard (shard_key c)) then
        note "shard cell %s only in current snapshot" (shard_key c))
    current.s_shard;
  (* latency cells: match by (algo, shards).  Simulated quantiles from a
     fixed seed, fully deterministic — growth past the threshold is a
     semantic regression (no noise band); the committed-transaction count
     changing is surfaced as a note. *)
  let lat_key (l : latency_cell) = Printf.sprintf "%s@%d" l.l_algo l.l_shards in
  let cur_lat = index_by lat_key current.s_latency in
  let base_lat = index_by lat_key baseline.s_latency in
  List.iter
    (fun (b : latency_cell) ->
      match Hashtbl.find_opt cur_lat (lat_key b) with
      | None -> note "latency cell %s only in baseline" (lat_key b)
      | Some c ->
          List.iter
            (fun (qname, bq, cq) ->
              classify
                ~metric:(Printf.sprintf "latency %s %s" (lat_key b) qname)
                ~base:bq ~cur:cq
                ~slowdown:(if bq <= 0.0 then Float.nan else cq /. bq)
                ~noisy:false)
            [
              ("p50", b.l_p50, c.l_p50);
              ("p95", b.l_p95, c.l_p95);
              ("p99", b.l_p99, c.l_p99);
            ];
          if b.l_xacts <> c.l_xacts then
            note "latency cell %s population changed: %d -> %d xacts"
              (lat_key b) b.l_xacts c.l_xacts)
    baseline.s_latency;
  List.iter
    (fun (c : latency_cell) ->
      if not (Hashtbl.mem base_lat (lat_key c)) then
        note "latency cell %s only in current snapshot" (lat_key c))
    current.s_latency;
  (* causal cells: match by (algo, shards).  Message amplification from a
     fixed seed, fully deterministic — growth past the threshold is a
     semantic regression (the protocol started sending more messages per
     commit; no noise band); a commit-count change is surfaced as a
     note. *)
  let causal_key (z : causal_cell) =
    Printf.sprintf "%s@%d" z.z_algo z.z_shards
  in
  let cur_causal = index_by causal_key current.s_causal in
  let base_causal = index_by causal_key baseline.s_causal in
  List.iter
    (fun (b : causal_cell) ->
      match Hashtbl.find_opt cur_causal (causal_key b) with
      | None -> note "causal cell %s only in baseline" (causal_key b)
      | Some c ->
          List.iter
            (fun (qname, bq, cq) ->
              classify
                ~metric:(Printf.sprintf "causal %s %s" (causal_key b) qname)
                ~base:bq ~cur:cq
                ~slowdown:(if bq <= 0.0 then Float.nan else cq /. bq)
                ~noisy:false)
            [
              ("msgs_per_commit", b.z_msgs_per_commit, c.z_msgs_per_commit);
              ("bytes_per_commit", b.z_bytes_per_commit, c.z_bytes_per_commit);
            ];
          if b.z_commits <> c.z_commits then
            note "causal cell %s population changed: %d -> %d commits"
              (causal_key b) b.z_commits c.z_commits)
    baseline.s_causal;
  List.iter
    (fun (c : causal_cell) ->
      if not (Hashtbl.mem base_causal (causal_key c)) then
        note "causal cell %s only in current snapshot" (causal_key c))
    current.s_causal;
  (* engine probe: events/sec, lower = worse; heap high-water, higher =
     worse (a space regression) *)
  (match (baseline.s_engine, current.s_engine) with
  | Some b, Some c ->
      let b_eps = events_per_sec ~events:b.p_events ~wall_s:b.p_wall_s in
      let c_eps = events_per_sec ~events:c.p_events ~wall_s:c.p_wall_s in
      classify ~metric:"engine events_per_sec" ~base:b_eps ~cur:c_eps
        ~slowdown:(if c_eps <= 0.0 then Float.nan else b_eps /. c_eps)
        ~noisy:false;
      classify ~metric:"engine heap_hwm" ~base:(float_of_int b.p_heap_hwm)
        ~cur:(float_of_int c.p_heap_hwm)
        ~slowdown:
          (if b.p_heap_hwm <= 0 then Float.nan
           else float_of_int c.p_heap_hwm /. float_of_int b.p_heap_hwm)
        ~noisy:false
  | Some _, None -> note "engine probe only in baseline"
  | None, Some _ -> note "engine probe only in current snapshot"
  | None, None -> ());
  {
    v_threshold = threshold;
    v_regressions = List.rev !regressions;
    v_improvements = List.rev !improvements;
    v_notes = List.rev !notes;
  }

let pp_finding fmt f =
  Format.fprintf fmt "%-40s %14.1f -> %14.1f  (%.2fx)" f.f_metric f.f_base
    f.f_cur f.f_slowdown

let pp_verdict fmt v =
  List.iter (fun n -> Format.fprintf fmt "note: %s@." n) v.v_notes;
  List.iter
    (fun f -> Format.fprintf fmt "improvement: %a@." pp_finding f)
    v.v_improvements;
  List.iter
    (fun f -> Format.fprintf fmt "REGRESSION:  %a@." pp_finding f)
    v.v_regressions;
  if ok v then
    Format.fprintf fmt "bench-diff: ok (no regression beyond %.0f%%)@."
      (100.0 *. v.v_threshold)
  else
    Format.fprintf fmt
      "bench-diff: %d regression(s) beyond the %.0f%% threshold@."
      (List.length v.v_regressions)
      (100.0 *. v.v_threshold)
