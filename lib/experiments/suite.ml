open Exp_defs

type decision_map = {
  localities : float list;
  write_probs : float list;
  winners : string array array;
}

type output = Figures of figure list | Map of decision_map

let table5_db = Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ()
let client_counts = [ 2; 10; 30; 50 ]

let spec ~cfg ~db ~xp algo =
  {
    Core.Simulator.cfg;
    db_params = db;
    xact_params = xp;
    mix = None;
    algo;
    n_shards = 1;
    seed = 0;
    warmup_commits = 0;
    measured_commits = 0;
    max_sim_time = 0.0;
    fault = Fault.Plan.none;
    obs = Obs.Config.off;
  }
(* seed/warmup/measured are overridden by the runner's options *)

(* A figure whose x-axis is the number of clients. *)
let clients_figure runner ~fig_id ~title ~metric ~make_cfg ~xp ~algos =
  let series =
    List.map
      (fun algo ->
        {
          label = Core.Proto.algorithm_name algo;
          points =
            List.map
              (fun n ->
                let cfg = make_cfg n in
                ( float_of_int n,
                  run runner (spec ~cfg ~db:table5_db ~xp algo) ))
              client_counts;
        })
      algos
  in
  { fig_id; title; xlabel = "clients"; metric; series }

let short ~pw ~loc = Db.Xact_params.short_batch ~prob_write:pw ~inter_xact_loc:loc ()

(* ------------------------------------------------------------------ *)
(* Section 4, experiment 1: the ACL comparison (Table 4)               *)
(* ------------------------------------------------------------------ *)

let acl runner =
  let mpls = [ 5; 10; 25; 50; 75; 100; 200 ] in
  let db = Db.Db_params.uniform ~n_classes:2 ~pages_per_class:500 () in
  let xp =
    {
      (Db.Xact_params.short_batch ~prob_write:0.25 ~inter_xact_loc:0.0 ()) with
      Db.Xact_params.inter_xact_set_size = 0;
    }
  in
  let series =
    List.map
      (fun algo ->
        {
          label = Core.Proto.algorithm_name algo;
          points =
            List.map
              (fun mpl ->
                let cfg = Core.Sys_params.table4 ~mpl in
                (float_of_int mpl, run runner (spec ~cfg ~db ~xp algo)))
              mpls;
        })
      [ Core.Proto.Two_phase Core.Proto.Intra;
        Core.Proto.Certification Core.Proto.Intra ]
  in
  Figures
    [
      {
        fig_id = "table4";
        title = "ACL verification: throughput vs MPL (2PL vs certification)";
        xlabel = "MPL";
        metric = Throughput;
        series;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Section 4, experiment 2: intra vs inter caching (Figures 5-7)       *)
(* ------------------------------------------------------------------ *)

let intra_inter_algos =
  [
    Core.Proto.Two_phase Core.Proto.Inter;
    Core.Proto.Two_phase Core.Proto.Intra;
    Core.Proto.Certification Core.Proto.Inter;
    Core.Proto.Certification Core.Proto.Intra;
  ]

let intra_inter runner ~fig_id ~loc ~pw ~metric =
  clients_figure runner ~fig_id
    ~title:
      (Printf.sprintf "%s (Loc=%.2f, ProbWrite=%.1f) — intra vs inter"
         (match metric with
         | Response_time -> "Response Time"
         | Throughput -> "Throughput")
         loc pw)
    ~metric
    ~make_cfg:(fun n -> Core.Sys_params.table5 ~n_clients:n ())
    ~xp:(short ~pw ~loc) ~algos:intra_inter_algos

let fig5 runner =
  Figures
    [
      intra_inter runner ~fig_id:"fig5(a)" ~loc:0.05 ~pw:0.2 ~metric:Response_time;
      intra_inter runner ~fig_id:"fig5(b)" ~loc:0.05 ~pw:0.5 ~metric:Response_time;
    ]

let fig6 runner =
  Figures
    [
      intra_inter runner ~fig_id:"fig6(a)" ~loc:0.5 ~pw:0.0 ~metric:Response_time;
      intra_inter runner ~fig_id:"fig6(b)" ~loc:0.5 ~pw:0.5 ~metric:Response_time;
    ]

let fig7 runner =
  Figures
    [
      intra_inter runner ~fig_id:"fig7(a)" ~loc:0.5 ~pw:0.0 ~metric:Throughput;
      intra_inter runner ~fig_id:"fig7(b)" ~loc:0.5 ~pw:0.5 ~metric:Throughput;
    ]

(* ------------------------------------------------------------------ *)
(* Section 5.1: short transactions (Figures 8-12)                      *)
(* ------------------------------------------------------------------ *)

let s5_figure runner ~fig_id ~loc ~pw ~metric ~make_cfg ~xp_of =
  clients_figure runner ~fig_id
    ~title:
      (Printf.sprintf "%s (Loc=%.2f, ProbWrite=%.1f)"
         (match metric with
         | Response_time -> "Response Time"
         | Throughput -> "Throughput")
         loc pw)
    ~metric ~make_cfg ~xp:(xp_of ~pw ~loc)
    ~algos:Core.Proto.section5_algorithms

let short_fig runner ~fig_id ~loc ~pw ~metric =
  s5_figure runner ~fig_id ~loc ~pw ~metric
    ~make_cfg:(fun n -> Core.Sys_params.table5 ~n_clients:n ())
    ~xp_of:(fun ~pw ~loc -> short ~pw ~loc)

let pw_triple runner ~fig ~loc =
  Figures
    [
      short_fig runner ~fig_id:(fig ^ "(a)") ~loc ~pw:0.0 ~metric:Response_time;
      short_fig runner ~fig_id:(fig ^ "(b)") ~loc ~pw:0.2 ~metric:Response_time;
      short_fig runner ~fig_id:(fig ^ "(c)") ~loc ~pw:0.5 ~metric:Response_time;
    ]

let fig8 runner = pw_triple runner ~fig:"fig8" ~loc:0.05
let fig9 runner = pw_triple runner ~fig:"fig9" ~loc:0.25
let fig10 runner = pw_triple runner ~fig:"fig10" ~loc:0.50
let fig11 runner = pw_triple runner ~fig:"fig11" ~loc:0.75

let fig12 runner =
  Figures
    [
      short_fig runner ~fig_id:"fig12(a)" ~loc:0.25 ~pw:0.2 ~metric:Throughput;
      short_fig runner ~fig_id:"fig12(b)" ~loc:0.75 ~pw:0.2 ~metric:Throughput;
    ]

(* ------------------------------------------------------------------ *)
(* Figure 13: the 2PL / callback decision map at 50 clients            *)
(* ------------------------------------------------------------------ *)

let fig13 runner =
  let localities = [ 0.05; 0.25; 0.50; 0.75 ] in
  let write_probs = [ 0.0; 0.1; 0.2; 0.35; 0.5 ] in
  let cfg = Core.Sys_params.table5 ~n_clients:50 () in
  let response algo ~loc ~pw =
    (run runner (spec ~cfg ~db:table5_db ~xp:(short ~pw ~loc) algo))
      .Core.Simulator.mean_response
  in
  let winners =
    Array.of_list
      (List.map
         (fun pw ->
           Array.of_list
             (List.map
                (fun loc ->
                  let two = response (Core.Proto.Two_phase Core.Proto.Inter) ~loc ~pw in
                  let cb = response Core.Proto.Callback ~loc ~pw in
                  if cb < 0.97 *. two then "callback"
                  else if two < 0.97 *. cb then "2PL"
                  else "either")
                localities))
         write_probs)
  in
  Map { localities; write_probs; winners }

(* ------------------------------------------------------------------ *)
(* Section 5.2: large transactions (Figures 14-15)                     *)
(* ------------------------------------------------------------------ *)

let large_fig runner ~fig_id ~loc ~pw =
  s5_figure runner ~fig_id ~loc ~pw ~metric:Response_time
    ~make_cfg:(fun n -> Core.Sys_params.table5 ~n_clients:n ())
    ~xp_of:(fun ~pw ~loc ->
      Db.Xact_params.large_batch ~prob_write:pw ~inter_xact_loc:loc ())

let fig14 runner =
  Figures
    [
      large_fig runner ~fig_id:"fig14(a)" ~loc:0.25 ~pw:0.2;
      large_fig runner ~fig_id:"fig14(b)" ~loc:0.25 ~pw:0.5;
    ]

let fig15 runner =
  Figures
    [
      large_fig runner ~fig_id:"fig15(a)" ~loc:0.75 ~pw:0.2;
      large_fig runner ~fig_id:"fig15(b)" ~loc:0.75 ~pw:0.5;
    ]

(* ------------------------------------------------------------------ *)
(* Section 5.3: fast server (Figures 16-17)                            *)
(* ------------------------------------------------------------------ *)

let fast_fig runner ~fig_id ~loc ~pw ~metric =
  s5_figure runner ~fig_id ~loc ~pw ~metric
    ~make_cfg:(fun n -> Core.Sys_params.fast_server ~n_clients:n ())
    ~xp_of:(fun ~pw ~loc -> short ~pw ~loc)

let fig16 runner =
  Figures
    [
      fast_fig runner ~fig_id:"fig16(a)" ~loc:0.25 ~pw:0.2 ~metric:Response_time;
      fast_fig runner ~fig_id:"fig16(b)" ~loc:0.25 ~pw:0.5 ~metric:Response_time;
    ]

let fig17 runner =
  Figures
    [
      fast_fig runner ~fig_id:"fig17(a)" ~loc:0.75 ~pw:0.2 ~metric:Response_time;
      fast_fig runner ~fig_id:"fig17(b)" ~loc:0.75 ~pw:0.5 ~metric:Response_time;
    ]

(* ------------------------------------------------------------------ *)
(* Section 5.4: fast server, no network delay (Figures 18-21)          *)
(* ------------------------------------------------------------------ *)

let fastnet_fig runner ~fig_id ~loc ~pw ~metric =
  s5_figure runner ~fig_id ~loc ~pw ~metric
    ~make_cfg:(fun n -> Core.Sys_params.fast_server_fast_net ~n_clients:n ())
    ~xp_of:(fun ~pw ~loc -> short ~pw ~loc)

let fig18 runner =
  Figures
    [
      fastnet_fig runner ~fig_id:"fig18(a)" ~loc:0.25 ~pw:0.2 ~metric:Response_time;
      fastnet_fig runner ~fig_id:"fig18(b)" ~loc:0.25 ~pw:0.5 ~metric:Response_time;
    ]

let fig19 runner =
  Figures
    [
      fastnet_fig runner ~fig_id:"fig19(a)" ~loc:0.75 ~pw:0.0 ~metric:Response_time;
      fastnet_fig runner ~fig_id:"fig19(b)" ~loc:0.75 ~pw:0.5 ~metric:Response_time;
    ]

let fig20 runner =
  Figures
    [ fastnet_fig runner ~fig_id:"fig20" ~loc:0.25 ~pw:0.5 ~metric:Throughput ]

let fig21 runner =
  Figures
    [ fastnet_fig runner ~fig_id:"fig21" ~loc:0.75 ~pw:0.5 ~metric:Throughput ]

(* ------------------------------------------------------------------ *)
(* Section 5.5: interactive transactions (Figure 22)                   *)
(* ------------------------------------------------------------------ *)

let interactive_fig runner ~fig_id ~loc ~pw =
  s5_figure runner ~fig_id ~loc ~pw ~metric:Response_time
    ~make_cfg:(fun n -> Core.Sys_params.table5 ~n_clients:n ())
    ~xp_of:(fun ~pw ~loc ->
      Db.Xact_params.interactive ~prob_write:pw ~inter_xact_loc:loc ())

let fig22 runner =
  Figures
    [
      interactive_fig runner ~fig_id:"fig22(a)" ~loc:0.25 ~pw:0.0;
      interactive_fig runner ~fig_id:"fig22(b)" ~loc:0.25 ~pw:0.5;
    ]

(* ------------------------------------------------------------------ *)
(* Extension: push vs invalidate notification                          *)
(* ------------------------------------------------------------------ *)

let notify_ablation runner =
  let algos =
    [
      Core.Proto.No_wait { notify = None };
      Core.Proto.No_wait { notify = Some Core.Proto.Push };
      Core.Proto.No_wait { notify = Some Core.Proto.Invalidate };
    ]
  in
  let fig ~loc ~pw =
    clients_figure runner
      ~fig_id:(Printf.sprintf "ablate-notify(loc=%.2f,pw=%.1f)" loc pw)
      ~title:
        (Printf.sprintf
           "Notification mode ablation, fast server + fast net (Loc=%.2f, \
            ProbWrite=%.1f)"
           loc pw)
      ~metric:Response_time
      ~make_cfg:(fun n -> Core.Sys_params.fast_server_fast_net ~n_clients:n ())
      ~xp:(short ~pw ~loc) ~algos
  in
  Figures [ fig ~loc:0.25 ~pw:0.5; fig ~loc:0.75 ~pw:0.5 ]


(* ------------------------------------------------------------------ *)
(* Ablations of our documented design decisions (DESIGN.md)            *)
(* ------------------------------------------------------------------ *)

(* A figure whose series are configuration variants of one algorithm. *)
let variant_figure runner ~fig_id ~title ~metric ~variants ~xp ?(db = table5_db)
    ?(counts = [ 10; 30; 50 ]) algo =
  let series =
    List.map
      (fun (label, make_cfg) ->
        {
          label;
          points =
            List.map
              (fun n -> (float_of_int n, run runner (spec ~cfg:(make_cfg n) ~db ~xp algo)))
              counts;
        })
      variants
  in
  { fig_id; title; xlabel = "clients"; metric; series }

let ablate_stale runner =
  let xp = Db.Xact_params.large_batch ~prob_write:0.5 ~inter_xact_loc:0.25 () in
  let v label f = (label, fun n -> f (Core.Sys_params.table5 ~n_clients:n ())) in
  Figures
    [
      variant_figure runner ~fig_id:"ablate-stale"
        ~title:
          "No-wait staleness abort: drop the whole read set vs only the \
           reported page (large xacts, Loc=0.25, PW=0.5)"
        ~metric:Response_time
        ~variants:
          [
            v "drop-all" (fun c -> c);
            v "drop-one" (fun c -> { c with Core.Sys_params.stale_drop_all = false });
          ]
        ~xp
        (Core.Proto.No_wait { notify = None });
    ]

let ablate_grace runner =
  let xp = Db.Xact_params.large_batch ~prob_write:0.5 ~inter_xact_loc:0.75 () in
  let v label g =
    (label, fun n -> { (Core.Sys_params.table5 ~n_clients:n ()) with Core.Sys_params.callback_grace = g })
  in
  Figures
    [
      variant_figure runner ~fig_id:"ablate-grace"
        ~title:
          "Callback deadlock detection: grace period vs immediate (the \
           spurious retained-lock cycles of paper sec. 6)"
        ~metric:Response_time
        ~variants:[ v "grace-50ms" 0.05; v "immediate" 0.0 ]
        ~xp ~counts:[ 10; 30 ] Core.Proto.Callback;
    ]

let ablate_restart runner =
  let xp = Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.5 () in
  let v label p =
    (label, fun n -> { (Core.Sys_params.table5 ~n_clients:n ()) with Core.Sys_params.restart_policy = p })
  in
  Figures
    [
      variant_figure runner ~fig_id:"ablate-restart"
        ~title:"Restart delay policy under contention (2PL, Loc=0.5, PW=0.5)"
        ~metric:Response_time
        ~variants:
          [
            v "adaptive" Core.Sys_params.Adaptive;
            v "fixed-1s" (Core.Sys_params.Fixed 1.0);
            v "immediate" Core.Sys_params.Immediate;
          ]
        ~xp
        (Core.Proto.Two_phase Core.Proto.Inter);
    ]

(* The paper's section 3.1 models object size and clustering but never
   exercises them ("We did not study the impact of large objects or object
   clustering in our initial experiments") — this experiment does. *)
let objsize_extension runner =
  let xp = short ~pw:0.2 ~loc:0.25 in
  let db ~size ~cf =
    {
      (Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ~object_size:size ()) with
      Db.Db_params.cluster_factor = cf;
    }
  in
  let series =
    List.map
      (fun (label, size, cf) ->
        {
          label;
          points =
            List.map
              (fun n ->
                ( float_of_int n,
                  run runner
                    (spec
                       ~cfg:(Core.Sys_params.table5 ~n_clients:n ())
                       ~db:(db ~size ~cf) ~xp
                       (Core.Proto.Two_phase Core.Proto.Inter)) ))
              [ 10; 30; 50 ];
        })
      [
        ("size1", 1, 1.0);
        ("size4-clustered", 4, 1.0);
        ("size4-scattered", 4, 0.0);
      ]
  in
  Figures
    [
      {
        fig_id = "ext-objsize";
        title =
          "Extension: object size and clustering under 2PL (Loc=0.25, PW=0.2)";
        xlabel = "clients";
        metric = Response_time;
        series;
      };
    ]

let mpl_extension runner =
  let xp = short ~pw:0.5 ~loc:0.25 in
  let series =
    List.map
      (fun algo ->
        {
          label = Core.Proto.algorithm_name algo;
          points =
            List.map
              (fun mpl ->
                ( float_of_int mpl,
                  run runner
                    (spec
                       ~cfg:{ (Core.Sys_params.table5 ~n_clients:50 ()) with Core.Sys_params.mpl }
                       ~db:table5_db ~xp algo) ))
              [ 5; 10; 25; 50 ];
        })
      [ Core.Proto.Two_phase Core.Proto.Inter; Core.Proto.Certification Core.Proto.Inter ]
  in
  Figures
    [
      {
        fig_id = "ext-mpl";
        title =
          "Extension: MPL admission control in the client/server setting (50 \
           clients, Loc=0.25, PW=0.5)";
        xlabel = "MPL";
        metric = Throughput;
        series;
      };
    ]

(* The paper chose to retain only read locks (§2.3, "write locks are more
   likely to cause incompatibility"); this measures the alternative. *)
let retain_writes_ablation runner =
  let v label rw =
    ( label,
      fun n ->
        { (Core.Sys_params.table5 ~n_clients:n ()) with
          Core.Sys_params.callback_retain_writes = rw } )
  in
  let fig ~loc ~pw =
    variant_figure runner
      ~fig_id:(Printf.sprintf "ablate-retain-writes(loc=%.2f,pw=%.1f)" loc pw)
      ~title:
        (Printf.sprintf
           "Callback locking: retain read locks only (paper) vs read+write \
            locks (Loc=%.2f, PW=%.1f)"
           loc pw)
      ~metric:Response_time
      ~variants:[ v "retain-reads" false; v "retain-read+write" true ]
      ~xp:(short ~pw ~loc) Core.Proto.Callback
  in
  Figures [ fig ~loc:0.75 ~pw:0.2; fig ~loc:0.75 ~pw:0.5 ]

(* The "two-phase locking with notification" the paper's section 5.1 text
   mentions: update propagation composed with 2PL. *)
let two_pl_notify_extension runner =
  let xp = short ~pw:0.2 ~loc:0.5 in
  let v label nu =
    ( label,
      fun n ->
        { (Core.Sys_params.table5 ~n_clients:n ()) with Core.Sys_params.notify_updates = nu } )
  in
  Figures
    [
      variant_figure runner ~fig_id:"ext-2pl-notify"
        ~title:
          "Extension: 2PL with update notification (Loc=0.5, PW=0.2)"
        ~metric:Response_time
        ~variants:
          [
            v "plain" None;
            v "push" (Some Core.Proto.Push);
            v "invalidate" (Some Core.Proto.Invalidate);
          ]
        ~xp
        (Core.Proto.Two_phase Core.Proto.Inter);
    ]

(* A mixed workload (paper §3.2 allows "a mix of transactions belonging to
   different types"): mostly short read-mostly interactions with occasional
   large batch updaters — the OODB scenario the paper's introduction
   motivates. *)
let mix_extension runner =
  let mix =
    [
      (0.8, Db.Xact_params.short_batch ~prob_write:0.1 ~inter_xact_loc:0.6 ());
      (0.2, Db.Xact_params.large_batch ~prob_write:0.4 ~inter_xact_loc:0.2 ());
    ]
  in
  let series =
    List.map
      (fun algo ->
        {
          label = Core.Proto.algorithm_name algo;
          points =
            List.map
              (fun n ->
                let s =
                  {
                    (spec
                       ~cfg:(Core.Sys_params.table5 ~n_clients:n ())
                       ~db:table5_db
                       ~xp:(short ~pw:0.1 ~loc:0.6)
                       algo)
                    with
                    Core.Simulator.mix = Some mix;
                  }
                in
                (float_of_int n, run runner s))
              [ 10; 30; 50 ];
        })
      Core.Proto.section5_algorithms
  in
  Figures
    [
      {
        fig_id = "ext-mix";
        title =
          "Extension: mixed workload — 80% short read-mostly + 20% large \
           updaters";
        xlabel = "clients";
        metric = Response_time;
        series;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Extension: multi-server sharding (1 -> 16 shards, 2PC)              *)
(* ------------------------------------------------------------------ *)

(* Throughput and response time versus shard count, under a uniform
   access pattern (traffic spreads evenly, most commits single-shard at
   low locality only by luck of the draw) and a Zipf hot-shard pattern
   (class skew concentrates traffic on shard 0, so extra shards buy
   little and 2PC overhead dominates).  The 1-shard column runs the
   unsharded simulator and so doubles as the bit-identity anchor. *)
let shard_counts = [ 1; 2; 4; 8; 16 ]

let shard_sweep runner =
  let patterns = [ ("uniform", 0.0); ("zipf-hot", 0.9) ] in
  let cfg = Core.Sys_params.table5 ~n_clients:50 () in
  let fig metric =
    let series =
      List.map
        (fun (label, skew) ->
          {
            label;
            points =
              List.map
                (fun n_shards ->
                  let xp =
                    { (short ~pw:0.2 ~loc:0.25) with
                      Db.Xact_params.class_skew = skew }
                  in
                  let s =
                    {
                      (spec ~cfg ~db:table5_db ~xp
                         (Core.Proto.Two_phase Core.Proto.Inter))
                      with
                      Core.Simulator.n_shards;
                    }
                  in
                  (float_of_int n_shards, run runner s))
                shard_counts;
          })
        patterns
    in
    {
      fig_id =
        (match metric with
        | Throughput -> "ext-shard(tput)"
        | Response_time -> "ext-shard(resp)");
      title =
        "Extension: multi-server sharding with 2PC (50 clients, 2PL, \
         Loc=0.25, PW=0.2) — uniform vs hot-shard access";
      xlabel = "shards";
      metric;
      series;
    }
  in
  Figures [ fig Throughput; fig Response_time ]

let all =
  [
    ("acl", "§4 exp 1: ACL comparison, throughput vs MPL (Table 4)", acl);
    ("fig5", "§4 exp 2: intra vs inter, Loc=0.05 (Fig 5a,b)", fig5);
    ("fig6", "§4 exp 2: intra vs inter, Loc=0.50 (Fig 6a,b)", fig6);
    ("fig7", "§4 exp 2: throughput, Loc=0.50 (Fig 7a,b)", fig7);
    ("fig8", "§5.1 short xacts, Loc=0.05 (Fig 8a-c)", fig8);
    ("fig9", "§5.1 short xacts, Loc=0.25 (Fig 9a-c)", fig9);
    ("fig10", "§5.1 short xacts, Loc=0.50 (Fig 10a-c)", fig10);
    ("fig11", "§5.1 short xacts, Loc=0.75 (Fig 11a-c)", fig11);
    ("fig12", "§5.1 throughput, PW=0.2 (Fig 12a,b)", fig12);
    ("fig13", "§5.1 decision map: best algorithm (Fig 13)", fig13);
    ("fig14", "§5.2 large xacts, Loc=0.25 (Fig 14a,b)", fig14);
    ("fig15", "§5.2 large xacts, Loc=0.75 (Fig 15a,b)", fig15);
    ("fig16", "§5.3 fast server, Loc=0.25 (Fig 16a,b)", fig16);
    ("fig17", "§5.3 fast server, Loc=0.75 (Fig 17a,b)", fig17);
    ("fig18", "§5.4 fast net+server, Loc=0.25 (Fig 18a,b)", fig18);
    ("fig19", "§5.4 fast net+server, Loc=0.75 (Fig 19a,b)", fig19);
    ("fig20", "§5.4 throughput, Loc=0.25 (Fig 20)", fig20);
    ("fig21", "§5.4 throughput, Loc=0.75 (Fig 21)", fig21);
    ("fig22", "§5.5 interactive, Loc=0.25 (Fig 22a,b)", fig22);
    ("ablate-notify", "extension: push vs invalidate notification", notify_ablation);
    ("ablate-stale", "ablation: staleness abort drops read set vs one page", ablate_stale);
    ("ablate-grace", "ablation: callback deadlock grace period vs immediate", ablate_grace);
    ("ablate-restart", "ablation: restart delay policy", ablate_restart);
    ("ext-objsize", "extension: object size and clustering (paper future work)", objsize_extension);
    ("ext-mpl", "extension: MPL admission control client/server", mpl_extension);
    ("ext-2pl-notify", "extension: 2PL with update notification", two_pl_notify_extension);
    ( "ablate-retain-writes",
      "ablation: callback retains read locks only vs read+write",
      retain_writes_ablation );
    ("ext-mix", "extension: mixed transaction types (paper §3.2)", mix_extension);
    ( "shard-sweep",
      "extension: 1-16 shard servers with 2PC, uniform vs hot-shard access",
      shard_sweep );
  ]

(* The registry is looked up per id from the CLI and the bench harness;
   index it once instead of rescanning the list on every call. *)
let by_id =
  lazy
    (let h = Hashtbl.create 64 in
     List.iter
       (fun ((i, _, _) as e) -> if not (Hashtbl.mem h i) then Hashtbl.add h i e)
       all;
     h)

let find id = Hashtbl.find_opt (Lazy.force by_id) id
