(** Every experiment of the paper's Sections 4–5, each regenerating the
    rows/series of one or more tables or figures.  See DESIGN.md for the
    experiment index and EXPERIMENTS.md for paper-vs-measured results. *)

open Exp_defs

(** The winner map of Figure 13: rows are write probabilities, columns are
    localities, each cell names the best algorithm (2PL / callback /
    "either" when within 3 %). *)
type decision_map = {
  localities : float list;
  write_probs : float list;
  winners : string array array;  (** [winners.(pw_idx).(loc_idx)] *)
}

type output = Figures of figure list | Map of decision_map

(** §4 experiment 1 (Table 4 parameters): throughput vs MPL, two-phase
    locking vs certification on the ACL centralized configuration. *)
val acl : runner -> output

(** §4 experiment 2 (Figures 5–7): intra- vs inter-transaction caching. *)
val fig5 : runner -> output

val fig6 : runner -> output
val fig7 : runner -> output

(** §5.1 short transactions (Figures 8–12). *)
val fig8 : runner -> output

val fig9 : runner -> output
val fig10 : runner -> output
val fig11 : runner -> output
val fig12 : runner -> output

(** §5.1 summary decision map (Figure 13). *)
val fig13 : runner -> output

(** §5.2 large transactions (Figures 14–15). *)
val fig14 : runner -> output

val fig15 : runner -> output

(** §5.3 fast server (Figures 16–17). *)
val fig16 : runner -> output

val fig17 : runner -> output

(** §5.4 fast server and no network delay (Figures 18–21). *)
val fig18 : runner -> output

val fig19 : runner -> output
val fig20 : runner -> output
val fig21 : runner -> output

(** §5.5 interactive transactions (Figure 22). *)
val fig22 : runner -> output

(** Extension (not in the paper): notification by invalidation instead of
    update propagation, compared on the fast-server/fast-network setup. *)
val notify_ablation : runner -> output

(** Ablations of the design decisions documented in DESIGN.md. *)
val ablate_stale : runner -> output

val ablate_grace : runner -> output
val ablate_restart : runner -> output

(** Extensions beyond the paper's experiments: the object-size/clustering
    dimension its §3.1 models but never exercises, and MPL admission
    control in the client/server setting. *)
val objsize_extension : runner -> output

val mpl_extension : runner -> output

(** Extension: update notification composed with two-phase locking. *)
val two_pl_notify_extension : runner -> output

(** Ablation of the §2.3 choice to retain only read locks. *)
val retain_writes_ablation : runner -> output

(** Extension: a weighted mix of transaction types (§3.2). *)
val mix_extension : runner -> output

(** All experiments: (id, description, builder). *)
val all : (string * string * (runner -> output)) list

val find : string -> (string * string * (runner -> output)) option
