(** Shared experiment-harness vocabulary: figures, series, run options, and
    a memoizing runner so figures that share underlying simulations (e.g.
    a response-time figure and its throughput twin) reuse results. *)

type run_opts = {
  warmup : int;  (** warmup commits before the measurement window *)
  measured : int;  (** commits measured per run *)
  reps : int;  (** independent replications averaged *)
  seed : int;
  max_sim_time : float;
}

(** 200 warmup + 1500 measured commits, 1 rep — a few seconds per figure. *)
val default_opts : run_opts

(** 100 + 600 commits: smoke-test speed, noisier numbers. *)
val quick_opts : run_opts

(** What a figure plots. *)
type metric = Response_time | Throughput

type series = {
  label : string;  (** algorithm name *)
  points : (float * Core.Simulator.result) list;  (** x value, full result *)
}

type figure = {
  fig_id : string;  (** e.g. "fig9(b)" *)
  title : string;
  xlabel : string;
  metric : metric;
  series : series list;
}

val metric_value : metric -> Core.Simulator.result -> float

(** A memoizing simulation runner. *)
type runner

val make_runner : run_opts -> runner

(** [run runner spec] — run (or reuse) the simulation for [spec]; the
    spec's warmup/measured/seed fields are overridden from the options. *)
val run : runner -> Core.Simulator.spec -> Core.Simulator.result

(** Number of distinct simulations executed so far. *)
val runs_executed : runner -> int
