(** Shared experiment-harness vocabulary: figures, series, run options, and
    a memoizing runner so figures that share underlying simulations (e.g.
    a response-time figure and its throughput twin) reuse results. *)

type run_opts = {
  warmup : int;  (** warmup commits before the measurement window *)
  measured : int;  (** commits measured per run *)
  reps : int;  (** independent replications averaged *)
  seed : int;
  max_sim_time : float;
}

(** 200 warmup + 1500 measured commits, 1 rep — a few seconds per figure. *)
val default_opts : run_opts

(** 100 + 600 commits: smoke-test speed, noisier numbers. *)
val quick_opts : run_opts

(** What a figure plots. *)
type metric = Response_time | Throughput

type series = {
  label : string;  (** algorithm name *)
  points : (float * Core.Simulator.result) list;  (** x value, full result *)
}

type figure = {
  fig_id : string;  (** e.g. "fig9(b)" *)
  title : string;
  xlabel : string;
  metric : metric;
  series : series list;
}

val metric_value : metric -> Core.Simulator.result -> float

(** Per-replication values of the metric, in seed order (a singleton for
    an unreplicated run, [[||]] for a placeholder). *)
val metric_reps : metric -> Core.Simulator.result -> float array

(** Student-t confidence interval (default 95 %) across the metric's
    replications; unavailable ({!Obs.Run_stats.available} false) below
    two replications. *)
val metric_ci :
  ?confidence:float -> metric -> Core.Simulator.result -> Obs.Run_stats.ci

(** A memoizing simulation runner, optionally backed by a pool of worker
    domains ({!Sim.Pool}). *)
type runner

(** [make_runner ?jobs opts] — [jobs] (default 1, clamped to at least 1) is
    the number of domains {!run_build} and replicated runs may use. *)
val make_runner : ?jobs:int -> run_opts -> runner

val jobs : runner -> int

(** [run runner spec] — run (or reuse) the simulation for [spec]; the
    spec's warmup/measured/seed fields are overridden from the options.
    Replications of the spec run on the pool when [jobs > 1]. *)
val run : runner -> Core.Simulator.spec -> Core.Simulator.result

(** [run_build runner build] evaluates [build runner] — typically a
    function assembling one experiment's figures from {!run} calls — with
    the grid cells evaluated across the runner's domains.  With [jobs > 1]
    it first evaluates [build] once in a collecting mode that records every
    uncached spec (assuming, as holds for every experiment in {!Suite},
    that the set of specs requested does not depend on simulation
    results), dispatches the batch through {!Sim.Pool.map}, memoizes, and
    re-evaluates [build] against the warm cache.  Results are identical
    for every jobs count because each cell's randomness comes from its
    spec's seed, not from scheduling.  With [jobs <= 1] it is exactly
    [build runner]. *)
val run_build : runner -> (runner -> 'a) -> 'a

(** The memoization key: a digest over every observable field of the
    normalized spec.  Specs differing in any configuration field —
    including [n_data_disks], [client_mips], [page_size],
    [control_msg_bytes], ... — have distinct keys. *)
val key_of_spec : Core.Simulator.spec -> string

(** Number of distinct simulations executed so far. *)
val runs_executed : runner -> int
