type run_opts = {
  warmup : int;
  measured : int;
  reps : int;
  seed : int;
  max_sim_time : float;
}

let default_opts =
  { warmup = 200; measured = 1500; reps = 1; seed = 42; max_sim_time = 100_000.0 }

let quick_opts =
  { warmup = 100; measured = 600; reps = 1; seed = 42; max_sim_time = 100_000.0 }

type metric = Response_time | Throughput

type series = { label : string; points : (float * Core.Simulator.result) list }

type figure = {
  fig_id : string;
  title : string;
  xlabel : string;
  metric : metric;
  series : series list;
}

let metric_value m (r : Core.Simulator.result) =
  match m with
  | Response_time -> r.Core.Simulator.mean_response
  | Throughput -> r.Core.Simulator.throughput

let metric_reps m (r : Core.Simulator.result) =
  match m with
  | Response_time -> r.Core.Simulator.rep_mean_responses
  | Throughput -> r.Core.Simulator.rep_throughputs

let metric_ci ?confidence m r =
  Obs.Run_stats.mean_ci ?confidence (metric_reps m r)

type runner = {
  opts : run_opts;
  jobs : int;
  cache : (string, Core.Simulator.result) Hashtbl.t;
  mutable collecting : bool;
  mutable pending : (string * Core.Simulator.spec) list;  (* newest first *)
  pending_keys : (string, unit) Hashtbl.t;
  mutable executed : int;
}

let make_runner ?(jobs = 1) opts =
  {
    opts;
    jobs = max 1 jobs;
    cache = Hashtbl.create 64;
    collecting = false;
    pending = [];
    pending_keys = Hashtbl.create 64;
    executed = 0;
  }

let jobs t = t.jobs

(* Specs are keyed by a digest of the whole (normalized) spec value, so two
   figures asking for the same simulation share one run and — unlike the
   previous hand-enumerated format string, which silently omitted fields
   like n_data_disks, client_mips, page_size, and control_msg_bytes — any
   field added to the spec is part of the key automatically.  No_sharing
   makes the bytes depend only on the structure, never on physical
   sharing within the value. *)
let key_of_spec (s : Core.Simulator.spec) =
  Digest.to_hex (Digest.string (Marshal.to_string s [ Marshal.No_sharing ]))

let normalize t spec =
  {
    spec with
    Core.Simulator.seed = t.opts.seed;
    warmup_commits = t.opts.warmup;
    measured_commits = t.opts.measured;
    max_sim_time = t.opts.max_sim_time;
  }

(* What [run] returns while collecting: only reached on a cache miss during
   the first (spec-gathering) pass of [run_build], and discarded with the
   rest of that pass's output. *)
let placeholder_result (s : Core.Simulator.spec) : Core.Simulator.result =
  {
    algo = s.Core.Simulator.algo;
    n_clients = s.Core.Simulator.cfg.Core.Sys_params.n_clients;
    mean_response = 0.0;
    response_stddev = 0.0;
    response_p50 = 0.0;
    response_p95 = 0.0;
    throughput = 0.0;
    commits = 0;
    aborts = 0;
    aborts_deadlock = 0;
    aborts_stale = 0;
    aborts_cert = 0;
    hit_ratio = 0.0;
    messages = 0;
    packets = 0;
    msgs_per_commit = 0.0;
    callbacks_sent = 0;
    pushes_sent = 0;
    server_cpu_util = 0.0;
    client_cpu_util = 0.0;
    disk_util = 0.0;
    log_disk_util = 0.0;
    net_util = 0.0;
    window = 0.0;
    sim_time = 0.0;
    events = 0;
    aborts_lease = 0;
    retries = 0;
    crashes = 0;
    recoveries = 0;
    lost_xacts = 0;
    reclaimed_locks = 0;
    lease_lapses = 0;
    msgs_dropped = 0;
    msgs_delayed = 0;
    msgs_duplicated = 0;
    mean_recovery = 0.0;
    server_crashes = 0;
    server_recoveries = 0;
    server_killed_xacts = 0;
    checkpoints = 0;
    server_downtime = 0.0;
    mean_server_recovery = 0.0;
    n_shards = s.Core.Simulator.n_shards;
    prepares = 0;
    xshard_commits = 0;
    xshard_aborts = 0;
    outcome_queries = 0;
    shard_commits = [||];
    rep_mean_responses = [||];
    rep_throughputs = [||];
    obs = None;
  }

(* All experiment cells run through the sharding dispatcher: specs with
   [n_shards <= 1] take the unsharded simulator unchanged (bit-identical
   figures), sharded specs assemble N servers plus routers. *)
let execute t spec =
  Shard.Shard_sim.run_replicated ~jobs:t.jobs spec ~reps:t.opts.reps

let run t spec =
  let spec = normalize t spec in
  let key = key_of_spec spec in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      if t.collecting then begin
        if not (Hashtbl.mem t.pending_keys key) then begin
          Hashtbl.add t.pending_keys key ();
          t.pending <- (key, spec) :: t.pending
        end;
        placeholder_result spec
      end
      else begin
        let r = execute t spec in
        t.executed <- t.executed + 1;
        Hashtbl.replace t.cache key r;
        r
      end

let run_build t build =
  if t.jobs <= 1 then build t
  else begin
    (* Pass 1: evaluate [build] with the runner in collecting mode.  Cache
       misses record their spec and return a placeholder; the pass's output
       is discarded.  This assumes — true of every figure in Suite — that
       WHICH specs a figure requests does not depend on simulation results,
       only what it renders from them. *)
    t.collecting <- true;
    t.pending <- [];
    Hashtbl.reset t.pending_keys;
    let batch =
      Fun.protect
        ~finally:(fun () ->
          t.collecting <- false;
          t.pending <- [];
          Hashtbl.reset t.pending_keys)
        (fun () ->
          ignore (build t);
          List.rev t.pending)
    in
    (* Dispatch the batch across the pool.  Each cell is seeded from the
       runner options, never from scheduling, so results — and therefore
       the figures rebuilt below — are identical for any jobs count.
       Replications are left sequential inside each cell: the cells
       themselves already saturate the pool. *)
    let results =
      Sim.Pool.map ~jobs:t.jobs
        (fun (_, spec) -> Shard.Shard_sim.run_replicated spec ~reps:t.opts.reps)
        batch
    in
    List.iter2
      (fun (key, _) r ->
        t.executed <- t.executed + 1;
        Hashtbl.replace t.cache key r)
      batch results;
    (* Pass 2: every spec now hits the cache. *)
    build t
  end

let runs_executed t = t.executed
