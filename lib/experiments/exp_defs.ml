type run_opts = {
  warmup : int;
  measured : int;
  reps : int;
  seed : int;
  max_sim_time : float;
}

let default_opts =
  { warmup = 200; measured = 1500; reps = 1; seed = 42; max_sim_time = 100_000.0 }

let quick_opts =
  { warmup = 100; measured = 600; reps = 1; seed = 42; max_sim_time = 100_000.0 }

type metric = Response_time | Throughput

type series = { label : string; points : (float * Core.Simulator.result) list }

type figure = {
  fig_id : string;
  title : string;
  xlabel : string;
  metric : metric;
  series : series list;
}

let metric_value m (r : Core.Simulator.result) =
  match m with
  | Response_time -> r.Core.Simulator.mean_response
  | Throughput -> r.Core.Simulator.throughput

type runner = {
  opts : run_opts;
  cache : (string, Core.Simulator.result) Hashtbl.t;
  mutable executed : int;
}

let make_runner opts = { opts; cache = Hashtbl.create 64; executed = 0 }

(* Specs are keyed by their observable parameters; two figures asking for
   the same simulation share one run. *)
let key_of_spec (s : Core.Simulator.spec) =
  let cfg = s.Core.Simulator.cfg in
  let xp = s.Core.Simulator.xact_params in
  let dbp = s.Core.Simulator.db_params in
  Printf.sprintf
    "%s|nc=%d|smips=%g|nd=%g|cache=%d|buf=%d|mpl=%d|logd=%d|spp=%d|cpp=%d|idc=%d|seek=%g-%g|tran=%g|msg=%d|size=%d-%d|pw=%g|ud=%g|id=%g|ed=%g|loc=%g|set=%d|cls=%dx%d|os=%d|cf=%g|async=%b"
    (Core.Proto.algorithm_name s.Core.Simulator.algo)
    cfg.Core.Sys_params.n_clients cfg.Core.Sys_params.server_mips
    cfg.Core.Sys_params.net.Net.Network.net_delay cfg.Core.Sys_params.cache_size
    cfg.Core.Sys_params.buffer_size cfg.Core.Sys_params.mpl
    cfg.Core.Sys_params.n_log_disks cfg.Core.Sys_params.server_proc_inst
    cfg.Core.Sys_params.client_proc_inst cfg.Core.Sys_params.init_disk_inst
    cfg.Core.Sys_params.disk.Storage.Disk.seek_low
    cfg.Core.Sys_params.disk.Storage.Disk.seek_high
    cfg.Core.Sys_params.disk.Storage.Disk.transfer_time
    cfg.Core.Sys_params.net.Net.Network.msg_inst xp.Db.Xact_params.min_xact_size
    xp.Db.Xact_params.max_xact_size xp.Db.Xact_params.prob_write
    xp.Db.Xact_params.update_delay xp.Db.Xact_params.internal_delay
    xp.Db.Xact_params.external_delay xp.Db.Xact_params.inter_xact_loc
    xp.Db.Xact_params.inter_xact_set_size dbp.Db.Db_params.n_classes
    (if dbp.Db.Db_params.n_classes > 0 then dbp.Db.Db_params.n_pages.(0) else 0)
    (if dbp.Db.Db_params.n_classes > 0 then dbp.Db.Db_params.object_size.(0)
     else 0)
    dbp.Db.Db_params.cluster_factor
    cfg.Core.Sys_params.process_async_during_think
  ^ Printf.sprintf "|sda=%b|rp=%s|cg=%g" cfg.Core.Sys_params.stale_drop_all
      (match cfg.Core.Sys_params.restart_policy with
      | Core.Sys_params.Adaptive -> "adaptive"
      | Core.Sys_params.Fixed f -> Printf.sprintf "fixed%g" f
      | Core.Sys_params.Immediate -> "immediate")
      cfg.Core.Sys_params.callback_grace
  ^ Printf.sprintf "|crw=%b" cfg.Core.Sys_params.callback_retain_writes
  ^ (match s.Core.Simulator.mix with
    | None -> ""
    | Some mix ->
        "|mix="
        ^ String.concat "+"
            (List.map
               (fun (w, (xp : Db.Xact_params.t)) ->
                 Printf.sprintf "%g*%d-%d-pw%g-loc%g" w
                   xp.Db.Xact_params.min_xact_size xp.Db.Xact_params.max_xact_size
                   xp.Db.Xact_params.prob_write xp.Db.Xact_params.inter_xact_loc)
               mix))
  ^ (match cfg.Core.Sys_params.notify_updates with
    | None -> ""
    | Some Core.Proto.Push -> "|nu=push"
    | Some Core.Proto.Invalidate -> "|nu=inval")

let run t spec =
  let spec =
    {
      spec with
      Core.Simulator.seed = t.opts.seed;
      warmup_commits = t.opts.warmup;
      measured_commits = t.opts.measured;
      max_sim_time = t.opts.max_sim_time;
    }
  in
  let key = key_of_spec spec in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let r = Core.Simulator.run_replicated spec ~reps:t.opts.reps in
      t.executed <- t.executed + 1;
      Hashtbl.replace t.cache key r;
      r

let runs_executed t = t.executed
