(* Seeded chaos-audit harness: run one simulation under a deterministic
   fault plan and audit the whole run — serializability of the committed
   history, end-state invariants, liveness, and crash/recovery
   bookkeeping.  Everything is a pure function of the spec, so sweeps
   parallelize over [Sim.Pool] with bit-identical verdicts at any job
   count. *)

type verdict = {
  v_algo : Core.Proto.algorithm;
  v_plan : Fault.Plan.t;
  v_result : Core.Simulator.result option;  (* [None] if the run raised *)
  v_errors : string list;  (* empty means the run passed every audit *)
}

let ok v = v.v_errors = []

let default_algos =
  [
    Core.Proto.Two_phase Core.Proto.Inter;
    Core.Proto.Certification Core.Proto.Inter;
    Core.Proto.Callback;
    Core.Proto.No_wait { notify = None };
    Core.Proto.No_wait { notify = Some Core.Proto.Push };
  ]

(* Chaos runs measure availability, not steady state: no warmup reset, so
   crash/recovery counters cover the whole run and the end-state
   bookkeeping below is exact.  The simulation seed is the plan seed —
   one integer reproduces the run. *)
let spec ?(n_clients = 8) ?(n_shards = 1) ?(measured_commits = 400)
    ?(max_sim_time = 20_000.0) ?(hot = false) ~fault algo =
  {
    (* [hot] shrinks the database to a contention furnace — the workload
       for proving that a broken protocol is actually caught *)
    Core.Simulator.cfg = Core.Sys_params.table5 ~n_clients ();
    db_params =
      (if hot then Db.Db_params.uniform ~n_classes:2 ~pages_per_class:25 ()
       else Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ());
    xact_params =
      (if hot then
         Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.9 ()
       else Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.5 ());
    mix = None;
    algo;
    n_shards;
    seed = fault.Fault.Plan.seed;
    warmup_commits = 0;
    measured_commits;
    max_sim_time;
    fault;
    obs = Obs.Config.off;
  }

let audit_run (sp : Core.Simulator.spec) =
  let audit = Cc.History.create () in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let clients_down = ref 0 in
  let srv = sp.Core.Simulator.fault.Fault.Plan.server_crash_mean > 0.0 in
  let n_shards = max 1 sp.Core.Simulator.n_shards in
  (* the directory is a pure function of the database shape, so the audit
     recomputes the same map the routers used *)
  let map =
    Shard.Shard_map.create
      (Db.Database.create sp.Core.Simulator.db_params)
      ~n_shards
  in
  let shards_down_at_end = ref 0 in
  let redo_logs = Array.make n_shards None in
  let inspect servers clients =
    shards_down_at_end := 0;
    Array.iteri
      (fun k server ->
        if Core.Server.server_down server then incr shards_down_at_end;
        redo_logs.(k) <- Core.Server.log_manager server;
        (* per-shard lock-table structural invariants *)
        (try Cc.Lock_table.check_invariants (Core.Server.locks server)
         with Failure m -> err "shard %d lock table: %s" k m);
        (* no committed update lost: every page version the shard's
           durable log proves committed must be present (or superseded)
           in that shard's recovered version table.  Skipped while the
           shard is down — its volatile table is empty until the next
           replay. *)
        match redo_logs.(k) with
        | Some log when srv && not (Core.Server.server_down server) ->
            let vt = Core.Server.versions server in
            List.iter
              (fun (page, v) ->
                let cur = Cc.Version_table.current vt page in
                if cur < v then
                  err
                    "durability: committed p%d@v%d lost (shard %d table at \
                     v%d)"
                    page v k cur)
              (Storage.Log_manager.committed_versions log)
        | Some _ | None -> ())
      servers;
    (* cache coherence: no client may cache a version the page's owning
       shard has not installed yet.  Under server-crash plans a client
       can legitimately cache an orphaned pre-crash version (bumped but
       never durable, so absent from the replayed table) — there the
       guarantee is carried by the durability checks against the redo
       logs instead. *)
    if not srv then
      Array.iteri
        (fun cid c ->
          List.iter
            (fun (page, v) ->
              let owner = Shard.Shard_map.shard_of_page map page in
              let vt = Core.Server.versions servers.(owner) in
              let cur = Cc.Version_table.current vt page in
              if v > cur then
                err "client %d caches p%d@v%d ahead of shard %d v%d" cid page
                  v owner cur)
            (Core.Client.cached_versions c))
        clients;
    clients_down :=
      Array.fold_left
        (fun a c -> if Core.Client.crashed c then a + 1 else a)
        0 clients
  in
  match Shard.Shard_sim.run ~audit ~inspect sp with
  | exception e ->
      {
        v_algo = sp.Core.Simulator.algo;
        v_plan = sp.Core.Simulator.fault;
        v_result = None;
        v_errors = [ Printf.sprintf "run raised: %s" (Printexc.to_string e) ];
      }
  | r ->
      (match Cc.History.check audit with
      | Cc.History.Serializable -> ()
      | Cc.History.Cycle xids ->
          err "non-serializable history: cycle through xids [%s]"
            (String.concat "; " (List.map string_of_int xids)));
      if r.Core.Simulator.commits < sp.Core.Simulator.measured_commits then
        err "stuck: %d of %d commits before t=%g" r.Core.Simulator.commits
          sp.Core.Simulator.measured_commits sp.Core.Simulator.max_sim_time;
      (* duplicate-injection bookkeeping: a plan without duplication must
         count zero duplicated messages, and one with it must actually
         duplicate (the no-dup probability over thousands of messages is
         negligible) — an inert injector would silently void every
         at-least-once delivery path this audit exercises *)
      let dup_prob = sp.Core.Simulator.fault.Fault.Plan.dup_prob in
      if dup_prob = 0.0 && r.Core.Simulator.msgs_duplicated > 0 then
        err "duplication: %d messages duplicated under dup_prob = 0"
          r.Core.Simulator.msgs_duplicated;
      if
        dup_prob > 0.0
        && r.Core.Simulator.messages >= 2_000
        && r.Core.Simulator.msgs_duplicated = 0
      then
        err "duplication: dup_prob = %g yet none of %d messages duplicated"
          dup_prob r.Core.Simulator.messages;
      (* every crash is either recovered or still inside its restart
         delay when the simulation stopped *)
      let outstanding =
        r.Core.Simulator.crashes - r.Core.Simulator.recoveries
      in
      if outstanding <> !clients_down then
        err "crash bookkeeping: %d crashes - %d recoveries = %d but %d \
             clients down at end"
          r.Core.Simulator.crashes r.Core.Simulator.recoveries outstanding
          !clients_down;
      if srv then begin
        (* shard crash bookkeeping: the counters aggregate over shards,
           so crashes - recoveries = shards still inside a restart delay *)
        let s_out =
          r.Core.Simulator.server_crashes - r.Core.Simulator.server_recoveries
        in
        if s_out <> !shards_down_at_end then
          err
            "server crash bookkeeping: %d crashes - %d recoveries but %d \
             shard(s) down at end"
            r.Core.Simulator.server_crashes r.Core.Simulator.server_recoveries
            !shards_down_at_end;
        (* the durability audit proper: walk every acknowledged commit in
           the history against the durable redo logs, each write checked
           on the shard that owns its page *)
        if Array.for_all Option.is_none redo_logs then
          err "durability: server-crash plan ran without a redo log"
        else begin
          let log_of_page p =
            redo_logs.(Shard.Shard_map.shard_of_page map p)
          in
          let pair_set = Hashtbl.create 1024 in
          Array.iter
            (function
              | Some log ->
                  List.iter
                    (fun pv -> Hashtbl.replace pair_set pv ())
                    (Storage.Log_manager.durable_committed_pairs log)
              | None -> ())
            redo_logs;
          List.iter
            (fun (cr : Cc.History.commit_record) ->
              (* no acknowledged update may be lost: the client saw ok,
                 so every participant's slice of the commit is durable *)
              List.iter
                (fun (p, v) ->
                  match log_of_page p with
                  | None -> err "durability: page %d owned by a logless shard" p
                  | Some log -> (
                      match
                        Storage.Log_manager.durable_commit_updates log
                          ~xid:cr.Cc.History.xid
                      with
                      | None ->
                          err
                            "durability: acknowledged commit x%d has no \
                             durable commit record on shard %d"
                            cr.Cc.History.xid
                            (Shard.Shard_map.shard_of_page map p)
                      | Some ups ->
                          if not (List.mem (p, v) ups) then
                            err
                              "durability: acknowledged write p%d@v%d of \
                               x%d missing from durable log"
                              p v cr.Cc.History.xid))
                cr.Cc.History.writes;
              (* no uncommitted update may be visible: every version a
                 committed transaction read was durably committed by its
                 writer (group commit guarantees the writer's records
                 were forced no later than this reader's) *)
              List.iter
                (fun (p, v) ->
                  if v > 0 && not (Hashtbl.mem pair_set (p, v)) then
                    err
                      "durability: x%d committed after reading \
                       uncommitted p%d@v%d"
                      cr.Cc.History.xid p v)
                cr.Cc.History.reads)
            (Cc.History.commits audit)
        end;
        (* cross-shard atomicity: presumed abort means an aborted
           transaction may be absent from every log, but no shard may
           durably commit a transaction another shard durably aborted *)
        if n_shards > 1 then begin
          let outcomes = Hashtbl.create 256 in
          Array.iteri
            (fun k -> function
              | Some log ->
                  List.iter
                    (fun (xid, committed) ->
                      let prev =
                        Option.value
                          (Hashtbl.find_opt outcomes xid)
                          ~default:[]
                      in
                      Hashtbl.replace outcomes xid ((committed, k) :: prev))
                    (Storage.Log_manager.durable_outcomes log)
              | None -> ())
            redo_logs;
          Hashtbl.iter
            (fun xid l ->
              let shards_where b =
                List.filter_map
                  (fun (c, k) -> if c = b then Some (string_of_int k) else None)
                  l
              in
              let committed = shards_where true
              and aborted = shards_where false in
              if committed <> [] && aborted <> [] then
                err
                  "atomicity: x%d durably committed on shard(s) [%s] but \
                   durably aborted on [%s]"
                  xid
                  (String.concat ";" committed)
                  (String.concat ";" aborted))
            outcomes
        end
      end;
      {
        v_algo = sp.Core.Simulator.algo;
        v_plan = sp.Core.Simulator.fault;
        v_result = Some r;
        v_errors = List.rev !errors;
      }

(* Greedy plan shrinking: while some simpler candidate plan still fails
   the audit, descend into it.  The returned plan is locally minimal —
   every further simplification passes. *)
let shrink ?(max_steps = 32) (sp : Core.Simulator.spec) =
  let failing p =
    not (ok (audit_run { sp with Core.Simulator.fault = p }))
  in
  let rec go steps plan =
    if steps = 0 then plan
    else
      match List.find_opt failing (Fault.Plan.shrink_candidates plan) with
      | Some simpler -> go (steps - 1) simpler
      | None -> plan
  in
  go max_steps sp.Core.Simulator.fault

(* Re-run a failing spec with a recorder installed in this domain and dump
   the merged trace.  The recorder is installed directly (not via the
   spec's [obs] config) so a run that raises mid-flight still yields its
   partial trace; the ring keeps the LAST [limit] events — the tail that
   actually led up to the failure. *)
let write_repro_trace ?(limit = 200_000) ~file (sp : Core.Simulator.spec) =
  let (((((), causal), spans), metrics), rec_) =
    Obs.Recorder.with_recorder ~limit (fun () ->
        Obs.Metrics.with_metrics (fun () ->
            Obs.Span.with_spans ~limit (fun () ->
                Obs.Causal.with_causal ~limit (fun () ->
                    try ignore (Shard.Shard_sim.run sp) with _ -> ()))))
  in
  let tagged = Array.map (fun e -> (0, e)) (Obs.Recorder.entries rec_) in
  Obs.Export.write_file file (Obs.Export.trace_text tagged);
  (* the snapshot rides along: what each phase was doing, the counter
     state, and the causal DAG of every message, at the moment the audit
     failure fired *)
  let base = Filename.remove_extension file in
  let span_tagged = Array.map (fun e -> (0, e)) (Obs.Span.entries spans) in
  Obs.Export.write_file (base ^ ".spans") (Obs.Export.span_text span_tagged);
  Obs.Export.write_file (base ^ ".metrics") (Obs.Metrics.to_openmetrics metrics);
  Obs.Export.write_file (base ^ ".dag")
    (Obs.Export.dag_text
       (Array.map (fun e -> (0, e)) (Obs.Causal.entries causal)));
  (Array.length tagged, Array.length span_tagged)

let sweep ?(jobs = 1) specs =
  if jobs > 1 then Sim.Pool.map ~jobs audit_run specs
  else List.map audit_run specs

let pp_verdict fmt v =
  let name = Core.Proto.algorithm_name v.v_algo in
  match v.v_errors with
  | [] ->
      let r = Option.get v.v_result in
      Format.fprintf fmt
        "ok   %-14s seed=%-6d commits=%d aborts=%d retries=%d crashes=%d \
         recovered=%d dropped=%d"
        name v.v_plan.Fault.Plan.seed r.Core.Simulator.commits
        r.Core.Simulator.aborts r.Core.Simulator.retries
        r.Core.Simulator.crashes r.Core.Simulator.recoveries
        r.Core.Simulator.msgs_dropped;
      if r.Core.Simulator.server_crashes > 0 then
        Format.fprintf fmt " srv_crashes=%d ckpts=%d down=%.1fs"
          r.Core.Simulator.server_crashes r.Core.Simulator.checkpoints
          r.Core.Simulator.server_downtime
  | errs ->
      Format.fprintf fmt "FAIL %-14s seed=%-6d plan={%s}" name
        v.v_plan.Fault.Plan.seed
        (Fault.Plan.to_string v.v_plan);
      List.iter (fun e -> Format.fprintf fmt "@\n       - %s" e) errs
