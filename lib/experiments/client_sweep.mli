(** Population-scalability sweep (`ccsim exp client-sweep`).

    Runs the Table 5 workload at growing client populations with a fixed
    commit target and MPL, timing the simulator itself: because the
    simulated work per cell is roughly constant, engine events per
    wall-clock second should stay flat as the population grows — any
    super-linear wall-clock growth exposes a per-client cost in a
    per-event hot path.  Reported per cell: engine events, wall-clock,
    events/sec, and the event-heap high-water mark (the space analogue).

    Not a paper figure: excluded from [Suite.all] so `exp all` never pays
    for a 100k-client run implicitly. *)

type cell = {
  sw_clients : int;
  sw_algo : string;
  sw_commits : int;
  sw_events : int;  (** engine events executed, warmup included *)
  sw_wall_s : float;
  sw_heap_hwm : int;  (** event-heap high-water mark *)
}

val events_per_sec : cell -> float

(** Populations swept: [quick] is the seconds-scale CI set, full reaches
    100k clients. *)
val populations : quick:bool -> int list

(** Cells run sequentially (never pooled, never cached) so each cell's
    wall-clock is unpolluted; [progress] fires after each cell. *)
val run :
  ?progress:(cell -> unit) -> quick:bool -> seed:int -> unit -> cell list

val print : Format.formatter -> cell list -> unit

(** RFC-4180 rows, header first. *)
val csv : cell list -> string list
