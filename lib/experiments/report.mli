(** Rendering of experiment outputs as the paper-style tables the bench
    harness prints, plus CSV for external plotting. *)

(** Print one figure as a table: one row per x value, one column per
    algorithm.  [detail] adds abort/hit/message columns. *)
val print_figure : ?detail:bool -> Format.formatter -> Exp_defs.figure -> unit

(** Print the Figure 13 winner grid. *)
val print_decision_map : Format.formatter -> Suite.decision_map -> unit

val print_output : ?detail:bool -> Format.formatter -> Suite.output -> unit

(** Quote one CSV field per RFC 4180: fields containing commas, quotes,
    or newlines are wrapped in double quotes with internal quotes
    doubled; anything else is returned unchanged. *)
val csv_field : string -> string

(** CSV lines for a figure: header then
    [fig_id,metric,x,label,value,aborts,hit_ratio,msgs_per_commit].
    Free-text fields are escaped with {!csv_field}. *)
val figure_csv : Exp_defs.figure -> string list

(** [repro_line ~seed ~jobs] is a ["# repro: seed=… jobs=… git=…"]
    provenance comment ([git describe --always --dirty], or "unknown"
    outside a git checkout). *)
val repro_line : seed:int -> jobs:int -> string

(** [write_gnuplot ~dir fig] writes [<id>.dat] (x column plus one column
    per series) and a ready-to-run [<id>.gp] script into [dir] (created if
    missing).  Returns the script path. *)
val write_gnuplot : dir:string -> Exp_defs.figure -> string
