(** Rendering of experiment outputs as the paper-style tables the bench
    harness prints, plus CSV for external plotting. *)

(** Print one figure as a table: one row per x value, one column per
    algorithm.  Every cell carries its 95 % replication confidence
    half-width ("3.912 ±0.135"; "±n/a" at [reps = 1], where no interval
    exists), and a figure whose cells have intervals gets a pooled
    relative-half-width footer.  [detail] adds abort/hit/message
    columns. *)
val print_figure : ?detail:bool -> Format.formatter -> Exp_defs.figure -> unit

(** The 95 % CI of every cell of the figure, in series-then-point order. *)
val figure_cis : Exp_defs.figure -> Obs.Run_stats.ci list

(** Print the Figure 13 winner grid. *)
val print_decision_map : Format.formatter -> Suite.decision_map -> unit

val print_output : ?detail:bool -> Format.formatter -> Suite.output -> unit

(** Quote one CSV field per RFC 4180: fields containing commas, quotes,
    or newlines are wrapped in double quotes with internal quotes
    doubled; anything else is returned unchanged. *)
val csv_field : string -> string

(** CSV lines for a figure: header then
    [fig_id,metric,x,label,value,ci_lo,ci_hi,aborts,hit_ratio,msgs_per_commit].
    [ci_lo]/[ci_hi] are the 95 % replication interval endpoints, empty
    when no interval exists ([reps = 1]).  Free-text fields are escaped
    with {!csv_field}. *)
val figure_csv : Exp_defs.figure -> string list

(** [repro_line ~seed ~jobs] is a
    ["# repro: seed=… jobs=… git=… ocaml=… host=…"] provenance comment
    ([git describe --always --dirty], or "unknown" outside a git
    checkout; hostname from the kernel or [$HOSTNAME]).  Also the
    provenance header of benchmark telemetry snapshots
    ({!Telemetry}). *)
val repro_line : seed:int -> jobs:int -> string

(** The hostname {!repro_line} reports ("unknown" when undiscoverable). *)
val hostname : unit -> string

(** [git describe --always --dirty], or "unknown" outside a checkout. *)
val git_describe : unit -> string

(** [write_gnuplot ~dir fig] writes [<id>.dat] (x column plus one column
    per series) and a ready-to-run [<id>.gp] script into [dir] (created if
    missing).  Returns the script path. *)
val write_gnuplot : dir:string -> Exp_defs.figure -> string
