(** Rendering of experiment outputs as the paper-style tables the bench
    harness prints, plus CSV for external plotting. *)

(** Print one figure as a table: one row per x value, one column per
    algorithm.  [detail] adds abort/hit/message columns. *)
val print_figure : ?detail:bool -> Format.formatter -> Exp_defs.figure -> unit

(** Print the Figure 13 winner grid. *)
val print_decision_map : Format.formatter -> Suite.decision_map -> unit

val print_output : ?detail:bool -> Format.formatter -> Suite.output -> unit

(** CSV lines for a figure: header then
    [fig_id,metric,x,label,value,aborts,hit_ratio,msgs_per_commit]. *)
val figure_csv : Exp_defs.figure -> string list

(** [write_gnuplot ~dir fig] writes [<id>.dat] (x column plus one column
    per series) and a ready-to-run [<id>.gp] script into [dir] (created if
    missing).  Returns the script path. *)
val write_gnuplot : dir:string -> Exp_defs.figure -> string
