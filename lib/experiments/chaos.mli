(** Seeded chaos-audit harness.

    A chaos run executes one simulation under a deterministic
    {!Fault.Plan} and audits the whole execution:

    - the committed history must be serializable ({!Cc.History.check});
    - the server lock table must satisfy its structural invariants;
    - no client cache may hold a version ahead of the server;
    - the run must reach its commit target (liveness under faults);
    - every crash must be recovered, or the client must still be inside
      its restart delay when the simulation stops.

    Verdicts are pure functions of the spec, so sweeps over many seeded
    plans parallelize across a {!Sim.Pool} with identical output at any
    job count, and a failing plan can be shrunk to a locally minimal
    reproducer. *)

type verdict = {
  v_algo : Core.Proto.algorithm;
  v_plan : Fault.Plan.t;
  v_result : Core.Simulator.result option;
      (** [None] only when the run itself raised *)
  v_errors : string list;  (** empty means every audit passed *)
}

val ok : verdict -> bool

(** The five algorithms the chaos suite exercises: 2PL, certification,
    callback locking, and no-wait with and without update propagation. *)
val default_algos : Core.Proto.algorithm list

(** [spec ~fault algo] is a small Table-5 configuration suited to chaos
    auditing: no warmup reset (availability counters cover the whole
    run) and simulation seed tied to the plan seed, so one integer
    reproduces the run.  [n_shards > 1] partitions the run across shard
    servers with 2PC cross-shard commits; the audit then additionally
    checks per-shard durability against each shard's own redo log and
    cross-shard atomicity (no transaction durably committed on one shard
    and durably aborted on another). *)
val spec :
  ?n_clients:int ->
  ?n_shards:int ->
  ?measured_commits:int ->
  ?max_sim_time:float ->
  ?hot:bool ->
  fault:Fault.Plan.t ->
  Core.Proto.algorithm ->
  Core.Simulator.spec

(** Run one spec under full audit. *)
val audit_run : Core.Simulator.spec -> verdict

(** [shrink spec] assumes [spec] fails its audit and greedily searches
    {!Fault.Plan.shrink_candidates} for a simpler plan that still fails,
    returning a locally minimal failing plan (every further
    simplification passes). *)
val shrink : ?max_steps:int -> Core.Simulator.spec -> Fault.Plan.t

(** [write_repro_trace ~file sp] re-runs [sp] with a trace recorder,
    span buffer, causal buffer, and metrics registry installed and
    writes the plain-text event trace to [file] plus a span snapshot
    ([<base>.spans]), an OpenMetrics counter snapshot
    ([<base>.metrics]), and the causal message record ([<base>.dag])
    next to it, even when the run raises mid-flight
    (the partial records up to the failure are kept — each ring holds
    the last [limit] entries).  Returns [(n_events, n_spans)] written.
    Used by the chaos command to dump the minimal reproducer's
    artifacts on audit failure. *)
val write_repro_trace :
  ?limit:int -> file:string -> Core.Simulator.spec -> int * int

(** Audit many specs, optionally across a domain pool; verdict order
    matches spec order regardless of [jobs]. *)
val sweep : ?jobs:int -> Core.Simulator.spec list -> verdict list

val pp_verdict : Format.formatter -> verdict -> unit
