(** Online statistics accumulators for simulation measurements. *)

(** {1 Sample statistics (Welford)} *)

type t

(** A fresh, empty accumulator. *)
val create : unit -> t

(** Record one observation. *)
val add : t -> float -> unit

val count : t -> int
val total : t -> float

(** Arithmetic mean ([0.0] when empty). *)
val mean : t -> float

(** Unbiased sample variance ([0.0] with fewer than two observations). *)
val variance : t -> float

(** Square root of {!variance}. *)
val stddev : t -> float

val min_value : t -> float
val max_value : t -> float

(** Drop all observations. *)
val reset : t -> unit

(** [merge a b] is a fresh accumulator equivalent to observing both
    streams. *)
val merge : t -> t -> t

(** {1 Counters} *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
end

(** {1 Sample sets with exact quantiles}

    Stores observations (up to a capacity, default 1_000_000) and computes
    exact order statistics — fine at simulation scale, where a measurement
    window holds a few thousand response times. *)

module Samples : sig
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [quantile t q] with [q] in [0, 1]; [0.0] when empty.  Linear
      interpolation between order statistics. *)
  val quantile : t -> float -> float

  val reset : t -> unit

  (** [merge a b] is a fresh sample set holding both inputs' observations
      (capacities add), so pooled quantiles are exact — used to combine
      replications. *)
  val merge : t -> t -> t
end
