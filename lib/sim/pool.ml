let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let map ?jobs f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if n = 0 then []
  else if jobs = 1 then Array.to_list (Array.map f items)
  else begin
    (* Work stealing via a shared index: each worker repeatedly claims the
       next unclaimed item, so an uneven grid (one 200-client cell among
       many 2-client cells) still load-balances.  Every slot is written by
       exactly one domain and read only after the joins. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some (try Ok (f items.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list results
    |> List.map (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
  end
