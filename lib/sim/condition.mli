(** Condition variables for simulation processes.

    A condition is a FIFO queue of blocked processes.  Unlike OS condition
    variables there is no associated mutex — the simulation is cooperatively
    scheduled, so state updates between suspension points are atomic. *)

type t

(** [create eng] is a condition with no waiters. *)
val create : Engine.t -> t

(** Number of processes currently blocked. *)
val waiters : t -> int

(** Block the calling process until signalled. *)
val await : t -> unit

(** Wake the longest-waiting process, if any.  Returns [true] if one was
    woken. *)
val signal : t -> bool

(** Wake every waiting process (in FIFO order).  Returns how many. *)
val broadcast : t -> int
