open Effect
open Effect.Deep

type _ Effect.t += Hold : float -> unit Effect.t
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

exception Process_exit

(* [owner] attributes the event to the process (by spawn name) whose
   execution scheduled it: continuations keep their process's name, plain
   [schedule] callbacks and anonymous spawns inherit the scheduler's.
   Costs one immediate field per event; the per-name table below is only
   touched when profiling is on. *)
type event = { time : float; seq : int; owner : string; run : unit -> unit }

type pstat = {
  mutable p_runs : int;
  mutable p_holds : int;
  mutable p_hold_time : float;
}

type process_profile = {
  pp_name : string;
  pp_runs : int;
  pp_holds : int;
  pp_hold_time : float;
}

type profile = {
  pr_events : int;
  pr_spawned : int;
  pr_holds : int;
  pr_wakes : int;
  pr_heap_hwm : int;
  pr_per_process : process_profile list;
}

type t = {
  heap : event Heap.t;
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  mutable spawned : int;
  mutable stopping : bool;
  mutable holds : int;
  mutable wakes : int;
  mutable heap_hwm : int;
  mutable profiling : bool;
  mutable current : string;  (* owner of the event being executed *)
  pstats : (string, pstat) Hashtbl.t;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~cmp:compare_event;
    clock = 0.0;
    seq = 0;
    executed = 0;
    spawned = 0;
    stopping = false;
    holds = 0;
    wakes = 0;
    heap_hwm = 0;
    profiling = false;
    current = "";
    pstats = Hashtbl.create 32;
  }

let now t = t.clock
let events_executed t = t.executed
let processes_spawned t = t.spawned

let enable_profiling t = t.profiling <- true

let pstat t name =
  match Hashtbl.find_opt t.pstats name with
  | Some p -> p
  | None ->
      let p = { p_runs = 0; p_holds = 0; p_hold_time = 0.0 } in
      Hashtbl.add t.pstats name p;
      p

let profile t =
  let per =
    Hashtbl.fold
      (fun name p acc ->
        {
          pp_name = (if name = "" then "(anonymous)" else name);
          pp_runs = p.p_runs;
          pp_holds = p.p_holds;
          pp_hold_time = p.p_hold_time;
        }
        :: acc)
      t.pstats []
    |> List.sort (fun a b ->
           let c = Int.compare b.pp_runs a.pp_runs in
           if c <> 0 then c else String.compare a.pp_name b.pp_name)
  in
  {
    pr_events = t.executed;
    pr_spawned = t.spawned;
    pr_holds = t.holds;
    pr_wakes = t.wakes;
    pr_heap_hwm = t.heap_hwm;
    pr_per_process = per;
  }

let schedule_owned t ~owner ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g is before now=%g" at t.clock);
  t.seq <- t.seq + 1;
  Heap.add t.heap { time = at; seq = t.seq; owner; run = fn };
  let s = Heap.size t.heap in
  if s > t.heap_hwm then t.heap_hwm <- s

let schedule t ~at fn = schedule_owned t ~owner:t.current ~at fn

(* The handler is deep, so it stays installed across every resumption of the
   process: [Hold] reschedules the continuation later in time and [Suspend]
   hands a one-shot resumer to user code (conditions, mailboxes, ...).
   Both effects are handled synchronously during the process's event, so
   [t.current] is the performing process and names its continuations. *)
let spawn t ?at ?name body =
  let at = Option.value at ~default:t.clock in
  t.spawned <- t.spawned + 1;
  let owner = match name with Some n -> n | None -> t.current in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (function Process_exit -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Hold d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0.0 then
                    discontinue k (Invalid_argument "Engine.hold: negative")
                  else begin
                    t.holds <- t.holds + 1;
                    let me = t.current in
                    if t.profiling then begin
                      let p = pstat t me in
                      p.p_holds <- p.p_holds + 1;
                      p.p_hold_time <- p.p_hold_time +. d
                    end;
                    schedule_owned t ~owner:me ~at:(t.clock +. d) (fun () ->
                        continue k ())
                  end)
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let me = t.current in
                  let resume () =
                    if !resumed then
                      invalid_arg "Engine: process resumed twice";
                    resumed := true;
                    t.wakes <- t.wakes + 1;
                    schedule_owned t ~owner:me ~at:t.clock (fun () ->
                        continue k ())
                  in
                  register resume)
          | _ -> None);
    }
  in
  schedule_owned t ~owner ~at (fun () -> match_with body () handler)

let run t ?until () =
  let limit = Option.value until ~default:Float.infinity in
  t.stopping <- false;
  let rec loop () =
    if t.stopping then ()
    else
      match Heap.peek t.heap with
      | None -> ()
      | Some ev when ev.time > limit -> t.clock <- limit
      | Some _ -> (
          match Heap.pop t.heap with
          | None -> ()
          | Some ev ->
              t.clock <- ev.time;
              t.executed <- t.executed + 1;
              t.current <- ev.owner;
              if t.profiling then begin
                let p = pstat t ev.owner in
                p.p_runs <- p.p_runs + 1
              end;
              ev.run ();
              loop ())
  in
  loop ();
  t.current <- "";
  t.clock

let stop t = t.stopping <- true
let hold d = perform (Hold d)
let suspend register = perform (Suspend register)
let exit_process () = raise Process_exit
