open Effect
open Effect.Deep

type _ Effect.t += Hold : float -> unit Effect.t
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

exception Process_exit

type event = { time : float; seq : int; run : unit -> unit }

type t = {
  heap : event Heap.t;
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  mutable spawned : int;
  mutable stopping : bool;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    heap = Heap.create ~cmp:compare_event;
    clock = 0.0;
    seq = 0;
    executed = 0;
    spawned = 0;
    stopping = false;
  }

let now t = t.clock
let events_executed t = t.executed
let processes_spawned t = t.spawned

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%g is before now=%g" at t.clock);
  t.seq <- t.seq + 1;
  Heap.add t.heap { time = at; seq = t.seq; run = fn }

(* The handler is deep, so it stays installed across every resumption of the
   process: [Hold] reschedules the continuation later in time and [Suspend]
   hands a one-shot resumer to user code (conditions, mailboxes, ...). *)
let spawn t ?at ?name body =
  ignore name;
  let at = Option.value at ~default:t.clock in
  t.spawned <- t.spawned + 1;
  let handler =
    {
      retc = (fun () -> ());
      exnc = (function Process_exit -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Hold d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0.0 then
                    discontinue k (Invalid_argument "Engine.hold: negative")
                  else schedule t ~at:(t.clock +. d) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Engine: process resumed twice";
                    resumed := true;
                    schedule t ~at:t.clock (fun () -> continue k ())
                  in
                  register resume)
          | _ -> None);
    }
  in
  schedule t ~at (fun () -> match_with body () handler)

let run t ?until () =
  let limit = Option.value until ~default:Float.infinity in
  t.stopping <- false;
  let rec loop () =
    if t.stopping then ()
    else
      match Heap.peek t.heap with
      | None -> ()
      | Some ev when ev.time > limit -> t.clock <- limit
      | Some _ -> (
          match Heap.pop t.heap with
          | None -> ()
          | Some ev ->
              t.clock <- ev.time;
              t.executed <- t.executed + 1;
              ev.run ();
              loop ())
  in
  loop ();
  t.clock

let stop t = t.stopping <- true
let hold d = perform (Hold d)
let suspend register = perform (Suspend register)
let exit_process () = raise Process_exit
