type t = {
  eng : Engine.t;
  fname : string;
  cap : int;
  mutable busy : int;
  waiting : (unit -> unit) Queue.t;
  mutable busy_area : float;
  mutable queue_area : float;
  mutable max_q : int;
  mutable last_stat : float;
  mutable window_start : float;
  mutable done_count : int;
  mutable service_total : float;
}

let create eng ~name ?(capacity = 1) () =
  if capacity < 1 then invalid_arg "Facility.create: capacity < 1";
  {
    eng;
    fname = name;
    cap = capacity;
    busy = 0;
    waiting = Queue.create ();
    busy_area = 0.0;
    queue_area = 0.0;
    max_q = 0;
    last_stat = Engine.now eng;
    window_start = Engine.now eng;
    done_count = 0;
    service_total = 0.0;
  }

let name f = f.fname
let capacity f = f.cap
let in_use f = f.busy
let queue_length f = Queue.length f.waiting

let account f =
  let t = Engine.now f.eng in
  let dt = t -. f.last_stat in
  if dt > 0.0 then begin
    f.busy_area <- f.busy_area +. (float_of_int f.busy *. dt);
    f.queue_area <- f.queue_area +. (float_of_int (Queue.length f.waiting) *. dt)
  end;
  f.last_stat <- t

let request f =
  account f;
  if f.busy < f.cap then f.busy <- f.busy + 1
  else
    Engine.suspend (fun resume ->
        Queue.add resume f.waiting;
        let q = Queue.length f.waiting in
        if q > f.max_q then f.max_q <- q)

let release f =
  account f;
  match Queue.take_opt f.waiting with
  | Some resume ->
      (* The freed unit passes straight to the head of the queue, so [busy]
         is unchanged — this keeps utilization accounting exact. *)
      resume ()
  | None ->
      if f.busy <= 0 then invalid_arg "Facility.release: not in use";
      f.busy <- f.busy - 1

let use f dt =
  request f;
  Engine.hold dt;
  f.done_count <- f.done_count + 1;
  f.service_total <- f.service_total +. dt;
  release f

let elapsed f = Engine.now f.eng -. f.window_start

let utilization f =
  account f;
  let e = elapsed f in
  if e <= 0.0 then 0.0 else f.busy_area /. (e *. float_of_int f.cap)

let mean_queue_length f =
  account f;
  let e = elapsed f in
  if e <= 0.0 then 0.0 else f.queue_area /. e

let max_queue_length f = f.max_q

let busy_time f =
  account f;
  f.busy_area

let completions f = f.done_count
let total_service_time f = f.service_total

let reset_stats f =
  f.busy_area <- 0.0;
  f.queue_area <- 0.0;
  f.max_q <- Queue.length f.waiting;
  f.last_stat <- Engine.now f.eng;
  f.window_start <- Engine.now f.eng;
  f.done_count <- 0;
  f.service_total <- 0.0
