type 'a t = {
  _eng : Engine.t;
  msgs : 'a Queue.t;
  blocked : (unit -> unit) Queue.t;
}

let create eng = { _eng = eng; msgs = Queue.create (); blocked = Queue.create () }
let pending mb = Queue.length mb.msgs

let send mb v =
  Queue.add v mb.msgs;
  match Queue.take_opt mb.blocked with
  | Some resume -> resume ()
  | None -> ()

(* A woken receiver may find the mailbox drained by another receiver that was
   woken first at the same instant, hence the retry loop. *)
let rec recv mb =
  match Queue.take_opt mb.msgs with
  | Some v -> v
  | None ->
      Engine.suspend (fun resume -> Queue.add resume mb.blocked);
      recv mb

let recv_opt mb = Queue.take_opt mb.msgs
