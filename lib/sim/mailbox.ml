type 'a t = {
  eng : Engine.t;
  msgs : 'a Queue.t;
  blocked : (unit -> unit) Queue.t;
}

let create eng = { eng; msgs = Queue.create (); blocked = Queue.create () }
let pending mb = Queue.length mb.msgs

let send mb v =
  Queue.add v mb.msgs;
  match Queue.take_opt mb.blocked with
  | Some resume -> resume ()
  | None -> ()

(* A woken receiver may find the mailbox drained by another receiver that was
   woken first at the same instant, hence the retry loop. *)
let rec recv mb =
  match Queue.take_opt mb.msgs with
  | Some v -> v
  | None ->
      Engine.suspend (fun resume -> Queue.add resume mb.blocked);
      recv mb

let recv_opt mb = Queue.take_opt mb.msgs

(* The timed receive races a wake from [send] against a timer event; a
   shared state cell guarantees exactly one of them resumes the process.
   Queues cannot delete interior entries, so a timed-out waiter leaves its
   closure in [blocked] as a tombstone: when [send] eventually pops it, it
   forwards the wake to the next live waiter instead of dropping it. *)
let recv_timeout mb ~timeout =
  match Queue.take_opt mb.msgs with
  | Some v -> Some v
  | None ->
      let state = ref `Waiting in
      Engine.suspend (fun resume ->
          Queue.add
            (fun () ->
              match !state with
              | `Waiting ->
                  state := `Woken;
                  resume ()
              | `Timed_out | `Woken -> (
                  match Queue.take_opt mb.blocked with
                  | Some next -> next ()
                  | None -> ()))
            mb.blocked;
          Engine.schedule mb.eng
            ~at:(Engine.now mb.eng +. timeout)
            (fun () ->
              match !state with
              | `Waiting ->
                  state := `Timed_out;
                  resume ()
              | `Woken | `Timed_out -> ()));
      (* Either a message arrived (Woken) or the timer fired (Timed_out).
         A woken receiver can still lose the message to a racing plain
         [recv]; report that as an early timeout — callers retry. *)
      Queue.take_opt mb.msgs
