(** FCFS facilities — CSIM-style queueing resources.

    A facility has [capacity] identical service units.  A process acquires
    a unit with {!request} (blocking FCFS if all units are busy), holds it
    for its service time, and gives it back with {!release}.  The common
    pattern is wrapped by {!use}.

    Facilities keep the queueing statistics the paper reports:
    utilization, mean queue length, and throughput. *)

type t

(** [create eng ~name ?capacity ()] is an idle facility ([capacity]
    defaults to 1). *)
val create : Engine.t -> name:string -> ?capacity:int -> unit -> t

val name : t -> string
val capacity : t -> int

(** Units currently held. *)
val in_use : t -> int

(** Processes blocked waiting for a unit. *)
val queue_length : t -> int

(** Acquire one unit, blocking FCFS if none is free. *)
val request : t -> unit

(** Return one unit; the longest-waiting blocked process (if any) inherits
    it without the unit ever appearing free. *)
val release : t -> unit

(** [use f dt] = request, hold [dt], release — one complete service. *)
val use : t -> float -> unit

(** {1 Statistics}

    All statistics cover the window since [create] or the last
    {!reset_stats}. *)

(** Fraction of total unit-time spent busy, in [0, 1]. *)
val utilization : t -> float

(** Time-average number of processes waiting (not in service). *)
val mean_queue_length : t -> float

(** Longest queue observed in the window (convoy high-water mark). *)
val max_queue_length : t -> int

(** Cumulative busy unit-seconds in the window, accounted up to now.
    Successive deltas divided by [interval * capacity] give per-interval
    utilization — what the observability sampler records. *)
val busy_time : t -> float

(** Completed services. *)
val completions : t -> int

(** Total service time delivered across all completions. *)
val total_service_time : t -> float

(** Forget history and start a fresh measurement window now. *)
val reset_stats : t -> unit
