type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { n = 0; mean_acc = 0.0; m2 = 0.0; sum = 0.0; vmin = infinity; vmax = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.vmin then t.vmin <- x;
  if x > t.vmax then t.vmax <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.mean_acc
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then 0.0 else t.vmin
let max_value t = if t.n = 0 then 0.0 else t.vmax

let reset t =
  t.n <- 0;
  t.mean_acc <- 0.0;
  t.m2 <- 0.0;
  t.sum <- 0.0;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean_acc -. a.mean_acc in
    let mean_acc =
      a.mean_acc +. (delta *. float_of_int b.n /. float_of_int n)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean_acc;
      m2;
      sum = a.sum +. b.sum;
      vmin = Float.min a.vmin b.vmin;
      vmax = Float.max a.vmax b.vmax;
    }
  end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr ?(by = 1) t = t.v <- t.v + by
  let value t = t.v
  let reset t = t.v <- 0
end

module Samples = struct
  type t = {
    cap : int;
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create ?(capacity = 1_000_000) () =
    { cap = capacity; data = [||]; len = 0; sorted = true }

  let add t x =
    if t.len < t.cap then begin
      if t.len >= Array.length t.data then begin
        let ncap = max 64 (2 * Array.length t.data) in
        let ndata = Array.make (min ncap t.cap) 0.0 in
        Array.blit t.data 0 ndata 0 t.len;
        t.data <- ndata
      end;
      t.data.(t.len) <- x;
      t.len <- t.len + 1;
      t.sorted <- false
    end

  let count t = t.len

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Samples.quantile: q outside [0,1]";
    if t.len = 0 then 0.0
    else begin
      if not t.sorted then begin
        let sub = Array.sub t.data 0 t.len in
        Array.sort Float.compare sub;
        Array.blit sub 0 t.data 0 t.len;
        t.sorted <- true
      end;
      let pos = q *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = int_of_float (Float.ceil pos) in
      if lo = hi then t.data.(lo)
      else begin
        let w = pos -. float_of_int lo in
        ((1.0 -. w) *. t.data.(lo)) +. (w *. t.data.(hi))
      end
    end

  let reset t =
    t.len <- 0;
    t.sorted <- true

  let merge a b =
    let len = a.len + b.len in
    let data = Array.make (max len 1) 0.0 in
    Array.blit a.data 0 data 0 a.len;
    Array.blit b.data 0 data a.len b.len;
    { cap = a.cap + b.cap; data; len; sorted = false }
end
