(** A fixed-size worker pool over OCaml 5 domains.

    [map] evaluates independent jobs across several domains and returns
    their results in submission order, so callers observe exactly the
    sequential semantics regardless of how work was scheduled.  Built for
    the experiment harness: every simulation owns its engine, RNG, and
    database, so cells of a figure grid (and replications of one cell) are
    embarrassingly parallel.

    Jobs must not share mutable state.  The one process-wide hook the
    simulator has — the trace sink of [Obs.Recorder] — is domain-local,
    so a sink installed in the calling domain never observes
    worker-domain events; traced simulations instead install a recorder
    inside the worker and return the filled buffer by value in their
    result, which is how tracing works at any job count. *)

(** [default_jobs ()] is [Domain.recommended_domain_count () - 1], at
    least 1: one worker per available core, keeping a core free for the
    caller's domain. *)
val default_jobs : unit -> int

(** [map ~jobs f items] evaluates [f] on every item, using up to [jobs]
    domains (the calling domain counts as one), and returns the results in
    the order of [items].  [jobs <= 1] degenerates to [List.map].

    If any job raises, the remaining jobs still run to completion and the
    exception of the lowest-indexed failing item is re-raised in the
    calling domain. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
