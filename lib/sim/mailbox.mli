(** Unbounded FIFO mailboxes between simulation processes.

    [send] never blocks; [recv] blocks until a message is available.
    Multiple receivers are allowed; messages are delivered in FIFO order to
    whichever receiver wins the race (deterministically, in resume order). *)

type 'a t

(** [create eng] is an empty mailbox. *)
val create : Engine.t -> 'a t

(** Messages queued and not yet received. *)
val pending : 'a t -> int

(** Enqueue a message and wake one blocked receiver, if any. *)
val send : 'a t -> 'a -> unit

(** Dequeue the oldest message, blocking if the mailbox is empty. *)
val recv : 'a t -> 'a

(** Dequeue the oldest message if one is available, without blocking. *)
val recv_opt : 'a t -> 'a option

(** [recv_timeout mb ~timeout] blocks like {!recv} but gives up after
    [timeout] simulated seconds, returning [None].  A message that arrives
    at exactly the deadline may be delivered to a later receive instead.
    Timed-out waiters never steal a wake-up: a [send] that lands on one
    passes the wake to the next blocked receiver. *)
val recv_timeout : 'a t -> timeout:float -> 'a option
