type t = { _eng : Engine.t; queue : (unit -> unit) Queue.t }

let create eng = { _eng = eng; queue = Queue.create () }
let waiters c = Queue.length c.queue
let await c = Engine.suspend (fun resume -> Queue.add resume c.queue)

let signal c =
  match Queue.take_opt c.queue with
  | None -> false
  | Some resume ->
      resume ();
      true

let broadcast c =
  let n = Queue.length c.queue in
  for _ = 1 to n do
    (Queue.take c.queue) ()
  done;
  n
