type 'a t = {
  mutable value : 'a option;
  mutable waiters : (unit -> unit) list;
}

let create (_ : Engine.t) = { value = None; waiters = [] }

let try_fill t v =
  match t.value with
  | Some _ -> false
  | None ->
      t.value <- Some v;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun resume -> resume ()) ws;
      true

let fill t v =
  if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let rec read t =
  match t.value with
  | Some v -> v
  | None ->
      Engine.suspend (fun resume -> t.waiters <- resume :: t.waiters);
      read t

let peek t = t.value
let is_filled t = Option.is_some t.value
