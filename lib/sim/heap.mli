(** Array-based binary min-heap.

    Used by the simulation engine as its event queue, but generic: ordering
    is given by the [cmp] function supplied at creation.  All operations are
    O(log n) except [peek] and [size], which are O(1). *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (a total order returning
    a negative value when the first argument has higher priority). *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** Number of elements currently stored. *)
val size : 'a t -> int

(** [is_empty h] is [size h = 0]. *)
val is_empty : 'a t -> bool

(** Insert an element. *)
val add : 'a t -> 'a -> unit

(** Minimum element, if any, without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the minimum element. *)
val pop : 'a t -> 'a option

(** Remove all elements. *)
val clear : 'a t -> unit

(** Elements in no particular order (for tests and diagnostics). *)
val to_list : 'a t -> 'a list
