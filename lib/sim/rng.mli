(** Deterministic pseudo-random streams (splitmix64).

    Every stochastic component of the simulator draws from its own stream so
    that changing one component (say, the workload of client 3) does not
    perturb the randomness seen by any other — the standard variance-reduction
    discipline for simulation studies.  Streams are derived from a master
    seed with [split], which hashes a label into an independent substream. *)

type t

(** [create seed] is a stream seeded with [seed]. *)
val create : int -> t

(** [split t label] is an independent stream derived deterministically from
    [t]'s seed and [label].  Splitting does not advance [t]. *)
val split : t -> string -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** [int t n] is exactly uniform in [0, n-1] for any positive [n] (rejection
    sampling over 63-bit draws; no float round-trip). *)
val int : t -> int -> int

(** [uniform_int t lo hi] is uniform in [lo, hi] inclusive. *)
val uniform_int : t -> int -> int -> int

(** [uniform_float t lo hi] is uniform in [lo, hi). *)
val uniform_float : t -> float -> float -> float

(** [exponential t ~mean] draws from Exp(1/mean); returns 0 when [mean=0]. *)
val exponential : t -> mean:float -> float

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [choose t arr] is a uniformly random element of the non-empty array. *)
val choose : t -> 'a array -> 'a
