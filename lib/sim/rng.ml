type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* FNV-1a over the label, folded into the parent state: cheap, and collisions
   between distinct labels are practically impossible for our label set. *)
let split t label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  { state = mix (Int64.logxor t.state !h) }

let float t =
  (* 53 high-quality bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n land (n - 1) = 0 then
    (* power of two: mask the low bits of one draw *)
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (n - 1)))
  else begin
    let bound = Int64.of_int n in
    let rec draw () =
      let bits = Int64.shift_right_logical (bits64 t) 1 in
      let r = Int64.rem bits bound in
      (* Reject draws from the final partial block of [0, 2^63): [bits - r]
         is the block base, and adding [n - 1] overflows exactly when the
         block extends past 2^63 - 1.  Without this the residues below
         [2^63 mod n] are over-represented — and the previous float-scaling
         implementation additionally zeroed the low bits of results for
         bounds beyond 2^53. *)
      if Int64.add (Int64.sub bits r) (Int64.of_int (n - 1)) < 0L then draw ()
      else Int64.to_int r
    in
    draw ()
  end

let uniform_int t lo hi =
  if hi < lo then invalid_arg "Rng.uniform_int: hi < lo";
  lo + int t (hi - lo + 1)

let uniform_float t lo hi = lo +. (float t *. (hi -. lo))

let exponential t ~mean =
  if mean < 0.0 then invalid_arg "Rng.exponential: negative mean";
  if mean = 0.0 then 0.0 else -.mean *. log (1.0 -. float t)

let bernoulli t p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
