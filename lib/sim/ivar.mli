(** Single-assignment synchronization cells.

    An ivar starts empty; [fill] writes the value exactly once and wakes all
    blocked readers.  Readers that arrive later return immediately.  This is
    the primitive used for request/reply rendezvous where the reply may come
    from either of two places (e.g. a lock grant or a deadlock abort). *)

type 'a t

val create : Engine.t -> 'a t

(** [fill t v] sets the value and wakes readers.  Raises [Invalid_argument]
    if already filled. *)
val fill : 'a t -> 'a -> unit

(** [try_fill t v] is like [fill] but returns [false] instead of raising. *)
val try_fill : 'a t -> 'a -> bool

(** Block until filled, then return the value. *)
val read : 'a t -> 'a

val peek : 'a t -> 'a option
val is_filled : 'a t -> bool
