(** Process-oriented discrete-event simulation engine.

    This is the substrate the paper built with CSIM: sequential processes
    that advance a shared simulated clock by holding for amounts of time,
    blocking on resources, and exchanging messages.  Processes are ordinary
    OCaml functions run under an effect handler; [hold] and [suspend] are
    the only two primitive effects, and everything else (conditions,
    mailboxes, facilities) is built on top of them.

    The simulation is single-threaded and deterministic: events scheduled
    at equal times fire in scheduling (FIFO) order. *)

type t

(** [create ()] is a fresh engine with clock at time [0.0]. *)
val create : unit -> t

(** Current simulated time. *)
val now : t -> float

(** Total number of events executed so far (diagnostics). *)
val events_executed : t -> int

(** Number of processes spawned so far (diagnostics). *)
val processes_spawned : t -> int

(** [spawn t ?at ?name body] creates a process executing [body] starting at
    time [at] (default: now).  Exceptions escaping [body] abort the whole
    simulation run: they propagate out of {!run}. *)
val spawn : t -> ?at:float -> ?name:string -> (unit -> unit) -> unit

(** [schedule t ~at fn] runs the plain callback [fn] at time [at].  The
    callback must not perform process effects; use {!spawn} for that. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [run t ?until ()] executes events in time order until the event queue
    drains, [stop] is called, or the clock would pass [until] (in which case
    the clock is left at [until] and remaining events stay queued).
    Returns the time at which execution stopped. *)
val run : t -> ?until:float -> unit -> float

(** Request that [run] return after the current event completes. *)
val stop : t -> unit

(** {1 Process effects}

    These may only be called from inside a process body spawned with
    {!spawn} (they perform effects handled by the engine). *)

(** Advance this process's local view of time by [dt] simulated seconds.
    [dt] must be non-negative. *)
val hold : float -> unit

(** [suspend register] blocks the calling process.  [register] is called
    immediately with a [resume] function; stash it somewhere and call it
    (at most once) to reschedule the process at the then-current simulated
    time.  Calling [resume] twice raises [Invalid_argument]. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** Terminate the calling process immediately. *)
val exit_process : unit -> 'a
