(** Process-oriented discrete-event simulation engine.

    This is the substrate the paper built with CSIM: sequential processes
    that advance a shared simulated clock by holding for amounts of time,
    blocking on resources, and exchanging messages.  Processes are ordinary
    OCaml functions run under an effect handler; [hold] and [suspend] are
    the only two primitive effects, and everything else (conditions,
    mailboxes, facilities) is built on top of them.

    The simulation is single-threaded and deterministic: events scheduled
    at equal times fire in scheduling (FIFO) order. *)

type t

(** [create ()] is a fresh engine with clock at time [0.0]. *)
val create : unit -> t

(** Current simulated time. *)
val now : t -> float

(** Total number of events executed so far (diagnostics). *)
val events_executed : t -> int

(** Number of processes spawned so far (diagnostics). *)
val processes_spawned : t -> int

(** {1 Profiling}

    The engine always keeps its cheap global counters (events, spawns,
    holds, wakes, event-heap high-water mark).  {!enable_profiling}
    additionally attributes every executed event to the process that
    scheduled it — by the [?name] given at {!spawn}; unnamed processes
    inherit the name of the process whose execution spawned them — which
    is how the simulator's hot paths are located before optimizing them.
    Profiling never changes scheduling order; it only fills a counter
    table. *)

type process_profile = {
  pp_name : string;
  pp_runs : int;  (** events executed on behalf of this process name *)
  pp_holds : int;
  pp_hold_time : float;  (** total simulated seconds held *)
}

type profile = {
  pr_events : int;
  pr_spawned : int;
  pr_holds : int;
  pr_wakes : int;  (** suspend-resume completions *)
  pr_heap_hwm : int;  (** event-heap high-water mark *)
  pr_per_process : process_profile list;
      (** sorted by [pp_runs] descending then name; empty unless
          {!enable_profiling} was called before the run *)
}

(** Turn on per-process attribution (call before {!run}). *)
val enable_profiling : t -> unit

val profile : t -> profile

(** [spawn t ?at ?name body] creates a process executing [body] starting at
    time [at] (default: now).  Exceptions escaping [body] abort the whole
    simulation run: they propagate out of {!run}. *)
val spawn : t -> ?at:float -> ?name:string -> (unit -> unit) -> unit

(** [schedule t ~at fn] runs the plain callback [fn] at time [at].  The
    callback must not perform process effects; use {!spawn} for that. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [run t ?until ()] executes events in time order until the event queue
    drains, [stop] is called, or the clock would pass [until] (in which case
    the clock is left at [until] and remaining events stay queued).
    Returns the time at which execution stopped. *)
val run : t -> ?until:float -> unit -> float

(** Request that [run] return after the current event completes. *)
val stop : t -> unit

(** {1 Process effects}

    These may only be called from inside a process body spawned with
    {!spawn} (they perform effects handled by the engine). *)

(** Advance this process's local view of time by [dt] simulated seconds.
    [dt] must be non-negative. *)
val hold : float -> unit

(** [suspend register] blocks the calling process.  [register] is called
    immediately with a [resume] function; stash it somewhere and call it
    (at most once) to reschedule the process at the then-current simulated
    time.  Calling [resume] twice raises [Invalid_argument]. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** Terminate the calling process immediately. *)
val exit_process : unit -> 'a
