(** Per-domain trace recorder: an allocation-light ring/chunk buffer of
    typed {!Event.t} values keyed by [(sim_time, seq)].

    The recorder replaces the old "string sink that only works at [-j 1]"
    model: {!Core.Simulator} installs a fresh recorder in whatever domain
    runs the simulation — the caller's or a {!Sim.Pool} worker's — and the
    filled buffer returns to the caller by value inside the run's result,
    so traces from parallel runs merge deterministically afterwards.

    The sink slot is domain-local.  Within one domain there is exactly one
    active target at a time: either a recorder buffer or a legacy callback
    installed with {!set_sink}; {!with_recorder} and the simulator
    save/restore around each run, so a caller-installed sink is back in
    place when the run completes. *)

(** One recorded event.  [seq] is the recorder-local emission index, so
    [(time, seq)] totally orders a buffer even among equal timestamps. *)
type entry = { time : float; seq : int; ev : Event.t }

type t

val default_limit : int

(** [create ?limit ()] is an empty recorder holding at most [limit]
    entries (default {!default_limit}).  Past the limit the buffer wraps:
    the oldest entries are overwritten and counted in {!dropped}. *)
val create : ?limit:int -> unit -> t

(** Entries currently held. *)
val length : t -> int

(** Entries overwritten after the buffer wrapped. *)
val dropped : t -> int

(** Append one event at simulated time [time]. *)
val add : t -> time:float -> Event.t -> unit

(** Held entries in emission order (ascending [seq]). *)
val entries : t -> entry array

val iter : t -> (entry -> unit) -> unit

(** {1 The domain-local sink}

    One slot per domain; {!emit} dispatches to whatever this domain
    installed, and is a no-op when the slot is empty. *)

(** Install a legacy callback sink in this domain. *)
val set_sink : (float -> Event.t -> unit) -> unit

(** Empty this domain's slot. *)
val clear_sink : unit -> unit

(** Install [t] as this domain's recording target. *)
val install : t -> unit

(** Is any target installed in this domain? *)
val active : unit -> bool

(** Emit an event to this domain's target (no-op when none). *)
val emit : float -> Event.t -> unit

(** Opaque snapshot of the slot, for save/restore around a run. *)
type saved

val save : unit -> saved
val restore : saved -> unit

(** [with_recorder f] installs a fresh recorder, runs [f], restores the
    previously installed target (even if [f] raises), and returns [f]'s
    value with the filled recorder. *)
val with_recorder : ?limit:int -> (unit -> 'a) -> 'a * t
