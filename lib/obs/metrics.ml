(* An online metrics registry: log-bucketed histograms with O(1) record
   and exact merge, plus counters and gauges, exported as OpenMetrics
   text.

   Histogram buckets are integer counts, so merging is element-wise
   integer addition — exactly associative and commutative, which is what
   makes per-replication registries recorded in different domains
   mergeable into one deterministic artifact regardless of [-j].

   The domain-local sink slot mirrors {!Recorder}: a registry installed
   around [Sim.Engine.run] collects that run's samples and returns by
   value inside the run's payload. *)

(* ------------------------------------------------------------------ *)
(* Log-bucketed histogram                                              *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  (* [sub] sub-buckets per octave gives a relative bucket width of
     2^(1/sub) - 1 ≈ 4.4%.  Octaves cover 2^-41 .. 2^41 (~5e-13 s to
     ~2e12 s when values are seconds); bucket 0 holds zero/negative and
     underflow, the last bucket holds overflow. *)
  let sub = 16
  let min_exp = -40 (* smallest frexp exponent with its own octave *)
  let max_exp = 41
  let n_octaves = max_exp - min_exp + 1
  let n_buckets = (n_octaves * sub) + 2

  type t = { counts : int array; mutable total : int; mutable sum : float }

  let create () = { counts = Array.make n_buckets 0; total = 0; sum = 0.0 }

  let bucket_of v =
    if not (v > 0.0) then 0
    else begin
      let m, e = Float.frexp v in
      (* m in [0.5, 1) *)
      if e < min_exp then 0
      else if e > max_exp then n_buckets - 1
      else
        let s = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub) in
        let s = if s >= sub then sub - 1 else if s < 0 then 0 else s in
        (((e - min_exp) * sub) + s) + 1
    end

  (* [lower, upper) value range of a bucket; bucket 0 is (-inf, 2^(min_exp-1)),
     the overflow bucket is [2^max_exp, inf). *)
  let bucket_bounds i =
    if i <= 0 then (neg_infinity, Float.ldexp 1.0 (min_exp - 1))
    else if i >= n_buckets - 1 then (Float.ldexp 1.0 max_exp, infinity)
    else
      let o = ((i - 1) / sub) + min_exp and s = (i - 1) mod sub in
      ( Float.ldexp (0.5 +. (float_of_int s /. float_of_int (2 * sub))) o,
        Float.ldexp (0.5 +. (float_of_int (s + 1) /. float_of_int (2 * sub))) o
      )

  let record t v =
    let i = bucket_of v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v

  let count t = t.total
  let sum t = t.sum

  (* Nearest-rank quantile estimate: the upper bound of the bucket that
     holds the rank-⌈q·n⌉ observation.  The true observation lies inside
     that bucket, so the absolute error is at most one bucket width. *)
  let quantile t q =
    if t.total = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
      let rec walk i cum =
        if i >= n_buckets then fst (bucket_bounds (n_buckets - 1))
        else
          let cum = cum + t.counts.(i) in
          if cum >= rank then
            if i = 0 then 0.0
            else if i = n_buckets - 1 then fst (bucket_bounds i)
            else snd (bucket_bounds i)
          else walk (i + 1) cum
      in
      walk 0 0
    end

  (* Exact on bucket counts; [sum] is float addition in argument order
     (deterministic for a fixed merge order, e.g. seed order). *)
  let merge a b =
    let t = create () in
    for i = 0 to n_buckets - 1 do
      t.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    t.total <- a.total + b.total;
    t.sum <- a.sum +. b.sum;
    t

  (* Structural equality of the integer state (counts); [sum] is excluded
     because float addition is not associative. *)
  let equal a b = a.total = b.total && a.counts = b.counts

  let copy t = { counts = Array.copy t.counts; total = t.total; sum = t.sum }
  let counts t = t.counts
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type value = Counter of int | Gauge of float | Histogram of Hist.t
type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let incr t name n =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> Hashtbl.replace t.tbl name (Counter (c + n))
  | Some _ -> invalid_arg ("Obs.Metrics.incr: " ^ name ^ " is not a counter")
  | None -> Hashtbl.replace t.tbl name (Counter n)

let set_gauge t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge _) | None -> Hashtbl.replace t.tbl name (Gauge v)
  | Some _ -> invalid_arg ("Obs.Metrics.set_gauge: " ^ name ^ " is not a gauge")

let observe t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> Hist.record h v
  | Some _ -> invalid_arg ("Obs.Metrics.observe: " ^ name ^ " is not a histogram")
  | None ->
      let h = Hist.create () in
      Hist.record h v;
      Hashtbl.replace t.tbl name (Histogram h)

let find t name = Hashtbl.find_opt t.tbl name

let counter_value t name =
  match find t name with Some (Counter c) -> Some c | _ -> None

let gauge_value t name =
  match find t name with Some (Gauge g) -> Some g | _ -> None

let histogram t name =
  match find t name with Some (Histogram h) -> Some h | _ -> None

(* Sorted by series name: the export (and anything folding over the
   registry) is a pure function of the recorded samples. *)
let sorted t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_empty t = Hashtbl.length t.tbl = 0

(* Counters and histogram buckets add; gauges take the maximum (they are
   per-replication end-of-run levels, and max is associative/commutative
   so merged artifacts stay order-independent). *)
let merge_into dst src =
  Hashtbl.iter
    (fun name v ->
      match (Hashtbl.find_opt dst.tbl name, v) with
      | None, Counter c -> Hashtbl.replace dst.tbl name (Counter c)
      | None, Gauge g -> Hashtbl.replace dst.tbl name (Gauge g)
      | None, Histogram h -> Hashtbl.replace dst.tbl name (Histogram (Hist.copy h))
      | Some (Counter a), Counter b -> Hashtbl.replace dst.tbl name (Counter (a + b))
      | Some (Gauge a), Gauge b -> Hashtbl.replace dst.tbl name (Gauge (Float.max a b))
      | Some (Histogram a), Histogram b ->
          Hashtbl.replace dst.tbl name (Histogram (Hist.merge a b))
      | Some _, _ ->
          invalid_arg ("Obs.Metrics.merge: type mismatch for " ^ name))
    src.tbl

let merge ts =
  let t = create () in
  List.iter (merge_into t) ts;
  t

let equal a b =
  let ka = sorted a and kb = sorted b in
  List.length ka = List.length kb
  && List.for_all2
       (fun (na, va) (nb, vb) ->
         na = nb
         &&
         match (va, vb) with
         | Counter x, Counter y -> x = y
         | Gauge x, Gauge y -> x = y
         | Histogram x, Histogram y -> Hist.equal x y
         | _ -> false)
       ka kb

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                         *)
(* ------------------------------------------------------------------ *)

(* Series names may carry labels inline: "ccsim_aborts_total{cause=\"x\"}".
   The family (text before '{') gets one TYPE line; histogram families
   expand into _bucket/_count/_sum series with cumulative [le] labels
   (empty buckets elided, "+Inf" always present). *)
let family_of name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let labels_of name =
  match String.index_opt name '{' with
  | Some i -> String.sub name i (String.length name - i)
  | None -> ""

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let add_label labels extra =
  if labels = "" then "{" ^ extra ^ "}"
  else String.sub labels 0 (String.length labels - 1) ^ "," ^ extra ^ "}"

let to_openmetrics t =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 16 in
  let type_line fam kind =
    if not (Hashtbl.mem typed fam) then begin
      Hashtbl.replace typed fam ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind)
    end
  in
  List.iter
    (fun (name, v) ->
      let fam = family_of name and labels = labels_of name in
      match v with
      | Counter c ->
          type_line fam "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" fam labels c)
      | Gauge g ->
          type_line fam "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" fam labels (fmt_float g))
      | Histogram h ->
          type_line fam "histogram";
          let cum = ref 0 in
          for i = 0 to Hist.n_buckets - 1 do
            if h.Hist.counts.(i) > 0 then begin
              cum := !cum + h.Hist.counts.(i);
              let le =
                if i = Hist.n_buckets - 1 then "+Inf"
                else fmt_float (snd (Hist.bucket_bounds i))
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" fam
                   (add_label labels (Printf.sprintf "le=%S" le))
                   !cum)
            end
          done;
          if h.Hist.counts.(Hist.n_buckets - 1) = 0 then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" fam
                 (add_label labels "le=\"+Inf\"")
                 !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" fam labels (Hist.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" fam labels (fmt_float (Hist.sum h))))
    (sorted t);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The domain-local sink                                               *)
(* ------------------------------------------------------------------ *)

type saved = t option

let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set slot (Some t)
let clear () = Domain.DLS.set slot None
let active () = Option.is_some (Domain.DLS.get slot)
let save () = Domain.DLS.get slot
let restore s = Domain.DLS.set slot s

let incr_s name n =
  match Domain.DLS.get slot with None -> () | Some t -> incr t name n

let set_gauge_s name v =
  match Domain.DLS.get slot with None -> () | Some t -> set_gauge t name v

let observe_s name v =
  match Domain.DLS.get slot with None -> () | Some t -> observe t name v

let with_metrics f =
  let t = create () in
  let prev = save () in
  install t;
  let v = Fun.protect ~finally:(fun () -> restore prev) f in
  (v, t)
