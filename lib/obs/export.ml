(* Artifact exporters: Chrome/Perfetto trace_event JSON for the merged
   trace, and CSV for sampled series.  Both formats are written by hand
   (no JSON/CSV dependency in the tree) and both come with a reader —
   [validate_json] parses the JSON we emit, [series_of_csv] round-trips
   the CSV — so the CI smoke job can verify artifacts without external
   tooling. *)

(* ------------------------------------------------------------------ *)
(* JSON building blocks                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Perfetto / Chrome trace_event format                                *)
(* ------------------------------------------------------------------ *)

(* One JSON object per trace entry, in the "i" (instant) phase, plus an
   "X" (complete) event per paired lock wait so Perfetto renders waits as
   bars.  pid = replication index, tid = client id + 1 (0 is the
   server/system track).  Timestamps are microseconds of simulated time. *)

let us t = t *. 1e6

let tid_of ev = match Event.actor ev with Some c -> c + 1 | None -> 0

(* Span tracks share the client lanes (tid = client + 1); each shard's
   server gets its own lane well clear of any client id, so a sharded
   run renders as one timeline with a named lane per shard. *)
let shard_tid_base = 1_000_000

let span_tid = function
  | Span.Client c -> c + 1
  | Span.Server k -> shard_tid_base + k

let causal_tid = function
  | Causal.Client c -> c + 1
  | Causal.Shard k -> shard_tid_base + k

let perfetto ?(spans = [||]) ?(flows = [||])
    (entries : (int * Recorder.entry) array) =
  let b =
    Buffer.create
      (4096
      + (Array.length entries + Array.length spans + Array.length flows) * 96)
  in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let obj s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  (* name the rep processes and client threads once per (pid, tid) *)
  let seen_pid = Hashtbl.create 8 and seen_tid = Hashtbl.create 64 in
  let metadata pid tid =
    if not (Hashtbl.mem seen_pid pid) then begin
      Hashtbl.add seen_pid pid ();
      obj
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\
            \"args\":{\"name\":\"rep %d\"}}"
           pid pid)
    end;
    if not (Hashtbl.mem seen_tid (pid, tid)) then begin
      Hashtbl.add seen_tid (pid, tid) ();
      let label =
        if tid = 0 then "server/system"
        else if tid >= shard_tid_base then
          Printf.sprintf "shard %d" (tid - shard_tid_base)
        else Printf.sprintf "client %d" (tid - 1)
      in
      obj
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\
            \"args\":{\"name\":\"%s\"}}"
           pid tid label)
    end
  in
  (* lock-wait pairing for duration events, per (rep, client, page) *)
  let waiting = Hashtbl.create 64 in
  Array.iter
    (fun (rep, { Recorder.time; ev; seq }) ->
      let tid = tid_of ev in
      metadata rep tid;
      obj
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\
            \"tid\":%d,\"args\":{\"seq\":%d,\"detail\":\"%s\"}}"
           (json_escape (Event.kind ev))
           (us time) rep tid seq
           (json_escape (Event.to_string ev)));
      match ev with
      | Event.Lock_wait { client; page; _ } ->
          Hashtbl.replace waiting (rep, client, page) time
      | Event.Lock_grant { client; page; mode } -> (
          match Hashtbl.find_opt waiting (rep, client, page) with
          | Some t0 ->
              Hashtbl.remove waiting (rep, client, page);
              obj
                (Printf.sprintf
                   "{\"name\":\"lock-wait p%d (%s)\",\"ph\":\"X\",\"ts\":%.3f,\
                    \"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{}}"
                   page (json_escape mode) (us t0)
                   (us (time -. t0))
                   rep (client + 1))
          | None -> ())
      | _ -> ())
    entries;
  (* span records become "X" (complete) duration events: one bar per
     Open/Close pair, on the opener's lane.  Spans still open at the end
     of the record are dropped (no duration to draw). *)
  let open_spans = Hashtbl.create 256 in
  Array.iter
    (fun (rep, { Span.sp_time; sp_ev; sp_seq = _ }) ->
      match sp_ev with
      | Span.Open { id; parent = _; track; kind; xid } ->
          Hashtbl.replace open_spans (rep, id) (sp_time, track, kind, xid)
      | Span.Close { id; ok } -> (
          match Hashtbl.find_opt open_spans (rep, id) with
          | None -> ()
          | Some (t0, track, kind, xid) ->
              Hashtbl.remove open_spans (rep, id);
              let tid = span_tid track in
              metadata rep tid;
              obj
                (Printf.sprintf
                   "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
                    \"pid\":%d,\"tid\":%d,\"args\":{\"xid\":%d,\"ok\":%b}}"
                   (json_escape (Span.kind_name kind))
                   (us t0)
                   (us (sp_time -. t0))
                   rep tid xid ok)))
    spans;
  (* causal messages become flow arrows: a "s" (flow start) event on the
     sender's lane at the send instant and a matching "f" (flow finish,
     binding to the enclosing slice) on the receiver's at delivery.  Only
     delivered copies draw an arrow — a drop has nowhere to land.  Flow
     ids are strings ("rep-node"), unique across reps by construction. *)
  let sends = Hashtbl.create 256 in
  Array.iter
    (fun (rep, { Causal.cz_time; cz_ev; cz_seq = _ }) ->
      match cz_ev with
      | Causal.Send { id; kind; src; dst; _ } ->
          Hashtbl.replace sends (rep, id) (cz_time, kind, src, dst)
      | Causal.Recv { id } -> (
          match Hashtbl.find_opt sends (rep, id) with
          | None -> ()
          | Some (t0, kind, src, dst) ->
              Hashtbl.remove sends (rep, id);
              let src_tid = causal_tid src and dst_tid = causal_tid dst in
              metadata rep src_tid;
              metadata rep dst_tid;
              obj
                (Printf.sprintf
                   "{\"name\":\"%s\",\"cat\":\"causal\",\"ph\":\"s\",\
                    \"id\":\"%d-%d\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}"
                   (json_escape kind) rep id (us t0) rep src_tid);
              obj
                (Printf.sprintf
                   "{\"name\":\"%s\",\"cat\":\"causal\",\"ph\":\"f\",\
                    \"bp\":\"e\",\"id\":\"%d-%d\",\"ts\":%.3f,\"pid\":%d,\
                    \"tid\":%d}"
                   (json_escape kind) rep id (us cz_time) rep dst_tid))
      | Causal.Root _ | Causal.Drop _ | Causal.End _ -> ())
    flows;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Series CSV                                                          *)
(* ------------------------------------------------------------------ *)

(* Floats are printed with %.17g so parsing them back yields the exact
   same double — the round-trip the CI smoke job checks. *)

let series_csv s =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "# interval=%.17g start=%.17g\n" (Series.interval s)
       (Series.start s));
  Buffer.add_string b "time";
  Array.iter
    (fun n ->
      Buffer.add_char b ',';
      Buffer.add_string b n)
    (Series.names s);
  Buffer.add_char b '\n';
  let times = Series.times s in
  Array.iteri
    (fun i row ->
      Buffer.add_string b (Printf.sprintf "%.17g" times.(i));
      Array.iter (fun v -> Buffer.add_string b (Printf.sprintf ",%.17g" v)) row;
      Buffer.add_char b '\n')
    (Series.rows s);
  Buffer.contents b

let series_of_csv text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  match lines with
  | meta :: header :: rows ->
      let interval, start =
        try
          Scanf.sscanf meta "# interval=%g start=%g" (fun a b -> (a, b))
        with _ -> failwith "series_of_csv: bad metadata line"
      in
      let names =
        match String.split_on_char ',' header with
        | "time" :: ns -> Array.of_list ns
        | _ -> failwith "series_of_csv: bad header"
      in
      let s = Series.create ~interval ~start ~names in
      List.iter
        (fun line ->
          match String.split_on_char ',' line with
          | _time :: vals ->
              let row =
                Array.of_list (List.map float_of_string vals)
              in
              Series.record s row
          | [] -> ())
        rows;
      s
  | _ -> failwith "series_of_csv: too few lines"

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser                                                 *)
(* ------------------------------------------------------------------ *)

(* A recursive-descent parser for RFC 8259 JSON.  Originally a pure
   validator for the Perfetto smoke job; it now builds a value so the
   benchmark-telemetry pipeline (Experiments.Telemetry / ccsim
   bench-diff) can read its own snapshots back without any external JSON
   dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string * int

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  (* decode a code point to UTF-8 bytes (enough for \u escapes; surrogate
     pairs outside the BMP are not recombined — we never emit them) *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char b c;
              advance ();
              go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              let cp = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' as c) ->
                    cp := (!cp * 16) + (Char.code c - Char.code '0');
                    advance ()
                | Some ('a' .. 'f' as c) ->
                    cp := (!cp * 16) + (Char.code c - Char.code 'a' + 10);
                    advance ()
                | Some ('A' .. 'F' as c) ->
                    cp := (!cp * 16) + (Char.code c - Char.code 'A' + 10);
                    advance ()
                | _ -> fail "bad \\u escape"
              done;
              add_utf8 b !cp;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let digits () =
      let had = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            had := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !had then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub text start (!pos - start))
  in
  let literal s v =
    let l = String.length s in
    if !pos + l <= n && String.sub text !pos l = s then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ s)
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            Arr (elements [])
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | _ -> fail "expected value"
    in
    skip_ws ();
    v
  in
  try
    let v = value () in
    if !pos <> n then Error (Printf.sprintf "trailing bytes at %d" !pos)
    else Ok v
  with Bad (msg, p) -> Error (Printf.sprintf "%s at byte %d" msg p)

let validate_json text =
  match parse_json text with Ok _ -> Ok () | Error e -> Error e

(* field accessors for readers of parsed snapshots *)
let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let trace_text (entries : (int * Recorder.entry) array) =
  let b = Buffer.create (Array.length entries * 64) in
  Array.iter
    (fun (rep, { Recorder.time; seq; ev }) ->
      Buffer.add_string b
        (Printf.sprintf "rep%d %12.6f #%-7d %s\n" rep time seq
           (Event.to_string ev)))
    entries;
  Buffer.contents b

(* Plain-text dump of a merged causal record.  Times print with %.17g so
   byte-comparison across -j values is exact, and every field of a Send
   is spelled out — the .dag artifact doubles as the ground truth the CI
   determinism check diffs. *)
let dag_text (entries : (int * Causal.entry) array) =
  let b = Buffer.create (Array.length entries * 80) in
  Array.iter
    (fun (rep, { Causal.cz_time; cz_seq = _; cz_ev }) ->
      Buffer.add_string b
        (match cz_ev with
        | Causal.Root { id; client } ->
            Printf.sprintf "rep%d %.17g root #%d client %d\n" rep cz_time id
              client
        | Causal.Send
            { id; parent; xid; owner; kind; src; dst; bytes; pkts; retry; dup }
          ->
            Printf.sprintf
              "rep%d %.17g send #%d parent %d kind %s xid %d owner %d src %s \
               dst %s bytes %d pkts %d retry %d dup %d\n"
              rep cz_time id parent kind xid owner (Causal.ep_name src)
              (Causal.ep_name dst) bytes pkts retry dup
        | Causal.Recv { id } ->
            Printf.sprintf "rep%d %.17g recv #%d\n" rep cz_time id
        | Causal.Drop { id } ->
            Printf.sprintf "rep%d %.17g drop #%d\n" rep cz_time id
        | Causal.End { id; parent; xid; client; ok } ->
            Printf.sprintf "rep%d %.17g end #%d parent %d xid %d client %d ok %b\n"
              rep cz_time id parent xid client ok))
    entries;
  Buffer.contents b

let span_text (spans : (int * Span.entry) array) =
  let b = Buffer.create (Array.length spans * 72) in
  Array.iter
    (fun (rep, { Span.sp_time; sp_seq; sp_ev }) ->
      Buffer.add_string b
        (match sp_ev with
        | Span.Open { id; parent; track; kind; xid } ->
            Printf.sprintf "rep%d %12.6f #%-7d open  %-7d parent=%-7d %s %s x%d\n"
              rep sp_time sp_seq id parent
              (Span.track_name track) (Span.kind_name kind) xid
        | Span.Close { id; ok } ->
            Printf.sprintf "rep%d %12.6f #%-7d close %-7d %s\n" rep sp_time
              sp_seq id
              (if ok then "ok" else "failed")))
    spans;
  Buffer.contents b
