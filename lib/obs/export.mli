(** Artifact exporters for traces and series.

    The Perfetto exporter emits Chrome [trace_event] JSON (load it at
    [https://ui.perfetto.dev] or [chrome://tracing]): every entry becomes
    an instant event on the track of its client (pid = replication index,
    tid = client id + 1, tid 0 = server/system), each paired
    lock-wait/grant becomes a duration bar, and every closed span record
    becomes an ["X"] (complete) duration event — client spans on the
    client lanes, server spans on one named lane per shard
    (tid = 1000000 + shard), so a sharded run renders as one timeline.

    Both formats come with a reader so artifacts can be verified without
    external tools: {!validate_json} parses the emitted JSON,
    {!series_of_csv} round-trips the CSV exactly ([%.17g] floats). *)

(** Chrome/Perfetto trace_event JSON of a merged trace
    (see {!Run.merged_trace}), plus duration events for [spans]
    (see {!Run.merged_spans}), plus flow arrows for [flows] (a merged
    causal record, see {!Run.merged_causal}): each delivered message
    copy draws an arrow from its sender's lane at the send instant to
    its receiver's at delivery, with the message kind as the flow name
    and ["causal"] as the category. *)
val perfetto :
  ?spans:(int * Span.entry) array ->
  ?flows:(int * Causal.entry) array ->
  (int * Recorder.entry) array ->
  string

(** Plain-text dump, one line per event ("repN  time  #seq  description"). *)
val trace_text : (int * Recorder.entry) array -> string

(** Plain-text dump of a merged span record, one line per open/close. *)
val span_text : (int * Span.entry) array -> string

(** Plain-text dump of a merged causal record, one line per node, with
    [%.17g] times — the deterministic [.dag] artifact. *)
val dag_text : (int * Causal.entry) array -> string

(** CSV of one series: a metadata comment line, a [time,<names>] header,
    one row per sample. *)
val series_csv : Series.t -> string

(** Parse {!series_csv} output back; round-trips exactly.
    Raises [Failure] on malformed input. *)
val series_of_csv : string -> Series.t

(** Parsed JSON value.  Object members are kept in document order. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(** Parse RFC 8259 JSON text (the subset {!perfetto} and the benchmark
    telemetry pipeline emit; [\u] escapes are decoded to UTF-8). *)
val parse_json : string -> (json, string) result

(** [member k (Obj ...)] looks up a field; [None] on missing key or
    non-object. *)
val member : string -> json -> json option

(** Validate that [text] is well-formed JSON ({!parse_json}, value
    discarded). *)
val validate_json : string -> (unit, string) result

(** Escape a string for inclusion inside JSON double quotes. *)
val json_escape : string -> string

val write_file : string -> string -> unit
