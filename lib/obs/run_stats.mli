(** Run-quality statistics: confidence intervals over replications, batch
    means for single long runs, and a Welch-style warmup-adequacy
    diagnostic over a {!Series}-shaped sampled curve.

    Everything is dependency-free numerics: the Student-t quantile comes
    from the regularized incomplete beta function and a bisection
    inversion, accurate to well below 1e-6 — far tighter than the
    intervals themselves at simulation replication counts. *)

(** {1 Student-t distribution} *)

(** Natural log of the Gamma function (Lanczos, |rel err| < 1e-13). *)
val ln_gamma : float -> float

(** Regularized incomplete beta function I_x(a, b). *)
val reg_inc_beta : float -> float -> float -> float

(** CDF of Student's t with [df] degrees of freedom. *)
val t_cdf : df:float -> float -> float

(** [t_quantile ~df p] is the inverse CDF; e.g.
    [t_quantile ~df:10.0 0.975 = 2.2281...].  Raises [Invalid_argument]
    unless [0 < p < 1] and [df > 0]. *)
val t_quantile : df:float -> float -> float

(** {1 Confidence intervals} *)

type ci = {
  ci_n : int;  (** observations the interval is built from *)
  ci_mean : float;
  ci_half : float;  (** half-width; [nan] when [ci_n < 2] *)
  ci_confidence : float;
}

(** [mean_ci ?confidence xs] is the Student-t interval for the mean of
    [xs] (default 95 %).  With fewer than two observations the interval
    is unavailable: [ci_half] is [nan] and {!available} is [false] — a
    single replication has no dispersion information. *)
val mean_ci : ?confidence:float -> float array -> ci

(** Does the interval carry information ([ci_n >= 2])? *)
val available : ci -> bool

(** Interval endpoints ([nan] when not {!available}). *)
val ci_lo : ci -> float

val ci_hi : ci -> float

(** Half-width relative to |mean|; [None] when unavailable or mean 0. *)
val rel_half_width : ci -> float option

(** Mean relative half-width over the cells that have one — the pooled
    precision of a whole figure. *)
val pooled_rel_half_width : ci list -> float option

(** Half-width formatted with [digits] decimals (default 3), or ["n/a"]
    when the interval is unavailable — the "±n/a" convention every
    report column uses at [reps = 1]. *)
val half_string : ?digits:int -> ci -> string

(** {1 Batch means}

    For a single long run there are no replications to compare, but the
    post-warmup observation stream can be chopped into contiguous batches
    whose means are approximately independent. *)

(** [batch_means ?confidence ?batches xs] (default 20 batches, clamped to
    [length xs / 2]) — [None] when [xs] has fewer than 4 observations.
    When the stream does not divide evenly the oldest remainder
    observations are dropped. *)
val batch_means : ?confidence:float -> ?batches:int -> float array -> ci option

(** {1 Warmup adequacy (Welch's procedure)} *)

type warmup = {
  wu_samples : int;
  wu_warmup_end : float;  (** configured warmup boundary, simulated s *)
  wu_settle : float option;
      (** earliest sampled time from which the smoothed curve stays
          within the steady-state band; [None] = never settles *)
  wu_tail_mean : float;  (** steady-state estimate (mean of last half) *)
  wu_adequate : bool;
      (** settle time <= warmup end (vacuously true under 4 samples) *)
}

(** Centered moving average with half-window [window]. *)
val moving_average : window:int -> float array -> float array

(** [warmup_diagnostic ?band ?window ~warmup_end ~times values] smooths
    [values] (a fixed-interval sampled curve, e.g. one {!Series} column)
    with a centered moving average (default half-window [n/10]), takes
    the mean of the last half as the steady-state estimate, and finds the
    earliest time after which the smoothed curve stays within [band]
    (default 5 %, relative to max(|tail mean|, spread)) of it.  The
    warmup was adequate if that settle time falls inside the warmup
    window. *)
val warmup_diagnostic :
  ?band:float ->
  ?window:int ->
  warmup_end:float ->
  times:float array ->
  float array ->
  warmup
