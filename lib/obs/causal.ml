(* Causal message tracing.

   Every message posted through [Net.Network.post] can carry a [tag]
   naming its causal parent (the node whose receipt triggered the send),
   the transaction it serves, its protocol kind, endpoints, and a
   retry index.  The network allocates one node per transmitted copy
   (fault-injected duplicates get a duplicate index) and records [Send],
   [Recv] and [Drop] events; clients bracket each transaction with a
   [Root] at the instant the Xact span opens and an [End] at the instant
   it closes, so a replication's record reconstructs into one causal DAG
   per transaction — from first request to final commit/abort ack,
   retransmissions, callback rounds and 2PC fan-out included.

   The buffer mirrors {!Span}: chunked ring storage with a monotone
   sequence number, a domain-local sink slot installed around
   [Sim.Engine.run], and payloads that travel back to the caller by
   value — identical at any [Sim.Pool] job count.  Emission only reads
   the clock it is handed; it never holds or draws randomness, so
   causal-off runs are bit-identical to causal-on runs modulo the
   buffer.  Node ids are allocated monotonically, so a parent id is
   always smaller than its children's ids: the DAG is acyclic by
   construction, and [analyze] checks it stayed that way. *)

type ep = Client of int | Shard of int

let ep_name = function
  | Client c -> Printf.sprintf "client:%d" c
  | Shard s -> Printf.sprintf "shard:%d" s

type ev =
  | Root of { id : int; client : int }
  | Send of {
      id : int;
      parent : int;
      xid : int;
      owner : int;
      kind : string;
      src : ep;
      dst : ep;
      bytes : int;
      pkts : int;
      retry : int;
      dup : int;
    }
  | Recv of { id : int }
  | Drop of { id : int }
  | End of { id : int; parent : int; xid : int; client : int; ok : bool }

type entry = { cz_time : float; cz_seq : int; cz_ev : ev }

(* The trace context a sender attaches to [Net.Network.post].  Pure
   data: building one allocates but never touches the engine, so call
   sites construct tags unconditionally and the network ignores them
   when no sink is installed. *)
type tag = {
  tg_parent : int;
  tg_xid : int;
  tg_owner : int;
  tg_kind : string;
  tg_src : ep;
  tg_dst : ep;
  tg_retry : int;
}

(* ------------------------------------------------------------------ *)
(* The buffer                                                          *)
(* ------------------------------------------------------------------ *)

let chunk_size = 4096

type t = {
  limit : int;
  mutable chunks : entry array array;
  mutable written : int;
  mutable next_id : int;  (* node ids, unique within this buffer/rep *)
}

let default_limit = 2_000_000
let dummy_entry = { cz_time = 0.0; cz_seq = -1; cz_ev = Recv { id = -1 } }

let create ?(limit = default_limit) () =
  if limit < 1 then invalid_arg "Causal.create: limit < 1";
  { limit; chunks = [||]; written = 0; next_id = 0 }

let length t = min t.written t.limit
let dropped t = max 0 (t.written - t.limit)

let add t ~time ev =
  let pos = t.written mod t.limit in
  let ci = pos / chunk_size and co = pos mod chunk_size in
  if ci >= Array.length t.chunks then begin
    let cap = max 4 (2 * Array.length t.chunks) in
    let chunks = Array.make cap [||] in
    Array.blit t.chunks 0 chunks 0 (Array.length t.chunks);
    t.chunks <- chunks
  end;
  if Array.length t.chunks.(ci) = 0 then
    t.chunks.(ci) <- Array.make chunk_size dummy_entry;
  t.chunks.(ci).(co) <- { cz_time = time; cz_seq = t.written; cz_ev = ev };
  t.written <- t.written + 1

let entries t =
  let n = length t in
  let out = Array.make n dummy_entry in
  let k = ref 0 in
  Array.iter
    (fun chunk ->
      Array.iter
        (fun e ->
          if e.cz_seq >= 0 && !k < n then begin
            out.(!k) <- e;
            incr k
          end)
        chunk)
    t.chunks;
  Array.sort (fun a b -> Int.compare a.cz_seq b.cz_seq) out;
  out

(* ------------------------------------------------------------------ *)
(* The domain-local sink                                               *)
(* ------------------------------------------------------------------ *)

type saved = t option

let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set slot (Some t)
let clear () = Domain.DLS.set slot None
let active () = Option.is_some (Domain.DLS.get slot)
let save () = Domain.DLS.get slot
let restore s = Domain.DLS.set slot s

(* Every emitter returns the fresh node id, or -1 when no sink is
   installed; -1 is also a valid parent (no known cause), so
   instrumentation threads ids around unconditionally. *)

let root ~time ~client =
  match Domain.DLS.get slot with
  | None -> -1
  | Some t ->
      let id = t.next_id in
      t.next_id <- id + 1;
      add t ~time (Root { id; client });
      id

let send ~time ~(tag : tag) ~bytes ~pkts ~dup =
  match Domain.DLS.get slot with
  | None -> -1
  | Some t ->
      let id = t.next_id in
      t.next_id <- id + 1;
      add t ~time
        (Send
           {
             id;
             parent = tag.tg_parent;
             xid = tag.tg_xid;
             owner = tag.tg_owner;
             kind = tag.tg_kind;
             src = tag.tg_src;
             dst = tag.tg_dst;
             bytes;
             pkts;
             retry = tag.tg_retry;
             dup;
           });
      id

let recv ~time id =
  if id >= 0 then
    match Domain.DLS.get slot with
    | None -> ()
    | Some t -> add t ~time (Recv { id })

let drop ~time id =
  if id >= 0 then
    match Domain.DLS.get slot with
    | None -> ()
    | Some t -> add t ~time (Drop { id })

let finish ~time ~parent ~xid ~client ~ok =
  match Domain.DLS.get slot with
  | None -> ()
  | Some t ->
      let id = t.next_id in
      t.next_id <- id + 1;
      add t ~time (End { id; parent; xid; client; ok })

let with_causal ?limit f =
  let t = create ?limit () in
  let prev = save () in
  install t;
  let v = Fun.protect ~finally:(fun () -> restore prev) f in
  (v, t)

(* ------------------------------------------------------------------ *)
(* Reconstruction, validation, critical chain                          *)
(* ------------------------------------------------------------------ *)

type link = {
  lk_id : int;
  lk_label : string;  (* "root", "end", or the message kind *)
  lk_send : float;
  lk_recv : float;  (* = lk_send for root/end links *)
  lk_retry : int;
  lk_dup : int;
}

type dag = {
  dg_rep : int;
  dg_client : int;
  dg_xid : int;
  dg_ok : bool;
  dg_start : float;
  dg_finish : float;
  dg_msgs : int;  (* message sends attributed to this transaction *)
  dg_chain : link list;  (* the gating chain, root first, end last *)
}

type check = {
  ck_groups : int;
  ck_closed : int;
  ck_committed : int;
  ck_msgs : int;
  ck_delivered : int;
  ck_dropped_msgs : int;
  ck_inflight : int;
  ck_background : int;
  ck_errors : string list;
}

type analysis = {
  an_dags : dag array;
  an_check : check;
  an_chain_sum : float;
}

(* Per-node bookkeeping during reconstruction. *)
type node = {
  nd_id : int;
  nd_ev : ev;
  nd_time : float;
  mutable nd_recv : float;  (* nan until a Recv arrives *)
  mutable nd_drop : bool;
}

(* One transaction's causal group: opened by a Root, closed by the
   matching End, holding every message attributed to it. *)
type grp = {
  g_rep : int;
  g_client : int;
  g_root : int;
  g_start : float;
  mutable g_msgs : int;
  mutable g_end : int;  (* End node id, -1 while open *)
  mutable g_end_parent : int;
  mutable g_end_time : float;
  mutable g_xid : int;
  mutable g_ok : bool;
}

let node_parent n =
  match n.nd_ev with
  | Send { parent; _ } | End { parent; _ } -> parent
  | Root _ | Recv _ | Drop _ -> -1

let node_link n =
  match n.nd_ev with
  | Root _ ->
      {
        lk_id = n.nd_id;
        lk_label = "root";
        lk_send = n.nd_time;
        lk_recv = n.nd_time;
        lk_retry = 0;
        lk_dup = 0;
      }
  | End _ ->
      {
        lk_id = n.nd_id;
        lk_label = "end";
        lk_send = n.nd_time;
        lk_recv = n.nd_time;
        lk_retry = 0;
        lk_dup = 0;
      }
  | Send { kind; retry; dup; _ } ->
      {
        lk_id = n.nd_id;
        lk_label = kind;
        lk_send = n.nd_time;
        lk_recv = n.nd_recv;
        lk_retry = retry;
        lk_dup = dup;
      }
  | Recv _ | Drop _ -> assert false

(* Reconstruct and validate the causal DAGs of one (possibly merged)
   record.  Entries must carry their replication index; within a rep
   they are processed in sequence order.  [dropped > 0] relaxes the
   orphan checks: the ring may have overwritten the referenced nodes. *)
let analyze ?(dropped = 0) (tagged : (int * entry) array) =
  let es = Array.copy tagged in
  Array.sort
    (fun (ra, a) (rb, b) ->
      match Int.compare ra rb with 0 -> Int.compare a.cz_seq b.cz_seq | c -> c)
    es;
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let dags = ref [] in
  let n_groups = ref 0
  and n_closed = ref 0
  and n_committed = ref 0
  and n_msgs = ref 0
  and n_delivered = ref 0
  and n_dropped = ref 0
  and n_background = ref 0 in
  let chain_sum = ref 0.0 in
  (* per-rep state, reset at each rep boundary *)
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 4096 in
  let group_of : (int, grp) Hashtbl.t = Hashtbl.create 4096 in
  let open_of : (int, grp) Hashtbl.t = Hashtbl.create 64 in
  let cur_rep = ref min_int in
  let chain_of g =
    (* Walk the End's parent pointers back to the Root.  Parent ids are
       strictly smaller than child ids in a well-formed record; stop on
       any violation so a corrupt record cannot loop. *)
    let rec walk acc id =
      if id < 0 then acc
      else
        match Hashtbl.find_opt nodes id with
        | None -> acc
        | Some n ->
            let p = node_parent n in
            if p >= id || p < -1 then node_link n :: acc
            else walk (node_link n :: acc) p
    in
    if g.g_end < 0 then [] else walk [] g.g_end
  in
  let close_rep () =
    (* groups still open when the run was cut at max_sim_time are legal
       in-flight transactions; they yield no DAG *)
    Hashtbl.reset nodes;
    Hashtbl.reset group_of;
    Hashtbl.reset open_of
  in
  Array.iter
    (fun (rep, e) ->
      if rep <> !cur_rep then begin
        if !cur_rep > min_int then close_rep ();
        cur_rep := rep
      end;
      match e.cz_ev with
      | Root { id; client } ->
          incr n_groups;
          if Hashtbl.mem open_of client && dropped = 0 then
            err "rep%d: client %d opened root #%d with a root still open"
              rep client id;
          let g =
            {
              g_rep = rep;
              g_client = client;
              g_root = id;
              g_start = e.cz_time;
              g_msgs = 0;
              g_end = -1;
              g_end_parent = -1;
              g_end_time = nan;
              g_xid = -1;
              g_ok = false;
            }
          in
          Hashtbl.replace open_of client g;
          Hashtbl.replace group_of id g;
          Hashtbl.replace nodes id
            { nd_id = id; nd_ev = e.cz_ev; nd_time = e.cz_time;
              nd_recv = nan; nd_drop = false }
      | Send { id; parent; owner; _ } ->
          incr n_msgs;
          if parent >= id then
            err "rep%d: node #%d has parent #%d (not older: cycle)" rep id
              parent;
          (if parent >= 0 then
             match Hashtbl.find_opt nodes parent with
             | None -> if dropped = 0 then err "rep%d: node #%d has unknown parent #%d" rep id parent
             | Some p -> (
                 match p.nd_ev with
                 | Root _ | End _ ->
                     if e.cz_time < p.nd_time then
                       err "rep%d: node #%d sent at %.9f before parent #%d at %.9f"
                         rep id e.cz_time parent p.nd_time
                 | Send _ ->
                     if p.nd_drop then
                       err "rep%d: node #%d caused by dropped message #%d" rep
                         id parent
                     else if Float.is_nan p.nd_recv then
                       err "rep%d: node #%d caused by undelivered message #%d"
                         rep id parent
                     else if e.cz_time < p.nd_recv then
                       err
                         "rep%d: node #%d sent at %.9f before parent #%d \
                          received at %.9f"
                         rep id e.cz_time parent p.nd_recv
                 | Recv _ | Drop _ -> ()));
          let g =
            match
              if parent >= 0 then Hashtbl.find_opt group_of parent else None
            with
            | Some g -> Some g
            | None -> if owner >= 0 then Hashtbl.find_opt open_of owner else None
          in
          (match g with
          | Some g ->
              g.g_msgs <- g.g_msgs + 1;
              Hashtbl.replace group_of id g
          | None -> incr n_background);
          Hashtbl.replace nodes id
            { nd_id = id; nd_ev = e.cz_ev; nd_time = e.cz_time;
              nd_recv = nan; nd_drop = false }
      | Recv { id } -> (
          match Hashtbl.find_opt nodes id with
          | None -> if dropped = 0 then err "rep%d: recv of unknown node #%d" rep id
          | Some n ->
              if n.nd_drop then err "rep%d: node #%d received after drop" rep id
              else if not (Float.is_nan n.nd_recv) then
                err "rep%d: node #%d received twice" rep id
              else if e.cz_time < n.nd_time then
                err "rep%d: node #%d received at %.9f before send at %.9f" rep
                  id e.cz_time n.nd_time
              else begin
                n.nd_recv <- e.cz_time;
                incr n_delivered
              end)
      | Drop { id } -> (
          match Hashtbl.find_opt nodes id with
          | None -> if dropped = 0 then err "rep%d: drop of unknown node #%d" rep id
          | Some n ->
              if not (Float.is_nan n.nd_recv) then
                err "rep%d: node #%d dropped after delivery" rep id
              else begin
                n.nd_drop <- true;
                incr n_dropped
              end)
      | End { id; parent; xid; client; ok } ->
          (if parent >= 0 then
             match Hashtbl.find_opt nodes parent with
             | Some ({ nd_ev = Send _; _ } as p) ->
                 if (not p.nd_drop) && (not (Float.is_nan p.nd_recv))
                    && e.cz_time < p.nd_recv
                 then
                   err "rep%d: end #%d at %.9f before parent #%d received at %.9f"
                     rep id e.cz_time parent p.nd_recv
             | _ -> ());
          Hashtbl.replace nodes id
            { nd_id = id; nd_ev = e.cz_ev; nd_time = e.cz_time;
              nd_recv = nan; nd_drop = false };
          let g =
            match
              if parent >= 0 then Hashtbl.find_opt group_of parent else None
            with
            | Some g -> Some g
            | None -> Hashtbl.find_opt open_of client
          in
          (match g with
          | None ->
              if dropped = 0 then
                err "rep%d: end #%d of client %d without a root" rep id client
          | Some g ->
              if e.cz_time < g.g_start then
                err "rep%d: end #%d at %.9f before its root at %.9f" rep id
                  e.cz_time g.g_start;
              g.g_end <- id;
              g.g_end_parent <- parent;
              g.g_end_time <- e.cz_time;
              g.g_xid <- xid;
              g.g_ok <- ok;
              Hashtbl.remove open_of g.g_client;
              incr n_closed;
              if ok then begin
                incr n_committed;
                chain_sum := !chain_sum +. (e.cz_time -. g.g_start)
              end;
              dags :=
                {
                  dg_rep = g.g_rep;
                  dg_client = g.g_client;
                  dg_xid = g.g_xid;
                  dg_ok = g.g_ok;
                  dg_start = g.g_start;
                  dg_finish = g.g_end_time;
                  dg_msgs = g.g_msgs;
                  dg_chain = chain_of g;
                }
                :: !dags))
    (es : (int * entry) array);
  let inflight =
    !n_msgs - !n_delivered - !n_dropped
  in
  {
    an_dags = Array.of_list (List.rev !dags);
    an_check =
      {
        ck_groups = !n_groups;
        ck_closed = !n_closed;
        ck_committed = !n_committed;
        ck_msgs = !n_msgs;
        ck_delivered = !n_delivered;
        ck_dropped_msgs = !n_dropped;
        ck_inflight = max 0 inflight;
        ck_background = !n_background;
        ck_errors = List.rev !errors;
      };
    an_chain_sum = !chain_sum;
  }

let check_ok c = c.ck_errors = []

let pp_check fmt c =
  Format.fprintf fmt
    "causal: %d groups (%d closed, %d committed), %d msgs (%d delivered, %d \
     dropped, %d in flight), %d background"
    c.ck_groups c.ck_closed c.ck_committed c.ck_msgs c.ck_delivered
    c.ck_dropped_msgs c.ck_inflight c.ck_background;
  List.iter (fun e -> Format.fprintf fmt "@.  error: %s" e) c.ck_errors

(* ------------------------------------------------------------------ *)
(* Message-amplification analytics                                     *)
(* ------------------------------------------------------------------ *)

type amp = {
  am_kind : string;
  am_msgs : int;
  am_pkts : int;
  am_bytes : int;
  am_retx : int;  (* sends with retry > 0 (first copies only) *)
  am_dups : int;  (* fault-injected duplicate copies *)
}

let amplification (tagged : (int * entry) array) =
  let tbl : (string, int ref * int ref * int ref * int ref * int ref) Hashtbl.t
      =
    Hashtbl.create 64
  in
  Array.iter
    (fun (_, e) ->
      match e.cz_ev with
      | Send { kind; bytes; pkts; retry; dup; _ } ->
          let m, p, b, r, d =
            match Hashtbl.find_opt tbl kind with
            | Some v -> v
            | None ->
                let v = (ref 0, ref 0, ref 0, ref 0, ref 0) in
                Hashtbl.add tbl kind v;
                v
          in
          incr m;
          p := !p + pkts;
          b := !b + bytes;
          if retry > 0 && dup = 0 then incr r;
          if dup > 0 then incr d
      | _ -> ())
    tagged;
  Hashtbl.fold
    (fun kind (m, p, b, r, d) acc ->
      {
        am_kind = kind;
        am_msgs = !m;
        am_pkts = !p;
        am_bytes = !b;
        am_retx = !r;
        am_dups = !d;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.am_kind b.am_kind)

(* Register per-transaction critical-chain shape into the active metrics
   registry (no-op without a metrics sink).  Hops count message links
   only (root and end excluded). *)
let register_chain_metrics an =
  Array.iter
    (fun d ->
      if d.dg_ok then begin
        let hops = max 0 (List.length d.dg_chain - 2) in
        Metrics.observe_s "ccsim_causal_chain_hops" (float_of_int hops);
        Metrics.observe_s "ccsim_causal_chain_seconds"
          (d.dg_finish -. d.dg_start)
      end)
    an.an_dags
