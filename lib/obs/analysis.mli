(** Per-protocol breakdowns computed from a recorded trace — the numbers
    that explain {e why} a consistency algorithm behaves as it does:
    messages per commit by kind, the lock-wait time distribution,
    notification fan-out, and the abort-cause timeline.

    All fields are deterministic functions of the ordered entry array:
    association lists are sorted (count-descending, then name), histogram
    buckets are fixed, so two summaries of the same trace diff cleanly. *)

type hist_bucket = { lo : float; hi : float; count : int }

type summary = {
  n_events : int;
  t_first : float;
  t_last : float;
  n_commits : int;
  n_aborts : int;
  aborts_by_reason : (string * int) list;
  messages_by_kind : (string * int) list;
      (** message-event counts grouped by {!Event.message_label} *)
  msgs_per_commit_by_kind : (string * float) list;
      (** empty when the trace holds no commit *)
  n_lock_waits : int;  (** Lock_wait events paired with a later grant *)
  lock_wait_mean : float;
  lock_wait_max : float;
  lock_wait_hist : hist_bucket list;  (** powers-of-ten buckets, non-empty only *)
  fanout_hist : (int * int) list;
      (** (k, commits): commits preceded by exactly [k] callback/notify
          events since the same replication's previous commit *)
  abort_timeline : (float * int) list;
      (** (bucket start, aborts in bucket); empty when no aborts *)
  timeline_bucket : float;  (** timeline bucket width, seconds *)
}

(** Summarize one replication's trace. *)
val summarize : Recorder.entry array -> summary

(** Summarize a merged multi-replication trace (see
    {!Run.merged_trace}); lock-wait pairing and fan-out windows are kept
    per replication. *)
val summarize_tagged : (int * Recorder.entry) array -> summary

val pp_summary : Format.formatter -> summary -> unit
