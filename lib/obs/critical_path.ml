(* Latency decomposition from span records.

   The client instrumentation tiles every committed transaction's [Xact]
   span with leaf phase segments (think, client CPU, fetch/cert/commit
   waits, abort work, restart back-off): at any instant between the
   transaction's first start and its commit exactly one leaf is open.
   Summing leaf durations per phase therefore reconstructs the measured
   end-to-end commit latency additively — the residual is pure floating
   rounding, and [reconciles] checks exactly that against the engine
   clock.

   Server- and router-side spans (lock waits, disk, log forces, 2PC
   phases) overlap the client's wait phases rather than adding to them;
   they are aggregated per track as the waterfall's lower layers. *)

type row = { r_kind : Span.kind; r_count : int; r_total : float }

type t = {
  cp_xacts : int;  (* committed transactions (closed Xact spans) *)
  cp_end_to_end : float;  (* sum of their durations, engine-clock *)
  cp_client : row list;  (* additive leaf phases, fixed kind order *)
  cp_phase_sum : float;  (* sum of the leaf totals *)
  cp_server : (int * row list) list;  (* per shard, ascending *)
  cp_router : row list;  (* 2PC prepare / decide *)
  cp_open_xacts : int;  (* in-flight at end of run: excluded above *)
}

let client_leaf_kinds =
  [
    Span.Think;
    Span.Client_cpu;
    Span.Fetch_wait;
    Span.Cert_wait;
    Span.Commit_wait;
    Span.Abort_work;
    Span.Restart_wait;
  ]

let server_kinds = [ Span.Lock_wait; Span.Cb_round; Span.Disk_io; Span.Log_force ]
let router_kinds = [ Span.Prepare_2pc; Span.Decide_2pc ]

type info = {
  i_kind : Span.kind;
  i_parent : int;
  i_track : Span.track;
  i_open : float;
  mutable i_close : float;  (* nan until closed *)
  mutable i_ok : bool;
}

let analyze (tagged : (int * Span.entry) array) =
  let xacts = ref 0 and open_xacts = ref 0 in
  let end_to_end = ref 0.0 in
  let client_acc = Hashtbl.create 8 (* kind -> (count, total) *) in
  let server_acc = Hashtbl.create 8 (* (shard, kind) -> (count, total) *) in
  let router_acc = Hashtbl.create 8 in
  let bump tbl key dur =
    let c, s = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0.0) in
    Hashtbl.replace tbl key (c + 1, s +. dur)
  in
  (* group by rep: ids are only unique within one replication *)
  let by_rep = Hashtbl.create 8 in
  Array.iter
    (fun (rep, e) ->
      let l = Option.value (Hashtbl.find_opt by_rep rep) ~default:[] in
      Hashtbl.replace by_rep rep (e :: l))
    tagged;
  let reps =
    Hashtbl.fold (fun r l acc -> (r, List.rev l) :: acc) by_rep []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_rep, es) ->
      let spans : (int, info) Hashtbl.t = Hashtbl.create 4096 in
      let children : (int, int list) Hashtbl.t = Hashtbl.create 4096 in
      List.iter
        (fun (e : Span.entry) ->
          match e.Span.sp_ev with
          | Span.Open { id; parent; track; kind; xid = _ } ->
              Hashtbl.replace spans id
                {
                  i_kind = kind;
                  i_parent = parent;
                  i_track = track;
                  i_open = e.Span.sp_time;
                  i_close = Float.nan;
                  i_ok = true;
                };
              if parent >= 0 then
                Hashtbl.replace children parent
                  (id
                  :: Option.value (Hashtbl.find_opt children parent) ~default:[])
          | Span.Close { id; ok } -> (
              match Hashtbl.find_opt spans id with
              | Some i ->
                  i.i_close <- e.Span.sp_time;
                  i.i_ok <- ok
              | None -> ()))
        es;
      (* client phases: only spans under a CLOSED Xact count, so totals
         and the end-to-end sum cover the same transactions *)
      let rec descend id =
        List.iter
          (fun c ->
            (match Hashtbl.find_opt spans c with
            | Some i when not (Float.is_nan i.i_close) ->
                if List.mem i.i_kind client_leaf_kinds then
                  bump client_acc i.i_kind (i.i_close -. i.i_open)
            | Some _ | None -> ());
            descend c)
          (Option.value (Hashtbl.find_opt children id) ~default:[])
      in
      Hashtbl.iter
        (fun id i ->
          match i.i_kind with
          | Span.Xact ->
              (* an [Xact] closed [ok:false] ended in a client crash, not
                 a commit: exclude it like an in-flight one *)
              if Float.is_nan i.i_close || not i.i_ok then incr open_xacts
              else begin
                incr xacts;
                end_to_end := !end_to_end +. (i.i_close -. i.i_open);
                descend id
              end
          | k when List.mem k server_kinds -> (
              if not (Float.is_nan i.i_close) then
                match i.i_track with
                | Span.Server s -> bump server_acc (s, k) (i.i_close -. i.i_open)
                | Span.Client _ -> ())
          | k when List.mem k router_kinds ->
              if not (Float.is_nan i.i_close) then
                bump router_acc k (i.i_close -. i.i_open)
          | _ -> ())
        spans)
    reps;
  let rows_of tbl kinds =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt tbl k with
        | Some (c, s) -> Some { r_kind = k; r_count = c; r_total = s }
        | None -> None)
      kinds
  in
  let client = rows_of client_acc client_leaf_kinds in
  let shards =
    Hashtbl.fold (fun (s, _) _ acc -> if List.mem s acc then acc else s :: acc)
      server_acc []
    |> List.sort Int.compare
  in
  let server =
    List.map
      (fun s ->
        ( s,
          List.filter_map
            (fun k ->
              match Hashtbl.find_opt server_acc (s, k) with
              | Some (c, tot) -> Some { r_kind = k; r_count = c; r_total = tot }
              | None -> None)
            server_kinds ))
      shards
  in
  {
    cp_xacts = !xacts;
    cp_end_to_end = !end_to_end;
    cp_client = client;
    cp_phase_sum = List.fold_left (fun a r -> a +. r.r_total) 0.0 client;
    cp_server = server;
    cp_router = rows_of router_acc router_kinds;
    cp_open_xacts = !open_xacts;
  }

let residual t = t.cp_end_to_end -. t.cp_phase_sum

(* The phase segments tile each transaction exactly (shared boundary
   instants), so the only slack between the phase sum and the engine
   clock's end-to-end sum is float-addition rounding.  [tol] is relative
   to the total, with an absolute floor for near-zero totals. *)
let reconciles ?(tol = 1e-9) t =
  Float.abs (residual t) <= Float.max tol (tol *. Float.abs t.cp_end_to_end)

let pp fmt t =
  let mean = if t.cp_xacts = 0 then 0.0 else t.cp_end_to_end /. float_of_int t.cp_xacts in
  Format.fprintf fmt
    "commit latency decomposition: %d committed xacts, %.6fs end-to-end (mean %.6fs)"
    t.cp_xacts t.cp_end_to_end mean;
  if t.cp_open_xacts > 0 then
    Format.fprintf fmt " [+%d in flight at end, excluded]" t.cp_open_xacts;
  let pct v =
    if t.cp_end_to_end = 0.0 then 0.0 else 100.0 *. v /. t.cp_end_to_end
  in
  List.iter
    (fun r ->
      Format.fprintf fmt "@.  %-14s %12.6fs  %5.1f%%  (%d segments)"
        (Span.kind_name r.r_kind) r.r_total (pct r.r_total) r.r_count)
    t.cp_client;
  Format.fprintf fmt "@.  %-14s %12.2es  (phase sum - engine clock)" "residual"
    (residual t);
  List.iter
    (fun (s, rows) ->
      Format.fprintf fmt "@.  shard %d:" s;
      List.iter
        (fun r ->
          Format.fprintf fmt " %s=%.6fs/%d" (Span.kind_name r.r_kind) r.r_total
            r.r_count)
        rows)
    t.cp_server;
  if t.cp_router <> [] then begin
    Format.fprintf fmt "@.  router:";
    List.iter
      (fun r ->
        Format.fprintf fmt " %s=%.6fs/%d" (Span.kind_name r.r_kind) r.r_total
          r.r_count)
      t.cp_router
  end
