(** The typed protocol-event vocabulary of the simulator.

    One constructor per observable protocol action: client requests,
    server replies, lock waits and grants, deadlocks, aborts, callbacks,
    notifications, commits, disk reads, and the fault-injection events.
    {!Core.Trace} re-exports this type, so call sites emit events through
    the compatibility shim while every analysis and export layer consumes
    them from here. *)

type t =
  | Client_send of { client : int; xid : int; what : string }
  | Server_reply of { client : int; xid : int; what : string }
  | Lock_wait of { client : int; page : int; mode : string }
  | Lock_grant of { client : int; page : int; mode : string }
  | Deadlock of { victim_client : int; cycle : int list }
  | Abort of { client : int; xid : int; reason : string }
  | Callback of { holder : int; page : int }
  | Notify of { client : int; page : int; push : bool }
  | Commit of { client : int; xid : int; n_updates : int }
  | Disk_read of { page : int }
  | Msg_dropped of { bytes : int }
  | Msg_delayed of { bytes : int; by : float }
  | Msg_duplicated of { bytes : int; copies : int }
      (** fault injection transmitted [copies] copies of one message *)
  | Client_crash of { client : int }
  | Client_recover of { client : int; downtime : float }
  | Lock_reclaimed of { client : int; pages : int list }
  | Retransmit of { client : int; xid : int }
  | Server_crash of { killed : int }
      (** server volatile state lost; [killed] in-flight transactions die *)
  | Server_recover of { downtime : float; recovery : float }
      (** server reopened: [downtime] total outage, of which [recovery]
          was spent replaying the log *)
  | Checkpoint of { versions : int }
      (** server forced a committed-version snapshot to the log *)
  | Log_replayed of { records : int; pages : int }
      (** recovery scanned [records] log records / [pages] log pages *)

(** Human-readable one-liner. *)
val to_string : t -> string

(** Stable lower-case tag of the constructor ("lock_wait", "commit", ...). *)
val kind : t -> string

(** The client the event is about, if any ([None] for disk and wire
    events). *)
val actor : t -> int option

(** Grouping label when the event is a network message ("c2s fetch req",
    "s2c callback request", ...); [None] otherwise. *)
val message_label : t -> string option

(** Drop a trailing parenthesized or bracketed argument list from a
    free-text description ("fetch reply (2 data pages)" -> "fetch reply",
    "S lock request [1346]" -> "S lock request"). *)
val strip_args : string -> string
