(** Causal message tracing: per-message trace contexts, per-transaction
    causal DAGs, and message-amplification analytics.

    Senders attach a {!tag} to [Net.Network.post] naming the node whose
    receipt caused the send; the network allocates one node per
    transmitted copy and records {!ev.Send}/{!ev.Recv}/{!ev.Drop}
    events, and clients bracket each transaction with {!ev.Root} and
    {!ev.End} at the exact instants the Xact span opens and closes.
    {!analyze} reconstructs one DAG per transaction, validates it
    (acyclic, single root, send ≤ receive, child send ≥ parent receive)
    and extracts the gating chain from the final ack back to the first
    request.

    The sink discipline is {!Span}'s: a chunked ring buffer in a
    domain-local slot, installed around [Sim.Engine.run], travelling
    back by value so artifacts are byte-identical at any [-j].
    Emission only reads the clock it is handed — no holds, no
    randomness — so enabling causal tracing never perturbs simulation
    results. *)

type ep =
  | Client of int  (** a client endpoint (router included) *)
  | Shard of int  (** a server, by shard id (0 unsharded) *)

(** "client:3" / "shard:0" *)
val ep_name : ep -> string

type ev =
  | Root of { id : int; client : int }
      (** a transaction's causal origin; same instant as its Xact open *)
  | Send of {
      id : int;
      parent : int;  (** causing node, -1 if unknown *)
      xid : int;  (** transaction id, -1 if not bound yet *)
      owner : int;  (** owning client (group fallback), -1 unknown *)
      kind : string;  (** stable protocol-message kind *)
      src : ep;
      dst : ep;
      bytes : int;
      pkts : int;
      retry : int;  (** retransmission index, 0 = first transmission *)
      dup : int;  (** fault-injected duplicate index, 0 = original *)
    }
  | Recv of { id : int }
  | Drop of { id : int }
  | End of { id : int; parent : int; xid : int; client : int; ok : bool }
      (** transaction done; same instant as its Xact close *)

type entry = { cz_time : float; cz_seq : int; cz_ev : ev }

(** The trace context attached to one [Net.Network.post].  Pure data —
    call sites build tags unconditionally; with no sink installed the
    network ignores them. *)
type tag = {
  tg_parent : int;
  tg_xid : int;
  tg_owner : int;
  tg_kind : string;
  tg_src : ep;
  tg_dst : ep;
  tg_retry : int;
}

type t

val default_limit : int
val create : ?limit:int -> unit -> t

(** Entries in emission order (ring-truncated to the last [limit]). *)
val entries : t -> entry array

val length : t -> int
val dropped : t -> int

(** {2 Domain-local sink} *)

type saved

val install : t -> unit
val clear : unit -> unit
val active : unit -> bool
val save : unit -> saved
val restore : saved -> unit

(** Open a transaction's causal group; returns the Root node id, or -1
    (and no record) when no sink is installed. *)
val root : time:float -> client:int -> int

(** Record one transmitted copy; returns its node id or -1.  [dup] is
    the fault-injection duplicate index (0 = the original copy). *)
val send : time:float -> tag:tag -> bytes:int -> pkts:int -> dup:int -> int

(** Record delivery of node [id]; a no-op for [id < 0] or with no sink. *)
val recv : time:float -> int -> unit

(** Record a fault-injected drop of node [id]. *)
val drop : time:float -> int -> unit

(** Close a transaction's causal group; [parent] is the node whose
    receipt completed it (the final reply), [ok] whether it committed. *)
val finish : time:float -> parent:int -> xid:int -> client:int -> ok:bool -> unit

(** Run [f] with a fresh buffer installed; restores the previous sink. *)
val with_causal : ?limit:int -> (unit -> 'a) -> 'a * t

(** {2 Reconstruction, validation and the critical chain} *)

type link = {
  lk_id : int;
  lk_label : string;  (** "root", "end", or the message kind *)
  lk_send : float;
  lk_recv : float;  (** = [lk_send] for root/end links *)
  lk_retry : int;
  lk_dup : int;
}

type dag = {
  dg_rep : int;
  dg_client : int;
  dg_xid : int;
  dg_ok : bool;
  dg_start : float;
  dg_finish : float;
  dg_msgs : int;  (** message sends attributed to this transaction *)
  dg_chain : link list;  (** the gating chain, root first, end last *)
}

type check = {
  ck_groups : int;  (** roots seen *)
  ck_closed : int;  (** groups closed by an End *)
  ck_committed : int;
  ck_msgs : int;
  ck_delivered : int;
  ck_dropped_msgs : int;
  ck_inflight : int;  (** sent, neither delivered nor dropped: allowed *)
  ck_background : int;  (** sends attributable to no transaction *)
  ck_errors : string list;  (** empty iff every DAG is well-formed *)
}

type analysis = {
  an_dags : dag array;  (** closed groups, in close order per rep *)
  an_check : check;
  an_chain_sum : float;
      (** sum of (finish - start) over committed DAGs; reconciles with
          [Critical_path]'s end-to-end sum because Root/End share the
          Xact span's exact open/close instants *)
}

(** Reconstruct and validate rep-tagged entries.  [dropped > 0] relaxes
    the orphan checks (the ring may have overwritten referenced
    nodes). *)
val analyze : ?dropped:int -> (int * entry) array -> analysis

val check_ok : check -> bool
val pp_check : Format.formatter -> check -> unit

(** {2 Message-amplification analytics} *)

type amp = {
  am_kind : string;
  am_msgs : int;
  am_pkts : int;
  am_bytes : int;
  am_retx : int;  (** sends with retry > 0 (first copies only) *)
  am_dups : int;  (** fault-injected duplicate copies *)
}

(** Per-kind totals over every Send node, sorted by kind. *)
val amplification : (int * entry) array -> amp list

(** Observe per-committed-transaction chain shape
    ([ccsim_causal_chain_hops], [ccsim_causal_chain_seconds]) into the
    active metrics registry; a no-op without a metrics sink. *)
val register_chain_metrics : analysis -> unit
