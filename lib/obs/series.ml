(* Fixed-interval time series sampled in simulated time.

   A sampler is an ordinary simulation process that wakes every
   [interval] simulated seconds and reads each source callback once.
   Sources only read statistics (facility busy time, lock-table
   occupancy, counters) — they never hold, block, or draw random numbers
   — so sampling perturbs no simulation outcome; it only adds its own
   wake-up events to the heap. *)

type t = {
  s_interval : float;
  s_start : float;
  s_names : string array;
  mutable s_rows : float array list;  (* newest first *)
  mutable s_count : int;
}

let create ~interval ~start ~names =
  if interval <= 0.0 then invalid_arg "Series.create: interval <= 0";
  if names = [||] then invalid_arg "Series.create: no columns";
  { s_interval = interval; s_start = start; s_names = names; s_rows = []; s_count = 0 }

let interval t = t.s_interval
let start t = t.s_start
let names t = t.s_names
let length t = t.s_count

let record t row =
  if Array.length row <> Array.length t.s_names then
    invalid_arg "Series.record: row width mismatch";
  t.s_rows <- row :: t.s_rows;
  t.s_count <- t.s_count + 1

let rows t = Array.of_list (List.rev t.s_rows)

(* Sample [i] (0-based) was taken at the end of its interval. *)
let time_of t i = t.s_start +. (float_of_int (i + 1) *. t.s_interval)
let times t = Array.init t.s_count (time_of t)

let equal a b =
  a.s_interval = b.s_interval && a.s_start = b.s_start
  && a.s_names = b.s_names && a.s_count = b.s_count
  && rows a = rows b

let sample eng ~interval ~sources =
  let names = Array.of_list (List.map fst sources) in
  let reads = Array.of_list (List.map snd sources) in
  let t = create ~interval ~start:(Sim.Engine.now eng) ~names in
  Sim.Engine.spawn eng ~name:"obs-sampler" (fun () ->
      (* Loops until the engine stops or the run's time limit passes; the
         pending wake-up simply dies with the event heap. *)
      let rec loop () =
        Sim.Engine.hold interval;
        record t (Array.map (fun f -> f ()) reads);
        loop ()
      in
      loop ());
  t
