(* Per-protocol breakdowns computed from a recorded trace: the numbers
   the paper's Sections 4-5 reason with when explaining *why* an
   algorithm wins — messages per commit by kind, lock-wait time
   distribution, abort causes over time, notification fan-out.

   All outputs are deterministic functions of the (rep, time, seq)-ordered
   entry array: association lists are explicitly sorted, and histogram
   buckets are fixed, so summaries diff cleanly across job counts. *)

type hist_bucket = { lo : float; hi : float; count : int }

type summary = {
  n_events : int;
  t_first : float;
  t_last : float;
  n_commits : int;
  n_aborts : int;
  aborts_by_reason : (string * int) list;
  messages_by_kind : (string * int) list;
  msgs_per_commit_by_kind : (string * float) list;
  n_lock_waits : int;
  lock_wait_mean : float;
  lock_wait_max : float;
  lock_wait_hist : hist_bucket list;
  fanout_hist : (int * int) list;
  abort_timeline : (float * int) list;
  timeline_bucket : float;
}

let timeline_buckets = 20

(* Lock-wait histogram: powers-of-ten buckets from 100 us up. *)
let wait_edges = [| 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let summarize_tagged (entries : (int * Recorder.entry) array) =
  let n = Array.length entries in
  let t_first = if n = 0 then 0.0 else (snd entries.(0)).Recorder.time in
  let t_last = ref t_first in
  Array.iter
    (fun (_, e) -> if e.Recorder.time > !t_last then t_last := e.Recorder.time)
    entries;
  let commits = ref 0 in
  let aborts = ref 0 in
  let by_reason : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let by_msg : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some r -> incr r
    | None -> Hashtbl.add tbl k (ref 1)
  in
  (* lock-wait pairing: (rep, client, page) -> wait start *)
  let waiting : (int * int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let wait_n = ref 0 in
  let wait_sum = ref 0.0 in
  let wait_max = ref 0.0 in
  let wait_counts = Array.make (Array.length wait_edges + 1) 0 in
  (* notification fan-out: async messages seen since the rep's previous
     commit, flushed into the histogram at each commit *)
  let pending_fanout : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let fanout : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  (* abort timeline *)
  let span = !t_last -. t_first in
  let bucket_w =
    if span <= 0.0 then 1.0 else span /. float_of_int timeline_buckets
  in
  let timeline = Array.make timeline_buckets 0 in
  let record_abort time =
    incr aborts;
    let b =
      min (timeline_buckets - 1)
        (max 0 (int_of_float ((time -. t_first) /. bucket_w)))
    in
    timeline.(b) <- timeline.(b) + 1
  in
  Array.iter
    (fun (rep, { Recorder.time; ev; _ }) ->
      (match Event.message_label ev with Some l -> bump by_msg l | None -> ());
      match ev with
      | Event.Commit _ ->
          incr commits;
          let k =
            match Hashtbl.find_opt pending_fanout rep with
            | Some r ->
                let v = !r in
                r := 0;
                v
            | None -> 0
          in
          bump fanout k
      | Event.Abort { reason; _ } ->
          record_abort time;
          bump by_reason (Event.strip_args reason)
      | Event.Lock_wait { client; page; _ } ->
          Hashtbl.replace waiting (rep, client, page) time
      | Event.Lock_grant { client; page; _ } -> (
          match Hashtbl.find_opt waiting (rep, client, page) with
          | Some t0 ->
              Hashtbl.remove waiting (rep, client, page);
              let d = time -. t0 in
              incr wait_n;
              wait_sum := !wait_sum +. d;
              if d > !wait_max then wait_max := d;
              let rec slot i =
                if i >= Array.length wait_edges || d < wait_edges.(i) then i
                else slot (i + 1)
              in
              let s = slot 0 in
              wait_counts.(s) <- wait_counts.(s) + 1
          | None -> ())
      | Event.Callback _ | Event.Notify _ -> (
          match Hashtbl.find_opt pending_fanout rep with
          | Some r -> incr r
          | None -> Hashtbl.add pending_fanout rep (ref 1))
      | _ -> ())
    entries;
  let sorted_assoc tbl =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
    |> List.sort (fun (ka, ca) (kb, cb) ->
           let c = Int.compare cb ca in
           if c <> 0 then c else String.compare ka kb)
  in
  let messages_by_kind = sorted_assoc by_msg in
  let msgs_per_commit_by_kind =
    if !commits = 0 then []
    else
      List.map
        (fun (k, c) -> (k, float_of_int c /. float_of_int !commits))
        messages_by_kind
  in
  let lock_wait_hist =
    List.filter_map
      (fun i ->
        if wait_counts.(i) = 0 then None
        else
          let lo = if i = 0 then 0.0 else wait_edges.(i - 1) in
          let hi =
            if i >= Array.length wait_edges then infinity else wait_edges.(i)
          in
          Some { lo; hi; count = wait_counts.(i) })
      (List.init (Array.length wait_counts) Fun.id)
  in
  {
    n_events = n;
    t_first;
    t_last = !t_last;
    n_commits = !commits;
    n_aborts = !aborts;
    aborts_by_reason = sorted_assoc by_reason;
    messages_by_kind;
    msgs_per_commit_by_kind;
    n_lock_waits = !wait_n;
    lock_wait_mean = (if !wait_n = 0 then 0.0 else !wait_sum /. float_of_int !wait_n);
    lock_wait_max = !wait_max;
    lock_wait_hist;
    fanout_hist =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) fanout []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    abort_timeline =
      (if !aborts = 0 then []
       else
         List.init timeline_buckets (fun i ->
             (t_first +. (float_of_int i *. bucket_w), timeline.(i))));
    timeline_bucket = bucket_w;
  }

let summarize entries =
  summarize_tagged (Array.map (fun e -> (0, e)) entries)

let time_string d =
  if d < 1e-3 then Printf.sprintf "%.0fus" (d *. 1e6)
  else if d < 1.0 then Printf.sprintf "%.1fms" (d *. 1e3)
  else Printf.sprintf "%.3fs" d

let pp_summary fmt s =
  Format.fprintf fmt "trace: %d events over %.1fs..%.1fs | %d commits, %d aborts@."
    s.n_events s.t_first s.t_last s.n_commits s.n_aborts;
  if s.aborts_by_reason <> [] then begin
    Format.fprintf fmt "  abort causes:";
    List.iter (fun (k, c) -> Format.fprintf fmt " %s=%d" k c) s.aborts_by_reason;
    Format.fprintf fmt "@."
  end;
  if s.msgs_per_commit_by_kind <> [] then begin
    Format.fprintf fmt "  messages per commit by kind:@.";
    List.iter2
      (fun (k, per) (_, total) ->
        Format.fprintf fmt "    %-24s %8.2f  (%d total)@." k per total)
      s.msgs_per_commit_by_kind s.messages_by_kind
  end;
  if s.n_lock_waits > 0 then begin
    Format.fprintf fmt "  lock waits: %d, mean %s, max %s@." s.n_lock_waits
      (time_string s.lock_wait_mean)
      (time_string s.lock_wait_max);
    List.iter
      (fun { lo; hi; count } ->
        let range =
          if hi = infinity then Printf.sprintf ">= %s" (time_string lo)
          else Printf.sprintf "%s .. %s" (time_string lo) (time_string hi)
        in
        Format.fprintf fmt "    %-20s %6d@." range count)
      s.lock_wait_hist
  end;
  (match s.fanout_hist with
  | [] | [ (0, _) ] -> ()
  | h ->
      Format.fprintf fmt "  callbacks+notifications per commit:";
      List.iter (fun (k, c) -> Format.fprintf fmt " %dx%d" k c) h;
      Format.fprintf fmt "@.");
  match s.abort_timeline with
  | [] -> ()
  | tl ->
      Format.fprintf fmt "  abort timeline (bucket %.1fs):" s.timeline_bucket;
      List.iter (fun (_, c) -> Format.fprintf fmt " %d" c) tl;
      Format.fprintf fmt "@."
