(** Online metrics registry: log-bucketed histograms with O(1) record
    and exact associative merge, counters, gauges — exported as
    OpenMetrics text.

    Every numeric state that merging must preserve exactly is an
    integer (counter values, histogram bucket counts), so merging
    per-replication registries recorded in different domains yields one
    deterministic artifact at any [-j].  Recording never holds or draws
    randomness: enabling metrics cannot perturb a simulation. *)

module Hist : sig
  type t

  (** Sub-buckets per octave. *)
  val sub : int

  val n_buckets : int
  val create : unit -> t
  val record : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** Index of the bucket holding [v]. *)
  val bucket_of : float -> int

  (** [lower, upper) range of a bucket.  The quantile estimate's error
      is bounded by [upper -. lower] of the answering bucket. *)
  val bucket_bounds : int -> float * float

  (** Nearest-rank estimate: the upper bound of the bucket holding the
      rank-⌈q·n⌉ observation — within one bucket width of the truth. *)
  val quantile : t -> float -> float

  (** Element-wise bucket addition: exactly associative/commutative. *)
  val merge : t -> t -> t

  (** Equality of the integer state (total and buckets; [sum] excluded). *)
  val equal : t -> t -> bool

  val copy : t -> t
  val counts : t -> int array
end

type t

val create : unit -> t
val incr : t -> string -> int -> unit
val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit
val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option
val histogram : t -> string -> Hist.t option
val is_empty : t -> bool

(** Counters and histograms add; gauges take the max. *)
val merge : t list -> t

val equal : t -> t -> bool

(** OpenMetrics text exposition, sorted by series name.  Series names
    may carry labels inline ("name{k=\"v\"}"); histograms expand into
    cumulative [_bucket]/[_count]/[_sum] series with empty buckets
    elided. *)
val to_openmetrics : t -> string

(** {2 Domain-local sink} *)

type saved

val install : t -> unit
val clear : unit -> unit
val active : unit -> bool
val save : unit -> saved
val restore : saved -> unit

(** Sink-targeted recording: no-ops when no registry is installed. *)
val incr_s : string -> int -> unit

val set_gauge_s : string -> float -> unit
val observe_s : string -> float -> unit

(** Run [f] with a fresh registry installed; restores the previous sink. *)
val with_metrics : (unit -> 'a) -> 'a * t
