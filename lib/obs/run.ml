type fac_snapshot = {
  fac_name : string;
  fac_capacity : int;
  fac_utilization : float;
  fac_mean_queue : float;
  fac_max_queue : int;
  fac_busy_time : float;
  fac_completions : int;
}

let snapshot_facility f =
  {
    fac_name = Sim.Facility.name f;
    fac_capacity = Sim.Facility.capacity f;
    fac_utilization = Sim.Facility.utilization f;
    fac_mean_queue = Sim.Facility.mean_queue_length f;
    fac_max_queue = Sim.Facility.max_queue_length f;
    fac_busy_time = Sim.Facility.busy_time f;
    fac_completions = Sim.Facility.completions f;
  }

type rep = {
  rep_seed : int;
  trace : Recorder.entry array;
  trace_dropped : int;
  series : Series.t option;
  facilities : fac_snapshot list;
  profile : Sim.Engine.profile option;
  spans : Span.entry array;
  spans_dropped : int;
  metrics : Metrics.t option;
  causal : Causal.entry array;
  causal_dropped : int;
}

type t = { reps : rep list }

let merge runs = { reps = List.concat_map (fun r -> r.reps) runs }

(* Replications are concatenated in seed order and each rep's entries are
   already sorted by (time, seq), so the merged trace is a deterministic
   function of the spec — identical at any [-j]. *)
let merged_trace t =
  let parts = List.mapi (fun i r -> Array.map (fun e -> (i, e)) r.trace) t.reps in
  Array.concat parts

(* Same discipline for spans: rep-tagged, in seed order. *)
let merged_spans t =
  let parts = List.mapi (fun i r -> Array.map (fun e -> (i, e)) r.spans) t.reps in
  Array.concat parts

(* And for causal message records. *)
let merged_causal t =
  let parts =
    List.mapi (fun i r -> Array.map (fun e -> (i, e)) r.causal) t.reps
  in
  Array.concat parts

(* One registry for the whole run: counters and histogram buckets add
   exactly; the fold runs in seed order, so the merged artifact is a
   deterministic function of the spec at any [-j]. *)
let merged_metrics t =
  match List.filter_map (fun r -> r.metrics) t.reps with
  | [] -> None
  | ms -> Some (Metrics.merge ms)

let total_events t =
  List.fold_left (fun a r -> a + Array.length r.trace) 0 t.reps

let total_spans t =
  List.fold_left (fun a r -> a + Array.length r.spans) 0 t.reps

let total_causal t =
  List.fold_left (fun a r -> a + Array.length r.causal) 0 t.reps

let causal_dropped t =
  List.fold_left (fun a r -> a + r.causal_dropped) 0 t.reps

let pp_fac_snapshot fmt f =
  Format.fprintf fmt
    "%-14s cap=%-2d util=%.3f mean-q=%.3f max-q=%-4d busy=%.1fs done=%d"
    f.fac_name f.fac_capacity f.fac_utilization f.fac_mean_queue f.fac_max_queue
    f.fac_busy_time f.fac_completions
