(** Latency decomposition from span records.

    The client instrumentation tiles each committed transaction's
    [Xact] span with leaf phase segments; summing them per phase
    decomposes end-to-end commit latency additively.  Server and router
    spans overlap the client's wait phases (the waterfall's lower
    layers) and are aggregated per track. *)

type row = { r_kind : Span.kind; r_count : int; r_total : float }

type t = {
  cp_xacts : int;  (** committed transactions (closed [Xact] spans) *)
  cp_end_to_end : float;  (** sum of their engine-clock durations *)
  cp_client : row list;  (** additive leaf phases, fixed kind order *)
  cp_phase_sum : float;  (** sum of the leaf totals *)
  cp_server : (int * row list) list;  (** per shard, ascending *)
  cp_router : row list;  (** 2PC prepare / decide *)
  cp_open_xacts : int;  (** in flight at end, or crash-ended; excluded *)
}

val client_leaf_kinds : Span.kind list

(** Analyze a rep-tagged merged span record (see {!Run.merged_spans}). *)
val analyze : (int * Span.entry) array -> t

(** [cp_end_to_end -. cp_phase_sum]: floating rounding only. *)
val residual : t -> float

(** Does the phase sum reconcile with the engine clock?  [tol] (default
    1e-9) is relative to the end-to-end total. *)
val reconciles : ?tol:float -> t -> bool

val pp : Format.formatter -> t -> unit
