type t =
  | Client_send of { client : int; xid : int; what : string }
  | Server_reply of { client : int; xid : int; what : string }
  | Lock_wait of { client : int; page : int; mode : string }
  | Lock_grant of { client : int; page : int; mode : string }
  | Deadlock of { victim_client : int; cycle : int list }
  | Abort of { client : int; xid : int; reason : string }
  | Callback of { holder : int; page : int }
  | Notify of { client : int; page : int; push : bool }
  | Commit of { client : int; xid : int; n_updates : int }
  | Disk_read of { page : int }
  | Msg_dropped of { bytes : int }
  | Msg_delayed of { bytes : int; by : float }
  | Msg_duplicated of { bytes : int; copies : int }
  | Client_crash of { client : int }
  | Client_recover of { client : int; downtime : float }
  | Lock_reclaimed of { client : int; pages : int list }
  | Retransmit of { client : int; xid : int }
  | Server_crash of { killed : int }
  | Server_recover of { downtime : float; recovery : float }
  | Checkpoint of { versions : int }
  | Log_replayed of { records : int; pages : int }

let to_string = function
  | Client_send { client; xid; what } ->
      Printf.sprintf "client %d -> server: %s (xid %d)" client what xid
  | Server_reply { client; xid; what } ->
      Printf.sprintf "server -> client %d: %s (xid %d)" client what xid
  | Lock_wait { client; page; mode } ->
      Printf.sprintf "client %d blocks for %s lock on page %d" client mode page
  | Lock_grant { client; page; mode } ->
      Printf.sprintf "client %d granted %s lock on page %d" client mode page
  | Deadlock { victim_client; cycle } ->
      Printf.sprintf "deadlock [%s]: victim is client %d"
        (String.concat " -> " (List.map string_of_int cycle))
        victim_client
  | Abort { client; xid; reason } ->
      Printf.sprintf "abort client %d xid %d (%s)" client xid reason
  | Callback { holder; page } ->
      Printf.sprintf "callback request to client %d for page %d" holder page
  | Notify { client; page; push } ->
      Printf.sprintf "%s to client %d for page %d"
        (if push then "update push" else "invalidation")
        client page
  | Commit { client; xid; n_updates } ->
      Printf.sprintf "commit client %d xid %d (%d updated pages)" client xid
        n_updates
  | Disk_read { page } -> Printf.sprintf "disk read page %d" page
  | Msg_dropped { bytes } -> Printf.sprintf "message dropped (%d bytes)" bytes
  | Msg_delayed { bytes; by } ->
      Printf.sprintf "message delayed %.4fs (%d bytes)" by bytes
  | Msg_duplicated { bytes; copies } ->
      Printf.sprintf "message duplicated x%d (%d bytes)" copies bytes
  | Client_crash { client } -> Printf.sprintf "client %d crashed" client
  | Client_recover { client; downtime } ->
      Printf.sprintf "client %d recovered after %.4fs" client downtime
  | Lock_reclaimed { client; pages } ->
      Printf.sprintf "lease expired: reclaimed %d lock(s) of client %d [%s]"
        (List.length pages) client
        (String.concat " " (List.map string_of_int pages))
  | Retransmit { client; xid } ->
      Printf.sprintf "client %d retransmits request (xid %d)" client xid
  | Server_crash { killed } ->
      Printf.sprintf "server crashed (%d in-flight transaction(s) killed)"
        killed
  | Server_recover { downtime; recovery } ->
      Printf.sprintf "server recovered after %.4fs (%.4fs log replay)"
        downtime recovery
  | Checkpoint { versions } ->
      Printf.sprintf "checkpoint (%d page version(s) snapshotted)" versions
  | Log_replayed { records; pages } ->
      Printf.sprintf "log replayed (%d record(s), %d page(s) read)" records
        pages

let kind = function
  | Client_send _ -> "client_send"
  | Server_reply _ -> "server_reply"
  | Lock_wait _ -> "lock_wait"
  | Lock_grant _ -> "lock_grant"
  | Deadlock _ -> "deadlock"
  | Abort _ -> "abort"
  | Callback _ -> "callback"
  | Notify _ -> "notify"
  | Commit _ -> "commit"
  | Disk_read _ -> "disk_read"
  | Msg_dropped _ -> "msg_dropped"
  | Msg_delayed _ -> "msg_delayed"
  | Msg_duplicated _ -> "msg_duplicated"
  | Client_crash _ -> "client_crash"
  | Client_recover _ -> "client_recover"
  | Lock_reclaimed _ -> "lock_reclaimed"
  | Retransmit _ -> "retransmit"
  | Server_crash _ -> "server_crash"
  | Server_recover _ -> "server_recover"
  | Checkpoint _ -> "checkpoint"
  | Log_replayed _ -> "log_replayed"

let actor = function
  | Client_send { client; _ }
  | Server_reply { client; _ }
  | Lock_wait { client; _ }
  | Lock_grant { client; _ }
  | Abort { client; _ }
  | Notify { client; _ }
  | Commit { client; _ }
  | Client_crash { client }
  | Client_recover { client; _ }
  | Lock_reclaimed { client; _ }
  | Retransmit { client; _ } ->
      Some client
  | Callback { holder; _ } -> Some holder
  | Deadlock { victim_client; _ } -> Some victim_client
  | Disk_read _ | Msg_dropped _ | Msg_delayed _ | Msg_duplicated _
  | Server_crash _ | Server_recover _ | Checkpoint _ | Log_replayed _ ->
      None

(* Free-text message descriptions carry arguments ("fetch reply (2 data
   pages)", "S lock request [1346]"); the grouping label is the text up to
   the argument list. *)
let strip_args s =
  let cut_at c s =
    match String.index_opt s c with
    | Some i when i > 0 && s.[i - 1] = ' ' -> String.sub s 0 (i - 1)
    | _ -> s
  in
  cut_at '(' (cut_at '[' s)

(* Label of a network message event for per-kind message accounting;
   [None] for events that are not messages. *)
let message_label = function
  | Client_send { what; _ } -> Some ("c2s " ^ strip_args what)
  | Retransmit _ -> Some "c2s retransmit"
  | Server_reply { what; _ } -> Some ("s2c " ^ strip_args what)
  | Callback _ -> Some "s2c callback request"
  | Notify { push = true; _ } -> Some "s2c update push"
  | Notify { push = false; _ } -> Some "s2c invalidation"
  | Lock_wait _ | Lock_grant _ | Deadlock _ | Abort _ | Commit _ | Disk_read _
  | Msg_dropped _ | Msg_delayed _ | Msg_duplicated _ | Client_crash _
  | Client_recover _ | Lock_reclaimed _ | Server_crash _ | Server_recover _
  | Checkpoint _ | Log_replayed _ ->
      None
