(** Observability payload of one simulation run (or of every replication
    of a replicated run), attached to [Core.Simulator.result].

    Each replication contributes one {!rep}: its recorded trace, sampled
    series, end-of-run facility snapshots, and engine profile.  Everything
    is plain data computed inside whatever domain ran the simulation, so
    payloads cross {!Sim.Pool} boundaries by value and merge
    deterministically in seed order. *)

(** End-of-run statistics of one service facility (CPU, disk, wire). *)
type fac_snapshot = {
  fac_name : string;
  fac_capacity : int;
  fac_utilization : float;
  fac_mean_queue : float;
  fac_max_queue : int;  (** longest queue observed in the window *)
  fac_busy_time : float;  (** cumulative busy unit-seconds *)
  fac_completions : int;
}

val snapshot_facility : Sim.Facility.t -> fac_snapshot
val pp_fac_snapshot : Format.formatter -> fac_snapshot -> unit

type rep = {
  rep_seed : int;
  trace : Recorder.entry array;  (** emission order; empty if tracing off *)
  trace_dropped : int;  (** entries lost to the ring limit *)
  series : Series.t option;
  facilities : fac_snapshot list;
  profile : Sim.Engine.profile option;
  spans : Span.entry array;  (** emission order; empty if spans off *)
  spans_dropped : int;  (** span entries lost to the ring limit *)
  metrics : Metrics.t option;  (** this replication's registry *)
  causal : Causal.entry array;  (** emission order; empty if causal off *)
  causal_dropped : int;  (** causal entries lost to the ring limit *)
}

type t = { reps : rep list }

(** Concatenate payloads in argument order (replication order). *)
val merge : t list -> t

(** All replications' entries tagged with their replication index, in
    (rep, time, seq) order — the deterministic merged trace. *)
val merged_trace : t -> (int * Recorder.entry) array

(** All replications' span entries, rep-tagged in seed order. *)
val merged_spans : t -> (int * Span.entry) array

(** All replications' causal entries, rep-tagged in seed order. *)
val merged_causal : t -> (int * Causal.entry) array

(** One registry for the whole run: per-rep registries merged in seed
    order (exact on counters and histogram buckets). *)
val merged_metrics : t -> Metrics.t option

val total_events : t -> int
val total_spans : t -> int
val total_causal : t -> int
val causal_dropped : t -> int
