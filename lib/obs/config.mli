(** Per-run observability switches, carried inside the simulator spec.

    {!off} (the default everywhere) turns every layer off: no recorder is
    installed, no sampler process is spawned, no profiling is enabled, and
    the simulation is bit-identical to one run before this subsystem
    existed. *)

type t = {
  trace : bool;  (** record typed events into a {!Recorder} buffer *)
  trace_limit : int;  (** ring capacity; oldest entries drop past it *)
  series : bool;  (** spawn the fixed-interval facility/lock sampler *)
  sample_interval : float;  (** sampler period, simulated seconds *)
  profile : bool;  (** enable per-process engine profiling *)
}

(** Everything disabled — the default. *)
val off : t

val default_interval : float

val make :
  ?trace:bool ->
  ?trace_limit:int ->
  ?series:bool ->
  ?sample_interval:float ->
  ?profile:bool ->
  unit ->
  t

(** Trace recording only. *)
val trace_only : t

(** Trace + series + engine profile. *)
val full : t

(** Is any layer on? *)
val enabled : t -> bool
