(** Per-run observability switches, carried inside the simulator spec.

    {!off} (the default everywhere) turns every layer off: no recorder,
    span buffer, or metrics registry is installed, no sampler process is
    spawned, no profiling is enabled, and the simulation is bit-identical
    to one run before this subsystem existed. *)

type t = {
  trace : bool;  (** record typed events into a {!Recorder} buffer *)
  trace_limit : int;  (** ring capacity; oldest entries drop past it *)
  series : bool;  (** spawn the fixed-interval facility/lock sampler *)
  sample_interval : float;  (** sampler period, simulated seconds *)
  profile : bool;  (** enable per-process engine profiling *)
  spans : bool;  (** record typed transaction spans into a {!Span} buffer *)
  span_limit : int;  (** span ring capacity *)
  metrics : bool;  (** install an online {!Metrics} registry *)
  causal : bool;  (** record causal message DAGs into a {!Causal} buffer *)
  causal_limit : int;  (** causal ring capacity *)
}

(** Everything disabled — the default. *)
val off : t

val default_interval : float

val make :
  ?trace:bool ->
  ?trace_limit:int ->
  ?series:bool ->
  ?sample_interval:float ->
  ?profile:bool ->
  ?spans:bool ->
  ?span_limit:int ->
  ?metrics:bool ->
  ?causal:bool ->
  ?causal_limit:int ->
  unit ->
  t

(** Trace recording only. *)
val trace_only : t

(** Every layer on. *)
val full : t

(** Spans + metrics: what [ccsim metrics] and the latency telemetry use. *)
val latency : t

(** Spans + metrics + causal message DAGs: what [ccsim causal] uses. *)
val causal : t

(** Is any layer on? *)
val enabled : t -> bool
