(** Typed, nested transaction spans.

    A span is an [Open]/[Close] pair in a per-domain ring buffer,
    identified by an id unique within one replication, with an explicit
    parent id (so concurrent spans on one track cannot produce false
    containment violations).  The sink discipline is {!Recorder}'s:
    install a buffer around [Sim.Engine.run] in whatever domain runs the
    simulation, and the filled buffer travels back by value — span
    artifacts are byte-identical at any [-j].  Emission only reads the
    clock it is handed: no holds, no randomness, so enabling spans never
    perturbs simulation results. *)

type track =
  | Client of int  (** a client's timeline (its router included) *)
  | Server of int  (** a server, by shard id (0 unsharded) *)

type kind =
  | Xact  (** whole transaction: first attempt's start to commit *)
  | Attempt  (** one attempt (one xid) *)
  | Think  (** client think-time hold *)
  | Client_cpu  (** client compute: CPU charges, sends, cache work *)
  | Fetch_wait  (** blocked on a lock/write fetch round trip *)
  | Cert_wait  (** blocked on a certification read round trip *)
  | Commit_wait  (** blocked on the commit round trip (2PC included) *)
  | Abort_work  (** abort cleanup between a restart and its delay *)
  | Restart_wait  (** back-off delay before the next attempt *)
  | Lock_wait  (** server: a queued lock request *)
  | Cb_round  (** server: lock wait resolved by a callback round *)
  | Disk_io  (** server: data-disk access *)
  | Log_force  (** server: WAL force *)
  | Prepare_2pc  (** router: prepares out, collecting votes *)
  | Decide_2pc  (** router: decision out, collecting acks *)

val kind_name : kind -> string
val track_name : track -> string

type ev =
  | Open of { id : int; parent : int; track : track; kind : kind; xid : int }
  | Close of { id : int; ok : bool }

type entry = { sp_time : float; sp_seq : int; sp_ev : ev }

type t

val default_limit : int
val create : ?limit:int -> unit -> t

(** Entries in emission order (ring-truncated to the last [limit]). *)
val entries : t -> entry array

val length : t -> int
val dropped : t -> int

(** {2 Domain-local sink} *)

type saved

val install : t -> unit
val clear : unit -> unit
val active : unit -> bool
val save : unit -> saved
val restore : saved -> unit

(** Allocate an id and record the open; [-1] (and no record) when no
    sink is installed.  [parent = -1] makes a root span. *)
val open_span :
  time:float -> track:track -> kind:kind -> parent:int -> xid:int -> int

(** Record the close; a no-op for [id < 0] or with no sink installed.
    [ok:false] marks a span ended by an abort or a crash. *)
val close_span : time:float -> ?ok:bool -> int -> unit

(** Run [f] with a fresh buffer installed; restores the previous sink. *)
val with_spans : ?limit:int -> (unit -> 'a) -> 'a * t

(** {2 Self-validation} *)

type check = {
  ck_opened : int;
  ck_closed : int;
  ck_unclosed : int;  (** spans still open when the run ended: allowed *)
  ck_errors : string list;  (** empty iff the record is well-formed *)
}

(** Check one replication's record: non-decreasing timestamps, balanced
    and unique open/close, parent containment.  [dropped > 0] relaxes
    the orphan checks (the ring may have overwritten the opens). *)
val validate : ?dropped:int -> entry array -> check

val check_ok : check -> bool
val pp_check : Format.formatter -> check -> unit
