(** Fixed-interval time series over simulated time.

    A series holds one row of float values per sampling tick, one column
    per named source.  {!sample} spawns the sampler as a simulation
    process, so series are recorded inside every run — including runs
    dispatched to {!Sim.Pool} workers — and travel back to the caller by
    value.

    Sampling is observation-only: sources must read statistics without
    holding, blocking, or consuming randomness, so a sampled run computes
    exactly the results of an unsampled one. *)

type t

(** [create ~interval ~start ~names] is an empty series; [interval] is in
    simulated seconds and must be positive. *)
val create : interval:float -> start:float -> names:string array -> t

val interval : t -> float
val start : t -> float
val names : t -> string array

(** Rows recorded so far. *)
val length : t -> int

(** Append one row (width must match [names]). *)
val record : t -> float array -> unit

(** Rows in recording order. *)
val rows : t -> float array array

(** Simulated timestamp of each row: row [i] was sampled at
    [start + (i+1) * interval]. *)
val times : t -> float array

(** Structural equality (names, window, and every sample). *)
val equal : t -> t -> bool

(** [sample eng ~interval ~sources] spawns a sampler process on [eng]
    that, every [interval] simulated seconds, reads every source callback
    once and records the row.  Returns the (still-filling) series; it is
    complete when the engine finishes running. *)
val sample :
  Sim.Engine.t ->
  interval:float ->
  sources:(string * (unit -> float)) list ->
  t
