type t = {
  trace : bool;
  trace_limit : int;
  series : bool;
  sample_interval : float;
  profile : bool;
  spans : bool;
  span_limit : int;
  metrics : bool;
  causal : bool;
  causal_limit : int;
}

let default_interval = 10.0

let off =
  {
    trace = false;
    trace_limit = Recorder.default_limit;
    series = false;
    sample_interval = default_interval;
    profile = false;
    spans = false;
    span_limit = Span.default_limit;
    metrics = false;
    causal = false;
    causal_limit = Causal.default_limit;
  }

let make ?(trace = false) ?(trace_limit = Recorder.default_limit)
    ?(series = false) ?(sample_interval = default_interval) ?(profile = false)
    ?(spans = false) ?(span_limit = Span.default_limit) ?(metrics = false)
    ?(causal = false) ?(causal_limit = Causal.default_limit) () =
  if trace_limit < 1 then invalid_arg "Obs.Config.make: trace_limit < 1";
  if span_limit < 1 then invalid_arg "Obs.Config.make: span_limit < 1";
  if causal_limit < 1 then invalid_arg "Obs.Config.make: causal_limit < 1";
  if sample_interval <= 0.0 then
    invalid_arg "Obs.Config.make: sample_interval <= 0";
  { trace; trace_limit; series; sample_interval; profile; spans; span_limit;
    metrics; causal; causal_limit }

let trace_only = make ~trace:true ()
let full = make ~trace:true ~series:true ~profile:true ~spans:true ~metrics:true ()
let latency = make ~spans:true ~metrics:true ()
let causal = make ~spans:true ~metrics:true ~causal:true ()
let enabled t =
  t.trace || t.series || t.profile || t.spans || t.metrics || t.causal
