(* Run-quality statistics: how tight are the numbers a simulation run (or
   a set of replications) reports?

   Everything here is dependency-free numerics: the Student-t quantile is
   computed from the regularized incomplete beta function (continued
   fraction, Numerical Recipes style) and inverted by bisection, which is
   far more than accurate enough for confidence intervals on a handful of
   replications.  The Welch warmup diagnostic smooths a sampled series and
   asks when it settles into its steady-state band. *)

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

(* Lanczos approximation (g = 7, 9 coefficients): |relative error| below
   1e-13 over the positive reals, with the reflection formula for x < 0.5. *)
let rec ln_gamma x =
  if x < 0.5 then
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1.0 -. x)
  else begin
    let c =
      [|
        0.99999999999980993; 676.5203681218851; -1259.1392167224028;
        771.32342877765313; -176.61502916214059; 12.507343278686905;
        -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
      |]
    in
    let x = x -. 1.0 in
    let acc = ref c.(0) in
    for i = 1 to 8 do
      acc := !acc +. (c.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t +. log !acc
  end

(* Continued-fraction evaluation of the incomplete beta (Lentz's method). *)
let betacf a b x =
  let max_iter = 300 and eps = 3e-16 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let mf = float_of_int m in
       let m2 = 2.0 *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < eps then raise Exit
     done
   with Exit -> ());
  !h

let reg_inc_beta a b x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let ln_bt =
      ln_gamma (a +. b) -. ln_gamma a -. ln_gamma b
      +. (a *. log x)
      +. (b *. log (1.0 -. x))
    in
    let bt = exp ln_bt in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)
  end

let t_cdf ~df t =
  if df <= 0.0 then invalid_arg "Run_stats.t_cdf: df must be positive";
  if t = 0.0 then 0.5
  else begin
    let x = df /. (df +. (t *. t)) in
    let p = 0.5 *. reg_inc_beta (df /. 2.0) 0.5 x in
    if t > 0.0 then 1.0 -. p else p
  end

let rec t_quantile ~df p =
  if df <= 0.0 then invalid_arg "Run_stats.t_quantile: df must be positive";
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Run_stats.t_quantile: p outside (0,1)";
  if p < 0.5 then -.t_quantile ~df (1.0 -. p)
  else if p = 0.5 then 0.0
  else begin
    (* bracket the quantile, then bisect the monotone CDF *)
    let hi = ref 1.0 in
    while t_cdf ~df !hi < p && !hi < 1e9 do
      hi := !hi *. 2.0
    done;
    let lo = ref 0.0 in
    for _ = 1 to 120 do
      let mid = 0.5 *. (!lo +. !hi) in
      if t_cdf ~df mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

(* ------------------------------------------------------------------ *)
(* Confidence intervals                                                *)
(* ------------------------------------------------------------------ *)

type ci = {
  ci_n : int;
  ci_mean : float;
  ci_half : float;  (* nan when n < 2 *)
  ci_confidence : float;
}

let available c = c.ci_n >= 2 && not (Float.is_nan c.ci_half)

let mean_ci ?(confidence = 0.95) xs =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Run_stats.mean_ci: confidence outside (0,1)";
  let n = Array.length xs in
  if n = 0 then
    { ci_n = 0; ci_mean = 0.0; ci_half = Float.nan; ci_confidence = confidence }
  else begin
    let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    if n < 2 then
      { ci_n = n; ci_mean = mean; ci_half = Float.nan; ci_confidence = confidence }
    else begin
      let ss =
        Array.fold_left
          (fun a x ->
            let d = x -. mean in
            a +. (d *. d))
          0.0 xs
      in
      let var = ss /. float_of_int (n - 1) in
      let t =
        t_quantile ~df:(float_of_int (n - 1))
          (1.0 -. ((1.0 -. confidence) /. 2.0))
      in
      {
        ci_n = n;
        ci_mean = mean;
        ci_half = t *. sqrt (var /. float_of_int n);
        ci_confidence = confidence;
      }
    end
  end

let ci_lo c = if available c then c.ci_mean -. c.ci_half else Float.nan
let ci_hi c = if available c then c.ci_mean +. c.ci_half else Float.nan

let rel_half_width c =
  if not (available c) || c.ci_mean = 0.0 then None
  else Some (c.ci_half /. Float.abs c.ci_mean)

(* Pooled precision of a whole figure/table: the mean relative half-width
   over the cells that have one. *)
let pooled_rel_half_width cis =
  let rs = List.filter_map rel_half_width cis in
  match rs with
  | [] -> None
  | _ ->
      Some (List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs))

let half_string ?(digits = 3) c =
  if available c then Printf.sprintf "%.*f" digits c.ci_half else "n/a"

(* ------------------------------------------------------------------ *)
(* Batch means (single long run)                                       *)
(* ------------------------------------------------------------------ *)

(* The classic batch-means estimator: chop one long (post-warmup) stream
   of observations into [batches] contiguous batches, treat the batch
   means as approximately independent, and apply the Student-t interval
   to them.  When the stream does not divide evenly the OLDEST remainder
   observations are dropped, biasing the estimate toward the
   steady-state tail. *)
let batch_means ?(confidence = 0.95) ?(batches = 20) xs =
  let n = Array.length xs in
  if batches < 2 then invalid_arg "Run_stats.batch_means: need >= 2 batches";
  if n < 4 then None
  else begin
    let k = min batches (n / 2) in
    let m = n / k in
    let off = n - (k * m) in
    let means =
      Array.init k (fun i ->
          let s = ref 0.0 in
          for j = 0 to m - 1 do
            s := !s +. xs.(off + (i * m) + j)
          done;
          !s /. float_of_int m)
    in
    Some (mean_ci ~confidence means)
  end

(* ------------------------------------------------------------------ *)
(* Welch warmup-adequacy diagnostic                                    *)
(* ------------------------------------------------------------------ *)

type warmup = {
  wu_samples : int;
  wu_warmup_end : float;
  wu_settle : float option;
      (* earliest sampled time from which the smoothed curve stays inside
         the steady-state band; None when it never settles *)
  wu_tail_mean : float;
  wu_adequate : bool;
}

let moving_average ~window xs =
  let n = Array.length xs in
  Array.init n (fun i ->
      let lo = max 0 (i - window) and hi = min (n - 1) (i + window) in
      let s = ref 0.0 in
      for j = lo to hi do
        s := !s +. xs.(j)
      done;
      !s /. float_of_int (hi - lo + 1))

let warmup_diagnostic ?(band = 0.05) ?window ~warmup_end ~times values =
  let n = Array.length values in
  if Array.length times <> n then
    invalid_arg "Run_stats.warmup_diagnostic: times/values length mismatch";
  if n < 4 then
    (* too short to judge; report inconclusive-but-adequate so that short
       smoke runs do not cry wolf *)
    {
      wu_samples = n;
      wu_warmup_end = warmup_end;
      wu_settle = None;
      wu_tail_mean =
        (if n = 0 then 0.0
         else Array.fold_left ( +. ) 0.0 values /. float_of_int n);
      wu_adequate = true;
    }
  else begin
    let window = match window with Some w -> max 1 w | None -> max 1 (n / 10) in
    let s = moving_average ~window values in
    let tail_from = n / 2 in
    let tail_mean =
      let acc = ref 0.0 in
      for i = tail_from to n - 1 do
        acc := !acc +. s.(i)
      done;
      !acc /. float_of_int (n - tail_from)
    in
    let spread =
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun v ->
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        s;
      !hi -. !lo
    in
    let tol = band *. Float.max (Float.abs tail_mean) spread in
    (* scan backward for the first index violating the band; everything
       after it is settled *)
    let settle_idx = ref 0 in
    (try
       for i = n - 1 downto 0 do
         if Float.abs (s.(i) -. tail_mean) > tol then begin
           settle_idx := i + 1;
           raise Exit
         end
       done
     with Exit -> ());
    let settle =
      if !settle_idx >= n then None else Some times.(!settle_idx)
    in
    let adequate =
      match settle with Some t -> t <= warmup_end | None -> false
    in
    {
      wu_samples = n;
      wu_warmup_end = warmup_end;
      wu_settle = settle;
      wu_tail_mean = tail_mean;
      wu_adequate = adequate;
    }
  end
