(* Typed, nested transaction spans.

   A span is an [Open]/[Close] pair of records in a per-domain buffer,
   identified by an id that is unique within one replication.  Parents
   are explicit ids rather than per-track bracket stacks, so concurrent
   spans on the same track (two server handlers, a fetch racing a
   callback) never produce false containment violations.

   The buffer mirrors {!Recorder}: chunked ring storage with a monotone
   sequence number, a domain-local sink slot installed around
   [Sim.Engine.run], and payloads that travel back to the caller by
   value — identical at any [Sim.Pool] job count.  Emission only reads
   the clock it is handed; it never holds or draws randomness, so
   span-off runs are bit-identical to spans-on runs modulo the buffer. *)

type track = Client of int | Server of int

type kind =
  | Xact
  | Attempt
  | Think
  | Client_cpu
  | Fetch_wait
  | Cert_wait
  | Commit_wait
  | Abort_work
  | Restart_wait
  | Lock_wait
  | Cb_round
  | Disk_io
  | Log_force
  | Prepare_2pc
  | Decide_2pc

let kind_name = function
  | Xact -> "xact"
  | Attempt -> "attempt"
  | Think -> "think"
  | Client_cpu -> "client_cpu"
  | Fetch_wait -> "fetch_wait"
  | Cert_wait -> "cert_wait"
  | Commit_wait -> "commit_wait"
  | Abort_work -> "abort_work"
  | Restart_wait -> "restart_wait"
  | Lock_wait -> "lock_wait"
  | Cb_round -> "callback_round"
  | Disk_io -> "disk_io"
  | Log_force -> "log_force"
  | Prepare_2pc -> "2pc_prepare"
  | Decide_2pc -> "2pc_decide"

let track_name = function
  | Client c -> Printf.sprintf "client %d" c
  | Server s -> Printf.sprintf "shard %d" s

type ev =
  | Open of { id : int; parent : int; track : track; kind : kind; xid : int }
  | Close of { id : int; ok : bool }

type entry = { sp_time : float; sp_seq : int; sp_ev : ev }

let chunk_size = 4096

type t = {
  limit : int;
  mutable chunks : entry array array;
  mutable written : int;
  mutable next_id : int;  (* span ids, unique within this buffer/rep *)
}

let default_limit = 2_000_000

let dummy_entry = { sp_time = 0.0; sp_seq = -1; sp_ev = Close { id = -1; ok = false } }

let create ?(limit = default_limit) () =
  if limit < 1 then invalid_arg "Span.create: limit < 1";
  { limit; chunks = [||]; written = 0; next_id = 0 }

let length t = min t.written t.limit
let dropped t = max 0 (t.written - t.limit)

let add t ~time ev =
  let pos = t.written mod t.limit in
  let ci = pos / chunk_size and co = pos mod chunk_size in
  if ci >= Array.length t.chunks then begin
    let cap = max 4 (2 * Array.length t.chunks) in
    let chunks = Array.make cap [||] in
    Array.blit t.chunks 0 chunks 0 (Array.length t.chunks);
    t.chunks <- chunks
  end;
  if Array.length t.chunks.(ci) = 0 then
    t.chunks.(ci) <- Array.make chunk_size dummy_entry;
  t.chunks.(ci).(co) <- { sp_time = time; sp_seq = t.written; sp_ev = ev };
  t.written <- t.written + 1

let entries t =
  let n = length t in
  let out = Array.make n dummy_entry in
  let k = ref 0 in
  Array.iter
    (fun chunk ->
      Array.iter
        (fun e ->
          if e.sp_seq >= 0 && !k < n then begin
            out.(!k) <- e;
            incr k
          end)
        chunk)
    t.chunks;
  Array.sort (fun a b -> Int.compare a.sp_seq b.sp_seq) out;
  out

(* ------------------------------------------------------------------ *)
(* The domain-local sink                                               *)
(* ------------------------------------------------------------------ *)

type saved = t option

let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set slot (Some t)
let clear () = Domain.DLS.set slot None
let active () = Option.is_some (Domain.DLS.get slot)
let save () = Domain.DLS.get slot
let restore s = Domain.DLS.set slot s

(* Returns the fresh span id, or -1 when no sink is installed.  [-1] is
   also a valid [parent] (a root span), so instrumentation can thread
   ids around unconditionally. *)
let open_span ~time ~track ~kind ~parent ~xid =
  match Domain.DLS.get slot with
  | None -> -1
  | Some t ->
      let id = t.next_id in
      t.next_id <- id + 1;
      add t ~time (Open { id; parent; track; kind; xid });
      id

let close_span ~time ?(ok = true) id =
  if id >= 0 then
    match Domain.DLS.get slot with
    | None -> ()
    | Some t -> add t ~time (Close { id; ok })

let with_spans ?limit f =
  let t = create ?limit () in
  let prev = save () in
  install t;
  let v = Fun.protect ~finally:(fun () -> restore prev) f in
  (v, t)

(* ------------------------------------------------------------------ *)
(* Self-validation                                                     *)
(* ------------------------------------------------------------------ *)

type check = {
  ck_opened : int;
  ck_closed : int;
  ck_unclosed : int;  (* spans still open when the run ended: allowed *)
  ck_errors : string list;  (* empty iff the record is well-formed *)
}

(* Well-formedness of one replication's span record:

   - timestamps are non-decreasing in emission order;
   - every [Close] matches exactly one earlier [Open] (unless entries
     were dropped to the ring limit, which can orphan a close);
   - no id is opened or closed twice;
   - a child opens no earlier than its parent opens, and its close is
     no later than its parent's close (parent containment).

   Spans still open at the end of the record are legal — the engine
   stops mid-flight at [max_sim_time] — and are only counted. *)
let validate ?(dropped = 0) (es : entry array) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let opened : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let parent : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let closed : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let n_open = ref 0 and n_close = ref 0 in
  let last_time = ref neg_infinity and last_seq = ref min_int in
  Array.iter
    (fun e ->
      if e.sp_seq <= !last_seq then err "seq not increasing at #%d" e.sp_seq;
      last_seq := e.sp_seq;
      if e.sp_time < !last_time then
        err "time regressed at #%d: %.9f < %.9f" e.sp_seq e.sp_time !last_time;
      last_time := e.sp_time;
      match e.sp_ev with
      | Open { id; parent = p; _ } ->
          incr n_open;
          if Hashtbl.mem opened id then err "span %d opened twice" id
          else begin
            Hashtbl.replace opened id e.sp_time;
            if p >= 0 then begin
              Hashtbl.replace parent id p;
              match Hashtbl.find_opt opened p with
              | Some pt ->
                  if Hashtbl.mem closed p then
                    err "span %d opened under already-closed parent %d" id p
                  else if e.sp_time < pt then
                    err "span %d opens before its parent %d" id p
              | None ->
                  (* the parent's open may itself have been dropped *)
                  if dropped = 0 then err "span %d has unknown parent %d" id p
            end
          end
      | Close { id; _ } ->
          incr n_close;
          if Hashtbl.mem closed id then err "span %d closed twice" id
          else if not (Hashtbl.mem opened id) then begin
            if dropped = 0 then err "close of never-opened span %d" id
          end
          else begin
            Hashtbl.replace closed id e.sp_time;
            match Hashtbl.find_opt parent id with
            | Some p when Hashtbl.mem opened p -> (
                match Hashtbl.find_opt closed p with
                | Some pt when e.sp_time > pt ->
                    err "span %d closes after its parent %d" id p
                | _ -> ())
            | _ -> ()
          end)
    es;
  {
    ck_opened = !n_open;
    ck_closed = !n_close;
    ck_unclosed = Hashtbl.length opened - Hashtbl.length closed;
    ck_errors = List.rev !errors;
  }

let check_ok c = c.ck_errors = []

let pp_check fmt c =
  Format.fprintf fmt "spans: %d opened, %d closed, %d still open at end"
    c.ck_opened c.ck_closed c.ck_unclosed;
  List.iter (fun e -> Format.fprintf fmt "@.  error: %s" e) c.ck_errors
