(* A per-domain trace recorder.

   Storage is a growable array of fixed-size chunks: appending writes one
   cell and allocates a fresh chunk only every [chunk_size] events, so
   recording costs one record allocation per event (the entry) on top of
   the event value itself.  Once [limit] entries have been written the
   buffer wraps and overwrites the oldest entries ring-style — for a
   failing run the tail of the trace is the interesting part.

   The domain-local sink slot below is what makes tracing safe under
   [Sim.Pool]: each worker domain installs its own recorder around the
   simulation it runs, so recorders neither race nor observe another
   domain's events, and the filled buffer travels back to the caller by
   value inside the run's result. *)

type entry = { time : float; seq : int; ev : Event.t }

let chunk_size = 4096

type t = {
  limit : int;
  mutable chunks : entry array array;  (* chunk pointers, grown by doubling *)
  mutable written : int;  (* total entries ever written *)
}

let default_limit = 2_000_000

let dummy_entry = { time = 0.0; seq = -1; ev = Event.Disk_read { page = -1 } }

let create ?(limit = default_limit) () =
  if limit < 1 then invalid_arg "Recorder.create: limit < 1";
  { limit; chunks = [||]; written = 0 }

let length t = min t.written t.limit
let dropped t = max 0 (t.written - t.limit)

let add t ~time ev =
  let pos = t.written mod t.limit in
  let ci = pos / chunk_size and co = pos mod chunk_size in
  if ci >= Array.length t.chunks then begin
    let cap = max 4 (2 * Array.length t.chunks) in
    let chunks = Array.make cap [||] in
    Array.blit t.chunks 0 chunks 0 (Array.length t.chunks);
    t.chunks <- chunks
  end;
  if Array.length t.chunks.(ci) = 0 then
    t.chunks.(ci) <- Array.make chunk_size dummy_entry;
  t.chunks.(ci).(co) <- { time; seq = t.written; ev };
  t.written <- t.written + 1

(* Entries in emission order.  After a wrap the live window is the last
   [limit] entries; sorting by [seq] restores order without tracking the
   ring head. *)
let entries t =
  let n = length t in
  let out = Array.make n dummy_entry in
  let k = ref 0 in
  Array.iter
    (fun chunk ->
      Array.iter
        (fun e ->
          if e.seq >= 0 && !k < n then begin
            out.(!k) <- e;
            incr k
          end)
        chunk)
    t.chunks;
  Array.sort (fun a b -> Int.compare a.seq b.seq) out;
  out

let iter t f = Array.iter f (entries t)

(* ------------------------------------------------------------------ *)
(* The domain-local sink                                               *)
(* ------------------------------------------------------------------ *)

type target = Fn of (float -> Event.t -> unit) | Buffer of t
type saved = target option

let slot : target option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_sink f = Domain.DLS.set slot (Some (Fn f))
let clear_sink () = Domain.DLS.set slot None
let install t = Domain.DLS.set slot (Some (Buffer t))
let active () = Option.is_some (Domain.DLS.get slot)
let save () = Domain.DLS.get slot
let restore s = Domain.DLS.set slot s

let emit time ev =
  match Domain.DLS.get slot with
  | None -> ()
  | Some (Fn f) -> f time ev
  | Some (Buffer t) -> add t ~time ev

let with_recorder ?limit f =
  let r = create ?limit () in
  let prev = save () in
  install r;
  let v = Fun.protect ~finally:(fun () -> restore prev) f in
  (v, r)
