(* Tests for Experiments.Telemetry: snapshot JSON round-trip through the
   in-repo parser and the noise-aware bench-diff comparison. *)

let case name f = Alcotest.test_case name `Quick f

open Experiments.Telemetry

let snap () =
  {
    s_schema = schema_version;
    s_repro = "# repro: seed=42 jobs=2 git=abc-dirty ocaml=5.1.1 host=vm";
    s_git = "abc-dirty";
    s_ocaml = "5.1.1";
    s_host = "vm";
    s_seed = 42;
    s_jobs = 2;
    s_reps = 3;
    s_quick = true;
    s_experiments =
      [
        { e_id = "fig9"; e_wall_s = 1.5; e_sims = 10; e_events = 1_000_000 };
        { e_id = "acl"; e_wall_s = 0.8; e_sims = 4; e_events = 400_000 };
      ];
    s_micro =
      [
        {
          m_name = "lock \"table\": 10k req\\rel";
          m_runs = 5;
          m_median_ns = 1000.0;
          m_ci_lo_ns = 900.0;
          m_ci_hi_ns = 1100.0;
        };
      ];
    s_sweep =
      [
        {
          w_clients = 1_000;
          w_algo = "2PL inter";
          w_events = 2_000_000;
          w_wall_s = 1.0;
          w_heap_hwm = 5_000;
        };
        {
          w_clients = 100_000;
          w_algo = "2PL inter";
          w_events = 2_000_000;
          w_wall_s = 1.3;
          w_heap_hwm = 400_000;
        };
      ];
    s_shard =
      [
        {
          h_shards = 1;
          h_pattern = "uniform";
          h_throughput = 40.0;
          h_xshard_commits = 0;
          h_prepares = 0;
        };
        {
          h_shards = 4;
          h_pattern = "zipf-hot";
          h_throughput = 55.0;
          h_xshard_commits = 120;
          h_prepares = 260;
        };
      ];
    s_latency =
      [
        {
          l_algo = "2PL";
          l_shards = 1;
          l_p50 = 0.25;
          l_p95 = 0.75;
          l_p99 = 1.0;
          l_mean = 0.3;
          l_xacts = 350;
        };
        {
          l_algo = "callback";
          l_shards = 2;
          l_p50 = 0.3;
          l_p95 = 0.9;
          l_p99 = 1.25;
          l_mean = 0.35;
          l_xacts = 350;
        };
      ];
    s_causal =
      [
        {
          z_algo = "2PL";
          z_shards = 1;
          z_msgs_per_commit = 10.5;
          z_pkts_per_commit = 12.0;
          z_bytes_per_commit = 42_000.0;
          z_commits = 350;
        };
        {
          z_algo = "2PL";
          z_shards = 4;
          z_msgs_per_commit = 19.25;
          z_pkts_per_commit = 22.5;
          z_bytes_per_commit = 61_500.0;
          z_commits = 350;
        };
      ];
    s_engine = Some { p_wall_s = 0.5; p_events = 200_000; p_heap_hwm = 123 };
  }

let test_json_roundtrip () =
  let s = snap () in
  let json = to_json s in
  (match Obs.Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot json invalid: %s" e);
  match of_json json with
  | Ok s' -> Alcotest.(check bool) "round-trips exactly" true (s = s')
  | Error e -> Alcotest.failf "parse back failed: %s" e

let test_json_roundtrip_no_engine () =
  let s = { (snap ()) with s_engine = None; s_micro = []; s_quick = false } in
  match of_json (to_json s) with
  | Ok s' -> Alcotest.(check bool) "engine=null round-trips" true (s = s')
  | Error e -> Alcotest.failf "parse back failed: %s" e

(* Snapshots written before the sweep section existed have no "sweep"
   field at all; they must still parse, as an empty sweep. *)
let remove_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  Option.map
    (fun i -> String.sub s 0 i ^ String.sub s (i + m) (n - i - m))
    (find 0)

let test_sweep_section_is_additive () =
  let s = { (snap ()) with s_sweep = [] } in
  let json = to_json s in
  match remove_substring ~sub:"  \"sweep\": [],\n" json with
  | None -> Alcotest.fail "fixture could not remove the sweep section"
  | Some legacy -> (
      match of_json legacy with
      | Ok s' ->
          Alcotest.(check bool) "parses as empty sweep" true (s'.s_sweep = [])
      | Error e -> Alcotest.failf "legacy snapshot rejected: %s" e)

(* Same story for the shard-sweep section, added a schema generation
   later still. *)
let test_shard_section_is_additive () =
  let s = { (snap ()) with s_shard = [] } in
  let json = to_json s in
  match remove_substring ~sub:"  \"shard_sweep\": [],\n" json with
  | None -> Alcotest.fail "fixture could not remove the shard section"
  | Some legacy -> (
      match of_json legacy with
      | Ok s' ->
          Alcotest.(check bool) "parses as empty shard sweep" true
            (s'.s_shard = [])
      | Error e -> Alcotest.failf "legacy snapshot rejected: %s" e)

(* And for the latency section, the youngest addition. *)
let test_latency_section_is_additive () =
  let s = { (snap ()) with s_latency = [] } in
  let json = to_json s in
  match remove_substring ~sub:"  \"latency\": [],\n" json with
  | None -> Alcotest.fail "fixture could not remove the latency section"
  | Some legacy -> (
      match of_json legacy with
      | Ok s' ->
          Alcotest.(check bool) "parses as empty latency" true
            (s'.s_latency = [])
      | Error e -> Alcotest.failf "legacy snapshot rejected: %s" e)

(* And for the causal message-amplification section, younger still. *)
let test_causal_section_is_additive () =
  let s = { (snap ()) with s_causal = [] } in
  let json = to_json s in
  match remove_substring ~sub:"  \"causal\": [],\n" json with
  | None -> Alcotest.fail "fixture could not remove the causal section"
  | Some legacy -> (
      match of_json legacy with
      | Ok s' ->
          Alcotest.(check bool) "parses as empty causal" true
            (s'.s_causal = [])
      | Error e -> Alcotest.failf "legacy snapshot rejected: %s" e)

let test_of_json_rejects () =
  (match of_json "{ not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  let wrong_schema =
    { (snap ()) with s_schema = "ccsim-bench/999" } |> to_json
  in
  (match of_json wrong_schema with
  | Error e ->
      Alcotest.(check bool) "schema named in error" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  match of_json "{\"schema\": \"ccsim-bench/1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields accepted"

let test_diff_identical_ok () =
  let s = snap () in
  let v = diff ~baseline:s ~current:s () in
  Alcotest.(check bool) "ok" true (ok v);
  Alcotest.(check int) "no regressions" 0 (List.length v.v_regressions);
  Alcotest.(check int) "no improvements" 0 (List.length v.v_improvements);
  Alcotest.(check int) "no notes" 0 (List.length v.v_notes)

(* The acceptance fixture: double every timing and the diff must flag
   experiments, microbenches (CIs scaled along, so no overlap), and the
   engine probe, and exit non-ok. *)
let test_diff_flags_2x_slowdown () =
  let s = snap () in
  let slow =
    {
      s with
      s_experiments =
        List.map (fun e -> { e with e_wall_s = e.e_wall_s *. 2.0 }) s.s_experiments;
      s_micro =
        List.map
          (fun m ->
            {
              m with
              m_median_ns = m.m_median_ns *. 2.0;
              m_ci_lo_ns = m.m_ci_lo_ns *. 2.0;
              m_ci_hi_ns = m.m_ci_hi_ns *. 2.0;
            })
          s.s_micro;
      s_engine =
        Option.map (fun p -> { p with p_wall_s = p.p_wall_s *. 2.0 }) s.s_engine;
    }
  in
  let v = diff ~baseline:s ~current:slow () in
  Alcotest.(check bool) "regression detected" false (ok v);
  (* 2 experiments + 1 micro + engine events/sec *)
  Alcotest.(check int) "all four metrics flagged" 4
    (List.length v.v_regressions);
  List.iter
    (fun f ->
      Alcotest.(check (float 1e-9))
        (f.f_metric ^ " slowdown ratio")
        2.0 f.f_slowdown)
    v.v_regressions;
  (* the mirror diff reports the same metrics as improvements and is ok *)
  let v' = diff ~baseline:slow ~current:s () in
  Alcotest.(check bool) "speedup is ok" true (ok v');
  Alcotest.(check int) "improvements" 4 (List.length v'.v_improvements)

let test_diff_ci_overlap_is_noise () =
  let s = snap () in
  (* median doubles but the intervals overlap: not a regression *)
  let noisy =
    {
      s with
      s_micro =
        List.map
          (fun m -> { m with m_median_ns = 2000.0; m_ci_hi_ns = 2500.0 })
          s.s_micro;
    }
  in
  let v = diff ~baseline:s ~current:noisy () in
  Alcotest.(check bool) "overlapping CIs never regress" true (ok v)

let test_diff_jitter_floor () =
  let s = { (snap ()) with s_micro = []; s_engine = None } in
  let tiny =
    {
      s with
      s_experiments =
        List.map (fun e -> { e with e_wall_s = 0.004 }) s.s_experiments;
    }
  in
  let slower =
    {
      tiny with
      s_experiments =
        List.map (fun e -> { e with e_wall_s = 0.04 }) tiny.s_experiments;
    }
  in
  (* 10x slower but both sides sit under the 50 ms jitter floor *)
  let v = diff ~baseline:tiny ~current:slower () in
  Alcotest.(check bool) "sub-jitter cells ignored" true (ok v)

(* Sweep cells: losing events/sec or growing the event heap past the
   threshold regresses; sub-jitter walls are noise; a cell present on one
   side only is a note. *)
let test_diff_sweep_cells () =
  let s = snap () in
  let slow =
    {
      s with
      s_sweep =
        List.map (fun w -> { w with w_wall_s = w.w_wall_s *. 2.0 }) s.s_sweep;
    }
  in
  let v = diff ~baseline:s ~current:slow () in
  Alcotest.(check bool) "eps regression detected" false (ok v);
  Alcotest.(check int) "one finding per cell" (List.length s.s_sweep)
    (List.length v.v_regressions);
  let bloated =
    {
      s with
      s_sweep =
        List.map (fun w -> { w with w_heap_hwm = w.w_heap_hwm * 3 }) s.s_sweep;
    }
  in
  let v' = diff ~baseline:s ~current:bloated () in
  Alcotest.(check bool) "heap regression detected" false (ok v');
  let tiny w = { w with w_wall_s = 0.002 } in
  let v'' =
    diff
      ~baseline:{ s with s_sweep = List.map tiny s.s_sweep }
      ~current:
        { s with s_sweep = List.map (fun w -> { (tiny w) with w_wall_s = 0.02 }) s.s_sweep }
      ()
  in
  Alcotest.(check bool) "sub-jitter sweep cells ignored" true (ok v'');
  let v''' = diff ~baseline:s ~current:{ s with s_sweep = [] } () in
  Alcotest.(check bool) "missing cells are notes, not failures" true (ok v''');
  Alcotest.(check int) "one note per missing cell" (List.length s.s_sweep)
    (List.length v'''.v_notes)

(* Shard cells are deterministic figures: a throughput drop past the
   threshold regresses with no noise band, any 2PC-counter drift is a
   note, and a cell on one side only is a note. *)
let test_diff_shard_cells () =
  let s = snap () in
  let slow =
    {
      s with
      s_shard =
        List.map
          (fun h -> { h with h_throughput = h.h_throughput /. 2.0 })
          s.s_shard;
    }
  in
  let v = diff ~baseline:s ~current:slow () in
  Alcotest.(check bool) "throughput regression detected" false (ok v);
  Alcotest.(check int) "one finding per cell" (List.length s.s_shard)
    (List.length v.v_regressions);
  let drifted =
    {
      s with
      s_shard =
        List.map
          (fun h -> { h with h_xshard_commits = h.h_xshard_commits + 1 })
          s.s_shard;
    }
  in
  let v' = diff ~baseline:s ~current:drifted () in
  Alcotest.(check bool) "counter drift is a note, not a failure" true (ok v');
  Alcotest.(check int) "one note per drifted cell" (List.length s.s_shard)
    (List.length v'.v_notes);
  let v'' = diff ~baseline:s ~current:{ s with s_shard = [] } () in
  Alcotest.(check bool) "missing cells are notes, not failures" true (ok v'');
  Alcotest.(check int) "one note per missing cell" (List.length s.s_shard)
    (List.length v''.v_notes)

(* Latency cells: deterministic simulated quantiles — growth past the
   threshold regresses with no noise band, population drift is a note,
   and a cell on one side only is a note. *)
let test_diff_latency_cells () =
  let s = snap () in
  let slow =
    {
      s with
      s_latency =
        List.map (fun l -> { l with l_p95 = l.l_p95 *. 2.0 }) s.s_latency;
    }
  in
  let v = diff ~baseline:s ~current:slow () in
  Alcotest.(check bool) "latency regression detected" false (ok v);
  Alcotest.(check int) "one finding per doubled quantile"
    (List.length s.s_latency)
    (List.length v.v_regressions);
  let drifted =
    {
      s with
      s_latency = List.map (fun l -> { l with l_xacts = l.l_xacts + 5 }) s.s_latency;
    }
  in
  let v' = diff ~baseline:s ~current:drifted () in
  Alcotest.(check bool) "population drift is a note, not a failure" true
    (ok v');
  Alcotest.(check int) "one note per drifted cell" (List.length s.s_latency)
    (List.length v'.v_notes);
  let v'' = diff ~baseline:s ~current:{ s with s_latency = [] } () in
  Alcotest.(check bool) "missing cells are notes, not failures" true (ok v'');
  Alcotest.(check int) "one note per missing cell" (List.length s.s_latency)
    (List.length v''.v_notes)

(* Causal cells: deterministic message-amplification ratios — growth past
   the threshold regresses with no noise band, commit-count drift is a
   note, and a cell on one side only is a note. *)
let test_diff_causal_cells () =
  let s = snap () in
  let amplified =
    {
      s with
      s_causal =
        List.map
          (fun z -> { z with z_msgs_per_commit = z.z_msgs_per_commit *. 2.0 })
          s.s_causal;
    }
  in
  let v = diff ~baseline:s ~current:amplified () in
  Alcotest.(check bool) "amplification regression detected" false (ok v);
  Alcotest.(check int) "one finding per doubled ratio"
    (List.length s.s_causal)
    (List.length v.v_regressions);
  let drifted =
    {
      s with
      s_causal =
        List.map (fun z -> { z with z_commits = z.z_commits + 5 }) s.s_causal;
    }
  in
  let v' = diff ~baseline:s ~current:drifted () in
  Alcotest.(check bool) "commit drift is a note, not a failure" true (ok v');
  Alcotest.(check int) "one note per drifted cell" (List.length s.s_causal)
    (List.length v'.v_notes);
  let v'' = diff ~baseline:s ~current:{ s with s_causal = [] } () in
  Alcotest.(check bool) "missing cells are notes, not failures" true (ok v'');
  Alcotest.(check int) "one note per missing cell" (List.length s.s_causal)
    (List.length v''.v_notes)

let test_diff_threshold_and_notes () =
  let s = snap () in
  let mild =
    {
      s with
      s_host = "other-host";
      s_ocaml = "5.2.0";
      s_experiments =
        List.map (fun e -> { e with e_wall_s = e.e_wall_s *. 1.2 }) s.s_experiments;
      s_micro = [];
      s_engine = None;
    }
  in
  (* 20 % slowdown passes the default 25 % threshold... *)
  let v = diff ~baseline:s ~current:mild () in
  Alcotest.(check bool) "within threshold" true (ok v);
  Alcotest.(check bool) "host/compiler mismatch noted" true
    (List.length v.v_notes >= 2);
  (* ...and fails a 10 % one *)
  let v' = diff ~threshold:0.1 ~baseline:s ~current:mild () in
  Alcotest.(check bool) "tighter threshold trips" false (ok v')

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          case "round-trip + validator" test_json_roundtrip;
          case "engine=null round-trip" test_json_roundtrip_no_engine;
          case "sweep section is additive" test_sweep_section_is_additive;
          case "shard section is additive" test_shard_section_is_additive;
          case "latency section is additive" test_latency_section_is_additive;
          case "causal section is additive" test_causal_section_is_additive;
          case "rejects malformed input" test_of_json_rejects;
        ] );
      ( "diff",
        [
          case "identical snapshots ok" test_diff_identical_ok;
          case "2x slowdown flagged" test_diff_flags_2x_slowdown;
          case "ci overlap is noise" test_diff_ci_overlap_is_noise;
          case "jitter floor" test_diff_jitter_floor;
          case "sweep cells" test_diff_sweep_cells;
          case "shard cells" test_diff_shard_cells;
          case "latency cells" test_diff_latency_cells;
          case "causal cells" test_diff_causal_cells;
          case "threshold + mismatch notes" test_diff_threshold_and_notes;
        ] );
    ]
