(* Tests for the network manager (lib/net). *)

open Net

let case name f = Alcotest.test_case name `Quick f

let mk ?(net_delay = 0.002) ?(packet_size = 4096) () =
  let eng = Sim.Engine.create () in
  let prm = { Network.net_delay; packet_size; msg_inst = 5000 } in
  (eng, Network.create eng ~rng:(Sim.Rng.create 9) prm)

let test_packets_for () =
  let _, net = mk () in
  Alcotest.(check int) "0 bytes -> 1 packet" 1 (Network.packets_for net ~bytes:0);
  Alcotest.(check int) "1 byte" 1 (Network.packets_for net ~bytes:1);
  Alcotest.(check int) "exactly one page" 1 (Network.packets_for net ~bytes:4096);
  Alcotest.(check int) "one page + 1" 2 (Network.packets_for net ~bytes:4097);
  Alcotest.(check int) "three pages" 3 (Network.packets_for net ~bytes:12288)

let test_post_delivers () =
  let eng, net = mk () in
  let delivered_at = ref (-1.0) in
  Sim.Engine.spawn eng (fun () ->
      Network.post net ~bytes:100 ~deliver:(fun _ ->
          delivered_at := Sim.Engine.now eng));
  ignore (Sim.Engine.run eng ());
  if !delivered_at <= 0.0 then Alcotest.fail "not delivered or zero delay";
  Alcotest.(check int) "one message" 1 (Network.messages_sent net);
  Alcotest.(check int) "one packet" 1 (Network.packets_sent net)

let test_post_sender_not_blocked () =
  let eng, net = mk () in
  let sender_done = ref (-1.0) in
  Sim.Engine.spawn eng (fun () ->
      Network.post net ~bytes:100_000 ~deliver:(fun _ -> ());
      sender_done := Sim.Engine.now eng);
  ignore (Sim.Engine.run eng ());
  Alcotest.(check (float 0.0)) "sender returns immediately" 0.0 !sender_done

let test_zero_delay_instant () =
  let eng, net = mk ~net_delay:0.0 () in
  let delivered_at = ref (-1.0) in
  Sim.Engine.spawn eng (fun () ->
      Network.post net ~bytes:20_000 ~deliver:(fun _ ->
          delivered_at := Sim.Engine.now eng));
  ignore (Sim.Engine.run eng ());
  Alcotest.(check (float 0.0)) "instant delivery" 0.0 !delivered_at;
  Alcotest.(check int) "packets still counted" 5 (Network.packets_sent net)

let test_fifo_wire () =
  (* the wire is FCFS at packet granularity: a 1-packet message posted just
     after a 10-packet message interleaves and is delivered first *)
  let eng, net = mk () in
  let order = ref [] in
  Sim.Engine.spawn eng (fun () ->
      Network.post net ~bytes:40_960 ~deliver:(fun _ -> order := "big" :: !order);
      Network.post net ~bytes:1 ~deliver:(fun _ -> order := "small" :: !order));
  ignore (Sim.Engine.run eng ());
  Alcotest.(check (list string)) "packet interleaving" [ "small"; "big" ]
    (List.rev !order)

let test_utilization_counts () =
  let eng, net = mk () in
  Sim.Engine.spawn eng (fun () ->
      Network.post net ~bytes:4096 ~deliver:(fun _ -> ()));
  ignore (Sim.Engine.run eng ());
  (* the wire was busy the whole (non-zero) run *)
  let u = Network.utilization net in
  if u < 0.99 then Alcotest.failf "expected saturated wire, got %g" u;
  Network.reset_stats net;
  Alcotest.(check int) "reset messages" 0 (Network.messages_sent net)

let test_deliver_may_block () =
  (* deliver runs in its own process and may hold *)
  let eng, net = mk () in
  let finished = ref (-1.0) in
  Sim.Engine.spawn eng (fun () ->
      Network.post net ~bytes:1 ~deliver:(fun _ ->
          Sim.Engine.hold 5.0;
          finished := Sim.Engine.now eng));
  ignore (Sim.Engine.run eng ());
  if !finished < 5.0 then Alcotest.fail "deliver hold did not run"

let suites =
  [
    ( "network",
      [
        case "packets_for" test_packets_for;
        case "post delivers" test_post_delivers;
        case "sender not blocked" test_post_sender_not_blocked;
        case "zero delay instant" test_zero_delay_instant;
        case "wire is FCFS" test_fifo_wire;
        case "utilization" test_utilization_counts;
        case "deliver may block" test_deliver_may_block;
      ] );
  ]

let () = Alcotest.run "net" suites
