(* Tests for the observability subsystem: the typed trace recorder and
   its domain-local sink, recording across Sim.Pool workers, deterministic
   merging at any job count, sampler purity, analysis breakdowns, and the
   exporters (Perfetto JSON, series CSV). *)

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let ev_page p = Obs.Event.Disk_read { page = p }

let test_recorder_basics () =
  let r = Obs.Recorder.create () in
  Alcotest.(check int) "empty" 0 (Obs.Recorder.length r);
  for i = 1 to 100 do
    Obs.Recorder.add r ~time:(float_of_int i) (ev_page i)
  done;
  Alcotest.(check int) "length" 100 (Obs.Recorder.length r);
  Alcotest.(check int) "no drops" 0 (Obs.Recorder.dropped r);
  let es = Obs.Recorder.entries r in
  Alcotest.(check int) "entries" 100 (Array.length es);
  Array.iteri
    (fun i e ->
      Alcotest.(check int) "seq in order" i e.Obs.Recorder.seq;
      match e.Obs.Recorder.ev with
      | Obs.Event.Disk_read { page } ->
          Alcotest.(check int) "payload" (i + 1) page
      | _ -> Alcotest.fail "wrong event")
    es

let test_recorder_ring_keeps_tail () =
  (* past the limit the OLDEST entries drop: a failing run keeps the tail
     that led up to the failure *)
  let r = Obs.Recorder.create ~limit:10 () in
  for i = 0 to 24 do
    Obs.Recorder.add r ~time:(float_of_int i) (ev_page i)
  done;
  Alcotest.(check int) "length capped" 10 (Obs.Recorder.length r);
  Alcotest.(check int) "dropped" 15 (Obs.Recorder.dropped r);
  let pages =
    Array.to_list (Obs.Recorder.entries r)
    |> List.map (fun e ->
           match e.Obs.Recorder.ev with
           | Obs.Event.Disk_read { page } -> page
           | _ -> -1)
  in
  Alcotest.(check (list int)) "last 10 kept" [ 15; 16; 17; 18; 19; 20; 21; 22; 23; 24 ] pages

let test_recorder_wrap_large () =
  (* wrap across chunk boundaries *)
  let limit = 5000 in
  let r = Obs.Recorder.create ~limit () in
  let n = 12_345 in
  for i = 0 to n - 1 do
    Obs.Recorder.add r ~time:(float_of_int i) (ev_page i)
  done;
  Alcotest.(check int) "length" limit (Obs.Recorder.length r);
  Alcotest.(check int) "dropped" (n - limit) (Obs.Recorder.dropped r);
  let es = Obs.Recorder.entries r in
  Alcotest.(check int) "first kept seq" (n - limit) es.(0).Obs.Recorder.seq;
  Alcotest.(check int) "last kept seq" (n - 1)
    es.(limit - 1).Obs.Recorder.seq

let test_sink_dispatch_and_restore () =
  Obs.Recorder.clear_sink ();
  Alcotest.(check bool) "inactive" false (Obs.Recorder.active ());
  let got = ref [] in
  Obs.Recorder.set_sink (fun t ev -> got := (t, ev) :: !got);
  Alcotest.(check bool) "fn active" true (Obs.Recorder.active ());
  Obs.Recorder.emit 1.5 (ev_page 7);
  (* with_recorder shadows the callback, then restores it *)
  let (), r =
    Obs.Recorder.with_recorder (fun () ->
        Obs.Recorder.emit 2.0 (ev_page 8);
        Obs.Recorder.emit 3.0 (ev_page 9))
  in
  Alcotest.(check int) "recorder captured" 2 (Obs.Recorder.length r);
  Obs.Recorder.emit 4.0 (ev_page 10);
  Alcotest.(check int) "callback saw only its own" 2 (List.length !got);
  Obs.Recorder.clear_sink ();
  (* Core.Trace is a shim over the same slot *)
  Core.Trace.set_sink (fun _ _ -> ());
  Alcotest.(check bool) "shim shares slot" true (Obs.Recorder.active ());
  Core.Trace.clear_sink ();
  Alcotest.(check bool) "shim clears slot" false (Obs.Recorder.active ())

(* ------------------------------------------------------------------ *)
(* Traced simulations, including across Sim.Pool                       *)
(* ------------------------------------------------------------------ *)

let small_spec ?(obs = Obs.Config.off) ?(seed = 7) () =
  let cfg = Core.Sys_params.table5 ~n_clients:4 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.3 ~inter_xact_loc:0.5 () in
  {
    (Core.Simulator.default_spec ~seed ~warmup_commits:20 ~measured_commits:60
       ~obs ~cfg ~xact_params:xp
       (Core.Proto.Two_phase Core.Proto.Inter))
    with
    Core.Simulator.db_params =
      Db.Db_params.uniform ~n_classes:4 ~pages_per_class:25 ();
  }

let test_traced_run_payload () =
  let r = Core.Simulator.run (small_spec ~obs:Obs.Config.trace_only ()) in
  match r.Core.Simulator.obs with
  | None -> Alcotest.fail "no obs payload"
  | Some o ->
      let rep = List.hd o.Obs.Run.reps in
      Alcotest.(check bool) "trace non-empty" true
        (Array.length rep.Obs.Run.trace > 0);
      Alcotest.(check int) "no drops" 0 rep.Obs.Run.trace_dropped;
      (* entries are (time, seq)-ordered *)
      let es = rep.Obs.Run.trace in
      for i = 1 to Array.length es - 1 do
        if es.(i).Obs.Recorder.time < es.(i - 1).Obs.Recorder.time then
          Alcotest.fail "trace times not monotone"
      done;
      Alcotest.(check bool) "commits recorded" true
        (Array.exists
           (fun e ->
             match e.Obs.Recorder.ev with
             | Obs.Event.Commit _ -> true
             | _ -> false)
           es)

let test_obs_off_no_payload () =
  let r = Core.Simulator.run (small_spec ()) in
  Alcotest.(check bool) "no payload when off" true
    (r.Core.Simulator.obs = None)

let test_pool_runs_are_traced () =
  (* the "-j tracing gap": replications dispatched to Sim.Pool workers
     must record into their own domain's buffer and return it by value *)
  let spec = small_spec ~obs:Obs.Config.trace_only () in
  let r = Core.Simulator.run_replicated ~jobs:2 spec ~reps:2 in
  match r.Core.Simulator.obs with
  | None -> Alcotest.fail "no obs payload from pooled run"
  | Some o ->
      Alcotest.(check int) "one payload per rep" 2 (List.length o.Obs.Run.reps);
      List.iteri
        (fun i rep ->
          Alcotest.(check int)
            (Printf.sprintf "rep %d seed" i)
            (spec.Core.Simulator.seed + i)
            rep.Obs.Run.rep_seed;
          Alcotest.(check bool)
            (Printf.sprintf "rep %d traced" i)
            true
            (Array.length rep.Obs.Run.trace > 0))
        o.Obs.Run.reps

let obs_full_fast =
  Obs.Config.make ~trace:true ~series:true ~sample_interval:2.0 ~profile:true
    ()

let test_jobs_invariance () =
  (* merged trace, series CSVs, and perfetto JSON are byte-identical at
     -j 1 and -j 4 *)
  let spec = small_spec ~obs:obs_full_fast () in
  let art jobs =
    let r = Core.Simulator.run_replicated ~jobs spec ~reps:3 in
    let o = Option.get r.Core.Simulator.obs in
    let merged = Obs.Run.merged_trace o in
    let csvs =
      List.filter_map
        (fun rep -> Option.map Obs.Export.series_csv rep.Obs.Run.series)
        o.Obs.Run.reps
    in
    (Obs.Export.trace_text merged, Obs.Export.perfetto merged, csvs)
  in
  let t1, p1, c1 = art 1 in
  let t4, p4, c4 = art 4 in
  Alcotest.(check bool) "trace non-empty" true (String.length t1 > 0);
  Alcotest.(check string) "merged trace identical" t1 t4;
  Alcotest.(check string) "perfetto identical" p1 p4;
  Alcotest.(check (list string)) "series csvs identical" c1 c4;
  Alcotest.(check int) "one csv per rep" 3 (List.length c1)

let test_observability_is_pure () =
  (* tracing must not change any simulation outcome *)
  let base = Core.Simulator.run (small_spec ()) in
  let traced =
    Core.Simulator.run (small_spec ~obs:Obs.Config.trace_only ())
  in
  Alcotest.(check bool) "trace-only result identical" true
    ({ traced with Core.Simulator.obs = None } = base);
  (* the sampler adds its own wake-up events to the heap (so [events]
     grows) but must not perturb any measured outcome *)
  let full = Core.Simulator.run (small_spec ~obs:obs_full_fast ()) in
  let scrub r = { r with Core.Simulator.obs = None; events = 0 } in
  Alcotest.(check bool) "sampled+profiled result identical" true
    (scrub full = scrub base)

let test_profile_in_payload () =
  let r =
    Core.Simulator.run
      (small_spec ~obs:(Obs.Config.make ~profile:true ()) ())
  in
  let o = Option.get r.Core.Simulator.obs in
  match (List.hd o.Obs.Run.reps).Obs.Run.profile with
  | None -> Alcotest.fail "no profile"
  | Some p ->
      Alcotest.(check bool) "events counted" true (p.Sim.Engine.pr_events > 0);
      Alcotest.(check bool) "heap hwm positive" true
        (p.Sim.Engine.pr_heap_hwm > 0);
      Alcotest.(check bool) "per-process rows" true
        (List.length p.Sim.Engine.pr_per_process > 0);
      (* client main loops are the named hot processes *)
      Alcotest.(check bool) "client process named" true
        (List.exists
           (fun pp ->
             String.length pp.Sim.Engine.pp_name >= 6
             && String.sub pp.Sim.Engine.pp_name 0 6 = "client")
           p.Sim.Engine.pr_per_process)

let test_facility_snapshots () =
  let r = Core.Simulator.run (small_spec ~obs:Obs.Config.trace_only ()) in
  let o = Option.get r.Core.Simulator.obs in
  let facs = (List.hd o.Obs.Run.reps).Obs.Run.facilities in
  let names = List.map (fun f -> f.Obs.Run.fac_name) facs in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "server-cpu"; "network" ];
  let cpu = List.find (fun f -> f.Obs.Run.fac_name = "server-cpu") facs in
  Alcotest.(check bool) "cpu busy" true (cpu.Obs.Run.fac_busy_time > 0.0);
  Alcotest.(check bool) "cpu completions" true (cpu.Obs.Run.fac_completions > 0)

(* ------------------------------------------------------------------ *)
(* Series + sampler                                                    *)
(* ------------------------------------------------------------------ *)

let test_series_record_and_times () =
  let s = Obs.Series.create ~interval:2.0 ~start:10.0 ~names:[| "a"; "b" |] in
  Obs.Series.record s [| 1.0; 2.0 |];
  Obs.Series.record s [| 3.0; 4.0 |];
  Alcotest.(check int) "length" 2 (Obs.Series.length s);
  Alcotest.(check (array (float 1e-9))) "times" [| 12.0; 14.0 |]
    (Obs.Series.times s);
  Alcotest.(check bool) "rows in order" true
    (Obs.Series.rows s = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Series.record: row width mismatch") (fun () ->
      Obs.Series.record s [| 1.0 |])

let test_sampler_process () =
  let eng = Sim.Engine.create () in
  let ticks = ref 0 in
  let s =
    Obs.Series.sample eng ~interval:1.0
      ~sources:[ ("tick", fun () -> incr ticks; float_of_int !ticks) ]
  in
  ignore (Sim.Engine.run eng ~until:10.0 ());
  Alcotest.(check int) "ten samples" 10 (Obs.Series.length s);
  Alcotest.(check (float 1e-9)) "last value" 10.0 ((Obs.Series.rows s).(9)).(0)

let test_run_series_content () =
  let r =
    Core.Simulator.run
      (small_spec
         ~obs:(Obs.Config.make ~series:true ~sample_interval:2.0 ())
         ())
  in
  let o = Option.get r.Core.Simulator.obs in
  match (List.hd o.Obs.Run.reps).Obs.Run.series with
  | None -> Alcotest.fail "no series"
  | Some s ->
      Alcotest.(check bool) "samples recorded" true (Obs.Series.length s > 0);
      let names = Obs.Series.names s in
      (* the exact column order is part of the CSV artifact contract:
         downstream diffing tools key on it, so adding a gauge means
         extending this pin (at the end, please) *)
      Alcotest.(check (array string)) "pinned column order"
        [|
          "server_cpu_util";
          "disk_util";
          "net_util";
          "locks_held";
          "lock_waiters";
          "active_xacts";
          "ready_queue";
          "commit_rate";
          "abort_rate";
          "clients_down";
        |]
        names;
      (* every utilization sample lies in [0, 1] *)
      let j =
        let found = ref (-1) in
        Array.iteri (fun i n -> if n = "server_cpu_util" then found := i) names;
        !found
      in
      Array.iter
        (fun row ->
          if row.(j) < 0.0 || row.(j) > 1.0 then
            Alcotest.fail "cpu utilization out of [0,1]")
        (Obs.Series.rows s)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let entry time seq ev = { Obs.Recorder.time; seq; ev }

let test_analysis_synthetic () =
  let es =
    [|
      entry 0.0 0
        (Obs.Event.Client_send { client = 0; xid = 1; what = "X lock request [5]" });
      entry 0.1 1 (Obs.Event.Lock_wait { client = 1; page = 5; mode = "X" });
      entry 0.6 2 (Obs.Event.Lock_grant { client = 1; page = 5; mode = "X" });
      entry 0.7 3 (Obs.Event.Callback { holder = 2; page = 5 });
      entry 0.8 4 (Obs.Event.Commit { client = 0; xid = 1; n_updates = 1 });
      entry 0.9 5 (Obs.Event.Abort { client = 1; xid = 2; reason = "deadlock victim" });
      entry 1.0 6 (Obs.Event.Commit { client = 1; xid = 3; n_updates = 0 });
    |]
  in
  let s = Obs.Analysis.summarize es in
  Alcotest.(check int) "events" 7 s.Obs.Analysis.n_events;
  Alcotest.(check int) "commits" 2 s.Obs.Analysis.n_commits;
  Alcotest.(check int) "aborts" 1 s.Obs.Analysis.n_aborts;
  Alcotest.(check (list (pair string int))) "abort causes"
    [ ("deadlock victim", 1) ]
    s.Obs.Analysis.aborts_by_reason;
  Alcotest.(check int) "lock waits paired" 1 s.Obs.Analysis.n_lock_waits;
  Alcotest.(check (float 1e-9)) "wait mean" 0.5 s.Obs.Analysis.lock_wait_mean;
  (* the callback counts against the NEXT commit of its replication *)
  Alcotest.(check (list (pair int int))) "fanout" [ (0, 1); (1, 1) ]
    s.Obs.Analysis.fanout_hist;
  (* messages: one c2s send (label stripped), one s2c callback *)
  Alcotest.(check (list (pair string int))) "messages by kind"
    [ ("c2s X lock request", 1); ("s2c callback request", 1) ]
    s.Obs.Analysis.messages_by_kind;
  Alcotest.(check bool) "per-commit halved" true
    (List.assoc "c2s X lock request" s.Obs.Analysis.msgs_per_commit_by_kind
     = 0.5)

let test_analysis_unpaired_wait_ignored () =
  let es =
    [| entry 0.0 0 (Obs.Event.Lock_wait { client = 0; page = 1; mode = "S" }) |]
  in
  let s = Obs.Analysis.summarize es in
  Alcotest.(check int) "no pair, no wait" 0 s.Obs.Analysis.n_lock_waits

let test_analysis_reps_kept_separate () =
  (* a wait in rep 0 must not pair with a grant in rep 1 *)
  let tagged =
    [|
      (0, entry 0.0 0 (Obs.Event.Lock_wait { client = 0; page = 1; mode = "S" }));
      (1, entry 0.5 0 (Obs.Event.Lock_grant { client = 0; page = 1; mode = "S" }));
    |]
  in
  let s = Obs.Analysis.summarize_tagged tagged in
  Alcotest.(check int) "cross-rep pairing rejected" 0
    s.Obs.Analysis.n_lock_waits

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let test_series_csv_roundtrip () =
  let s =
    Obs.Series.create ~interval:0.1 ~start:3.25 ~names:[| "x"; "rate" |]
  in
  Obs.Series.record s [| 0.1; 1.0 /. 3.0 |];
  Obs.Series.record s [| -2.5e-17; 123456.789 |];
  let csv = Obs.Export.series_csv s in
  let s' = Obs.Export.series_of_csv csv in
  Alcotest.(check bool) "round-trips exactly" true (Obs.Series.equal s s');
  Alcotest.(check string) "stable second encode" csv
    (Obs.Export.series_csv s')

let test_perfetto_valid_json () =
  let r = Core.Simulator.run (small_spec ~obs:Obs.Config.trace_only ()) in
  let o = Option.get r.Core.Simulator.obs in
  let json = Obs.Export.perfetto (Obs.Run.merged_trace o) in
  (match Obs.Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("perfetto JSON invalid: " ^ e));
  (* lock waits appear as duration events *)
  Alcotest.(check bool) "has instant events" true
    (let rec find i =
       i + 8 < String.length json
       && (String.sub json i 9 = {|"ph":"i",|} || find (i + 1))
     in
     find 0)

let test_validate_json_rejects () =
  List.iter
    (fun bad ->
      match Obs.Export.validate_json bad with
      | Ok () -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "[1 2]";
      "\"unterminated";
      "{\"a\":1} trailing";
      "nulll";
    ];
  List.iter
    (fun good ->
      match Obs.Export.validate_json good with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "rejected %S: %s" good e))
    [ "null"; "[]"; "{\"a\": [1, -2.5e3, true, \"s\\n\"]}"; " 42 " ]

let test_json_escape () =
  Alcotest.(check string) "quotes and control" {|a\"b\\c\nd|}
    (Obs.Export.json_escape "a\"b\\c\nd")

let suites =
  [
    ( "recorder",
      [
        case "basics" test_recorder_basics;
        case "ring keeps tail" test_recorder_ring_keeps_tail;
        case "wrap across chunks" test_recorder_wrap_large;
        case "sink dispatch and restore" test_sink_dispatch_and_restore;
      ] );
    ( "traced-runs",
      [
        case "payload attached" test_traced_run_payload;
        case "off means none" test_obs_off_no_payload;
        case "pool workers traced" test_pool_runs_are_traced;
        case "identical at any -j" test_jobs_invariance;
        case "observability is pure" test_observability_is_pure;
        case "profile in payload" test_profile_in_payload;
        case "facility snapshots" test_facility_snapshots;
      ] );
    ( "series",
      [
        case "record and times" test_series_record_and_times;
        case "sampler process" test_sampler_process;
        case "run series content" test_run_series_content;
      ] );
    ( "analysis",
      [
        case "synthetic summary" test_analysis_synthetic;
        case "unpaired wait ignored" test_analysis_unpaired_wait_ignored;
        case "reps kept separate" test_analysis_reps_kept_separate;
      ] );
    ( "export",
      [
        case "series csv round-trip" test_series_csv_roundtrip;
        case "perfetto is valid json" test_perfetto_valid_json;
        case "validator rejects malformed" test_validate_json_rejects;
        case "json escaping" test_json_escape;
      ] );
  ]

let () = Alcotest.run "obs" suites
