(* Tests for the transaction-span layer and the online metrics registry:
   histogram merge algebra (QCheck), quantile error bounds, span record
   self-validation, the critical-path latency decomposition (phase
   components must sum to end-to-end commit latency on every protocol at
   1 and 4 shards), well-formedness under faults, artifact j-invariance,
   and recorder-off purity. *)

let case name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let contains text s =
  let n = String.length text and m = String.length s in
  let rec go i = i + m <= n && (String.sub text i m = s || go (i + 1)) in
  m = 0 || go 0

module H = Obs.Metrics.Hist

(* ------------------------------------------------------------------ *)
(* Histogram: buckets and quantile bounds                              *)
(* ------------------------------------------------------------------ *)

let test_hist_basics () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  List.iter (H.record h) [ 0.001; 0.01; 0.1; 1.0; 10.0 ];
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check (float 1e-12)) "sum" 11.111 (H.sum h);
  (* each value lands in the bucket whose bounds contain it *)
  List.iter
    (fun v ->
      let lo, hi = H.bucket_bounds (H.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "%g in [%g,%g)" v lo hi)
        true
        (lo <= v && v < hi))
    [ 0.001; 0.0123; 0.5; 1.0; 7.25; 123.0 ]

let test_hist_bucket_bounds_partition () =
  (* consecutive buckets tile: bucket i's upper bound is bucket i+1's
     lower bound, and widths are positive *)
  for i = 0 to H.n_buckets - 2 do
    let lo, hi = H.bucket_bounds i in
    let lo', _ = H.bucket_bounds (i + 1) in
    if not (hi > lo) then Alcotest.failf "bucket %d empty width" i;
    if hi <> lo' then Alcotest.failf "bucket %d/%d gap" i (i + 1)
  done

let pos_dur =
  (* durations spanning the interesting range: microseconds to kiloseconds *)
  QCheck.(
    map
      (fun (m, e) -> m *. (10. ** float_of_int e))
      (pair (float_range 1.0 9.999) (int_range (-6) 3)))

let qtest_hist_merge_assoc_comm =
  QCheck.Test.make ~name:"histogram merge is associative and commutative"
    ~count:200
    QCheck.(
      triple (small_list pos_dur) (small_list pos_dur) (small_list pos_dur))
    (fun (xs, ys, zs) ->
      let mk vs =
        let h = H.create () in
        List.iter (H.record h) vs;
        h
      in
      let a = mk xs and b = mk ys and c = mk zs in
      H.equal (H.merge (H.merge a b) c) (H.merge a (H.merge b c))
      && H.equal (H.merge a b) (H.merge b a)
      && H.count (H.merge a b) = List.length xs + List.length ys)

let qtest_hist_quantile_error_bound =
  QCheck.Test.make
    ~name:"quantile error is within one bucket width of the exact answer"
    ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 200) pos_dur) (float_range 0.0 1.0))
    (fun (vs, q) ->
      let h = H.create () in
      List.iter (H.record h) vs;
      let est = H.quantile h q in
      (* exact nearest-rank answer on the sorted sample *)
      let a = Array.of_list vs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let exact = a.(rank - 1) in
      let lo, hi = H.bucket_bounds (H.bucket_of exact) in
      (* the estimate is the upper bound of the exact answer's bucket *)
      est >= exact && est -. exact <= hi -. lo +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_ops () =
  let r = Obs.Metrics.create () in
  Alcotest.(check bool) "fresh is empty" true (Obs.Metrics.is_empty r);
  Obs.Metrics.incr r "reqs_total" 3;
  Obs.Metrics.incr r "reqs_total" 4;
  Obs.Metrics.set_gauge r "depth" 2.5;
  Obs.Metrics.observe r "lat" 0.125;
  Obs.Metrics.observe r "lat" 0.25;
  Alcotest.(check (option int)) "counter" (Some 7)
    (Obs.Metrics.counter_value r "reqs_total");
  Alcotest.(check (option (float 0.))) "gauge" (Some 2.5)
    (Obs.Metrics.gauge_value r "depth");
  (match Obs.Metrics.histogram r "lat" with
  | None -> Alcotest.fail "no histogram"
  | Some h -> Alcotest.(check int) "hist count" 2 (H.count h));
  Alcotest.(check (option int)) "missing counter" None
    (Obs.Metrics.counter_value r "nope")

let test_registry_merge_exact () =
  let mk n =
    let r = Obs.Metrics.create () in
    Obs.Metrics.incr r "c" n;
    Obs.Metrics.set_gauge r "g" (float_of_int n);
    Obs.Metrics.observe r "h" (float_of_int n /. 10.);
    r
  in
  let rs = [ mk 1; mk 2; mk 3 ] in
  let m = Obs.Metrics.merge rs in
  Alcotest.(check (option int)) "counters add" (Some 6)
    (Obs.Metrics.counter_value m "c");
  Alcotest.(check (option (float 0.))) "gauges max" (Some 3.0)
    (Obs.Metrics.gauge_value m "g");
  (match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "no merged hist"
  | Some h -> Alcotest.(check int) "hist counts add" 3 (H.count h));
  (* merge of singleton is identity on the integer state *)
  Alcotest.(check bool) "singleton merge equal" true
    (Obs.Metrics.equal (Obs.Metrics.merge [ mk 5 ]) (mk 5))

let test_openmetrics_text () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr r "ccsim_aborts_total{cause=\"deadlock\"}" 2;
  Obs.Metrics.set_gauge r "ccsim_shards" 4.0;
  Obs.Metrics.observe r "ccsim_commit_latency_seconds" 0.5;
  let text = Obs.Metrics.to_openmetrics r in
  let has s =
    Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
      (contains text s)
  in
  has "ccsim_aborts_total{cause=\"deadlock\"} 2";
  has "ccsim_shards 4";
  has "ccsim_commit_latency_seconds_count 1";
  has "ccsim_commit_latency_seconds_bucket";
  has "# EOF"

(* ------------------------------------------------------------------ *)
(* Span record: buffer + validation                                    *)
(* ------------------------------------------------------------------ *)

let sp_entries ops =
  (* build a record through the sink API *)
  let (), buf =
    Obs.Span.with_spans (fun () ->
        List.iter (fun f -> f ()) ops)
  in
  Obs.Span.entries buf

let test_span_sink_roundtrip () =
  let ids = ref [] in
  let es =
    sp_entries
      [
        (fun () ->
          let id =
            Obs.Span.open_span ~time:1.0 ~track:(Obs.Span.Client 0)
              ~kind:Obs.Span.Xact ~parent:(-1) ~xid:(-1)
          in
          ids := [ id ]);
        (fun () ->
          Obs.Span.close_span ~time:2.0 (List.hd !ids));
      ]
  in
  Alcotest.(check int) "two entries" 2 (Array.length es);
  let ck = Obs.Span.validate es in
  Alcotest.(check bool) "well-formed" true (Obs.Span.check_ok ck);
  Alcotest.(check int) "opened" 1 ck.Obs.Span.ck_opened;
  Alcotest.(check int) "closed" 1 ck.Obs.Span.ck_closed;
  Alcotest.(check int) "unclosed" 0 ck.Obs.Span.ck_unclosed

let test_span_no_sink_is_noop () =
  let id =
    Obs.Span.open_span ~time:0.0 ~track:(Obs.Span.Client 1)
      ~kind:Obs.Span.Think ~parent:(-1) ~xid:0
  in
  Alcotest.(check int) "sentinel id" (-1) id;
  Obs.Span.close_span ~time:1.0 id;
  Alcotest.(check bool) "inactive" false (Obs.Span.active ())

let mk_entry sp_time sp_seq sp_ev = { Obs.Span.sp_time; sp_seq; sp_ev }

let op ?(parent = -1) ?(xid = 0) ?(track = Obs.Span.Client 0)
    ?(kind = Obs.Span.Attempt) id =
  Obs.Span.Open { id; parent; track; kind; xid }

let cl ?(ok = true) id = Obs.Span.Close { id; ok }

let test_validate_catches_malformed () =
  let bad name es =
    let ck = Obs.Span.validate es in
    Alcotest.(check bool) (name ^ " flagged") false (Obs.Span.check_ok ck)
  in
  (* close without open *)
  bad "orphan close" [| mk_entry 1.0 0 (cl 7) |];
  (* double close *)
  bad "double close"
    [|
      mk_entry 1.0 0 (op 1); mk_entry 2.0 1 (cl 1); mk_entry 3.0 2 (cl 1);
    |];
  (* duplicate id open *)
  bad "duplicate open" [| mk_entry 1.0 0 (op 1); mk_entry 2.0 1 (op 1) |];
  (* timestamps must be non-decreasing *)
  bad "time regression"
    [| mk_entry 5.0 0 (op 1); mk_entry 4.0 1 (cl 1) |];
  (* child closing after its parent violates containment *)
  bad "parent containment"
    [|
      mk_entry 1.0 0 (op 1);
      mk_entry 1.5 1 (op ~parent:1 2);
      mk_entry 2.0 2 (cl 1);
      mk_entry 3.0 3 (cl 2);
    |];
  (* unknown parent *)
  bad "unknown parent" [| mk_entry 1.0 0 (op ~parent:42 1) |];
  (* unclosed spans alone are allowed (run may end mid-transaction) *)
  let ck = Obs.Span.validate [| mk_entry 1.0 0 (op 1) |] in
  Alcotest.(check bool) "unclosed ok" true (Obs.Span.check_ok ck);
  Alcotest.(check int) "unclosed counted" 1 ck.Obs.Span.ck_unclosed

let test_span_ring_drop_relaxes () =
  (* with dropped > 0 an orphan close is attributed to the ring, not an
     error *)
  let es = [| mk_entry 1.0 5 (cl 3) |] in
  Alcotest.(check bool) "strict flags" false
    (Obs.Span.check_ok (Obs.Span.validate es));
  Alcotest.(check bool) "relaxed passes" true
    (Obs.Span.check_ok (Obs.Span.validate ~dropped:10 es))

(* ------------------------------------------------------------------ *)
(* Critical path: synthetic reconciliation                             *)
(* ------------------------------------------------------------------ *)

let test_critical_path_synthetic () =
  (* one committed xact, leaf-tiled 0..10: think 0-4, cpu 4-5,
     fetch 5-9, cpu 9-10 *)
  let es =
    [|
      mk_entry 0.0 0 (op ~kind:Obs.Span.Xact ~xid:(-1) 1);
      mk_entry 0.0 1 (op ~kind:Obs.Span.Attempt ~parent:1 ~xid:7 2);
      mk_entry 0.0 2 (op ~kind:Obs.Span.Think ~parent:2 ~xid:7 3);
      mk_entry 4.0 3 (cl 3);
      mk_entry 4.0 4 (op ~kind:Obs.Span.Client_cpu ~parent:2 ~xid:7 4);
      mk_entry 5.0 5 (cl 4);
      mk_entry 5.0 6 (op ~kind:Obs.Span.Fetch_wait ~parent:2 ~xid:7 5);
      (* a server root span overlapping the fetch wait: aggregated, not
         added to the client phase sum *)
      mk_entry 5.5 7
        (op ~kind:Obs.Span.Disk_io ~track:(Obs.Span.Server 0) ~xid:7 13);
      mk_entry 8.0 8 (cl 13);
      mk_entry 9.0 9 (cl 5);
      mk_entry 9.0 10 (op ~kind:Obs.Span.Client_cpu ~parent:2 ~xid:7 6);
      mk_entry 10.0 11 (cl 6);
      mk_entry 10.0 12 (cl 2);
      mk_entry 10.0 13 (cl 1);
    |]
  in
  Alcotest.(check bool) "synthetic record well-formed" true
    (Obs.Span.check_ok (Obs.Span.validate es));
  let tagged = Array.map (fun e -> (0, e)) es in
  let cp = Obs.Critical_path.analyze tagged in
  Alcotest.(check int) "one xact" 1 cp.Obs.Critical_path.cp_xacts;
  Alcotest.(check (float 1e-12)) "end to end" 10.0
    cp.Obs.Critical_path.cp_end_to_end;
  Alcotest.(check (float 1e-12)) "phases sum" 10.0
    cp.Obs.Critical_path.cp_phase_sum;
  Alcotest.(check bool) "reconciles" true (Obs.Critical_path.reconciles cp);
  let leaf k =
    List.find (fun r -> r.Obs.Critical_path.r_kind = k)
      cp.Obs.Critical_path.cp_client
  in
  Alcotest.(check (float 1e-12)) "think" 4.0
    (leaf Obs.Span.Think).Obs.Critical_path.r_total;
  Alcotest.(check (float 1e-12)) "fetch" 4.0
    (leaf Obs.Span.Fetch_wait).Obs.Critical_path.r_total;
  Alcotest.(check (float 1e-12)) "cpu" 2.0
    (leaf Obs.Span.Client_cpu).Obs.Critical_path.r_total;
  (* server row shows up on shard 0, outside the additive sum *)
  (match cp.Obs.Critical_path.cp_server with
  | [ (0, rows) ] ->
      let d =
        List.find (fun r -> r.Obs.Critical_path.r_kind = Obs.Span.Disk_io) rows
      in
      Alcotest.(check (float 1e-12)) "disk overlap" 2.5
        d.Obs.Critical_path.r_total
  | _ -> Alcotest.fail "expected one server track")

let test_critical_path_excludes_crashed () =
  (* an Xact closed ok:false (crash) must not count as committed *)
  let es =
    [|
      mk_entry 0.0 0 (op ~kind:Obs.Span.Xact ~xid:(-1) 1);
      mk_entry 0.0 1 (op ~kind:Obs.Span.Attempt ~parent:1 ~xid:3 2);
      mk_entry 0.0 2 (op ~kind:Obs.Span.Think ~parent:2 ~xid:3 3);
      mk_entry 2.0 3 (cl ~ok:false 3);
      mk_entry 2.0 4 (cl ~ok:false 2);
      mk_entry 2.0 5 (cl ~ok:false 1);
    |]
  in
  let cp = Obs.Critical_path.analyze (Array.map (fun e -> (0, e)) es) in
  Alcotest.(check int) "no committed xacts" 0 cp.Obs.Critical_path.cp_xacts;
  Alcotest.(check int) "counted as open/crashed" 1
    cp.Obs.Critical_path.cp_open_xacts

(* ------------------------------------------------------------------ *)
(* End-to-end: spans + metrics from real runs                          *)
(* ------------------------------------------------------------------ *)

let small_spec ?(obs = Obs.Config.latency) ?(seed = 7) ?(n_shards = 1)
    ?(fault = Fault.Plan.none) algo =
  let cfg = Core.Sys_params.table5 ~n_clients:4 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.3 ~inter_xact_loc:0.5 () in
  {
    (Core.Simulator.default_spec ~seed ~warmup_commits:20 ~measured_commits:60
       ~obs ~cfg ~xact_params:xp algo)
    with
    Core.Simulator.db_params =
      Db.Db_params.uniform ~n_classes:4 ~pages_per_class:25 ();
    n_shards;
    fault;
  }

let protocols =
  [
    ("2pl-inter", Core.Proto.Two_phase Core.Proto.Inter);
    ("2pl-intra", Core.Proto.Two_phase Core.Proto.Intra);
    ("cert-inter", Core.Proto.Certification Core.Proto.Inter);
    ("cert-intra", Core.Proto.Certification Core.Proto.Intra);
    ("callback", Core.Proto.Callback);
    ("no-wait", Core.Proto.No_wait { notify = Some Core.Proto.Push });
  ]

let run_spec (spec : Core.Simulator.spec) =
  if spec.Core.Simulator.n_shards > 1 then Shard.Shard_sim.run spec
  else Core.Simulator.run spec

let obs_of r =
  match r.Core.Simulator.obs with
  | None -> Alcotest.fail "no obs payload"
  | Some o -> o

let check_run name spec =
  let r = run_spec spec in
  let o = obs_of r in
  (* every replication's span record is self-consistent *)
  List.iter
    (fun rep ->
      let ck =
        Obs.Span.validate ~dropped:rep.Obs.Run.spans_dropped
          rep.Obs.Run.spans
      in
      if not (Obs.Span.check_ok ck) then
        Alcotest.failf "%s: invalid span record: %s" name
          (Format.asprintf "%a" Obs.Span.pp_check ck);
      Alcotest.(check bool)
        (name ^ " spans non-empty")
        true
        (Array.length rep.Obs.Run.spans > 0))
    o.Obs.Run.reps;
  (* phase components sum to end-to-end commit latency *)
  let cp = Obs.Critical_path.analyze (Obs.Run.merged_spans o) in
  Alcotest.(check bool) (name ^ " has committed xacts") true
    (cp.Obs.Critical_path.cp_xacts > 0);
  if not (Obs.Critical_path.reconciles cp) then
    Alcotest.failf "%s: phases do not reconcile: end-to-end %.9f phases %.9f"
      name cp.Obs.Critical_path.cp_end_to_end
      cp.Obs.Critical_path.cp_phase_sum;
  (* the commit-latency histogram counts exactly the committed Xact spans *)
  let m = Option.get (Obs.Run.merged_metrics o) in
  (match Obs.Metrics.histogram m "ccsim_commit_latency_seconds" with
  | None -> Alcotest.failf "%s: no commit-latency histogram" name
  | Some h ->
      Alcotest.(check int)
        (name ^ " histogram count = committed xacts")
        cp.Obs.Critical_path.cp_xacts (H.count h));
  (r, o, cp)

let test_reconciles_one_shard () =
  List.iter
    (fun (name, algo) -> ignore (check_run name (small_spec algo)))
    protocols

let test_reconciles_four_shards () =
  List.iter
    (fun (name, algo) ->
      let _, o, _ =
        check_run (name ^ "@4") (small_spec ~n_shards:4 algo)
      in
      (* sharded runs carry per-shard load counters and the topology gauge *)
      let m = Option.get (Obs.Run.merged_metrics o) in
      Alcotest.(check (option (float 0.)))
        (name ^ " shards gauge")
        (Some 4.0)
        (Obs.Metrics.gauge_value m "ccsim_shards");
      Alcotest.(check bool)
        (name ^ " shard msg counters")
        true
        (Obs.Metrics.counter_value m "ccsim_shard_msgs_total{shard=\"0\"}"
         <> None))
    [ List.nth protocols 0; List.nth protocols 4 ]

let test_2pc_metrics_present () =
  let _, o, _ =
    check_run "2pc-metrics"
      (small_spec ~n_shards:4 (Core.Proto.Two_phase Core.Proto.Inter))
  in
  let m = Option.get (Obs.Run.merged_metrics o) in
  (match Obs.Metrics.histogram m "ccsim_2pc_fanout" with
  | None -> Alcotest.fail "no fan-out histogram"
  | Some h -> Alcotest.(check bool) "fanout recorded" true (H.count h > 0));
  match Obs.Metrics.histogram m "ccsim_2pc_indoubt_seconds" with
  | None -> Alcotest.fail "no in-doubt histogram"
  | Some h -> Alcotest.(check bool) "indoubt recorded" true (H.count h > 0)

(* ------------------------------------------------------------------ *)
(* Well-formedness under faults                                        *)
(* ------------------------------------------------------------------ *)

let validate_all name o =
  List.iter
    (fun rep ->
      let ck =
        Obs.Span.validate ~dropped:rep.Obs.Run.spans_dropped
          rep.Obs.Run.spans
      in
      if not (Obs.Span.check_ok ck) then
        Alcotest.failf "%s: invalid span record under faults: %s" name
          (Format.asprintf "%a" Obs.Span.pp_check ck))
    o.Obs.Run.reps

let test_spans_survive_client_crashes () =
  let spec =
    small_spec ~seed:11 ~fault:(Fault.Plan.default ~seed:3)
      (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let r = run_spec spec in
  let o = obs_of r in
  validate_all "client crashes" o;
  (* crash-ended transactions are excluded from the committed population *)
  let cp = Obs.Critical_path.analyze (Obs.Run.merged_spans o) in
  Alcotest.(check bool) "still reconciles" true
    (Obs.Critical_path.reconciles cp);
  let m = Option.get (Obs.Run.merged_metrics o) in
  match Obs.Metrics.histogram m "ccsim_commit_latency_seconds" with
  | None -> Alcotest.fail "no latency histogram"
  | Some h ->
      Alcotest.(check int) "histogram still matches committed"
        cp.Obs.Critical_path.cp_xacts (H.count h)

let test_spans_survive_coordinator_amnesia () =
  let fault =
    {
      Fault.Plan.none with
      Fault.Plan.seed = 5;
      coord_crash_prob = 0.5;
      req_timeout = 1.0;
      max_backoff = 8.0;
    }
  in
  let spec =
    small_spec ~seed:11 ~n_shards:4 ~fault
      (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let r = run_spec spec in
  let o = obs_of r in
  validate_all "coordinator amnesia" o;
  let cp = Obs.Critical_path.analyze (Obs.Run.merged_spans o) in
  Alcotest.(check bool) "amnesia run reconciles" true
    (Obs.Critical_path.reconciles cp)

(* ------------------------------------------------------------------ *)
(* Purity and j-invariance                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_obs_is_pure () =
  (* spans + metrics emission adds no engine events, no holds and no
     randomness: the full result record — [events] included — is
     identical to the dark run *)
  List.iter
    (fun (name, algo) ->
      let base = run_spec (small_spec ~obs:Obs.Config.off algo) in
      let instr = run_spec (small_spec algo) in
      Alcotest.(check bool)
        (name ^ " result bit-identical")
        true
        ({ instr with Core.Simulator.obs = None } = base))
    [ List.nth protocols 0; List.nth protocols 4 ];
  (* sharded too *)
  let base = run_spec (small_spec ~obs:Obs.Config.off ~n_shards:4
                         (Core.Proto.Two_phase Core.Proto.Inter)) in
  let instr = run_spec (small_spec ~n_shards:4
                          (Core.Proto.Two_phase Core.Proto.Inter)) in
  Alcotest.(check bool) "sharded result bit-identical" true
    ({ instr with Core.Simulator.obs = None } = base)

let artifacts ~jobs (spec : Core.Simulator.spec) =
  let r =
    if spec.Core.Simulator.n_shards > 1 then
      Shard.Shard_sim.run_replicated ~jobs spec ~reps:3
    else Core.Simulator.run_replicated ~jobs spec ~reps:3
  in
  let o = obs_of r in
  let spans = Obs.Run.merged_spans o in
  ( Obs.Export.span_text spans,
    Obs.Metrics.to_openmetrics (Option.get (Obs.Run.merged_metrics o)),
    Obs.Export.perfetto ~spans (Obs.Run.merged_trace o) )

let test_jobs_invariance_spans () =
  let spec = small_spec (Core.Proto.Two_phase Core.Proto.Inter) in
  let s1, m1, p1 = artifacts ~jobs:1 spec in
  let s4, m4, p4 = artifacts ~jobs:4 spec in
  Alcotest.(check bool) "span text non-empty" true (String.length s1 > 0);
  Alcotest.(check string) "span text identical" s1 s4;
  Alcotest.(check string) "openmetrics identical" m1 m4;
  Alcotest.(check string) "perfetto identical" p1 p4

let test_jobs_invariance_spans_sharded () =
  let spec =
    small_spec ~n_shards:4 (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let s1, m1, _ = artifacts ~jobs:1 spec in
  let s4, m4, _ = artifacts ~jobs:4 spec in
  Alcotest.(check string) "sharded span text identical" s1 s4;
  Alcotest.(check string) "sharded openmetrics identical" m1 m4

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_perfetto_span_events () =
  let spec =
    {
      (small_spec ~n_shards:4 (Core.Proto.Two_phase Core.Proto.Inter)) with
      Core.Simulator.obs =
        Obs.Config.make ~trace:true ~spans:true ~metrics:true ();
    }
  in
  let r = run_spec spec in
  let o = obs_of r in
  let json = Obs.Export.perfetto ~spans:(Obs.Run.merged_spans o)
      (Obs.Run.merged_trace o) in
  (match Obs.Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "perfetto JSON invalid: %s" e);
  Alcotest.(check bool) "complete events present" true
    (contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "shard lane named" true (contains json "shard 1");
  Alcotest.(check bool) "xact spans named" true
    (contains json "\"name\":\"xact\"");
  Alcotest.(check bool) "2pc spans named" true
    (contains json "\"name\":\"2pc_prepare\"")

let test_chaos_repro_snapshot () =
  (* the chaos reproducer dump writes a span + metrics snapshot alongside
     the trace, and all three are well-formed *)
  let dir = Filename.temp_file "ccsim-chaos" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let file = Filename.concat dir "repro.trace" in
  let sp =
    Experiments.Chaos.spec ~n_clients:4 ~n_shards:2 ~measured_commits:60
      ~fault:(Fault.Plan.default ~seed:3)
      (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let n_events, n_spans = Experiments.Chaos.write_repro_trace ~file sp in
  Alcotest.(check bool) "events written" true (n_events > 0);
  Alcotest.(check bool) "spans written" true (n_spans > 0);
  let read f =
    let ic = open_in_bin f in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base = Filename.concat dir "repro" in
  Alcotest.(check bool) "trace file" true (String.length (read file) > 0);
  Alcotest.(check bool) "span snapshot" true
    (contains (read (base ^ ".spans")) "open");
  Alcotest.(check bool) "metrics snapshot" true
    (contains (read (base ^ ".metrics")) "ccsim_commit_latency_seconds");
  Alcotest.(check bool) "causal dag snapshot" true
    (contains (read (base ^ ".dag")) "send");
  List.iter Sys.remove
    [ file; base ^ ".spans"; base ^ ".metrics"; base ^ ".dag" ];
  Sys.rmdir dir

let test_span_text_format () =
  let spec = small_spec (Core.Proto.Two_phase Core.Proto.Inter) in
  let r = run_spec spec in
  let o = obs_of r in
  let text = Obs.Export.span_text (Obs.Run.merged_spans o) in
  Alcotest.(check bool) "open lines" true (contains text "open");
  Alcotest.(check bool) "close lines" true (contains text "close");
  Alcotest.(check bool) "rep tags" true (contains text "rep0")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "span"
    [
      ( "hist",
        [
          case "basics and bucket membership" test_hist_basics;
          case "bucket bounds tile the axis" test_hist_bucket_bounds_partition;
        ] );
      qsuite "hist-props"
        [ qtest_hist_merge_assoc_comm; qtest_hist_quantile_error_bound ];
      ( "registry",
        [
          case "counter/gauge/histogram ops" test_registry_ops;
          case "merge is exact" test_registry_merge_exact;
          case "openmetrics exposition" test_openmetrics_text;
        ] );
      ( "span-record",
        [
          case "sink roundtrip" test_span_sink_roundtrip;
          case "no sink is a no-op" test_span_no_sink_is_noop;
          case "validation catches malformed records"
            test_validate_catches_malformed;
          case "ring drops relax orphan checks" test_span_ring_drop_relaxes;
        ] );
      ( "critical-path",
        [
          case "synthetic decomposition" test_critical_path_synthetic;
          case "crashed xacts excluded" test_critical_path_excludes_crashed;
        ] );
      ( "reconciliation",
        [
          case "all protocols, one shard" test_reconciles_one_shard;
          case "protocols at four shards" test_reconciles_four_shards;
          case "2pc metrics recorded" test_2pc_metrics_present;
        ] );
      ( "faults",
        [
          case "client crashes keep records well-formed"
            test_spans_survive_client_crashes;
          case "coordinator amnesia keeps records well-formed"
            test_spans_survive_coordinator_amnesia;
        ] );
      ( "purity",
        [ case "latency obs leaves results bit-identical" test_latency_obs_is_pure ] );
      ( "jobs",
        [
          case "artifacts identical at -j1 and -j4" test_jobs_invariance_spans;
          case "sharded artifacts identical" test_jobs_invariance_spans_sharded;
        ] );
      ( "export",
        [
          case "perfetto duration events" test_perfetto_span_events;
          case "span text dump" test_span_text_format;
          case "chaos reproducer snapshot" test_chaos_repro_snapshot;
        ] );
    ]
