(* Tests for disks, the LRU pool, and the log manager (lib/storage). *)

open Storage

let case name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)
(* ------------------------------------------------------------------ *)

let fixed_seek = { Disk.seek_low = 0.035; seek_high = 0.035; transfer_time = 0.002 }

let test_disk_access_time () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"d0" fixed_seek in
  Sim.Engine.spawn eng (fun () -> Disk.access d ~seeks:1 ~pages:1);
  let t = Sim.Engine.run eng () in
  check_float "seek + transfer" 0.037 t;
  Alcotest.(check int) "accesses" 1 (Disk.accesses d);
  Alcotest.(check int) "pages" 1 (Disk.pages_transferred d)

let test_disk_sequential_no_seek () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"log" fixed_seek in
  Sim.Engine.spawn eng (fun () -> Disk.access d ~seeks:0 ~pages:4);
  let t = Sim.Engine.run eng () in
  check_float "transfers only" 0.008 t

let test_disk_fcfs () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"d" fixed_seek in
  let finish = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn eng (fun () ->
        Disk.access d ~seeks:1 ~pages:1;
        finish := i :: !finish)
  done;
  ignore (Sim.Engine.run eng ());
  Alcotest.(check (list int)) "fcfs" [ 1; 2; 3 ] (List.rev !finish)

let test_disk_seek_range () =
  let eng = Sim.Engine.create () in
  let prm = { Disk.seek_low = 0.0; seek_high = 0.044; transfer_time = 0.002 } in
  let d = Disk.create eng ~rng:(Sim.Rng.create 5) ~name:"d" prm in
  Sim.Engine.spawn eng (fun () ->
      for _ = 1 to 100 do
        Disk.access d ~seeks:1 ~pages:1
      done);
  let t = Sim.Engine.run eng () in
  (* mean access = 22ms seek + 2ms transfer = 24 ms; 100 accesses ~ 2.4 s *)
  if t < 1.8 || t > 3.0 then Alcotest.failf "total time off: %g" t

(* ------------------------------------------------------------------ *)
(* Lru_pool                                                            *)
(* ------------------------------------------------------------------ *)

let test_lru_insert_and_hit () =
  let c = Lru_pool.create ~capacity:3 in
  Alcotest.(check (option reject)) "no victim"
    None
    (Lru_pool.insert c 1 ~dirty:false);
  Alcotest.(check bool) "mem" true (Lru_pool.mem c 1);
  Alcotest.(check bool) "touch hit" true (Lru_pool.touch c 1);
  Alcotest.(check bool) "touch miss" false (Lru_pool.touch c 99)

let test_lru_eviction_order () =
  let c = Lru_pool.create ~capacity:2 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  ignore (Lru_pool.insert c 2 ~dirty:false);
  (match Lru_pool.insert c 3 ~dirty:false with
  | Some v -> Alcotest.(check int) "evicts LRU (1)" 1 v.Lru_pool.page
  | None -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "2 resident" true (Lru_pool.mem c 2);
  Alcotest.(check bool) "3 resident" true (Lru_pool.mem c 3)

let test_lru_touch_protects () =
  let c = Lru_pool.create ~capacity:2 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  ignore (Lru_pool.insert c 2 ~dirty:false);
  ignore (Lru_pool.touch c 1);
  (match Lru_pool.insert c 3 ~dirty:false with
  | Some v -> Alcotest.(check int) "evicts 2, not touched 1" 2 v.Lru_pool.page
  | None -> Alcotest.fail "expected eviction")

let test_lru_dirty_eviction () =
  let c = Lru_pool.create ~capacity:1 in
  ignore (Lru_pool.insert c 1 ~dirty:true);
  match Lru_pool.insert c 2 ~dirty:false with
  | Some v ->
      Alcotest.(check int) "victim page" 1 v.Lru_pool.page;
      Alcotest.(check bool) "victim dirty" true v.Lru_pool.dirty
  | None -> Alcotest.fail "expected eviction"

let test_lru_dirty_bit_ors () =
  let c = Lru_pool.create ~capacity:2 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  ignore (Lru_pool.insert c 1 ~dirty:true);
  Alcotest.(check bool) "dirty after re-insert" true (Lru_pool.is_dirty c 1);
  ignore (Lru_pool.insert c 1 ~dirty:false);
  Alcotest.(check bool) "stays dirty" true (Lru_pool.is_dirty c 1);
  Lru_pool.set_dirty c 1 false;
  Alcotest.(check bool) "cleaned" false (Lru_pool.is_dirty c 1)

let test_lru_pin_blocks_eviction () =
  let c = Lru_pool.create ~capacity:2 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  ignore (Lru_pool.insert c 2 ~dirty:false);
  Lru_pool.pin c 1;
  (match Lru_pool.insert c 3 ~dirty:false with
  | Some v -> Alcotest.(check int) "skips pinned LRU" 2 v.Lru_pool.page
  | None -> Alcotest.fail "expected eviction");
  Lru_pool.unpin c 1;
  Alcotest.(check int) "pin count zero" 0 (Lru_pool.pin_count c 1)

let test_lru_all_pinned_fails () =
  let c = Lru_pool.create ~capacity:1 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  Lru_pool.pin c 1;
  Alcotest.check_raises "over-pinned" (Failure "Lru_pool: all frames pinned")
    (fun () -> ignore (Lru_pool.insert c 2 ~dirty:false))

let test_lru_remove () =
  let c = Lru_pool.create ~capacity:2 in
  ignore (Lru_pool.insert c 1 ~dirty:true);
  Alcotest.(check bool) "remove returns dirty" true (Lru_pool.remove c 1);
  Alcotest.(check bool) "gone" false (Lru_pool.mem c 1);
  Alcotest.(check bool) "remove missing" false (Lru_pool.remove c 1)

let test_lru_mru_order () =
  let c = Lru_pool.create ~capacity:3 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  ignore (Lru_pool.insert c 2 ~dirty:false);
  ignore (Lru_pool.insert c 3 ~dirty:false);
  ignore (Lru_pool.touch c 1);
  Alcotest.(check (list int)) "mru order" [ 1; 3; 2 ] (Lru_pool.pages_mru c)

let test_lru_clear () =
  let c = Lru_pool.create ~capacity:3 in
  ignore (Lru_pool.insert c 1 ~dirty:true);
  ignore (Lru_pool.insert c 2 ~dirty:false);
  Lru_pool.clear c;
  Alcotest.(check int) "empty" 0 (Lru_pool.size c);
  Alcotest.(check (list int)) "no pages" [] (Lru_pool.pages_mru c)

let test_lru_unpin_all () =
  let c = Lru_pool.create ~capacity:2 in
  ignore (Lru_pool.insert c 1 ~dirty:false);
  Lru_pool.pin c 1;
  Lru_pool.pin c 1;
  Lru_pool.unpin_all c;
  Alcotest.(check int) "pins cleared" 0 (Lru_pool.pin_count c 1)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"size never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 200) (int_range 0 30)))
    (fun (cap, ops) ->
      let c = Lru_pool.create ~capacity:cap in
      List.iter (fun p -> ignore (Lru_pool.insert c p ~dirty:(p mod 2 = 0))) ops;
      Lru_pool.size c <= cap)

let prop_lru_most_recent_resident =
  QCheck.Test.make ~name:"most recent insert always resident" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 100) (int_range 0 30)))
    (fun (cap, ops) ->
      let c = Lru_pool.create ~capacity:cap in
      List.for_all
        (fun p ->
          ignore (Lru_pool.insert c p ~dirty:false);
          Lru_pool.mem c p)
        ops)

(* ------------------------------------------------------------------ *)
(* Log_manager                                                         *)
(* ------------------------------------------------------------------ *)

let test_log_pages_for () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"log" fixed_seek in
  let lm = Log_manager.create eng ~disk:d () in
  Alcotest.(check int) "0 updates -> 1 page" 1 (Log_manager.log_pages_for lm ~n_updates:0);
  Alcotest.(check int) "8 updates -> 1 page" 1 (Log_manager.log_pages_for lm ~n_updates:8);
  Alcotest.(check int) "9 updates -> 2 pages" 2 (Log_manager.log_pages_for lm ~n_updates:9)

let test_log_commit_timing () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"log" fixed_seek in
  let lm = Log_manager.create eng ~disk:d () in
  Sim.Engine.spawn eng (fun () -> Log_manager.force_commit lm ~n_updates:4);
  let t = Sim.Engine.run eng () in
  (* sequential: one log page transfer, no seek *)
  check_float "log force" 0.002 t;
  Alcotest.(check int) "commits" 1 (Log_manager.commits_logged lm)

let test_log_abort_counted () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"log" fixed_seek in
  let lm = Log_manager.create eng ~disk:d () in
  Sim.Engine.spawn eng (fun () -> Log_manager.force_abort lm ~n_updates:0);
  ignore (Sim.Engine.run eng ());
  Alcotest.(check int) "aborts" 1 (Log_manager.aborts_logged lm);
  Alcotest.(check int) "pages written" 1 (Log_manager.log_pages_written lm)


(* ------------------------------------------------------------------ *)
(* Log_manager: typed redo records, crash, replay                      *)
(* ------------------------------------------------------------------ *)

let make_log () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"log" fixed_seek in
  (eng, Log_manager.create eng ~disk:d ())

let run_log eng body =
  Sim.Engine.spawn eng body;
  ignore (Sim.Engine.run eng ())

(* Interleaved commits, an abort, a crash-lost tail, and a checkpoint:
   replay must reconstruct exactly the committed page-version map. *)
let test_log_replay_reconstructs () =
  let eng, lm = make_log () in
  run_log eng (fun () ->
      Log_manager.log_begin lm ~xid:1;
      Log_manager.force_commit ~xid:1 ~updates:[ (10, 1); (11, 1) ] lm
        ~n_updates:2;
      Log_manager.log_begin lm ~xid:2;
      Log_manager.force_abort ~xid:2 lm ~n_updates:0;
      Log_manager.log_begin lm ~xid:3;
      Log_manager.force_commit ~xid:3 ~updates:[ (10, 2) ] lm ~n_updates:1;
      (* appended but never forced: lost at the crash below *)
      Log_manager.append_commit lm ~xid:4 ~updates:[ (12, 1) ]);
  Log_manager.crash lm;
  Alcotest.(check (list (pair int int)))
    "committed map: redo commits, drop abort, lose volatile tail"
    [ (10, 2); (11, 1) ]
    (Log_manager.committed_versions lm);
  let into = Hashtbl.create 8 in
  let stats = ref None in
  run_log eng (fun () -> stats := Some (Log_manager.replay lm ~into));
  let s = Option.get !stats in
  Alcotest.(check int) "xacts redone" 2 s.Log_manager.xacts_redone;
  Alcotest.(check bool) "abort discarded" true
    (s.Log_manager.xacts_discarded >= 1);
  Alcotest.(check (option int)) "page 10 at v2" (Some 2)
    (Hashtbl.find_opt into 10);
  Alcotest.(check (option int)) "lost tail not replayed" None
    (Hashtbl.find_opt into 12)

let test_log_durable_outcomes () =
  let eng, lm = make_log () in
  run_log eng (fun () ->
      Log_manager.force_commit ~xid:7 ~updates:[ (3, 1) ] lm ~n_updates:1;
      Log_manager.force_abort ~xid:8 lm ~n_updates:0;
      Log_manager.append_commit lm ~xid:9 ~updates:[ (4, 1) ]);
  Log_manager.crash lm;
  Alcotest.(check (list (pair int bool)))
    "durable outcomes in log order, volatile x9 lost"
    [ (7, true); (8, false) ]
    (Log_manager.durable_outcomes lm);
  Alcotest.(check (option (list (pair int int))))
    "x7 rebuildable" (Some [ (3, 1) ])
    (Log_manager.durable_commit_updates lm ~xid:7);
  Alcotest.(check (option (list (pair int int))))
    "x9 not durable" None
    (Log_manager.durable_commit_updates lm ~xid:9);
  Alcotest.(check (list (pair int int)))
    "durable committed pairs" [ (3, 1) ]
    (Log_manager.durable_committed_pairs lm)

(* Regression: a commit appended (version already visible) but not yet
   forced when a checkpoint runs sits BEFORE the checkpoint record in the
   log.  The checkpoint's own force makes it durable, so its snapshot must
   include it — otherwise replay-from-checkpoint silently loses it. *)
let test_log_checkpoint_covers_buffered_tail () =
  let eng, lm = make_log () in
  run_log eng (fun () ->
      Log_manager.force_commit ~xid:1 ~updates:[ (5, 1) ] lm ~n_updates:1;
      Log_manager.append_commit lm ~xid:2 ~updates:[ (6, 1) ];
      ignore (Log_manager.checkpoint lm));
  Log_manager.crash lm;
  let into = Hashtbl.create 8 in
  run_log eng (fun () -> ignore (Log_manager.replay lm ~into));
  Alcotest.(check (option int))
    "buffered commit in checkpoint snapshot" (Some 1)
    (Hashtbl.find_opt into 6);
  Alcotest.(check (option int)) "forced commit kept" (Some 1)
    (Hashtbl.find_opt into 5)

(* The typed records ride on the existing cost model: a typed force
   charges exactly the pages the bare (legacy, xid-less) force charges,
   and force_pending charges one page only when a tail is buffered. *)
let test_log_typed_costs_match_legacy () =
  let eng1, lm1 = make_log () in
  run_log eng1 (fun () ->
      Log_manager.force_commit ~xid:1
        ~updates:(List.init 9 (fun i -> (i, 1)))
        lm1 ~n_updates:9;
      Log_manager.force_abort ~xid:2 lm1 ~n_updates:0);
  let eng2, lm2 = make_log () in
  run_log eng2 (fun () ->
      Log_manager.force_commit lm2 ~n_updates:9;
      Log_manager.force_abort lm2 ~n_updates:0);
  Alcotest.(check int) "typed force charges the legacy pages"
    (Log_manager.log_pages_written lm2)
    (Log_manager.log_pages_written lm1);
  let eng3, lm3 = make_log () in
  run_log eng3 (fun () ->
      Log_manager.force_pending lm3;
      Alcotest.(check int) "clean log: force_pending is free" 0
        (Log_manager.log_pages_written lm3);
      Log_manager.append_commit lm3 ~xid:1 ~updates:[ (1, 1) ];
      Log_manager.force_pending lm3;
      Alcotest.(check int) "buffered tail: one sequential page" 1
        (Log_manager.log_pages_written lm3);
      Alcotest.(check int) "tail now durable" (Log_manager.records_logged lm3)
        (Log_manager.durable_records lm3))

(* Model-based check: the pool must agree with a naive reference LRU on
   membership and eviction choice under arbitrary operation sequences. *)
let prop_lru_matches_reference_model =
  QCheck.Test.make ~name:"pool agrees with reference LRU model" ~count:300
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(int_range 1 120) (pair (int_range 0 14) (int_range 0 2))))
    (fun (cap, ops) ->
      let pool = Lru_pool.create ~capacity:cap in
      (* reference: MRU-first list of (page, dirty) *)
      let model = ref [] in
      let model_mem p = List.mem_assoc p !model in
      let model_touch p =
        match List.assoc_opt p !model with
        | None -> false
        | Some d ->
            model := (p, d) :: List.remove_assoc p !model;
            true
      in
      let model_insert p dirty =
        if model_mem p then begin
          let d = List.assoc p !model in
          model := (p, d || dirty) :: List.remove_assoc p !model;
          None
        end
        else begin
          let victim =
            if List.length !model >= cap then begin
              let rec last = function
                | [ x ] -> x
                | _ :: rest -> last rest
                | [] -> assert false
              in
              let (vp, vd) = last !model in
              model := List.remove_assoc vp !model;
              Some (vp, vd)
            end
            else None
          in
          model := (p, dirty) :: !model;
          victim
        end
      in
      List.for_all
        (fun (page, op) ->
          match op with
          | 0 ->
              let expected = model_touch page in
              Lru_pool.touch pool page = expected
          | 1 ->
              let dirty = page mod 2 = 0 in
              let expected = model_insert page dirty in
              let got = Lru_pool.insert pool page ~dirty in
              (match (expected, got) with
              | None, None -> true
              | Some (vp, vd), Some v ->
                  v.Lru_pool.page = vp && v.Lru_pool.dirty = vd
              | _ -> false)
          | _ ->
              let expected_dirty =
                match List.assoc_opt page !model with Some d -> d | None -> false
              in
              model := List.remove_assoc page !model;
              Lru_pool.remove pool page = expected_dirty)
        ops
      && List.length !model = Lru_pool.size pool)

let suites =
  [
    ( "disk",
      [
        case "access time" test_disk_access_time;
        case "sequential no seek" test_disk_sequential_no_seek;
        case "fcfs" test_disk_fcfs;
        case "seek range statistics" test_disk_seek_range;
      ] );
    ( "lru_pool",
      [
        case "insert and hit" test_lru_insert_and_hit;
        case "eviction order" test_lru_eviction_order;
        case "touch protects" test_lru_touch_protects;
        case "dirty victim" test_lru_dirty_eviction;
        case "dirty bit ors" test_lru_dirty_bit_ors;
        case "pin blocks eviction" test_lru_pin_blocks_eviction;
        case "all pinned fails" test_lru_all_pinned_fails;
        case "remove" test_lru_remove;
        case "mru order" test_lru_mru_order;
        case "clear" test_lru_clear;
        case "unpin all" test_lru_unpin_all;
      ] );
    qsuite "lru-props"
      [
        prop_lru_never_exceeds_capacity;
        prop_lru_most_recent_resident;
        prop_lru_matches_reference_model;
      ];
    ( "log_manager",
      [
        case "log pages" test_log_pages_for;
        case "commit timing" test_log_commit_timing;
        case "abort counted" test_log_abort_counted;
        case "replay reconstructs" test_log_replay_reconstructs;
        case "durable outcomes" test_log_durable_outcomes;
        case "checkpoint covers buffered tail"
          test_log_checkpoint_covers_buffered_tail;
        case "typed costs match legacy" test_log_typed_costs_match_legacy;
      ] );
  ]

let () = Alcotest.run "storage" suites
