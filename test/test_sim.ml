(* Tests for the discrete-event simulation engine (lib/sim). *)

open Sim

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some x ->
        out := x :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.add h 3;
  Heap.add h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Heap.pop h);
  Heap.add h 0;
  Alcotest.(check (option int)) "pop new min" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "pop last" (Some 3) (Heap.pop h);
  Alcotest.(check bool) "empty again" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any int list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.add h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Engine basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_hold_advances_clock () =
  let eng = Engine.create () in
  let seen = ref [] in
  Engine.spawn eng (fun () ->
      seen := (Engine.now eng, "start") :: !seen;
      Engine.hold 2.5;
      seen := (Engine.now eng, "mid") :: !seen;
      Engine.hold 1.5;
      seen := (Engine.now eng, "end") :: !seen);
  let final = Engine.run eng () in
  check_float "final clock" 4.0 final;
  match List.rev !seen with
  | [ (t0, "start"); (t1, "mid"); (t2, "end") ] ->
      check_float "t0" 0.0 t0;
      check_float "t1" 2.5 t1;
      check_float "t2" 4.0 t2
  | _ -> Alcotest.fail "wrong event trace"

let test_fifo_same_time () =
  let eng = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.spawn eng (fun () -> order := i :: !order)
  done;
  ignore (Engine.run eng ());
  Alcotest.(check (list int)) "spawn order preserved" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_run_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 10 do
        Engine.hold 1.0;
        incr hits
      done);
  let t = Engine.run eng ~until:4.5 () in
  check_float "stopped at limit" 4.5 t;
  Alcotest.(check int) "4 ticks before limit" 4 !hits;
  (* resuming runs the remaining events *)
  let t = Engine.run eng () in
  check_float "drained" 10.0 t;
  Alcotest.(check int) "all ticks" 10 !hits

let test_stop () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 100 do
        Engine.hold 1.0;
        incr hits;
        if !hits = 3 then Engine.stop eng
      done);
  ignore (Engine.run eng ());
  Alcotest.(check int) "stopped after 3" 3 !hits

let test_spawn_at () =
  let eng = Engine.create () in
  let t_seen = ref (-1.0) in
  Engine.spawn eng ~at:7.0 (fun () -> t_seen := Engine.now eng);
  ignore (Engine.run eng ());
  check_float "delayed spawn" 7.0 !t_seen

let test_exit_process () =
  let eng = Engine.create () in
  let reached = ref false in
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Engine.exit_process () |> ignore;
      reached := true);
  ignore (Engine.run eng ());
  Alcotest.(check bool) "code after exit not run" false !reached

let test_schedule_past_rejected () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.hold 5.0);
  ignore (Engine.run eng ());
  Alcotest.check_raises "past schedule"
    (Invalid_argument "Engine.schedule: at=1 is before now=5") (fun () ->
      Engine.schedule eng ~at:1.0 (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Condition                                                           *)
(* ------------------------------------------------------------------ *)

let test_condition_signal () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let woken = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Condition.await cond;
        woken := (i, Engine.now eng) :: !woken)
  done;
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      ignore (Condition.signal cond);
      Engine.hold 1.0;
      ignore (Condition.broadcast cond));
  ignore (Engine.run eng ());
  match List.rev !woken with
  | [ (1, t1); (2, t2); (3, t3) ] ->
      check_float "first woken at signal" 1.0 t1;
      check_float "second at broadcast" 2.0 t2;
      check_float "third at broadcast" 2.0 t3
  | _ -> Alcotest.fail "wrong wake order"

let test_condition_signal_empty () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  Engine.spawn eng (fun () ->
      Alcotest.(check bool) "signal with no waiter" false (Condition.signal cond);
      Alcotest.(check int) "broadcast with no waiter" 0 (Condition.broadcast cond));
  ignore (Engine.run eng ())

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Mailbox.send mb "a";
      Mailbox.send mb "b";
      Engine.hold 1.0;
      Mailbox.send mb "c");
  ignore (Engine.run eng ());
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_nonblocking () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  Engine.spawn eng (fun () ->
      Alcotest.(check (option int)) "empty" None (Mailbox.recv_opt mb);
      Mailbox.send mb 42;
      Alcotest.(check int) "pending" 1 (Mailbox.pending mb);
      Alcotest.(check (option int)) "pop" (Some 42) (Mailbox.recv_opt mb));
  ignore (Engine.run eng ())

let test_mailbox_recv_timeout_expires () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref (Some "sentinel") in
  let at = ref (-1.0) in
  Engine.spawn eng (fun () ->
      got := Mailbox.recv_timeout mb ~timeout:2.5;
      at := Engine.now eng);
  ignore (Engine.run eng ());
  Alcotest.(check (option string)) "timed out empty" None !got;
  check_float "resumed at the deadline" 2.5 !at

let test_mailbox_recv_timeout_delivers () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref None in
  let at = ref (-1.0) in
  Engine.spawn eng (fun () ->
      got := Mailbox.recv_timeout mb ~timeout:10.0;
      at := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Mailbox.send mb "msg");
  let drained_at = Engine.run eng () in
  Alcotest.(check (option string)) "message won the race" (Some "msg") !got;
  check_float "resumed at send time" 1.0 !at;
  (* the losing timer event still runs; it must be inert *)
  check_float "stale timer drains cleanly" 10.0 drained_at

let test_mailbox_stale_waiter_forwards_wake () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let first = ref (Some "sentinel") in
  let second = ref None in
  let second_at = ref (-1.0) in
  (* first receiver times out, leaving a tombstone in the blocked queue *)
  Engine.spawn eng (fun () -> first := Mailbox.recv_timeout mb ~timeout:1.0);
  (* second receiver blocks behind it, indefinitely *)
  Engine.spawn eng (fun () ->
      let v = Mailbox.recv mb in
      second := Some v;
      second_at := Engine.now eng);
  (* a send after the timeout pops the tombstone, which must forward the
     wake to the live waiter instead of swallowing it *)
  Engine.spawn eng (fun () ->
      Engine.hold 2.0;
      Mailbox.send mb "late");
  ignore (Engine.run eng ());
  Alcotest.(check (option string)) "first timed out" None !first;
  Alcotest.(check (option string)) "second got the message" (Some "late")
    !second;
  check_float "woken by the forwarded wake" 2.0 !second_at

let test_mailbox_wake_order_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        let v = Mailbox.recv mb in
        order := (i, v) :: !order)
  done;
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Mailbox.send mb "a";
      Engine.hold 1.0;
      Mailbox.send mb "b";
      Engine.hold 1.0;
      Mailbox.send mb "c");
  ignore (Engine.run eng ());
  Alcotest.(check (list (pair int string)))
    "receivers woken in blocking order"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (List.rev !order)

let test_mailbox_two_receivers () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref [] in
  for i = 1 to 2 do
    Engine.spawn eng (fun () ->
        let v = Mailbox.recv mb in
        got := (i, v) :: !got)
  done;
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Mailbox.send mb "x";
      Mailbox.send mb "y");
  ignore (Engine.run eng ());
  Alcotest.(check int) "both received" 2 (List.length !got)

(* ------------------------------------------------------------------ *)
(* Facility                                                            *)
(* ------------------------------------------------------------------ *)

let test_facility_serializes () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"cpu" () in
  let finish = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Facility.use fac 2.0;
        finish := (i, Engine.now eng) :: !finish)
  done;
  ignore (Engine.run eng ());
  match List.rev !finish with
  | [ (1, t1); (2, t2); (3, t3) ] ->
      check_float "first done" 2.0 t1;
      check_float "second done" 4.0 t2;
      check_float "third done" 6.0 t3
  | _ -> Alcotest.fail "wrong completion order"

let test_facility_parallel_units () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"disks" ~capacity:2 () in
  let finish = ref [] in
  for i = 1 to 4 do
    Engine.spawn eng (fun () ->
        Facility.use fac 3.0;
        finish := (i, Engine.now eng) :: !finish)
  done;
  ignore (Engine.run eng ());
  let times = List.rev_map snd !finish in
  Alcotest.(check int) "all done" 4 (List.length times);
  (match times with
  | [ a; b; c; d ] ->
      check_float "pair 1" 3.0 a;
      check_float "pair 1b" 3.0 b;
      check_float "pair 2" 6.0 c;
      check_float "pair 2b" 6.0 d
  | _ -> Alcotest.fail "wrong count");
  Alcotest.(check int) "completions" 4 (Facility.completions fac)

let test_facility_utilization () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"cpu" () in
  Engine.spawn eng (fun () ->
      Facility.use fac 4.0;
      Engine.hold 4.0)
  (* busy 4 of 8 seconds -> utilization 0.5 *);
  ignore (Engine.run eng ());
  check_float "utilization" 0.5 (Facility.utilization fac);
  check_float "service time" 4.0 (Facility.total_service_time fac)

let test_facility_queue_stats () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"cpu" () in
  for _ = 1 to 2 do
    Engine.spawn eng (fun () -> Facility.use fac 5.0)
  done;
  ignore (Engine.run eng ());
  (* second process queues for 5 s of the 10 s run: mean queue len 0.5 *)
  check_float "mean queue length" 0.5 (Facility.mean_queue_length fac);
  check_float "full utilization" 1.0 (Facility.utilization fac)

let test_facility_reset_stats () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"cpu" () in
  Engine.spawn eng (fun () ->
      Facility.use fac 2.0;
      Facility.reset_stats fac;
      Engine.hold 2.0);
  ignore (Engine.run eng ());
  check_float "utilization after reset" 0.0 (Facility.utilization fac);
  Alcotest.(check int) "completions after reset" 0 (Facility.completions fac)

let prop_facility_fcfs =
  QCheck.Test.make ~name:"facility completes FCFS for random service times"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 5.0))
    (fun services ->
      let eng = Engine.create () in
      let fac = Facility.create eng ~name:"f" () in
      let order = ref [] in
      List.iteri
        (fun i s ->
          Engine.spawn eng (fun () ->
              Facility.use fac s;
              order := i :: !order))
        services;
      ignore (Engine.run eng ());
      List.rev !order = List.init (List.length services) Fun.id)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let master = Rng.create 7 in
  let a = Rng.split master "alpha" and b = Rng.split master "beta" in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b);
  let a' = Rng.split master "alpha" in
  Alcotest.(check int64) "split reproducible" (Rng.bits64 (Rng.split master "alpha")) (Rng.bits64 a');
  ignore a'

let test_rng_ranges () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %g" f;
    let i = Rng.uniform_int r 3 9 in
    if i < 3 || i > 9 then Alcotest.failf "int out of range: %d" i;
    let e = Rng.exponential r ~mean:2.0 in
    if e < 0.0 then Alcotest.failf "negative exponential: %g" e
  done

let test_rng_exponential_mean () =
  let r = Rng.create 123 in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add s (Rng.exponential r ~mean:3.0)
  done;
  let m = Stats.mean s in
  if Float.abs (m -. 3.0) > 0.05 then
    Alcotest.failf "exponential mean off: %g" m

let test_rng_bernoulli_rate () =
  let r = Rng.create 99 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  if Float.abs (rate -. 0.25) > 0.01 then Alcotest.failf "bernoulli rate %g" rate

let test_rng_zero_mean_exponential () =
  let r = Rng.create 5 in
  check_float "zero mean -> zero" 0.0 (Rng.exponential r ~mean:0.0)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "total" 10.0 (Stats.total s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  check_float ~eps:1e-9 "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  check_float "mean" 0.0 (Stats.mean s);
  check_float "variance" 0.0 (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  List.iter
    (fun x ->
      Stats.add all x;
      if x < 3.0 then Stats.add a x else Stats.add b x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let m = Stats.merge a b in
  check_float "merged mean" (Stats.mean all) (Stats.mean m);
  check_float ~eps:1e-9 "merged variance" (Stats.variance all) (Stats.variance m);
  Alcotest.(check int) "merged count" 5 (Stats.count m)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"welford mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.incr c ~by:5;
  Alcotest.(check int) "value" 6 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let case name f = Alcotest.test_case name `Quick f


(* ------------------------------------------------------------------ *)
(* Stats.Samples                                                       *)
(* ------------------------------------------------------------------ *)

let test_samples_quantiles () =
  let s = Stats.Samples.create () in
  List.iter (Stats.Samples.add s) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  check_float "min" 1.0 (Stats.Samples.quantile s 0.0);
  check_float "median" 3.0 (Stats.Samples.quantile s 0.5);
  check_float "max" 5.0 (Stats.Samples.quantile s 1.0);
  check_float "interpolated p25" 2.0 (Stats.Samples.quantile s 0.25);
  Alcotest.(check int) "count" 5 (Stats.Samples.count s)

let test_samples_empty_and_reset () =
  let s = Stats.Samples.create () in
  check_float "empty quantile" 0.0 (Stats.Samples.quantile s 0.5);
  Stats.Samples.add s 7.0;
  Stats.Samples.reset s;
  Alcotest.(check int) "reset" 0 (Stats.Samples.count s)

let test_samples_capacity () =
  let s = Stats.Samples.create ~capacity:3 () in
  List.iter (Stats.Samples.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "capped" 3 (Stats.Samples.count s)

let test_samples_add_after_quantile () =
  let s = Stats.Samples.create () in
  List.iter (Stats.Samples.add s) [ 3.0; 1.0 ];
  check_float "median of two" 2.0 (Stats.Samples.quantile s 0.5);
  Stats.Samples.add s 2.0;
  check_float "median of three" 2.0 (Stats.Samples.quantile s 0.5);
  check_float "max updated" 3.0 (Stats.Samples.quantile s 1.0)

let prop_samples_median_between_min_max =
  QCheck.Test.make ~name:"quantiles are monotone and bounded" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (float_range (-50.) 50.))
    (fun xs ->
      let s = Stats.Samples.create () in
      List.iter (Stats.Samples.add s) xs;
      let q25 = Stats.Samples.quantile s 0.25 in
      let q50 = Stats.Samples.quantile s 0.5 in
      let q75 = Stats.Samples.quantile s 0.75 in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      lo <= q25 && q25 <= q50 && q50 <= q75 && q75 <= hi)


(* ------------------------------------------------------------------ *)
(* Ivar                                                                *)
(* ------------------------------------------------------------------ *)

let test_ivar_fill_then_read () =
  let eng = Engine.create () in
  let iv = Ivar.create eng in
  Ivar.fill iv 42;
  Alcotest.(check bool) "filled" true (Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 42) (Ivar.peek iv);
  let got = ref 0 in
  Engine.spawn eng (fun () -> got := Ivar.read iv);
  ignore (Engine.run eng ());
  Alcotest.(check int) "read returns immediately" 42 !got

let test_ivar_blocks_until_filled () =
  let eng = Engine.create () in
  let iv = Ivar.create eng in
  let got_at = ref (-1.0) in
  Engine.spawn eng (fun () ->
      ignore (Ivar.read iv);
      got_at := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.hold 3.0;
      Ivar.fill iv "x");
  ignore (Engine.run eng ());
  check_float "woken at fill time" 3.0 !got_at

let test_ivar_multiple_readers () =
  let eng = Engine.create () in
  let iv = Ivar.create eng in
  let count = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        ignore (Ivar.read iv);
        incr count)
  done;
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Ivar.fill iv ());
  ignore (Engine.run eng ());
  Alcotest.(check int) "all readers woken" 4 !count

let test_ivar_wake_order () =
  let eng = Engine.create () in
  let iv = Ivar.create eng in
  let order = ref [] in
  for i = 1 to 4 do
    Engine.spawn eng (fun () ->
        ignore (Ivar.read iv);
        order := i :: !order)
  done;
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      Ivar.fill iv ());
  ignore (Engine.run eng ());
  Alcotest.(check (list int))
    "readers resume in blocking order" [ 1; 2; 3; 4 ] (List.rev !order)

let test_condition_broadcast_order () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Condition.await cond;
        order := i :: !order)
  done;
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      ignore (Condition.broadcast cond));
  ignore (Engine.run eng ());
  Alcotest.(check (list int))
    "broadcast wakes in await order" [ 1; 2; 3 ] (List.rev !order)

let test_ivar_double_fill () =
  let eng = Engine.create () in
  let iv = Ivar.create eng in
  Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill refused" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises"
    (Invalid_argument "Ivar.fill: already filled") (fun () -> Ivar.fill iv 3);
  Alcotest.(check (option int)) "value unchanged" (Some 1) (Ivar.peek iv)


let test_engine_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Engine.hold 1.0;
      failwith "boom");
  Alcotest.check_raises "process exception escapes run" (Failure "boom")
    (fun () -> ignore (Engine.run eng ()))

let test_engine_counts () =
  let eng = Engine.create () in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () -> Engine.hold 1.0)
  done;
  ignore (Engine.run eng ());
  Alcotest.(check int) "spawned" 3 (Engine.processes_spawned eng);
  (* each process: one spawn event + one resume after hold *)
  Alcotest.(check int) "events" 6 (Engine.events_executed eng)

let test_hold_negative_rejected () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.hold (-1.0));
  Alcotest.check_raises "negative hold" (Invalid_argument "Engine.hold: negative")
    (fun () -> ignore (Engine.run eng ()))

(* ------------------------------------------------------------------ *)
(* Profiling                                                           *)
(* ------------------------------------------------------------------ *)

let test_profile_global_counters () =
  let eng = Engine.create () in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        Engine.hold 1.0;
        Engine.hold 1.0)
  done;
  ignore (Engine.run eng ());
  let p = Engine.profile eng in
  Alcotest.(check int) "events" (Engine.events_executed eng)
    p.Engine.pr_events;
  Alcotest.(check int) "spawned" 4 p.Engine.pr_spawned;
  Alcotest.(check int) "holds" 8 p.Engine.pr_holds;
  (* all four spawn events sit in the heap before any runs *)
  Alcotest.(check int) "heap high-water" 4 p.Engine.pr_heap_hwm;
  (* per-process attribution is off unless enabled *)
  Alcotest.(check int) "no per-process rows" 0
    (List.length p.Engine.pr_per_process)

let test_profile_per_process () =
  let eng = Engine.create () in
  Engine.enable_profiling eng;
  Engine.spawn eng ~name:"busy" (fun () ->
      for _ = 1 to 5 do
        Engine.hold 2.0
      done);
  Engine.spawn eng ~name:"idle" (fun () -> Engine.hold 1.0);
  ignore (Engine.run eng ());
  let p = Engine.profile eng in
  let find n =
    List.find (fun pp -> pp.Engine.pp_name = n) p.Engine.pr_per_process
  in
  let busy = find "busy" and idle = find "idle" in
  (* sorted by runs descending: busy first *)
  Alcotest.(check string) "hottest first" "busy"
    (List.hd p.Engine.pr_per_process).Engine.pp_name;
  Alcotest.(check int) "busy holds" 5 busy.Engine.pp_holds;
  check_float "busy hold time" 10.0 busy.Engine.pp_hold_time;
  Alcotest.(check int) "idle holds" 1 idle.Engine.pp_holds;
  Alcotest.(check int) "busy events" 6 busy.Engine.pp_runs

let test_profile_name_inherited () =
  (* a process spawned without a name is attributed to its spawner *)
  let eng = Engine.create () in
  Engine.enable_profiling eng;
  Engine.spawn eng ~name:"parent" (fun () ->
      Engine.spawn eng (fun () -> Engine.hold 1.0);
      Engine.hold 3.0);
  ignore (Engine.run eng ());
  let p = Engine.profile eng in
  Alcotest.(check int) "one name" 1 (List.length p.Engine.pr_per_process);
  let pp = List.hd p.Engine.pr_per_process in
  Alcotest.(check string) "parent owns all" "parent" pp.Engine.pp_name;
  Alcotest.(check int) "both holds counted" 2 pp.Engine.pp_holds

let test_facility_high_water_and_busy () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"cpu" () in
  for _ = 1 to 5 do
    Engine.spawn eng (fun () -> Facility.use fac 2.0)
  done;
  ignore (Engine.run eng ());
  (* first process serves immediately; the other four queue behind it *)
  Alcotest.(check int) "max queue" 4 (Facility.max_queue_length fac);
  check_float "busy time" 10.0 (Facility.busy_time fac);
  Facility.reset_stats fac;
  Alcotest.(check int) "max queue reset" 0 (Facility.max_queue_length fac);
  check_float "busy reset" 0.0 (Facility.busy_time fac)

let test_facility_busy_time_accrues_mid_service () =
  let eng = Engine.create () in
  let fac = Facility.create eng ~name:"cpu" () in
  Engine.spawn eng (fun () -> Facility.use fac 10.0);
  Engine.spawn eng (fun () ->
      Engine.hold 4.0;
      (* half-way through the service, busy time is already accounted *)
      check_float "mid-service busy" 4.0 (Facility.busy_time fac));
  ignore (Engine.run eng ())

(* ------------------------------------------------------------------ *)
(* Samples.merge                                                       *)
(* ------------------------------------------------------------------ *)

let test_samples_merge_exact_quantiles () =
  let a = Stats.Samples.create () and b = Stats.Samples.create () in
  let all = Stats.Samples.create () in
  let xs = [ 9.0; 1.0; 4.0; 7.0 ] and ys = [ 2.0; 8.0; 3.0; 6.0; 5.0 ] in
  List.iter (Stats.Samples.add a) xs;
  List.iter (Stats.Samples.add b) ys;
  List.iter (Stats.Samples.add all) (xs @ ys);
  (* sorting [a] first must not change what merge sees *)
  ignore (Stats.Samples.quantile a 0.5);
  let m = Stats.Samples.merge a b in
  Alcotest.(check int) "count" 9 (Stats.Samples.count m);
  List.iter
    (fun q ->
      check_float
        (Printf.sprintf "q=%g" q)
        (Stats.Samples.quantile all q)
        (Stats.Samples.quantile m q))
    [ 0.0; 0.25; 0.5; 0.75; 0.95; 1.0 ]

let test_samples_merge_empty () =
  let a = Stats.Samples.create () and b = Stats.Samples.create () in
  Stats.Samples.add b 3.0;
  let m = Stats.Samples.merge a b in
  Alcotest.(check int) "count" 1 (Stats.Samples.count m);
  check_float "median" 3.0 (Stats.Samples.quantile m 0.5)

(* ------------------------------------------------------------------ *)
(* Rng.int uniformity                                                  *)
(* ------------------------------------------------------------------ *)

(* The float-scaling implementation mapped 53 mantissa bits onto the range,
   so for n = 2^60 every result had its low ~7 bits zero: bucketing by the
   low 4 bits put 100% of the mass in bucket 0.  The rejection sampler must
   fill every low-bit bucket evenly. *)
let test_rng_int_large_bound_low_bits () =
  let r = Rng.create 7 in
  let n = 1 lsl 60 in
  let draws = 20_000 in
  let buckets = Array.make 16 0 in
  for _ = 1 to draws do
    let x = Rng.int r n in
    if x < 0 || x >= n then Alcotest.failf "out of range: %d" x;
    buckets.(x land 15) <- buckets.(x land 15) + 1
  done;
  let expect = float_of_int draws /. 16.0 in
  Array.iteri
    (fun i c ->
      let err = Float.abs (float_of_int c -. expect) /. expect in
      if err > 0.15 then
        Alcotest.failf "low-bit bucket %d off by %.0f%% (%d draws)" i
          (100.0 *. err) c)
    buckets

let prop_rng_int_bucket_frequency =
  QCheck.Test.make ~name:"Rng.int per-bucket frequency error bounded" ~count:25
    QCheck.(pair (int_range 16 (1 lsl 55)) (int_range 0 1000))
    (fun (n, seed) ->
      let r = Rng.create seed in
      let k = 8 in
      let draws = 8_000 in
      let buckets = Array.make k 0 in
      for _ = 1 to draws do
        let x = Rng.int r n in
        if x < 0 || x >= n then QCheck.Test.fail_reportf "out of range: %d" x;
        let b = min (k - 1) (int_of_float (float_of_int x /. float_of_int n *. float_of_int k)) in
        buckets.(b) <- buckets.(b) + 1
      done;
      let expect = float_of_int draws /. float_of_int k in
      Array.for_all
        (fun c -> Float.abs (float_of_int c -. expect) /. expect < 0.25)
        buckets)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int always lands in [0, n)" ~count:500
    QCheck.(pair (int_range 1 max_int) (int_range 0 10_000))
    (fun (n, seed) ->
      let r = Rng.create seed in
      let x = Rng.int r n in
      0 <= x && x < n)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_preserves_order () =
  let items = List.init 50 Fun.id in
  let got = Pool.map ~jobs:4 (fun x -> x * x) items in
  Alcotest.(check (list int)) "submission order" (List.map (fun x -> x * x) items) got

let test_pool_single_job () =
  let got = Pool.map ~jobs:1 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "sequential path" [ 2; 3; 4 ] got

let test_pool_empty_batch () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) [])

let test_pool_propagates_exception () =
  Alcotest.check_raises "worker exception reaches caller" (Failure "boom")
    (fun () ->
      ignore
        (Pool.map ~jobs:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 10 Fun.id)))

let test_pool_first_failure_wins () =
  (* both items fail; the lowest-indexed exception must be the one raised *)
  Alcotest.check_raises "lowest index first" (Failure "first") (fun () ->
      ignore
        (Pool.map ~jobs:2
           (function
             | 0 -> failwith "first" | 9 -> failwith "last" | x -> x)
           (List.init 10 Fun.id)))

let test_pool_matches_sequential_map () =
  let items = List.init 37 (fun i -> i * 3) in
  let f x = (x * 7) mod 11 in
  Alcotest.(check (list int)) "same as List.map" (List.map f items)
    (Pool.map ~jobs:8 f items)

let test_pool_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let suites =
  [
    ( "heap",
      [
        case "drains sorted" test_heap_order;
        case "empty ops" test_heap_empty;
        case "interleaved add/pop" test_heap_interleaved;
      ] );
    qsuite "heap-props" [ prop_heap_sorts ];
    ( "engine",
      [
        case "hold advances clock" test_hold_advances_clock;
        case "fifo at same time" test_fifo_same_time;
        case "run ~until" test_run_until;
        case "stop" test_stop;
        case "spawn ~at" test_spawn_at;
        case "exit_process" test_exit_process;
        case "schedule in past rejected" test_schedule_past_rejected;
        case "exception propagates" test_engine_exception_propagates;
        case "event and process counts" test_engine_counts;
        case "negative hold rejected" test_hold_negative_rejected;
        case "profile global counters" test_profile_global_counters;
        case "profile per process" test_profile_per_process;
        case "profile name inherited" test_profile_name_inherited;
      ] );
    ( "condition",
      [
        case "signal then broadcast" test_condition_signal;
        case "signal without waiters" test_condition_signal_empty;
        case "broadcast wake order" test_condition_broadcast_order;
      ] );
    ( "mailbox",
      [
        case "fifo delivery" test_mailbox_fifo;
        case "non-blocking recv" test_mailbox_nonblocking;
        case "two receivers" test_mailbox_two_receivers;
        case "recv_timeout expires" test_mailbox_recv_timeout_expires;
        case "recv_timeout delivers" test_mailbox_recv_timeout_delivers;
        case "stale waiter forwards wake" test_mailbox_stale_waiter_forwards_wake;
        case "wake order fifo" test_mailbox_wake_order_fifo;
      ] );
    ( "facility",
      [
        case "serializes unit capacity" test_facility_serializes;
        case "parallel units" test_facility_parallel_units;
        case "utilization" test_facility_utilization;
        case "queue stats" test_facility_queue_stats;
        case "reset stats" test_facility_reset_stats;
        case "high-water and busy time" test_facility_high_water_and_busy;
        case "busy time mid-service" test_facility_busy_time_accrues_mid_service;
      ] );
    qsuite "facility-props" [ prop_facility_fcfs ];
    ( "ivar",
      [
        case "fill then read" test_ivar_fill_then_read;
        case "blocks until filled" test_ivar_blocks_until_filled;
        case "multiple readers" test_ivar_multiple_readers;
        case "wake order" test_ivar_wake_order;
        case "double fill" test_ivar_double_fill;
      ] );
    ( "rng",
      [
        case "deterministic" test_rng_deterministic;
        case "split independence" test_rng_split_independent;
        case "ranges" test_rng_ranges;
        case "exponential mean" test_rng_exponential_mean;
        case "bernoulli rate" test_rng_bernoulli_rate;
        case "zero-mean exponential" test_rng_zero_mean_exponential;
        case "large-bound low bits uniform" test_rng_int_large_bound_low_bits;
      ] );
    qsuite "rng-props" [ prop_rng_int_bucket_frequency; prop_rng_int_in_range ];
    ( "pool",
      [
        case "preserves submission order" test_pool_preserves_order;
        case "single job" test_pool_single_job;
        case "empty batch" test_pool_empty_batch;
        case "propagates exception" test_pool_propagates_exception;
        case "first failure wins" test_pool_first_failure_wins;
        case "matches sequential map" test_pool_matches_sequential_map;
        case "default jobs positive" test_pool_default_jobs_positive;
      ] );
    ( "stats",
      [
        case "basic moments" test_stats_basic;
        case "empty" test_stats_empty;
        case "merge" test_stats_merge;
        case "counter" test_counter;
      ] );
    qsuite "stats-props" [ prop_stats_mean_matches_naive ];
    ( "samples",
      [
        case "quantiles" test_samples_quantiles;
        case "empty and reset" test_samples_empty_and_reset;
        case "capacity cap" test_samples_capacity;
        case "add after quantile" test_samples_add_after_quantile;
        case "merge pools exactly" test_samples_merge_exact_quantiles;
        case "merge with empty" test_samples_merge_empty;
      ] );
    qsuite "samples-props" [ prop_samples_median_between_min_max ];
  ]

let () = Alcotest.run "sim" suites
