(* Tests for the core client/server simulator and the five consistency
   protocols (lib/core).

   Two levels:
   - server protocol tests drive Server.deliver directly with scripted
     messages and assert on replies, the lock table, and versions;
   - integration tests run complete simulations per algorithm and check
     metrics-level invariants. *)

let case name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* Server harness                                                      *)
(* ------------------------------------------------------------------ *)

type harness = {
  eng : Sim.Engine.t;
  server : Core.Server.t;
  inboxes : (int * Core.Proto.s2c) Sim.Mailbox.t array;
  caches : Storage.Lru_pool.t array;
}

let test_cfg ?(n_clients = 3) ?(mpl = 50) ?(buffer_size = 50) () =
  let base = Core.Sys_params.table5 ~n_clients () in
  {
    base with
    Core.Sys_params.mpl;
    buffer_size;
    net = { base.Core.Sys_params.net with Net.Network.net_delay = 0.0 };
    disk = { Storage.Disk.seek_low = 0.001; seek_high = 0.001; transfer_time = 0.001 };
  }

let mk_harness ?(algo = Core.Proto.Two_phase Core.Proto.Inter) ?cfg () =
  let cfg = match cfg with Some c -> c | None -> test_cfg () in
  let eng = Sim.Engine.create () in
  let rng = Sim.Rng.create 5 in
  let db =
    Db.Database.create (Db.Db_params.uniform ~n_classes:4 ~pages_per_class:25 ())
  in
  let metrics = Core.Metrics.create eng in
  let net = Net.Network.create eng ~rng:(Sim.Rng.split rng "net") cfg.Core.Sys_params.net in
  let server =
    Core.Server.create eng ~cfg ~db ~algo ~net ~rng:(Sim.Rng.split rng "srv")
      ~metrics
  in
  let n = cfg.Core.Sys_params.n_clients in
  let inboxes = Array.init n (fun _ -> Sim.Mailbox.create eng) in
  let caches =
    Array.init n (fun _ -> Storage.Lru_pool.create ~capacity:cfg.Core.Sys_params.cache_size)
  in
  let links =
    Array.init n (fun i ->
        {
          Core.Server.port =
            {
              Core.Proto.cpu =
                Sim.Facility.create eng ~name:(Printf.sprintf "c%d" i) ();
              mips = 1.0;
            };
          inbox = inboxes.(i);
          cache_view = caches.(i);
        })
  in
  Core.Server.register_clients server links;
  { eng; server; inboxes; caches }

let run h = ignore (Sim.Engine.run h.eng ())

(* send a message and run the simulation until quiescent *)
let post h msg =
  Core.Server.deliver h.server ~ctx:(-1) msg;
  run h

let drain_inbox h i =
  let rec go acc =
    match Sim.Mailbox.recv_opt h.inboxes.(i) with
    | Some (_, m) -> go (m :: acc)
    | None -> List.rev acc
  in
  go []

let fp ?v page = { Core.Proto.page; cached_version = v }
let xid ~client ~seq = Core.Proto.make_xid ~client ~seq

let fetch ?(mode = Core.Proto.Read) ?(no_wait = false) ~client ~seq pages =
  Core.Proto.Fetch
    { client; xid = xid ~client ~seq; req = 0; mode; pages; no_wait }

let commit ?(read_set = []) ?(updates = []) ?(release = []) ~client ~seq () =
  Core.Proto.Commit
    {
      client;
      xid = xid ~client ~seq;
      req = 0;
      read_set;
      update_pages = updates;
      release_pages = release;
    }

(* ------------------------------------------------------------------ *)
(* Two-phase locking server protocol                                   *)
(* ------------------------------------------------------------------ *)

let test_fetch_miss_returns_data () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp 7 ]);
  (match drain_inbox h 0 with
  | [ Core.Proto.Fetch_reply { data = [ (7, v) ]; _ } ] ->
      Alcotest.(check int) "initial version" 0 v
  | ms -> Alcotest.failf "unexpected replies (%d)" (List.length ms));
  Alcotest.(check (option string)) "S lock held" (Some "S")
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:7 0))

let test_fetch_valid_version_no_data () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp ~v:0 7 ]);
  match drain_inbox h 0 with
  | [ Core.Proto.Fetch_reply { data = []; _ } ] -> ()
  | _ -> Alcotest.fail "expected empty data for a current cached copy"

let test_fetch_stale_version_gets_data () =
  let h = mk_harness () in
  (* client 1 updates page 7 first *)
  post h (fetch ~client:1 ~seq:1 [ fp 7 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp ~v:0 7 ]);
  post h (commit ~client:1 ~seq:1 ~updates:[ 7 ] ());
  ignore (drain_inbox h 1);
  (* client 0 validates an old copy *)
  post h (fetch ~client:0 ~seq:1 [ fp ~v:0 7 ]);
  match drain_inbox h 0 with
  | [ Core.Proto.Fetch_reply { data = [ (7, 1) ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected fresh data at version 1"

let test_commit_bumps_versions_and_releases () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp 3 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 3 ]);
  post h (commit ~client:0 ~seq:1 ~updates:[ 3 ] ());
  let msgs = drain_inbox h 0 in
  (match List.rev msgs with
  | Core.Proto.Commit_reply { ok = true; new_versions = [ (3, 1) ]; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected ok commit with version 1");
  Alcotest.(check int) "all locks released" 0
    (Cc.Lock_table.locks_held (Core.Server.locks h.server));
  Alcotest.(check int) "version bumped" 1
    (Cc.Version_table.current (Core.Server.versions h.server) 3)

let test_write_blocks_reader_until_commit () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp 5 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 5 ]);
  ignore (drain_inbox h 0);
  (* reader blocks behind the X lock *)
  post h (fetch ~client:1 ~seq:1 [ fp 5 ]);
  Alcotest.(check (list reject)) "no reply while blocked" [] (drain_inbox h 1);
  post h (commit ~client:0 ~seq:1 ~updates:[ 5 ] ());
  ignore (drain_inbox h 0);
  match drain_inbox h 1 with
  | [ Core.Proto.Fetch_reply { data = [ (5, 1) ]; _ } ] -> ()
  | _ -> Alcotest.fail "reader should get fresh page after writer commits"

let test_deadlock_aborts_youngest () =
  let h = mk_harness () in
  (* t0 X-locks page 1; t1 X-locks page 2; then each requests the other *)
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp 1 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 2 ]);
  ignore (drain_inbox h 0);
  ignore (drain_inbox h 1);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp 2 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 1 ]);
  (* client 1's transaction is younger (it blocked second): it dies *)
  (match drain_inbox h 1 with
  | [ Core.Proto.Aborted _ ] -> ()
  | ms -> Alcotest.failf "expected abort for t1, got %d msgs" (List.length ms));
  match drain_inbox h 0 with
  | [ Core.Proto.Fetch_reply _ ] -> ()
  | _ -> Alcotest.fail "t0 should get page 2 after t1 dies"

let test_tombstoned_commit_gets_aborted_reply () =
  let h = mk_harness () in
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp 1 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 2 ]);
  ignore (drain_inbox h 0);
  ignore (drain_inbox h 1);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp 2 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 1 ]);
  ignore (drain_inbox h 0);
  ignore (drain_inbox h 1);
  (* the dead transaction tries to commit anyway *)
  post h (commit ~client:1 ~seq:1 ());
  match drain_inbox h 1 with
  | [ Core.Proto.Aborted _ ] -> ()
  | _ -> Alcotest.fail "tombstoned commit must answer Aborted"

let test_mpl_admission_queues () =
  let h = mk_harness ~cfg:(test_cfg ~mpl:1 ()) () in
  post h (fetch ~client:0 ~seq:1 [ fp 1 ]);
  ignore (drain_inbox h 0);
  Alcotest.(check int) "one active" 1 (Core.Server.active_count h.server);
  post h (fetch ~client:1 ~seq:1 [ fp 2 ]);
  (* client 1 waits in the ready queue, not for a lock *)
  Alcotest.(check (list reject)) "no reply while queued" [] (drain_inbox h 1);
  Alcotest.(check int) "ready queue length" 1
    (Core.Server.ready_queue_length h.server);
  post h (commit ~client:0 ~seq:1 ());
  ignore (drain_inbox h 0);
  match drain_inbox h 1 with
  | [ Core.Proto.Fetch_reply _ ] -> ()
  | _ -> Alcotest.fail "queued transaction should be admitted after commit"

let test_read_only_commit_is_ok () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp 1; fp 2 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ());
  match drain_inbox h 0 with
  | [ Core.Proto.Commit_reply { ok = true; new_versions = []; _ } ] -> ()
  | _ -> Alcotest.fail "read-only commit should succeed with no versions"

(* ------------------------------------------------------------------ *)
(* Certification server protocol                                       *)
(* ------------------------------------------------------------------ *)

let cert_read ~client ~seq pages =
  Core.Proto.Cert_read { client; xid = xid ~client ~seq; req = 0; pages }

let test_cert_read_never_blocks () =
  let h = mk_harness ~algo:(Core.Proto.Certification Core.Proto.Inter) () in
  post h (cert_read ~client:0 ~seq:1 [ fp 9 ]);
  (match drain_inbox h 0 with
  | [ Core.Proto.Cert_reply { data = [ (9, 0) ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected data");
  Alcotest.(check int) "no locks taken" 0
    (Cc.Lock_table.locks_held (Core.Server.locks h.server))

let test_cert_commit_validates () =
  let h = mk_harness ~algo:(Core.Proto.Certification Core.Proto.Inter) () in
  post h (cert_read ~client:0 ~seq:1 [ fp 9 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ~read_set:[ (9, 0) ] ~updates:[ 9 ] ());
  match drain_inbox h 0 with
  | [ Core.Proto.Commit_reply { ok = true; new_versions = [ (9, 1) ]; _ } ] -> ()
  | _ -> Alcotest.fail "certification should pass on current versions"

let test_cert_commit_fails_on_stale_read () =
  let h = mk_harness ~algo:(Core.Proto.Certification Core.Proto.Inter) () in
  post h (cert_read ~client:0 ~seq:1 [ fp 9 ]);
  post h (cert_read ~client:1 ~seq:1 [ fp 9 ]);
  ignore (drain_inbox h 0);
  ignore (drain_inbox h 1);
  (* client 1 commits an update to 9 first *)
  post h (commit ~client:1 ~seq:1 ~read_set:[ (9, 0) ] ~updates:[ 9 ] ());
  ignore (drain_inbox h 1);
  (* client 0's read of version 0 is now stale *)
  post h (commit ~client:0 ~seq:1 ~read_set:[ (9, 0) ] ~updates:[] ());
  match drain_inbox h 0 with
  | [ Core.Proto.Commit_reply { ok = false; stale_pages = [ 9 ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected certification failure listing page 9"

let test_cert_write_write_one_wins () =
  let h = mk_harness ~algo:(Core.Proto.Certification Core.Proto.Inter) () in
  post h (cert_read ~client:0 ~seq:1 [ fp 4 ]);
  post h (cert_read ~client:1 ~seq:1 [ fp 4 ]);
  ignore (drain_inbox h 0);
  ignore (drain_inbox h 1);
  post h (commit ~client:0 ~seq:1 ~read_set:[ (4, 0) ] ~updates:[ 4 ] ());
  post h (commit ~client:1 ~seq:1 ~read_set:[ (4, 0) ] ~updates:[ 4 ] ());
  let ok0 =
    match drain_inbox h 0 with
    | [ Core.Proto.Commit_reply { ok; _ } ] -> ok
    | _ -> Alcotest.fail "no reply 0"
  in
  let ok1 =
    match drain_inbox h 1 with
    | [ Core.Proto.Commit_reply { ok; _ } ] -> ok
    | _ -> Alcotest.fail "no reply 1"
  in
  Alcotest.(check bool) "exactly one certifies" true (ok0 <> ok1)

(* ------------------------------------------------------------------ *)
(* Callback locking server protocol                                    *)
(* ------------------------------------------------------------------ *)

let test_callback_request_sent_to_holder () =
  let h = mk_harness ~algo:Core.Proto.Callback () in
  (* client 0 takes a retained read lock and its transaction ends *)
  post h (fetch ~client:0 ~seq:1 [ fp 6 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ());
  ignore (drain_inbox h 0);
  Alcotest.(check (option string)) "retained S survives commit" (Some "S")
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:6 0));
  (* client 1 wants to write page 6 *)
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 6 ]);
  (match drain_inbox h 0 with
  | [ Core.Proto.Callback_request { page = 6 } ] -> ()
  | _ -> Alcotest.fail "holder should receive a callback request");
  Alcotest.(check (list reject)) "writer still waits" [] (drain_inbox h 1);
  (* client 0 releases; the writer is granted *)
  post h (Core.Proto.Callback_reply { client = 0; page = 6 });
  match drain_inbox h 1 with
  | [ Core.Proto.Fetch_reply _ ] -> ()
  | _ -> Alcotest.fail "writer should proceed after callback reply"

let test_callback_commit_downgrades_x_to_retained_s () =
  let h = mk_harness ~algo:Core.Proto.Callback () in
  post h (fetch ~client:0 ~seq:1 [ fp 6 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 6 ]);
  post h (commit ~client:0 ~seq:1 ~updates:[ 6 ] ());
  ignore (drain_inbox h 0);
  Alcotest.(check (option string)) "X downgraded to retained S" (Some "S")
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:6 0))

let test_callback_commit_releases_requested_pages () =
  let h = mk_harness ~algo:Core.Proto.Callback () in
  post h (fetch ~client:0 ~seq:1 [ fp 6 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ~release:[ 6 ] ());
  ignore (drain_inbox h 0);
  Alcotest.(check (option string)) "released entirely" None
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:6 0))

let test_callback_retain_writes_keeps_x () =
  let cfg = { (test_cfg ()) with Core.Sys_params.callback_retain_writes = true } in
  let h = mk_harness ~algo:Core.Proto.Callback ~cfg () in
  post h (fetch ~client:0 ~seq:1 [ fp 6 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 6 ]);
  post h (commit ~client:0 ~seq:1 ~updates:[ 6 ] ());
  ignore (drain_inbox h 0);
  Alcotest.(check (option string)) "X retained across commit" (Some "X")
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:6 0));
  (* a reader elsewhere triggers a callback and gets the page on release *)
  post h (fetch ~client:1 ~seq:1 [ fp 6 ]);
  (match drain_inbox h 0 with
  | [ Core.Proto.Callback_request { page = 6 } ] -> ()
  | _ -> Alcotest.fail "retained X must be called back for a reader");
  post h (Core.Proto.Callback_reply { client = 0; page = 6 });
  match drain_inbox h 1 with
  | [ Core.Proto.Fetch_reply { data = [ (6, 1) ]; _ } ] -> ()
  | _ -> Alcotest.fail "reader proceeds after release"

let test_release_retained_message () =
  let h = mk_harness ~algo:Core.Proto.Callback () in
  post h (fetch ~client:0 ~seq:1 [ fp 6 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ());
  ignore (drain_inbox h 0);
  post h (Core.Proto.Release_retained { client = 0; pages = [ 6 ] });
  Alcotest.(check int) "lock dropped" 0
    (Cc.Lock_table.locks_held (Core.Server.locks h.server))

let test_callback_abort_keeps_old_retained_locks () =
  let h = mk_harness ~algo:Core.Proto.Callback () in
  (* xact 1 of client 0 retains S on 6, commits *)
  post h (fetch ~client:0 ~seq:1 [ fp 6 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ());
  ignore (drain_inbox h 0);
  (* xact 2 of client 0 acquires S on 7, then deadlocks with client 1 and
     is chosen as victim (younger) *)
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 8 ]);
  ignore (drain_inbox h 1);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:2 [ fp 7 ]);
  ignore (drain_inbox h 0);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp 7 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:2 [ fp 8 ]);
  (* inbox 0 also holds the callback request for page 7; look for the abort *)
  let aborted =
    List.exists
      (function Core.Proto.Aborted _ -> true | _ -> false)
      (drain_inbox h 0)
  in
  if not aborted then Alcotest.fail "client 0's second xact should be the victim";
  Alcotest.(check (option string)) "old retained lock survives abort"
    (Some "S")
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:6 0));
  Alcotest.(check (option string)) "this xact's lock released" None
    (Option.map Cc.Lock_table.mode_to_string
       (Cc.Lock_table.held (Core.Server.locks h.server) ~page:7 0))

(* ------------------------------------------------------------------ *)
(* No-wait server protocol                                             *)
(* ------------------------------------------------------------------ *)

let test_no_wait_silent_on_success () =
  let h = mk_harness ~algo:(Core.Proto.No_wait { notify = None }) () in
  (* fetch the page synchronously first so a cached version exists *)
  post h (fetch ~client:0 ~seq:1 [ fp 2 ]);
  ignore (drain_inbox h 0);
  post h (commit ~client:0 ~seq:1 ());
  ignore (drain_inbox h 0);
  (* next transaction validates optimistically: silence on success *)
  post h (fetch ~no_wait:true ~client:0 ~seq:2 [ fp ~v:0 2 ]);
  Alcotest.(check (list reject)) "no reply on valid no-wait" [] (drain_inbox h 0)

let test_no_wait_stale_aborts_with_page () =
  let h = mk_harness ~algo:(Core.Proto.No_wait { notify = None }) () in
  (* client 1 commits an update to page 2 *)
  post h (fetch ~client:1 ~seq:1 [ fp 2 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:1 ~seq:1 [ fp ~v:0 2 ]);
  post h (commit ~client:1 ~seq:1 ~updates:[ 2 ] ());
  ignore (drain_inbox h 1);
  (* client 0 optimistically uses its stale cached copy *)
  post h (fetch ~no_wait:true ~client:0 ~seq:1 [ fp ~v:0 2 ]);
  match drain_inbox h 0 with
  | [ Core.Proto.Aborted { stale_pages = [ 2 ]; _ } ] -> ()
  | _ -> Alcotest.fail "stale no-wait read must abort naming the page"

let test_notify_pushes_to_caching_clients () =
  let h = mk_harness ~algo:(Core.Proto.No_wait { notify = Some Core.Proto.Push }) () in
  (* clients 1 and 2 cache page 3 (directory view); client 2 does not *)
  ignore (Storage.Lru_pool.insert h.caches.(1) 3 ~dirty:false);
  post h (fetch ~client:0 ~seq:1 [ fp 3 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 3 ]);
  post h (commit ~client:0 ~seq:1 ~updates:[ 3 ] ());
  ignore (drain_inbox h 0);
  (match drain_inbox h 1 with
  | [ Core.Proto.Update_push { page = 3; version = 1 } ] -> ()
  | _ -> Alcotest.fail "caching client should receive the push");
  Alcotest.(check (list reject)) "non-caching client gets nothing" []
    (drain_inbox h 2)

let test_notify_invalidate_mode () =
  let h =
    mk_harness ~algo:(Core.Proto.No_wait { notify = Some Core.Proto.Invalidate }) ()
  in
  ignore (Storage.Lru_pool.insert h.caches.(1) 3 ~dirty:false);
  post h (fetch ~client:0 ~seq:1 [ fp 3 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 3 ]);
  post h (commit ~client:0 ~seq:1 ~updates:[ 3 ] ());
  ignore (drain_inbox h 0);
  match drain_inbox h 1 with
  | [ Core.Proto.Invalidate_page { page = 3 } ] -> ()
  | _ -> Alcotest.fail "expected invalidation"

(* ------------------------------------------------------------------ *)
(* Buffer-manager behaviour through the server                         *)
(* ------------------------------------------------------------------ *)

let test_buffer_caches_hot_page () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp 11 ]);
  ignore (drain_inbox h 0);
  let reads_before = Array.fold_left (fun a d -> a + Storage.Disk.accesses d) 0
      (Core.Server.data_disks h.server) in
  post h (commit ~client:0 ~seq:1 ());
  ignore (drain_inbox h 0);
  (* second client reads the same page: buffer hit, no disk access *)
  post h (fetch ~client:1 ~seq:1 [ fp 11 ]);
  ignore (drain_inbox h 1);
  let reads_after = Array.fold_left (fun a d -> a + Storage.Disk.accesses d) 0
      (Core.Server.data_disks h.server) in
  Alcotest.(check int) "no extra disk read" reads_before reads_after;
  Alcotest.(check bool) "page resident" true
    (Storage.Lru_pool.mem (Core.Server.buffer h.server) 11)

let test_commit_forces_log () =
  let h = mk_harness () in
  post h (fetch ~client:0 ~seq:1 [ fp 11 ]);
  post h (fetch ~mode:Core.Proto.Write ~client:0 ~seq:1 [ fp ~v:0 11 ]);
  post h (commit ~client:0 ~seq:1 ~updates:[ 11 ] ());
  ignore (drain_inbox h 0);
  match Core.Server.log_disk h.server with
  | Some d -> Alcotest.(check bool) "log write happened" true (Storage.Disk.accesses d > 0)
  | None -> Alcotest.fail "table5 config has a log disk"

(* ------------------------------------------------------------------ *)
(* Integration: full simulations                                       *)
(* ------------------------------------------------------------------ *)

let quick_spec ?(n_clients = 8) ?(pw = 0.2) ?(loc = 0.5) ?(seed = 3) algo =
  let cfg = Core.Sys_params.table5 ~n_clients () in
  let xp = Db.Xact_params.short_batch ~prob_write:pw ~inter_xact_loc:loc () in
  Core.Simulator.default_spec ~seed ~warmup_commits:50 ~measured_commits:300
    ~cfg ~xact_params:xp algo

let all_algorithms =
  [
    Core.Proto.Two_phase Core.Proto.Inter;
    Core.Proto.Two_phase Core.Proto.Intra;
    Core.Proto.Certification Core.Proto.Inter;
    Core.Proto.Certification Core.Proto.Intra;
    Core.Proto.Callback;
    Core.Proto.No_wait { notify = None };
    Core.Proto.No_wait { notify = Some Core.Proto.Push };
    Core.Proto.No_wait { notify = Some Core.Proto.Invalidate };
  ]

let test_every_algorithm_completes () =
  List.iter
    (fun algo ->
      let r = Core.Simulator.run (quick_spec algo) in
      let name = Core.Proto.algorithm_name algo in
      if r.Core.Simulator.commits < 300 then
        Alcotest.failf "%s: only %d commits" name r.Core.Simulator.commits;
      if r.Core.Simulator.mean_response <= 0.0 then
        Alcotest.failf "%s: non-positive response" name;
      if r.Core.Simulator.throughput <= 0.0 then
        Alcotest.failf "%s: non-positive throughput" name)
    all_algorithms

let test_determinism () =
  let r1 = Core.Simulator.run (quick_spec (Core.Proto.Two_phase Core.Proto.Inter)) in
  let r2 = Core.Simulator.run (quick_spec (Core.Proto.Two_phase Core.Proto.Inter)) in
  Alcotest.(check (float 0.0)) "same response" r1.Core.Simulator.mean_response
    r2.Core.Simulator.mean_response;
  Alcotest.(check int) "same events" r1.Core.Simulator.events r2.Core.Simulator.events

let test_seed_changes_results () =
  let r1 = Core.Simulator.run (quick_spec ~seed:3 (Core.Proto.Two_phase Core.Proto.Inter)) in
  let r2 = Core.Simulator.run (quick_spec ~seed:4 (Core.Proto.Two_phase Core.Proto.Inter)) in
  Alcotest.(check bool) "different event counts" true
    (r1.Core.Simulator.events <> r2.Core.Simulator.events)

let test_cert_has_no_deadlocks () =
  let r =
    Core.Simulator.run
      (quick_spec ~pw:0.5 (Core.Proto.Certification Core.Proto.Inter))
  in
  Alcotest.(check int) "no deadlock aborts" 0 r.Core.Simulator.aborts_deadlock;
  Alcotest.(check int) "no stale aborts" 0 r.Core.Simulator.aborts_stale

let test_locking_has_no_cert_aborts () =
  let r = Core.Simulator.run (quick_spec ~pw:0.5 (Core.Proto.Two_phase Core.Proto.Inter)) in
  Alcotest.(check int) "no cert aborts" 0 r.Core.Simulator.aborts_cert;
  Alcotest.(check int) "no stale aborts" 0 r.Core.Simulator.aborts_stale

let test_read_only_no_aborts () =
  List.iter
    (fun algo ->
      let r = Core.Simulator.run (quick_spec ~pw:0.0 algo) in
      Alcotest.(check int)
        (Core.Proto.algorithm_name algo ^ " read-only aborts")
        0 r.Core.Simulator.aborts)
    all_algorithms

let test_callback_hit_ratio_dominates () =
  let cb = Core.Simulator.run (quick_spec ~loc:0.75 ~pw:0.0 Core.Proto.Callback) in
  let tp =
    Core.Simulator.run (quick_spec ~loc:0.75 ~pw:0.0 (Core.Proto.Two_phase Core.Proto.Inter))
  in
  if cb.Core.Simulator.hit_ratio <= tp.Core.Simulator.hit_ratio then
    Alcotest.failf "callback hit %.2f should beat 2PL hit %.2f"
      cb.Core.Simulator.hit_ratio tp.Core.Simulator.hit_ratio;
  if cb.Core.Simulator.hit_ratio < 0.3 then
    Alcotest.failf "callback hit ratio too low: %.2f" cb.Core.Simulator.hit_ratio

let test_intra_never_hits_across_xacts () =
  let r =
    Core.Simulator.run (quick_spec ~loc:0.75 (Core.Proto.Two_phase Core.Proto.Intra))
  in
  (* intra caching still hits within a transaction (re-read objects), but
     the ratio must be small *)
  if r.Core.Simulator.hit_ratio > 0.35 then
    Alcotest.failf "intra hit ratio suspiciously high: %.2f" r.Core.Simulator.hit_ratio

let test_inter_beats_intra_response () =
  let inter = Core.Simulator.run (quick_spec ~loc:0.75 ~pw:0.0 (Core.Proto.Two_phase Core.Proto.Inter)) in
  let intra = Core.Simulator.run (quick_spec ~loc:0.75 ~pw:0.0 (Core.Proto.Two_phase Core.Proto.Intra)) in
  if inter.Core.Simulator.mean_response >= intra.Core.Simulator.mean_response then
    Alcotest.failf "inter (%.3f) should beat intra (%.3f)"
      inter.Core.Simulator.mean_response intra.Core.Simulator.mean_response

let test_callback_zero_message_commits () =
  (* at very high locality and no writes, callback sends far fewer
     messages than 2PL *)
  let cb = Core.Simulator.run (quick_spec ~loc:0.75 ~pw:0.0 Core.Proto.Callback) in
  let tp = Core.Simulator.run (quick_spec ~loc:0.75 ~pw:0.0 (Core.Proto.Two_phase Core.Proto.Inter)) in
  if cb.Core.Simulator.msgs_per_commit >= tp.Core.Simulator.msgs_per_commit then
    Alcotest.failf "callback msgs/commit %.1f should be below 2PL %.1f"
      cb.Core.Simulator.msgs_per_commit tp.Core.Simulator.msgs_per_commit

let test_notify_sends_pushes () =
  let r = Core.Simulator.run (quick_spec ~pw:0.5 ~loc:0.5 (Core.Proto.No_wait { notify = Some Core.Proto.Push })) in
  Alcotest.(check bool) "pushes happened" true (r.Core.Simulator.pushes_sent > 0)

let test_plain_no_wait_never_pushes () =
  let r = Core.Simulator.run (quick_spec ~pw:0.5 ~loc:0.5 (Core.Proto.No_wait { notify = None })) in
  Alcotest.(check int) "no pushes" 0 r.Core.Simulator.pushes_sent

let test_callback_sends_callbacks () =
  let r = Core.Simulator.run (quick_spec ~pw:0.5 ~loc:0.5 Core.Proto.Callback) in
  Alcotest.(check bool) "callbacks happened" true (r.Core.Simulator.callbacks_sent > 0)

let test_interactive_response_dominated_by_think_time () =
  let cfg = Core.Sys_params.table5 ~n_clients:4 () in
  let xp = Db.Xact_params.interactive ~prob_write:0.0 ~inter_xact_loc:0.25 () in
  let spec =
    Core.Simulator.default_spec ~seed:3 ~warmup_commits:20 ~measured_commits:100
      ~cfg ~xact_params:xp (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let r = Core.Simulator.run spec in
  (* 8 objects on average, 7 s of think time per object: ~56 s *)
  let rt = r.Core.Simulator.mean_response in
  if rt < 40.0 || rt > 75.0 then
    Alcotest.failf "interactive response %.1f outside [40, 75]" rt

let test_utilizations_bounded () =
  List.iter
    (fun algo ->
      let r = Core.Simulator.run (quick_spec ~n_clients:20 ~pw:0.3 algo) in
      let check name v =
        if v < 0.0 || v > 1.000001 then
          Alcotest.failf "%s %s utilization out of range: %f"
            (Core.Proto.algorithm_name algo) name v
      in
      check "server cpu" r.Core.Simulator.server_cpu_util;
      check "client cpu" r.Core.Simulator.client_cpu_util;
      check "disk" r.Core.Simulator.disk_util;
      check "net" r.Core.Simulator.net_util;
      check "log" r.Core.Simulator.log_disk_util)
    [ Core.Proto.Two_phase Core.Proto.Inter; Core.Proto.Callback ]

let test_replication_averages () =
  let spec = quick_spec (Core.Proto.Two_phase Core.Proto.Inter) in
  let r = Core.Simulator.run_replicated spec ~reps:3 in
  Alcotest.(check int) "commits summed over reps" (3 * 300) r.Core.Simulator.commits

(* Regression for the replication-statistics bug: stddev and quantiles
   must come from the pooled per-commit observations, not from averaging
   per-rep stddevs/quantiles (which is not a stddev or quantile of
   anything), and ratios must be ratios of pooled counts. *)
let test_replication_pools_statistics () =
  let spec = quick_spec (Core.Proto.Two_phase Core.Proto.Inter) in
  let pooled = Core.Simulator.run_replicated spec ~reps:3 in
  let reps =
    List.map
      (fun k ->
        Core.Simulator.run
          { spec with Core.Simulator.seed = spec.Core.Simulator.seed + k })
      [ 0; 1; 2 ]
  in
  let isum f = List.fold_left (fun a r -> a + f r) 0 reps in
  Alcotest.(check int) "commits pooled"
    (isum (fun r -> r.Core.Simulator.commits))
    pooled.Core.Simulator.commits;
  Alcotest.(check int) "messages pooled"
    (isum (fun r -> r.Core.Simulator.messages))
    pooled.Core.Simulator.messages;
  Alcotest.(check (float 1e-9)) "msgs_per_commit is ratio of pooled counts"
    (float_of_int pooled.Core.Simulator.messages
    /. float_of_int pooled.Core.Simulator.commits)
    pooled.Core.Simulator.msgs_per_commit;
  (* mean: commit-weighted mean of the per-rep means (one response
     observation per measured commit) *)
  let n_tot = float_of_int pooled.Core.Simulator.commits in
  let weighted_mean =
    List.fold_left
      (fun a (r : Core.Simulator.result) ->
        a +. (float_of_int r.Core.Simulator.commits *. r.Core.Simulator.mean_response))
      0.0 reps
    /. n_tot
  in
  Alcotest.(check (float 1e-6)) "pooled mean is commit-weighted mean"
    weighted_mean pooled.Core.Simulator.mean_response;
  (* stddev: merge the per-rep (n, mean, m2) moments exactly as a single
     pass over all observations would, then compare *)
  let n, _, m2 =
    List.fold_left
      (fun (na, ma, m2a) (r : Core.Simulator.result) ->
        let nb = float_of_int r.Core.Simulator.commits in
        let mb = r.Core.Simulator.mean_response in
        let m2b =
          r.Core.Simulator.response_stddev ** 2.0 *. (nb -. 1.0)
        in
        if na = 0.0 then (nb, mb, m2b)
        else
          let n = na +. nb in
          let d = mb -. ma in
          (n, ma +. (d *. nb /. n), m2a +. m2b +. (d *. d *. na *. nb /. n)))
      (0.0, 0.0, 0.0) reps
  in
  let expected_stddev = sqrt (m2 /. (n -. 1.0)) in
  Alcotest.(check (float 1e-6)) "pooled stddev from merged moments"
    expected_stddev pooled.Core.Simulator.response_stddev;
  (* and pooling is NOT the buggy average of per-rep stddevs *)
  let avg_stddev =
    List.fold_left
      (fun a (r : Core.Simulator.result) -> a +. r.Core.Simulator.response_stddev)
      0.0 reps
    /. 3.0
  in
  Alcotest.(check bool) "differs from averaged stddevs" true
    (Float.abs (avg_stddev -. pooled.Core.Simulator.response_stddev) > 1e-12);
  (* quantiles of the pooled samples live near the per-rep quantiles *)
  let fmin f = List.fold_left (fun a r -> Float.min a (f r)) infinity reps in
  let fmax f = List.fold_left (fun a r -> Float.max a (f r)) neg_infinity reps in
  let in_band name v lo hi =
    if v < (0.9 *. lo) -. 1e-9 || v > (1.1 *. hi) +. 1e-9 then
      Alcotest.failf "%s %.6f outside pooled band [%.6f, %.6f]" name v lo hi
  in
  in_band "p50" pooled.Core.Simulator.response_p50
    (fmin (fun r -> r.Core.Simulator.response_p50))
    (fmax (fun r -> r.Core.Simulator.response_p50));
  in_band "p95" pooled.Core.Simulator.response_p95
    (fmin (fun r -> r.Core.Simulator.response_p95))
    (fmax (fun r -> r.Core.Simulator.response_p95));
  Alcotest.(check bool) "p50 <= p95" true
    (pooled.Core.Simulator.response_p50 <= pooled.Core.Simulator.response_p95)

let test_replication_jobs_invariant () =
  let spec = quick_spec (Core.Proto.Two_phase Core.Proto.Inter) in
  let seq = Core.Simulator.run_replicated ~jobs:1 spec ~reps:3 in
  let par = Core.Simulator.run_replicated ~jobs:3 spec ~reps:3 in
  Alcotest.(check bool) "jobs=1 and jobs=3 results identical" true (seq = par)

let test_hot_spot_buffer_sharing () =
  (* a tiny database makes every page hot: buffer hits should keep disk
     reads well below total page requests *)
  let spec =
    {
      (quick_spec ~n_clients:10 ~pw:0.0 ~loc:0.0 (Core.Proto.Two_phase Core.Proto.Inter)) with
      Core.Simulator.db_params = Db.Db_params.uniform ~n_classes:2 ~pages_per_class:50 ();
    }
  in
  let r = Core.Simulator.run spec in
  (* the whole database (100 pages) fits in the 400-page buffer: after
     warmup there should be almost no disk traffic *)
  if r.Core.Simulator.disk_util > 0.05 then
    Alcotest.failf "expected cold-only disk traffic, util=%.3f" r.Core.Simulator.disk_util

let prop_random_configs_complete =
  QCheck.Test.make ~name:"random small configs run to completion" ~count:12
    QCheck.(
      quad (int_range 2 12) (float_range 0.0 0.6) (float_range 0.0 0.8)
        (int_range 0 3))
    (fun (n_clients, pw, loc, algo_idx) ->
      let algo = List.nth Core.Proto.section5_algorithms algo_idx in
      let cfg = Core.Sys_params.table5 ~n_clients () in
      let xp = Db.Xact_params.short_batch ~prob_write:pw ~inter_xact_loc:loc () in
      let spec =
        Core.Simulator.default_spec ~seed:9 ~warmup_commits:20
          ~measured_commits:120 ~cfg ~xact_params:xp algo
      in
      let r = Core.Simulator.run spec in
      r.Core.Simulator.commits >= 120)


(* ------------------------------------------------------------------ *)
(* Serializability audit                                               *)
(* ------------------------------------------------------------------ *)

let audited_run ?(n_clients = 10) ?(pw = 0.4) ?(loc = 0.5) algo =
  let audit = Cc.History.create () in
  let spec = quick_spec ~n_clients ~pw ~loc algo in
  let r = Core.Simulator.run ~audit spec in
  (r, audit)

let check_serializable algo =
  let r, audit = audited_run algo in
  Alcotest.(check bool)
    (Core.Proto.algorithm_name algo ^ " audit collected commits")
    true
    (Cc.History.size audit >= r.Core.Simulator.commits);
  match Cc.History.check audit with
  | Cc.History.Serializable -> ()
  | Cc.History.Cycle c ->
      Alcotest.failf "%s produced a non-serializable history (cycle [%s])"
        (Core.Proto.algorithm_name algo)
        (String.concat "," (List.map string_of_int c))

let test_serializability_all_algorithms () =
  List.iter check_serializable all_algorithms

let test_serializability_high_contention () =
  (* a tiny database and aggressive writes: the worst case for the
     optimistic algorithms *)
  List.iter
    (fun algo ->
      let audit = Cc.History.create () in
      let spec =
        {
          (quick_spec ~n_clients:12 ~pw:0.6 ~loc:0.3 algo) with
          Core.Simulator.db_params =
            Db.Db_params.uniform ~n_classes:4 ~pages_per_class:40 ();
        }
      in
      ignore (Core.Simulator.run ~audit spec);
      match Cc.History.check audit with
      | Cc.History.Serializable -> ()
      | Cc.History.Cycle c ->
          Alcotest.failf "%s hot-spot run not serializable (cycle [%s])"
            (Core.Proto.algorithm_name algo)
            (String.concat "," (List.map string_of_int c)))
    [
      Core.Proto.Two_phase Core.Proto.Inter;
      Core.Proto.Certification Core.Proto.Inter;
      Core.Proto.Callback;
      Core.Proto.No_wait { notify = None };
      Core.Proto.No_wait { notify = Some Core.Proto.Push };
    ]


(* ------------------------------------------------------------------ *)
(* Configuration knobs (ablations)                                     *)
(* ------------------------------------------------------------------ *)

let test_stale_drop_one_still_completes () =
  let cfg =
    { (Core.Sys_params.table5 ~n_clients:8 ()) with Core.Sys_params.stale_drop_all = false }
  in
  let xp = Db.Xact_params.short_batch ~prob_write:0.4 ~inter_xact_loc:0.5 () in
  let spec =
    Core.Simulator.default_spec ~seed:3 ~warmup_commits:30 ~measured_commits:200
      ~cfg ~xact_params:xp (Core.Proto.No_wait { notify = None })
  in
  let r = Core.Simulator.run spec in
  Alcotest.(check int) "commits" 200 r.Core.Simulator.commits

let test_restart_policies_complete () =
  List.iter
    (fun policy ->
      let cfg =
        { (Core.Sys_params.table5 ~n_clients:8 ()) with Core.Sys_params.restart_policy = policy }
      in
      let xp = Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.5 () in
      let spec =
        Core.Simulator.default_spec ~seed:3 ~warmup_commits:30
          ~measured_commits:200 ~cfg ~xact_params:xp
          (Core.Proto.Two_phase Core.Proto.Inter)
      in
      let r = Core.Simulator.run spec in
      Alcotest.(check int) "commits" 200 r.Core.Simulator.commits)
    [ Core.Sys_params.Adaptive; Core.Sys_params.Fixed 0.5; Core.Sys_params.Immediate ]

let test_callback_grace_zero_completes_and_serializable () =
  let cfg =
    { (Core.Sys_params.table5 ~n_clients:8 ()) with Core.Sys_params.callback_grace = 0.0 }
  in
  let xp = Db.Xact_params.short_batch ~prob_write:0.4 ~inter_xact_loc:0.75 () in
  let audit = Cc.History.create () in
  let spec =
    Core.Simulator.default_spec ~seed:3 ~warmup_commits:30 ~measured_commits:200
      ~cfg ~xact_params:xp Core.Proto.Callback
  in
  let r = Core.Simulator.run ~audit spec in
  Alcotest.(check int) "commits" 200 r.Core.Simulator.commits;
  match Cc.History.check audit with
  | Cc.History.Serializable -> ()
  | Cc.History.Cycle _ -> Alcotest.fail "grace=0 must still be serializable"

let test_multi_page_objects_serializable () =
  List.iter
    (fun algo ->
      let audit = Cc.History.create () in
      let spec =
        {
          (quick_spec ~n_clients:8 ~pw:0.3 ~loc:0.4 algo) with
          Core.Simulator.db_params =
            {
              (Db.Db_params.uniform ~n_classes:10 ~pages_per_class:60
                 ~object_size:4 ())
              with
              Db.Db_params.cluster_factor = 0.5;
            };
          measured_commits = 150;
          warmup_commits = 20;
        }
      in
      let r = Core.Simulator.run ~audit spec in
      Alcotest.(check bool)
        (Core.Proto.algorithm_name algo ^ " completes")
        true
        (r.Core.Simulator.commits >= 150);
      match Cc.History.check audit with
      | Cc.History.Serializable -> ()
      | Cc.History.Cycle _ ->
          Alcotest.failf "%s multi-page objects not serializable"
            (Core.Proto.algorithm_name algo))
    [
      Core.Proto.Two_phase Core.Proto.Inter;
      Core.Proto.Certification Core.Proto.Inter;
      Core.Proto.Callback;
      Core.Proto.No_wait { notify = Some Core.Proto.Push };
    ]

let test_2pl_with_notification () =
  let cfg =
    { (Core.Sys_params.table5 ~n_clients:8 ()) with
      Core.Sys_params.notify_updates = Some Core.Proto.Push }
  in
  let xp = Db.Xact_params.short_batch ~prob_write:0.3 ~inter_xact_loc:0.5 () in
  let audit = Cc.History.create () in
  let spec =
    Core.Simulator.default_spec ~seed:3 ~warmup_commits:30 ~measured_commits:200
      ~cfg ~xact_params:xp (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let r = Core.Simulator.run ~audit spec in
  Alcotest.(check int) "commits" 200 r.Core.Simulator.commits;
  Alcotest.(check bool) "pushes sent under 2PL" true (r.Core.Simulator.pushes_sent > 0);
  match Cc.History.check audit with
  | Cc.History.Serializable -> ()
  | Cc.History.Cycle _ -> Alcotest.fail "2PL+notify must stay serializable"

let test_retain_writes_serializable_and_cheaper () =
  let run rw =
    let cfg =
      { (Core.Sys_params.table5 ~n_clients:8 ()) with
        Core.Sys_params.callback_retain_writes = rw }
    in
    let xp = Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.75 () in
    let audit = Cc.History.create () in
    let spec =
      Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
        ~measured_commits:400 ~cfg ~xact_params:xp Core.Proto.Callback
    in
    let r = Core.Simulator.run ~audit spec in
    (match Cc.History.check audit with
    | Cc.History.Serializable -> ()
    | Cc.History.Cycle _ -> Alcotest.fail "retain-writes must stay serializable");
    r
  in
  let reads_only = run false and read_write = run true in
  if read_write.Core.Simulator.msgs_per_commit >= reads_only.Core.Simulator.msgs_per_commit
  then
    Alcotest.failf "retained X should save messages: %.1f vs %.1f"
      read_write.Core.Simulator.msgs_per_commit
      reads_only.Core.Simulator.msgs_per_commit

let test_small_cache_callback_releases_retained () =
  (* a cache smaller than the hot set forces retained-lock releases on
     eviction: server lock count must stay bounded by total cache frames *)
  let cfg =
    { (Core.Sys_params.table5 ~n_clients:6 ()) with Core.Sys_params.cache_size = 30 }
  in
  let xp = Db.Xact_params.short_batch ~prob_write:0.1 ~inter_xact_loc:0.75 () in
  let spec =
    Core.Simulator.default_spec ~seed:5 ~warmup_commits:30 ~measured_commits:300
      ~cfg ~xact_params:xp Core.Proto.Callback
  in
  let r = Core.Simulator.run spec in
  Alcotest.(check int) "commits" 300 r.Core.Simulator.commits


(* ------------------------------------------------------------------ *)
(* MVA analytic cross-check                                            *)
(* ------------------------------------------------------------------ *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_mva_single_station () =
  (* one station, demand 1 s, no think time: N=1 -> X=1, R=1 *)
  let p =
    Core.Mva.solve
      { Core.Mva.n_clients = 1; think = 0.0;
        stations = [ { Core.Mva.name = "s"; demand = 1.0 } ] }
  in
  if not (feq p.Core.Mva.throughput 1.0) then Alcotest.fail "X=1";
  if not (feq p.Core.Mva.response 1.0) then Alcotest.fail "R=1";
  (* saturation: X -> 1/D *)
  let p50 =
    Core.Mva.solve
      { Core.Mva.n_clients = 50; think = 0.0;
        stations = [ { Core.Mva.name = "s"; demand = 1.0 } ] }
  in
  if not (feq p50.Core.Mva.throughput 1.0) then Alcotest.fail "X sat";
  if not (feq p50.Core.Mva.response 50.0) then Alcotest.fail "R = N*D";
  Alcotest.(check string) "bottleneck" "s" p50.Core.Mva.bottleneck

let test_mva_with_think_time () =
  (* M/M/1-like: light load with think time Z: X ~ N/(D+Z) *)
  let p =
    Core.Mva.solve
      { Core.Mva.n_clients = 1; think = 9.0;
        stations = [ { Core.Mva.name = "s"; demand = 1.0 } ] }
  in
  if not (feq p.Core.Mva.throughput 0.1) then
    Alcotest.failf "X=%f, expected 0.1" p.Core.Mva.throughput

let test_mva_asymptotic_bound () =
  (* throughput never exceeds 1/Dmax nor N/(R0+Z) *)
  let stations =
    [ { Core.Mva.name = "a"; demand = 0.03 };
      { Core.Mva.name = "b"; demand = 0.05 };
      { Core.Mva.name = "c"; demand = 0.01 } ]
  in
  List.iter
    (fun n ->
      let p = Core.Mva.solve { Core.Mva.n_clients = n; think = 0.5; stations } in
      if p.Core.Mva.throughput > (1.0 /. 0.05) +. 1e-9 then
        Alcotest.fail "exceeds bottleneck bound";
      let r0 = 0.03 +. 0.05 +. 0.01 in
      if p.Core.Mva.throughput > (float_of_int n /. (r0 +. 0.5)) +. 1e-9 then
        Alcotest.fail "exceeds population bound";
      List.iter
        (fun (_, u) -> if u < 0.0 || u > 1.0 +. 1e-9 then Alcotest.fail "util range")
        p.Core.Mva.station_utils)
    [ 1; 5; 20; 80 ]

let test_mva_monotone_throughput () =
  let stations = [ { Core.Mva.name = "s"; demand = 0.1 } ] in
  let xs =
    List.map
      (fun n ->
        (Core.Mva.solve { Core.Mva.n_clients = n; think = 1.0; stations })
          .Core.Mva.throughput)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let rec increasing = function
    | a :: b :: rest -> a <= b +. 1e-9 && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing xs)

let test_mva_matches_simulation_light_load () =
  (* read-only, no locality: no lock contention, so the product-form
     prediction should be close to the simulated system *)
  let cfg = Core.Sys_params.table5 ~n_clients:10 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.0 ~inter_xact_loc:0.0 () in
  let sim =
    Core.Simulator.run
      (Core.Simulator.default_spec ~seed:3 ~warmup_commits:200
         ~measured_commits:1500 ~cfg ~xact_params:xp
         (Core.Proto.Two_phase Core.Proto.Inter))
  in
  (* estimate the server buffer hit ratio from the simulated disk rate is
     cheating; use the structural value: buffer 400 of 2000 pages ~ 0.2 *)
  let inputs = Core.Mva.demands_2pl cfg xp ~client_hit:0.05 ~buffer_hit:0.2 in
  let p = Core.Mva.solve inputs in
  let rel a b = Float.abs (a -. b) /. b in
  if rel p.Core.Mva.throughput sim.Core.Simulator.throughput > 0.25 then
    Alcotest.failf "throughput: mva %.2f vs sim %.2f" p.Core.Mva.throughput
      sim.Core.Simulator.throughput;
  let sim_response = sim.Core.Simulator.mean_response in
  if rel p.Core.Mva.response sim_response > 0.45 then
    Alcotest.failf "response: mva %.3f vs sim %.3f" p.Core.Mva.response
      sim_response

let test_mva_rejects_bad_inputs () =
  Alcotest.check_raises "no stations"
    (Invalid_argument "Mva.solve: no stations") (fun () ->
      ignore (Core.Mva.solve { Core.Mva.n_clients = 1; think = 0.0; stations = [] }));
  Alcotest.check_raises "bad hit"
    (Invalid_argument "Mva.demands_2pl: client_hit outside [0,1]") (fun () ->
      ignore
        (Core.Mva.demands_2pl (Core.Sys_params.table5 ())
           (Db.Xact_params.short_batch ()) ~client_hit:1.5 ~buffer_hit:0.2))


let test_no_locality_intra_equals_inter () =
  (* with zero locality and zero writes, inter-transaction caching has
     nothing to exploit: the two variants should be within a few percent *)
  let spec caching =
    Core.Simulator.default_spec ~seed:5 ~warmup_commits:50 ~measured_commits:400
      ~cfg:(Core.Sys_params.table5 ~n_clients:10 ())
      ~xact_params:(Db.Xact_params.short_batch ~prob_write:0.0 ~inter_xact_loc:0.0 ())
      (Core.Proto.Two_phase caching)
  in
  let inter = Core.Simulator.run (spec Core.Proto.Inter) in
  let intra = Core.Simulator.run (spec Core.Proto.Intra) in
  let rel =
    Float.abs (inter.Core.Simulator.mean_response -. intra.Core.Simulator.mean_response)
    /. intra.Core.Simulator.mean_response
  in
  if rel > 0.10 then
    Alcotest.failf "intra (%.3f) vs inter (%.3f) differ by %.0f%% at zero locality"
      intra.Core.Simulator.mean_response inter.Core.Simulator.mean_response
      (100.0 *. rel)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counts () =
  let eng = Sim.Engine.create () in
  let m = Core.Metrics.create eng in
  Core.Metrics.record_commit m ~response:1.0;
  Core.Metrics.record_commit m ~response:3.0;
  Core.Metrics.record_abort m Core.Metrics.Deadlock;
  Core.Metrics.record_abort m Core.Metrics.Cert_fail;
  Core.Metrics.record_lookup m ~hit:true;
  Core.Metrics.record_lookup m ~hit:false;
  Alcotest.(check int) "commits" 2 (Core.Metrics.commits m);
  Alcotest.(check int) "aborts" 2 (Core.Metrics.aborts m);
  Alcotest.(check int) "deadlocks" 1 (Core.Metrics.aborts_by m Core.Metrics.Deadlock);
  Alcotest.(check (float 1e-9)) "mean response" 2.0 (Core.Metrics.mean_response m);
  Alcotest.(check int) "hits" 1 (Core.Metrics.hits m);
  Alcotest.(check int) "lookups" 2 (Core.Metrics.lookups m)

let test_metrics_reset_keeps_total () =
  let eng = Sim.Engine.create () in
  let m = Core.Metrics.create eng in
  Core.Metrics.record_commit m ~response:1.0;
  Core.Metrics.reset m;
  Alcotest.(check int) "window cleared" 0 (Core.Metrics.commits m);
  Alcotest.(check int) "total preserved" 1 (Core.Metrics.total_commits m)

(* ------------------------------------------------------------------ *)
(* Proto                                                               *)
(* ------------------------------------------------------------------ *)

let test_xid_roundtrip () =
  for client = 0 to 5 do
    for seq = 1 to 100 do
      let x = Core.Proto.make_xid ~client ~seq in
      Alcotest.(check int) "client recovered" client (Core.Proto.xid_client x)
    done
  done

let test_message_sizes () =
  let control = 256 and page_size = 4096 in
  let bytes_c2s m = Core.Proto.c2s_bytes ~control ~page_size m in
  let bytes_s2c m = Core.Proto.s2c_bytes ~control ~page_size m in
  Alcotest.(check int) "fetch is control-sized" 256
    (bytes_c2s (fetch ~client:0 ~seq:1 [ fp 1; fp 2 ]));
  Alcotest.(check int) "commit carries updates" (256 + (2 * 4096))
    (bytes_c2s (commit ~client:0 ~seq:1 ~updates:[ 1; 2 ] ()));
  Alcotest.(check int) "reply carries data" (256 + 4096)
    (bytes_s2c (Core.Proto.Fetch_reply { xid = 1; req = 0; data = [ (1, 1) ] }));
  Alcotest.(check int) "push carries a page" (256 + 4096)
    (bytes_s2c (Core.Proto.Update_push { page = 1; version = 1 }));
  Alcotest.(check int) "invalidation is control-sized" 256
    (bytes_s2c (Core.Proto.Invalidate_page { page = 1 }))

let test_algorithm_names_unique () =
  let names = List.map Core.Proto.algorithm_name all_algorithms in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let suites =
  [
    ( "server-2pl",
      [
        case "fetch miss returns data" test_fetch_miss_returns_data;
        case "valid version no data" test_fetch_valid_version_no_data;
        case "stale version gets data" test_fetch_stale_version_gets_data;
        case "commit bumps and releases" test_commit_bumps_versions_and_releases;
        case "write blocks reader" test_write_blocks_reader_until_commit;
        case "deadlock aborts youngest" test_deadlock_aborts_youngest;
        case "tombstoned commit aborted" test_tombstoned_commit_gets_aborted_reply;
        case "mpl admission queues" test_mpl_admission_queues;
        case "read-only commit" test_read_only_commit_is_ok;
      ] );
    ( "server-cert",
      [
        case "cert read never blocks" test_cert_read_never_blocks;
        case "commit validates" test_cert_commit_validates;
        case "stale read fails commit" test_cert_commit_fails_on_stale_read;
        case "write-write: one wins" test_cert_write_write_one_wins;
      ] );
    ( "server-callback",
      [
        case "callback request to holder" test_callback_request_sent_to_holder;
        case "commit downgrades X to S" test_callback_commit_downgrades_x_to_retained_s;
        case "commit releases requested pages" test_callback_commit_releases_requested_pages;
        case "release retained" test_release_retained_message;
        case "retain-writes keeps X" test_callback_retain_writes_keeps_x;
        case "abort keeps old retained locks" test_callback_abort_keeps_old_retained_locks;
      ] );
    ( "server-no-wait",
      [
        case "silent on success" test_no_wait_silent_on_success;
        case "stale aborts with page" test_no_wait_stale_aborts_with_page;
        case "push to caching clients" test_notify_pushes_to_caching_clients;
        case "invalidate mode" test_notify_invalidate_mode;
      ] );
    ( "server-buffer",
      [
        case "hot page buffer hit" test_buffer_caches_hot_page;
        case "commit forces log" test_commit_forces_log;
      ] );
    ( "integration",
      [
        case "every algorithm completes" test_every_algorithm_completes;
        case "deterministic per seed" test_determinism;
        case "seed changes results" test_seed_changes_results;
        case "cert never deadlocks" test_cert_has_no_deadlocks;
        case "2PL never cert-aborts" test_locking_has_no_cert_aborts;
        case "read-only workloads never abort" test_read_only_no_aborts;
        case "callback hit ratio dominates" test_callback_hit_ratio_dominates;
        case "intra hit ratio small" test_intra_never_hits_across_xacts;
        case "inter beats intra" test_inter_beats_intra_response;
        case "zero locality: intra == inter" test_no_locality_intra_equals_inter;
        case "callback saves messages" test_callback_zero_message_commits;
        case "notify sends pushes" test_notify_sends_pushes;
        case "plain no-wait never pushes" test_plain_no_wait_never_pushes;
        case "callback sends callbacks" test_callback_sends_callbacks;
        case "interactive think-time response" test_interactive_response_dominated_by_think_time;
        case "utilizations bounded" test_utilizations_bounded;
        case "replication sums commits" test_replication_averages;
        case "replication pools statistics" test_replication_pools_statistics;
        case "replication jobs invariant" test_replication_jobs_invariant;
        case "hot database stays in buffer" test_hot_spot_buffer_sharing;
      ] );
    qsuite "integration-props" [ prop_random_configs_complete ];
    ( "serializability",
      [
        case "all algorithms serializable" test_serializability_all_algorithms;
        case "hot-spot contention serializable" test_serializability_high_contention;
        case "multi-page objects serializable" test_multi_page_objects_serializable;
      ] );
    ( "mva",
      [
        case "single station" test_mva_single_station;
        case "think time" test_mva_with_think_time;
        case "asymptotic bounds" test_mva_asymptotic_bound;
        case "monotone throughput" test_mva_monotone_throughput;
        case "matches light-load simulation" test_mva_matches_simulation_light_load;
        case "rejects bad inputs" test_mva_rejects_bad_inputs;
      ] );
    ( "config-knobs",
      [
        case "stale drop-one completes" test_stale_drop_one_still_completes;
        case "restart policies complete" test_restart_policies_complete;
        case "grace zero serializable" test_callback_grace_zero_completes_and_serializable;
        case "2PL with notification" test_2pl_with_notification;
        case "retain-writes serializable and cheaper" test_retain_writes_serializable_and_cheaper;
        case "small cache callback" test_small_cache_callback_releases_retained;
      ] );
    ( "metrics",
      [
        case "counts" test_metrics_counts;
        case "reset keeps total" test_metrics_reset_keeps_total;
      ] );
    ( "proto",
      [
        case "xid roundtrip" test_xid_roundtrip;
        case "message sizes" test_message_sizes;
        case "algorithm names unique" test_algorithm_names_unique;
      ] );
  ]

let () = Alcotest.run "core" suites
