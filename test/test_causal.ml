(* Tests for the causal message-tracing layer: sink roundtrip, DAG
   reconstruction/validation (QCheck: every transaction's DAG stays
   acyclic, single-rooted and edge-time-monotone under client crashes
   and coordinator amnesia at 1 and 4 shards), critical-chain
   reconciliation with the span decomposition, message-amplification
   accounting, Perfetto flow-event JSON escaping, .dag artifact
   j-invariance, and recorder-off purity. *)

let case name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let contains text s =
  let n = String.length text and m = String.length s in
  let rec go i = i + m <= n && (String.sub text i m = s || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Sink roundtrip                                                      *)
(* ------------------------------------------------------------------ *)

let tag ?(parent = -1) ?(xid = 0) ?(owner = 0) ?(kind = "read_req")
    ?(src = Obs.Causal.Client 0) ?(dst = Obs.Causal.Shard 0) ?(retry = 0) () =
  {
    Obs.Causal.tg_parent = parent;
    tg_xid = xid;
    tg_owner = owner;
    tg_kind = kind;
    tg_src = src;
    tg_dst = dst;
    tg_retry = retry;
  }

let test_sink_roundtrip () =
  let (), buf =
    Obs.Causal.with_causal (fun () ->
        let root = Obs.Causal.root ~time:1.0 ~client:0 in
        let req =
          Obs.Causal.send ~time:1.0 ~tag:(tag ~parent:root ()) ~bytes:200
            ~pkts:1 ~dup:0
        in
        Obs.Causal.recv ~time:1.5 req;
        let reply =
          Obs.Causal.send ~time:1.5
            ~tag:
              (tag ~parent:req ~kind:"read_reply" ~src:(Obs.Causal.Shard 0)
                 ~dst:(Obs.Causal.Client 0) ())
            ~bytes:4200 ~pkts:2 ~dup:0
        in
        Obs.Causal.recv ~time:2.0 reply;
        Obs.Causal.finish ~time:2.0 ~parent:reply ~xid:0 ~client:0 ~ok:true)
  in
  let es = Obs.Causal.entries buf in
  Alcotest.(check int) "six entries" 6 (Array.length es);
  let an = Obs.Causal.analyze (Array.map (fun e -> (0, e)) es) in
  Alcotest.(check bool) "well-formed" true
    (Obs.Causal.check_ok an.Obs.Causal.an_check);
  Alcotest.(check int) "one group" 1 an.Obs.Causal.an_check.Obs.Causal.ck_groups;
  Alcotest.(check int) "committed" 1
    an.Obs.Causal.an_check.Obs.Causal.ck_committed;
  (match an.Obs.Causal.an_dags with
  | [| d |] ->
      Alcotest.(check int) "both messages attributed" 2 d.Obs.Causal.dg_msgs;
      Alcotest.(check (float 1e-12)) "duration" 1.0
        (d.Obs.Causal.dg_finish -. d.Obs.Causal.dg_start);
      (* the gating chain walks root -> request -> reply -> end *)
      Alcotest.(check (list string))
        "chain labels"
        [ "root"; "read_req"; "read_reply"; "end" ]
        (List.map (fun l -> l.Obs.Causal.lk_label) d.Obs.Causal.dg_chain)
  | _ -> Alcotest.fail "expected exactly one dag");
  Alcotest.(check (float 1e-12)) "chain sum" 1.0 an.Obs.Causal.an_chain_sum

let test_no_sink_is_noop () =
  Alcotest.(check int) "root sentinel" (-1)
    (Obs.Causal.root ~time:0.0 ~client:0);
  Alcotest.(check int) "send sentinel" (-1)
    (Obs.Causal.send ~time:0.0 ~tag:(tag ()) ~bytes:1 ~pkts:1 ~dup:0);
  Obs.Causal.recv ~time:0.0 7;
  Obs.Causal.drop ~time:0.0 7;
  Obs.Causal.finish ~time:0.0 ~parent:7 ~xid:0 ~client:0 ~ok:true;
  Alcotest.(check bool) "inactive" false (Obs.Causal.active ())

(* ------------------------------------------------------------------ *)
(* Validation catches malformed records                                *)
(* ------------------------------------------------------------------ *)

let mk cz_time cz_seq cz_ev = { Obs.Causal.cz_time; cz_seq; cz_ev }

let test_analyze_catches_malformed () =
  let bad name es =
    let an = Obs.Causal.analyze (Array.map (fun e -> (0, e)) es) in
    Alcotest.(check bool) (name ^ " flagged") false
      (Obs.Causal.check_ok an.Obs.Causal.an_check)
  in
  let send ?(parent = -1) ?(time = 1.0) id =
    mk time id
      (Obs.Causal.Send
         {
           id;
           parent;
           xid = 0;
           owner = 0;
           kind = "k";
           src = Obs.Causal.Client 0;
           dst = Obs.Causal.Shard 0;
           bytes = 1;
           pkts = 1;
           retry = 0;
           dup = 0;
         })
  in
  (* delivery of a node never sent *)
  bad "orphan recv" [| mk 1.0 0 (Obs.Causal.Recv { id = 42 }) |];
  (* double delivery *)
  bad "double recv"
    [| send 1; mk 2.0 2 (Obs.Causal.Recv { id = 1 });
       mk 3.0 3 (Obs.Causal.Recv { id = 1 }) |];
  (* receive before the send instant *)
  bad "recv before send"
    [| send ~time:5.0 1; mk 4.0 2 (Obs.Causal.Recv { id = 1 }) |];
  (* a send caused by a node delivered after it (time travel) *)
  bad "child precedes parent delivery"
    [| send ~time:1.0 1; mk 9.0 3 (Obs.Causal.Recv { id = 1 });
       send ~parent:1 ~time:2.0 2 |];
  (* two roots closing into one group id *)
  bad "end without root"
    [| mk 1.0 0
         (Obs.Causal.End { id = 9; parent = -1; xid = 0; client = 0; ok = true })
    |];
  (* ring overwrite relaxes the orphan checks *)
  let orphan = [| (0, mk 1.0 0 (Obs.Causal.Recv { id = 42 })) |] in
  let an = Obs.Causal.analyze ~dropped:10 orphan in
  Alcotest.(check bool) "relaxed passes" true
    (Obs.Causal.check_ok an.Obs.Causal.an_check)

(* ------------------------------------------------------------------ *)
(* Real runs: structural property under faults (QCheck)                *)
(* ------------------------------------------------------------------ *)

let small_spec ?(obs = Obs.Config.causal) ?(seed = 7) ?(n_shards = 1)
    ?(fault = Fault.Plan.none) algo =
  let cfg = Core.Sys_params.table5 ~n_clients:4 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.3 ~inter_xact_loc:0.5 () in
  {
    (Core.Simulator.default_spec ~seed ~warmup_commits:20 ~measured_commits:60
       ~obs ~cfg ~xact_params:xp algo)
    with
    Core.Simulator.db_params =
      Db.Db_params.uniform ~n_classes:4 ~pages_per_class:25 ();
    n_shards;
    fault;
  }

let run_spec (spec : Core.Simulator.spec) =
  if spec.Core.Simulator.n_shards > 1 then Shard.Shard_sim.run spec
  else Core.Simulator.run spec

let obs_of r =
  match r.Core.Simulator.obs with
  | None -> Alcotest.fail "no obs payload"
  | Some o -> o

let analyze_run o =
  Obs.Causal.analyze
    ~dropped:(Obs.Run.causal_dropped o)
    (Obs.Run.merged_causal o)

(* The chain must be edge-time-monotone: along the gating path every
   message departs no earlier than its cause was delivered, and arrives
   no earlier than it departed. *)
let assert_chain_monotone name (d : Obs.Causal.dag) =
  let rec walk prev_recv = function
    | [] -> ()
    | (l : Obs.Causal.link) :: rest ->
        if l.Obs.Causal.lk_send +. 1e-12 < prev_recv then
          Alcotest.failf "%s: chain not monotone at %s (%.9f < %.9f)" name
            l.Obs.Causal.lk_label l.Obs.Causal.lk_send prev_recv;
        if l.Obs.Causal.lk_recv +. 1e-12 < l.Obs.Causal.lk_send then
          Alcotest.failf "%s: link %s delivered before sent" name
            l.Obs.Causal.lk_label;
        walk l.Obs.Causal.lk_recv rest
  in
  walk neg_infinity d.Obs.Causal.dg_chain

(* One fault scenario per QCheck case: a random seed under either the
   default plan (client crashes, drops, delays, duplicates) at one
   shard, or coordinator amnesia at four. *)
let qtest_dags_wellformed_under_faults =
  QCheck.Test.make
    ~name:
      "DAGs stay acyclic, single-rooted and time-monotone under client \
       crashes and coordinator amnesia"
    ~count:8
    QCheck.(pair (int_range 1 1000) bool)
    (fun (seed, sharded) ->
      let fault, n_shards =
        if sharded then
          ( {
              Fault.Plan.none with
              Fault.Plan.seed;
              coord_crash_prob = 0.5;
              req_timeout = 1.0;
              max_backoff = 8.0;
            },
            4 )
        else (Fault.Plan.default ~seed, 1)
      in
      let spec =
        small_spec ~seed ~n_shards ~fault (Core.Proto.Two_phase Core.Proto.Inter)
      in
      let o = obs_of (run_spec spec) in
      let an = analyze_run o in
      (* validation covers acyclicity (parents precede children), the
         single root per group, and send <= receive on every edge *)
      if not (Obs.Causal.check_ok an.Obs.Causal.an_check) then
        QCheck.Test.fail_reportf "seed %d shards %d: %s" seed n_shards
          (Format.asprintf "%a" Obs.Causal.pp_check an.Obs.Causal.an_check);
      Array.iter
        (assert_chain_monotone (Printf.sprintf "seed %d" seed))
        an.Obs.Causal.an_dags;
      an.Obs.Causal.an_check.Obs.Causal.ck_groups > 0)

(* ------------------------------------------------------------------ *)
(* Reconciliation with the span decomposition                          *)
(* ------------------------------------------------------------------ *)

let protocols =
  [
    ("2pl-inter", Core.Proto.Two_phase Core.Proto.Inter);
    ("cert-inter", Core.Proto.Certification Core.Proto.Inter);
    ("callback", Core.Proto.Callback);
    ("no-wait", Core.Proto.No_wait { notify = Some Core.Proto.Push });
  ]

let check_reconciles name spec =
  let o = obs_of (run_spec spec) in
  let an = analyze_run o in
  Alcotest.(check bool) (name ^ " well-formed") true
    (Obs.Causal.check_ok an.Obs.Causal.an_check);
  Alcotest.(check bool)
    (name ^ " has committed dags")
    true
    (an.Obs.Causal.an_check.Obs.Causal.ck_committed > 0);
  let cp = Obs.Critical_path.analyze (Obs.Run.merged_spans o) in
  let residual =
    Float.abs (an.Obs.Causal.an_chain_sum -. cp.Obs.Critical_path.cp_end_to_end)
  in
  if residual > 1e-9 then
    Alcotest.failf "%s: chain sum %.12f vs span end-to-end %.12f" name
      an.Obs.Causal.an_chain_sum cp.Obs.Critical_path.cp_end_to_end

let test_chain_reconciles_one_shard () =
  List.iter
    (fun (name, algo) -> check_reconciles name (small_spec algo))
    protocols

let test_chain_reconciles_four_shards () =
  List.iter
    (fun (name, algo) ->
      check_reconciles (name ^ "@4") (small_spec ~n_shards:4 algo))
    [ List.hd protocols; List.nth protocols 2 ]

(* ------------------------------------------------------------------ *)
(* Amplification accounting                                            *)
(* ------------------------------------------------------------------ *)

let test_amplification_accounts_every_send () =
  let o =
    obs_of (run_spec (small_spec (Core.Proto.Two_phase Core.Proto.Inter)))
  in
  let causal = Obs.Run.merged_causal o in
  let an = Obs.Causal.analyze causal in
  let amps = Obs.Causal.amplification causal in
  let total = List.fold_left (fun n a -> n + a.Obs.Causal.am_msgs) 0 amps in
  Alcotest.(check int) "per-kind rows sum to the message count"
    an.Obs.Causal.an_check.Obs.Causal.ck_msgs total;
  (* a fault-free run retransmits and duplicates nothing *)
  List.iter
    (fun (a : Obs.Causal.amp) ->
      Alcotest.(check int) (a.Obs.Causal.am_kind ^ " retx") 0
        a.Obs.Causal.am_retx;
      Alcotest.(check int) (a.Obs.Causal.am_kind ^ " dups") 0
        a.Obs.Causal.am_dups;
      Alcotest.(check bool) (a.Obs.Causal.am_kind ^ " bytes") true
        (a.Obs.Causal.am_bytes > 0))
    amps;
  (* sorted by kind, no duplicate rows *)
  let kinds = List.map (fun a -> a.Obs.Causal.am_kind) amps in
  Alcotest.(check (list string)) "sorted unique kinds"
    (List.sort_uniq compare kinds) kinds

let test_duplicates_tagged_under_dup_faults () =
  let fault =
    {
      (Fault.Plan.none) with
      Fault.Plan.seed = 3;
      dup_prob = 0.2;
      req_timeout = 1.0;
      max_backoff = 8.0;
    }
  in
  let o =
    obs_of
      (run_spec (small_spec ~fault (Core.Proto.Two_phase Core.Proto.Inter)))
  in
  let causal = Obs.Run.merged_causal o in
  let an = Obs.Causal.analyze causal in
  Alcotest.(check bool) "still well-formed" true
    (Obs.Causal.check_ok an.Obs.Causal.an_check);
  let dups =
    List.fold_left
      (fun n a -> n + a.Obs.Causal.am_dups)
      0
      (Obs.Causal.amplification causal)
  in
  Alcotest.(check bool) "duplicate copies carry dup > 0" true (dups > 0)

(* ------------------------------------------------------------------ *)
(* Export: flow-event JSON escaping and the .dag artifact              *)
(* ------------------------------------------------------------------ *)

(* Flow names come from message kinds; the exporter must escape them
   like any other JSON string, and the in-repo parser must decode the
   result back to the original. *)
let test_flow_json_escaping () =
  let weird = "we\"ird\\kind\nwith\tcontrol\x01chars" in
  let (), buf =
    Obs.Causal.with_causal (fun () ->
        let id =
          Obs.Causal.send ~time:1.0 ~tag:(tag ~kind:weird ()) ~bytes:10 ~pkts:1
            ~dup:0
        in
        Obs.Causal.recv ~time:2.0 id)
  in
  let flows = Array.map (fun e -> (0, e)) (Obs.Causal.entries buf) in
  let json = Obs.Export.perfetto ~flows [||] in
  (match Obs.Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flow JSON invalid: %s" e);
  Alcotest.(check bool) "flow start present" true
    (contains json "\"ph\":\"s\"");
  Alcotest.(check bool) "flow finish present" true
    (contains json "\"ph\":\"f\"");
  (* parse back and recover the unescaped kind on a causal-category flow *)
  match Obs.Export.parse_json json with
  | Error e -> Alcotest.failf "parse back failed: %s" e
  | Ok j ->
      let events =
        match Obs.Export.member "traceEvents" j with
        | Some (Obs.Export.Arr l) -> l
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let is_weird_flow ev =
        match
          (Obs.Export.member "cat" ev, Obs.Export.member "name" ev)
        with
        | Some (Obs.Export.Str "causal"), Some (Obs.Export.Str n) -> n = weird
        | _ -> false
      in
      Alcotest.(check bool) "kind round-trips through the escaper" true
        (List.exists is_weird_flow events)

let test_dropped_copies_draw_no_arrow () =
  let (), buf =
    Obs.Causal.with_causal (fun () ->
        let id =
          Obs.Causal.send ~time:1.0 ~tag:(tag ~kind:"lost_req" ()) ~bytes:10
            ~pkts:1 ~dup:0
        in
        Obs.Causal.drop ~time:1.2 id)
  in
  let flows = Array.map (fun e -> (0, e)) (Obs.Causal.entries buf) in
  let json = Obs.Export.perfetto ~flows [||] in
  Alcotest.(check bool) "no flow start for a dropped copy" false
    (contains json "\"ph\":\"s\"")

let test_dag_text_format () =
  let o =
    obs_of (run_spec (small_spec (Core.Proto.Two_phase Core.Proto.Inter)))
  in
  let text = Obs.Export.dag_text (Obs.Run.merged_causal o) in
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
        (contains text s))
    [ "root"; "send"; "recv"; "end"; "rep0"; "kind"; "retry" ]

(* ------------------------------------------------------------------ *)
(* Purity and j-invariance                                             *)
(* ------------------------------------------------------------------ *)

let test_causal_obs_is_pure () =
  (* enabling the causal recorder adds no events, holds or randomness:
     the result record is bit-identical to the dark run *)
  List.iter
    (fun (name, algo) ->
      let base = run_spec (small_spec ~obs:Obs.Config.off algo) in
      let instr = run_spec (small_spec algo) in
      Alcotest.(check bool)
        (name ^ " result bit-identical")
        true
        ({ instr with Core.Simulator.obs = None } = base))
    [ List.hd protocols; List.nth protocols 2 ];
  let base =
    run_spec
      (small_spec ~obs:Obs.Config.off ~n_shards:4
         (Core.Proto.Two_phase Core.Proto.Inter))
  in
  let instr =
    run_spec (small_spec ~n_shards:4 (Core.Proto.Two_phase Core.Proto.Inter))
  in
  Alcotest.(check bool) "sharded result bit-identical" true
    ({ instr with Core.Simulator.obs = None } = base)

let dag_artifact ~jobs (spec : Core.Simulator.spec) =
  let r =
    if spec.Core.Simulator.n_shards > 1 then
      Shard.Shard_sim.run_replicated ~jobs spec ~reps:3
    else Core.Simulator.run_replicated ~jobs spec ~reps:3
  in
  Obs.Export.dag_text (Obs.Run.merged_causal (obs_of r))

let test_jobs_invariance_dag () =
  let spec =
    small_spec ~fault:(Fault.Plan.default ~seed:3)
      (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let d1 = dag_artifact ~jobs:1 spec and d4 = dag_artifact ~jobs:4 spec in
  Alcotest.(check bool) "dag text non-empty" true (String.length d1 > 0);
  Alcotest.(check string) "dag text identical at -j1 and -j4" d1 d4

let test_jobs_invariance_dag_sharded () =
  let spec =
    small_spec ~n_shards:4 (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let d1 = dag_artifact ~jobs:1 spec and d4 = dag_artifact ~jobs:4 spec in
  Alcotest.(check string) "sharded dag text identical" d1 d4

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "causal"
    [
      ( "record",
        [
          case "sink roundtrip" test_sink_roundtrip;
          case "no sink is a no-op" test_no_sink_is_noop;
          case "validation catches malformed records"
            test_analyze_catches_malformed;
        ] );
      qsuite "dag-props" [ qtest_dags_wellformed_under_faults ];
      ( "reconciliation",
        [
          case "chain sum matches spans, one shard"
            test_chain_reconciles_one_shard;
          case "chain sum matches spans, four shards"
            test_chain_reconciles_four_shards;
        ] );
      ( "amplification",
        [
          case "per-kind rows account every send"
            test_amplification_accounts_every_send;
          case "fault-injected duplicates tagged"
            test_duplicates_tagged_under_dup_faults;
        ] );
      ( "export",
        [
          case "flow names escape to valid JSON" test_flow_json_escaping;
          case "dropped copies draw no arrow"
            test_dropped_copies_draw_no_arrow;
          case "dag text format" test_dag_text_format;
        ] );
      ( "purity",
        [ case "causal obs leaves results bit-identical" test_causal_obs_is_pure ] );
      ( "jobs",
        [
          case "faulty dag identical at -j1 and -j4" test_jobs_invariance_dag;
          case "sharded dag identical" test_jobs_invariance_dag_sharded;
        ] );
    ]
