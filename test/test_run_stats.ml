(* Tests for Obs.Run_stats: Student-t quantiles against table values,
   confidence intervals, batch means, and the warmup diagnostic. *)

let case name f = Alcotest.test_case name `Quick f

(* Standard two-sided 95 % critical values, as printed in any stats
   table.  The quantile inversion is bisection over the incomplete-beta
   CDF, so agreement here exercises the whole numeric stack. *)
let test_t_quantile_table () =
  List.iter
    (fun (df, expect) ->
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "t(0.975, %g)" df)
        expect
        (Obs.Run_stats.t_quantile ~df 0.975))
    [
      (1.0, 12.7062);
      (2.0, 4.30265);
      (5.0, 2.57058);
      (10.0, 2.22814);
      (30.0, 2.04227);
    ];
  (* large df converges on the normal quantile *)
  Alcotest.(check (float 5e-3)) "t -> z" 1.95996
    (Obs.Run_stats.t_quantile ~df:10_000.0 0.975);
  (* symmetry and median *)
  Alcotest.(check (float 1e-6)) "median" 0.0
    (Obs.Run_stats.t_quantile ~df:7.0 0.5);
  Alcotest.(check (float 1e-4)) "symmetry"
    (-.Obs.Run_stats.t_quantile ~df:4.0 0.975)
    (Obs.Run_stats.t_quantile ~df:4.0 0.025)

let test_t_cdf_roundtrip () =
  List.iter
    (fun df ->
      List.iter
        (fun p ->
          Alcotest.(check (float 1e-5))
            (Printf.sprintf "cdf(quantile(%g)) df=%g" p df)
            p
            (Obs.Run_stats.t_cdf ~df (Obs.Run_stats.t_quantile ~df p)))
        [ 0.05; 0.5; 0.9; 0.975; 0.999 ])
    [ 1.0; 3.0; 12.0; 100.0 ]

let test_mean_ci_known_value () =
  (* xs = 1, 2, 3: mean 2, s = 1, half = t(0.975, 2)/sqrt 3 = 2.48414 *)
  let ci = Obs.Run_stats.mean_ci [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "available" true (Obs.Run_stats.available ci);
  Alcotest.(check int) "n" 3 ci.Obs.Run_stats.ci_n;
  Alcotest.(check (float 1e-9)) "mean" 2.0 ci.Obs.Run_stats.ci_mean;
  Alcotest.(check (float 1e-4)) "half" 2.48414 ci.Obs.Run_stats.ci_half;
  Alcotest.(check (float 1e-4)) "lo" (-0.48414) (Obs.Run_stats.ci_lo ci);
  Alcotest.(check (float 1e-4)) "hi" 4.48414 (Obs.Run_stats.ci_hi ci);
  (match Obs.Run_stats.rel_half_width ci with
  | Some r -> Alcotest.(check (float 1e-4)) "rel" 1.24207 r
  | None -> Alcotest.fail "rel_half_width expected");
  Alcotest.(check string) "formatted" "2.484" (Obs.Run_stats.half_string ci)

let test_mean_ci_single_rep () =
  let ci = Obs.Run_stats.mean_ci [| 7.25 |] in
  Alcotest.(check bool) "unavailable" false (Obs.Run_stats.available ci);
  Alcotest.(check (float 0.0)) "mean still reported" 7.25
    ci.Obs.Run_stats.ci_mean;
  Alcotest.(check bool) "half is nan, not a number" true
    (Float.is_nan ci.Obs.Run_stats.ci_half);
  Alcotest.(check string) "n/a not nan" "n/a" (Obs.Run_stats.half_string ci);
  Alcotest.(check bool) "no rel width" true
    (Obs.Run_stats.rel_half_width ci = None);
  Alcotest.(check bool) "empty input too" false
    (Obs.Run_stats.available (Obs.Run_stats.mean_ci [||]))

let test_pooled_rel_half_width () =
  let ci xs = Obs.Run_stats.mean_ci xs in
  (* pooled over one available (rel 2.48414/2) and one unavailable *)
  match
    Obs.Run_stats.pooled_rel_half_width [ ci [| 1.0; 2.0; 3.0 |]; ci [| 5.0 |] ]
  with
  | Some r -> Alcotest.(check (float 1e-4)) "pooled" 1.24207 r
  | None -> Alcotest.fail "pooled width expected"

let test_batch_means_known_value () =
  (* 8 observations in 4 batches of 2: batch means 2, 3, 4, 5, so mean
     3.5, s = sqrt(5/3), half = t(0.975, 3) * s / 2 = 2.05426 *)
  let xs = [| 1.0; 3.0; 2.0; 4.0; 3.0; 5.0; 4.0; 6.0 |] in
  (match Obs.Run_stats.batch_means ~batches:4 xs with
  | Some ci ->
      Alcotest.(check int) "batches" 4 ci.Obs.Run_stats.ci_n;
      Alcotest.(check (float 1e-9)) "mean" 3.5 ci.Obs.Run_stats.ci_mean;
      Alcotest.(check (float 1e-4)) "half" 2.05426 ci.Obs.Run_stats.ci_half
  | None -> Alcotest.fail "batch ci expected");
  (* a 9th (oldest) observation that does not fit a batch is dropped *)
  (match Obs.Run_stats.batch_means ~batches:4 (Array.append [| 99.0 |] xs) with
  | Some ci ->
      Alcotest.(check (float 1e-9)) "remainder dropped" 3.5
        ci.Obs.Run_stats.ci_mean
  | None -> Alcotest.fail "batch ci expected");
  (* too short a stream has no interval at all *)
  Alcotest.(check bool) "under 4 obs" true
    (Obs.Run_stats.batch_means [| 1.0; 2.0; 3.0 |] = None)

let test_batch_means_clamps_batch_count () =
  (* default 20 batches clamps to n/2 when the stream is short *)
  let xs = Array.init 10 (fun i -> float_of_int i) in
  match Obs.Run_stats.batch_means xs with
  | Some ci -> Alcotest.(check int) "clamped to n/2" 5 ci.Obs.Run_stats.ci_n
  | None -> Alcotest.fail "batch ci expected"

let test_moving_average () =
  let sm = Obs.Run_stats.moving_average ~window:1 [| 0.0; 3.0; 0.0; 3.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "interior" 1.0 sm.(1);
  Alcotest.(check (float 1e-9)) "interior" 2.0 sm.(2);
  Alcotest.(check (float 1e-9)) "edge uses shorter window" 1.5 sm.(0)

(* A curve that climbs for 20 samples and is flat afterwards: the
   diagnostic must locate the settle near the knee, judge a warmup that
   covers it adequate, and one that stops short of it inadequate. *)
let test_warmup_diagnostic () =
  let n = 100 in
  let times = Array.init n (fun i -> float_of_int i) in
  let values =
    Array.init n (fun i -> if i < 20 then float_of_int i /. 20.0 else 1.0)
  in
  let late =
    Obs.Run_stats.warmup_diagnostic ~warmup_end:40.0 ~times values
  in
  Alcotest.(check bool) "covering warmup adequate" true
    late.Obs.Run_stats.wu_adequate;
  Alcotest.(check (float 0.02)) "tail mean" 1.0 late.Obs.Run_stats.wu_tail_mean;
  (match late.Obs.Run_stats.wu_settle with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "settle %.1f near the knee" t)
        true
        (t >= 10.0 && t <= 35.0)
  | None -> Alcotest.fail "curve settles");
  let early =
    Obs.Run_stats.warmup_diagnostic ~warmup_end:5.0 ~times values
  in
  Alcotest.(check bool) "short warmup flagged" false
    early.Obs.Run_stats.wu_adequate;
  (* under 4 samples there is nothing to judge: vacuously adequate *)
  let tiny =
    Obs.Run_stats.warmup_diagnostic ~warmup_end:0.0
      ~times:[| 0.0; 1.0 |] [| 5.0; 6.0 |]
  in
  Alcotest.(check bool) "tiny series vacuous" true
    tiny.Obs.Run_stats.wu_adequate

let () =
  Alcotest.run "run_stats"
    [
      ( "student-t",
        [
          case "quantile table values" test_t_quantile_table;
          case "cdf/quantile round-trip" test_t_cdf_roundtrip;
        ] );
      ( "mean ci",
        [
          case "known value" test_mean_ci_known_value;
          case "single replication" test_mean_ci_single_rep;
          case "pooled relative width" test_pooled_rel_half_width;
        ] );
      ( "batch means",
        [
          case "known value + remainder" test_batch_means_known_value;
          case "batch-count clamp" test_batch_means_clamps_batch_count;
        ] );
      ( "warmup",
        [
          case "moving average" test_moving_average;
          case "welch diagnostic" test_warmup_diagnostic;
        ] );
    ]
