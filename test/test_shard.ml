(* Sharding: directory map, router dispatch, presumed-abort 2PC, and
   the N=1 bit-identity guarantee. *)

let quick_spec ?(n_clients = 8) ?(n_shards = 4) ?(pw = 0.2) ?(loc = 0.5)
    ?(seed = 3) ?(fault = Fault.Plan.none) algo =
  let cfg = Core.Sys_params.table5 ~n_clients () in
  let xp = Db.Xact_params.short_batch ~prob_write:pw ~inter_xact_loc:loc () in
  let spec =
    Core.Simulator.default_spec ~seed ~warmup_commits:50 ~measured_commits:300
      ~cfg ~xact_params:xp algo
  in
  { spec with Core.Simulator.n_shards; fault }

let all_algorithms =
  [
    Core.Proto.Two_phase Core.Proto.Inter;
    Core.Proto.Two_phase Core.Proto.Intra;
    Core.Proto.Certification Core.Proto.Inter;
    Core.Proto.Certification Core.Proto.Intra;
    Core.Proto.Callback;
    Core.Proto.No_wait { notify = None };
    Core.Proto.No_wait { notify = Some Core.Proto.Push };
    Core.Proto.No_wait { notify = Some Core.Proto.Invalidate };
  ]

(* ------------------------------------------------------------------ *)
(* Shard map                                                           *)
(* ------------------------------------------------------------------ *)

let test_map_covers_all_pages () =
  let db = Db.Database.create (Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ()) in
  List.iter
    (fun n ->
      let map = Shard.Shard_map.create db ~n_shards:n in
      let seen = Array.make n 0 in
      for p = 0 to Db.Database.n_pages db - 1 do
        let s = Shard.Shard_map.shard_of_page map p in
        Alcotest.(check bool) "shard in range" true (s >= 0 && s < n);
        seen.(s) <- seen.(s) + 1
      done;
      if n <= Db.Database.n_classes db then
        Array.iteri
          (fun s c ->
            if c = 0 then Alcotest.failf "shard %d of %d owns no pages" s n)
          seen)
    [ 1; 2; 3; 4; 7; 16 ]

let test_map_partition () =
  let db = Db.Database.create (Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ()) in
  let map = Shard.Shard_map.create db ~n_shards:4 in
  let pages = [ 0; 1; Db.Database.n_pages db - 1; 2; 0 ] in
  let parts = Shard.Shard_map.partition_pages map pages in
  let flat = List.concat_map snd parts in
  Alcotest.(check int) "no page lost" (List.length pages) (List.length flat);
  List.iter
    (fun (s, ps) ->
      List.iter
        (fun p ->
          Alcotest.(check int) "page on its shard" s
            (Shard.Shard_map.shard_of_page map p))
        ps)
    parts;
  let shards = List.map fst parts in
  Alcotest.(check bool) "ascending shards" true
    (List.sort compare shards = shards)

(* ------------------------------------------------------------------ *)
(* Sharded simulations                                                 *)
(* ------------------------------------------------------------------ *)

let test_sharded_every_algorithm_completes () =
  List.iter
    (fun algo ->
      let r = Shard.Shard_sim.run (quick_spec algo) in
      let name = Core.Proto.algorithm_name algo in
      if r.Core.Simulator.commits < 300 then
        Alcotest.failf "%s: only %d commits" name r.Core.Simulator.commits;
      if r.Core.Simulator.prepares = 0 then
        Alcotest.failf "%s: no 2PC prepares under 4 shards" name;
      if r.Core.Simulator.xshard_commits = 0 then
        Alcotest.failf "%s: no cross-shard commits under 4 shards" name;
      let shard_sum = Array.fold_left ( + ) 0 r.Core.Simulator.shard_commits in
      if shard_sum < r.Core.Simulator.xshard_commits then
        Alcotest.failf "%s: per-shard commit counters missing" name)
    all_algorithms

let test_sharded_determinism () =
  let algo = Core.Proto.Two_phase Core.Proto.Inter in
  let r1 = Shard.Shard_sim.run (quick_spec algo) in
  let r2 = Shard.Shard_sim.run (quick_spec algo) in
  Alcotest.(check (float 0.0))
    "same response" r1.Core.Simulator.mean_response
    r2.Core.Simulator.mean_response;
  Alcotest.(check int) "same events" r1.Core.Simulator.events
    r2.Core.Simulator.events;
  Alcotest.(check int) "same xshard commits" r1.Core.Simulator.xshard_commits
    r2.Core.Simulator.xshard_commits

let test_n1_bit_identical () =
  List.iter
    (fun algo ->
      let spec = quick_spec ~n_shards:1 algo in
      let a = Core.Simulator.run spec in
      let b = Shard.Shard_sim.run spec in
      let name = Core.Proto.algorithm_name algo in
      if a.Core.Simulator.mean_response <> b.Core.Simulator.mean_response then
        Alcotest.failf "%s: N=1 response drifted" name;
      if a.Core.Simulator.events <> b.Core.Simulator.events then
        Alcotest.failf "%s: N=1 event count drifted" name;
      if a.Core.Simulator.messages <> b.Core.Simulator.messages then
        Alcotest.failf "%s: N=1 messages drifted" name;
      if b.Core.Simulator.prepares <> 0 then
        Alcotest.failf "%s: N=1 ran 2PC" name)
    [ Core.Proto.Two_phase Core.Proto.Inter; Core.Proto.Callback ]

let test_core_refuses_sharded () =
  Alcotest.check_raises "core refuses n_shards>1"
    (Invalid_argument
       "Simulator.run: sharded specs (n_shards > 1) run via Shard.Sim")
    (fun () ->
      ignore
        (Core.Simulator.run
           (quick_spec ~n_shards:2 (Core.Proto.Two_phase Core.Proto.Inter))))

(* ------------------------------------------------------------------ *)
(* Log manager: prepare records and in-doubt resolution                *)
(* ------------------------------------------------------------------ *)

let fixed_seek =
  { Storage.Disk.seek_low = 0.035; seek_high = 0.035; transfer_time = 0.002 }

let test_prepare_in_doubt () =
  let eng = Sim.Engine.create () in
  let d =
    Storage.Disk.create eng ~rng:(Sim.Rng.create 1) ~name:"log" fixed_seek
  in
  let log = Storage.Log_manager.create eng ~disk:d () in
  Sim.Engine.spawn eng (fun () ->
      (* x7 prepares and never hears a decision; x9 prepares then
         commits; x11 prepares then aborts *)
      Storage.Log_manager.force_prepare log ~xid:7 ~decider:0
        ~read_pages:[ 1; 2 ] ~updates:[ (3, 1) ];
      Storage.Log_manager.force_prepare log ~xid:9 ~decider:2 ~read_pages:[]
        ~updates:[ (4, 1) ];
      Storage.Log_manager.force_prepare log ~xid:11 ~decider:1 ~read_pages:[]
        ~updates:[ (5, 1) ];
      Storage.Log_manager.force_commit log ~xid:9 ~updates:[ (4, 1) ]
        ~n_updates:1;
      Storage.Log_manager.force_abort log ~xid:11 ~n_updates:1);
  ignore (Sim.Engine.run eng ());
  Storage.Log_manager.crash log;
  (match Storage.Log_manager.in_doubt log with
  | [ (xid, decider, reads, updates) ] ->
      Alcotest.(check int) "in-doubt xid" 7 xid;
      Alcotest.(check int) "decider" 0 decider;
      Alcotest.(check (list int)) "read slice" [ 1; 2 ] reads;
      Alcotest.(check (list (pair int int))) "update slice" [ (3, 1) ] updates
  | l -> Alcotest.failf "expected exactly x7 in doubt, got %d" (List.length l));
  Alcotest.(check bool)
    "x9 commit durable" true
    (Storage.Log_manager.durable_commit_updates log ~xid:9 = Some [ (4, 1) ]);
  let outcomes = Storage.Log_manager.durable_outcomes log in
  Alcotest.(check bool) "x9 committed" true (List.mem (9, true) outcomes);
  Alcotest.(check bool) "x11 aborted" true (List.mem (11, false) outcomes);
  Alcotest.(check bool) "x7 undecided" true
    (not (List.mem_assoc 7 outcomes))

(* ------------------------------------------------------------------ *)
(* 2PC edge cases (satellite: coordinator amnesia, vote-abort,         *)
(* recovery retransmission, cross-shard deadlock)                      *)
(* ------------------------------------------------------------------ *)

let audited ?n_clients ?(n_shards = 4) ?(hot = false)
    ?(measured_commits = 150) ~fault algo =
  Experiments.Chaos.audit_run
    (Experiments.Chaos.spec ?n_clients ~n_shards ~hot ~measured_commits
       ~fault algo)

let check_ok name v =
  if not (Experiments.Chaos.ok v) then
    Alcotest.failf "%s: %s" name
      (String.concat " | " v.Experiments.Chaos.v_errors)

let result v = Option.get v.Experiments.Chaos.v_result

(* Coordinator crash between prepare and commit: the router forgets the
   attempt half the time, so prepared participants survive on client
   retransmission (idempotent re-vote) or the shard-to-shard termination
   protocol.  The full chaos audit must still pass. *)
let test_coordinator_amnesia () =
  let fault =
    { Fault.Plan.none with
      Fault.Plan.seed = 5;
      coord_crash_prob = 0.5;
      req_timeout = 1.0;
      max_backoff = 8.0;
    }
  in
  let v = audited ~fault (Core.Proto.Two_phase Core.Proto.Inter) in
  check_ok "amnesia" v;
  let r = result v in
  Alcotest.(check bool)
    "cross-shard commits happened" true
    (r.Core.Simulator.xshard_commits > 0);
  Alcotest.(check bool)
    "amnesia forced redrives or queries" true
    (r.Core.Simulator.retries > 0 || r.Core.Simulator.outcome_queries > 0)

(* One shard votes abort: certification on a hot two-class database split
   over two shards makes per-shard validation fail while the sibling
   slice would pass — the router must fan the global abort out and the
   history must stay serializable. *)
let test_vote_abort () =
  let v =
    audited ~n_shards:2 ~hot:true ~fault:{ Fault.Plan.none with seed = 2 }
      (Core.Proto.Certification Core.Proto.Inter)
  in
  check_ok "vote-abort" v;
  let r = result v in
  Alcotest.(check bool)
    "some cross-shard 2PC aborted" true
    (r.Core.Simulator.xshard_aborts > 0);
  Alcotest.(check bool)
    "and some committed" true
    (r.Core.Simulator.xshard_commits > 0)

(* Shard crashes mid-2PC: prepared slices replay as in-doubt, decisions
   retransmitted after recovery are answered from durable outcomes, and
   the per-shard durability + cross-shard atomicity audits must hold. *)
let test_recovery_retransmission () =
  List.iter
    (fun seed ->
      let v =
        audited ~fault:(Fault.Plan.shard_default ~seed)
          (Core.Proto.Two_phase Core.Proto.Inter)
      in
      check_ok (Printf.sprintf "recovery seed %d" seed) v;
      let r = result v in
      Alcotest.(check bool)
        "shards crashed" true
        (r.Core.Simulator.server_crashes > 0);
      Alcotest.(check bool)
        "cross-shard commits survived" true
        (r.Core.Simulator.xshard_commits > 0))
    [ 1; 2 ]

(* Cross-shard deadlock: with locking split across two shard lock tables,
   cycles only close in the union waits-for graph.  The run must resolve
   them (deadlock aborts, not a hang) and reach its commit target. *)
let test_cross_shard_deadlock () =
  let v =
    audited ~n_shards:2 ~hot:true ~fault:{ Fault.Plan.none with seed = 4 }
      (Core.Proto.Two_phase Core.Proto.Inter)
  in
  check_ok "cross-shard deadlock" v;
  let r = result v in
  Alcotest.(check bool)
    "deadlocks detected and broken" true
    (r.Core.Simulator.aborts_deadlock > 0)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "shard_map",
      [
        Alcotest.test_case "covers all pages" `Quick test_map_covers_all_pages;
        Alcotest.test_case "partition" `Quick test_map_partition;
      ] );
    ( "sharded_sim",
      [
        Alcotest.test_case "every algorithm completes" `Slow
          test_sharded_every_algorithm_completes;
        Alcotest.test_case "deterministic" `Quick test_sharded_determinism;
        Alcotest.test_case "n=1 bit-identical" `Quick test_n1_bit_identical;
        Alcotest.test_case "core refuses sharded" `Quick
          test_core_refuses_sharded;
      ] );
    ( "two_phase_commit",
      [
        Alcotest.test_case "prepare records and in-doubt" `Quick
          test_prepare_in_doubt;
        Alcotest.test_case "coordinator amnesia" `Slow
          test_coordinator_amnesia;
        Alcotest.test_case "one shard votes abort" `Slow test_vote_abort;
        Alcotest.test_case "recovery retransmission" `Slow
          test_recovery_retransmission;
        Alcotest.test_case "cross-shard deadlock" `Slow
          test_cross_shard_deadlock;
      ] );
  ]

let () = Alcotest.run "shard" suites
