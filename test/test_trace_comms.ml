(* Tests for protocol tracing (Core.Trace), charged messaging (Core.Comms),
   and a few cross-cutting behaviours that need a full simulation to
   observe. *)

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_inactive_by_default () =
  Core.Trace.clear_sink ();
  Alcotest.(check bool) "inactive" false (Core.Trace.active ());
  (* emitting with no sink is a no-op *)
  Core.Trace.emit 1.0 (Core.Trace.Disk_read { page = 3 })

let test_trace_sink_receives_events () =
  let events = ref [] in
  Core.Trace.set_sink (fun time ev -> events := (time, ev) :: !events);
  Alcotest.(check bool) "active" true (Core.Trace.active ());
  let cfg = Core.Sys_params.table5 ~n_clients:2 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.5 () in
  let spec =
    Core.Simulator.default_spec ~seed:4 ~warmup_commits:0 ~measured_commits:10
      ~cfg ~xact_params:xp (Core.Proto.Two_phase Core.Proto.Inter)
  in
  ignore (Core.Simulator.run spec);
  Core.Trace.clear_sink ();
  let evs = List.rev_map snd !events in
  let has pred = List.exists pred evs in
  Alcotest.(check bool) "client sends seen" true
    (has (function Core.Trace.Client_send _ -> true | _ -> false));
  Alcotest.(check bool) "server replies seen" true
    (has (function Core.Trace.Server_reply _ -> true | _ -> false));
  Alcotest.(check bool) "commits seen" true
    (has (function Core.Trace.Commit _ -> true | _ -> false));
  Alcotest.(check bool) "disk reads seen" true
    (has (function Core.Trace.Disk_read _ -> true | _ -> false));
  (* timestamps are non-decreasing *)
  let times = List.rev_map fst !events in
  let rec mono = function
    | a :: b :: rest -> a <= b && mono (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (mono times)

let test_trace_callback_events () =
  let cbs = ref 0 in
  Core.Trace.set_sink (fun _ ev ->
      match ev with Core.Trace.Callback _ -> incr cbs | _ -> ());
  let cfg = Core.Sys_params.table5 ~n_clients:4 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.75 () in
  let spec =
    Core.Simulator.default_spec ~seed:4 ~warmup_commits:0 ~measured_commits:80
      ~cfg ~xact_params:xp Core.Proto.Callback
  in
  ignore (Core.Simulator.run spec);
  Core.Trace.clear_sink ();
  Alcotest.(check bool) "callback requests traced" true (!cbs > 0)

let test_trace_event_strings () =
  let open Core.Trace in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln = 0 || go 0
  in
  List.iter
    (fun (ev, frag) ->
      let s = event_to_string ev in
      if not (contains s frag) then
        Alcotest.failf "%S should mention %S" s frag)
    [
      (Client_send { client = 3; xid = 9; what = "x" }, "client 3");
      (Server_reply { client = 3; xid = 9; what = "y" }, "client 3");
      (Lock_wait { client = 1; page = 5; mode = "X" }, "page 5");
      (Lock_grant { client = 1; page = 5; mode = "S" }, "granted");
      (Deadlock { victim_client = 2; cycle = [ 1; 2 ] }, "victim is client 2");
      (Abort { client = 1; xid = 4; reason = "deadlock" }, "deadlock");
      (Callback { holder = 7; page = 2 }, "client 7");
      (Notify { client = 1; page = 2; push = true }, "push");
      (Notify { client = 1; page = 2; push = false }, "invalidation");
      (Commit { client = 0; xid = 1; n_updates = 2 }, "2 updated");
      (Disk_read { page = 11 }, "page 11");
    ]

(* ------------------------------------------------------------------ *)
(* Comms                                                               *)
(* ------------------------------------------------------------------ *)

let mk_ports eng =
  let src =
    { Core.Proto.cpu = Sim.Facility.create eng ~name:"src" (); mips = 1.0 }
  in
  let dst =
    { Core.Proto.cpu = Sim.Facility.create eng ~name:"dst" (); mips = 2.0 }
  in
  (src, dst)

let test_comms_charges_both_ends () =
  let eng = Sim.Engine.create () in
  let src, dst = mk_ports eng in
  let net =
    Net.Network.create eng ~rng:(Sim.Rng.create 3)
      { Net.Network.net_delay = 0.0; packet_size = 4096; msg_inst = 10_000 }
  in
  let delivered = ref false in
  Sim.Engine.spawn eng (fun () ->
      Core.Comms.send net ~msg_inst:10_000 ~src ~dst ~bytes:100
        ~deliver:(fun _ -> delivered := true));
  ignore (Sim.Engine.run eng ());
  Alcotest.(check bool) "delivered" true !delivered;
  (* 10k instructions: 10ms at 1 MIPS on src, 5ms at 2 MIPS on dst *)
  Alcotest.(check (float 1e-9)) "src busy" 0.01
    (Sim.Facility.total_service_time src.Core.Proto.cpu);
  Alcotest.(check (float 1e-9)) "dst busy" 0.005
    (Sim.Facility.total_service_time dst.Core.Proto.cpu)

let test_comms_multi_packet_scales_cpu () =
  let eng = Sim.Engine.create () in
  let src, dst = mk_ports eng in
  let net =
    Net.Network.create eng ~rng:(Sim.Rng.create 3)
      { Net.Network.net_delay = 0.0; packet_size = 4096; msg_inst = 1_000 }
  in
  Sim.Engine.spawn eng (fun () ->
      (* 3 packets *)
      Core.Comms.send net ~msg_inst:1_000 ~src ~dst ~bytes:(4096 * 3)
        ~deliver:(fun _ -> ()));
  ignore (Sim.Engine.run eng ());
  Alcotest.(check (float 1e-9)) "3 packets x 1ms" 0.003
    (Sim.Facility.total_service_time src.Core.Proto.cpu)

let test_comms_zero_cost_free () =
  let eng = Sim.Engine.create () in
  let src, dst = mk_ports eng in
  let net =
    Net.Network.create eng ~rng:(Sim.Rng.create 3)
      { Net.Network.net_delay = 0.0; packet_size = 4096; msg_inst = 0 }
  in
  let at = ref (-1.0) in
  Sim.Engine.spawn eng (fun () ->
      Core.Comms.send net ~msg_inst:0 ~src ~dst ~bytes:4096 ~deliver:(fun _ ->
          at := Sim.Engine.now eng));
  ignore (Sim.Engine.run eng ());
  Alcotest.(check (float 0.0)) "instant with all costs zero" 0.0 !at

(* ------------------------------------------------------------------ *)
(* Cross-cutting simulation behaviours                                 *)
(* ------------------------------------------------------------------ *)

let test_interactive_defers_async_messages () =
  (* the paper's §5.5 implementation detail: with think-time deferral off
     vs on, both must run to completion; deferral may cost the requesters *)
  List.iter
    (fun process_async ->
      let cfg =
        {
          (Core.Sys_params.table5 ~n_clients:4 ()) with
          Core.Sys_params.process_async_during_think = process_async;
        }
      in
      let xp =
        Db.Xact_params.interactive ~prob_write:0.5 ~inter_xact_loc:0.5 ()
      in
      let spec =
        Core.Simulator.default_spec ~seed:6 ~warmup_commits:5
          ~measured_commits:40 ~cfg ~xact_params:xp Core.Proto.Callback
      in
      let r = Core.Simulator.run spec in
      Alcotest.(check int) "completes" 40 r.Core.Simulator.commits)
    [ false; true ]

let test_tiny_cache_still_correct () =
  (* cache barely larger than one transaction: constant eviction traffic,
     including retained-lock releases under callback locking *)
  List.iter
    (fun algo ->
      let cfg =
        { (Core.Sys_params.table5 ~n_clients:5 ()) with Core.Sys_params.cache_size = 15 }
      in
      let xp = Db.Xact_params.short_batch ~prob_write:0.3 ~inter_xact_loc:0.6 () in
      let audit = Cc.History.create () in
      let spec =
        Core.Simulator.default_spec ~seed:8 ~warmup_commits:30
          ~measured_commits:250 ~cfg ~xact_params:xp algo
      in
      let r = Core.Simulator.run ~audit spec in
      Alcotest.(check int)
        (Core.Proto.algorithm_name algo ^ " completes")
        250 r.Core.Simulator.commits;
      match Cc.History.check audit with
      | Cc.History.Serializable -> ()
      | Cc.History.Cycle _ ->
          Alcotest.failf "%s with tiny cache not serializable"
            (Core.Proto.algorithm_name algo))
    [
      Core.Proto.Two_phase Core.Proto.Inter;
      Core.Proto.Certification Core.Proto.Inter;
      Core.Proto.Callback;
      Core.Proto.No_wait { notify = Some Core.Proto.Push };
    ]

let test_single_client_never_conflicts () =
  List.iter
    (fun algo ->
      let cfg = Core.Sys_params.table5 ~n_clients:1 () in
      let xp = Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.5 () in
      let spec =
        Core.Simulator.default_spec ~seed:2 ~warmup_commits:10
          ~measured_commits:150 ~cfg ~xact_params:xp algo
      in
      let r = Core.Simulator.run spec in
      Alcotest.(check int)
        (Core.Proto.algorithm_name algo ^ " aborts")
        0 r.Core.Simulator.aborts)
    [
      Core.Proto.Two_phase Core.Proto.Inter;
      Core.Proto.Certification Core.Proto.Inter;
      Core.Proto.Callback;
      Core.Proto.No_wait { notify = None };
    ]

let suites =
  [
    ( "trace",
      [
        case "inactive by default" test_trace_inactive_by_default;
        case "sink receives events" test_trace_sink_receives_events;
        case "callback events traced" test_trace_callback_events;
        case "event strings" test_trace_event_strings;
      ] );
    ( "comms",
      [
        case "charges both ends" test_comms_charges_both_ends;
        case "multi-packet CPU scaling" test_comms_multi_packet_scales_cpu;
        case "zero cost is free" test_comms_zero_cost_free;
      ] );
    ( "cross-cutting",
      [
        case "interactive async deferral" test_interactive_defers_async_messages;
        case "tiny cache correct" test_tiny_cache_still_correct;
        case "single client never aborts" test_single_client_never_conflicts;
      ] );
  ]

let () = Alcotest.run "trace-comms" suites
