(* Tests for the lock manager, waits-for graph, and version table (lib/cc). *)

open Cc

let case name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let no_wake () = ()

let expect_granted msg = function
  | Lock_table.Granted -> ()
  | Lock_table.Blocked _ -> Alcotest.failf "%s: unexpectedly blocked" msg

let expect_blocked msg = function
  | Lock_table.Granted -> Alcotest.failf "%s: unexpectedly granted" msg
  | Lock_table.Blocked bs -> bs

(* ------------------------------------------------------------------ *)
(* Lock_table: grants and conflicts                                    *)
(* ------------------------------------------------------------------ *)

let test_s_locks_share () =
  let lt = Lock_table.create () in
  expect_granted "t1 S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "t2 S" (Lock_table.request lt ~page:1 2 S ~wake:no_wake);
  Alcotest.(check int) "two holders" 2 (List.length (Lock_table.holders lt ~page:1));
  Lock_table.check_invariants lt

let test_x_excludes () =
  let lt = Lock_table.create () in
  expect_granted "t1 X" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  let bs = expect_blocked "t2 S" (Lock_table.request lt ~page:1 2 S ~wake:no_wake) in
  Alcotest.(check (list int)) "blocked by t1" [ 1 ] bs;
  let bs = expect_blocked "t3 X" (Lock_table.request lt ~page:1 3 X ~wake:no_wake) in
  (* t3 waits for holder 1 and earlier waiter 2 *)
  Alcotest.(check (list int)) "blocked by both" [ 1; 2 ] bs;
  Lock_table.check_invariants lt

let test_reentrant_requests () =
  let lt = Lock_table.create () in
  expect_granted "S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "S again" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "upgrade" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  expect_granted "S while X" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "X again" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  Alcotest.(check (option bool)) "holds X"
    (Some true)
    (Option.map (fun m -> m = Lock_table.X) (Lock_table.held lt ~page:1 1))

let test_release_grants_next () =
  let lt = Lock_table.create () in
  let woken = ref [] in
  expect_granted "t1 X" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  ignore
    (expect_blocked "t2 S"
       (Lock_table.request lt ~page:1 2 S ~wake:(fun () -> woken := 2 :: !woken)));
  ignore
    (expect_blocked "t3 S"
       (Lock_table.request lt ~page:1 3 S ~wake:(fun () -> woken := 3 :: !woken)));
  Lock_table.release lt ~page:1 1;
  (* both S waiters granted together *)
  Alcotest.(check (list int)) "woken order" [ 2; 3 ] (List.rev !woken);
  Alcotest.(check int) "two S holders" 2 (List.length (Lock_table.holders lt ~page:1));
  Lock_table.check_invariants lt

let test_fcfs_no_reader_overtake () =
  (* S request behind a queued X request must wait (strict FCFS) *)
  let lt = Lock_table.create () in
  expect_granted "t1 S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  ignore (expect_blocked "t2 X" (Lock_table.request lt ~page:1 2 X ~wake:no_wake));
  let bs = expect_blocked "t3 S" (Lock_table.request lt ~page:1 3 S ~wake:no_wake) in
  Alcotest.(check (list int)) "t3 waits for t2" [ 2 ] bs;
  Lock_table.check_invariants lt

let test_upgrade_sole_holder_immediate () =
  let lt = Lock_table.create () in
  expect_granted "S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "upgrade" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  Alcotest.(check (option string)) "mode X" (Some "X")
    (Option.map Lock_table.mode_to_string (Lock_table.held lt ~page:1 1))

let test_upgrade_waits_for_other_readers () =
  let lt = Lock_table.create () in
  let woken = ref false in
  expect_granted "t1 S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "t2 S" (Lock_table.request lt ~page:1 2 S ~wake:no_wake);
  let bs =
    expect_blocked "t1 upgrade"
      (Lock_table.request lt ~page:1 1 X ~wake:(fun () -> woken := true))
  in
  Alcotest.(check (list int)) "waits for t2" [ 2 ] bs;
  Lock_table.release lt ~page:1 2;
  Alcotest.(check bool) "woken on release" true !woken;
  Alcotest.(check (option string)) "now X" (Some "X")
    (Option.map Lock_table.mode_to_string (Lock_table.held lt ~page:1 1));
  Lock_table.check_invariants lt

let test_upgrade_jumps_queue () =
  (* an upgrade is served before ordinary waiters *)
  let lt = Lock_table.create () in
  let order = ref [] in
  expect_granted "t1 S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "t2 S" (Lock_table.request lt ~page:1 2 S ~wake:no_wake);
  ignore
    (expect_blocked "t3 X"
       (Lock_table.request lt ~page:1 3 X ~wake:(fun () -> order := 3 :: !order)));
  ignore
    (expect_blocked "t1 upgrade"
       (Lock_table.request lt ~page:1 1 X ~wake:(fun () -> order := 1 :: !order)));
  Lock_table.release lt ~page:1 2;
  (* t1's upgrade granted first; t3 still waits for t1 *)
  Alcotest.(check (list int)) "upgrade first" [ 1 ] (List.rev !order);
  Lock_table.release lt ~page:1 1;
  Alcotest.(check (list int)) "then t3" [ 1; 3 ] (List.rev !order);
  Lock_table.check_invariants lt

let test_release_all () =
  let lt = Lock_table.create () in
  expect_granted "p1" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  expect_granted "p2" (Lock_table.request lt ~page:2 1 X ~wake:no_wake);
  expect_granted "p3" (Lock_table.request lt ~page:3 1 S ~wake:no_wake);
  let pages = List.sort Int.compare (Lock_table.release_all lt 1) in
  Alcotest.(check (list int)) "released" [ 1; 2; 3 ] pages;
  Alcotest.(check int) "no locks" 0 (Lock_table.locks_held lt);
  Alcotest.(check (list int)) "pages_held_by empty" [] (Lock_table.pages_held_by lt 1)

let test_cancel_wait_unblocks () =
  let lt = Lock_table.create () in
  let woken = ref false in
  expect_granted "t1 S" (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  ignore (expect_blocked "t2 X" (Lock_table.request lt ~page:1 2 X ~wake:no_wake));
  ignore
    (expect_blocked "t3 S"
       (Lock_table.request lt ~page:1 3 S ~wake:(fun () -> woken := true)));
  Lock_table.cancel_wait lt ~page:1 2;
  Alcotest.(check bool) "t3 granted after cancel" true !woken;
  Lock_table.check_invariants lt

let test_cancel_all_waits () =
  let lt = Lock_table.create () in
  expect_granted "t1 X p1" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  expect_granted "t1 X p2" (Lock_table.request lt ~page:2 1 X ~wake:no_wake);
  ignore (expect_blocked "t2 p1" (Lock_table.request lt ~page:1 2 S ~wake:no_wake));
  ignore (expect_blocked "t2 p2" (Lock_table.request lt ~page:2 2 S ~wake:no_wake));
  Lock_table.cancel_all_waits lt 2;
  Alcotest.(check (list (pair int string))) "no waiters p1" []
    (List.map (fun (o, m) -> (o, Lock_table.mode_to_string m)) (Lock_table.waiting lt ~page:1));
  Alcotest.(check (list (pair int string))) "no waiters p2" []
    (List.map (fun (o, m) -> (o, Lock_table.mode_to_string m)) (Lock_table.waiting lt ~page:2))

let test_downgrade () =
  let lt = Lock_table.create () in
  let woken = ref false in
  expect_granted "t1 X" (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  ignore
    (expect_blocked "t2 S"
       (Lock_table.request lt ~page:1 2 S ~wake:(fun () -> woken := true)));
  Lock_table.downgrade lt ~page:1 1;
  Alcotest.(check bool) "S waiter granted" true !woken;
  Alcotest.(check (option string)) "t1 now S" (Some "S")
    (Option.map Lock_table.mode_to_string (Lock_table.held lt ~page:1 1));
  Lock_table.check_invariants lt

let prop_lock_invariants_random_ops =
  QCheck.Test.make ~name:"random op sequences keep invariants" ~count:300
    QCheck.(
      list_of_size
        Gen.(int_range 1 60)
        (triple (int_range 0 4) (int_range 0 3) bool))
    (fun ops ->
      let lt = Lock_table.create () in
      List.iter
        (fun (owner, page, exclusive) ->
          match (exclusive, Lock_table.held lt ~page owner) with
          | _, Some _ ->
              (* flip a coin between release and re-request via parity *)
              if (owner + page) mod 2 = 0 then Lock_table.release lt ~page owner
              else
                ignore
                  (Lock_table.request lt ~page owner
                     (if exclusive then X else S)
                     ~wake:no_wake)
          | true, None ->
              ignore (Lock_table.request lt ~page owner X ~wake:no_wake)
          | false, None ->
              ignore (Lock_table.request lt ~page owner S ~wake:no_wake))
        ops;
      Lock_table.check_invariants lt;
      true)

(* ------------------------------------------------------------------ *)
(* Waits_for                                                           *)
(* ------------------------------------------------------------------ *)

let test_no_cycle () =
  let g = Waits_for.create () in
  Waits_for.add_edge g 1 2;
  Waits_for.add_edge g 2 3;
  Alcotest.(check (option (list int))) "acyclic" None (Waits_for.find_cycle_from g 1)

let test_self_edge_ignored () =
  let g = Waits_for.create () in
  Waits_for.add_edge g 1 1;
  Alcotest.(check (list int)) "no succ" [] (Waits_for.succ g 1)

let test_two_cycle () =
  let g = Waits_for.create () in
  Waits_for.add_edge g 1 2;
  Waits_for.add_edge g 2 1;
  match Waits_for.find_cycle_from g 1 with
  | Some cycle ->
      Alcotest.(check (list int)) "cycle nodes" [ 1; 2 ] (List.sort Int.compare cycle)
  | None -> Alcotest.fail "cycle not found"

let test_long_cycle () =
  let g = Waits_for.create () in
  List.iter (fun (a, b) -> Waits_for.add_edge g a b)
    [ (1, 2); (2, 3); (3, 4); (4, 1); (2, 9); (9, 10) ];
  match Waits_for.find_cycle_from g 1 with
  | Some cycle ->
      Alcotest.(check (list int)) "cycle" [ 1; 2; 3; 4 ] (List.sort Int.compare cycle)
  | None -> Alcotest.fail "cycle not found"

let test_cycle_not_through_start () =
  (* a cycle elsewhere must not be reported for this start node *)
  let g = Waits_for.create () in
  List.iter (fun (a, b) -> Waits_for.add_edge g a b) [ (1, 2); (2, 3); (3, 2) ];
  Alcotest.(check (option (list int))) "not through 1" None
    (Waits_for.find_cycle_from g 1)

let test_of_lock_table_deadlock () =
  let lt = Lock_table.create () in
  ignore (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  ignore (Lock_table.request lt ~page:2 2 X ~wake:no_wake);
  ignore (Lock_table.request lt ~page:2 1 X ~wake:no_wake);
  ignore (Lock_table.request lt ~page:1 2 X ~wake:no_wake);
  let g = Waits_for.of_lock_table lt in
  (match Waits_for.find_cycle_from g 1 with
  | Some c -> Alcotest.(check (list int)) "deadlock" [ 1; 2 ] (List.sort Int.compare c)
  | None -> Alcotest.fail "deadlock not detected");
  match Waits_for.find_cycle_from g 2 with
  | Some _ -> ()
  | None -> Alcotest.fail "deadlock not detected from 2"

let test_upgrade_deadlock_detected () =
  (* two S holders both upgrading: the classic conversion deadlock *)
  let lt = Lock_table.create () in
  ignore (Lock_table.request lt ~page:1 1 S ~wake:no_wake);
  ignore (Lock_table.request lt ~page:1 2 S ~wake:no_wake);
  ignore (Lock_table.request lt ~page:1 1 X ~wake:no_wake);
  ignore (Lock_table.request lt ~page:1 2 X ~wake:no_wake);
  let g = Waits_for.of_lock_table lt in
  match Waits_for.find_cycle_from g 2 with
  | Some c -> Alcotest.(check (list int)) "conversion deadlock" [ 1; 2 ] (List.sort Int.compare c)
  | None -> Alcotest.fail "conversion deadlock missed"

let test_pick_victim_youngest () =
  let start_time = function 1 -> 10.0 | 2 -> 30.0 | 3 -> 20.0 | _ -> 0.0 in
  Alcotest.(check int) "youngest is 2" 2
    (Waits_for.pick_victim ~start_time [ 1; 2; 3 ]);
  Alcotest.(check int) "tie broken by id" 3
    (Waits_for.pick_victim ~start_time:(fun _ -> 1.0) [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Version_table                                                       *)
(* ------------------------------------------------------------------ *)

let test_versions_start_at_zero () =
  let vt = Version_table.create () in
  Alcotest.(check int) "initial" 0 (Version_table.current vt 5);
  Alcotest.(check bool) "current" true (Version_table.is_current vt ~page:5 ~version:0)

let test_bump_invalidates () =
  let vt = Version_table.create () in
  let v1 = Version_table.bump vt 5 in
  Alcotest.(check int) "v1" 1 v1;
  Alcotest.(check bool) "old copy stale" false
    (Version_table.is_current vt ~page:5 ~version:0);
  Alcotest.(check bool) "new copy valid" true
    (Version_table.is_current vt ~page:5 ~version:1);
  Alcotest.(check int) "pages updated" 1 (Version_table.pages_updated vt)

let prop_versions_monotonic =
  QCheck.Test.make ~name:"bump is strictly monotonic" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 10))
    (fun pages ->
      let vt = Version_table.create () in
      List.for_all
        (fun p ->
          let before = Version_table.current vt p in
          let after = Version_table.bump vt p in
          after = before + 1)
        pages)


(* ------------------------------------------------------------------ *)
(* History (serializability checker)                                   *)
(* ------------------------------------------------------------------ *)

let commit_rec xid reads writes = { History.xid; reads; writes }

let expect_serializable h =
  match History.check h with
  | History.Serializable -> ()
  | History.Cycle c ->
      Alcotest.failf "unexpected cycle: [%s]"
        (String.concat "," (List.map string_of_int c))

let expect_cycle h members =
  match History.check h with
  | History.Serializable -> Alcotest.fail "expected a cycle"
  | History.Cycle c ->
      Alcotest.(check (list int)) "cycle members" members
        (List.sort Int.compare c)

let test_history_empty () =
  let h = History.create () in
  expect_serializable h;
  Alcotest.(check int) "empty" 0 (History.size h)

let test_history_serial_chain () =
  (* T1 writes p@1; T2 reads p@1 and writes p@2; T3 reads p@2 *)
  let h = History.create () in
  History.add_commit h (commit_rec 1 [ (7, 0) ] [ (7, 1) ]);
  History.add_commit h (commit_rec 2 [ (7, 1) ] [ (7, 2) ]);
  History.add_commit h (commit_rec 3 [ (7, 2) ] []);
  expect_serializable h

let test_history_write_skew_cycle () =
  (* classic write skew: T1 reads q@0 writes p@1; T2 reads p@0 writes q@1.
     T1 -rw-> T2 (read q@0, T2 wrote q@1) and T2 -rw-> T1: cycle. *)
  let h = History.create () in
  History.add_commit h (commit_rec 1 [ (20, 0) ] [ (10, 1) ]);
  History.add_commit h (commit_rec 2 [ (10, 0) ] [ (20, 1) ]);
  expect_cycle h [ 1; 2 ]

let test_history_lost_update_cycle () =
  (* both read p@0, both write: versions 1 and 2; the reader of 0 that
     wrote 2 creates rw and ww edges forming a cycle with the other *)
  let h = History.create () in
  History.add_commit h (commit_rec 1 [ (5, 0) ] [ (5, 1) ]);
  History.add_commit h (commit_rec 2 [ (5, 0) ] [ (5, 2) ]);
  expect_cycle h [ 1; 2 ]

let test_history_duplicate_writer_rejected () =
  let h = History.create () in
  History.add_commit h (commit_rec 1 [] [ (5, 1) ]);
  Alcotest.check_raises "double install"
    (Invalid_argument
       "History.add_commit: page 5 version 1 written by both 1 and 2")
    (fun () -> History.add_commit h (commit_rec 2 [] [ (5, 1) ]))

let test_history_concurrent_disjoint () =
  let h = History.create () in
  History.add_commit h (commit_rec 1 [ (1, 0) ] [ (1, 1) ]);
  History.add_commit h (commit_rec 2 [ (2, 0) ] [ (2, 1) ]);
  History.add_commit h (commit_rec 3 [ (1, 1); (2, 1) ] []);
  expect_serializable h

let test_history_edges () =
  let h = History.create () in
  History.add_commit h (commit_rec 1 [] [ (5, 1) ]);
  History.add_commit h (commit_rec 2 [ (5, 1) ] [ (5, 2) ]);
  let es = History.edges h in
  Alcotest.(check bool) "wr edge present" true
    (List.exists (fun (a, b, r) -> a = 1 && b = 2 && r = "wr") es);
  Alcotest.(check bool) "ww edge present" true
    (List.exists (fun (a, b, r) -> a = 1 && b = 2 && r = "ww") es)

let prop_history_version_chains_serializable =
  QCheck.Test.make ~name:"sequential version chains are serializable"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 5))
    (fun pages ->
      (* transaction k reads the previous version of its page and installs
         the next: a serial history by construction *)
      let h = History.create () in
      let version = Hashtbl.create 8 in
      List.iteri
        (fun k page ->
          let v = Option.value (Hashtbl.find_opt version page) ~default:0 in
          Hashtbl.replace version page (v + 1);
          History.add_commit h (commit_rec (k + 1) [ (page, v) ] [ (page, v + 1) ]))
        pages;
      History.check h = History.Serializable)


let prop_lock_queue_drains =
  (* liveness: once every holder releases, every queued request must have
     been woken and granted — no waiter is stranded *)
  QCheck.Test.make ~name:"queue drains when holders release" ~count:300
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (triple (int_range 0 5) (int_range 0 3) bool))
    (fun ops ->
      let lt = Lock_table.create () in
      let woken = ref 0 and blocked = ref 0 in
      List.iter
        (fun (owner, page, exclusive) ->
          (* the table's contract: an owner never re-requests while it is
             already queued on the page (the simulator's per-transaction
             chain guarantees this) *)
          if not (List.mem_assoc owner (Lock_table.waiting lt ~page)) then
            match
              Lock_table.request lt ~page owner
                (if exclusive then X else S)
                ~wake:(fun () -> incr woken)
            with
            | Lock_table.Granted -> ()
            | Lock_table.Blocked _ -> incr blocked)
        ops;
      (* release every held lock until the table is empty *)
      let rec drain guard =
        if guard = 0 then false
        else if Lock_table.locks_held lt = 0 then true
        else begin
          for owner = 0 to 5 do
            ignore (Lock_table.release_all lt owner)
          done;
          drain (guard - 1)
        end
      in
      drain 100 && !woken = !blocked
      && List.for_all
           (fun page -> Lock_table.waiting lt ~page = [])
           [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Lock_table: differential check against the list-based original      *)
(* ------------------------------------------------------------------ *)

(* The original association-list implementation the map-indexed table
   replaced, kept verbatim as an executable reference model.  Every
   operation is O(holders + waiters) here, which is fine at test sizes
   and makes the semantics easy to audit by eye. *)
module Model = struct
  type mode = Lock_table.mode = S | X

  type owner = int

  type waiter = {
    w_owner : owner;
    w_mode : mode;
    w_upgrade : bool;
    w_wake : unit -> unit;
  }

  type entry = {
    mutable held : (owner * mode) list;
    mutable queue : waiter list; (* FCFS; upgrades inserted at the front *)
  }

  type t = {
    pages : (int, entry) Hashtbl.t;
    by_owner : (owner, (int, unit) Hashtbl.t) Hashtbl.t;
  }

  let create () = { pages = Hashtbl.create 64; by_owner = Hashtbl.create 16 }

  let entry t page =
    match Hashtbl.find_opt t.pages page with
    | Some e -> e
    | None ->
        let e = { held = []; queue = [] } in
        Hashtbl.replace t.pages page e;
        e

  let note_held t owner page =
    let set =
      match Hashtbl.find_opt t.by_owner owner with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 16 in
          Hashtbl.replace t.by_owner owner s;
          s
    in
    Hashtbl.replace set page ()

  let note_released t owner page =
    match Hashtbl.find_opt t.by_owner owner with
    | None -> ()
    | Some s ->
        Hashtbl.remove s page;
        if Hashtbl.length s = 0 then Hashtbl.remove t.by_owner owner

  let drop_entry_if_empty t page e =
    if e.held = [] && e.queue = [] then Hashtbl.remove t.pages page

  let compatible mode holders ~except =
    match mode with
    | S -> List.for_all (fun (o, m) -> o = except || m = S) holders
    | X -> List.for_all (fun (o, _) -> o = except) holders

  let rec grant_from_queue t page e =
    match e.queue with
    | [] -> ()
    | w :: rest ->
        let can =
          if w.w_upgrade then
            match e.held with
            | [ (o, S) ] when o = w.w_owner -> true
            | _ -> false
          else compatible w.w_mode e.held ~except:w.w_owner
        in
        if can then begin
          e.queue <- rest;
          (if w.w_upgrade then
             e.held <-
               List.map
                 (fun (o, m) -> if o = w.w_owner then (o, X) else (o, m))
                 e.held
           else begin
             e.held <- (w.w_owner, w.w_mode) :: e.held;
             note_held t w.w_owner page
           end);
          w.w_wake ();
          grant_from_queue t page e
        end

  type outcome = Granted | Blocked of owner list

  let blockers_for e ~owner ~mode ~upgrade =
    let holder_blockers =
      List.filter_map
        (fun (o, m) ->
          if o = owner then None
          else
            match (mode, m) with
            | S, S -> None
            | S, X | X, S | X, X -> Some o)
        e.held
    in
    let queue_blockers =
      if upgrade then []
      else
        List.filter_map
          (fun w ->
            if w.w_owner = owner then None
            else
              match (mode, w.w_mode) with
              | S, S -> None
              | S, X | X, S | X, X -> Some w.w_owner)
          e.queue
    in
    List.sort_uniq Int.compare (holder_blockers @ queue_blockers)

  let request t ~page owner mode ~wake =
    let e = entry t page in
    if List.exists (fun w -> w.w_owner = owner) e.queue then
      Blocked
        (match List.find_opt (fun w -> w.w_owner = owner) e.queue with
        | Some w -> blockers_for e ~owner ~mode:w.w_mode ~upgrade:w.w_upgrade
        | None -> [])
    else
      match List.assoc_opt owner e.held with
      | Some X -> Granted
      | Some S when mode = S -> Granted
      | Some S ->
          if List.length e.held = 1 then begin
            e.held <- [ (owner, X) ];
            Granted
          end
          else begin
            let blockers = blockers_for e ~owner ~mode:X ~upgrade:true in
            e.queue <-
              { w_owner = owner; w_mode = X; w_upgrade = true; w_wake = wake }
              :: e.queue;
            Blocked blockers
          end
      | None ->
          let free_now = e.queue = [] && compatible mode e.held ~except:owner in
          if free_now then begin
            e.held <- (owner, mode) :: e.held;
            note_held t owner page;
            Granted
          end
          else begin
            let blockers = blockers_for e ~owner ~mode ~upgrade:false in
            e.queue <-
              e.queue
              @ [
                  {
                    w_owner = owner;
                    w_mode = mode;
                    w_upgrade = false;
                    w_wake = wake;
                  };
                ];
            Blocked blockers
          end

  let release t ~page owner =
    match Hashtbl.find_opt t.pages page with
    | None -> ()
    | Some e ->
        if List.mem_assoc owner e.held then begin
          e.held <- List.remove_assoc owner e.held;
          note_released t owner page;
          e.queue <-
            List.map
              (fun w ->
                if w.w_owner = owner && w.w_upgrade then
                  { w with w_upgrade = false }
                else w)
              e.queue;
          grant_from_queue t page e;
          drop_entry_if_empty t page e
        end

  let release_all t owner =
    match Hashtbl.find_opt t.by_owner owner with
    | None -> []
    | Some s ->
        let pages = Hashtbl.fold (fun p () acc -> p :: acc) s [] in
        List.iter (fun p -> release t ~page:p owner) pages;
        pages

  let cancel_wait t ~page owner =
    match Hashtbl.find_opt t.pages page with
    | None -> ()
    | Some e ->
        e.queue <- List.filter (fun w -> w.w_owner <> owner) e.queue;
        grant_from_queue t page e;
        drop_entry_if_empty t page e

  let cancel_all_waits t owner =
    let pages =
      Hashtbl.fold
        (fun page e acc ->
          if List.exists (fun w -> w.w_owner = owner) e.queue then page :: acc
          else acc)
        t.pages []
    in
    List.iter (fun page -> cancel_wait t ~page owner) pages

  let downgrade t ~page owner =
    match Hashtbl.find_opt t.pages page with
    | None -> ()
    | Some e -> (
        match List.assoc_opt owner e.held with
        | Some X ->
            e.held <-
              List.map
                (fun (o, m) -> if o = owner then (o, S) else (o, m))
                e.held;
            grant_from_queue t page e
        | Some S | None -> ())

  let held t ~page owner =
    match Hashtbl.find_opt t.pages page with
    | None -> None
    | Some e -> List.assoc_opt owner e.held

  let holders t ~page =
    match Hashtbl.find_opt t.pages page with None -> [] | Some e -> e.held

  let waiting t ~page =
    match Hashtbl.find_opt t.pages page with
    | None -> []
    | Some e -> List.map (fun w -> (w.w_owner, w.w_mode)) e.queue

  let pages_held_by t owner =
    match Hashtbl.find_opt t.by_owner owner with
    | None -> []
    | Some s -> Hashtbl.fold (fun p () acc -> p :: acc) s []

  let all_waiting t =
    Hashtbl.fold
      (fun page e acc ->
        List.fold_left
          (fun acc w -> (page, w.w_owner, w.w_mode) :: acc)
          acc e.queue)
      t.pages []

  let blockers t ~page owner =
    match Hashtbl.find_opt t.pages page with
    | None -> []
    | Some e -> (
        match List.find_opt (fun w -> w.w_owner = owner) e.queue with
        | None -> []
        | Some w ->
            let earlier =
              let rec take acc = function
                | [] -> List.rev acc
                | x :: _ when x.w_owner = owner && x.w_mode = w.w_mode ->
                    List.rev acc
                | x :: rest -> take (x :: acc) rest
              in
              take [] e.queue
            in
            blockers_for
              { e with queue = earlier }
              ~owner ~mode:w.w_mode ~upgrade:w.w_upgrade)

  let locks_held t =
    Hashtbl.fold (fun _ e acc -> acc + List.length e.held) t.pages 0

  let waiting_count t =
    Hashtbl.fold (fun _ e acc -> acc + List.length e.queue) t.pages 0
end

(* Drive both tables through the same random operation sequence and
   demand agreement after every step: request outcomes (blocker sets),
   wake callbacks, and every observable accessor.  The one sanctioned
   divergence is wake *order* under the bulk operations — the rewrite
   visits pages in ascending page order where the original used hash
   order — so those two ops compare wake logs as sets; everything else,
   including FCFS wake order within a page, must match exactly. *)
let prop_lock_matches_list_model =
  QCheck.Test.make ~name:"map table matches list-based reference model"
    ~count:500
    QCheck.(
      list_of_size Gen.(int_range 1 80)
        (triple (int_bound 9) (int_bound 4) (int_bound 5)))
    (fun ops ->
      let lt = Lock_table.create () in
      let m = Model.create () in
      let pages = [ 0; 1; 2; 3; 4; 5 ] and owners = [ 0; 1; 2; 3; 4 ] in
      let log_lt = ref [] and log_m = ref [] in
      let drain r =
        let l = List.rev !r in
        r := [];
        l
      in
      let sorted l = List.sort compare l in
      let fail i what =
        QCheck.Test.fail_reportf "op %d: %s diverges from the model" i what
      in
      let outcome_eq o1 o2 =
        match (o1, o2) with
        | Lock_table.Granted, Model.Granted -> true
        | Lock_table.Blocked a, Model.Blocked b -> sorted a = sorted b
        | _ -> false
      in
      let step i (kind, owner, page) =
        let request mode =
          let o1 =
            Lock_table.request lt ~page owner mode ~wake:(fun () ->
                log_lt := (page, owner) :: !log_lt)
          in
          let o2 =
            Model.request m ~page owner mode ~wake:(fun () ->
                log_m := (page, owner) :: !log_m)
          in
          if not (outcome_eq o1 o2) then fail i "request outcome";
          true
        in
        (* [ordered] - whether the wake logs must match as sequences *)
        let ordered =
          match kind with
          | 0 | 1 -> request S
          | 2 | 3 | 4 -> request X
          | 5 ->
              Lock_table.release lt ~page owner;
              Model.release m ~page owner;
              true
          | 6 ->
              let p1 = Lock_table.release_all lt owner in
              let p2 = Model.release_all m owner in
              if sorted p1 <> sorted p2 then fail i "release_all pages";
              false
          | 7 ->
              Lock_table.cancel_wait lt ~page owner;
              Model.cancel_wait m ~page owner;
              true
          | 8 ->
              Lock_table.cancel_all_waits lt owner;
              Model.cancel_all_waits m owner;
              false
          | _ ->
              Lock_table.downgrade lt ~page owner;
              Model.downgrade m ~page owner;
              true
        in
        let w1 = drain log_lt and w2 = drain log_m in
        if if ordered then w1 <> w2 else sorted w1 <> sorted w2 then
          fail i "wake log";
        Lock_table.check_invariants lt;
        if Lock_table.locks_held lt <> Model.locks_held m then
          fail i "locks_held";
        if Lock_table.waiting_count lt <> Model.waiting_count m then
          fail i "waiting_count";
        if sorted (Lock_table.all_waiting lt) <> sorted (Model.all_waiting m)
        then fail i "all_waiting";
        List.iter
          (fun p ->
            if
              sorted (Lock_table.holders lt ~page:p)
              <> sorted (Model.holders m ~page:p)
            then fail i "holders";
            if Lock_table.waiting lt ~page:p <> Model.waiting m ~page:p then
              fail i "wait queue";
            List.iter
              (fun o ->
                if Lock_table.held lt ~page:p o <> Model.held m ~page:p o then
                  fail i "held";
                if
                  sorted (Lock_table.blockers lt ~page:p o)
                  <> sorted (Model.blockers m ~page:p o)
                then fail i "blockers")
              owners)
          pages;
        List.iter
          (fun o ->
            if
              sorted (Lock_table.pages_held_by lt o)
              <> sorted (Model.pages_held_by m o)
            then fail i "pages_held_by";
            if Lock_table.holds_any lt o <> (Model.pages_held_by m o <> [])
            then fail i "holds_any")
          owners
      in
      List.iteri step ops;
      true)

let suites =
  [
    ( "lock_table",
      [
        case "S locks share" test_s_locks_share;
        case "X excludes" test_x_excludes;
        case "re-entrant requests" test_reentrant_requests;
        case "release grants next" test_release_grants_next;
        case "strict FCFS" test_fcfs_no_reader_overtake;
        case "upgrade sole holder" test_upgrade_sole_holder_immediate;
        case "upgrade waits for readers" test_upgrade_waits_for_other_readers;
        case "upgrade jumps queue" test_upgrade_jumps_queue;
        case "release all" test_release_all;
        case "cancel wait unblocks" test_cancel_wait_unblocks;
        case "cancel all waits" test_cancel_all_waits;
        case "downgrade" test_downgrade;
      ] );
    qsuite "lock-props"
      [
        prop_lock_invariants_random_ops;
        prop_lock_queue_drains;
        prop_lock_matches_list_model;
      ];
    ( "waits_for",
      [
        case "no cycle" test_no_cycle;
        case "self edge ignored" test_self_edge_ignored;
        case "two cycle" test_two_cycle;
        case "long cycle" test_long_cycle;
        case "cycle not through start" test_cycle_not_through_start;
        case "deadlock from lock table" test_of_lock_table_deadlock;
        case "conversion deadlock" test_upgrade_deadlock_detected;
        case "youngest victim" test_pick_victim_youngest;
      ] );
    ( "version_table",
      [
        case "start at zero" test_versions_start_at_zero;
        case "bump invalidates" test_bump_invalidates;
      ] );
    qsuite "version-props" [ prop_versions_monotonic ];
    ( "history",
      [
        case "empty" test_history_empty;
        case "serial chain" test_history_serial_chain;
        case "write skew cycle" test_history_write_skew_cycle;
        case "lost update cycle" test_history_lost_update_cycle;
        case "duplicate writer rejected" test_history_duplicate_writer_rejected;
        case "disjoint concurrent" test_history_concurrent_disjoint;
        case "edge kinds" test_history_edges;
      ] );
    qsuite "history-props" [ prop_history_version_chains_serializable ];
  ]

let () = Alcotest.run "cc" suites
