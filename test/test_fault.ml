(* Tests for the deterministic fault-injection subsystem (lib/fault), the
   protocol recovery paths, and the chaos-audit harness. *)

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Fault.Plan                                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_none_inactive () =
  Alcotest.(check bool) "none is inactive" false
    (Fault.Plan.active Fault.Plan.none);
  Fault.Plan.validate Fault.Plan.none;
  Alcotest.(check string) "prints as none" "none"
    (Fault.Plan.to_string Fault.Plan.none)

let test_plan_default_valid () =
  for seed = 1 to 5 do
    let p = Fault.Plan.default ~seed in
    Alcotest.(check bool) "default is active" true (Fault.Plan.active p);
    Fault.Plan.validate p
  done

let test_plan_validate_rejects () =
  let reject p =
    match Fault.Plan.validate p with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  reject { Fault.Plan.none with Fault.Plan.drop_prob = 1.5 };
  reject { Fault.Plan.none with Fault.Plan.delay_mean = -1.0 };
  (* active plan without a request timeout cannot survive message loss *)
  reject { Fault.Plan.none with Fault.Plan.drop_prob = 0.1 };
  (* crashes under message loss need the lease backstop *)
  reject
    {
      (Fault.Plan.default ~seed:1) with
      Fault.Plan.lease = 0.0;
      callback_retry = 0.0;
    }

let test_plan_shrink_candidates () =
  let p = Fault.Plan.default ~seed:7 in
  let cands = Fault.Plan.shrink_candidates p in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate differs" true (c <> p);
      Alcotest.(check bool) "candidate still active" true
        (Fault.Plan.active c);
      Alcotest.(check int) "seed preserved" p.Fault.Plan.seed
        c.Fault.Plan.seed)
    cands

let test_injector_deterministic () =
  let plan = Fault.Plan.default ~seed:3 in
  let draw () =
    let inj = Fault.Injector.create plan in
    List.init 500 (fun _ ->
        let v = Fault.Injector.message inj in
        (v.Fault.Injector.drop, v.Fault.Injector.extra_delay,
         v.Fault.Injector.copies))
  in
  Alcotest.(check bool) "same plan, same verdict stream" true
    (draw () = draw ());
  let some_drop =
    List.exists (fun (d, _, _) -> d) (draw ())
  and some_dup = List.exists (fun (_, _, c) -> c > 1) (draw ()) in
  Alcotest.(check bool) "drops occur" true some_drop;
  Alcotest.(check bool) "duplicates occur" true some_dup

(* ------------------------------------------------------------------ *)
(* Server-fault plans                                                  *)
(* ------------------------------------------------------------------ *)

let test_server_plan_defaults () =
  let p = Fault.Plan.server_default ~seed:9 in
  Fault.Plan.validate p;
  Alcotest.(check bool) "active" true (Fault.Plan.active p);
  Alcotest.(check (float 0.0)) "no client crashes" 0.0 p.Fault.Plan.crash_mean;
  Alcotest.(check (float 0.0)) "quiet network" 0.0 p.Fault.Plan.drop_prob;
  Alcotest.(check bool) "server crashes on" true
    (p.Fault.Plan.server_crash_mean > 0.0);
  Alcotest.(check bool) "checkpoints on" true
    (p.Fault.Plan.checkpoint_interval > 0.0)

let test_server_plan_validate_rejects () =
  let reject p =
    match Fault.Plan.validate p with
    | () -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  let sd = Fault.Plan.server_default ~seed:1 in
  reject { sd with Fault.Plan.server_crash_mean = -1.0 };
  reject { sd with Fault.Plan.server_restart_mean = -0.5 };
  reject { sd with Fault.Plan.checkpoint_interval = -5.0 };
  (* a checkpointer with nothing that can ever crash is dead weight *)
  reject { sd with Fault.Plan.server_crash_mean = 0.0 };
  reject { (Fault.Plan.default ~seed:1) with Fault.Plan.checkpoint_interval = 3.0 }

(* Golden shrink order: pure server plans soften only the three server
   knobs, in a pinned order; combined plans offer the whole-dimension
   drop at a pinned position.  The shrinker's descent path — and so every
   minimal reproducer — depends on this order staying put. *)
let test_server_shrink_golden () =
  let feq name want got = Alcotest.(check (float 1e-9)) name want got in
  (match Fault.Plan.shrink_candidates (Fault.Plan.server_default ~seed:7) with
  | [ a; b; c ] ->
      feq "1st: rarer crashes" 16.0 a.Fault.Plan.server_crash_mean;
      feq "2nd: faster restarts" 0.25 b.Fault.Plan.server_restart_mean;
      feq "3rd: tighter checkpoints" 2.5 c.Fault.Plan.checkpoint_interval
  | l ->
      Alcotest.failf "expected exactly 3 server-plan candidates, got %d"
        (List.length l));
  let combined =
    {
      (Fault.Plan.default ~seed:7) with
      Fault.Plan.server_crash_mean = 8.0;
      server_restart_mean = 0.5;
      checkpoint_interval = 5.0;
    }
  in
  let cands = Fault.Plan.shrink_candidates combined in
  let nth n = List.nth cands n in
  (* candidate 4 zeroes the whole server dimension at once *)
  feq "server dim dropped" 0.0 (nth 4).Fault.Plan.server_crash_mean;
  feq "ckpt dropped with it" 0.0 (nth 4).Fault.Plan.checkpoint_interval;
  Alcotest.(check bool) "still active without the server dim" true
    (Fault.Plan.active (nth 4));
  (* the three server softenings close the list, in golden order *)
  (match List.rev cands with
  | c3 :: c2 :: c1 :: _ ->
      feq "rarer crashes" 16.0 c1.Fault.Plan.server_crash_mean;
      feq "faster restarts" 0.25 c2.Fault.Plan.server_restart_mean;
      feq "tighter checkpoints" 2.5 c3.Fault.Plan.checkpoint_interval
  | _ -> Alcotest.fail "combined plan has too few candidates")

let test_server_stream_deterministic () =
  let draws plan =
    let rng = Fault.Injector.server_stream plan in
    List.init 100 (fun _ -> Sim.Rng.exponential rng ~mean:8.0)
  in
  let p = Fault.Plan.server_default ~seed:5 in
  Alcotest.(check bool) "same plan, same stream" true (draws p = draws p);
  Alcotest.(check bool) "different seed, different stream" true
    (draws p <> draws (Fault.Plan.server_default ~seed:6))

(* ------------------------------------------------------------------ *)
(* Chaos audits                                                        *)
(* ------------------------------------------------------------------ *)

let quick_spec ?hot ~fault algo =
  Experiments.Chaos.spec ?hot ~measured_commits:120 ~fault algo

let test_faultfree_run_clean () =
  let v =
    Experiments.Chaos.audit_run (quick_spec ~fault:Fault.Plan.none Core.Proto.Callback)
  in
  Alcotest.(check bool) "audit passes" true (Experiments.Chaos.ok v);
  let r = Option.get v.Experiments.Chaos.v_result in
  Alcotest.(check int) "no retries" 0 r.Core.Simulator.retries;
  Alcotest.(check int) "no crashes" 0 r.Core.Simulator.crashes;
  Alcotest.(check int) "no drops" 0 r.Core.Simulator.msgs_dropped

(* Every algorithm must stay serializable, live, and invariant-clean under
   a lossy, crashy plan — the heart of the chaos acceptance criterion. *)
let test_all_algorithms_survive_faults () =
  List.iter
    (fun algo ->
      let fault = Fault.Plan.default ~seed:11 in
      let v = Experiments.Chaos.audit_run (quick_spec ~fault algo) in
      if not (Experiments.Chaos.ok v) then
        Alcotest.failf "%s failed audit: %s"
          (Core.Proto.algorithm_name algo)
          (String.concat "; " v.Experiments.Chaos.v_errors);
      let r = Option.get v.Experiments.Chaos.v_result in
      Alcotest.(check bool)
        (Core.Proto.algorithm_name algo ^ " saw real adversity")
        true
        (r.Core.Simulator.msgs_dropped > 0 && r.Core.Simulator.retries > 0))
    Experiments.Chaos.default_algos

let test_crashes_recovered () =
  let fault = Fault.Plan.default ~seed:4 in
  let v =
    Experiments.Chaos.audit_run
      (quick_spec ~fault (Core.Proto.Two_phase Core.Proto.Inter))
  in
  Alcotest.(check bool) "audit passes" true (Experiments.Chaos.ok v);
  let r = Option.get v.Experiments.Chaos.v_result in
  Alcotest.(check bool) "crashes occurred" true (r.Core.Simulator.crashes > 0);
  Alcotest.(check bool) "recoveries happened" true
    (r.Core.Simulator.recoveries > 0)

let test_verdicts_deterministic_across_jobs () =
  let specs =
    List.map
      (fun seed ->
        quick_spec ~fault:(Fault.Plan.default ~seed) Core.Proto.Callback)
      [ 1; 2 ]
  in
  let v1 = Experiments.Chaos.sweep ~jobs:1 specs in
  let v2 = Experiments.Chaos.sweep ~jobs:2 specs in
  Alcotest.(check bool) "jobs=1 and jobs=2 verdicts identical" true (v1 = v2)

(* The durability acceptance gate in miniature: every algorithm must pass
   the full audit — serializability, liveness, lock/cache sweeps, AND the
   durability checks against the redo log — under plans that repeatedly
   crash and recover the server. *)
let test_server_faults_audited () =
  let specs =
    List.concat_map
      (fun algo ->
        List.map
          (fun seed ->
            Experiments.Chaos.spec ~measured_commits:100
              ~fault:(Fault.Plan.server_default ~seed) algo)
          [ 3; 4 ])
      Experiments.Chaos.default_algos
  in
  let verdicts = Experiments.Chaos.sweep ~jobs:2 specs in
  List.iter2
    (fun (sp : Core.Simulator.spec) v ->
      if not (Experiments.Chaos.ok v) then
        Alcotest.failf "%s seed=%d failed audit: %s"
          (Core.Proto.algorithm_name sp.Core.Simulator.algo)
          sp.Core.Simulator.fault.Fault.Plan.seed
          (String.concat "; " v.Experiments.Chaos.v_errors))
    specs verdicts;
  let crashes =
    List.fold_left
      (fun acc v ->
        match v.Experiments.Chaos.v_result with
        | Some r -> acc + r.Core.Simulator.server_crashes
        | None -> acc)
      0 verdicts
  in
  Alcotest.(check bool) "server crashes actually happened" true (crashes > 0)

(* The population-scaling refactors (map-indexed lock table, flat lease
   sweep, gauge-based sampler probes) must not disturb cross-jobs
   determinism at fleet scale: a 10k-client run under an active
   client-crash plan must produce bit-identical results whether its
   replications run sequentially or on a 4-worker pool. *)
let test_large_population_deterministic_across_jobs () =
  let cfg = Core.Sys_params.table5 ~n_clients:10_000 () in
  let xp =
    Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
  in
  (* [Plan.default] is tuned for 50-client chaos runs; at fleet scale its
     per-client crash rate and 1 s request timeout produce a genuine
     (modeled) congestion collapse — MPL-admission queueing alone exceeds
     the timeout, so every request retries forever and nothing commits.
     Scale the per-client crash mean so the *fleet* crash rate stays at
     the 50-client default, and stretch the timeout/lease horizons past
     the admission-queue delay.  Drops, delays and dups keep their
     defaults, so the recovery paths still fire (the run below sees ~50
     crashes and hundreds of dropped messages). *)
  let fault =
    {
      (Fault.Plan.default ~seed:11) with
      Fault.Plan.crash_mean = 15_000.0;
      req_timeout = 60.0;
      max_backoff = 240.0;
      lease = 600.0;
      callback_retry = 60.0;
    }
  in
  let spec =
    Core.Simulator.default_spec ~seed:11 ~warmup_commits:20
      ~measured_commits:80 ~fault ~cfg ~xact_params:xp Core.Proto.Callback
  in
  let seq = Core.Simulator.run_replicated ~jobs:1 spec ~reps:2 in
  let par = Core.Simulator.run_replicated ~jobs:4 spec ~reps:2 in
  Alcotest.(check bool) "10k-client faulty run identical at jobs=1 and jobs=4"
    true (seq = par)

let test_server_verdicts_deterministic_across_jobs () =
  let specs =
    List.map
      (fun (seed, algo) ->
        Experiments.Chaos.spec ~measured_commits:80
          ~fault:(Fault.Plan.server_default ~seed) algo)
      [ (1, Core.Proto.Two_phase Core.Proto.Inter); (2, Core.Proto.Callback) ]
  in
  let v1 = Experiments.Chaos.sweep ~jobs:1 specs in
  let v2 = Experiments.Chaos.sweep ~jobs:4 specs in
  Alcotest.(check bool) "jobs=1 and jobs=4 verdicts identical" true (v1 = v2)

(* Disable commit validation on a hot workload: the audit must catch the
   resulting non-serializable history, and shrinking must return an
   active plan that still fails. *)
let test_unsafe_violation_caught_and_shrunk () =
  let algo = Core.Proto.Certification Core.Proto.Inter in
  let failing_spec =
    (* seeds differ in when conflicts line up; scan a few for a violation *)
    let rec find = function
      | [] -> Alcotest.fail "no seed produced a violation on the hot workload"
      | seed :: rest ->
          let fault =
            {
              (Fault.Plan.default ~seed) with
              Fault.Plan.unsafe_skip_validation = true;
            }
          in
          let sp = quick_spec ~hot:true ~fault algo in
          let v = Experiments.Chaos.audit_run sp in
          if Experiments.Chaos.ok v then find rest
          else begin
            Alcotest.(check bool) "error names the cycle" true
              (List.exists
                 (fun e ->
                   String.length e >= 18
                   && String.sub e 0 18 = "non-serializable h")
                 v.Experiments.Chaos.v_errors);
            sp
          end
    in
    find [ 1; 2; 3; 4; 5 ]
  in
  let minimal = Experiments.Chaos.shrink ~max_steps:3 failing_spec in
  Alcotest.(check bool) "shrunk plan still active" true
    (Fault.Plan.active minimal);
  Alcotest.(check bool) "shrunk plan keeps the mutation" true
    minimal.Fault.Plan.unsafe_skip_validation;
  let v =
    Experiments.Chaos.audit_run
      { failing_spec with Core.Simulator.fault = minimal }
  in
  Alcotest.(check bool) "shrunk plan still fails" false
    (Experiments.Chaos.ok v)

let suites =
  [
    ( "plan",
      [
        case "none inactive" test_plan_none_inactive;
        case "default valid" test_plan_default_valid;
        case "validate rejects" test_plan_validate_rejects;
        case "shrink candidates" test_plan_shrink_candidates;
        case "injector deterministic" test_injector_deterministic;
        case "server plan defaults" test_server_plan_defaults;
        case "server plan validate rejects" test_server_plan_validate_rejects;
        case "server shrink golden order" test_server_shrink_golden;
        case "server stream deterministic" test_server_stream_deterministic;
      ] );
    ( "chaos",
      [
        case "fault-free run clean" test_faultfree_run_clean;
        case "all algorithms survive faults" test_all_algorithms_survive_faults;
        case "crashes recovered" test_crashes_recovered;
        case "verdicts deterministic across jobs"
          test_verdicts_deterministic_across_jobs;
        case "10k clients deterministic across jobs"
          test_large_population_deterministic_across_jobs;
        case "server faults audited" test_server_faults_audited;
        case "server verdicts deterministic across jobs"
          test_server_verdicts_deterministic_across_jobs;
        case "violation caught and shrunk"
          test_unsafe_violation_caught_and_shrunk;
      ] );
  ]

let () = Alcotest.run "fault" suites
