(* Tests for the database and workload models (lib/db). *)

open Db

let case name f = Alcotest.test_case name `Quick f
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let small_db () =
  Database.create
    (Db_params.uniform ~n_classes:4 ~pages_per_class:10 ~object_size:3 ())

(* ------------------------------------------------------------------ *)
(* Db_params                                                           *)
(* ------------------------------------------------------------------ *)

let test_params_uniform () =
  let p = Db_params.uniform ~n_classes:40 ~pages_per_class:50 () in
  Alcotest.(check int) "total pages" 2000 (Db_params.total_pages p);
  Db_params.validate p

let test_params_invalid () =
  let bad_cluster =
    { (Db_params.uniform ~n_classes:1 ~pages_per_class:5 ()) with
      Db_params.cluster_factor = 1.5 }
  in
  Alcotest.check_raises "bad cluster factor"
    (Invalid_argument "Db_params: cluster_factor outside [0,1]") (fun () ->
      Db_params.validate bad_cluster);
  let oversized =
    Db_params.uniform ~n_classes:1 ~pages_per_class:5 ~object_size:6 ()
  in
  Alcotest.check_raises "object bigger than class"
    (Invalid_argument "Db_params: class 0 object size invalid") (fun () ->
      Db_params.validate oversized)

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let test_page_ids_global () =
  let db = small_db () in
  Alcotest.(check int) "total" 40 (Database.n_pages db);
  Alcotest.(check int) "class 0 atom 0" 0 (Database.page_id db ~cls:0 ~atom:0);
  Alcotest.(check int) "class 1 atom 0" 10 (Database.page_id db ~cls:1 ~atom:0);
  Alcotest.(check int) "class 3 atom 9" 39 (Database.page_id db ~cls:3 ~atom:9)

let test_class_of_page_inverts () =
  let db = small_db () in
  for cls = 0 to 3 do
    for atom = 0 to 9 do
      let page = Database.page_id db ~cls ~atom in
      Alcotest.(check int) "roundtrip" cls (Database.class_of_page db page)
    done
  done

let test_object_pages_consecutive () =
  let db = small_db () in
  let pages = Database.pages db { Database.cls = 1; start = 2 } in
  Alcotest.(check (list int)) "three consecutive" [ 12; 13; 14 ] pages

let test_object_pages_wrap () =
  let db = small_db () in
  let pages = Database.pages db { Database.cls = 0; start = 9 } in
  Alcotest.(check (list int)) "wraps inside class" [ 9; 0; 1 ] pages

let test_object_sharing () =
  (* objects starting at adjacent atoms share object_size - 1 atoms *)
  let db = small_db () in
  let a = Database.pages db { Database.cls = 2; start = 4 } in
  let b = Database.pages db { Database.cls = 2; start = 5 } in
  let shared = List.filter (fun p -> List.mem p b) a in
  Alcotest.(check int) "share 2 atoms" 2 (List.length shared)

let test_disk_assignment () =
  let db = small_db () in
  let page_of_class c = Database.page_id db ~cls:c ~atom:3 in
  Alcotest.(check int) "class 0 -> disk 0" 0
    (Database.disk_of_page db ~n_disks:2 (page_of_class 0));
  Alcotest.(check int) "class 1 -> disk 1" 1
    (Database.disk_of_page db ~n_disks:2 (page_of_class 1));
  Alcotest.(check int) "class 2 -> disk 0" 0
    (Database.disk_of_page db ~n_disks:2 (page_of_class 2))

let test_random_object_in_range () =
  let db = small_db () in
  let rng = Sim.Rng.create 11 in
  for _ = 1 to 1000 do
    let o = Database.random_object db rng in
    if o.Database.cls < 0 || o.Database.cls >= 4 then Alcotest.fail "class range";
    if o.Database.start < 0 || o.Database.start >= 10 then
      Alcotest.fail "start range"
  done

let test_seeks_fully_clustered () =
  let db = small_db () in
  (* cluster factor 1.0: one seek regardless of object size *)
  let rng = Sim.Rng.create 3 in
  let pages = Database.pages db { Database.cls = 0; start = 0 } in
  Alcotest.(check int) "one seek" 1 (Database.seeks_for_pages db rng pages);
  Alcotest.(check int) "empty" 0 (Database.seeks_for_pages db rng [])

let test_seeks_unclustered () =
  let prm =
    {
      (Db_params.uniform ~n_classes:1 ~pages_per_class:10 ~object_size:4 ()) with
      Db_params.cluster_factor = 0.0;
    }
  in
  let db = Database.create prm in
  let rng = Sim.Rng.create 3 in
  let pages = Database.pages db { Database.cls = 0; start = 0 } in
  Alcotest.(check int) "seek per page" 4 (Database.seeks_for_pages db rng pages)

let prop_class_of_page_total =
  QCheck.Test.make ~name:"class_of_page defined on all pages" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 1 30))
    (fun (n_classes, pages_per_class) ->
      let db =
        Database.create (Db_params.uniform ~n_classes ~pages_per_class ())
      in
      let ok = ref true in
      for p = 0 to Database.n_pages db - 1 do
        let c = Database.class_of_page db p in
        if c < 0 || c >= n_classes then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Xact_params                                                         *)
(* ------------------------------------------------------------------ *)

let test_presets_valid () =
  Xact_params.validate (Xact_params.short_batch ());
  Xact_params.validate (Xact_params.large_batch ~prob_write:0.5 ());
  Xact_params.validate (Xact_params.interactive ~inter_xact_loc:0.75 ())

let test_preset_shapes () =
  let s = Xact_params.short_batch () in
  Alcotest.(check int) "short min" 4 s.Xact_params.min_xact_size;
  Alcotest.(check int) "short max" 12 s.Xact_params.max_xact_size;
  let l = Xact_params.large_batch () in
  Alcotest.(check int) "large min" 20 l.Xact_params.min_xact_size;
  Alcotest.(check int) "large max" 60 l.Xact_params.max_xact_size;
  let i = Xact_params.interactive () in
  Alcotest.(check (float 0.0)) "update delay" 5.0 i.Xact_params.update_delay;
  Alcotest.(check (float 0.0)) "internal delay" 2.0 i.Xact_params.internal_delay

let test_invalid_params_rejected () =
  let bad = { (Xact_params.short_batch ()) with Xact_params.prob_write = 2.0 } in
  Alcotest.check_raises "prob_write"
    (Invalid_argument "Xact_params: prob_write outside [0,1]") (fun () ->
      Xact_params.validate bad)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let mk_workload ?(prob_write = 0.2) ?(inter_xact_loc = 0.5) ?(seed = 7) () =
  let db =
    Database.create (Db_params.uniform ~n_classes:40 ~pages_per_class:50 ())
  in
  let prm = Xact_params.short_batch ~prob_write ~inter_xact_loc () in
  (db, Workload.create db prm ~rng:(Sim.Rng.create seed))

let test_profile_sizes () =
  let _, w = mk_workload () in
  for _ = 1 to 200 do
    let p = Workload.next w in
    let n = List.length p.Workload.steps in
    if n < 4 || n > 12 then Alcotest.failf "size out of range: %d" n
  done

let test_write_set_subset_of_read_set () =
  let _, w = mk_workload ~prob_write:0.5 () in
  for _ = 1 to 100 do
    let p = Workload.next w in
    let reads = Workload.profile_read_pages p in
    let writes = Workload.profile_write_pages p in
    List.iter
      (fun pg ->
        if not (List.mem pg reads) then Alcotest.fail "write outside read set")
      writes
  done

let test_zero_prob_write_no_writes () =
  let _, w = mk_workload ~prob_write:0.0 () in
  for _ = 1 to 50 do
    let p = Workload.next w in
    Alcotest.(check (list int)) "no writes" [] (Workload.profile_write_pages p)
  done

let test_inter_xact_set_bounded () =
  let _, w = mk_workload () in
  for _ = 1 to 50 do
    ignore (Workload.next w);
    let n = List.length (Workload.inter_xact_set w) in
    if n > 20 then Alcotest.failf "set overflow: %d" n
  done

let test_inter_xact_set_distinct () =
  let _, w = mk_workload ~inter_xact_loc:0.9 () in
  for _ = 1 to 50 do
    ignore (Workload.next w)
  done;
  let set = Workload.inter_xact_set w in
  let distinct = List.sort_uniq Database.compare_obj set in
  Alcotest.(check int) "no duplicates" (List.length distinct) (List.length set)

let test_locality_reuses_objects () =
  (* with loc=1.0 every read after the first transaction comes from the
     recent set, so very few distinct objects appear overall *)
  let _, w = mk_workload ~inter_xact_loc:1.0 ~seed:3 () in
  let all = ref [] in
  for _ = 1 to 30 do
    let p = Workload.next w in
    List.iter
      (fun s -> all := s.Workload.obj :: !all)
      p.Workload.steps
  done;
  let distinct = List.sort_uniq Database.compare_obj !all in
  if List.length distinct > 25 then
    Alcotest.failf "too many distinct objects for loc=1: %d"
      (List.length distinct)

let test_no_locality_spreads_objects () =
  let _, w = mk_workload ~inter_xact_loc:0.0 ~seed:3 () in
  let all = ref [] in
  for _ = 1 to 30 do
    let p = Workload.next w in
    List.iter (fun s -> all := s.Workload.obj :: !all) p.Workload.steps
  done;
  let distinct = List.sort_uniq Database.compare_obj !all in
  if List.length distinct < 100 then
    Alcotest.failf "too few distinct objects for loc=0: %d"
      (List.length distinct)

let test_batch_delays_zero () =
  let _, w = mk_workload () in
  let p = Workload.next w in
  List.iter
    (fun s ->
      Alcotest.(check (float 0.0)) "update delay" 0.0 s.Workload.update_delay;
      Alcotest.(check (float 0.0)) "internal delay" 0.0 s.Workload.internal_delay)
    p.Workload.steps

let test_deterministic_given_seed () =
  let _, w1 = mk_workload ~seed:42 () in
  let _, w2 = mk_workload ~seed:42 () in
  for _ = 1 to 20 do
    let p1 = Workload.next w1 and p2 = Workload.next w2 in
    Alcotest.(check (list int)) "same reads"
      (Workload.profile_read_pages p1)
      (Workload.profile_read_pages p2)
  done

let prop_write_rate_tracks_prob =
  QCheck.Test.make ~name:"write rate approximates prob_write" ~count:5
    QCheck.(float_range 0.1 0.9)
    (fun pw ->
      let _, w = mk_workload ~prob_write:pw ~inter_xact_loc:0.0 () in
      let reads = ref 0 and writes = ref 0 in
      for _ = 1 to 400 do
        let p = Workload.next w in
        List.iter
          (fun s ->
            reads := !reads + List.length s.Workload.read_pages;
            writes := !writes + List.length s.Workload.write_pages)
          p.Workload.steps
      done;
      let rate = float_of_int !writes /. float_of_int !reads in
      Float.abs (rate -. pw) < 0.05)


let test_mix_draws_both_types () =
  let db =
    Database.create (Db_params.uniform ~n_classes:40 ~pages_per_class:50 ())
  in
  let w =
    Workload.create_mix db
      [
        (0.5, Xact_params.short_batch ());
        (0.5, Xact_params.large_batch ());
      ]
      ~rng:(Sim.Rng.create 7)
  in
  let small = ref 0 and large = ref 0 in
  for _ = 1 to 200 do
    let p = Workload.next w in
    let n = List.length p.Workload.steps in
    if n <= 12 then incr small
    else if n >= 20 then incr large
    else Alcotest.failf "size %d belongs to neither type" n
  done;
  if !small < 50 || !large < 50 then
    Alcotest.failf "unbalanced mix: %d small, %d large" !small !large

let test_mix_weights_respected () =
  let db =
    Database.create (Db_params.uniform ~n_classes:40 ~pages_per_class:50 ())
  in
  let w =
    Workload.create_mix db
      [
        (0.9, Xact_params.short_batch ());
        (0.1, Xact_params.large_batch ());
      ]
      ~rng:(Sim.Rng.create 7)
  in
  let large = ref 0 in
  let n = 1000 in
  for _ = 1 to n do
    if List.length (Workload.next w).Workload.steps >= 20 then incr large
  done;
  let rate = float_of_int !large /. float_of_int n in
  if Float.abs (rate -. 0.1) > 0.03 then
    Alcotest.failf "large-type rate %.3f, expected ~0.1" rate

let test_mix_rejects_bad_input () =
  let db =
    Database.create (Db_params.uniform ~n_classes:4 ~pages_per_class:10 ())
  in
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Workload.create_mix: empty mix") (fun () ->
      ignore (Workload.create_mix db [] ~rng:(Sim.Rng.create 1)));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Workload.create_mix: non-positive weight") (fun () ->
      ignore
        (Workload.create_mix db
           [ (0.0, Xact_params.short_batch ()) ]
           ~rng:(Sim.Rng.create 1)))

let suites =
  [
    ( "db_params",
      [
        case "uniform" test_params_uniform;
        case "invalid rejected" test_params_invalid;
      ] );
    ( "database",
      [
        case "global page ids" test_page_ids_global;
        case "class_of_page inverts page_id" test_class_of_page_inverts;
        case "object pages consecutive" test_object_pages_consecutive;
        case "object pages wrap" test_object_pages_wrap;
        case "adjacent objects share atoms" test_object_sharing;
        case "classes round-robin to disks" test_disk_assignment;
        case "random object in range" test_random_object_in_range;
        case "clustered object: one seek" test_seeks_fully_clustered;
        case "unclustered object: seek per page" test_seeks_unclustered;
      ] );
    qsuite "database-props" [ prop_class_of_page_total ];
    ( "xact_params",
      [
        case "presets valid" test_presets_valid;
        case "preset shapes" test_preset_shapes;
        case "invalid rejected" test_invalid_params_rejected;
      ] );
    ( "workload",
      [
        case "profile sizes in range" test_profile_sizes;
        case "write set subset of read set" test_write_set_subset_of_read_set;
        case "prob_write 0 means no writes" test_zero_prob_write_no_writes;
        case "inter-xact set bounded" test_inter_xact_set_bounded;
        case "inter-xact set distinct" test_inter_xact_set_distinct;
        case "high locality reuses objects" test_locality_reuses_objects;
        case "zero locality spreads objects" test_no_locality_spreads_objects;
        case "batch delays zero" test_batch_delays_zero;
        case "deterministic per seed" test_deterministic_given_seed;
        case "mix draws both types" test_mix_draws_both_types;
        case "mix weights respected" test_mix_weights_respected;
        case "mix rejects bad input" test_mix_rejects_bad_input;
      ] );
    qsuite "workload-props" [ prop_write_rate_tracks_prob ];
  ]

let () = Alcotest.run "db" suites
