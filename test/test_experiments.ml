(* Tests for the experiment harness (lib/experiments). *)

let case name f = Alcotest.test_case name `Quick f

let tiny_opts =
  {
    Experiments.Exp_defs.warmup = 20;
    measured = 100;
    reps = 1;
    seed = 5;
    max_sim_time = 10_000.0;
  }

let tiny_spec ?(algo = Core.Proto.Two_phase Core.Proto.Inter) ?(n_clients = 4) () =
  {
    Core.Simulator.cfg = Core.Sys_params.table5 ~n_clients ();
    db_params = Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ();
    xact_params = Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.5 ();
    mix = None;
    algo;
    seed = 0;
    warmup_commits = 0;
    measured_commits = 0;
    max_sim_time = 0.0;
  }

let test_runner_memoizes () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r1 = Experiments.Exp_defs.run runner (tiny_spec ()) in
  let r2 = Experiments.Exp_defs.run runner (tiny_spec ()) in
  Alcotest.(check int) "one simulation executed" 1
    (Experiments.Exp_defs.runs_executed runner);
  Alcotest.(check (float 0.0)) "same result" r1.Core.Simulator.mean_response
    r2.Core.Simulator.mean_response

let test_runner_distinguishes_specs () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  ignore (Experiments.Exp_defs.run runner (tiny_spec ()));
  ignore (Experiments.Exp_defs.run runner (tiny_spec ~algo:Core.Proto.Callback ()));
  ignore (Experiments.Exp_defs.run runner (tiny_spec ~n_clients:6 ()));
  Alcotest.(check int) "three distinct runs" 3
    (Experiments.Exp_defs.runs_executed runner)

let test_runner_distinguishes_knobs () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let base = tiny_spec () in
  ignore (Experiments.Exp_defs.run runner base);
  let variant =
    {
      base with
      Core.Simulator.cfg =
        { base.Core.Simulator.cfg with Core.Sys_params.stale_drop_all = false };
    }
  in
  ignore (Experiments.Exp_defs.run runner variant);
  Alcotest.(check int) "knob changes the key" 2
    (Experiments.Exp_defs.runs_executed runner)

let test_figure_csv_shape () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r = Experiments.Exp_defs.run runner (tiny_spec ()) in
  let fig =
    {
      Experiments.Exp_defs.fig_id = "figX";
      title = "test";
      xlabel = "clients";
      metric = Experiments.Exp_defs.Response_time;
      series = [ { Experiments.Exp_defs.label = "2PL"; points = [ (4.0, r) ] } ];
    }
  in
  match Experiments.Report.figure_csv fig with
  | [ header; row ] ->
      Alcotest.(check string) "header"
        "fig_id,metric,x,algorithm,value,aborts,hit_ratio,msgs_per_commit"
        header;
      Alcotest.(check bool) "row prefix" true
        (String.length row > 10 && String.sub row 0 5 = "figX,")
  | lines -> Alcotest.failf "expected 2 csv lines, got %d" (List.length lines)

let test_experiment_catalog () =
  Alcotest.(check bool) "all experiments present" true
    (List.length Experiments.Suite.all >= 20);
  List.iter
    (fun id ->
      match Experiments.Suite.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "acl"; "fig5"; "fig9"; "fig13"; "fig22"; "ablate-stale"; "ext-objsize" ];
  Alcotest.(check (option reject)) "unknown id" None
    (Option.map (fun _ -> ()) (Experiments.Suite.find "nope"))

let test_fig13_runs_quick () =
  (* the decision map exercises the full grid; run it at tiny depth *)
  let runner = Experiments.Exp_defs.make_runner
      { tiny_opts with Experiments.Exp_defs.measured = 60; warmup = 10 }
  in
  match Experiments.Suite.fig13 runner with
  | Experiments.Suite.Map m ->
      Alcotest.(check int) "rows" 5 (Array.length m.Experiments.Suite.winners);
      Array.iter
        (fun row ->
          Array.iter
            (fun w ->
              if not (List.mem w [ "2PL"; "callback"; "either" ]) then
                Alcotest.failf "unexpected winner %s" w)
            row)
        m.Experiments.Suite.winners
  | Experiments.Suite.Figures _ -> Alcotest.fail "fig13 should be a map"

let test_metric_value () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r = Experiments.Exp_defs.run runner (tiny_spec ()) in
  Alcotest.(check (float 0.0)) "response metric" r.Core.Simulator.mean_response
    (Experiments.Exp_defs.metric_value Experiments.Exp_defs.Response_time r);
  Alcotest.(check (float 0.0)) "throughput metric" r.Core.Simulator.throughput
    (Experiments.Exp_defs.metric_value Experiments.Exp_defs.Throughput r)

let suites =
  [
    ( "exp_defs",
      [
        case "runner memoizes identical specs" test_runner_memoizes;
        case "distinct specs rerun" test_runner_distinguishes_specs;
        case "ablation knobs change the key" test_runner_distinguishes_knobs;
        case "metric_value" test_metric_value;
      ] );
    ( "report",
      [ case "figure csv shape" test_figure_csv_shape ] );
    ( "suite",
      [
        case "experiment catalog" test_experiment_catalog;
        case "fig13 decision map" test_fig13_runs_quick;
      ] );
  ]

let () = Alcotest.run "experiments" suites
