(* Tests for the experiment harness (lib/experiments). *)

let case name f = Alcotest.test_case name `Quick f

let astr_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let tiny_opts =
  {
    Experiments.Exp_defs.warmup = 20;
    measured = 100;
    reps = 1;
    seed = 5;
    max_sim_time = 10_000.0;
  }

let tiny_spec ?(algo = Core.Proto.Two_phase Core.Proto.Inter) ?(n_clients = 4) () =
  {
    Core.Simulator.cfg = Core.Sys_params.table5 ~n_clients ();
    db_params = Db.Db_params.uniform ~n_classes:40 ~pages_per_class:50 ();
    xact_params = Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.5 ();
    mix = None;
    algo;
    n_shards = 1;
    seed = 0;
    warmup_commits = 0;
    measured_commits = 0;
    max_sim_time = 0.0;
    fault = Fault.Plan.none;
    obs = Obs.Config.off;
  }

let test_runner_memoizes () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r1 = Experiments.Exp_defs.run runner (tiny_spec ()) in
  let r2 = Experiments.Exp_defs.run runner (tiny_spec ()) in
  Alcotest.(check int) "one simulation executed" 1
    (Experiments.Exp_defs.runs_executed runner);
  Alcotest.(check (float 0.0)) "same result" r1.Core.Simulator.mean_response
    r2.Core.Simulator.mean_response

let test_runner_distinguishes_specs () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  ignore (Experiments.Exp_defs.run runner (tiny_spec ()));
  ignore (Experiments.Exp_defs.run runner (tiny_spec ~algo:Core.Proto.Callback ()));
  ignore (Experiments.Exp_defs.run runner (tiny_spec ~n_clients:6 ()));
  Alcotest.(check int) "three distinct runs" 3
    (Experiments.Exp_defs.runs_executed runner)

let test_runner_distinguishes_knobs () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let base = tiny_spec () in
  ignore (Experiments.Exp_defs.run runner base);
  let variant =
    {
      base with
      Core.Simulator.cfg =
        { base.Core.Simulator.cfg with Core.Sys_params.stale_drop_all = false };
    }
  in
  ignore (Experiments.Exp_defs.run runner variant);
  Alcotest.(check int) "knob changes the key" 2
    (Experiments.Exp_defs.runs_executed runner)

(* Regression for the cache-key collision bug: the old hand-enumerated key
   omitted several Sys_params fields, so specs differing only in one of
   them collided in the runner cache and reused the wrong result. *)
let test_key_covers_every_config_field () =
  let base = tiny_spec () in
  let cfg = base.Core.Simulator.cfg in
  let with_cfg c = { base with Core.Simulator.cfg = c } in
  let variants =
    [
      ("n_data_disks", with_cfg { cfg with Core.Sys_params.n_data_disks = 4 });
      ("client_mips", with_cfg { cfg with Core.Sys_params.client_mips = 2.5 });
      ("page_size", with_cfg { cfg with Core.Sys_params.page_size = 8192 });
      ( "control_msg_bytes",
        with_cfg { cfg with Core.Sys_params.control_msg_bytes = 512 } );
      ( "packet_size",
        with_cfg
          {
            cfg with
            Core.Sys_params.net =
              { cfg.Core.Sys_params.net with Net.Network.packet_size = 8192 };
          } );
      ("n_client_cpus", with_cfg { cfg with Core.Sys_params.n_client_cpus = 2 });
      ("n_server_cpus", with_cfg { cfg with Core.Sys_params.n_server_cpus = 2 });
      ( "db n_pages",
        {
          base with
          Core.Simulator.db_params =
            Db.Db_params.uniform ~n_classes:40 ~pages_per_class:60 ();
        } );
    ]
  in
  let base_key = Experiments.Exp_defs.key_of_spec base in
  List.iter
    (fun (field, spec') ->
      if Experiments.Exp_defs.key_of_spec spec' = base_key then
        Alcotest.failf "changing %s does not change the cache key" field)
    variants;
  (* and the key is still stable: equal specs built twice share it *)
  Alcotest.(check string) "equal specs share a key" base_key
    (Experiments.Exp_defs.key_of_spec (tiny_spec ()))

(* The acceptance contract of the parallel runner: one figure cell run
   through run_build with 1 and 4 workers yields identical results,
   field by field, because randomness is seeded per spec. *)
let test_run_build_jobs_invariant () =
  let build runner =
    List.map
      (fun n -> Experiments.Exp_defs.run runner (tiny_spec ~n_clients:n ()))
      [ 2; 3; 4 ]
  in
  let r1 =
    Experiments.Exp_defs.run_build
      (Experiments.Exp_defs.make_runner ~jobs:1 tiny_opts)
      build
  in
  let runner4 = Experiments.Exp_defs.make_runner ~jobs:4 tiny_opts in
  let r4 = Experiments.Exp_defs.run_build runner4 build in
  Alcotest.(check int) "three cells executed once each" 3
    (Experiments.Exp_defs.runs_executed runner4);
  List.iter2
    (fun (a : Core.Simulator.result) (b : Core.Simulator.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "clients=%d identical" a.Core.Simulator.n_clients)
        true (a = b))
    r1 r4

let test_run_build_memoizes_across_calls () =
  let runner = Experiments.Exp_defs.make_runner ~jobs:2 tiny_opts in
  let build r = Experiments.Exp_defs.run r (tiny_spec ()) in
  let a = Experiments.Exp_defs.run_build runner build in
  let b = Experiments.Exp_defs.run_build runner build in
  Alcotest.(check int) "one simulation for both builds" 1
    (Experiments.Exp_defs.runs_executed runner);
  Alcotest.(check bool) "cached result returned" true (a = b);
  (* direct run also hits the same cache *)
  let c = Experiments.Exp_defs.run runner (tiny_spec ()) in
  Alcotest.(check int) "still one" 1 (Experiments.Exp_defs.runs_executed runner);
  Alcotest.(check bool) "same" true (a = c)

let test_run_build_propagates_build_exception () =
  let runner = Experiments.Exp_defs.make_runner ~jobs:2 tiny_opts in
  Alcotest.check_raises "build exception escapes" (Failure "bad build")
    (fun () ->
      ignore
        (Experiments.Exp_defs.run_build runner (fun _ -> failwith "bad build")));
  (* the runner is still usable afterwards *)
  ignore (Experiments.Exp_defs.run_build runner (fun r ->
      Experiments.Exp_defs.run r (tiny_spec ())));
  Alcotest.(check int) "recovered" 1 (Experiments.Exp_defs.runs_executed runner)

let test_figure_csv_shape () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r = Experiments.Exp_defs.run runner (tiny_spec ()) in
  let fig =
    {
      Experiments.Exp_defs.fig_id = "figX";
      title = "test";
      xlabel = "clients";
      metric = Experiments.Exp_defs.Response_time;
      series = [ { Experiments.Exp_defs.label = "2PL"; points = [ (4.0, r) ] } ];
    }
  in
  match Experiments.Report.figure_csv fig with
  | [ header; row ] ->
      Alcotest.(check string) "header"
        "fig_id,metric,x,algorithm,value,ci_lo,ci_hi,aborts,hit_ratio,msgs_per_commit"
        header;
      Alcotest.(check bool) "row prefix" true
        (String.length row > 10 && String.sub row 0 5 = "figX,")
  | lines -> Alcotest.failf "expected 2 csv lines, got %d" (List.length lines)

(* Golden check of the CI columns: a cell whose per-rep means are
   1, 2, 3 has mean 2 and half-width t(0.975, 2)/sqrt(3) = 2.4841, so
   the table cell reads "±2.484" and the CSV endpoints are -0.4841 and
   4.4841.  A single-rep cell leaves both CSV fields empty and the
   table shows "±n/a". *)
let test_figure_ci_columns () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r0 = Experiments.Exp_defs.run runner (tiny_spec ()) in
  let fig rep_means =
    {
      Experiments.Exp_defs.fig_id = "figX";
      title = "test";
      xlabel = "clients";
      metric = Experiments.Exp_defs.Response_time;
      series =
        [
          {
            Experiments.Exp_defs.label = "2PL";
            points =
              [
                ( 4.0,
                  {
                    r0 with
                    Core.Simulator.mean_response = 2.0;
                    rep_mean_responses = rep_means;
                  } );
              ];
          };
        ];
    }
  in
  (match Experiments.Report.figure_cis (fig [| 1.0; 2.0; 3.0 |]) with
  | [ ci ] ->
      Alcotest.(check bool) "available" true (Obs.Run_stats.available ci);
      Alcotest.(check string) "half" "2.484" (Obs.Run_stats.half_string ci);
      Alcotest.(check (float 1e-3)) "lo" (-0.4841) (Obs.Run_stats.ci_lo ci);
      Alcotest.(check (float 1e-3)) "hi" 4.4841 (Obs.Run_stats.ci_hi ci)
  | cis -> Alcotest.failf "expected 1 ci, got %d" (List.length cis));
  (match Experiments.Report.figure_csv (fig [| 1.0; 2.0; 3.0 |]) with
  | [ _; row ] -> (
      match String.split_on_char ',' row with
      | _ :: _ :: _ :: _ :: _ :: lo :: hi :: _ ->
          Alcotest.(check (float 1e-3)) "csv lo" (-0.4841) (float_of_string lo);
          Alcotest.(check (float 1e-3)) "csv hi" 4.4841 (float_of_string hi)
      | _ -> Alcotest.fail "csv row too short")
  | lines -> Alcotest.failf "expected 2 csv lines, got %d" (List.length lines));
  let table =
    Format.asprintf "%a" (Experiments.Report.print_figure ?detail:None)
      (fig [| 1.0; 2.0; 3.0 |])
  in
  Alcotest.(check bool) "table shows the half-width" true
    (astr_contains table "2.000 \xc2\xb12.484");
  (* reps = 1: no dispersion, "n/a" everywhere, empty CSV endpoints *)
  (match Experiments.Report.figure_cis (fig [| 2.0 |]) with
  | [ ci ] ->
      Alcotest.(check bool) "unavailable" false (Obs.Run_stats.available ci);
      Alcotest.(check string) "n/a" "n/a" (Obs.Run_stats.half_string ci)
  | _ -> Alcotest.fail "expected 1 ci");
  match Experiments.Report.figure_csv (fig [| 2.0 |]) with
  | [ _; row ] -> (
      match String.split_on_char ',' row with
      | _ :: _ :: _ :: _ :: _ :: lo :: hi :: _ ->
          Alcotest.(check string) "empty lo" "" lo;
          Alcotest.(check string) "empty hi" "" hi
      | _ -> Alcotest.fail "csv row too short")
  | lines -> Alcotest.failf "expected 2 csv lines, got %d" (List.length lines)

let test_experiment_catalog () =
  Alcotest.(check bool) "all experiments present" true
    (List.length Experiments.Suite.all >= 20);
  List.iter
    (fun id ->
      match Experiments.Suite.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "acl"; "fig5"; "fig9"; "fig13"; "fig22"; "ablate-stale"; "ext-objsize" ];
  Alcotest.(check (option reject)) "unknown id" None
    (Option.map (fun _ -> ()) (Experiments.Suite.find "nope"))

let test_fig13_runs_quick () =
  (* the decision map exercises the full grid; run it at tiny depth *)
  let runner = Experiments.Exp_defs.make_runner
      { tiny_opts with Experiments.Exp_defs.measured = 60; warmup = 10 }
  in
  match Experiments.Suite.fig13 runner with
  | Experiments.Suite.Map m ->
      Alcotest.(check int) "rows" 5 (Array.length m.Experiments.Suite.winners);
      Array.iter
        (fun row ->
          Array.iter
            (fun w ->
              if not (List.mem w [ "2PL"; "callback"; "either" ]) then
                Alcotest.failf "unexpected winner %s" w)
            row)
        m.Experiments.Suite.winners
  | Experiments.Suite.Figures _ -> Alcotest.fail "fig13 should be a map"

let test_metric_value () =
  let runner = Experiments.Exp_defs.make_runner tiny_opts in
  let r = Experiments.Exp_defs.run runner (tiny_spec ()) in
  Alcotest.(check (float 0.0)) "response metric" r.Core.Simulator.mean_response
    (Experiments.Exp_defs.metric_value Experiments.Exp_defs.Response_time r);
  Alcotest.(check (float 0.0)) "throughput metric" r.Core.Simulator.throughput
    (Experiments.Exp_defs.metric_value Experiments.Exp_defs.Throughput r)

let suites =
  [
    ( "exp_defs",
      [
        case "runner memoizes identical specs" test_runner_memoizes;
        case "distinct specs rerun" test_runner_distinguishes_specs;
        case "ablation knobs change the key" test_runner_distinguishes_knobs;
        case "key covers every config field" test_key_covers_every_config_field;
        case "metric_value" test_metric_value;
      ] );
    ( "parallel runner",
      [
        case "jobs=1 and jobs=4 results identical" test_run_build_jobs_invariant;
        case "run_build memoizes across calls" test_run_build_memoizes_across_calls;
        case "build exceptions propagate" test_run_build_propagates_build_exception;
      ] );
    ( "report",
      [
        case "figure csv shape" test_figure_csv_shape;
        case "ci columns golden" test_figure_ci_columns;
      ] );
    ( "suite",
      [
        case "experiment catalog" test_experiment_catalog;
        case "fig13 decision map" test_fig13_runs_quick;
      ] );
  ]

let () = Alcotest.run "experiments" suites
